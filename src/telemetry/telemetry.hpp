#pragma once
/// \file telemetry.hpp
/// \brief Per-rank telemetry context (metrics registry + trace ring) and the
/// thread-local attachment that lets instrumentation anywhere in the stack
/// record without plumbing a handle through every call signature.
///
/// The comm runtime owns one RankTelemetry per rank and attaches it to the
/// rank's thread for the duration of Runtime::run(); HEMO_TSPAN then records
/// spans into whatever context the current thread carries, and is a no-op on
/// unattached threads. Configure with -DHEMO_TELEMETRY=OFF to compile every
/// span out entirely (the overhead baseline for the ≤2% MLUPS budget).

#include "telemetry/flightrec.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/waitstate.hpp"

namespace hemo::telemetry {

/// One rank's observability state. The owning rank thread is the only
/// writer while it runs; other threads may drain the tracer concurrently
/// and read the metrics after the runtime joined.
class RankTelemetry {
 public:
  explicit RankTelemetry(int rank = -1,
                         std::size_t traceCapacity = Tracer::kDefaultCapacity)
      : rank_(rank), tracer_(traceCapacity) {
    flight_.setRank(rank);
  }

  int rank() const { return rank_; }
  void setRank(int rank) {
    rank_ = rank;
    flight_.setRank(rank);
  }

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  WaitStateRecorder& waitState() { return waitState_; }
  const WaitStateRecorder& waitState() const { return waitState_; }

  FlightRecorder& flightRecorder() { return flight_; }
  const FlightRecorder& flightRecorder() const { return flight_; }

 private:
  int rank_;
  Tracer tracer_;
  MetricsRegistry metrics_;
  WaitStateRecorder waitState_;
  FlightRecorder flight_;
};

/// The context attached to the calling thread (nullptr when unattached).
RankTelemetry* threadTelemetry();

/// Attach/detach a context to the calling thread (nullptr detaches).
void attachThreadTelemetry(RankTelemetry* t);

/// RAII attachment used by the runtime around each rank main.
class ThreadTelemetryScope {
 public:
  explicit ThreadTelemetryScope(RankTelemetry* t) : saved_(threadTelemetry()) {
    attachThreadTelemetry(t);
  }
  ~ThreadTelemetryScope() { attachThreadTelemetry(saved_); }
  ThreadTelemetryScope(const ThreadTelemetryScope&) = delete;
  ThreadTelemetryScope& operator=(const ThreadTelemetryScope&) = delete;

 private:
  RankTelemetry* saved_;
};

/// RAII span against the calling thread's tracer; inert when no telemetry
/// is attached or tracing is disabled. `name` must be a string literal (or
/// otherwise outlive the trace export).
class ScopedSpan {
 public:
  ScopedSpan(Category category, const char* name)
      : category_(category), name_(name) {
    RankTelemetry* t = threadTelemetry();
    if (t != nullptr && t->tracer().enabled()) {
      tracer_ = &t->tracer();
      tracer_->begin(category_, name_);
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end(category_, name_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  Category category_;
  const char* name_;
};

}  // namespace hemo::telemetry

#define HEMO_TSPAN_CONCAT2(a, b) a##b
#define HEMO_TSPAN_CONCAT(a, b) HEMO_TSPAN_CONCAT2(a, b)

#ifndef HEMO_TELEMETRY_DISABLED
/// Trace the enclosing scope as a span: HEMO_TSPAN(kCollide, "collide.bulk").
#define HEMO_TSPAN(category, name)                                   \
  ::hemo::telemetry::ScopedSpan HEMO_TSPAN_CONCAT(hemo_tspan_,       \
                                                  __LINE__)(         \
      ::hemo::telemetry::Category::category, name)
#else
#define HEMO_TSPAN(category, name) ((void)0)
#endif
