#pragma once
/// \file chrome_trace.hpp
/// \brief Merge per-rank trace rings into one Chrome-trace JSON document
/// (chrome://tracing / Perfetto "JSON trace event" format), one tid per
/// rank, so a whole multi-rank run can be inspected visually.

#include <string>
#include <vector>

#include "telemetry/trace.hpp"

namespace hemo::telemetry {

/// One rank's drained events (in record order) plus its drop count.
struct RankTrace {
  int rank = 0;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

/// Render the merged trace as Chrome-trace JSON. Begin/end events are
/// emitted as "B"/"E" pairs in timestamp order per rank; the exporter
/// repairs sequences left unbalanced by ring overflow (orphan ends are
/// skipped, unclosed begins get a synthetic end at the rank's last
/// timestamp), so the output is always loadable.
std::string chromeTraceJson(const std::vector<RankTrace>& ranks);

/// chromeTraceJson() to a file; false on I/O failure.
bool writeChromeTrace(const std::string& path,
                      const std::vector<RankTrace>& ranks);

}  // namespace hemo::telemetry
