#include "telemetry/flightrec.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <exception>
#include <sstream>

#include "telemetry/chrome_trace.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace hemo::telemetry {

namespace {

thread_local FlightRecorder* tlsRecorder = nullptr;

std::string num(double v) {
  if (!(v == v) || v > 1e300 || v < -1e300) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// File-name slug: keep [a-zA-Z0-9-], everything else becomes '_'.
std::string slug(const std::string& s) {
  std::string out;
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? std::string("unknown") : out;
}

}  // namespace

// --- FlightRecorder --------------------------------------------------------

void FlightRecorder::configure(const Config& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  if (config_.keepWindows == 0) config_.keepWindows = 1;
  if (config_.keepAnnotations == 0) config_.keepAnnotations = 1;
  pruneLocked();
}

void FlightRecorder::setRank(int rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  rank_ = rank;
}

int FlightRecorder::rank() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rank_;
}

void FlightRecorder::captureWindow(FlightWindow w) {
  std::lock_guard<std::mutex> lock(mutex_);
  windows_.push_back(std::move(w));
  pruneLocked();
}

void FlightRecorder::retainTrace(Tracer& tracer) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> fresh;
  tracer.drain(fresh);
  retained_.insert(retained_.end(), fresh.begin(), fresh.end());
  pruneLocked();
}

void FlightRecorder::note(std::string what) {
  std::lock_guard<std::mutex> lock(mutex_);
  annotations_.push_back({traceNowNs(), std::move(what)});
  pruneLocked();
}

std::vector<FlightWindow> FlightRecorder::windows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {windows_.begin(), windows_.end()};
}

std::vector<FlightAnnotation> FlightRecorder::annotations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {annotations_.begin(), annotations_.end()};
}

std::vector<TraceEvent> FlightRecorder::takeTrace(Tracer& tracer) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out(retained_.begin(), retained_.end());
  retained_.clear();
  tracer.drain(out);
  return out;
}

void FlightRecorder::pruneLocked() {
  while (windows_.size() > config_.keepWindows) windows_.pop_front();
  while (retained_.size() > config_.keepTraceEvents) retained_.pop_front();
  while (annotations_.size() > config_.keepAnnotations) {
    annotations_.pop_front();
  }
}

// --- thread-local hook target ----------------------------------------------

void setThreadFlightRecorder(FlightRecorder* recorder) {
  tlsRecorder = recorder;
}

FlightRecorder* threadFlightRecorder() { return tlsRecorder; }

// --- bundle serialization --------------------------------------------------

std::string stepReportJson(const StepReport& r) {
  std::ostringstream os;
  os << "{\"step\":" << r.step << ",\"ranks\":" << r.ranks
     << ",\"sites\":" << r.sites << ",\"stepsCovered\":" << r.stepsCovered
     << ",\"wallSeconds\":" << num(r.wallSeconds)
     << ",\"mlups\":" << num(r.mlups)
     << ",\"collideSeconds\":" << num(r.collideSeconds)
     << ",\"streamSeconds\":" << num(r.streamSeconds)
     << ",\"commSeconds\":" << num(r.commSeconds)
     << ",\"visSeconds\":" << num(r.visSeconds)
     << ",\"loadImbalance\":" << num(r.loadImbalance)
     << ",\"commHiddenFraction\":" << num(r.commHiddenFraction)
     << ",\"waitLateSenderSeconds\":" << num(r.waitLateSenderSeconds)
     << ",\"waitLateReceiverSeconds\":" << num(r.waitLateReceiverSeconds)
     << ",\"waitCollectiveSeconds\":" << num(r.waitCollectiveSeconds)
     << ",\"waitLateReceiverSlackSeconds\":"
     << num(r.waitLateReceiverSlackSeconds)
     << ",\"waitMeasuredSeconds\":" << num(r.waitMeasuredSeconds)
     << ",\"waitBlamedRank\":" << r.waitBlamedRank
     << ",\"waitBlamedSeconds\":" << num(r.waitBlamedSeconds)
     << ",\"waitStragglerRank\":" << r.waitStragglerRank
     << ",\"waitDominantCause\":\""
     << waitCauseName(static_cast<WaitCause>(r.waitDominantCause))
     << "\",\"waitAttributedFraction\":" << num(r.waitAttributedFraction)
     << ",\"bytesSent\":[";
  for (int c = 0; c < kReportTrafficClasses; ++c) {
    os << (c > 0 ? "," : "") << r.bytesSent[c];
  }
  os << "],\"msgsSent\":[";
  for (int c = 0; c < kReportTrafficClasses; ++c) {
    os << (c > 0 ? "," : "") << r.msgsSent[c];
  }
  os << "]}";
  return os.str();
}

// --- FlightRegistry --------------------------------------------------------

FlightRegistry& FlightRegistry::instance() {
  static FlightRegistry registry;
  return registry;
}

void FlightRegistry::arm(std::string bundleDir) {
  std::lock_guard<std::mutex> lock(mutex_);
  bundleDir_ = std::move(bundleDir);
  armed_ = !bundleDir_.empty();
}

void FlightRegistry::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
  bundleDir_.clear();
}

bool FlightRegistry::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return armed_;
}

void FlightRegistry::registerRank(FlightRecorder* recorder, Tracer* tracer) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e.recorder == recorder) return;
  }
  entries_.push_back({recorder, tracer});
}

void FlightRegistry::unregisterRank(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->recorder == recorder) {
      entries_.erase(it);
      return;
    }
  }
}

std::string FlightRegistry::flush(const std::string& reason,
                                  const std::string& detail) {
  std::vector<Entry> entries;
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_ || entries_.empty()) return {};
    entries = entries_;
    dir = bundleDir_;
  }
  const std::string stem = dir + "/postmortem_" + slug(reason);
  const std::string bundlePath = stem + ".json";
  const std::string tracePath = stem + ".trace.json";

  // Chrome trace of the retained span tails (plus whatever is still
  // pending in the rings). Drained through each recorder's mutex, so a
  // concurrent window capture on a still-running rank cannot corrupt the
  // SPSC rings.
  std::vector<RankTrace> traces;
  traces.reserve(entries.size());
  std::ostringstream os;
  os << "{\"schema\":\"hemo-postmortem-1\",\"reason\":\"" << jsonEscape(reason)
     << "\",\"detail\":\"" << jsonEscape(detail)
     << "\",\"flushTsNs\":" << traceNowNs() << ",\"traceFile\":\""
     << jsonEscape(tracePath) << "\",\"ranks\":[";
  bool firstRank = true;
  for (const auto& e : entries) {
    RankTrace rt;
    rt.rank = e.recorder->rank();
    rt.events = e.recorder->takeTrace(*e.tracer);
    rt.dropped = e.tracer->dropped();

    if (!firstRank) os << ",";
    firstRank = false;
    os << "{\"rank\":" << rt.rank << ",\"traceDropped\":" << rt.dropped
       << ",\"annotations\":[";
    bool first = true;
    for (const auto& a : e.recorder->annotations()) {
      os << (first ? "" : ",") << "{\"tsNs\":" << a.tsNs << ",\"what\":\""
         << jsonEscape(a.what) << "\"}";
      first = false;
    }
    os << "],\"windows\":[";
    first = true;
    for (const auto& w : e.recorder->windows()) {
      os << (first ? "" : ",") << "{\"step\":" << w.step
         << ",\"tsNs\":" << w.tsNs << ",\"local\":" << stepReportJson(w.local)
         << ",\"aggregate\":" << stepReportJson(w.aggregate)
         << ",\"sentinel\":{\"valid\":" << static_cast<int>(w.sentinel.valid)
         << ",\"finite\":" << static_cast<int>(w.sentinel.finite)
         << ",\"minRho\":" << num(w.sentinel.minRho)
         << ",\"maxRho\":" << num(w.sentinel.maxRho)
         << ",\"maxSpeed\":" << num(w.sentinel.maxSpeed)
         << ",\"headroom\":" << num(w.sentinel.headroom)
         << ",\"step\":" << w.sentinel.step
         << "},\"broker\":{\"active\":" << static_cast<int>(w.broker.active)
         << ",\"clients\":" << w.broker.clients
         << ",\"aliveClients\":" << w.broker.aliveClients << "},\"metrics\":{";
      bool firstMetric = true;
      for (const auto& [name, value] : w.metrics) {
        os << (firstMetric ? "" : ",") << "\"" << jsonEscape(name)
           << "\":" << num(value);
        firstMetric = false;
      }
      os << "}}";
      first = false;
    }
    os << "]}";
    traces.push_back(std::move(rt));
  }
  os << "]}\n";

  const std::string json = os.str();
  std::FILE* f = std::fopen(bundlePath.c_str(), "w");
  if (f == nullptr) {
    HEMO_LOG_WARN() << "postmortem bundle failed to open " << bundlePath;
    return {};
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) return {};
  writeChromeTrace(tracePath, traces);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    lastBundlePath_ = bundlePath;
  }
  HEMO_LOG_WARN() << "postmortem bundle written to " << bundlePath
                  << " (reason: " << reason << ")";
  return bundlePath;
}

std::string FlightRegistry::lastBundlePath() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lastBundlePath_;
}

void FlightRegistry::noteCheckFailure(const char* what) {
  if (auto* rec = threadFlightRecorder()) {
    rec->note(std::string("HEMO_CHECK: ") + (what != nullptr ? what : ""));
  }
}

// --- crash handlers ---------------------------------------------------------

namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGFPE, SIGILL, SIGBUS,
                                 SIGTERM, SIGINT};
using SignalHandler = void (*)(int);
SignalHandler previousHandlers[sizeof(kFatalSignals) /
                               sizeof(kFatalSignals[0])] = {};
std::atomic<bool> inCrashFlush{false};
std::terminate_handler previousTerminate = nullptr;

void crashSignalHandler(int sig) {
  // Flush once; recursive faults fall straight through to the previous
  // disposition. The flush is not async-signal-safe, but this is the
  // artifact of last resort on an already-dying process.
  if (!inCrashFlush.exchange(true)) {
    FlightRegistry::instance().flush(
        std::string("signal-") + std::to_string(sig), "fatal signal");
  }
  for (std::size_t i = 0; i < sizeof(kFatalSignals) / sizeof(int); ++i) {
    if (kFatalSignals[i] == sig) {
      std::signal(sig, previousHandlers[i] != nullptr ? previousHandlers[i]
                                                      : SIG_DFL);
      break;
    }
  }
  std::raise(sig);
}

[[noreturn]] void crashTerminateHandler() {
  if (!inCrashFlush.exchange(true)) {
    std::string detail = "std::terminate";
    if (auto eptr = std::current_exception()) {
      try {
        std::rethrow_exception(eptr);
      } catch (const std::exception& e) {
        detail = e.what();
      } catch (...) {
      }
    }
    FlightRegistry::instance().flush("terminate", detail);
  }
  if (previousTerminate != nullptr) previousTerminate();
  std::abort();
}

void checkFailureHook(const char* what) {
  FlightRegistry::instance().noteCheckFailure(what);
}

std::atomic<bool> handlersInstalled{false};

}  // namespace

void FlightRegistry::installCrashHandlers() {
  if (handlersInstalled.exchange(true)) return;
  for (std::size_t i = 0; i < sizeof(kFatalSignals) / sizeof(int); ++i) {
    const SignalHandler prev =
        std::signal(kFatalSignals[i], crashSignalHandler);
    previousHandlers[i] = prev == SIG_ERR ? nullptr : prev;
  }
  previousTerminate = std::set_terminate(crashTerminateHandler);
  detail::setCheckFailHook(checkFailureHook);
}

}  // namespace hemo::telemetry
