#pragma once
/// \file waitstate.hpp
/// \brief Scalasca-style wait-state attribution for the thread-rank runtime.
///
/// Knowing *that* ranks wait (recvWaitTimer, commSeconds) is not enough to
/// fix imbalance — the repartitioner and the human both need to know *who*
/// made them wait and *why*. Every Envelope carries a piggybacked timing
/// header (sender post time + step epoch, stamped in Communicator::sendBytes);
/// when a blocking receive completes, the comm layer hands the wait interval
/// and the header to this recorder, which classifies the blocked time:
///
///  - late sender        the message was posted *after* we started waiting —
///                       the blocked time is the sender's fault, charged to
///                       its world rank in the blame vector;
///  - late receiver      the message was already queued when we arrived —
///                       we are the late party; the (tiny) blocked time is
///                       ours, and the arrival lag behind the post time is
///                       tracked separately as "slack";
///  - collective         blocked inside a collective (barrier / bcast /
///                       reduce rounds): straggler wait, blamed on the peer
///                       whose token arrived late.
///
/// Everything here is rank-thread-local (owned by RankTelemetry); windows
/// are snapshotted by the driver into StepReport fields and reduced
/// cross-rank by aggregateStepReports() into a per-window critical-path
/// breakdown (straggler rank, dominant cause).

#include <algorithm>
#include <cstdint>
#include <vector>

namespace hemo::telemetry {

/// Why a rank was blocked. Values are wire-stable (StepReport /
/// StatusReport carry them as uint8).
enum class WaitCause : std::uint8_t {
  kNone = 0,
  kLateSender = 1,
  kLateReceiver = 2,
  kCollective = 3,
  kCount_
};

inline constexpr int kNumWaitCauses = static_cast<int>(WaitCause::kCount_);

const char* waitCauseName(WaitCause c);

/// Upper bound on comm traffic classes tracked per phase (mirrors
/// kReportTrafficClasses; the comm layer's class enum fits).
inline constexpr int kWaitTrafficClasses = 8;

class WaitStateRecorder {
 public:
  /// Cumulative totals since construction (or reset()).
  struct Totals {
    std::int64_t causeNs[kNumWaitCauses] = {};
    std::int64_t lateReceiverSlackNs = 0;  ///< arrival lag behind queued data
    std::uint64_t classifiedRecvs = 0;
  };

  /// Delta since the previous window() call.
  struct Window {
    double lateSenderSeconds = 0.0;
    double lateReceiverSeconds = 0.0;
    double collectiveSeconds = 0.0;
    double lateReceiverSlackSeconds = 0.0;
    std::int32_t topBlamedRank = -1;  ///< source blamed most this window
    double topBlamedSeconds = 0.0;
  };

  bool enabled() const { return enabled_; }
  void setEnabled(bool on) { enabled_ = on; }

  /// Step epoch piggybacked on outgoing envelopes (the solver tags it with
  /// the step number before the halo exchange).
  void setEpoch(std::uint64_t e) { epoch_ = e; }
  std::uint64_t epoch() const { return epoch_; }

  /// Classify one completed blocking receive. `trafficClass` is the comm
  /// layer's Traffic value (opaque small int here — telemetry sits below
  /// comm); `senderPostNs` is the piggybacked post time (<= 0: unknown).
  void recordRecv(int trafficClass, bool collective, int sourceWorldRank,
                  std::int64_t waitBeginNs, std::int64_t waitEndNs,
                  std::int64_t senderPostNs);

  const Totals& totals() const { return totals_; }
  double causeSeconds(WaitCause c) const {
    return static_cast<double>(totals_.causeNs[static_cast<int>(c)]) / 1e9;
  }
  /// Blocked ns accumulated in (traffic class, cause); class clamped.
  std::int64_t phaseCauseNs(int trafficClass, WaitCause c) const;
  /// Cumulative blame: blameNs()[r] = blocked ns this rank attributes to
  /// world rank r having posted late. May be shorter than the world size.
  const std::vector<std::int64_t>& blameNs() const { return blameNs_; }

  /// Snapshot the delta since the previous window() call and advance the
  /// window baseline. Rank-thread only.
  Window window();

  void reset();

 private:
  bool enabled_ = true;
  std::uint64_t epoch_ = 0;
  Totals totals_;
  std::int64_t phaseNs_[kWaitTrafficClasses][kNumWaitCauses] = {};
  std::vector<std::int64_t> blameNs_;
  // Window baselines (previous snapshot).
  Totals prevTotals_;
  std::vector<std::int64_t> prevBlameNs_;
};

}  // namespace hemo::telemetry
