#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hemo::telemetry {

namespace {

std::string jsonEscape(const char* s) {
  std::string out;
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void emitPrefix(std::ostringstream& os, bool& first, char ph, int rank,
                std::int64_t tsNs, Category cat, const char* name) {
  if (!first) os << ",\n";
  first = false;
  char ts[32];
  std::snprintf(ts, sizeof ts, "%.3f", static_cast<double>(tsNs) / 1e3);
  os << "{\"ph\":\"" << ph << "\",\"pid\":0,\"tid\":" << rank
     << ",\"ts\":" << ts << ",\"cat\":\"" << categoryName(cat)
     << "\",\"name\":\"" << jsonEscape(name) << "\"";
}

void emitEvent(std::ostringstream& os, bool& first, char ph, int rank,
               std::int64_t tsNs, Category cat, const char* name) {
  emitPrefix(os, first, ph, rank, tsNs, cat, name);
  os << "}";
}

/// Flow arrow half: "s" (start) on the sender, "f" (finish, bound to the
/// enclosing slice's end) on the receiver; matched by id.
void emitFlowEvent(std::ostringstream& os, bool& first, int rank,
                   const TraceEvent& e) {
  const char ph = e.phase == SpanPhase::kFlowStart ? 's' : 'f';
  emitPrefix(os, first, ph, rank, e.tsNs, e.category, e.name);
  char id[32];
  std::snprintf(id, sizeof id, "0x%llx",
                static_cast<unsigned long long>(e.flowId));
  os << ",\"id\":\"" << id << "\"";
  if (ph == 'f') os << ",\"bp\":\"e\"";
  os << "}";
}

}  // namespace

std::string chromeTraceJson(const std::vector<RankTrace>& ranks) {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& rt : ranks) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << rt.rank
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"rank " << rt.rank
       << "\"}}";

    // Events are chronological per rank (single producer). Repair sequences
    // the ring overflow left unbalanced: orphan ends are dropped, unclosed
    // begins are closed at the rank's last timestamp so viewers always get
    // matched B/E pairs.
    struct Open {
      Category cat;
      const char* name;
    };
    std::vector<Open> stack;
    std::int64_t lastTs = 0;
    for (const auto& e : rt.events) {
      lastTs = std::max(lastTs, e.tsNs);
      switch (e.phase) {
        case SpanPhase::kBegin:
          emitEvent(os, first, 'B', rt.rank, e.tsNs, e.category, e.name);
          stack.push_back({e.category, e.name});
          break;
        case SpanPhase::kEnd:
          if (stack.empty()) break;  // begin lost to ring overflow
          emitEvent(os, first, 'E', rt.rank, e.tsNs, e.category, e.name);
          stack.pop_back();
          break;
        case SpanPhase::kFlowStart:
        case SpanPhase::kFlowEnd:
          // Flow arrows live outside the B/E balance bookkeeping.
          emitFlowEvent(os, first, rt.rank, e);
          break;
        case SpanPhase::kInstant:
          emitPrefix(os, first, 'i', rt.rank, e.tsNs, e.category, e.name);
          os << ",\"s\":\"t\"}";
          break;
      }
    }
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      emitEvent(os, first, 'E', rt.rank, lastTs, it->cat, it->name);
    }
    // Surface ring overflow in the trace itself: silent repair hides that
    // the recorded picture is incomplete.
    if (rt.dropped > 0) {
      emitPrefix(os, first, 'i', rt.rank, lastTs, Category::kOther,
                 "trace.dropped");
      os << ",\"s\":\"t\",\"args\":{\"dropped\":" << rt.dropped << "}}";
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

bool writeChromeTrace(const std::string& path,
                      const std::vector<RankTrace>& ranks) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chromeTraceJson(ranks);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace hemo::telemetry
