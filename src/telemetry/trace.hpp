#pragma once
/// \file trace.hpp
/// \brief Per-rank trace ring buffer of structured span events.
///
/// Every instrumented phase (collide, stream, halo-send, halo-recv-wait,
/// vis, steer, io, partition) records a begin/end event pair into a
/// fixed-capacity single-producer/single-consumer ring. Recording is two
/// relaxed atomic loads, one store and a steady_clock read — cheap enough
/// for the solver hot loop — and never allocates; when the ring is full new
/// events are counted as dropped instead of blocking the producer. The
/// rank's own thread is the producer; any other thread (the driver, a test,
/// the Chrome-trace exporter) may drain concurrently.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace hemo::telemetry {

/// What the code was doing — mirrors the comm::Traffic classification plus
/// the compute phases the paper's balance equation splits out.
enum class Category : std::uint8_t {
  kOther = 0,
  kCollide,
  kStream,
  kHaloSend,
  kHaloRecvWait,
  kVis,
  kSteer,
  kIo,
  kPartition,
  kStep,
  kCount_
};

const char* categoryName(Category c);

/// Nanoseconds since the process-wide trace epoch (first use).
std::int64_t traceNowNs();

/// kBegin/kEnd delimit duration spans; kFlowStart/kFlowEnd are Chrome-trace
/// flow arrows tying a halo send on one rank to its receive on another
/// (matched by flowId); kInstant is a point annotation.
enum class SpanPhase : std::uint8_t {
  kBegin = 0,
  kEnd = 1,
  kFlowStart = 2,
  kFlowEnd = 3,
  kInstant = 4
};

struct TraceEvent {
  std::int64_t tsNs = 0;
  const char* name = nullptr;  ///< must have static storage duration
  Category category = Category::kOther;
  SpanPhase phase = SpanPhase::kBegin;
  std::uint64_t flowId = 0;  ///< nonzero only for kFlowStart/kFlowEnd
};

/// Lock-free SPSC ring. push() from the owning rank thread, drain() from
/// one consumer thread; both may run concurrently.
class TraceRing {
 public:
  /// Capacity is rounded up to a power of two.
  explicit TraceRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer only. False (and one dropped event counted) when full.
  bool push(const TraceEvent& e) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h - t > mask_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[static_cast<std::size_t>(h) & mask_] = e;
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. Appends all pending events to `out` in record order.
  std::size_t drain(std::vector<TraceEvent>& out) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    for (std::uint64_t i = t; i < h; ++i) {
      out.push_back(slots_[static_cast<std::size_t>(i) & mask_]);
    }
    tail_.store(h, std::memory_order_release);
    return static_cast<std::size_t>(h - t);
  }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// One rank's span recorder. begin()/end() are producer-side; drain() may
/// run concurrently from another thread.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity) : ring_(capacity) {}

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  void begin(Category cat, const char* name) {
    ring_.push({traceNowNs(), name, cat, SpanPhase::kBegin, 0});
  }
  void end(Category cat, const char* name) {
    ring_.push({traceNowNs(), name, cat, SpanPhase::kEnd, 0});
  }
  /// Record one side of a cross-rank flow arrow (phase kFlowStart on the
  /// sender, kFlowEnd on the receiver; both sides pass the same id).
  void flow(Category cat, const char* name, SpanPhase phase, std::uint64_t id,
            std::int64_t tsNs) {
    ring_.push({tsNs, name, cat, phase, id});
  }

  std::size_t drain(std::vector<TraceEvent>& out) { return ring_.drain(out); }
  std::uint64_t dropped() const { return ring_.dropped(); }

 private:
  TraceRing ring_;
  std::atomic<bool> enabled_{true};
};

}  // namespace hemo::telemetry
