#pragma once
/// \file metrics.hpp
/// \brief Named metrics registry: counters, gauges, log-bucketed histograms.
///
/// The registry is the machine-readable successor to the ad-hoc
/// printf-reporting around util/timer.hpp and comm/profiler.hpp: every
/// subsystem publishes its numbers under a stable dotted name
/// ("lb.steps", "steer.rtt_seconds", ...) and one exporter turns the whole
/// registry into JSON. One registry per rank, written only by that rank's
/// thread while it runs and read by others after the runtime joined —
/// exactly the TrafficCounters ownership discipline, so no locks appear in
/// the hot loop.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace hemo::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-bucketed histogram with quantile estimation.
///
/// Buckets are geometric: `subBucketsPerOctave` buckets per power of two,
/// covering [minTrackable, minTrackable * 2^octaves). A recorded value
/// lands in the bucket holding its magnitude; quantiles interpolate the
/// bucket's geometric centre, so the worst-case relative error of any
/// quantile is 2^(1/(2*sub)) - 1 (~2.2% at the default sub = 16).
/// Out-of-range values clamp to the first/last bucket; exact min/max/sum
/// are tracked alongside, so quantile results never leave [min, max].
class LogHistogram {
 public:
  explicit LogHistogram(double minTrackable = 1e-9, int octaves = 64,
                        int subBucketsPerOctave = 16)
      : minTrackable_(minTrackable),
        sub_(subBucketsPerOctave),
        bins_(static_cast<std::size_t>(octaves) *
                  static_cast<std::size_t>(subBucketsPerOctave),
              0) {
    HEMO_CHECK(minTrackable > 0.0 && octaves > 0 && subBucketsPerOctave > 0);
  }

  void add(double v) {
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    ++bins_[bucketOf(v)];
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Value below which a fraction `q` in [0, 1] of the samples fall,
  /// accurate to relativeErrorBound() (see class comment).
  double quantile(double q) const {
    if (count_ == 0) return 0.0;
    const double clampedQ = std::min(std::max(q, 0.0), 1.0);
    const auto target = static_cast<std::uint64_t>(
        std::ceil(clampedQ * static_cast<double>(count_)));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      cum += bins_[i];
      if (cum >= target && bins_[i] > 0) {
        return std::min(std::max(representative(i), min_), max_);
      }
    }
    return max_;
  }

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Worst-case relative error of quantile() against the exact value.
  double relativeErrorBound() const {
    return std::exp2(1.0 / (2.0 * static_cast<double>(sub_))) - 1.0;
  }

  void reset() {
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    std::fill(bins_.begin(), bins_.end(), std::uint64_t{0});
  }

 private:
  std::size_t bucketOf(double v) const {
    if (!(v > minTrackable_)) return 0;
    const double idx =
        std::floor(std::log2(v / minTrackable_) * static_cast<double>(sub_));
    if (idx < 0.0) return 0;
    const auto last = bins_.size() - 1;
    return std::min(static_cast<std::size_t>(idx), last);
  }

  double representative(std::size_t i) const {
    // Geometric centre of the bucket [min*2^(i/sub), min*2^((i+1)/sub)).
    return minTrackable_ *
           std::exp2((static_cast<double>(i) + 0.5) / static_cast<double>(sub_));
  }

  double minTrackable_;
  int sub_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Name → metric maps. References returned by counter()/gauge()/histogram()
/// stay valid for the registry's lifetime (std::map nodes are stable), so
/// hot paths resolve a metric once and keep the pointer.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  LogHistogram& histogram(const std::string& name) {
    return histograms_.try_emplace(name).first->second;
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, LogHistogram>& histograms() const {
    return histograms_;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Zero every registered metric (names stay registered, so cached
  /// references remain valid).
  void reset() {
    for (auto& [name, c] : counters_) c.reset();
    for (auto& [name, g] : gauges_) g.set(0.0);
    for (auto& [name, h] : histograms_) h.reset();
  }

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string toJson() const {
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : counters_) {
      os << (first ? "" : ",") << '"' << name << "\":" << c.value();
      first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
      os << (first ? "" : ",") << '"' << name << "\":" << num(g.value());
      first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
      os << (first ? "" : ",") << '"' << name << "\":{\"count\":" << h.count()
         << ",\"sum\":" << num(h.sum()) << ",\"min\":" << num(h.min())
         << ",\"max\":" << num(h.max()) << ",\"mean\":" << num(h.mean())
         << ",\"p50\":" << num(h.p50()) << ",\"p95\":" << num(h.p95())
         << ",\"p99\":" << num(h.p99()) << "}";
      first = false;
    }
    os << "}}";
    return os.str();
  }

 private:
  static std::string num(double v) {
    if (!std::isfinite(v)) return "0";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
  }

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LogHistogram> histograms_;
};

}  // namespace hemo::telemetry
