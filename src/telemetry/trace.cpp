#include "telemetry/trace.hpp"

namespace hemo::telemetry {

const char* categoryName(Category c) {
  switch (c) {
    case Category::kOther: return "other";
    case Category::kCollide: return "collide";
    case Category::kStream: return "stream";
    case Category::kHaloSend: return "halo-send";
    case Category::kHaloRecvWait: return "halo-recv-wait";
    case Category::kVis: return "vis";
    case Category::kSteer: return "steer";
    case Category::kIo: return "io";
    case Category::kPartition: return "partition";
    case Category::kStep: return "step";
    default: return "?";
  }
}

std::int64_t traceNowNs() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              epoch)
      .count();
}

}  // namespace hemo::telemetry
