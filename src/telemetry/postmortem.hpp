#pragma once
/// \file postmortem.hpp
/// \brief Human-readable rendering of flight-recorder postmortem bundles.
///
/// The flight recorder (flightrec.hpp) flushes a JSON bundle when a run
/// dies; renderPostmortem() turns that bundle into the report a human reads
/// first: why the run stopped, the last retained telemetry windows per
/// rank, who the critical-path straggler was, and the annotations leading
/// up to the event. `hemo_postmortem` (tools/) is a thin CLI over this.

#include <string>

namespace hemo::telemetry {

/// Render a postmortem bundle (the JSON written by FlightRegistry::flush)
/// as a plain-text report. Throws std::runtime_error when `bundleJson` is
/// not valid JSON or not a postmortem bundle (wrong/missing schema tag).
/// Tolerant of missing optional fields — old or truncated-but-parseable
/// bundles still render.
std::string renderPostmortem(const std::string& bundleJson);

/// Read `path` and render it. Throws std::runtime_error when the file
/// cannot be read or the content fails renderPostmortem().
std::string renderPostmortemFile(const std::string& path);

}  // namespace hemo::telemetry
