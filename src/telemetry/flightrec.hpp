#pragma once
/// \file flightrec.hpp
/// \brief Always-on flight recorder + postmortem bundle writer.
///
/// A crash, deadlock or sentinel exhaustion used to leave at best a text
/// dump; the flight recorder keeps a bounded ring of the last K telemetry
/// windows (local + aggregate StepReport, wait-state window, metric
/// snapshots, sentinel extrema, broker state) and a bounded tail of trace
/// spans per rank, cheap enough to stay on for every run. When something
/// dies — a rank throws out of Runtime::run, a fatal signal or
/// std::terminate fires, the sentinel exhausts its rollbacks — the global
/// FlightRegistry flushes everything as a self-contained postmortem bundle:
/// `postmortem_<reason>.json` plus a Chrome trace of the retained spans.
/// `hemo_postmortem` (tools/) pretty-prints a bundle.
///
/// Thread model: captureWindow()/retainTrace() run on the owning rank's
/// thread; note() and the flush path may run from any thread, so the
/// recorder state sits behind a mutex (all cold paths). Ring drains funnel
/// through the recorder's mutex so the SPSC single-consumer contract holds
/// even when a flush races a window capture on another rank.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/step_report.hpp"
#include "telemetry/trace.hpp"

namespace hemo::telemetry {

/// Sentinel extrema captured into a window (valid=0 when no sentinel ran).
struct SentinelSnapshot {
  std::uint8_t valid = 0;
  std::uint8_t finite = 1;
  double minRho = 0.0;
  double maxRho = 0.0;
  double maxSpeed = 0.0;
  double headroom = 0.0;
  std::uint64_t step = 0;
};

/// Serving-plane state captured into a window (rank 0 in broker mode).
struct BrokerSnapshot {
  std::uint8_t active = 0;
  std::int32_t clients = 0;
  std::int32_t aliveClients = 0;
};

/// One retained telemetry window.
struct FlightWindow {
  std::uint64_t step = 0;
  std::int64_t tsNs = 0;  ///< capture time (traceNowNs clock)
  StepReport local;
  StepReport aggregate;
  SentinelSnapshot sentinel;
  BrokerSnapshot broker;
  /// Flattened counter/gauge samples at capture time.
  std::vector<std::pair<std::string, double>> metrics;
};

struct FlightAnnotation {
  std::int64_t tsNs = 0;
  std::string what;
};

class FlightRecorder {
 public:
  struct Config {
    std::size_t keepWindows = 32;
    std::size_t keepTraceEvents = 1u << 14;
    std::size_t keepAnnotations = 128;
  };

  void configure(const Config& config);
  void setRank(int rank);
  int rank() const;

  /// Retain one telemetry window (oldest dropped past keepWindows).
  void captureWindow(FlightWindow w);

  /// Drain `tracer` into the bounded retained tail. Serialised against
  /// every other consumer of the same ring by this recorder's mutex.
  void retainTrace(Tracer& tracer);

  /// Timestamped annotation ("sentinel rollback", "HEMO_CHECK: ...");
  /// bounded, any thread.
  void note(std::string what);

  // --- flush/export side (any thread) ---------------------------------
  std::vector<FlightWindow> windows() const;
  std::vector<FlightAnnotation> annotations() const;
  /// Retained tail + everything still pending in `tracer` (drained through
  /// the same mutex), chronological. Clears the retained tail.
  std::vector<TraceEvent> takeTrace(Tracer& tracer);

 private:
  void pruneLocked();

  mutable std::mutex mutex_;
  Config config_;
  int rank_ = -1;
  std::deque<FlightWindow> windows_;
  std::deque<TraceEvent> retained_;
  std::deque<FlightAnnotation> annotations_;
};

/// Process-wide rendezvous between the rank recorders and the crash paths.
/// Runtime registers each rank's recorder+tracer for its lifetime; the
/// driver arms the registry with a bundle directory. flush() is a no-op
/// until armed, so unit tests that kill ranks without opting in stay
/// artifact-free.
class FlightRegistry {
 public:
  static FlightRegistry& instance();

  void arm(std::string bundleDir);
  void disarm();
  bool armed() const;

  void registerRank(FlightRecorder* recorder, Tracer* tracer);
  void unregisterRank(FlightRecorder* recorder);

  /// Write `<dir>/postmortem_<reason>.json` (+ `.trace.json`) covering all
  /// registered recorders. Returns the bundle path, or empty when not
  /// armed / nothing registered / the write failed.
  std::string flush(const std::string& reason, const std::string& detail);

  std::string lastBundlePath() const;

  /// Install the fatal-signal + std::terminate + HEMO_CHECK hooks
  /// (idempotent, process-wide). Handlers flush-if-armed, restore the
  /// previous disposition and re-raise.
  void installCrashHandlers();

  /// HEMO_CHECK hook target: annotate the calling thread's recorder with
  /// the failed check (cheap; recoverable CheckErrors only leave a note).
  void noteCheckFailure(const char* what);

 private:
  FlightRegistry() = default;

  struct Entry {
    FlightRecorder* recorder = nullptr;
    Tracer* tracer = nullptr;
  };

  mutable std::mutex mutex_;
  std::string bundleDir_;
  bool armed_ = false;
  std::vector<Entry> entries_;
  std::string lastBundlePath_;
};

/// Thread-local recorder used by the HEMO_CHECK hook (set alongside the
/// thread telemetry attachment; nullptr detaches).
void setThreadFlightRecorder(FlightRecorder* recorder);
FlightRecorder* threadFlightRecorder();

/// Serialize one StepReport as a JSON object (shared by the bundle writer
/// and tests).
std::string stepReportJson(const StepReport& r);

}  // namespace hemo::telemetry
