#include "telemetry/telemetry.hpp"

namespace hemo::telemetry {

namespace {
thread_local RankTelemetry* g_threadTelemetry = nullptr;
}  // namespace

RankTelemetry* threadTelemetry() { return g_threadTelemetry; }

void attachThreadTelemetry(RankTelemetry* t) { g_threadTelemetry = t; }

}  // namespace hemo::telemetry
