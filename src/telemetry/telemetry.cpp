#include "telemetry/telemetry.hpp"

namespace hemo::telemetry {

namespace {
thread_local RankTelemetry* g_threadTelemetry = nullptr;
}  // namespace

RankTelemetry* threadTelemetry() { return g_threadTelemetry; }

void attachThreadTelemetry(RankTelemetry* t) {
  g_threadTelemetry = t;
  // Keep the HEMO_CHECK/flight-recorder hook pointing at the same rank's
  // recorder so check failures annotate the right postmortem section.
  setThreadFlightRecorder(t != nullptr ? &t->flightRecorder() : nullptr);
}

}  // namespace hemo::telemetry
