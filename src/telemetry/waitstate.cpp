#include "telemetry/waitstate.hpp"

namespace hemo::telemetry {

const char* waitCauseName(WaitCause c) {
  switch (c) {
    case WaitCause::kNone:
      return "none";
    case WaitCause::kLateSender:
      return "late-sender";
    case WaitCause::kLateReceiver:
      return "late-receiver";
    case WaitCause::kCollective:
      return "collective";
    default:
      return "?";
  }
}

void WaitStateRecorder::recordRecv(int trafficClass, bool collective,
                                   int sourceWorldRank,
                                   std::int64_t waitBeginNs,
                                   std::int64_t waitEndNs,
                                   std::int64_t senderPostNs) {
  if (!enabled_) return;
  const std::int64_t waitNs = std::max<std::int64_t>(0, waitEndNs - waitBeginNs);
  const bool senderLate = senderPostNs > waitBeginNs;
  WaitCause cause;
  if (collective) {
    cause = WaitCause::kCollective;
  } else if (senderLate) {
    cause = WaitCause::kLateSender;
  } else {
    // The message was already queued (or the post time is unknown): the
    // receiver is the late party. Blocked time here is just wake-up cost;
    // the interesting quantity is how long the data sat waiting for us.
    cause = WaitCause::kLateReceiver;
    if (senderPostNs > 0) {
      totals_.lateReceiverSlackNs += waitBeginNs - senderPostNs;
    }
  }
  totals_.causeNs[static_cast<int>(cause)] += waitNs;
  ++totals_.classifiedRecvs;
  const int cls = std::clamp(trafficClass, 0, kWaitTrafficClasses - 1);
  phaseNs_[cls][static_cast<int>(cause)] += waitNs;
  if (senderLate && sourceWorldRank >= 0) {
    const auto idx = static_cast<std::size_t>(sourceWorldRank);
    if (blameNs_.size() <= idx) blameNs_.resize(idx + 1, 0);
    blameNs_[idx] += waitNs;
  }
}

std::int64_t WaitStateRecorder::phaseCauseNs(int trafficClass,
                                             WaitCause c) const {
  const int cls = std::clamp(trafficClass, 0, kWaitTrafficClasses - 1);
  return phaseNs_[cls][static_cast<int>(c)];
}

WaitStateRecorder::Window WaitStateRecorder::window() {
  Window w;
  auto delta = [&](WaitCause c) {
    const int i = static_cast<int>(c);
    return static_cast<double>(totals_.causeNs[i] - prevTotals_.causeNs[i]) /
           1e9;
  };
  w.lateSenderSeconds = delta(WaitCause::kLateSender);
  w.lateReceiverSeconds = delta(WaitCause::kLateReceiver);
  w.collectiveSeconds = delta(WaitCause::kCollective);
  w.lateReceiverSlackSeconds =
      static_cast<double>(totals_.lateReceiverSlackNs -
                          prevTotals_.lateReceiverSlackNs) /
      1e9;
  std::int64_t best = 0;
  for (std::size_t r = 0; r < blameNs_.size(); ++r) {
    const std::int64_t prev = r < prevBlameNs_.size() ? prevBlameNs_[r] : 0;
    const std::int64_t d = blameNs_[r] - prev;
    if (d > best) {
      best = d;
      w.topBlamedRank = static_cast<std::int32_t>(r);
    }
  }
  w.topBlamedSeconds = static_cast<double>(best) / 1e9;
  prevTotals_ = totals_;
  prevBlameNs_ = blameNs_;
  return w;
}

void WaitStateRecorder::reset() {
  totals_ = Totals{};
  prevTotals_ = Totals{};
  for (auto& perClass : phaseNs_) {
    for (auto& ns : perClass) ns = 0;
  }
  blameNs_.clear();
  prevBlameNs_.clear();
}

}  // namespace hemo::telemetry
