#pragma once
/// \file step_report.hpp
/// \brief Per-step (or per-window) performance report and its cross-rank
/// aggregation — the live numbers §IV.C.3's steering client consumes and the
/// vis-aware balance equation needs: MLUPS, load-imbalance factor, per-class
/// communication volume, hidden-communication fraction and vis cost.
///
/// StepReport is trivially copyable on purpose: ranks allgather their local
/// report through the communicator and aggregate the result with
/// aggregateStepReports(), and the steering protocol frames the aggregate
/// for the client.

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "telemetry/waitstate.hpp"

namespace hemo::telemetry {

/// Upper bound on comm traffic classes carried in a report (the comm layer
/// static_asserts its own class count fits).
inline constexpr int kReportTrafficClasses = 8;

struct StepReport {
  std::uint64_t step = 0;          ///< simulation step the report covers up to
  std::uint32_t ranks = 1;         ///< 1 in a local report; N once aggregated
  std::uint64_t sites = 0;         ///< owned sites (local) / total (aggregate)
  std::uint64_t stepsCovered = 0;  ///< steps since the previous report
  double wallSeconds = 0.0;        ///< wall time of the window (max over ranks)
  double mlups = 0.0;              ///< million site-updates/s (aggregate fills)
  double collideSeconds = 0.0;     ///< CPU time split of the window (summed
  double streamSeconds = 0.0;      ///  over ranks in the aggregate)
  double commSeconds = 0.0;
  double visSeconds = 0.0;
  double loadImbalance = 1.0;      ///< busy-time max/mean across ranks
  double commHiddenFraction = 0.0; ///< halo latency hidden behind compute
  std::uint64_t bytesSent[kReportTrafficClasses] = {};
  std::uint64_t msgsSent[kReportTrafficClasses] = {};

  // Wait-state attribution (waitstate.hpp taxonomy). The per-cause seconds
  // are summed over ranks in the aggregate, like the phase seconds above.
  double waitLateSenderSeconds = 0.0;    ///< blocked, sender posted late
  double waitLateReceiverSeconds = 0.0;  ///< blocked, data already queued
  double waitCollectiveSeconds = 0.0;    ///< blocked inside collectives
  double waitLateReceiverSlackSeconds = 0.0;  ///< arrival lag behind data
  double waitMeasuredSeconds = 0.0;  ///< independent recv-wait wall clock
  std::int32_t waitBlamedRank = -1;  ///< local: source this rank blames most
  double waitBlamedSeconds = 0.0;    ///< blocked time charged to that source
  // Filled by aggregateStepReports() on the cross-rank aggregate:
  std::int32_t waitStragglerRank = -1;  ///< rank blamed most across all ranks
  std::uint8_t waitDominantCause = 0;   ///< WaitCause with the most seconds
  double waitAttributedFraction = 0.0;  ///< classified / measured wait time

  double busySeconds() const { return collideSeconds + streamSeconds; }

  double waitClassifiedSeconds() const {
    return waitLateSenderSeconds + waitLateReceiverSeconds +
           waitCollectiveSeconds;
  }

  std::uint64_t totalBytesSent() const {
    std::uint64_t sum = 0;
    for (const auto b : bytesSent) sum += b;
    return sum;
  }
  std::uint64_t totalMsgsSent() const {
    std::uint64_t sum = 0;
    for (const auto m : msgsSent) sum += m;
    return sum;
  }
};

static_assert(std::is_trivially_copyable_v<StepReport>);

/// Merge one report per rank into a global view: traffic and phase seconds
/// are summed, wall time is the slowest rank's, the load-imbalance factor
/// is recomputed from the per-rank busy times, and MLUPS is total site
/// updates over the window's wall time.
inline StepReport aggregateStepReports(const std::vector<StepReport>& perRank) {
  StepReport out;
  if (perRank.empty()) return out;
  out.ranks = static_cast<std::uint32_t>(perRank.size());
  double busySum = 0.0, busyMax = 0.0, hiddenSum = 0.0;
  // Blame votes: each rank names the source it blames most; summing the
  // votes per target picks the cross-rank straggler.
  std::vector<double> blame(perRank.size(), 0.0);
  for (const auto& r : perRank) {
    out.step = std::max(out.step, r.step);
    out.sites += r.sites;
    out.stepsCovered = std::max(out.stepsCovered, r.stepsCovered);
    out.wallSeconds = std::max(out.wallSeconds, r.wallSeconds);
    out.collideSeconds += r.collideSeconds;
    out.streamSeconds += r.streamSeconds;
    out.commSeconds += r.commSeconds;
    out.visSeconds += r.visSeconds;
    for (int c = 0; c < kReportTrafficClasses; ++c) {
      out.bytesSent[c] += r.bytesSent[c];
      out.msgsSent[c] += r.msgsSent[c];
    }
    out.waitLateSenderSeconds += r.waitLateSenderSeconds;
    out.waitLateReceiverSeconds += r.waitLateReceiverSeconds;
    out.waitCollectiveSeconds += r.waitCollectiveSeconds;
    out.waitLateReceiverSlackSeconds += r.waitLateReceiverSlackSeconds;
    out.waitMeasuredSeconds += r.waitMeasuredSeconds;
    if (r.waitBlamedRank >= 0 &&
        r.waitBlamedRank < static_cast<std::int32_t>(blame.size())) {
      blame[static_cast<std::size_t>(r.waitBlamedRank)] += r.waitBlamedSeconds;
    }
    const double busy = r.busySeconds();
    busySum += busy;
    busyMax = std::max(busyMax, busy);
    hiddenSum += r.commHiddenFraction;
  }
  // Critical-path breakdown: who the group blames (falling back to the
  // busiest rank when no one was caught posting late) and why.
  double blameMax = 0.0;
  for (std::size_t r = 0; r < blame.size(); ++r) {
    if (blame[r] > blameMax) {
      blameMax = blame[r];
      out.waitStragglerRank = static_cast<std::int32_t>(r);
    }
  }
  if (out.waitStragglerRank < 0) {
    double worstBusy = -1.0;
    for (std::size_t r = 0; r < perRank.size(); ++r) {
      if (perRank[r].busySeconds() > worstBusy) {
        worstBusy = perRank[r].busySeconds();
        out.waitStragglerRank = static_cast<std::int32_t>(r);
      }
    }
  }
  out.waitBlamedRank = out.waitStragglerRank;
  out.waitBlamedSeconds = blameMax;
  const double causes[] = {out.waitLateSenderSeconds,
                           out.waitLateReceiverSeconds,
                           out.waitCollectiveSeconds};
  const WaitCause causeIds[] = {WaitCause::kLateSender,
                                WaitCause::kLateReceiver,
                                WaitCause::kCollective};
  double causeMax = 0.0;
  for (int i = 0; i < 3; ++i) {
    if (causes[i] > causeMax) {
      causeMax = causes[i];
      out.waitDominantCause = static_cast<std::uint8_t>(causeIds[i]);
    }
  }
  // Coverage of the independently measured recv-wait clock by the
  // classified point-to-point wait time (collective waits happen outside
  // that clock, so they are excluded from the numerator).
  const double p2p = out.waitLateSenderSeconds + out.waitLateReceiverSeconds;
  out.waitAttributedFraction =
      out.waitMeasuredSeconds > 0.0
          ? std::min(1.0, p2p / out.waitMeasuredSeconds)
          : (out.waitClassifiedSeconds() > 0.0 ? 1.0 : 0.0);
  const auto n = static_cast<double>(perRank.size());
  out.loadImbalance = busySum > 0.0 ? busyMax * n / busySum : 1.0;
  out.commHiddenFraction = hiddenSum / n;
  out.mlups = out.wallSeconds > 0.0
                  ? static_cast<double>(out.sites) *
                        static_cast<double>(out.stepsCovered) /
                        out.wallSeconds / 1e6
                  : 0.0;
  return out;
}

}  // namespace hemo::telemetry
