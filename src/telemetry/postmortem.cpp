#include "telemetry/postmortem.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace hemo::telemetry {

namespace {

using util::JsonValue;

std::string fmt(double v, const char* spec = "%.3f") {
  char buf[48];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

std::string pct(double part, double whole) {
  if (whole <= 0.0) return "   -";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%3.0f%%", 100.0 * part / whole);
  return buf;
}

/// Right-pad/truncate to a column width (report stays grep- and eye-able).
std::string col(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

const JsonValue* arr(const JsonValue& v, const std::string& key) {
  const JsonValue* a = v.find(key);
  return a != nullptr && a->type == JsonValue::Type::kArray ? a : nullptr;
}

const JsonValue* obj(const JsonValue& v, const std::string& key) {
  const JsonValue* o = v.find(key);
  return o != nullptr && o->type == JsonValue::Type::kObject ? o : nullptr;
}

}  // namespace

std::string renderPostmortem(const std::string& bundleJson) {
  JsonValue doc = util::parseJson(bundleJson);
  if (doc.type != JsonValue::Type::kObject) {
    throw std::runtime_error("postmortem: bundle root is not an object");
  }
  const std::string schema = doc.stringOr("schema", "");
  if (schema != "hemo-postmortem-1") {
    throw std::runtime_error("postmortem: unknown bundle schema '" + schema +
                             "'");
  }

  std::ostringstream os;
  os << "== hemo postmortem ==\n";
  os << "reason:  " << doc.stringOr("reason", "(unknown)") << "\n";
  const std::string detail = doc.stringOr("detail", "");
  if (!detail.empty()) os << "detail:  " << detail << "\n";
  const std::string traceFile = doc.stringOr("traceFile", "");
  if (!traceFile.empty()) os << "trace:   " << traceFile << "\n";

  const JsonValue* ranks = arr(doc, "ranks");
  if (ranks == nullptr || ranks->array.empty()) {
    os << "(no ranks recorded)\n";
    return os.str();
  }
  os << "ranks:   " << ranks->array.size() << "\n";

  // --- cross-rank wait-blame tally (sum of per-window local blame) -------
  std::map<int, double> blame;
  std::uint64_t lastStep = 0;
  for (const auto& r : ranks->array) {
    const JsonValue* windows = arr(r, "windows");
    if (windows == nullptr) continue;
    for (const auto& w : windows->array) {
      lastStep = std::max(lastStep,
                          static_cast<std::uint64_t>(w.numberOr("step", 0)));
      const JsonValue* local = obj(w, "local");
      if (local == nullptr) continue;
      const int blamed = static_cast<int>(local->numberOr("waitBlamedRank", -1));
      const double sec = local->numberOr("waitBlamedSeconds", 0.0);
      if (blamed >= 0 && sec > 0.0) blame[blamed] += sec;
    }
  }
  os << "last retained step: " << lastStep << "\n";

  // --- per-rank window timelines -----------------------------------------
  for (const auto& r : ranks->array) {
    const int rank = static_cast<int>(r.numberOr("rank", -1));
    const auto dropped =
        static_cast<std::uint64_t>(r.numberOr("traceDropped", 0));
    os << "\n-- rank " << rank;
    if (dropped > 0) os << "  (trace ring dropped " << dropped << " events)";
    os << " --\n";

    const JsonValue* windows = arr(r, "windows");
    if (windows == nullptr || windows->array.empty()) {
      os << "  (no telemetry windows retained)\n";
    } else {
      os << "  " << col("step", 10) << col("mlups", 10) << col("imbal", 8)
         << col("wait.s", 9) << col("late-snd", 9) << col("late-rcv", 9)
         << col("coll", 6) << col("straggler", 11) << "cause\n";
      for (const auto& w : windows->array) {
        const JsonValue* local = obj(w, "local");
        const JsonValue* agg = obj(w, "aggregate");
        if (local == nullptr || agg == nullptr) continue;
        const double measured = local->numberOr("waitMeasuredSeconds", 0.0);
        const double ls = local->numberOr("waitLateSenderSeconds", 0.0);
        const double lr = local->numberOr("waitLateReceiverSeconds", 0.0);
        const double co = local->numberOr("waitCollectiveSeconds", 0.0);
        const int straggler =
            static_cast<int>(agg->numberOr("waitStragglerRank", -1));
        os << "  "
           << col(fmt(w.numberOr("step", 0), "%.0f"), 10)
           << col(fmt(agg->numberOr("mlups", 0.0), "%.2f"), 10)
           << col(fmt(agg->numberOr("loadImbalance", 0.0), "%.2f"), 8)
           << col(fmt(measured, "%.4f"), 9) << col(pct(ls, measured), 9)
           << col(pct(lr, measured), 9) << col(pct(co, measured), 6)
           << col(straggler >= 0 ? ("rank " + std::to_string(straggler))
                                 : std::string("-"),
                  11)
           << agg->stringOr("waitDominantCause", "-") << "\n";
      }

      // Last sentinel extrema seen by this rank, if any window carried one.
      const JsonValue* lastSentinel = nullptr;
      for (const auto& w : windows->array) {
        const JsonValue* s = obj(w, "sentinel");
        if (s != nullptr && s->numberOr("valid", 0) != 0) lastSentinel = s;
      }
      if (lastSentinel != nullptr) {
        os << "  sentinel: step "
           << fmt(lastSentinel->numberOr("step", 0), "%.0f")
           << (lastSentinel->numberOr("finite", 1) != 0 ? "" : "  NON-FINITE")
           << "  rho [" << fmt(lastSentinel->numberOr("minRho", 0), "%.4f")
           << ", " << fmt(lastSentinel->numberOr("maxRho", 0), "%.4f")
           << "]  max|u| "
           << fmt(lastSentinel->numberOr("maxSpeed", 0), "%.4f")
           << "  headroom "
           << fmt(lastSentinel->numberOr("headroom", 0), "%.2f") << "\n";
      }
    }

    const JsonValue* notes = arr(r, "annotations");
    if (notes != nullptr && !notes->array.empty()) {
      os << "  annotations:\n";
      for (const auto& a : notes->array) {
        os << "    [" << fmt(a.numberOr("tsNs", 0) / 1e9, "%.3f") << "s] "
           << a.stringOr("what", "") << "\n";
      }
    }
  }

  // --- top wait contributors ---------------------------------------------
  if (!blame.empty()) {
    std::vector<std::pair<int, double>> ordered(blame.begin(), blame.end());
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    os << "\n-- top wait contributors (late-sender blame, retained windows) "
          "--\n";
    const std::size_t top = std::min<std::size_t>(ordered.size(), 5);
    for (std::size_t i = 0; i < top; ++i) {
      os << "  rank " << ordered[i].first << ": "
         << fmt(ordered[i].second, "%.4f") << " s of peer wait\n";
    }
  }

  return os.str();
}

std::string renderPostmortemFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("postmortem: cannot open " + path);
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return renderPostmortem(text);
}

}  // namespace hemo::telemetry
