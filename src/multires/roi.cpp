#include "multires/roi.hpp"

#include <algorithm>
#include <map>

namespace hemo::multires {

std::vector<OctreeNode> mergeNodes(
    const std::vector<std::vector<OctreeNode>>& perRank) {
  std::map<std::uint64_t, OctreeNode> merged;
  for (const auto& nodes : perRank) {
    for (const auto& node : nodes) {
      auto [it, inserted] = merged.emplace(node.key, node);
      if (inserted) continue;
      OctreeNode& acc = it->second;
      const float total =
          static_cast<float>(acc.count) + static_cast<float>(node.count);
      if (total > 0.f) {
        const float wa = static_cast<float>(acc.count) / total;
        const float wb = static_cast<float>(node.count) / total;
        acc.meanScalar = acc.meanScalar * wa + node.meanScalar * wb;
        acc.meanVelocity =
            acc.meanVelocity * wa + node.meanVelocity * wb;
      }
      acc.minScalar = std::min(acc.minScalar, node.minScalar);
      acc.maxScalar = std::max(acc.maxScalar, node.maxScalar);
      acc.count += node.count;
    }
  }
  std::vector<OctreeNode> out;
  out.reserve(merged.size());
  for (const auto& [key, node] : merged) out.push_back(node);
  return out;
}

std::vector<OctreeNode> gatherLevel(comm::Communicator& comm,
                                    const FieldOctree& tree, int level) {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kVis);
  const auto perRank = comm.gatherVec(tree.level(level), 0);
  if (comm.rank() != 0) return {};
  return mergeNodes(perRank);
}

std::vector<OctreeNode> gatherRoi(comm::Communicator& comm,
                                  const FieldOctree& tree, int level,
                                  const BoxI& roi) {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kVis);
  const auto perRank = comm.gatherVec(tree.query(level, roi), 0);
  if (comm.rank() != 0) return {};
  return mergeNodes(perRank);
}

DrilldownStats progressiveDrilldown(comm::Communicator& comm,
                                    const FieldOctree& tree, int contextLevel,
                                    int detailLevel, const BoxI& roi) {
  HEMO_CHECK(contextLevel <= detailLevel);
  DrilldownStats stats;
  // Per-stage *global* vis bytes: allreduce every rank's sent-delta. The
  // reduction itself runs outside the kVis class so it does not pollute
  // the next stage's measurement.
  auto visSent = [&] { return comm.counters().of(comm::Traffic::kVis).bytesSent; };
  auto globalDelta = [&](std::uint64_t& last) {
    const auto now = visSent();
    const auto local = now - last;
    comm::Communicator::TrafficScope scope(comm, comm::Traffic::kOther);
    const auto total = comm.allreduceSum(local);
    last = visSent();
    return total;
  };
  std::uint64_t last = visSent();
  // Stage 0: full context level; stages 1..: ROI only, one level deeper.
  const auto context = gatherLevel(comm, tree, contextLevel);
  stats.bytesPerStage.push_back(globalDelta(last));
  stats.nodesPerStage.push_back(context.size());
  for (int level = contextLevel + 1; level <= detailLevel; ++level) {
    const auto detail = gatherRoi(comm, tree, level, roi);
    stats.bytesPerStage.push_back(globalDelta(last));
    stats.nodesPerStage.push_back(detail.size());
  }
  return stats;
}

}  // namespace hemo::multires
