#pragma once
/// \file progressive.hpp
/// \brief Coarse-to-fine level-delta decomposition for progressive
/// streaming (relay tier, paper §V + §IV.C).
///
/// Two pieces, both free of any serving-layer dependency:
///
/// 1. **Image pyramid** — an RGB frame is decomposed into a mip chain:
///    level 0 is a box-filtered root small enough to always fit one wire
///    frame (max dimension ≤ `rootMaxDim`), and each finer level stores
///    only the mod-256 residual against the nearest-neighbour upsample of
///    the previous level. Applying all levels reproduces the original
///    bit-exactly; stopping early yields the box-filtered coarse image
///    (bounded error), so a consumer has a usable picture after the first
///    frame and refinements land as bandwidth allows.
///
/// 2. **Progressive octree traversal** — the order in which ROI node data
///    leaves the wire: every level-L cell intersecting the ROI strictly
///    before any level-L+1 cell (coarse-before-fine invariant), keys
///    ascending within a level.

#include <cstdint>
#include <vector>

#include "multires/octree.hpp"
#include "util/bbox.hpp"

namespace hemo::multires {

/// One level of the image pyramid. The root level carries box-filtered RGB
/// pixels; every other level carries mod-256 residuals against the
/// nearest-neighbour upsample of the level above it. Either way `data` is
/// width*height*3 bytes.
struct ImageLevel {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> data;
};

/// Coarse-to-fine decomposition of one RGB frame. levels[0] is the root;
/// levels.back() refines to the original resolution bit-exactly.
struct ImagePyramid {
  int fullWidth = 0;
  int fullHeight = 0;
  std::vector<ImageLevel> levels;
};

/// Nearest-neighbour upsample of an RGB image (the prediction operator of
/// the residual coding; also how a consumer blows a coarse level up to
/// display size).
std::vector<std::uint8_t> upsampleNearest(int srcW, int srcH,
                                          const std::vector<std::uint8_t>& src,
                                          int dstW, int dstH);

/// Decompose `rgb` (width*height*3) into the mip chain. The root is the
/// first level whose max dimension is ≤ `rootMaxDim` (the chain halves
/// dimensions, rounding up, until that holds). A frame already at or below
/// root size yields a single exact level.
ImagePyramid buildImagePyramid(int width, int height,
                               const std::vector<std::uint8_t>& rgb,
                               int rootMaxDim = 8);

/// Incremental pyramid reconstruction: feed levels coarse-to-fine.
struct ImageReassembly {
  int width = 0;   ///< resolution reached so far
  int height = 0;
  int levelsApplied = 0;
  std::vector<std::uint8_t> rgb;

  /// Apply the next level. `isRoot` resets the state (level 0 of a new
  /// step); a refinement must match the expected next resolution.
  void apply(const ImageLevel& level, bool isRoot);

  /// Current picture scaled to the full frame resolution (coarse levels
  /// upsampled; after the finest level this IS the original).
  std::vector<std::uint8_t> renderAt(int fullWidth, int fullHeight) const;
};

/// Reconstruct the image after applying levels [0, uptoLevel] and upsample
/// to the pyramid's full resolution. `uptoLevel == levels-1` is bit-exact.
std::vector<std::uint8_t> reconstructImage(const ImagePyramid& pyramid,
                                           int uptoLevel);

/// Mean absolute per-channel error between two same-size RGB buffers.
double meanAbsError(const std::vector<std::uint8_t>& a,
                    const std::vector<std::uint8_t>& b);

/// One step of the progressive ROI traversal: a node and the level it
/// lives on.
struct TraversalEntry {
  int level = 0;
  OctreeNode node;
};

/// All nodes intersecting `roi` (empty box = whole domain) in
/// coarse-before-fine order: the entire level L before any of level L+1,
/// keys ascending within a level. `finestLevel < 0` walks to the leaves.
std::vector<TraversalEntry> progressiveTraversal(const FieldOctree& tree,
                                                 const BoxI& roi,
                                                 int finestLevel = -1);

}  // namespace hemo::multires
