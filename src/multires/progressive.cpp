#include "multires/progressive.hpp"

#include <cmath>
#include <cstdlib>

#include "util/check.hpp"

namespace hemo::multires {

namespace {

constexpr int kChannels = 3;

std::size_t pixelBytes(int w, int h) {
  return static_cast<std::size_t>(w) * static_cast<std::size_t>(h) * kChannels;
}

/// Box-filter downsample by 2 in each dimension (dimensions round up, so
/// edge cells average a partial box). Exact integer rounding: the coarse
/// pixel is the rounded mean of the fine pixels it covers.
std::vector<std::uint8_t> downsampleBox(int srcW, int srcH,
                                        const std::vector<std::uint8_t>& src,
                                        int dstW, int dstH) {
  std::vector<std::uint8_t> dst(pixelBytes(dstW, dstH));
  for (int y = 0; y < dstH; ++y) {
    const int y0 = y * 2;
    const int y1 = std::min(y0 + 2, srcH);
    for (int x = 0; x < dstW; ++x) {
      const int x0 = x * 2;
      const int x1 = std::min(x0 + 2, srcW);
      const int n = (x1 - x0) * (y1 - y0);
      for (int c = 0; c < kChannels; ++c) {
        unsigned sum = 0;
        for (int sy = y0; sy < y1; ++sy) {
          for (int sx = x0; sx < x1; ++sx) {
            sum += src[(static_cast<std::size_t>(sy) * srcW + sx) * kChannels +
                       c];
          }
        }
        dst[(static_cast<std::size_t>(y) * dstW + x) * kChannels + c] =
            static_cast<std::uint8_t>((sum + n / 2) / n);
      }
    }
  }
  return dst;
}

}  // namespace

std::vector<std::uint8_t> upsampleNearest(int srcW, int srcH,
                                          const std::vector<std::uint8_t>& src,
                                          int dstW, int dstH) {
  HEMO_CHECK(src.size() == pixelBytes(srcW, srcH));
  std::vector<std::uint8_t> dst(pixelBytes(dstW, dstH));
  for (int y = 0; y < dstH; ++y) {
    // Invert the round-up halving chain: fine row y came from coarse row
    // y/2 at each halving, so the nearest source row is y >> 1 when
    // dstH == 2*srcH or 2*srcH-1; the general form maps proportionally.
    const int sy = std::min(srcH - 1, y * srcH / dstH);
    for (int x = 0; x < dstW; ++x) {
      const int sx = std::min(srcW - 1, x * srcW / dstW);
      const std::size_t s =
          (static_cast<std::size_t>(sy) * srcW + sx) * kChannels;
      const std::size_t d =
          (static_cast<std::size_t>(y) * dstW + x) * kChannels;
      for (int c = 0; c < kChannels; ++c) dst[d + c] = src[s + c];
    }
  }
  return dst;
}

ImagePyramid buildImagePyramid(int width, int height,
                               const std::vector<std::uint8_t>& rgb,
                               int rootMaxDim) {
  HEMO_CHECK(width > 0 && height > 0);
  HEMO_CHECK(rgb.size() == pixelBytes(width, height));
  HEMO_CHECK(rootMaxDim >= 1);

  // Mip chain finest-to-coarsest: images[0] is the original.
  struct Mip {
    int w, h;
    std::vector<std::uint8_t> pixels;
  };
  std::vector<Mip> mips;
  mips.push_back({width, height, rgb});
  while (std::max(mips.back().w, mips.back().h) > rootMaxDim) {
    const int dw = (mips.back().w + 1) / 2;
    const int dh = (mips.back().h + 1) / 2;
    mips.push_back(
        {dw, dh, downsampleBox(mips.back().w, mips.back().h,
                               mips.back().pixels, dw, dh)});
  }

  ImagePyramid pyramid;
  pyramid.fullWidth = width;
  pyramid.fullHeight = height;
  // Root: raw coarse pixels. Finer levels: mod-256 residual against the
  // nearest-neighbour upsample of the level above — addition mod 256 on the
  // consumer reproduces each mip exactly, so the finest level is bit-exact.
  const auto& root = mips.back();
  pyramid.levels.push_back({root.w, root.h, root.pixels});
  for (auto it = mips.rbegin() + 1; it != mips.rend(); ++it) {
    const auto& coarse = *(it - 1);
    const auto predicted =
        upsampleNearest(coarse.w, coarse.h, coarse.pixels, it->w, it->h);
    ImageLevel lvl;
    lvl.width = it->w;
    lvl.height = it->h;
    lvl.data.resize(it->pixels.size());
    for (std::size_t i = 0; i < it->pixels.size(); ++i) {
      lvl.data[i] =
          static_cast<std::uint8_t>(it->pixels[i] - predicted[i]);
    }
    pyramid.levels.push_back(std::move(lvl));
  }
  return pyramid;
}

void ImageReassembly::apply(const ImageLevel& level, bool isRoot) {
  HEMO_CHECK(level.data.size() == pixelBytes(level.width, level.height));
  if (isRoot) {
    width = level.width;
    height = level.height;
    rgb = level.data;
    levelsApplied = 1;
    return;
  }
  HEMO_CHECK_MSG(levelsApplied > 0, "refinement before root");
  HEMO_CHECK_MSG(level.width >= width && level.height >= height,
                 "refinement coarser than current state");
  auto predicted = upsampleNearest(width, height, rgb, level.width,
                                   level.height);
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    predicted[i] = static_cast<std::uint8_t>(predicted[i] + level.data[i]);
  }
  width = level.width;
  height = level.height;
  rgb = std::move(predicted);
  ++levelsApplied;
}

std::vector<std::uint8_t> ImageReassembly::renderAt(int fullWidth,
                                                    int fullHeight) const {
  if (width == fullWidth && height == fullHeight) return rgb;
  return upsampleNearest(width, height, rgb, fullWidth, fullHeight);
}

std::vector<std::uint8_t> reconstructImage(const ImagePyramid& pyramid,
                                           int uptoLevel) {
  HEMO_CHECK(uptoLevel >= 0 &&
             uptoLevel < static_cast<int>(pyramid.levels.size()));
  ImageReassembly state;
  for (int l = 0; l <= uptoLevel; ++l) {
    state.apply(pyramid.levels[static_cast<std::size_t>(l)], l == 0);
  }
  return state.renderAt(pyramid.fullWidth, pyramid.fullHeight);
}

double meanAbsError(const std::vector<std::uint8_t>& a,
                    const std::vector<std::uint8_t>& b) {
  HEMO_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::abs(static_cast<int>(a[i]) - static_cast<int>(b[i]));
  }
  return sum / static_cast<double>(a.size());
}

std::vector<TraversalEntry> progressiveTraversal(const FieldOctree& tree,
                                                 const BoxI& roi,
                                                 int finestLevel) {
  const bool wholeDomain = roi.isEmpty();
  const int last = finestLevel < 0
                       ? tree.leafLevel()
                       : std::min(finestLevel, tree.leafLevel());
  std::vector<TraversalEntry> order;
  for (int l = 0; l <= last; ++l) {
    // level() is already key-ascending; query() preserves that order.
    const auto nodes = wholeDomain ? tree.level(l) : tree.query(l, roi);
    for (const auto& node : nodes) order.push_back({l, node});
  }
  return order;
}

}  // namespace hemo::multires
