#pragma once
/// \file roi.hpp
/// \brief Distributed context-and-detail access to the field octree.
///
/// §V of the paper: "A lower resolution data is normally used for context
/// geometry and a higher one with more details. This approach allows the
/// user to load a subset of the whole data in an initial step, inspect this
/// subset, and apply further refinement on certain regions." The functions
/// here are the collective half of that loop: every rank contributes the
/// nodes of its local octree that match a (level, region) request; the
/// master merges them exactly (aggregates are count-weighted).

#include <vector>

#include "comm/communicator.hpp"
#include "multires/octree.hpp"

namespace hemo::multires {

/// Merge per-rank node lists: nodes with equal keys combine exactly
/// (count-weighted means, min/max). Result sorted by key.
std::vector<OctreeNode> mergeNodes(
    const std::vector<std::vector<OctreeNode>>& perRank);

/// Collective: gather one full level to rank 0 (the "context" view).
/// Returns the merged nodes on rank 0, empty elsewhere.
std::vector<OctreeNode> gatherLevel(comm::Communicator& comm,
                                    const FieldOctree& tree, int level);

/// Collective: gather the nodes of `level` inside `roi` to rank 0 (the
/// "detail" view during drill-down).
std::vector<OctreeNode> gatherRoi(comm::Communicator& comm,
                                  const FieldOctree& tree, int level,
                                  const BoxI& roi);

/// One progressive drill-down: context at `contextLevel`, then refine `roi`
/// level by level down to `detailLevel`. Returns (on rank 0) the bytes that
/// crossed the network per stage — the data-movement series of bench M1.
struct DrilldownStats {
  std::vector<std::uint64_t> bytesPerStage;
  std::vector<std::size_t> nodesPerStage;
};
DrilldownStats progressiveDrilldown(comm::Communicator& comm,
                                    const FieldOctree& tree, int contextLevel,
                                    int detailLevel, const BoxI& roi);

}  // namespace hemo::multires
