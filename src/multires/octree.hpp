#pragma once
/// \file octree.hpp
/// \brief Multi-resolution field hierarchy (paper §V).
///
/// Simulation fields are cached in an octree whose level L cells are
/// 2^(maxLevel−L) voxels wide; level 0 is a single root cell. Nodes are
/// keyed by (level, Morton code) — the hierarchical indexing scheme of
/// Pascucci & Frank (paper ref [10]): parent/child moves are 3-bit shifts
/// and each level is a sorted key array, so lookup is a binary search and
/// range queries are contiguous scans.
///
/// Each rank builds the octree over its *owned* sites only; the structure
/// (which cells exist) is fixed after construction, while the aggregates
/// are refreshed in situ from the solver's macroscopic fields each time the
/// post-processing pipeline runs. Rank-local trees merge exactly across
/// ranks because all aggregates are weighted by fluid-site count.

#include <cstdint>
#include <vector>

#include "lb/domain_map.hpp"
#include "util/bbox.hpp"
#include "util/check.hpp"
#include "util/morton.hpp"
#include "util/vec.hpp"

namespace hemo::multires {

/// Aggregates of one octree cell. Trivially copyable — nodes travel over
/// the wire during context gathering and ROI streaming.
struct OctreeNode {
  std::uint64_t key = 0;     ///< Morton code of the cell at its level
  std::uint32_t count = 0;   ///< fluid sites under the cell
  float meanScalar = 0.f;
  float minScalar = 0.f;
  float maxScalar = 0.f;
  Vec3f meanVelocity{0.f, 0.f, 0.f};
};

class FieldOctree {
 public:
  /// Build the structure over the sites owned by `domain`. `leafCellLog2`
  /// sets the leaf resolution: leaves are 2^leafCellLog2 voxels wide
  /// (0 = one node per site).
  explicit FieldOctree(const lb::DomainMap& domain, int leafCellLog2 = 0);

  /// Number of levels; level numLevels()-1 is the leaf level.
  int numLevels() const { return static_cast<int>(levels_.size()); }
  int leafLevel() const { return numLevels() - 1; }

  /// Cell width (in voxels) at a level: 2^(rootLog2 − level).
  int cellWidth(int level) const { return 1 << shiftForLevel(level); }

  /// Nodes of a level, ascending by key.
  const std::vector<OctreeNode>& level(int l) const {
    return levels_[static_cast<std::size_t>(l)];
  }

  /// Refresh all aggregates from per-owned-site scalar + velocity fields.
  void update(const std::vector<double>& scalar,
              const std::vector<Vec3d>& velocity);

  /// Binary-search a node by key; nullptr if the cell has no fluid here.
  const OctreeNode* find(int level, std::uint64_t key) const;

  /// All nodes of `level` whose cells intersect the lattice box `roi`.
  std::vector<OctreeNode> query(int level, const BoxI& roi) const;

  /// Lattice-space box covered by a node.
  BoxI cellBox(int level, std::uint64_t key) const;

  /// Reconstruct the scalar field at `level`: each owned site gets its
  /// containing cell's mean. Used for level-error measurements.
  std::vector<double> reconstructScalar(int level) const;

  /// Bytes one level occupies (the §V data-reduction metric).
  std::uint64_t levelBytes(int l) const {
    return levels_[static_cast<std::size_t>(l)].size() * sizeof(OctreeNode);
  }

  const lb::DomainMap& domain() const { return *domain_; }

 private:
  int shiftForLevel(int level) const { return maxLevelLog2_ - level; }

  const lb::DomainMap* domain_;
  int leafCellLog2_;
  int maxLevelLog2_ = 0;  ///< log2 of the root cell width in voxels
  /// levels_[l] sorted by key.
  std::vector<std::vector<OctreeNode>> levels_;
  /// Per owned site: index of its leaf node in the leaf level.
  std::vector<std::uint32_t> leafOfSite_;
  /// For each level > 0: node index of each node's parent in level-1.
  std::vector<std::vector<std::uint32_t>> parentOf_;
};

/// Relative L2 error of the level-L reconstruction against the full field.
double levelError(const FieldOctree& tree, int level,
                  const std::vector<double>& scalar);

/// Structure-of-arrays split of a node vector for wire encoding: the keys
/// column delta+varint-compresses (Morton keys of one level are sorted and
/// close together) and the float columns quantise independently, which an
/// array-of-structs layout cannot do.
struct NodeColumns {
  std::vector<std::uint64_t> keys;
  std::vector<std::uint64_t> counts;
  std::vector<float> meanScalar;
  std::vector<float> minScalar;
  std::vector<float> maxScalar;
  std::vector<float> velocity;  ///< xyz interleaved, 3 per node
};

NodeColumns splitColumns(const std::vector<OctreeNode>& nodes);
std::vector<OctreeNode> mergeColumns(const NodeColumns& cols);

}  // namespace hemo::multires
