#include "multires/octree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/stats.hpp"

namespace hemo::multires {

FieldOctree::FieldOctree(const lb::DomainMap& domain, int leafCellLog2)
    : domain_(&domain), leafCellLog2_(leafCellLog2) {
  HEMO_CHECK(leafCellLog2 >= 0);
  const auto& lat = domain.lattice();
  const Vec3i dims = lat.dims();
  const int maxDim = std::max({dims.x, dims.y, dims.z});
  maxLevelLog2_ = 0;
  while ((1 << maxLevelLog2_) < maxDim) ++maxLevelLog2_;
  const int numLevels = maxLevelLog2_ - leafCellLog2_ + 1;
  HEMO_CHECK_MSG(numLevels >= 1, "leaf cells coarser than the domain");
  levels_.resize(static_cast<std::size_t>(numLevels));

  // Enumerate the distinct cell keys per level from the owned sites.
  const auto n = domain.numOwned();
  std::vector<std::uint64_t> keys(static_cast<std::size_t>(n));
  for (int l = numLevels - 1; l >= 0; --l) {
    const int shift = shiftForLevel(l);
    for (std::uint32_t s = 0; s < n; ++s) {
      const Vec3i p = lat.sitePosition(domain.globalOf(s));
      keys[s] = morton3(Vec3i{p.x >> shift, p.y >> shift, p.z >> shift});
    }
    auto sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    auto& nodes = levels_[static_cast<std::size_t>(l)];
    nodes.resize(sorted.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) nodes[i].key = sorted[i];
    if (l == numLevels - 1) {
      leafOfSite_.resize(static_cast<std::size_t>(n));
      for (std::uint32_t s = 0; s < n; ++s) {
        const auto it =
            std::lower_bound(sorted.begin(), sorted.end(), keys[s]);
        leafOfSite_[s] =
            static_cast<std::uint32_t>(std::distance(sorted.begin(), it));
      }
    }
  }

  // Parent links: node at level l -> index in level l-1.
  parentOf_.resize(levels_.size());
  for (int l = 1; l < numLevels; ++l) {
    const auto& nodes = levels_[static_cast<std::size_t>(l)];
    const auto& parents = levels_[static_cast<std::size_t>(l - 1)];
    auto& links = parentOf_[static_cast<std::size_t>(l)];
    links.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto pkey = mortonParent(nodes[i].key);
      const auto it = std::lower_bound(
          parents.begin(), parents.end(), pkey,
          [](const OctreeNode& a, std::uint64_t k) { return a.key < k; });
      HEMO_CHECK(it != parents.end() && it->key == pkey);
      links[i] =
          static_cast<std::uint32_t>(std::distance(parents.begin(), it));
    }
  }
}

void FieldOctree::update(const std::vector<double>& scalar,
                         const std::vector<Vec3d>& velocity) {
  const auto n = domain_->numOwned();
  HEMO_CHECK(scalar.size() == n && velocity.size() == n);
  for (auto& nodes : levels_) {
    for (auto& node : nodes) {
      node.count = 0;
      node.meanScalar = 0.f;
      node.minScalar = std::numeric_limits<float>::max();
      node.maxScalar = std::numeric_limits<float>::lowest();
      node.meanVelocity = {0.f, 0.f, 0.f};
    }
  }
  // Accumulate sites into leaves (means kept as sums until the end).
  auto& leaves = levels_.back();
  for (std::uint32_t s = 0; s < n; ++s) {
    auto& node = leaves[static_cast<std::size_t>(leafOfSite_[s])];
    const auto v = static_cast<float>(scalar[s]);
    node.count += 1;
    node.meanScalar += v;
    node.minScalar = std::min(node.minScalar, v);
    node.maxScalar = std::max(node.maxScalar, v);
    node.meanVelocity += velocity[s].cast<float>();
  }
  // Propagate sums upward, then normalise every level.
  for (int l = numLevels() - 1; l >= 1; --l) {
    const auto& nodes = levels_[static_cast<std::size_t>(l)];
    auto& parents = levels_[static_cast<std::size_t>(l - 1)];
    const auto& links = parentOf_[static_cast<std::size_t>(l)];
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      auto& parent = parents[static_cast<std::size_t>(links[i])];
      parent.count += nodes[i].count;
      parent.meanScalar += nodes[i].meanScalar;
      parent.minScalar = std::min(parent.minScalar, nodes[i].minScalar);
      parent.maxScalar = std::max(parent.maxScalar, nodes[i].maxScalar);
      parent.meanVelocity += nodes[i].meanVelocity;
    }
  }
  for (auto& nodes : levels_) {
    for (auto& node : nodes) {
      if (node.count > 0) {
        const float inv = 1.0f / static_cast<float>(node.count);
        node.meanScalar *= inv;
        node.meanVelocity *= inv;
      }
    }
  }
}

const OctreeNode* FieldOctree::find(int level, std::uint64_t key) const {
  const auto& nodes = levels_[static_cast<std::size_t>(level)];
  const auto it = std::lower_bound(
      nodes.begin(), nodes.end(), key,
      [](const OctreeNode& a, std::uint64_t k) { return a.key < k; });
  if (it == nodes.end() || it->key != key) return nullptr;
  return &*it;
}

BoxI FieldOctree::cellBox(int level, std::uint64_t key) const {
  const int w = cellWidth(level);
  const Vec3i cell = mortonDecode3(key);
  return {cell * w, cell * w + Vec3i{w, w, w}};
}

std::vector<OctreeNode> FieldOctree::query(int level, const BoxI& roi) const {
  std::vector<OctreeNode> hits;
  for (const auto& node : levels_[static_cast<std::size_t>(level)]) {
    if (!cellBox(level, node.key).intersect(roi).isEmpty()) {
      hits.push_back(node);
    }
  }
  return hits;
}

std::vector<double> FieldOctree::reconstructScalar(int level) const {
  const auto n = domain_->numOwned();
  const int shift = shiftForLevel(level);
  const auto& lat = domain_->lattice();
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  for (std::uint32_t s = 0; s < n; ++s) {
    const Vec3i p = lat.sitePosition(domain_->globalOf(s));
    const auto key =
        morton3(Vec3i{p.x >> shift, p.y >> shift, p.z >> shift});
    const OctreeNode* node = find(level, key);
    HEMO_CHECK(node != nullptr);
    out[s] = node->meanScalar;
  }
  return out;
}

double levelError(const FieldOctree& tree, int level,
                  const std::vector<double>& scalar) {
  return relativeL2(tree.reconstructScalar(level), scalar);
}

NodeColumns splitColumns(const std::vector<OctreeNode>& nodes) {
  NodeColumns cols;
  const std::size_t n = nodes.size();
  cols.keys.reserve(n);
  cols.counts.reserve(n);
  cols.meanScalar.reserve(n);
  cols.minScalar.reserve(n);
  cols.maxScalar.reserve(n);
  cols.velocity.reserve(3 * n);
  for (const auto& node : nodes) {
    cols.keys.push_back(node.key);
    cols.counts.push_back(node.count);
    cols.meanScalar.push_back(node.meanScalar);
    cols.minScalar.push_back(node.minScalar);
    cols.maxScalar.push_back(node.maxScalar);
    cols.velocity.push_back(node.meanVelocity.x);
    cols.velocity.push_back(node.meanVelocity.y);
    cols.velocity.push_back(node.meanVelocity.z);
  }
  return cols;
}

std::vector<OctreeNode> mergeColumns(const NodeColumns& cols) {
  const std::size_t n = cols.keys.size();
  HEMO_CHECK(cols.counts.size() == n && cols.meanScalar.size() == n &&
             cols.minScalar.size() == n && cols.maxScalar.size() == n &&
             cols.velocity.size() == 3 * n);
  std::vector<OctreeNode> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i].key = cols.keys[i];
    nodes[i].count = static_cast<std::uint32_t>(cols.counts[i]);
    nodes[i].meanScalar = cols.meanScalar[i];
    nodes[i].minScalar = cols.minScalar[i];
    nodes[i].maxScalar = cols.maxScalar[i];
    nodes[i].meanVelocity = {cols.velocity[3 * i], cols.velocity[3 * i + 1],
                             cols.velocity[3 * i + 2]};
  }
  return nodes;
}

}  // namespace hemo::multires
