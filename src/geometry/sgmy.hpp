#pragma once
/// \file sgmy.hpp
/// \brief The two-level sparse geometry file format (.sgmy).
///
/// Mirrors the structure the paper describes for HemeLB's input: a coarse
/// block table that "describes blocks solely by the volume of fluid within
/// each one" — readable without touching site data, and used for the initial
/// approximate load balance — followed by per-block site payloads that a
/// subset of reading cores fetches and redistributes.
///
/// Layout (little-endian):
///   magic "SGMY", version u32
///   dims 3×i32, blockSize i32, voxelSize f64, origin 3×f64
///   iolet table: count u32, then per iolet: kind u8, bc u8, center 3×f64,
///     normal 3×f64, radius f64, density f64, speed f64
///   block table: count u64, then per non-empty block:
///     blockLinear u64, fluidCount u32, payloadOffset u64, payloadBytes u64
///   block payloads (offsets relative to payload section start):
///     per fluid site: localIndex u16, then 26 links (kind u8;
///     wall/inlet/outlet add distance f32; inlet/outlet add ioletId u16),
///     then hasNormal u8 (+ 3×f32 normal if set)

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/sparse_lattice.hpp"

namespace hemo::geometry {

struct SgmyBlockEntry {
  std::uint64_t blockLinear = 0;
  std::uint32_t fluidCount = 0;
  std::uint64_t payloadOffset = 0;  ///< relative to payload section start
  std::uint64_t payloadBytes = 0;
};

struct SgmyHeader {
  Vec3i dims;
  int blockSize = 8;
  double voxelSize = 0.0;
  Vec3d origin;
  std::vector<Iolet> iolets;
  std::vector<SgmyBlockEntry> blockTable;
  /// Absolute file offset where block payloads start.
  std::uint64_t payloadStart = 0;

  Vec3i blockDims() const {
    return {(dims.x + blockSize - 1) / blockSize,
            (dims.y + blockSize - 1) / blockSize,
            (dims.z + blockSize - 1) / blockSize};
  }

  std::uint64_t totalFluidSites() const {
    std::uint64_t n = 0;
    for (const auto& b : blockTable) n += b.fluidCount;
    return n;
  }
};

/// A decoded fluid site from a block payload.
struct DecodedSite {
  Vec3i position;
  SiteRecord record;
};

/// Write a finalized lattice to disk. Returns false on I/O failure.
bool writeSgmy(const std::string& path, const SparseLattice& lattice);

/// Typed outcome of header ingest — malformed input files are an expected
/// operational condition (wrong path, interrupted transfer, version skew),
/// not a programming error, so they must not abort the run.
enum class GeoStatus : std::uint8_t {
  kOk = 0,
  kOpenFailed,    ///< file missing or unreadable
  kBadMagic,      ///< not an sgmy file
  kBadVersion,    ///< sgmy, but a version this build cannot read
  kTruncated,     ///< file ends inside the header or a table
  kInconsistent,  ///< tables disagree with the file (counts, offsets)
};

const char* geoStatusName(GeoStatus status);

/// Read only the header + coarse block table (cheap; what every rank does).
/// Returns kOk and fills `*header` on success; on failure returns the typed
/// error and, when `detail` is non-null, a human-readable explanation.
GeoStatus tryReadSgmyHeader(const std::string& path, SgmyHeader* header,
                            std::string* detail = nullptr);

/// Throwing wrapper over tryReadSgmyHeader (legacy callers, trusted input).
SgmyHeader readSgmyHeader(const std::string& path);

/// Encode one block's sites to its payload bytes (exposed for testing and
/// for the parallel reader's redistribution).
std::vector<std::byte> encodeBlockPayload(
    const SparseLattice& lattice, const SparseLattice::BlockInfo& block);

/// Decode a block payload. `blockCoord` locates the sites in the lattice.
std::vector<DecodedSite> decodeBlockPayload(const SgmyHeader& header,
                                            std::uint64_t blockLinear,
                                            const std::vector<std::byte>& payload);

/// Read the raw payload bytes of block-table entries [first, last).
std::vector<std::vector<std::byte>> readSgmyBlockPayloads(
    const std::string& path, const SgmyHeader& header, std::size_t first,
    std::size_t last);

/// Full serial read back into a lattice (tests, single-rank tools).
SparseLattice readSgmy(const std::string& path);

}  // namespace hemo::geometry
