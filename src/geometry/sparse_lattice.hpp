#pragma once
/// \file sparse_lattice.hpp
/// \brief Sparse block-structured lattice: the fundamental data structure of
/// the HemeLB-style solver.
///
/// Vessel geometries fill only a few percent of their bounding box, so the
/// lattice is stored two-level, exactly like the paper describes HemeLB's
/// input: the box is tiled with cubic blocks (default 8³ sites); only blocks
/// containing fluid are materialised, and the coarse block table (fluid count
/// per block) alone supports the approximate initial load balance of the
/// pre-processing stage without touching any site data.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geometry/site.hpp"
#include "util/bbox.hpp"
#include "util/check.hpp"
#include "util/vec.hpp"

namespace hemo::geometry {

/// Immutable-after-finalize sparse lattice with global fluid-site ids.
/// Site ids are assigned in block-scan order: blocks ascending by row-major
/// block linear index, sites within a block ascending by row-major local
/// index. This ordering is part of the .sgmy format contract.
class SparseLattice {
 public:
  struct BlockInfo {
    Vec3i coord;               ///< block coordinates (block units)
    std::uint32_t fluidCount;  ///< number of fluid sites in this block
    std::uint64_t firstSiteId; ///< global id of the block's first fluid site
  };

  SparseLattice(const Vec3i& dims, double voxelSize, const Vec3d& origin,
                int blockSize = 8);

  // --- building (before finalize) ---------------------------------------

  /// Register a fluid site. Positions must be unique and inside dims.
  void addFluidSite(const Vec3i& pos, const SiteRecord& record);

  void setIolets(std::vector<Iolet> iolets) { iolets_ = std::move(iolets); }

  /// Assign global ids; afterwards the lattice is immutable and queryable.
  void finalize();

  // --- queries (after finalize) ------------------------------------------

  bool finalized() const { return finalized_; }
  const Vec3i& dims() const { return dims_; }
  double voxelSize() const { return voxelSize_; }
  const Vec3d& origin() const { return origin_; }
  int blockSize() const { return blockSize_; }
  Vec3i blockDims() const { return blockDims_; }
  const std::vector<Iolet>& iolets() const { return iolets_; }

  std::uint64_t numFluidSites() const { return positions_.size(); }
  std::size_t numNonEmptyBlocks() const { return blocks_.size(); }

  /// Global fluid id at a lattice position, or -1 if solid/outside.
  std::int64_t siteId(const Vec3i& pos) const;

  const Vec3i& sitePosition(std::uint64_t id) const {
    return positions_[static_cast<std::size_t>(id)];
  }
  const SiteRecord& site(std::uint64_t id) const {
    return records_[static_cast<std::size_t>(id)];
  }

  /// World-space position of a site centre.
  Vec3d siteWorld(std::uint64_t id) const {
    const Vec3i& p = sitePosition(id);
    return origin_ + (p.cast<double>() + Vec3d{0.5, 0.5, 0.5}) * voxelSize_;
  }

  /// Global id of the fluid neighbour along direction d (26-set), or -1.
  std::int64_t neighborId(std::uint64_t id, int direction) const {
    return siteId(sitePosition(id) + kDirections[static_cast<std::size_t>(direction)]);
  }

  /// Non-empty blocks in id order.
  const std::vector<BlockInfo>& blocks() const { return blocks_; }

  /// Which non-empty block (index into blocks()) a site id belongs to.
  std::size_t blockOfSite(std::uint64_t id) const;

  /// Bounding box (lattice units) of all fluid sites.
  BoxI fluidBounds() const { return fluidBounds_; }

  /// Fraction of the bounding box that is fluid — the sparsity the paper's
  /// design revolves around.
  double fluidFraction() const {
    const long long vol = 1LL * dims_.x * dims_.y * dims_.z;
    return vol > 0 ? static_cast<double>(numFluidSites()) /
                         static_cast<double>(vol)
                   : 0.0;
  }

  std::uint64_t blockLinear(const Vec3i& blockCoord) const {
    return (static_cast<std::uint64_t>(blockCoord.z) *
                static_cast<std::uint64_t>(blockDims_.y) +
            static_cast<std::uint64_t>(blockCoord.y)) *
               static_cast<std::uint64_t>(blockDims_.x) +
           static_cast<std::uint64_t>(blockCoord.x);
  }

  int localLinear(const Vec3i& posInBlock) const {
    return (posInBlock.z * blockSize_ + posInBlock.y) * blockSize_ +
           posInBlock.x;
  }

 private:
  struct StoredBlock {
    /// Dense localLinear -> global fluid id table (-1 = solid); size B³.
    std::vector<std::int64_t> localToGlobal;
  };

  Vec3i dims_;
  double voxelSize_;
  Vec3d origin_;
  int blockSize_;
  Vec3i blockDims_;
  std::vector<Iolet> iolets_;

  // Build phase: position + record pairs per block.
  struct BuildSite {
    int local;
    Vec3i pos;
    SiteRecord record;
  };
  std::unordered_map<std::uint64_t, std::vector<BuildSite>> building_;

  // Finalized storage.
  bool finalized_ = false;
  std::unordered_map<std::uint64_t, StoredBlock> blockMap_;
  std::vector<BlockInfo> blocks_;
  std::vector<Vec3i> positions_;
  std::vector<SiteRecord> records_;
  BoxI fluidBounds_ = BoxI::empty();
};

}  // namespace hemo::geometry
