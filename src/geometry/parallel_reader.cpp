#include "geometry/parallel_reader.hpp"

#include <algorithm>
#include <cstring>

#include "io/serial.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace hemo::geometry {

namespace {

std::vector<std::byte> encodeHeader(const SgmyHeader& h) {
  io::Writer w;
  w.put<std::int32_t>(h.dims.x);
  w.put<std::int32_t>(h.dims.y);
  w.put<std::int32_t>(h.dims.z);
  w.put<std::int32_t>(h.blockSize);
  w.put<double>(h.voxelSize);
  w.put<double>(h.origin.x);
  w.put<double>(h.origin.y);
  w.put<double>(h.origin.z);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(h.iolets.size()));
  for (const auto& io : h.iolets) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(io.kind));
    w.put<std::uint8_t>(static_cast<std::uint8_t>(io.bc));
    w.put<double>(io.center.x);
    w.put<double>(io.center.y);
    w.put<double>(io.center.z);
    w.put<double>(io.normal.x);
    w.put<double>(io.normal.y);
    w.put<double>(io.normal.z);
    w.put<double>(io.radius);
    w.put<double>(io.density);
    w.put<double>(io.speed);
  }
  w.put<std::uint64_t>(h.blockTable.size());
  for (const auto& e : h.blockTable) {
    w.put<std::uint64_t>(e.blockLinear);
    w.put<std::uint32_t>(e.fluidCount);
    w.put<std::uint64_t>(e.payloadOffset);
    w.put<std::uint64_t>(e.payloadBytes);
  }
  w.put<std::uint64_t>(h.payloadStart);
  return w.take();
}

SgmyHeader decodeHeader(const std::vector<std::byte>& buf) {
  io::Reader r(buf);
  SgmyHeader h;
  h.dims.x = r.get<std::int32_t>();
  h.dims.y = r.get<std::int32_t>();
  h.dims.z = r.get<std::int32_t>();
  h.blockSize = r.get<std::int32_t>();
  h.voxelSize = r.get<double>();
  h.origin.x = r.get<double>();
  h.origin.y = r.get<double>();
  h.origin.z = r.get<double>();
  const auto numIolets = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < numIolets; ++i) {
    Iolet io;
    io.kind = static_cast<Iolet::Kind>(r.get<std::uint8_t>());
    io.bc = static_cast<Iolet::Bc>(r.get<std::uint8_t>());
    io.center.x = r.get<double>();
    io.center.y = r.get<double>();
    io.center.z = r.get<double>();
    io.normal.x = r.get<double>();
    io.normal.y = r.get<double>();
    io.normal.z = r.get<double>();
    io.radius = r.get<double>();
    io.density = r.get<double>();
    io.speed = r.get<double>();
    h.iolets.push_back(io);
  }
  const auto numBlocks = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < numBlocks; ++i) {
    SgmyBlockEntry e;
    e.blockLinear = r.get<std::uint64_t>();
    e.fluidCount = r.get<std::uint32_t>();
    e.payloadOffset = r.get<std::uint64_t>();
    e.payloadBytes = r.get<std::uint64_t>();
    h.blockTable.push_back(e);
  }
  h.payloadStart = r.get<std::uint64_t>();
  return h;
}

}  // namespace

std::vector<int> assignBlocksByFluidVolume(const SgmyHeader& header,
                                           int numParts) {
  HEMO_CHECK(numParts >= 1);
  const std::uint64_t total = header.totalFluidSites();
  std::vector<int> owner(header.blockTable.size(), 0);
  // Greedy contiguous scan: close a part once it reaches the ideal share of
  // the *remaining* fluid, which keeps later parts from starving.
  std::uint64_t remaining = total;
  int part = 0;
  std::uint64_t inPart = 0;
  const std::size_t numBlocks = header.blockTable.size();
  for (std::size_t i = 0; i < numBlocks; ++i) {
    const int partsLeft = numParts - part;
    const std::uint64_t target =
        (remaining + static_cast<std::uint64_t>(partsLeft) - 1) /
        static_cast<std::uint64_t>(partsLeft);
    owner[i] = part;
    inPart += header.blockTable[i].fluidCount;
    remaining -= header.blockTable[i].fluidCount;
    const std::size_t blocksLeft = numBlocks - i - 1;
    if (part + 1 < numParts &&
        (inPart >= target ||
         blocksLeft <= static_cast<std::size_t>(numParts - part - 1))) {
      ++part;
      inPart = 0;
    }
  }
  return owner;
}

ParallelReadResult tryReadSgmyDistributed(comm::Communicator& comm,
                                          const std::string& path,
                                          int numReaders) {
  HEMO_TSPAN(kIo, "io.read_sgmy");
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kIo);
  const int size = comm.size();
  const int rank = comm.rank();
  numReaders = std::clamp(numReaders, 1, size);

  ParallelReadResult result;

  // 1. One rank touches the file system for the header; everyone else gets
  //    it over the interconnect (minimise filesystem stress). The status is
  //    broadcast *before* the header bytes so a malformed file produces the
  //    same typed failure on every rank instead of rank 0 throwing while
  //    the others sit in a collective.
  std::vector<std::byte> statusBytes(1);
  std::vector<std::byte> detailBytes;
  std::vector<std::byte> headerBytes;
  if (rank == 0) {
    SgmyHeader h;
    std::string detail;
    const GeoStatus status = tryReadSgmyHeader(path, &h, &detail);
    statusBytes[0] = static_cast<std::byte>(status);
    if (status == GeoStatus::kOk) {
      headerBytes = encodeHeader(h);
    } else {
      detailBytes.resize(detail.size());
      std::memcpy(detailBytes.data(), detail.data(), detail.size());
    }
  }
  comm.bcastBytes(statusBytes, 0);
  result.status = static_cast<GeoStatus>(statusBytes[0]);
  if (result.status != GeoStatus::kOk) {
    comm.bcastBytes(detailBytes, 0);
    result.statusDetail.assign(
        reinterpret_cast<const char*>(detailBytes.data()), detailBytes.size());
    return result;
  }
  comm.bcastBytes(headerBytes, 0);
  result.header = decodeHeader(headerBytes);
  const auto& table = result.header.blockTable;

  // 2. Everyone derives the same coarse block->owner balance.
  result.blockOwner = assignBlocksByFluidVolume(result.header, size);

  // 3. Reading cores fetch disjoint contiguous table ranges. Ranges are
  //    aligned to owner groups (reader r coves the blocks owned by ranks
  //    [r·size/numReaders, (r+1)·size/numReaders)), so increasing the
  //    reader count smoothly converts distribution communication into
  //    local file reads — the §IV.B balance knob.
  std::vector<std::size_t> readerStart(static_cast<std::size_t>(numReaders) + 1,
                                       table.size());
  readerStart[0] = 0;
  {
    auto readerOfOwner = [&](int owner) {
      return owner * numReaders / size;
    };
    int nextReader = 1;
    for (std::size_t i = 0; i < table.size() && nextReader < numReaders; ++i) {
      while (nextReader < numReaders &&
             readerOfOwner(result.blockOwner[i]) >= nextReader) {
        readerStart[static_cast<std::size_t>(nextReader)] = i;
        ++nextReader;
      }
    }
  }

  // 4. Read + route payloads to owners: frame = (tableIdx u64, payload).
  //    The reader of owner group g is that group's leader rank
  //    (g·size/numReaders), so its own blocks never cross the network.
  int readerGroup = -1;
  for (int g = 0; g < numReaders; ++g) {
    if (rank == g * size / numReaders) readerGroup = g;
  }
  std::vector<io::Writer> perDest(static_cast<std::size_t>(size));
  if (readerGroup >= 0) {
    result.wasReader = true;
    const std::size_t first =
        readerStart[static_cast<std::size_t>(readerGroup)];
    const std::size_t last =
        readerStart[static_cast<std::size_t>(readerGroup) + 1];
    auto payloads = readSgmyBlockPayloads(path, result.header, first, last);
    for (std::size_t i = first; i < last; ++i) {
      result.bytesReadFromDisk += payloads[i - first].size();
      auto& w = perDest[static_cast<std::size_t>(result.blockOwner[i])];
      w.put<std::uint64_t>(i);
      w.putVec(payloads[i - first]);
    }
  }
  std::vector<std::vector<std::byte>> toSend(static_cast<std::size_t>(size));
  for (int d = 0; d < size; ++d) {
    toSend[static_cast<std::size_t>(d)] =
        perDest[static_cast<std::size_t>(d)].take();
  }
  const auto received = comm.alltoallVec(toSend);

  // 5. Decode owned blocks.
  for (const auto& buf : received) {
    io::Reader r(buf);
    while (!r.atEnd()) {
      const auto tableIdx = r.get<std::uint64_t>();
      const auto payload = r.getVec<std::byte>();
      auto sites = decodeBlockPayload(
          result.header, table[static_cast<std::size_t>(tableIdx)].blockLinear,
          payload);
      result.ownedSites.insert(result.ownedSites.end(),
                               std::make_move_iterator(sites.begin()),
                               std::make_move_iterator(sites.end()));
    }
  }
  return result;
}

ParallelReadResult readSgmyDistributed(comm::Communicator& comm,
                                       const std::string& path,
                                       int numReaders) {
  auto result = tryReadSgmyDistributed(comm, path, numReaders);
  // Every rank holds the same status here, so this throw is collectively
  // consistent — no rank is left waiting inside a collective.
  HEMO_CHECK_MSG(result.ok(), "sgmy ingest failed ("
                                  << geoStatusName(result.status) << "): "
                                  << result.statusDetail);
  return result;
}

}  // namespace hemo::geometry
