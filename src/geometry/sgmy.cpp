#include "geometry/sgmy.hpp"

#include <cstdio>
#include <fstream>

#include "io/serial.hpp"
#include "util/check.hpp"

namespace hemo::geometry {

namespace {
constexpr char kMagic[4] = {'S', 'G', 'M', 'Y'};
constexpr std::uint32_t kVersion = 2;

void putVec3i(io::Writer& w, const Vec3i& v) {
  w.put<std::int32_t>(v.x);
  w.put<std::int32_t>(v.y);
  w.put<std::int32_t>(v.z);
}

Vec3i getVec3i(io::Reader& r) {
  const int x = r.get<std::int32_t>();
  const int y = r.get<std::int32_t>();
  const int z = r.get<std::int32_t>();
  return {x, y, z};
}

void putVec3d(io::Writer& w, const Vec3d& v) {
  w.put<double>(v.x);
  w.put<double>(v.y);
  w.put<double>(v.z);
}

Vec3d getVec3d(io::Reader& r) {
  const double x = r.get<double>();
  const double y = r.get<double>();
  const double z = r.get<double>();
  return {x, y, z};
}
}  // namespace

std::vector<std::byte> encodeBlockPayload(
    const SparseLattice& lattice, const SparseLattice::BlockInfo& block) {
  io::Writer w;
  for (std::uint64_t id = block.firstSiteId;
       id < block.firstSiteId + block.fluidCount; ++id) {
    const Vec3i pos = lattice.sitePosition(id);
    const int B = lattice.blockSize();
    const Vec3i in{pos.x % B, pos.y % B, pos.z % B};
    w.put<std::uint16_t>(static_cast<std::uint16_t>(lattice.localLinear(in)));
    const SiteRecord& rec = lattice.site(id);
    for (const auto& link : rec.links) {
      w.put<std::uint8_t>(static_cast<std::uint8_t>(link.kind));
      if (link.kind != LinkKind::kBulk) {
        w.put<float>(link.wallDistance);
        if (link.kind != LinkKind::kWall) {
          w.put<std::uint16_t>(link.ioletId);
        }
      }
    }
    w.put<std::uint8_t>(rec.hasWallNormal);
    if (rec.hasWallNormal) {
      w.put<float>(rec.wallNormal.x);
      w.put<float>(rec.wallNormal.y);
      w.put<float>(rec.wallNormal.z);
    }
  }
  return w.take();
}

std::vector<DecodedSite> decodeBlockPayload(
    const SgmyHeader& header, std::uint64_t blockLinear,
    const std::vector<std::byte>& payload) {
  const Vec3i bd = header.blockDims();
  const int B = header.blockSize;
  const auto bx = blockLinear % static_cast<std::uint64_t>(bd.x);
  const auto rest = blockLinear / static_cast<std::uint64_t>(bd.x);
  const Vec3i blockCoord{
      static_cast<int>(bx),
      static_cast<int>(rest % static_cast<std::uint64_t>(bd.y)),
      static_cast<int>(rest / static_cast<std::uint64_t>(bd.y))};

  std::vector<DecodedSite> sites;
  io::Reader r(payload);
  while (!r.atEnd()) {
    DecodedSite s;
    const int local = r.get<std::uint16_t>();
    const int lz = local / (B * B);
    const int ly = (local / B) % B;
    const int lx = local % B;
    s.position = Vec3i{blockCoord.x * B + lx, blockCoord.y * B + ly,
                       blockCoord.z * B + lz};
    for (auto& link : s.record.links) {
      link.kind = static_cast<LinkKind>(r.get<std::uint8_t>());
      if (link.kind != LinkKind::kBulk) {
        link.wallDistance = r.get<float>();
        if (link.kind != LinkKind::kWall) {
          link.ioletId = r.get<std::uint16_t>();
        }
      }
    }
    s.record.hasWallNormal = r.get<std::uint8_t>();
    if (s.record.hasWallNormal) {
      s.record.wallNormal.x = r.get<float>();
      s.record.wallNormal.y = r.get<float>();
      s.record.wallNormal.z = r.get<float>();
    }
    sites.push_back(std::move(s));
  }
  return sites;
}

bool writeSgmy(const std::string& path, const SparseLattice& lattice) {
  HEMO_CHECK(lattice.finalized());

  // Encode all payloads first so the table can carry sizes/offsets.
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(lattice.blocks().size());
  for (const auto& block : lattice.blocks()) {
    payloads.push_back(encodeBlockPayload(lattice, block));
  }

  io::Writer head;
  head.putRaw(kMagic, 4);
  head.put<std::uint32_t>(kVersion);
  putVec3i(head, lattice.dims());
  head.put<std::int32_t>(lattice.blockSize());
  head.put<double>(lattice.voxelSize());
  putVec3d(head, lattice.origin());
  head.put<std::uint32_t>(static_cast<std::uint32_t>(lattice.iolets().size()));
  for (const auto& io : lattice.iolets()) {
    head.put<std::uint8_t>(static_cast<std::uint8_t>(io.kind));
    head.put<std::uint8_t>(static_cast<std::uint8_t>(io.bc));
    putVec3d(head, io.center);
    putVec3d(head, io.normal);
    head.put<double>(io.radius);
    head.put<double>(io.density);
    head.put<double>(io.speed);
  }
  head.put<std::uint64_t>(lattice.blocks().size());
  std::uint64_t offset = 0;
  for (std::size_t i = 0; i < lattice.blocks().size(); ++i) {
    const auto& block = lattice.blocks()[i];
    head.put<std::uint64_t>(lattice.blockLinear(block.coord));
    head.put<std::uint32_t>(block.fluidCount);
    head.put<std::uint64_t>(offset);
    head.put<std::uint64_t>(payloads[i].size());
    offset += payloads[i].size();
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(head.bytes().data(), 1, head.size(), f) == head.size();
  for (const auto& p : payloads) {
    ok = ok && std::fwrite(p.data(), 1, p.size(), f) == p.size();
  }
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

const char* geoStatusName(GeoStatus status) {
  switch (status) {
    case GeoStatus::kOk: return "ok";
    case GeoStatus::kOpenFailed: return "open-failed";
    case GeoStatus::kBadMagic: return "bad-magic";
    case GeoStatus::kBadVersion: return "bad-version";
    case GeoStatus::kTruncated: return "truncated";
    case GeoStatus::kInconsistent: return "inconsistent";
  }
  return "unknown";
}

namespace {
GeoStatus fail(GeoStatus status, std::string* detail, const std::string& why) {
  if (detail != nullptr) *detail = why;
  return status;
}
/// Per-entry on-disk sizes, used to bound table counts *before* reserving.
constexpr std::uint64_t kIoletEntryBytes = 74;
constexpr std::uint64_t kBlockEntryBytes = 28;
/// Minimum payload bytes one fluid site can encode to (u16 local index +
/// 26 one-byte bulk links + hasNormal u8).
constexpr std::uint64_t kMinSiteBytes = 29;
}  // namespace

GeoStatus tryReadSgmyHeader(const std::string& path, SgmyHeader* header,
                            std::string* detail) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    return fail(GeoStatus::kOpenFailed, detail, "cannot open " + path);
  }
  const std::string raw((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
  io::Reader r(reinterpret_cast<const std::byte*>(raw.data()), raw.size());

  SgmyHeader h;
  try {
    char magic[4];
    r.getRaw(magic, 4);
    if (std::string(magic, 4) != "SGMY") {
      return fail(GeoStatus::kBadMagic, detail, "bad magic in " + path);
    }
    const auto version = r.get<std::uint32_t>();
    if (version != kVersion) {
      return fail(GeoStatus::kBadVersion, detail,
                  "unsupported sgmy version " + std::to_string(version));
    }

    h.dims = getVec3i(r);
    h.blockSize = r.get<std::int32_t>();
    h.voxelSize = r.get<double>();
    h.origin = getVec3d(r);
    if (h.dims.x <= 0 || h.dims.y <= 0 || h.dims.z <= 0 || h.blockSize <= 0) {
      return fail(GeoStatus::kInconsistent, detail,
                  "non-positive dims/blockSize in " + path);
    }
    const auto numIolets = r.get<std::uint32_t>();
    // Count sanity *before* the loop allocates: each entry has a fixed
    // on-disk size, so a count the remaining bytes cannot hold is corrupt.
    if (numIolets > r.remaining() / kIoletEntryBytes) {
      return fail(GeoStatus::kTruncated, detail,
                  "iolet table exceeds file size in " + path);
    }
    for (std::uint32_t i = 0; i < numIolets; ++i) {
      Iolet io;
      io.kind = static_cast<Iolet::Kind>(r.get<std::uint8_t>());
      io.bc = static_cast<Iolet::Bc>(r.get<std::uint8_t>());
      io.center = getVec3d(r);
      io.normal = getVec3d(r);
      io.radius = r.get<double>();
      io.density = r.get<double>();
      io.speed = r.get<double>();
      h.iolets.push_back(io);
    }
    const auto numBlocks = r.get<std::uint64_t>();
    if (numBlocks > r.remaining() / kBlockEntryBytes) {
      return fail(GeoStatus::kTruncated, detail,
                  "block table exceeds file size in " + path);
    }
    h.blockTable.reserve(static_cast<std::size_t>(numBlocks));
    for (std::uint64_t i = 0; i < numBlocks; ++i) {
      SgmyBlockEntry e;
      e.blockLinear = r.get<std::uint64_t>();
      e.fluidCount = r.get<std::uint32_t>();
      e.payloadOffset = r.get<std::uint64_t>();
      e.payloadBytes = r.get<std::uint64_t>();
      h.blockTable.push_back(e);
    }
  } catch (const CheckError&) {
    return fail(GeoStatus::kTruncated, detail,
                "file ends inside the header in " + path);
  }
  h.payloadStart = raw.size() - r.remaining();

  // Table-vs-file consistency: every payload must lie inside the payload
  // section and be large enough to hold its declared fluid sites. Overflow-
  // safe forms, since all three quantities come from the (untrusted) file.
  const std::uint64_t payloadSection = raw.size() - h.payloadStart;
  const std::uint64_t numBlockCells =
      static_cast<std::uint64_t>(h.blockDims().x) *
      static_cast<std::uint64_t>(h.blockDims().y) *
      static_cast<std::uint64_t>(h.blockDims().z);
  for (const auto& e : h.blockTable) {
    if (e.blockLinear >= numBlockCells) {
      return fail(GeoStatus::kInconsistent, detail,
                  "block index outside the lattice in " + path);
    }
    if (e.payloadOffset > payloadSection ||
        e.payloadBytes > payloadSection - e.payloadOffset) {
      return fail(GeoStatus::kInconsistent, detail,
                  "block payload beyond end of file in " + path);
    }
    if (e.fluidCount > e.payloadBytes / kMinSiteBytes) {
      return fail(GeoStatus::kInconsistent, detail,
                  "block fluid count exceeds its payload in " + path);
    }
  }
  *header = std::move(h);
  return GeoStatus::kOk;
}

SgmyHeader readSgmyHeader(const std::string& path) {
  SgmyHeader h;
  std::string detail;
  const GeoStatus status = tryReadSgmyHeader(path, &h, &detail);
  HEMO_CHECK_MSG(status == GeoStatus::kOk,
                 "sgmy read failed (" << geoStatusName(status)
                                      << "): " << detail);
  return h;
}

std::vector<std::vector<std::byte>> readSgmyBlockPayloads(
    const std::string& path, const SgmyHeader& header, std::size_t first,
    std::size_t last) {
  HEMO_CHECK(first <= last && last <= header.blockTable.size());
  std::ifstream f(path, std::ios::binary);
  HEMO_CHECK_MSG(f.good(), "cannot open " << path);
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(last - first);
  for (std::size_t i = first; i < last; ++i) {
    const auto& e = header.blockTable[i];
    std::vector<std::byte> buf(static_cast<std::size_t>(e.payloadBytes));
    f.seekg(static_cast<std::streamoff>(header.payloadStart + e.payloadOffset));
    f.read(reinterpret_cast<char*>(buf.data()),
           static_cast<std::streamsize>(buf.size()));
    HEMO_CHECK_MSG(f.good(), "short read in " << path);
    payloads.push_back(std::move(buf));
  }
  return payloads;
}

SparseLattice readSgmy(const std::string& path) {
  const SgmyHeader h = readSgmyHeader(path);
  SparseLattice lattice(h.dims, h.voxelSize, h.origin, h.blockSize);
  lattice.setIolets(h.iolets);
  const auto payloads =
      readSgmyBlockPayloads(path, h, 0, h.blockTable.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    for (const auto& site :
         decodeBlockPayload(h, h.blockTable[i].blockLinear, payloads[i])) {
      lattice.addFluidSite(site.position, site.record);
    }
  }
  lattice.finalize();
  return lattice;
}

}  // namespace hemo::geometry
