#include "geometry/voxelizer.hpp"

#include <cmath>

#include "util/check.hpp"

namespace hemo::geometry {

namespace {

/// Fraction t in (0,1] at which the segment p→q crosses iolet plane `io`,
/// or a negative value if it does not.
double ioletCrossing(const Iolet& io, const Vec3d& p, const Vec3d& q) {
  const double dp = (p - io.center).dot(io.normal);
  const double dq = (q - io.center).dot(io.normal);
  if (dp < 0.0 || dq >= 0.0) return -1.0;  // p must be inside, q beyond
  const double denom = dp - dq;
  if (denom <= 0.0) return -1.0;
  return dp / denom;
}

/// Bisect the scene SDF along p→q for the wall crossing fraction. Assumes
/// sdf(p) < 0. If sdf(q) is also negative (the cap clipped the fluid, not
/// the wall), returns 1.0.
double wallCrossing(const Scene& scene, const Vec3d& p, const Vec3d& q,
                    int iterations) {
  if (scene.sdf(q) < 0.0) return 1.0;
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (scene.sdf(lerp(p, q, mid)) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

SparseLattice voxelize(const Scene& scene, const VoxelizeOptions& options) {
  HEMO_CHECK(options.voxelSize > 0.0);
  const BoxD wb = scene.bounds();
  HEMO_CHECK_MSG(!wb.isEmpty(), "scene has no shapes");
  const double h = options.voxelSize;
  const Vec3d pad = Vec3d(1.0, 1.0, 1.0) * (h * options.padVoxels);
  const Vec3d origin = wb.lo - pad;
  const Vec3d span = wb.hi + pad - origin;
  const Vec3i dims{static_cast<int>(std::ceil(span.x / h)),
                   static_cast<int>(std::ceil(span.y / h)),
                   static_cast<int>(std::ceil(span.z / h))};

  SparseLattice lattice(dims, h, origin);
  lattice.setIolets(scene.iolets());

  auto worldOf = [&](const Vec3i& p) {
    return origin + (p.cast<double>() + Vec3d{0.5, 0.5, 0.5}) * h;
  };

  for (int z = 0; z < dims.z; ++z) {
    for (int y = 0; y < dims.y; ++y) {
      for (int x = 0; x < dims.x; ++x) {
        const Vec3i pos{x, y, z};
        const Vec3d p = worldOf(pos);
        if (!scene.isFluid(p)) continue;

        SiteRecord rec;
        bool nearWall = false;
        for (int d = 0; d < kNumDirections; ++d) {
          const Vec3i npos = pos + kDirections[static_cast<std::size_t>(d)];
          const Vec3d q = worldOf(npos);
          const bool neighborInside = npos.x >= 0 && npos.x < dims.x &&
                                      npos.y >= 0 && npos.y < dims.y &&
                                      npos.z >= 0 && npos.z < dims.z;
          if (neighborInside && scene.isFluid(q)) continue;  // bulk link

          LinkInfo link;
          // Iolet planes take precedence: the nearest crossing wins.
          double bestT = 2.0;
          int bestIolet = -1;
          const auto& iolets = scene.iolets();
          for (std::size_t i = 0; i < iolets.size(); ++i) {
            const double t = ioletCrossing(iolets[i], p, q);
            if (t >= 0.0 && t < bestT) {
              bestT = t;
              bestIolet = static_cast<int>(i);
            }
          }
          const double tWall = wallCrossing(scene, p, q,
                                            options.cutIterations);
          if (bestIolet >= 0 && bestT <= tWall) {
            link.kind = iolets[static_cast<std::size_t>(bestIolet)].kind ==
                                Iolet::Kind::kInlet
                            ? LinkKind::kInlet
                            : LinkKind::kOutlet;
            link.ioletId = static_cast<std::uint16_t>(bestIolet);
            link.wallDistance = static_cast<float>(bestT);
          } else {
            link.kind = LinkKind::kWall;
            link.wallDistance = static_cast<float>(tWall);
            nearWall = true;
          }
          rec.links[static_cast<std::size_t>(d)] = link;
        }
        if (nearWall) {
          const Vec3d g = scene.sdfGradient(p, 0.5 * h).normalized();
          rec.wallNormal = g.cast<float>();
          rec.hasWallNormal = 1;
        }
        lattice.addFluidSite(pos, rec);
      }
    }
  }
  lattice.finalize();
  return lattice;
}

}  // namespace hemo::geometry
