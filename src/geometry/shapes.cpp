#include "geometry/shapes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace hemo::geometry {

void Scene::addShape(std::unique_ptr<Shape> shape) {
  bounds_.expand(shape->bounds());
  shapes_.push_back(std::move(shape));
}

double Scene::sdf(const Vec3d& p) const {
  double d = std::numeric_limits<double>::infinity();
  for (const auto& s : shapes_) d = std::min(d, s->sdf(p));
  return d;
}

bool Scene::isFluid(const Vec3d& p) const {
  if (sdf(p) >= 0.0) return false;
  for (const auto& io : iolets_) {
    if ((p - io.center).dot(io.normal) < 0.0) return false;
  }
  return true;
}

Vec3d Scene::sdfGradient(const Vec3d& p, double h) const {
  const Vec3d dx{h, 0, 0}, dy{0, h, 0}, dz{0, 0, h};
  return Vec3d{sdf(p + dx) - sdf(p - dx), sdf(p + dy) - sdf(p - dy),
               sdf(p + dz) - sdf(p - dz)} /
         (2.0 * h);
}

Scene makeStraightTube(double length, double radius) {
  HEMO_CHECK(length > 0 && radius > 0);
  Scene scene;
  // Extend the capsule slightly past the caps so the iolet planes cut a
  // clean circular disc rather than the capsule's hemispherical ends.
  const double pad = radius * 1.5;
  scene.addShape(std::make_unique<CapsuleShape>(
      Vec3d{-pad, 0, 0}, Vec3d{length + pad, 0, 0}, radius));
  Iolet in;
  in.kind = Iolet::Kind::kInlet;
  in.center = {0, 0, 0};
  in.normal = {1, 0, 0};
  in.radius = radius;
  Iolet out;
  out.kind = Iolet::Kind::kOutlet;
  out.center = {length, 0, 0};
  out.normal = {-1, 0, 0};
  out.radius = radius;
  scene.addIolet(in);
  scene.addIolet(out);
  return scene;
}

Scene makeBentTube(double limbLength, double bendRadius, double angleRad,
                   double tubeRadius) {
  HEMO_CHECK(limbLength >= 0 && bendRadius > tubeRadius && angleRad > 0);
  Scene scene;
  // Arc centred at the origin in the xy-plane, from angle 0 to angleRad.
  auto arc = std::make_unique<ArcTubeShape>(Vec3d{0, 0, 0}, Vec3d{1, 0, 0},
                                            Vec3d{0, 1, 0}, bendRadius,
                                            angleRad, tubeRadius);
  const Vec3d startPoint = arc->arcPoint(0.0);
  const Vec3d startTan = arc->arcTangent(0.0);
  const Vec3d endPoint = arc->arcPoint(angleRad);
  const Vec3d endTan = arc->arcTangent(angleRad);
  scene.addShape(std::move(arc));

  const double pad = tubeRadius * 1.5;
  const Vec3d inletCenter = startPoint - startTan * limbLength;
  const Vec3d outletCenter = endPoint + endTan * limbLength;
  scene.addShape(std::make_unique<CapsuleShape>(
      inletCenter - startTan * pad, startPoint, tubeRadius));
  scene.addShape(std::make_unique<CapsuleShape>(
      endPoint, outletCenter + endTan * pad, tubeRadius));

  Iolet in;
  in.kind = Iolet::Kind::kInlet;
  in.center = inletCenter;
  in.normal = startTan;
  in.radius = tubeRadius;
  Iolet out;
  out.kind = Iolet::Kind::kOutlet;
  out.center = outletCenter;
  out.normal = -endTan;
  out.radius = tubeRadius;
  scene.addIolet(in);
  scene.addIolet(out);
  return scene;
}

Scene makeBifurcation(double parentLength, double parentRadius,
                      double childLength, double childRadius,
                      double angleRad) {
  HEMO_CHECK(parentLength > 0 && childLength > 0);
  HEMO_CHECK(parentRadius > 0 && childRadius > 0);
  Scene scene;
  const Vec3d junction{parentLength, 0, 0};
  const double pad = parentRadius * 1.5;
  scene.addShape(std::make_unique<CapsuleShape>(Vec3d{-pad, 0, 0}, junction,
                                                parentRadius));
  const Vec3d dirA{std::cos(angleRad), std::sin(angleRad), 0};
  const Vec3d dirB{std::cos(angleRad), -std::sin(angleRad), 0};
  const Vec3d endA = junction + dirA * childLength;
  const Vec3d endB = junction + dirB * childLength;
  scene.addShape(std::make_unique<CapsuleShape>(junction, endA + dirA * pad,
                                                childRadius));
  scene.addShape(std::make_unique<CapsuleShape>(junction, endB + dirB * pad,
                                                childRadius));

  Iolet in;
  in.kind = Iolet::Kind::kInlet;
  in.center = {0, 0, 0};
  in.normal = {1, 0, 0};
  in.radius = parentRadius;
  scene.addIolet(in);
  Iolet outA;
  outA.kind = Iolet::Kind::kOutlet;
  outA.center = endA;
  outA.normal = -dirA;
  outA.radius = childRadius;
  scene.addIolet(outA);
  Iolet outB = outA;
  outB.center = endB;
  outB.normal = -dirB;
  scene.addIolet(outB);
  return scene;
}

Scene makeAneurysmVessel(double length, double vesselRadius,
                         double aneurysmRadius, double neckInset) {
  HEMO_CHECK(length > 0 && vesselRadius > 0 && aneurysmRadius > 0);
  Scene scene;
  const double pad = vesselRadius * 1.5;
  scene.addShape(std::make_unique<CapsuleShape>(
      Vec3d{-pad, 0, 0}, Vec3d{length + pad, 0, 0}, vesselRadius));
  // The dome centre sits above the wall; neckInset pulls it towards the
  // axis so the sphere and tube overlap into an open neck.
  const double centerY =
      vesselRadius + aneurysmRadius * (1.0 - 2.0 * neckInset);
  scene.addShape(std::make_unique<SphereShape>(
      Vec3d{length * 0.5, centerY, 0}, aneurysmRadius));

  Iolet in;
  in.kind = Iolet::Kind::kInlet;
  in.center = {0, 0, 0};
  in.normal = {1, 0, 0};
  in.radius = vesselRadius;
  Iolet out;
  out.kind = Iolet::Kind::kOutlet;
  out.center = {length, 0, 0};
  out.normal = {-1, 0, 0};
  out.radius = vesselRadius;
  scene.addIolet(in);
  scene.addIolet(out);
  return scene;
}

}  // namespace hemo::geometry
