#pragma once
/// \file parallel_reader.hpp
/// \brief Parallel geometry input: a configurable subset of "reading cores"
/// fetches block payloads from the file system and redistributes them to the
/// block owners.
///
/// This is the pre-processing step of the paper's §IV.B verbatim: "A subset
/// of the cores then read the detailed geometry data and distribute the data
/// to those cores that require it. This approach minimises stress on the
/// filesystem. Additionally, the number of reading cores enables control
/// over the balance between file I/O and distribution communication." The
/// reader-count sweep of bench P1 measures exactly that trade-off.

#include <cstdint>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "geometry/sgmy.hpp"

namespace hemo::geometry {

struct ParallelReadResult {
  /// Typed ingest outcome — identical on every rank (the header read
  /// happens on rank 0, but its status is broadcast before any rank
  /// commits to the collective payload exchange, so a malformed file
  /// fails everywhere instead of stranding the non-reader ranks).
  GeoStatus status = GeoStatus::kOk;
  std::string statusDetail;
  bool ok() const { return status == GeoStatus::kOk; }

  SgmyHeader header;
  /// block-table index -> owning rank, from the coarse fluid-volume balance.
  std::vector<int> blockOwner;
  /// Sites owned by this rank, decoded.
  std::vector<DecodedSite> ownedSites;
  /// Bytes this rank read from the file system (0 for non-readers).
  std::uint64_t bytesReadFromDisk = 0;
  /// True if this rank was one of the reading cores.
  bool wasReader = false;
};

/// Contiguous block->rank assignment balancing per-block fluid counts — the
/// "initial approximate load balance" computed from the coarse table alone.
std::vector<int> assignBlocksByFluidVolume(const SgmyHeader& header,
                                           int numParts);

/// Collective: all ranks of `comm` participate. `numReaders` reading cores
/// — the leader rank of each owner group — read disjoint contiguous payload
/// ranges; payloads travel to their owners over the communicator
/// (classified as Traffic::kIo). With numReaders == size every rank reads
/// its own blocks (maximum file-system stress, no redistribution); with one
/// reader the file is touched once and everything crosses the network.
/// Non-throwing variant: a malformed or missing file yields the same typed
/// `status` on every rank (broadcast from rank 0 before any payload
/// exchange), so callers can fail the whole job coherently.
ParallelReadResult tryReadSgmyDistributed(comm::Communicator& comm,
                                          const std::string& path,
                                          int numReaders);

/// Throwing wrapper over tryReadSgmyDistributed; the throw happens on every
/// rank (collectively consistent).
ParallelReadResult readSgmyDistributed(comm::Communicator& comm,
                                       const std::string& path,
                                       int numReaders);

}  // namespace hemo::geometry
