#pragma once
/// \file voxelizer.hpp
/// \brief Converts an SDF vessel scene into a sparse lattice with per-link
/// wall/iolet cut information — the pre-processing "initialise geometry"
/// step of the paper's §IV.B.

#include "geometry/shapes.hpp"
#include "geometry/sparse_lattice.hpp"

namespace hemo::geometry {

struct VoxelizeOptions {
  /// Lattice spacing in world units.
  double voxelSize = 0.1;
  /// Padding (in voxels) added around the scene bounds.
  int padVoxels = 2;
  /// Bisection iterations when locating the wall crossing along a link.
  int cutIterations = 20;
};

/// Voxelise `scene` onto a lattice of spacing voxelSize. Every lattice point
/// with scene.isFluid() true becomes a fluid site; its 26 links are
/// classified as bulk / wall / inlet / outlet with the crossing fraction.
SparseLattice voxelize(const Scene& scene, const VoxelizeOptions& options);

}  // namespace hemo::geometry
