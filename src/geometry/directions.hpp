#pragma once
/// \file directions.hpp
/// \brief The 26-neighbour direction set shared by the geometry file format,
/// the voxelizer and the LB lattices.
///
/// The geometry description is lattice-independent (like HemeLB's gmy
/// format): every fluid site stores cut information for all 26 lattice
/// links; a specific LB velocity set (D3Q15/D3Q19) then maps its directions
/// onto this set.

#include <array>

#include "util/vec.hpp"

namespace hemo::geometry {

inline constexpr int kNumDirections = 26;

namespace detail {
constexpr std::array<Vec3i, kNumDirections> makeDirections() {
  std::array<Vec3i, kNumDirections> dirs{};
  int k = 0;
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        dirs[static_cast<std::size_t>(k++)] = Vec3i{dx, dy, dz};
      }
    }
  }
  return dirs;
}
}  // namespace detail

/// All 26 unit-cube directions in lexicographic (dx,dy,dz) order.
inline constexpr std::array<Vec3i, kNumDirections> kDirections =
    detail::makeDirections();

/// Index of the opposite direction. The lexicographic ordering of the
/// symmetric set means negation reverses the order.
constexpr int oppositeDirection(int d) { return kNumDirections - 1 - d; }

/// Find the direction index of a given offset vector; -1 if not a neighbour
/// offset.
constexpr int directionIndex(const Vec3i& d) {
  for (int i = 0; i < kNumDirections; ++i) {
    if (kDirections[static_cast<std::size_t>(i)] == d) return i;
  }
  return -1;
}

}  // namespace hemo::geometry
