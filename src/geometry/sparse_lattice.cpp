#include "geometry/sparse_lattice.hpp"

#include <algorithm>

namespace hemo::geometry {

SparseLattice::SparseLattice(const Vec3i& dims, double voxelSize,
                             const Vec3d& origin, int blockSize)
    : dims_(dims), voxelSize_(voxelSize), origin_(origin),
      blockSize_(blockSize) {
  HEMO_CHECK(dims.x > 0 && dims.y > 0 && dims.z > 0);
  HEMO_CHECK(voxelSize > 0.0);
  HEMO_CHECK(blockSize >= 2);
  blockDims_ = {(dims.x + blockSize - 1) / blockSize,
                (dims.y + blockSize - 1) / blockSize,
                (dims.z + blockSize - 1) / blockSize};
}

void SparseLattice::addFluidSite(const Vec3i& pos, const SiteRecord& record) {
  HEMO_CHECK(!finalized_);
  HEMO_CHECK_MSG(pos.x >= 0 && pos.x < dims_.x && pos.y >= 0 &&
                     pos.y < dims_.y && pos.z >= 0 && pos.z < dims_.z,
                 "site out of bounds " << pos);
  const Vec3i bc{pos.x / blockSize_, pos.y / blockSize_, pos.z / blockSize_};
  const Vec3i in{pos.x % blockSize_, pos.y % blockSize_, pos.z % blockSize_};
  building_[blockLinear(bc)].push_back(
      BuildSite{localLinear(in), pos, record});
}

void SparseLattice::finalize() {
  HEMO_CHECK(!finalized_);
  std::vector<std::uint64_t> keys;
  keys.reserve(building_.size());
  for (const auto& [key, sites] : building_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  const std::size_t cube = static_cast<std::size_t>(blockSize_) *
                           static_cast<std::size_t>(blockSize_) *
                           static_cast<std::size_t>(blockSize_);
  std::uint64_t nextId = 0;
  for (const auto key : keys) {
    auto& sites = building_[key];
    std::sort(sites.begin(), sites.end(),
              [](const BuildSite& a, const BuildSite& b) {
                return a.local < b.local;
              });
    for (std::size_t i = 1; i < sites.size(); ++i) {
      HEMO_CHECK_MSG(sites[i].local != sites[i - 1].local,
                     "duplicate fluid site at " << sites[i].pos);
    }
    StoredBlock stored;
    stored.localToGlobal.assign(cube, -1);

    BlockInfo info;
    const auto bx = key % static_cast<std::uint64_t>(blockDims_.x);
    const auto rest = key / static_cast<std::uint64_t>(blockDims_.x);
    info.coord = {static_cast<int>(bx),
                  static_cast<int>(rest % static_cast<std::uint64_t>(blockDims_.y)),
                  static_cast<int>(rest / static_cast<std::uint64_t>(blockDims_.y))};
    info.fluidCount = static_cast<std::uint32_t>(sites.size());
    info.firstSiteId = nextId;

    for (const auto& s : sites) {
      stored.localToGlobal[static_cast<std::size_t>(s.local)] =
          static_cast<std::int64_t>(nextId);
      positions_.push_back(s.pos);
      records_.push_back(s.record);
      fluidBounds_.expand(s.pos);
      ++nextId;
    }
    blockMap_.emplace(key, std::move(stored));
    blocks_.push_back(info);
  }
  building_.clear();
  finalized_ = true;
}

std::int64_t SparseLattice::siteId(const Vec3i& pos) const {
  HEMO_CHECK(finalized_);
  if (pos.x < 0 || pos.x >= dims_.x || pos.y < 0 || pos.y >= dims_.y ||
      pos.z < 0 || pos.z >= dims_.z) {
    return -1;
  }
  const Vec3i bc{pos.x / blockSize_, pos.y / blockSize_, pos.z / blockSize_};
  const auto it = blockMap_.find(blockLinear(bc));
  if (it == blockMap_.end()) return -1;
  const Vec3i in{pos.x % blockSize_, pos.y % blockSize_, pos.z % blockSize_};
  return it->second.localToGlobal[static_cast<std::size_t>(localLinear(in))];
}

std::size_t SparseLattice::blockOfSite(std::uint64_t id) const {
  HEMO_CHECK(finalized_ && id < numFluidSites());
  // blocks_ is sorted by firstSiteId; binary-search the containing block.
  auto it = std::upper_bound(
      blocks_.begin(), blocks_.end(), id,
      [](std::uint64_t v, const BlockInfo& b) { return v < b.firstSiteId; });
  HEMO_CHECK(it != blocks_.begin());
  return static_cast<std::size_t>(std::distance(blocks_.begin(), it) - 1);
}

}  // namespace hemo::geometry
