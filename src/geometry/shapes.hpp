#pragma once
/// \file shapes.hpp
/// \brief Signed-distance-function vessel geometry.
///
/// The paper's workloads are patient-specific vessel trees with aneurysms —
/// data we do not have. The substitution (see DESIGN.md §2) is an analytic
/// vessel construction kit producing the same kind of sparse, tubular,
/// thin-walled fluid domains: capsules (straight segments), arc tubes
/// (bends), spheres (saccular aneurysms), composed by union into a scene
/// that is capped by inlet/outlet planes.

#include <memory>
#include <vector>

#include "geometry/site.hpp"
#include "util/bbox.hpp"
#include "util/vec.hpp"

namespace hemo::geometry {

/// A solid region described by a signed distance function (negative inside).
class Shape {
 public:
  virtual ~Shape() = default;
  virtual double sdf(const Vec3d& p) const = 0;
  /// Conservative world-space bounds of the inside region.
  virtual BoxD bounds() const = 0;
};

/// Sphere — models a saccular aneurysm dome.
class SphereShape final : public Shape {
 public:
  SphereShape(const Vec3d& center, double radius)
      : center_(center), radius_(radius) {}
  double sdf(const Vec3d& p) const override {
    return (p - center_).norm() - radius_;
  }
  BoxD bounds() const override {
    const Vec3d r{radius_, radius_, radius_};
    return {center_ - r, center_ + r};
  }

 private:
  Vec3d center_;
  double radius_;
};

/// Capsule (cylinder with hemispherical ends) — a straight vessel segment.
class CapsuleShape final : public Shape {
 public:
  CapsuleShape(const Vec3d& a, const Vec3d& b, double radius)
      : a_(a), b_(b), radius_(radius) {}
  double sdf(const Vec3d& p) const override {
    const Vec3d ab = b_ - a_;
    const double len2 = ab.norm2();
    double t = len2 > 0 ? (p - a_).dot(ab) / len2 : 0.0;
    t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
    return (p - (a_ + ab * t)).norm() - radius_;
  }
  BoxD bounds() const override {
    BoxD b = BoxD::empty();
    const Vec3d r{radius_, radius_, radius_};
    b.expand(a_ - r);
    b.expand(a_ + r);
    b.expand(b_ - r);
    b.expand(b_ + r);
    return b;
  }

 private:
  Vec3d a_, b_;
  double radius_;
};

/// Tube following a circular arc — a vessel bend. The arc lies in the plane
/// spanned by (u, v) around `center` with bend radius R, from angle 0 to
/// `angle` (radians); the tube has radius r.
class ArcTubeShape final : public Shape {
 public:
  ArcTubeShape(const Vec3d& center, const Vec3d& u, const Vec3d& v,
               double bendRadius, double angle, double tubeRadius)
      : center_(center), u_(u.normalized()), angle_(angle),
        bendRadius_(bendRadius), tubeRadius_(tubeRadius) {
    // Gram-Schmidt to guarantee an orthonormal in-plane frame.
    v_ = (v - u_ * v.dot(u_)).normalized();
    w_ = u_.cross(v_);
  }

  double sdf(const Vec3d& p) const override {
    const Vec3d d = p - center_;
    const double x = d.dot(u_);
    const double y = d.dot(v_);
    const double z = d.dot(w_);
    double theta = std::atan2(y, x);
    if (theta < 0.0) theta += 2.0 * kPi;
    // Clamp to the arc's angular range; off-range points measure distance to
    // the nearest arc endpoint.
    if (theta > angle_) {
      const double dEnd = distToEndpoint(p, angle_);
      const double dStart = distToEndpoint(p, 0.0);
      return std::min(dEnd, dStart) - tubeRadius_;
    }
    const double inPlane = std::sqrt(x * x + y * y) - bendRadius_;
    return std::sqrt(inPlane * inPlane + z * z) - tubeRadius_;
  }

  BoxD bounds() const override {
    const double reach = bendRadius_ + tubeRadius_;
    const Vec3d r{reach, reach, reach};
    return {center_ - r, center_ + r};
  }

  /// Arc point at parameter angle t (for attaching segments/iolets).
  Vec3d arcPoint(double t) const {
    return center_ + u_ * (bendRadius_ * std::cos(t)) +
           v_ * (bendRadius_ * std::sin(t));
  }
  /// Unit tangent at parameter t.
  Vec3d arcTangent(double t) const {
    return (u_ * (-std::sin(t)) + v_ * std::cos(t)).normalized();
  }

 private:
  static constexpr double kPi = 3.14159265358979323846;

  double distToEndpoint(const Vec3d& p, double t) const {
    return (p - arcPoint(t)).norm();
  }

  Vec3d center_, u_, v_, w_;
  double angle_, bendRadius_, tubeRadius_;
};

/// A vessel scene: union of shapes, clipped by iolet cap planes.
/// Fluid = {p : min_i sdf_i(p) < 0 and p on the fluid side of every iolet}.
class Scene {
 public:
  void addShape(std::unique_ptr<Shape> shape);
  void addIolet(const Iolet& iolet) { iolets_.push_back(iolet); }

  const std::vector<Iolet>& iolets() const { return iolets_; }

  /// Signed distance of the shape union (caps not applied).
  double sdf(const Vec3d& p) const;

  /// True if p is in the fluid (inside the union and inside all caps).
  bool isFluid(const Vec3d& p) const;

  /// World bounds of the union.
  BoxD bounds() const { return bounds_; }

  /// Numerical SDF gradient (outward normal when on the surface).
  Vec3d sdfGradient(const Vec3d& p, double h) const;

 private:
  std::vector<std::unique_ptr<Shape>> shapes_;
  std::vector<Iolet> iolets_;
  BoxD bounds_ = BoxD::empty();
};

// --- vessel construction kit -------------------------------------------

/// Straight tube along +x from (0,0,0) to (length,0,0) with inlet at x=0 and
/// outlet at x=length.
Scene makeStraightTube(double length, double radius);

/// 90°-style bend: straight inlet limb, circular arc, straight outlet limb.
Scene makeBentTube(double limbLength, double bendRadius, double angleRad,
                   double tubeRadius);

/// Symmetric Y-bifurcation: one parent along +x splitting into two children
/// at ±`angleRad` in the xy-plane. One inlet, two outlets.
Scene makeBifurcation(double parentLength, double parentRadius,
                      double childLength, double childRadius,
                      double angleRad);

/// Parent vessel with a saccular aneurysm: straight tube along +x with a
/// sphere of `aneurysmRadius` welded to the side wall at mid-length, offset
/// in +y. The neck overlap is controlled by `neckInset` (how deep the sphere
/// centre sits towards the vessel axis, in units of aneurysmRadius).
Scene makeAneurysmVessel(double length, double vesselRadius,
                         double aneurysmRadius, double neckInset = 0.35);

}  // namespace hemo::geometry
