#pragma once
/// \file site.hpp
/// \brief Per-site boundary description of the sparse lattice.

#include <array>
#include <cstdint>

#include "geometry/directions.hpp"
#include "util/vec.hpp"

namespace hemo::geometry {

/// What a lattice link from a fluid site crosses before reaching the
/// neighbouring site position.
enum class LinkKind : std::uint8_t {
  kBulk = 0,   ///< neighbour is fluid; normal streaming
  kWall = 1,   ///< link cut by the vessel wall
  kInlet = 2,  ///< link crosses an inlet plane
  kOutlet = 3  ///< link crosses an outlet plane
};

/// Cut information for one of the 26 links of a fluid site.
struct LinkInfo {
  LinkKind kind = LinkKind::kBulk;
  /// Fraction in (0,1] along the link at which the boundary is crossed
  /// (meaningful for kWall/kInlet/kOutlet).
  float wallDistance = 0.0f;
  /// Which inlet/outlet (index into the lattice's iolet table).
  std::uint16_t ioletId = 0;
};

/// Full boundary record of one fluid site.
struct SiteRecord {
  std::array<LinkInfo, kNumDirections> links{};
  /// Approximate outward wall normal (valid when hasWallNormal).
  Vec3f wallNormal{0.f, 0.f, 0.f};
  std::uint8_t hasWallNormal = 0;

  bool isEdgeSite() const {
    for (const auto& l : links) {
      if (l.kind != LinkKind::kBulk) return true;
    }
    return false;
  }

  bool touchesWall() const {
    for (const auto& l : links) {
      if (l.kind == LinkKind::kWall) return true;
    }
    return false;
  }
};

/// An inlet or outlet: a circular cap on the vessel surface.
struct Iolet {
  enum class Kind : std::uint8_t { kInlet = 0, kOutlet = 1 };
  /// Boundary-condition family applied at this cap.
  enum class Bc : std::uint8_t {
    kPressure = 0,  ///< anti-bounce-back at the target density
    kVelocity = 1   ///< Ladd bounce-back at the target normal speed
  };
  Kind kind = Kind::kInlet;
  Bc bc = Bc::kPressure;
  Vec3d center{};
  /// Unit normal pointing *into* the fluid.
  Vec3d normal{};
  double radius = 0.0;
  /// Target density (pressure BC).
  double density = 1.0;
  /// Target normal inflow speed, lattice units (velocity BC).
  double speed = 0.0;
};

}  // namespace hemo::geometry
