#pragma once
/// \file csv.hpp
/// \brief Minimal CSV emitter for benchmark result rows.

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace hemo::io {

/// Buffers rows and writes them to a file (or any ostream). Fields are
/// stringified with operator<<; commas/quotes in fields are quoted.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  template <typename... Ts>
  void addRow(const Ts&... fields) {
    std::vector<std::string> row;
    row.reserve(sizeof...(fields));
    (row.push_back(stringify(fields)), ...);
    rows_.push_back(std::move(row));
  }

  std::size_t numRows() const { return rows_.size(); }

  void write(std::ostream& os) const {
    writeRow(os, header_);
    for (const auto& r : rows_) writeRow(os, r);
  }

  bool writeFile(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    write(f);
    return static_cast<bool>(f);
  }

 private:
  template <typename T>
  static std::string stringify(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  static void writeRow(std::ostream& os, const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      const std::string& f = row[i];
      if (f.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char c : f) {
          if (c == '"') os << '"';
          os << c;
        }
        os << '"';
      } else {
        os << f;
      }
    }
    os << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hemo::io
