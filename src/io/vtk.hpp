#pragma once
/// \file vtk.hpp
/// \brief Legacy VTK writers so in situ products plug into the standard
/// post-processing ecosystem (ParaView/VisIt — the systems the paper's
/// related work couples to via libsim/Catalyst-style adaptors).
///
/// ASCII legacy format (.vtk), three shapes:
///   * point clouds with attached scalars/vectors (WSS samples, tracers),
///   * polylines (streamlines / pathlines / streaklines),
///   * image data (rendered frames or LIC slices as STRUCTURED_POINTS).

#include <string>
#include <vector>

#include "util/vec.hpp"

namespace hemo::io {

/// A named scalar field over the same point set.
struct VtkScalars {
  std::string name;
  std::vector<double> values;
};

/// A named vector field over the same point set.
struct VtkVectors {
  std::string name;
  std::vector<Vec3d> values;
};

/// Write a point cloud with optional per-point attributes.
bool writeVtkPoints(const std::string& path,
                    const std::vector<Vec3d>& points,
                    const std::vector<VtkScalars>& scalars = {},
                    const std::vector<VtkVectors>& vectors = {});

/// Write polylines (each inner vector is one line's vertex list).
bool writeVtkPolylines(const std::string& path,
                       const std::vector<std::vector<Vec3f>>& lines);

/// Write a 2-D scalar image as STRUCTURED_POINTS (LIC slices, field maps).
bool writeVtkImage(const std::string& path, int width, int height,
                   const std::vector<float>& values,
                   const std::string& fieldName = "intensity");

}  // namespace hemo::io
