#include "io/vtk.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace hemo::io {

namespace {

std::FILE* openVtk(const std::string& path, const char* kind) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return nullptr;
  std::fprintf(f, "# vtk DataFile Version 3.0\nhemoflow %s\nASCII\n", kind);
  return f;
}

}  // namespace

bool writeVtkPoints(const std::string& path, const std::vector<Vec3d>& points,
                    const std::vector<VtkScalars>& scalars,
                    const std::vector<VtkVectors>& vectors) {
  for (const auto& s : scalars) HEMO_CHECK(s.values.size() == points.size());
  for (const auto& v : vectors) HEMO_CHECK(v.values.size() == points.size());
  std::FILE* f = openVtk(path, "points");
  if (f == nullptr) return false;
  std::fprintf(f, "DATASET POLYDATA\nPOINTS %zu double\n", points.size());
  for (const auto& p : points) {
    std::fprintf(f, "%.9g %.9g %.9g\n", p.x, p.y, p.z);
  }
  std::fprintf(f, "VERTICES %zu %zu\n", points.size(), points.size() * 2);
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f, "1 %zu\n", i);
  }
  if (!scalars.empty() || !vectors.empty()) {
    std::fprintf(f, "POINT_DATA %zu\n", points.size());
    for (const auto& s : scalars) {
      std::fprintf(f, "SCALARS %s double 1\nLOOKUP_TABLE default\n",
                   s.name.c_str());
      for (const double v : s.values) std::fprintf(f, "%.9g\n", v);
    }
    for (const auto& v : vectors) {
      std::fprintf(f, "VECTORS %s double\n", v.name.c_str());
      for (const auto& u : v.values) {
        std::fprintf(f, "%.9g %.9g %.9g\n", u.x, u.y, u.z);
      }
    }
  }
  return std::fclose(f) == 0;
}

bool writeVtkPolylines(const std::string& path,
                       const std::vector<std::vector<Vec3f>>& lines) {
  std::FILE* f = openVtk(path, "polylines");
  if (f == nullptr) return false;
  std::size_t totalPoints = 0;
  for (const auto& line : lines) totalPoints += line.size();
  std::fprintf(f, "DATASET POLYDATA\nPOINTS %zu float\n", totalPoints);
  for (const auto& line : lines) {
    for (const auto& p : line) {
      std::fprintf(f, "%.7g %.7g %.7g\n", static_cast<double>(p.x),
                   static_cast<double>(p.y), static_cast<double>(p.z));
    }
  }
  std::fprintf(f, "LINES %zu %zu\n", lines.size(),
               lines.size() + totalPoints);
  std::size_t offset = 0;
  for (const auto& line : lines) {
    std::fprintf(f, "%zu", line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      std::fprintf(f, " %zu", offset + i);
    }
    std::fprintf(f, "\n");
    offset += line.size();
  }
  return std::fclose(f) == 0;
}

bool writeVtkImage(const std::string& path, int width, int height,
                   const std::vector<float>& values,
                   const std::string& fieldName) {
  HEMO_CHECK(values.size() == static_cast<std::size_t>(width) *
                                  static_cast<std::size_t>(height));
  std::FILE* f = openVtk(path, "image");
  if (f == nullptr) return false;
  std::fprintf(f,
               "DATASET STRUCTURED_POINTS\nDIMENSIONS %d %d 1\n"
               "ORIGIN 0 0 0\nSPACING 1 1 1\nPOINT_DATA %zu\n"
               "SCALARS %s float 1\nLOOKUP_TABLE default\n",
               width, height, values.size(), fieldName.c_str());
  for (const float v : values) {
    std::fprintf(f, "%.7g\n", static_cast<double>(v));
  }
  return std::fclose(f) == 0;
}

}  // namespace hemo::io
