#pragma once
/// \file serial.hpp
/// \brief Little-endian byte serialisation used by the geometry file format,
/// checkpoints and the steering wire protocol.
///
/// The format is explicit (no struct memcpy of aggregates with padding), so
/// files and steering frames are portable across compilers.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace hemo::io {

/// Appends primitives to a growing byte buffer.
class Writer {
 public:
  const std::vector<std::byte>& bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  template <typename T>
  void put(T v) {
    static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
    // Host is little-endian x86; the format is defined as little-endian.
    std::byte staged[sizeof(T)];
    std::memcpy(staged, &v, sizeof(T));
    // GCC 12 at -O3 mis-tracks object sizes through std::vector's range
    // insert and reports a bogus stringop-overflow; the range is exactly
    // sizeof(T) bytes of the array above.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#pragma GCC diagnostic ignored "-Warray-bounds"
    buf_.insert(buf_.end(), staged, staged + sizeof(T));
#pragma GCC diagnostic pop
  }

  void putString(const std::string& s) {
    put<std::uint32_t>(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  template <typename T>
  void putVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(v.size());
    putRaw(v.data(), v.size() * sizeof(T));
  }

  void putRaw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

 private:
  std::vector<std::byte> buf_;
};

/// Reads primitives back; bounds-checked.
class Reader {
 public:
  explicit Reader(const std::vector<std::byte>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  Reader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool atEnd() const { return pos_ == size_; }

  template <typename T>
  T get() {
    static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
    HEMO_CHECK_MSG(remaining() >= sizeof(T), "serial underrun");
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string getString() {
    const auto n = get<std::uint32_t>();
    HEMO_CHECK_MSG(remaining() >= n, "serial underrun (string)");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> getVec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    // Division form: `n * sizeof(T)` wraps for adversarial counts.
    HEMO_CHECK_MSG(n <= remaining() / sizeof(T), "serial underrun (vector)");
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0) {
      std::memcpy(v.data(), data_ + pos_, static_cast<std::size_t>(n) * sizeof(T));
    }
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return v;
  }

  void getRaw(void* out, std::size_t n) {
    HEMO_CHECK_MSG(remaining() >= n, "serial underrun (raw)");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace hemo::io
