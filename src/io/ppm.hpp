#pragma once
/// \file ppm.hpp
/// \brief Binary PPM (P6) / PGM (P5) image writers for the off-screen
/// framebuffers produced by the visualisation component.

#include <cstdint>
#include <string>
#include <vector>

namespace hemo::io {

/// Write an RGB8 image (row-major, 3 bytes per pixel) as binary PPM.
/// Returns false on I/O failure.
bool writePpm(const std::string& path, int width, int height,
              const std::vector<std::uint8_t>& rgb);

/// Write an 8-bit grayscale image as binary PGM.
bool writePgm(const std::string& path, int width, int height,
              const std::vector<std::uint8_t>& gray);

}  // namespace hemo::io
