#include "io/ppm.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace hemo::io {

namespace {
bool writePnm(const std::string& path, const char* magic, int width,
              int height, int channels, const std::vector<std::uint8_t>& px) {
  HEMO_CHECK(width > 0 && height > 0);
  HEMO_CHECK(px.size() == static_cast<std::size_t>(width) *
                              static_cast<std::size_t>(height) *
                              static_cast<std::size_t>(channels));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fprintf(f, "%s\n%d %d\n255\n", magic, width, height);
  const std::size_t written = std::fwrite(px.data(), 1, px.size(), f);
  const bool ok = (written == px.size()) && (std::fclose(f) == 0);
  return ok;
}
}  // namespace

bool writePpm(const std::string& path, int width, int height,
              const std::vector<std::uint8_t>& rgb) {
  return writePnm(path, "P6", width, height, 3, rgb);
}

bool writePgm(const std::string& path, int width, int height,
              const std::vector<std::uint8_t>& gray) {
  return writePnm(path, "P5", width, height, 1, gray);
}

}  // namespace hemo::io
