#pragma once
/// \file scheduler.hpp
/// \brief Adaptive in situ scheduling.
///
/// §III lists scheduling as a core exascale post-processing challenge, and
/// the steering client may "increase the visualisation rate" at will. The
/// scheduler closes that loop automatically: given a budget for the
/// fraction of runtime the in situ pipeline may consume, it picks the
/// visualisation cadence from the *measured* step and pipeline costs.
///
/// With the pipeline running every N steps, its runtime share is
/// f = P / (N·S + P); solving f <= budget gives
/// N >= P(1 − budget) / (budget · S).

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hemo::core {

class AdaptiveVisScheduler {
 public:
  /// `budget` is the admissible in-situ share of total runtime, in (0,1).
  explicit AdaptiveVisScheduler(double budget, int minEvery = 1,
                                int maxEvery = 10000)
      : budget_(budget), minEvery_(minEvery), maxEvery_(maxEvery) {
    HEMO_CHECK(budget > 0.0 && budget < 1.0);
    HEMO_CHECK(minEvery >= 1 && maxEvery >= minEvery);
  }

  /// Feed measured costs (seconds per solver step, seconds per pipeline
  /// execution). Exponentially smoothed so one noisy sample cannot flap
  /// the cadence.
  void observe(double stepSeconds, double pipelineSeconds) {
    if (stepSeconds <= 0.0 || pipelineSeconds < 0.0) return;
    if (stepCost_ <= 0.0) {
      stepCost_ = stepSeconds;
      pipeCost_ = pipelineSeconds;
    } else {
      constexpr double kAlpha = 0.3;
      stepCost_ += kAlpha * (stepSeconds - stepCost_);
      pipeCost_ += kAlpha * (pipelineSeconds - pipeCost_);
    }
  }

  /// Cadence keeping the pipeline share at or below the budget.
  int recommendedEvery() const {
    if (stepCost_ <= 0.0) return minEvery_;
    const double n =
        pipeCost_ * (1.0 - budget_) / (budget_ * stepCost_);
    return std::clamp(static_cast<int>(std::ceil(n)), minEvery_, maxEvery_);
  }

  /// Pipeline share of runtime at a given cadence under current estimates.
  double predictedShare(int every) const {
    if (stepCost_ <= 0.0 || every < 1) return 0.0;
    return pipeCost_ / (every * stepCost_ + pipeCost_);
  }

  double budget() const { return budget_; }
  double stepCostEstimate() const { return stepCost_; }
  double pipelineCostEstimate() const { return pipeCost_; }

 private:
  double budget_;
  int minEvery_, maxEvery_;
  double stepCost_ = 0.0;
  double pipeCost_ = 0.0;
};

}  // namespace hemo::core
