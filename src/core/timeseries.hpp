#pragma once
/// \file timeseries.hpp
/// \brief Reduced-observable time series.
///
/// The steering client can ask for one observable at a time; long-running
/// monitoring instead records a row of reduced observables at a fixed
/// cadence — the in situ product that replaces writing fields to disk for
/// later time-series analysis. Rows live on rank 0 and export to CSV.

#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "io/csv.hpp"
#include "lb/domain_map.hpp"
#include "lb/wss.hpp"

namespace hemo::core {

/// One sampled row of global flow observables.
struct ObservableRow {
  std::uint64_t step = 0;
  double totalMass = 0.0;
  double meanSpeed = 0.0;
  double maxSpeed = 0.0;
  double massFluxX = 0.0;
  double meanWss = 0.0;
  double maxWss = 0.0;
};

class ObservableSeries {
 public:
  /// Collective: reduce the current fields into one row (stored on rank 0;
  /// returned on every rank for convenience).
  ObservableRow sample(comm::Communicator& comm, const lb::DomainMap& domain,
                       const lb::MacroFields& macro, std::uint64_t step) {
    ObservableRow row;
    row.step = step;
    double mass = 0.0, speedSum = 0.0, speedMax = 0.0, flux = 0.0;
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      const double s = macro.u[l].norm();
      mass += macro.rho[l];
      speedSum += s;
      speedMax = std::max(speedMax, s);
      flux += macro.rho[l] * macro.u[l].x;
    }
    double wssSum = 0.0, wssMax = 0.0;
    std::uint64_t wssCount = 0;
    if (!macro.stress.empty()) {
      for (const auto& w : lb::computeWallShearStress(domain, macro)) {
        wssSum += w.wss;
        wssMax = std::max(wssMax, w.wss);
        ++wssCount;
      }
    }
    const auto sites = comm.allreduceSum<std::uint64_t>(domain.numOwned());
    row.totalMass = comm.allreduceSum(mass);
    row.meanSpeed =
        sites > 0 ? comm.allreduceSum(speedSum) / static_cast<double>(sites)
                  : 0.0;
    row.maxSpeed = comm.allreduceMax(speedMax);
    row.massFluxX = comm.allreduceSum(flux);
    const auto wallSites = comm.allreduceSum(wssCount);
    row.meanWss = wallSites > 0 ? comm.allreduceSum(wssSum) /
                                      static_cast<double>(wallSites)
                                : 0.0;
    row.maxWss = comm.allreduceMax(wssMax);
    if (comm.rank() == 0) rows_.push_back(row);
    return row;
  }

  const std::vector<ObservableRow>& rows() const { return rows_; }

  /// Export the recorded series (rank 0).
  bool writeCsv(const std::string& path) const {
    io::CsvWriter csv({"step", "mass", "mean_speed", "max_speed",
                       "mass_flux_x", "mean_wss", "max_wss"});
    for (const auto& r : rows_) {
      csv.addRow(r.step, r.totalMass, r.meanSpeed, r.maxSpeed, r.massFluxX,
                 r.meanWss, r.maxWss);
    }
    return csv.writeFile(path);
  }

 private:
  std::vector<ObservableRow> rows_;
};

}  // namespace hemo::core
