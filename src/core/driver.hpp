#pragma once
/// \file driver.hpp
/// \brief The closed co-design loop of Fig 2: pre-processed simulation +
/// concurrent in situ post-processing + computational steering, running
/// until completion or a terminate command.
///
/// Per step the driver (on every rank, collectively):
///   1. polls the steering server — commands broadcast from the master and
///      applied identically everywhere (vis parameters, sim parameters,
///      pause/resume, ROI requests, frame requests, terminate);
///   2. advances the LB solver one step (unless paused);
///   3. every `visEvery` steps runs the Fig 3 pipeline and pushes the
///      resulting image to the steering client;
///   4. every `statusEvery` steps emits a status report (runtime estimate,
///      consistency checks — §I's "status informations").

#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "comm/channel.hpp"
#include "comm/profiler.hpp"
#include "core/pipeline.hpp"
#include "core/scheduler.hpp"
#include "core/sentinel.hpp"
#include "lb/checkpoint.hpp"
#include "lb/solver.hpp"
#include "partition/repartition.hpp"
#include "serve/broker.hpp"
#include "steer/guard.hpp"
#include "steer/server.hpp"
#include "telemetry/step_report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/timer.hpp"

namespace hemo::lb {
class BuddyStore;  // lb/buddy.hpp — diskless buddy checkpoint store
}

namespace hemo::core {

struct DriverConfig {
  lb::LbParams lb;
  int visEvery = 10;
  int statusEvery = 25;
  /// Volume rendering settings (camera steerable at runtime).
  vis::VolumeRenderOptions render;
  /// Streamline seeds (empty disables the map stage's tracing).
  std::vector<Vec3d> streamSeeds;
  vis::StreamlineParams streamParams;
  bool computeWss = true;
  bool enableLic = false;
  vis::LicOptions lic;
  /// Octree context level gathered by the filter stage.
  int contextLevel = 2;
  /// Octree leaf cell width log2 (coarser leaves = cheaper updates).
  int octreeLeafLog2 = 0;
  /// Total steps the user intends to run (for the ETA estimate).
  int plannedSteps = 0;
  /// If > 0: adapt visEvery automatically so the in situ pipeline consumes
  /// at most this fraction of the runtime (scheduling, §III challenge 4).
  double adaptiveVisBudget = 0.0;
  /// If > 0 (and checkpointDir set): write a striped checkpoint every this
  /// many completed steps. Restart with restoreLatest().
  int checkpointEvery = 0;
  /// Directory receiving ckpt_<step>.hemockpt manifests + stripe files.
  std::string checkpointDir;
  /// Checkpoints retained on disk (older ones are pruned after a write).
  int checkpointKeep = 2;
  /// Writer stripes per checkpoint (clamped to the communicator size).
  int checkpointStripes = 1;
  /// Stage-1 robustness: validation bounds for state-mutating steering
  /// commands (rejected commands never reach the solver).
  steer::GuardConfig guard;
  /// Stage-2 robustness: divergence sentinel + checkpoint rollback policy
  /// (checkEvery = 0 keeps it off).
  SentinelConfig sentinel;
  /// Always-on flight recorder (telemetry/flightrec.hpp): every
  /// computeStepReport() window is retained in a bounded ring and flushed
  /// as a postmortem bundle when the run dies. `dir` empty falls back to
  /// checkpointDir; when both are empty the registry stays unarmed and no
  /// bundle is ever written.
  struct FlightConfig {
    bool enabled = true;
    std::size_t keepWindows = 32;
    std::size_t keepTraceEvents = std::size_t{1} << 14;
    std::string dir;
    /// Also install the process-wide fatal-signal/std::terminate hooks
    /// when arming (they chain to the previous handlers and re-raise).
    bool installCrashHandlers = false;
  };
  FlightConfig flight;
  /// Closing the loop (ROADMAP item 3): telemetry-driven live
  /// repartitioning. Every `repartitionEvery` steps the driver aggregates
  /// the telemetry window; when the measured imbalance (per-rank busy + vis
  /// time, with cross-rank wait blame charged to the rank being waited on)
  /// stays above `imbalanceThreshold` for `triggerWindows` consecutive
  /// checks, the partition is diffusively rebalanced under measured
  /// per-site costs and the moved sites migrate live — distributions,
  /// halos, octree ownership and serve subscriptions all rebuilt in place.
  struct RepartitionConfig {
    /// Steps between imbalance checks; 0 disables live repartitioning.
    int repartitionEvery = 0;
    /// Measured imbalance (max/mean effective load) that arms a trigger.
    double imbalanceThreshold = 1.10;
    /// Consecutive over-threshold windows required before migrating
    /// (hysteresis: one noisy window never triggers a migration).
    int triggerWindows = 2;
    /// Checks skipped after a migration before re-arming (lets the new
    /// partition produce a clean measurement window first).
    int cooldownWindows = 2;
    /// Upper bound on migrations per run() lifetime (safety valve).
    int maxMigrations = 8;
    /// Passed through to partition::rebalance.
    partition::RepartitionOptions options;
  };
  RepartitionConfig repartition;
  /// Diskless buddy checkpointing (lb/buddy.hpp): each mirror interval the
  /// rank's distribution blob is kept in its own slot *and* ring-copied
  /// into rank+1's memory, so after any single rank death the survivors
  /// still hold a complete snapshot and recovery needs no filesystem.
  struct BuddyConfig {
    /// Store shared by all ranks (owned by the caller, e.g.
    /// ResilientRunner); nullptr disables mirroring.
    lb::BuddyStore* store = nullptr;
    /// Steps between mirrors; 0 follows checkpointEvery.
    int mirrorEvery = 0;
  };
  BuddyConfig buddy;
};

/// Result of one live-migration attempt (identical on every rank).
struct MigrationOutcome {
  bool migrated = false;
  /// Distinct sites that changed owner.
  std::uint64_t sitesMoved = 0;
  /// Cost-model imbalance of the partition before/after rebalancing.
  double imbalanceBefore = 1.0;
  double imbalanceAfter = 1.0;
  /// Wall seconds the migration itself took (plan + transfer + rebuild).
  double seconds = 0.0;
};

class SimulationDriver {
 public:
  /// Collective construction. `steerEnd` is the master-side channel end of
  /// the steering connection; pass a default ChannelEnd to disable
  /// steering (e.g. batch runs).
  SimulationDriver(const lb::DomainMap& domain, comm::Communicator& comm,
                   const DriverConfig& config,
                   comm::ChannelEnd steerEnd = {});

  /// Run up to `steps` further steps; returns the number actually executed
  /// (a terminate command stops early).
  int run(int steps);

  bool terminated() const { return terminated_; }
  int currentVisEvery() const { return config_.visEvery; }
  lb::SolverD3Q19& solver() { return *solver_; }
  const PipelineOutputs& lastOutputs() const { return lastOutputs_; }
  const steer::StatusReport& lastStatus() const { return lastStatus_; }
  InSituPipeline& pipeline() { return pipeline_; }
  RenderStage& renderStage() { return *renderStage_; }
  const DriverConfig& config() const { return config_; }

  /// Switch the driver into serving mode (collective: every rank calls
  /// this; only rank 0 passes the broker, others pass nullptr). Steering
  /// commands are then drained from the broker's N client channels instead
  /// of the single SteeringServer channel, responses route back to the
  /// requesting client(s), and rendered frames fan out through the
  /// broker's shared frame cache to every due image subscriber.
  void attachBroker(serve::SessionBroker* broker);

  /// Run the in situ pipeline immediately (collective).
  void runPipelineNow();

  /// Restore solver state from the newest valid checkpoint in
  /// config.checkpointDir, skipping corrupt or truncated candidates
  /// (collective). Returns the typed outcome; on success the solver's step
  /// counter is rebased to the checkpointed step.
  lb::RestoreResult restoreLatest();

  /// True while broker mode is active and the broker is healthy. After a
  /// broker failure the driver degrades to solver-only and this flips
  /// false (identical on every rank).
  bool brokerHealthy() const { return brokerMode_; }

  /// Compute a status report (collective).
  steer::StatusReport computeStatus();

  /// Aggregate the telemetry window since the previous report into one
  /// StepReport (collective: every rank gathers its local window, the
  /// result is identical everywhere) and start a new window.
  telemetry::StepReport computeStepReport();

  /// The last aggregate produced by computeStepReport().
  const telemetry::StepReport& lastStepReport() const {
    return lastStepReport_;
  }

  /// Sentinel rollbacks performed so far (bounded by
  /// SentinelConfig::maxRollbacks).
  int rollbacksDone() const { return rollbacksDone_; }

  /// Collective: rebalance the live partition under an explicit per-site
  /// cost field (size = lattice.numFluidSites(), identical on every rank)
  /// and, if any site moves, migrate solver state and rebuild the
  /// vis/octree plumbing in place. The run() trigger policy calls this with
  /// measured costs; tests and benches call it directly with synthetic
  /// fields for determinism.
  MigrationOutcome migrateNow(const std::vector<double>& siteCost);

  /// Number of live migrations executed so far (the "migration epoch").
  /// Checkpoints written before and after an epoch stay mutually
  /// restorable — readCheckpoint routes sites by current ownership.
  std::uint64_t migrationEpoch() const { return migrationEpoch_; }

  /// The domain the solver currently runs on. After a live migration this
  /// is the driver-owned rebuilt domain, not the one passed at
  /// construction.
  const lb::DomainMap& domain() const { return *domain_; }

  /// Per-rank StepReports from the last computeStepReport() window, in
  /// rank order (the allgathered inputs of lastStepReport()).
  const std::vector<telemetry::StepReport>& lastPerRankReports() const {
    return lastPerRankReports_;
  }

 private:
  /// One applied state-mutating steered change, with enough of the prior
  /// state to revert it under quarantine.
  struct AppliedChange {
    steer::Command cmd;
    std::uint64_t step = 0;
    double prevValue = 0.0;  ///< tau / iolet density before the change
    Vec3d prevVec{};         ///< body force / iolet velocity before
  };

  void applyCommand(const steer::Command& cmd);
  void pollSteering();
  /// Route a typed NACK to the issuing client (broker or plain server).
  void sendRejectRouted(std::uint32_t commandId, steer::RejectReason reason,
                        steer::MsgType type);
  /// Snapshot the pre-change state of a mutating command into history_.
  void recordChange(const steer::Command& cmd);
  /// Revert the most recent steered change and NACK it retroactively.
  void quarantineLatestChange();
  /// Collective sentinel check + rollback state machine. Returns false
  /// when the step's results were discarded (rolled back or terminated) —
  /// the run loop must `continue` without checkpointing.
  bool sentinelGuard(std::uint64_t step);
  /// Timestamped breadcrumb into this rank's flight recorder (no-op when
  /// telemetry is compiled out or unattached).
  void noteFlight(const std::string& what);
  /// Rank 0: write the graceful-degradation diagnostic dump.
  void writeDiagnosticDump(const SentinelVerdict& verdict);
  /// Trigger-policy check run every repartitionEvery steps (collective).
  void maybeRepartition();
  /// Per-site cost field derived from the last window's per-rank reports:
  /// each rank's effective load (busy + vis + wait blame charged to it)
  /// spread uniformly over its owned sites. Identical on every rank.
  std::vector<double> measuredSiteCosts() const;

  const lb::DomainMap* domain_;
  comm::Communicator* comm_;
  DriverConfig config_;
  std::unique_ptr<lb::SolverD3Q19> solver_;
  std::unique_ptr<vis::GhostedField> ghosts_;
  std::unique_ptr<multires::FieldOctree> octree_;
  InSituPipeline pipeline_;
  RenderStage* renderStage_ = nullptr;  // owned by pipeline_
  steer::SteeringServer server_;
  serve::SessionBroker* broker_ = nullptr;  ///< rank 0 only in broker mode
  bool brokerMode_ = false;                 ///< identical on every rank
  steer::ImageFrame lastImageFrame_;        ///< rank 0, broker mode
  std::uint64_t lastViewKey_ = 0;

  StabilitySentinel sentinel_;
  int rollbacksDone_ = 0;
  /// Recent applied mutating commands, newest last (bounded).
  std::deque<AppliedChange> history_;
  static constexpr std::size_t kHistoryDepth = 16;

  PipelineOutputs lastOutputs_;
  steer::StatusReport lastStatus_;
  AdaptiveVisScheduler scheduler_{0.5};
  double lastStepSeconds_ = 0.0;
  double initialMass_ = 0.0;
  bool paused_ = false;
  bool terminated_ = false;
  WallTimer runTimer_;
  std::uint64_t stepsThisRun_ = 0;

  // Live repartitioning state. The driver starts on a caller-owned domain;
  // after the first migration it runs on its own rebuilt partition/domain
  // (liveDomain_/livePartition_ keep them alive for the solver's raw
  // pointers).
  std::unique_ptr<partition::SiteGraph> repartGraph_;
  std::unique_ptr<partition::Partition> livePartition_;
  std::unique_ptr<lb::DomainMap> liveDomain_;
  std::uint64_t migrationEpoch_ = 0;
  int overThresholdWindows_ = 0;
  int repartCooldown_ = 0;
  int migrationsDone_ = 0;

  // Telemetry window state (snapshots at the last computeStepReport()).
  telemetry::StepReport lastStepReport_;
  std::vector<telemetry::StepReport> lastPerRankReports_;
  WallTimer windowTimer_;
  std::uint64_t windowStartStep_ = 0;
  double windowCollide_ = 0.0, windowStream_ = 0.0, windowComm_ = 0.0;
  double windowVis_ = 0.0;
  double windowRecvWait_ = 0.0;
  comm::TrafficCounters windowCounters_;
  /// Latest sentinel extrema, copied into each retained flight window.
  telemetry::SentinelSnapshot lastSentinel_;
  // Pre-resolved per-rank metrics (null when no telemetry is attached).
  telemetry::Counter* stepsCounter_ = nullptr;
  telemetry::LogHistogram* stepSecondsHist_ = nullptr;
};

}  // namespace hemo::core
