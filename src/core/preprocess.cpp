#include "core/preprocess.hpp"

#include "util/check.hpp"
#include "util/timer.hpp"

namespace hemo::core {

std::unique_ptr<partition::Partitioner> makePartitioner(
    const std::string& name, const geometry::SparseLattice& lattice) {
  if (name == "block") {
    return std::make_unique<partition::BlockPartitioner>(lattice);
  }
  if (name == "sfc") return std::make_unique<partition::SfcPartitioner>();
  if (name == "hilbert") {
    return std::make_unique<partition::HilbertPartitioner>();
  }
  if (name == "rcb") return std::make_unique<partition::RcbPartitioner>();
  if (name == "greedy") {
    return std::make_unique<partition::GreedyGrowingPartitioner>();
  }
  if (name == "kway") {
    return std::make_unique<partition::MultilevelKWayPartitioner>();
  }
  HEMO_CHECK_MSG(false, "unknown partitioner '" << name << "'");
}

std::vector<double> makeSiteCosts(const geometry::SparseLattice& lattice,
                                  const PreprocessConfig& config) {
  std::vector<double> cost(lattice.numFluidSites(), 1.0);
  if (config.visAware && config.visRegion) {
    for (std::uint64_t g = 0; g < lattice.numFluidSites(); ++g) {
      if (config.visRegion(lattice.siteWorld(g))) {
        cost[static_cast<std::size_t>(g)] += config.visCostFactor;
      }
    }
  }
  return cost;
}

PreprocessReport preprocess(const geometry::SparseLattice& lattice,
                            int numParts, const PreprocessConfig& config) {
  auto graph = partition::buildSiteGraph(lattice);
  graph.vertexWeight = makeSiteCosts(lattice, config);

  PreprocessReport report;
  report.partitionerName = config.partitioner;
  const auto partitioner = makePartitioner(config.partitioner, lattice);
  WallTimer timer;
  report.partition = partitioner->partition(graph, numParts);
  report.seconds = timer.seconds();
  report.metrics = partition::evaluatePartition(graph, report.partition);
  return report;
}

}  // namespace hemo::core
