#pragma once
/// \file pipeline.hpp
/// \brief The in situ post-processing pipeline of Fig 3: data extraction →
/// filtering → mapping → rendering, executed against the live simulation
/// state with per-stage timing (the pipeline-cost series of bench F3).

#include <memory>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "lb/domain_map.hpp"
#include "multires/octree.hpp"
#include "multires/roi.hpp"
#include "telemetry/telemetry.hpp"
#include "util/timer.hpp"
#include "vis/lic.hpp"
#include "vis/line_render.hpp"
#include "vis/particles.hpp"
#include "vis/sampler.hpp"
#include "vis/streamlines.hpp"
#include "vis/volume.hpp"

namespace hemo::core {

/// What one pipeline execution produced (master-rank fields are only filled
/// on rank 0).
struct PipelineOutputs {
  std::uint64_t step = 0;
  // filter stage: reduced statistics (valid on every rank).
  double minSpeed = 0.0, maxSpeed = 0.0, meanSpeed = 0.0;
  double meanWss = 0.0, maxWss = 0.0;
  // context view of the field octree (rank 0).
  std::vector<multires::OctreeNode> contextNodes;
  // rendering (rank 0).
  vis::Image volumeImage;
  std::vector<vis::Polyline> streamlines;
  vis::LicResult lic;
};

/// Everything a stage may touch during one pipeline run.
struct PipelineContext {
  comm::Communicator* comm = nullptr;
  const lb::DomainMap* domain = nullptr;
  const lb::MacroFields* macro = nullptr;
  vis::GhostedField* ghosts = nullptr;
  multires::FieldOctree* octree = nullptr;
  std::uint64_t step = 0;
  PipelineOutputs out;
};

/// One stage of the Fig 3 pipeline.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const = 0;
  virtual void run(PipelineContext& ctx) = 0;
};

/// Ordered stage list with per-stage CPU timing.
class InSituPipeline {
 public:
  void addStage(std::unique_ptr<Stage> stage) {
    stages_.push_back(std::move(stage));
    timers_.emplace_back();
  }

  std::size_t numStages() const { return stages_.size(); }
  const char* stageName(std::size_t i) const { return stages_[i]->name(); }
  double stageSeconds(std::size_t i) const { return timers_[i].total(); }
  void resetTimers() {
    for (auto& t : timers_) t.reset();
  }

  /// Run all stages in order (collective).
  PipelineOutputs run(PipelineContext& ctx) {
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      ScopedPhase phase(timers_[i]);
      HEMO_TSPAN(kVis, stages_[i]->name());
      stages_[i]->run(ctx);
    }
    return std::move(ctx.out);
  }

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
  std::vector<PhaseTimer> timers_;
};

// --- built-in stages -----------------------------------------------------------

/// Extraction: refresh the ghost field and the multiresolution cache from
/// the solver's current macroscopic state.
class ExtractStage final : public Stage {
 public:
  const char* name() const override { return "extract"; }
  void run(PipelineContext& ctx) override;
};

/// Filtering/reduction: global field statistics and the coarse context
/// level of the octree — the data-reduction step §V builds on.
class FilterStage final : public Stage {
 public:
  explicit FilterStage(int contextLevel = 2) : contextLevel_(contextLevel) {}
  const char* name() const override { return "filter"; }
  void run(PipelineContext& ctx) override;

 private:
  int contextLevel_;
};

/// Mapping: derive renderable geometry — wall shear stress samples and
/// streamline polylines.
class MapStage final : public Stage {
 public:
  MapStage(std::vector<Vec3d> seeds, vis::StreamlineParams params,
           bool computeWss)
      : seeds_(std::move(seeds)), params_(params), computeWss_(computeWss) {}
  const char* name() const override { return "map"; }
  void run(PipelineContext& ctx) override;

 private:
  std::vector<Vec3d> seeds_;
  vis::StreamlineParams params_;
  bool computeWss_;
};

/// Rendering: distributed volume rendering (+ streamline overlay) and
/// optionally a LIC slice.
class RenderStage final : public Stage {
 public:
  RenderStage(const vis::VolumeRenderOptions& options, bool drawLines,
              bool lic, vis::LicOptions licOptions = {})
      : options_(options), drawLines_(drawLines), lic_(lic),
        licOptions_(licOptions) {}
  const char* name() const override { return "render"; }
  void run(PipelineContext& ctx) override;

  vis::VolumeRenderOptions& options() { return options_; }

  /// Volume renders executed so far — the serving layer's proof that M
  /// subscribed clients cost one render, not M.
  std::uint64_t rendersDone() const { return rendersDone_; }

 private:
  vis::VolumeRenderOptions options_;
  bool drawLines_;
  bool lic_;
  vis::LicOptions licOptions_;
  std::uint64_t rendersDone_ = 0;
};

}  // namespace hemo::core
