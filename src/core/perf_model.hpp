#pragma once
/// \file perf_model.hpp
/// \brief Co-design performance model.
///
/// The thread-rank runtime timeshares one machine, so wall clock measures
/// contention, not parallel time. The benchmarks therefore reconstruct the
/// time a real cluster would take from quantities that *are* faithful here:
/// each rank's busy CPU time and its exact communication volume. The model
/// is the standard postal one:
///
///   T = max_r busy_r + alpha · max_r msgs_r + beta · max_r bytes_r
///
/// with (alpha, beta) defaults resembling a commodity cluster (1 µs
/// latency, 10 GB/s links). Speedup shapes — who wins, where crossovers
/// fall — are robust to the exact constants; EXPERIMENTS.md discusses this.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "comm/profiler.hpp"
#include "telemetry/step_report.hpp"
#include "util/check.hpp"

namespace hemo::core {

struct CostModel {
  double alphaPerMessage = 1e-6;  ///< seconds per message (latency)
  double betaPerByte = 1e-10;     ///< seconds per byte (1/bandwidth)
};

struct RankCost {
  double busySeconds = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Modeled parallel execution time of one phase.
inline double modeledParallelSeconds(const std::vector<RankCost>& ranks,
                                     const CostModel& model = {}) {
  HEMO_CHECK(!ranks.empty());
  double busy = 0.0, msgs = 0.0, bytes = 0.0;
  for (const auto& r : ranks) {
    busy = std::max(busy, r.busySeconds);
    msgs = std::max(msgs, static_cast<double>(r.messages));
    bytes = std::max(bytes, static_cast<double>(r.bytes));
  }
  return busy + model.alphaPerMessage * msgs + model.betaPerByte * bytes;
}

/// Convenience: build RankCosts from measured busy seconds and the traffic
/// counters of a runtime (per rank, sent side).
inline std::vector<RankCost> makeRankCosts(
    const std::vector<double>& busySeconds,
    const std::vector<comm::TrafficCounters>& counters) {
  HEMO_CHECK(busySeconds.size() == counters.size());
  std::vector<RankCost> out(busySeconds.size());
  for (std::size_t r = 0; r < out.size(); ++r) {
    out[r].busySeconds = busySeconds[r];
    const auto total = counters[r].total();
    out[r].messages = total.messagesSent;
    out[r].bytes = total.bytesSent;
  }
  return out;
}

/// Convenience: build a RankCost from one rank's (unaggregated) telemetry
/// StepReport — the bridge between the live telemetry stream and the postal
/// model, so modeled cluster time can be recomputed from the same numbers
/// the steering client watches.
inline RankCost rankCostFromReport(const telemetry::StepReport& report) {
  RankCost cost;
  cost.busySeconds = report.busySeconds();
  cost.messages = report.totalMsgsSent();
  cost.bytes = report.totalBytesSent();
  return cost;
}

/// Modeled speedup of a parallel phase against a serial baseline.
inline double modeledSpeedup(double serialBusySeconds,
                             const std::vector<RankCost>& ranks,
                             const CostModel& model = {}) {
  const double t = modeledParallelSeconds(ranks, model);
  return t > 0.0 ? serialBusySeconds / t : 0.0;
}

}  // namespace hemo::core
