#pragma once
/// \file refine.hpp
/// \brief Mesh refinement with solution transfer — pre-processing step 3 of
/// §IV.B ("Apply optimisation on geometry, such as mesh refinement in a
/// certain region ... globally generates intermediate grid points thus
/// enhancing result precision") closed into the interactive loop: a running
/// coarse simulation can be restarted on a finer voxelisation without
/// starting the flow from scratch.
///
/// Workflow: voxelize the scene at the finer spacing, partition it, build
/// the fine solver, then warm-start it from the coarse solution — each fine
/// site takes the equilibrium of the coarse macroscopic fields at its
/// position (nearest coarse fluid site; equilibrium restart is the standard
/// LB grid-transfer choice since non-equilibrium parts decay in O(tau)
/// steps).

#include <vector>

#include "comm/communicator.hpp"
#include "lb/solver.hpp"

namespace hemo::core {

/// Globally replicated macroscopic fields of a (coarse) run, indexed by the
/// coarse global site id.
struct GlobalMacro {
  std::vector<double> rho;
  std::vector<Vec3d> u;
};

/// Collective: gather the distributed macro fields of `domain` so every
/// rank holds the full coarse solution (small: 4 doubles/site).
GlobalMacro gatherGlobalMacro(comm::Communicator& comm,
                              const lb::DomainMap& domain,
                              const lb::MacroFields& macro);

/// Warm-start `fineSolver` from a coarse solution: every fine site is set
/// to the equilibrium of the coarse fields at the nearest coarse fluid
/// site (searching the coarse site's 26-neighbourhood when the fine
/// position falls into a coarse solid voxel near the wall).
template <typename Lattice>
void initFromCoarse(lb::Solver<Lattice>& fineSolver,
                    const geometry::SparseLattice& coarseLattice,
                    const GlobalMacro& coarse) {
  HEMO_CHECK(coarse.rho.size() == coarseLattice.numFluidSites());
  fineSolver.initWith([&](const Vec3d& world) {
    const double h = coarseLattice.voxelSize();
    const Vec3d rel = (world - coarseLattice.origin()) / h;
    const Vec3i base{static_cast<int>(std::floor(rel.x)),
                     static_cast<int>(std::floor(rel.y)),
                     static_cast<int>(std::floor(rel.z))};
    std::int64_t site = coarseLattice.siteId(base);
    if (site < 0) {
      // Fine near-wall site whose coarse voxel is solid: use the closest
      // coarse fluid neighbour.
      double best = 1e300;
      for (int d = 0; d < geometry::kNumDirections; ++d) {
        const Vec3i q = base + geometry::kDirections[static_cast<std::size_t>(d)];
        const auto n = coarseLattice.siteId(q);
        if (n < 0) continue;
        const double dist =
            (coarseLattice.siteWorld(static_cast<std::uint64_t>(n)) - world)
                .norm2();
        if (dist < best) {
          best = dist;
          site = n;
        }
      }
    }
    if (site < 0) return std::pair{1.0, Vec3d{0, 0, 0}};
    const auto s = static_cast<std::size_t>(site);
    return std::pair{coarse.rho[s], coarse.u[s]};
  });
}

}  // namespace hemo::core
