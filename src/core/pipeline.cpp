#include "core/pipeline.hpp"

#include <algorithm>

#include "lb/wss.hpp"
#include "util/check.hpp"

namespace hemo::core {

void ExtractStage::run(PipelineContext& ctx) {
  HEMO_CHECK(ctx.ghosts != nullptr && ctx.macro != nullptr);
  ctx.out.step = ctx.step;
  ctx.ghosts->refresh(*ctx.macro, *ctx.comm);
  if (ctx.octree != nullptr) {
    std::vector<double> speed(ctx.macro->u.size());
    for (std::size_t i = 0; i < speed.size(); ++i) {
      speed[i] = ctx.macro->u[i].norm();
    }
    ctx.octree->update(speed, ctx.macro->u);
  }
}

void FilterStage::run(PipelineContext& ctx) {
  double localMin = 1e300, localMax = 0.0, localSum = 0.0;
  for (const auto& u : ctx.macro->u) {
    const double s = u.norm();
    localMin = std::min(localMin, s);
    localMax = std::max(localMax, s);
    localSum += s;
  }
  auto& comm = *ctx.comm;
  const auto count = comm.allreduceSum<std::uint64_t>(ctx.macro->u.size());
  ctx.out.minSpeed = comm.allreduceMin(localMin);
  ctx.out.maxSpeed = comm.allreduceMax(localMax);
  ctx.out.meanSpeed =
      count > 0 ? comm.allreduceSum(localSum) / static_cast<double>(count)
                : 0.0;
  if (ctx.octree != nullptr) {
    const int level = std::min(contextLevel_, ctx.octree->leafLevel());
    ctx.out.contextNodes = multires::gatherLevel(comm, *ctx.octree, level);
  }
}

void MapStage::run(PipelineContext& ctx) {
  if (computeWss_ && !ctx.macro->stress.empty()) {
    const auto samples = lb::computeWallShearStress(*ctx.domain, *ctx.macro);
    double localMax = 0.0, localSum = 0.0;
    for (const auto& s : samples) {
      localMax = std::max(localMax, s.wss);
      localSum += s.wss;
    }
    auto& comm = *ctx.comm;
    const auto count = comm.allreduceSum<std::uint64_t>(samples.size());
    ctx.out.maxWss = comm.allreduceMax(localMax);
    ctx.out.meanWss =
        count > 0 ? comm.allreduceSum(localSum) / static_cast<double>(count)
                  : 0.0;
  }
  if (!seeds_.empty()) {
    ctx.out.streamlines =
        vis::traceStreamlines(*ctx.comm, *ctx.ghosts, seeds_, params_);
  }
}

void RenderStage::run(PipelineContext& ctx) {
  ctx.out.volumeImage = vis::renderVolume(*ctx.comm, *ctx.domain, *ctx.macro,
                                          options_);
  ++rendersDone_;
  if (drawLines_ && ctx.comm->rank() == 0 &&
      ctx.out.volumeImage.numPixels() > 0) {
    vis::drawPolylines(ctx.out.volumeImage, options_.camera,
                       ctx.out.streamlines);
  }
  if (lic_) {
    ctx.out.lic = vis::computeLicSlice(*ctx.comm, *ctx.domain, *ctx.macro,
                                       licOptions_);
  }
}

}  // namespace hemo::core
