#include "core/sentinel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "telemetry/telemetry.hpp"

namespace hemo::core {

SentinelVerdict StabilitySentinel::check(comm::Communicator& comm,
                                         const lb::MacroFields& macro,
                                         std::uint64_t step) {
  HEMO_TSPAN(kOther, "sentinel.check");
  SentinelLocal local;
  // Neutral extrema so an empty rank never constrains the reduction.
  local.minRho = std::numeric_limits<double>::infinity();
  local.maxRho = -std::numeric_limits<double>::infinity();
  local.maxSpeed = 0.0;
  double maxSpeedSq = 0.0;
  const std::size_t n = macro.rho.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double rho = macro.rho[i];
    const Vec3d& u = macro.u[i];
    // NaN slips through min/max, so finiteness is tracked explicitly.
    if (!std::isfinite(rho) || !std::isfinite(u.x) || !std::isfinite(u.y) ||
        !std::isfinite(u.z)) {
      local.finite = 0;
      continue;
    }
    local.minRho = std::min(local.minRho, rho);
    local.maxRho = std::max(local.maxRho, rho);
    maxSpeedSq = std::max(maxSpeedSq, u.x * u.x + u.y * u.y + u.z * u.z);
  }
  local.maxSpeed = std::sqrt(maxSpeedSq);

  // One collective: every rank receives all extrema, reduces identically,
  // and keeps the per-rank breakdown for the diagnostic dump.
  {
    comm::Communicator::TrafficScope scope(comm, comm::Traffic::kOther);
    lastPerRank_ = comm.allgather(local);
  }

  SentinelVerdict v;
  v.step = step;
  v.minRho = std::numeric_limits<double>::infinity();
  v.maxRho = -std::numeric_limits<double>::infinity();
  for (const SentinelLocal& r : lastPerRank_) {
    if (r.finite == 0) v.finite = false;
    v.minRho = std::min(v.minRho, r.minRho);
    v.maxRho = std::max(v.maxRho, r.maxRho);
    v.maxSpeed = std::max(v.maxSpeed, r.maxSpeed);
  }
  v.ok = v.finite && v.minRho >= config_.minDensity &&
         v.maxRho <= config_.maxDensity && v.maxSpeed < config_.maxSpeed;
  return v;
}

double StabilitySentinel::headroom(const SentinelVerdict& v) const {
  if (!v.ok || config_.maxSpeed <= 0.0) return 0.0;
  return std::clamp(1.0 - v.maxSpeed / config_.maxSpeed, 0.0, 1.0);
}

}  // namespace hemo::core
