#include "core/driver.hpp"

#include <algorithm>
#include <fstream>
#include <thread>

#include "lb/buddy.hpp"
#include "lb/migration.hpp"
#include "lb/wss.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"

namespace hemo::core {

SimulationDriver::SimulationDriver(const lb::DomainMap& domain,
                                   comm::Communicator& comm,
                                   const DriverConfig& config,
                                   comm::ChannelEnd steerEnd)
    : domain_(&domain),
      comm_(&comm),
      config_(config),
      solver_(std::make_unique<lb::SolverD3Q19>(domain, comm, config.lb)),
      ghosts_(std::make_unique<vis::GhostedField>(domain, comm, /*rings=*/2)),
      octree_(std::make_unique<multires::FieldOctree>(domain,
                                                      config.octreeLeafLog2)),
      server_(std::move(steerEnd)),
      sentinel_(config.sentinel) {
  HEMO_CHECK_MSG(!config.computeWss || config.lb.computeStress,
                 "computeWss requires LbParams::computeStress");
  if (config.adaptiveVisBudget > 0.0) {
    scheduler_ = AdaptiveVisScheduler(config.adaptiveVisBudget);
  }
  pipeline_.addStage(std::make_unique<ExtractStage>());
  pipeline_.addStage(std::make_unique<FilterStage>(config.contextLevel));
  pipeline_.addStage(std::make_unique<MapStage>(
      config.streamSeeds, config.streamParams, config.computeWss));
  auto render = std::make_unique<RenderStage>(
      config.render, /*drawLines=*/!config.streamSeeds.empty(),
      config.enableLic, config.lic);
  renderStage_ = render.get();
  pipeline_.addStage(std::move(render));

  initialMass_ = comm.allreduceSum(solver_->localMass());

  if (comm.rank() == 0) {
    HEMO_LOG_INFO() << "lb hot path: kernel=" << config.lb.kernelName()
                    << " layout=" << lb::layoutName(config.lb.layout)
                    << " simd=" << simd::backendName() << " width="
                    << simd::kWidth
                    << (solver_->usesNtStores() ? " nt-stores=on"
                                                : " nt-stores=off");
  }

  // Resolve the per-rank metrics once (map nodes are stable, so the hot
  // loop only touches raw pointers). Null when the thread runs without an
  // attached telemetry context (e.g. plain unit tests).
  if (auto* t = telemetry::threadTelemetry()) {
    stepsCounter_ = &t->metrics().counter("lb.steps");
    stepSecondsHist_ = &t->metrics().histogram("driver.step_seconds");
    t->metrics().gauge("lb.simd_width").set(simd::kWidth);
  }

#ifndef HEMO_TELEMETRY_DISABLED
  // Flight recorder: size this rank's retention ring, then arm the global
  // registry with a bundle directory so the crash paths have somewhere to
  // flush. Arming is collective-safe (every rank passes the same dir).
  if (auto* t = telemetry::threadTelemetry()) {
    telemetry::FlightRecorder::Config fc;
    fc.keepWindows = config.flight.keepWindows;
    fc.keepTraceEvents = config.flight.keepTraceEvents;
    t->flightRecorder().configure(fc);
  }
  if (config.flight.enabled) {
    const std::string dir =
        !config.flight.dir.empty() ? config.flight.dir : config.checkpointDir;
    if (!dir.empty()) {
      auto& registry = telemetry::FlightRegistry::instance();
      registry.arm(dir);
      if (config.flight.installCrashHandlers) registry.installCrashHandlers();
    }
  }
#endif
}

void SimulationDriver::attachBroker(serve::SessionBroker* broker) {
  broker_ = broker;
  brokerMode_ = true;
}

void SimulationDriver::runPipelineNow() {
  PipelineContext ctx;
  ctx.comm = comm_;
  ctx.domain = domain_;
  ctx.macro = &solver_->macro();
  ctx.ghosts = ghosts_.get();
  ctx.octree = octree_.get();
  ctx.step = solver_->stepsDone();
  lastOutputs_ = pipeline_.run(ctx);

  // Push the fresh frame to the steering client (loop step 6 of §IV.C.1).
  // In broker mode the render happens once and fans out through the shared
  // frame cache to every image subscriber whose cadence is due.
  if (comm_->rank() == 0 && lastOutputs_.volumeImage.numPixels() > 0) {
    steer::ImageFrame frame;
    frame.step = lastOutputs_.step;
    frame.width = lastOutputs_.volumeImage.width();
    frame.height = lastOutputs_.volumeImage.height();
    frame.rgb = lastOutputs_.volumeImage.toRgb8();
    lastViewKey_ = serve::viewKey(renderStage_->options());
    if (brokerMode_) {
      lastImageFrame_ = std::move(frame);
      if (broker_ != nullptr) {
        broker_->publishImage(*comm_, lastViewKey_, lastImageFrame_);
      }
    } else {
      server_.sendImage(*comm_, frame);
    }
  }
}

steer::StatusReport SimulationDriver::computeStatus() {
  steer::StatusReport s;
  s.step = solver_->stepsDone();
  s.totalSites = comm_->allreduceSum<std::uint64_t>(domain_->numOwned());
  s.totalMass = comm_->allreduceSum(solver_->localMass());
  double maxSpeed = 0.0;
  for (const auto& u : solver_->macro().u) {
    maxSpeed = std::max(maxSpeed, u.norm());
  }
  s.maxSpeed = comm_->allreduceMax(maxSpeed);

  // Busy-time imbalance: the quantity repartitioning acts on.
  const double busy = solver_->collideTimer().total() +
                      solver_->streamTimer().total();
  const auto allBusy = comm_->allgather(busy);
  double sum = 0.0, mx = 0.0;
  for (const double b : allBusy) {
    sum += b;
    mx = std::max(mx, b);
  }
  s.loadImbalance = sum > 0.0
                        ? mx * static_cast<double>(allBusy.size()) / sum
                        : 1.0;

  // Throughput + remaining-runtime estimate (master's clock, broadcast for
  // determinism of the report seen by every rank).
  double rate = 0.0;
  if (comm_->rank() == 0 && stepsThisRun_ > 0) {
    const double elapsed = runTimer_.seconds();
    rate = elapsed > 0.0 ? static_cast<double>(stepsThisRun_) / elapsed : 0.0;
  }
  comm_->bcast(rate, 0);
  s.stepsPerSecond = rate;
  const auto remaining =
      config_.plannedSteps > 0
          ? std::max<std::int64_t>(
                0, config_.plannedSteps -
                       static_cast<std::int64_t>(solver_->stepsDone()))
          : 0;
  s.etaSeconds = rate > 0.0 ? static_cast<double>(remaining) / rate : 0.0;

  // Consistency checks: mass conservation and a Mach-number sanity bound.
  const bool massOk =
      initialMass_ <= 0.0 ||
      std::abs(s.totalMass - initialMass_) <= 0.02 * initialMass_;
  const bool machOk = s.maxSpeed < 0.3;
  s.consistencyOk = (massOk && machOk) ? 1 : 0;
  s.consistencyStep = s.step;
  s.paused = paused_ ? 1 : 0;
  // Critical-path gauges from the last telemetry window: who the run is
  // waiting on and why, surfaced to steering clients next to the
  // consistency verdict.
  s.waitStragglerRank = lastStepReport_.waitStragglerRank;
  s.waitDominantCause = lastStepReport_.waitDominantCause;
  s.waitSeconds = lastStepReport_.waitClassifiedSeconds();
  if (s.consistencyOk == 0) {
    if (auto* t = telemetry::threadTelemetry()) {
      t->metrics().counter("lb.consistency_fail").add(1);
    }
  }
  lastStatus_ = s;
  return s;
}

void SimulationDriver::sendRejectRouted(std::uint32_t commandId,
                                        steer::RejectReason reason,
                                        steer::MsgType type) {
  if (brokerMode_) {
    if (broker_ != nullptr) {
      broker_->respondReject(*comm_, commandId, reason, type);
    }
  } else {
    steer::Reject reject;
    reject.type = type;
    reject.commandId = commandId;
    reject.reason = reason;
    server_.sendReject(*comm_, reject);
  }
}

void SimulationDriver::recordChange(const steer::Command& cmd) {
  AppliedChange change;
  change.cmd = cmd;
  change.step = solver_->stepsDone();
  switch (cmd.type) {
    case steer::MsgType::kSetTau:
      change.prevValue = solver_->params().tau;
      break;
    case steer::MsgType::kSetBodyForce:
      change.prevVec = solver_->params().bodyForce;
      break;
    case steer::MsgType::kSetIoletDensity:
      change.prevValue =
          solver_->ioletDensity(static_cast<std::size_t>(cmd.ioletId));
      break;
    case steer::MsgType::kSetIoletVelocity:
      change.prevVec =
          solver_->ioletVelocity(static_cast<std::size_t>(cmd.ioletId));
      break;
    default:
      return;  // not a recorded mutating command
  }
  history_.push_back(std::move(change));
  if (history_.size() > kHistoryDepth) history_.pop_front();
}

void SimulationDriver::quarantineLatestChange() {
  if (history_.empty()) return;
  const AppliedChange change = history_.back();
  history_.pop_back();
  switch (change.cmd.type) {
    case steer::MsgType::kSetTau:
      solver_->setTau(change.prevValue);
      break;
    case steer::MsgType::kSetBodyForce:
      solver_->setBodyForce(change.prevVec);
      break;
    case steer::MsgType::kSetIoletDensity:
      solver_->setIoletDensity(static_cast<std::size_t>(change.cmd.ioletId),
                               change.prevValue);
      break;
    case steer::MsgType::kSetIoletVelocity:
      solver_->setIoletVelocity(static_cast<std::size_t>(change.cmd.ioletId),
                                change.prevVec);
      break;
    default:
      break;
  }
  if (comm_->rank() == 0) {
    HEMO_LOG_WARN() << "sentinel quarantined steered command "
                    << change.cmd.commandId << " (applied at step "
                    << change.step << "); parameter reverted";
  }
  noteFlight("quarantined steered command " +
             std::to_string(change.cmd.commandId) + " applied at step " +
             std::to_string(change.step));
  sendRejectRouted(change.cmd.commandId, steer::RejectReason::kDivergence,
                   steer::MsgType::kRejectedAfterRollback);
}

void SimulationDriver::applyCommand(const steer::Command& cmd) {
  using steer::MsgType;
  // Stage-1 gate: validate before anything mutates. The check is a pure
  // function of the broadcast command and static lattice facts, so every
  // rank reaches the identical verdict; a rejected command is NACKed to
  // the issuing client (rank 0) and never touches the solver.
  if (config_.guard.enabled) {
    steer::GuardContext ctx;
    ctx.numIolets = domain_->lattice().iolets().size();
    ctx.lattice = BoxI{{0, 0, 0}, domain_->lattice().dims()};
    const auto reason = steer::validateCommand(cmd, config_.guard, ctx);
    if (reason != steer::RejectReason::kNone) {
      if (auto* t = telemetry::threadTelemetry()) {
        t->metrics().counter("steer.rejected").add(1);
      }
      if (comm_->rank() == 0) {
        HEMO_LOG_WARN() << "rejected steering command " << cmd.commandId
                        << " (type " << static_cast<int>(cmd.type)
                        << "): " << steer::rejectReasonName(reason);
      }
      sendRejectRouted(cmd.commandId, reason, MsgType::kReject);
      return;
    }
  }
  recordChange(cmd);
  switch (cmd.type) {
    case MsgType::kSetCamera:
      renderStage_->options().camera = cmd.camera;
      break;
    case MsgType::kSetField:
      renderStage_->options().field =
          static_cast<vis::RenderField>(cmd.renderField);
      break;
    case MsgType::kSetVisRate:
      config_.visEvery = std::max(1, cmd.visRate);
      break;
    case MsgType::kSetRenderClip: {
      // ROI rendering: clip the volume render to the requested lattice
      // box; an empty box clears the clip.
      if (cmd.roi.isEmpty()) {
        renderStage_->options().clipBox.reset();
      } else {
        const auto& lat = domain_->lattice();
        const double h = lat.voxelSize();
        BoxD world;
        world.lo = lat.origin() + cmd.roi.lo.cast<double>() * h;
        world.hi = lat.origin() + cmd.roi.hi.cast<double>() * h;
        renderStage_->options().clipBox = world;
      }
      break;
    }
    case MsgType::kSetTau:
      solver_->setTau(cmd.value);
      break;
    case MsgType::kSetBodyForce:
      solver_->setBodyForce(cmd.force);
      break;
    case MsgType::kSetIoletDensity:
      solver_->setIoletDensity(static_cast<std::size_t>(cmd.ioletId),
                               cmd.value);
      break;
    case MsgType::kSetIoletVelocity:
      solver_->setIoletVelocity(static_cast<std::size_t>(cmd.ioletId),
                                cmd.force);
      break;
    case MsgType::kPause:
      paused_ = true;
      break;
    case MsgType::kResume:
      paused_ = false;
      break;
    case MsgType::kRequestStatus: {
      const auto status = computeStatus();
      if (brokerMode_) {
        if (broker_ != nullptr) {
          broker_->respondStatus(*comm_, cmd.commandId, status);
        }
      } else {
        server_.sendStatus(*comm_, status);
      }
      break;
    }
    case MsgType::kRequestTelemetry: {
      const auto report = computeStepReport();
      if (brokerMode_) {
        if (broker_ != nullptr) {
          broker_->respondTelemetry(*comm_, cmd.commandId, report);
        }
      } else {
        server_.sendTelemetry(*comm_, report);
      }
      break;
    }
    case MsgType::kRequestFrame:
      runPipelineNow();
      if (brokerMode_ && broker_ != nullptr) {
        broker_->respondImage(*comm_, cmd.commandId, lastViewKey_,
                              lastImageFrame_);
      }
      break;
    case MsgType::kSetRoi: {
      // Extract + gather the requested detail region (§V drill-down).
      PipelineContext ctx;
      ctx.comm = comm_;
      ctx.domain = domain_;
      ctx.macro = &solver_->macro();
      ctx.ghosts = ghosts_.get();
      ctx.octree = octree_.get();
      ctx.step = solver_->stepsDone();
      ExtractStage().run(ctx);
      const int level = std::clamp(cmd.roiLevel, 0, octree_->leafLevel());
      auto nodes = multires::gatherRoi(*comm_, *octree_, level, cmd.roi);
      steer::RoiData roi;
      roi.step = solver_->stepsDone();
      roi.level = level;
      roi.nodes = std::move(nodes);
      if (brokerMode_) {
        if (broker_ != nullptr) {
          broker_->respondRoi(*comm_, cmd.commandId, roi);
        }
      } else {
        server_.sendRoi(*comm_, roi);
      }
      break;
    }
    case MsgType::kRequestObservable: {
      // Hydrodynamic observable over a user-defined subset (§I). The roi
      // box is in lattice coordinates; empty boxes mean the whole domain.
      const bool wholeDomain = cmd.roi.isEmpty();
      const auto& lat = domain_->lattice();
      const auto& macro = solver_->macro();
      double localAcc = 0.0;
      double localMax = 0.0;
      std::uint64_t localCount = 0;
      std::vector<lb::WssSample> wss;
      const auto kind = static_cast<steer::ObservableKind>(cmd.observable);
      if (kind == steer::ObservableKind::kMeanWss) {
        wss = lb::computeWallShearStress(*domain_, macro);
      }
      if (kind == steer::ObservableKind::kMeanWss) {
        for (const auto& w : wss) {
          const Vec3i p = lat.sitePosition(w.siteId);
          if (!wholeDomain && !cmd.roi.contains(p)) continue;
          localAcc += w.wss;
          ++localCount;
        }
      } else {
        for (std::uint32_t l = 0; l < domain_->numOwned(); ++l) {
          const Vec3i p = lat.sitePosition(domain_->globalOf(l));
          if (!wholeDomain && !cmd.roi.contains(p)) continue;
          ++localCount;
          switch (kind) {
            case steer::ObservableKind::kMeanSpeed:
              localAcc += macro.u[l].norm();
              break;
            case steer::ObservableKind::kMaxSpeed:
              localMax = std::max(localMax, macro.u[l].norm());
              break;
            case steer::ObservableKind::kMassFluxX:
              localAcc += macro.rho[l] * macro.u[l].x;
              break;
            case steer::ObservableKind::kMass:
              localAcc += macro.rho[l];
              break;
            default:
              break;
          }
        }
      }
      const auto count = comm_->allreduceSum(localCount);
      double value = 0.0;
      switch (kind) {
        case steer::ObservableKind::kMaxSpeed:
          value = comm_->allreduceMax(localMax);
          break;
        case steer::ObservableKind::kMeanSpeed:
        case steer::ObservableKind::kMeanWss:
          value = count > 0 ? comm_->allreduceSum(localAcc) /
                                  static_cast<double>(count)
                            : 0.0;
          break;
        default:
          value = comm_->allreduceSum(localAcc);
          break;
      }
      steer::ObservableReport report;
      report.step = solver_->stepsDone();
      report.kind = cmd.observable;
      report.value = value;
      report.siteCount = count;
      if (brokerMode_) {
        if (broker_ != nullptr) {
          broker_->respondObservable(*comm_, cmd.commandId, report);
        }
      } else {
        server_.sendObservable(*comm_, report);
      }
      break;
    }
    case MsgType::kTerminate:
      terminated_ = true;
      break;
    default:
      HEMO_LOG_WARN() << "ignoring unexpected steering frame type "
                      << static_cast<int>(cmd.type);
      break;
  }
  if (brokerMode_) {
    // Routed ack: reaches only the issuing client(s); suppressed for
    // synthesized subscription ticks.
    if (broker_ != nullptr) broker_->respondAck(*comm_, cmd.commandId);
  } else {
    server_.sendAck(*comm_, cmd.commandId);
  }
}

void SimulationDriver::pollSteering() {
  std::vector<steer::Command> commands;
  if (brokerMode_) {
    HEMO_TSPAN(kSteer, "serve.poll");
    std::vector<steer::Command> drained;
    std::uint8_t healthy = 1;
    if (comm_->rank() == 0 && broker_ != nullptr) {
      try {
        drained = broker_->drainCommands(*comm_, solver_->stepsDone());
      } catch (const std::exception& e) {
        // Serving-plane failure must not take the solver down: degrade to
        // solver-only and keep stepping (graceful degradation).
        HEMO_LOG_WARN() << "broker failed, degrading to solver-only: "
                        << e.what();
        healthy = 0;
      }
    }
    comm_->bcast(healthy, 0);
    if (healthy == 0) {
      brokerMode_ = false;
      broker_ = nullptr;
      if (auto* t = telemetry::threadTelemetry()) {
        t->metrics().counter("serve.broker_failures").add(1);
      }
      noteFlight("broker failed at step " +
                 std::to_string(solver_->stepsDone()) +
                 "; degraded to solver-only");
      return;
    }
    commands = steer::broadcastCommands(*comm_, drained);
  } else {
    commands = server_.poll(*comm_);
  }
  for (const auto& cmd : commands) {
    applyCommand(cmd);
  }
}

lb::RestoreResult SimulationDriver::restoreLatest() {
  HEMO_CHECK_MSG(!config_.checkpointDir.empty(),
                 "restoreLatest needs DriverConfig::checkpointDir");
  return lb::restoreLatest(config_.checkpointDir, *solver_, *comm_);
}

void SimulationDriver::writeDiagnosticDump(const SentinelVerdict& verdict) {
  if (comm_->rank() != 0) return;
  std::string path = config_.sentinel.dumpPath;
  if (path.empty()) {
    if (config_.checkpointDir.empty()) {
      HEMO_LOG_WARN() << "sentinel dump skipped: no dumpPath/checkpointDir";
      return;
    }
    path = config_.checkpointDir + "/sentinel_dump.txt";
  }
  std::ofstream out(path);
  if (!out) {
    HEMO_LOG_WARN() << "sentinel dump failed to open " << path;
    return;
  }
  out << "HemoLB stability-sentinel diagnostic dump\n";
  out << "offending step: " << verdict.step << "\n";
  out << "verdict: finite=" << (verdict.finite ? 1 : 0)
      << " minRho=" << verdict.minRho << " maxRho=" << verdict.maxRho
      << " maxSpeed=" << verdict.maxSpeed << "\n";
  out << "bounds: minDensity=" << config_.sentinel.minDensity
      << " maxDensity=" << config_.sentinel.maxDensity
      << " maxSpeed=" << config_.sentinel.maxSpeed << "\n";
  out << "rollbacks performed: " << rollbacksDone_ << " of "
      << config_.sentinel.maxRollbacks << "\n";
  out << "per-rank extrema:\n";
  const auto& perRank = sentinel_.lastPerRank();
  for (std::size_t rank = 0; rank < perRank.size(); ++rank) {
    const auto& r = perRank[rank];
    out << "  rank " << rank << ": finite=" << static_cast<int>(r.finite)
        << " minRho=" << r.minRho << " maxRho=" << r.maxRho
        << " maxSpeed=" << r.maxSpeed << "\n";
  }
  out << "last applied steered commands (oldest first):\n";
  for (const AppliedChange& change : history_) {
    out << "  step " << change.step << ": command " << change.cmd.commandId
        << " type " << static_cast<int>(change.cmd.type)
        << " value=" << change.cmd.value << " force=(" << change.cmd.force.x
        << ", " << change.cmd.force.y << ", " << change.cmd.force.z
        << ") ioletId=" << change.cmd.ioletId << "\n";
  }
  HEMO_LOG_WARN() << "sentinel diagnostic dump written to " << path;
}

void SimulationDriver::noteFlight(const std::string& what) {
#ifndef HEMO_TELEMETRY_DISABLED
  if (auto* t = telemetry::threadTelemetry()) {
    t->flightRecorder().note(what);
  }
#else
  (void)what;
#endif
}

bool SimulationDriver::sentinelGuard(std::uint64_t step) {
  const auto verdict = sentinel_.check(*comm_, solver_->macro(), step);
  if (auto* t = telemetry::threadTelemetry()) {
    t->metrics().gauge("sentinel.headroom").set(sentinel_.headroom(verdict));
  }
  lastSentinel_.valid = 1;
  lastSentinel_.finite = verdict.finite ? 1 : 0;
  lastSentinel_.minRho = verdict.minRho;
  lastSentinel_.maxRho = verdict.maxRho;
  lastSentinel_.maxSpeed = verdict.maxSpeed;
  lastSentinel_.headroom = sentinel_.headroom(verdict);
  lastSentinel_.step = verdict.step;
  if (verdict.ok) return true;
  noteFlight("sentinel divergence at step " + std::to_string(step));

  // Divergence consensus. Record the failure, then: rollback + quarantine
  // while retries remain, otherwise degrade to the diagnostic dump.
  if (auto* t = telemetry::threadTelemetry()) {
    t->metrics().counter("sentinel.triggers").add(1);
    t->metrics().counter("lb.consistency_fail").add(1);
  }
  lastStatus_.consistencyOk = 0;
  lastStatus_.consistencyStep = step;
  if (comm_->rank() == 0) {
    HEMO_LOG_WARN() << "sentinel divergence at step " << step
                    << ": finite=" << (verdict.finite ? 1 : 0)
                    << " minRho=" << verdict.minRho
                    << " maxRho=" << verdict.maxRho
                    << " maxSpeed=" << verdict.maxSpeed;
  }

  const bool canRollback = rollbacksDone_ < config_.sentinel.maxRollbacks &&
                           config_.checkpointEvery > 0 &&
                           !config_.checkpointDir.empty();
  if (canRollback) {
    const auto restored = restoreLatest();
    if (restored.ok()) {
      ++rollbacksDone_;
      if (auto* t = telemetry::threadTelemetry()) {
        t->metrics().counter("sentinel.rollbacks").add(1);
      }
      if (comm_->rank() == 0) {
        HEMO_LOG_WARN() << "sentinel rolled back to checkpointed step "
                        << restored.step << " (rollback " << rollbacksDone_
                        << "/" << config_.sentinel.maxRollbacks << ")";
      }
      noteFlight("sentinel rollback to checkpointed step " +
                 std::to_string(restored.step));
      // Checkpoints hold distributions only — steered parameters survive a
      // restore, so the rollback must also revert the most recent change,
      // the prime suspect for the blow-up.
      quarantineLatestChange();
      return false;
    }
    if (comm_->rank() == 0) {
      HEMO_LOG_WARN() << "sentinel rollback failed: " << restored.detail;
    }
  }

  // Bounded retries exhausted (or no checkpoint to restore): graceful
  // degradation, not an abort — dump diagnostics and stop cleanly.
  writeDiagnosticDump(verdict);
  noteFlight("sentinel exhausted at step " + std::to_string(step) +
             " after " + std::to_string(rollbacksDone_) + " rollbacks");
#ifndef HEMO_TELEMETRY_DISABLED
  // The run is about to stop on a diverged state — flush the flight
  // recorder so the postmortem bundle sits next to the text dump.
  if (comm_->rank() == 0) {
    auto& registry = telemetry::FlightRegistry::instance();
    if (registry.armed()) {
      registry.flush("sentinel-exhausted",
                     "divergence at step " + std::to_string(step));
    }
  }
#endif
  terminated_ = true;
  return false;
}

telemetry::StepReport SimulationDriver::computeStepReport() {
  static_assert(comm::kNumTrafficClasses <=
                    telemetry::kReportTrafficClasses,
                "StepReport traffic arrays too small for comm::Traffic");
  telemetry::StepReport local;
  local.step = solver_->stepsDone();
  local.sites = domain_->numOwned();
  local.stepsCovered = solver_->stepsDone() - windowStartStep_;
  local.wallSeconds = windowTimer_.seconds();
  local.collideSeconds = solver_->collideTimer().total() - windowCollide_;
  local.streamSeconds = solver_->streamTimer().total() - windowStream_;
  local.commSeconds = solver_->commTimer().total() - windowComm_;
  double visTotal = 0.0;
  for (std::size_t i = 0; i < pipeline_.numStages(); ++i) {
    visTotal += pipeline_.stageSeconds(i);
  }
  local.visSeconds = visTotal - windowVis_;
  local.commHiddenFraction = solver_->commHiddenFraction();
#ifndef HEMO_TELEMETRY_DISABLED
  // Wait-state window: what this rank's blocked time was spent on, and
  // which peer it most blames (classified at every recv from the
  // piggybacked sender post-times; see telemetry/waitstate.hpp).
  local.waitMeasuredSeconds =
      solver_->recvWaitTimer().total() - windowRecvWait_;
  if (auto* t = telemetry::threadTelemetry()) {
    const auto waitWindow = t->waitState().window();
    local.waitLateSenderSeconds = waitWindow.lateSenderSeconds;
    local.waitLateReceiverSeconds = waitWindow.lateReceiverSeconds;
    local.waitCollectiveSeconds = waitWindow.collectiveSeconds;
    local.waitLateReceiverSlackSeconds = waitWindow.lateReceiverSlackSeconds;
    local.waitBlamedRank = waitWindow.topBlamedRank;
    local.waitBlamedSeconds = waitWindow.topBlamedSeconds;
  }
#endif
  const comm::TrafficCounters& now = comm_->counters();
  for (int c = 0; c < comm::kNumTrafficClasses; ++c) {
    const auto& cur = now.perClass[static_cast<std::size_t>(c)];
    const auto& prev = windowCounters_.perClass[static_cast<std::size_t>(c)];
    local.bytesSent[c] = cur.bytesSent - prev.bytesSent;
    local.msgsSent[c] = cur.messagesSent - prev.messagesSent;
  }

  // Start the next window before the collective so the gather traffic is
  // charged to it, not to the window being reported.
  windowStartStep_ = solver_->stepsDone();
  windowTimer_.reset();
  windowCollide_ = solver_->collideTimer().total();
  windowStream_ = solver_->streamTimer().total();
  windowComm_ = solver_->commTimer().total();
  windowVis_ = visTotal;
  windowRecvWait_ = solver_->recvWaitTimer().total();
  windowCounters_ = now;

  const auto perRank = comm_->allgather(local);
  lastStepReport_ = telemetry::aggregateStepReports(perRank);
  lastPerRankReports_ = perRank;

  // Publish the rank-visible aggregate to this rank's metrics registry.
  if (auto* t = telemetry::threadTelemetry()) {
    auto& m = t->metrics();
    m.gauge("lb.mlups").set(lastStepReport_.mlups);
    m.gauge("lb.load_imbalance").set(lastStepReport_.loadImbalance);
    m.gauge("lb.comm_hidden_fraction").set(
        lastStepReport_.commHiddenFraction);
    m.gauge("vis.seconds").set(lastStepReport_.visSeconds);
    // Cross-rank critical path: who the window waited on and why.
    m.gauge("lb.wait.late_sender_seconds")
        .set(lastStepReport_.waitLateSenderSeconds);
    m.gauge("lb.wait.late_receiver_seconds")
        .set(lastStepReport_.waitLateReceiverSeconds);
    m.gauge("lb.wait.collective_seconds")
        .set(lastStepReport_.waitCollectiveSeconds);
    m.gauge("lb.wait.straggler_rank")
        .set(lastStepReport_.waitStragglerRank);
    m.gauge("lb.wait.attributed_fraction")
        .set(lastStepReport_.waitAttributedFraction);
    // Trace-ring overflow is observability loss; surface it as a metric
    // (the Chrome exporter also marks it in the trace itself).
    m.gauge("trace.dropped").set(static_cast<double>(t->tracer().dropped()));

    // Retain this window in the flight recorder: metrics snapshot, local +
    // aggregate report, sentinel extrema and serving-plane state — the
    // postmortem bundle is built from these rings.
    telemetry::FlightWindow fw;
    fw.step = lastStepReport_.step;
    fw.tsNs = telemetry::traceNowNs();
    fw.local = local;
    fw.aggregate = lastStepReport_;
    fw.sentinel = lastSentinel_;
    fw.broker.active = brokerMode_ ? 1 : 0;
    if (brokerMode_ && broker_ != nullptr) {
      fw.broker.clients = broker_->numClients();
      fw.broker.aliveClients = broker_->numAliveClients();
    }
    for (const auto& [name, c] : m.counters()) {
      fw.metrics.emplace_back(name, static_cast<double>(c.value()));
    }
    for (const auto& [name, g] : m.gauges()) {
      fw.metrics.emplace_back(name, g.value());
    }
    t->flightRecorder().captureWindow(std::move(fw));
    t->flightRecorder().retainTrace(t->tracer());
  }
  return lastStepReport_;
}

int SimulationDriver::run(int steps) {
  runTimer_.reset();
  stepsThisRun_ = 0;
  int executed = 0;
  while (executed < steps && !terminated_) {
    pollSteering();
    // Liveness heartbeat once per step: a rank that is healthy but between
    // communications (long render, paused peer) must not be accused.
    comm_->noteAlive();
    if (terminated_) break;
    if (paused_) {
      // Paused: keep servicing steering commands without advancing.
      std::this_thread::yield();
      continue;
    }
#ifndef HEMO_FAULTINJECT_DISABLED
    if (util::FaultInjector::instance().armed()) {
      using util::FaultAction;
      util::FaultRule rule;
      // World rank: injection rules stay addressed to the original rank
      // numbering even after a recovery shrink renumbers the group.
      switch (util::FaultInjector::instance().decide(
          util::FaultSite::kDriverStep, comm_->worldRank(), &rule)) {
        case FaultAction::kKill:
          throw util::RankKilledError("injected rank death on rank " +
                                      std::to_string(comm_->worldRank()));
        case FaultAction::kHang:
          // Goes silent here (no unwind, no sends) until the liveness
          // layer declares this rank dead, then dies like kKill.
          util::FaultInjector::instance().hangUntilReleased(
              comm_->worldRank());
        case FaultAction::kFail:
          throw util::InjectedFaultError("injected step failure on rank " +
                                         std::to_string(comm_->worldRank()));
        case FaultAction::kDelay:
          util::FaultInjector::sleepFor(rule.delayMillis);
          break;
        default:
          break;
      }
    }
#endif
    {
      WallTimer stepTimer;
      HEMO_TSPAN(kStep, "driver.step");
      solver_->step();
      lastStepSeconds_ = stepTimer.seconds();
    }
    if (stepsCounter_ != nullptr) {
      stepsCounter_->add(1);
      stepSecondsHist_->add(lastStepSeconds_);
    }
    ++executed;
    ++stepsThisRun_;
    const auto done = solver_->stepsDone();
    // Stage-2 sentinel: consensus divergence check before anything
    // downstream (render / checkpoint / status) consumes — or persists —
    // a possibly-poisoned state.
    if (sentinel_.enabled() && sentinel_.due(done)) {
      if (!sentinelGuard(done)) continue;
    }
    // Closing the loop: periodic imbalance check feeding measured costs
    // into a live diffusive repartition + site migration.
    if (config_.repartition.repartitionEvery > 0 &&
        done % static_cast<std::uint64_t>(
                   config_.repartition.repartitionEvery) ==
            0) {
      maybeRepartition();
    }
    bool renderDue =
        config_.visEvery > 0 &&
        done % static_cast<std::uint64_t>(config_.visEvery) == 0;
    if (brokerMode_) {
      // Subscription cadences live on rank 0 (the broker); a 1-byte
      // broadcast keeps the collective render decision identical on every
      // rank.
      std::uint8_t due = renderDue ? 1 : 0;
      if (comm_->rank() == 0 && broker_ != nullptr &&
          broker_->imageDue(done)) {
        due = 1;
      }
      comm_->bcast(due, 0);
      renderDue = due != 0;
    }
    if (renderDue) {
      WallTimer pipeTimer;
      runPipelineNow();
      if (config_.adaptiveVisBudget > 0.0) {
        // Rank 0 owns the clock; the chosen cadence is broadcast so every
        // rank's pipeline keeps firing on the same steps.
        scheduler_.observe(lastStepSeconds_, pipeTimer.seconds());
        int every = scheduler_.recommendedEvery();
        comm_->bcast(every, 0);
        config_.visEvery = every;
      }
    }
    if (config_.checkpointEvery > 0 && !config_.checkpointDir.empty() &&
        done % static_cast<std::uint64_t>(config_.checkpointEvery) == 0) {
      const auto path =
          config_.checkpointDir + "/" + lb::checkpointFileName(done);
      lb::writeCheckpoint(path, *solver_, *comm_,
                          {config_.checkpointStripes});
      if (comm_->rank() == 0 && config_.checkpointKeep > 0) {
        lb::pruneCheckpoints(config_.checkpointDir, config_.checkpointKeep);
      }
    }
    if (config_.buddy.store != nullptr) {
      const int every = config_.buddy.mirrorEvery > 0
                            ? config_.buddy.mirrorEvery
                            : config_.checkpointEvery;
      if (every > 0 && done % static_cast<std::uint64_t>(every) == 0) {
        lb::mirrorBuddy(*solver_, *comm_, *config_.buddy.store);
      }
    }
    if (config_.statusEvery > 0 &&
        done % static_cast<std::uint64_t>(config_.statusEvery) == 0) {
      server_.sendStatus(*comm_, computeStatus());
      server_.sendTelemetry(*comm_, computeStepReport());
      // Flush live serve.* counters every window: frames_dropped grows
      // inside the client outboxes as they evict, so without this it only
      // surfaced when some frame publish happened to run publishMetrics.
      if (comm_->rank() == 0 && broker_ != nullptr) {
        broker_->publishMetrics();
      }
    }
  }
  return executed;
}

std::vector<double> SimulationDriver::measuredSiteCosts() const {
  const auto& lat = domain_->lattice();
  const auto& partOf = domain_->partition().partOfSite;
  const int numRanks = comm_->size();

  // Effective load per rank from the last window's per-rank reports: the
  // rank's own busy + vis seconds, plus the wait time other ranks' blame
  // vectors charge to it (a rank everyone waits on carries more effective
  // load than its own timers admit — PR 7's attribution closing the loop).
  std::vector<double> load(static_cast<std::size_t>(numRanks), 0.0);
  std::vector<double> blame(static_cast<std::size_t>(numRanks), 0.0);
  std::vector<std::uint64_t> sites(static_cast<std::size_t>(numRanks), 0);
  const std::size_t n =
      std::min(lastPerRankReports_.size(), static_cast<std::size_t>(numRanks));
  for (std::size_t r = 0; r < n; ++r) {
    const auto& rep = lastPerRankReports_[r];
    load[r] = rep.busySeconds() + rep.visSeconds;
    sites[r] = rep.sites;
    if (rep.waitBlamedRank >= 0 && rep.waitBlamedRank < numRanks) {
      blame[static_cast<std::size_t>(rep.waitBlamedRank)] +=
          rep.waitBlamedSeconds;
    }
  }
  double totalLoad = 0.0;
  for (int r = 0; r < numRanks; ++r) {
    load[static_cast<std::size_t>(r)] += blame[static_cast<std::size_t>(r)];
    totalLoad += load[static_cast<std::size_t>(r)];
  }

  // Spread each rank's effective load uniformly over its owned sites. With
  // no usable telemetry (fresh window, telemetry compiled out) fall back to
  // uniform cost, which rebalances site counts.
  std::vector<double> perSite(static_cast<std::size_t>(numRanks), 1.0);
  if (totalLoad > 0.0) {
    for (int r = 0; r < numRanks; ++r) {
      const auto s = sites[static_cast<std::size_t>(r)];
      if (s > 0) {
        perSite[static_cast<std::size_t>(r)] =
            std::max(load[static_cast<std::size_t>(r)], 1e-12 * totalLoad) /
            static_cast<double>(s);
      }
    }
  }
  std::vector<double> cost(lat.numFluidSites());
  for (std::uint64_t g = 0; g < lat.numFluidSites(); ++g) {
    cost[static_cast<std::size_t>(g)] = perSite[static_cast<std::size_t>(
        partOf[static_cast<std::size_t>(g)])];
  }
  return cost;
}

void SimulationDriver::maybeRepartition() {
  const auto& rc = config_.repartition;
  // Collective window aggregation: every rank sees the identical report,
  // so the trigger decision below needs no extra votes.
  const auto report = computeStepReport();
  if (repartCooldown_ > 0) {
    --repartCooldown_;
    overThresholdWindows_ = 0;
    return;
  }
  if (report.stepsCovered == 0 ||
      report.loadImbalance <= rc.imbalanceThreshold) {
    overThresholdWindows_ = 0;
    return;
  }
  ++overThresholdWindows_;
  if (overThresholdWindows_ < rc.triggerWindows) return;
  if (migrationsDone_ >= rc.maxMigrations) return;
  // Sentinel gate: never migrate poisoned state. A migration right before
  // a rollback would launder diverged populations into a fresh partition
  // the checkpoint machinery then trusts.
  if (sentinel_.enabled()) {
    const auto verdict =
        sentinel_.check(*comm_, solver_->macro(), solver_->stepsDone());
    if (!verdict.ok) {
      if (auto* t = telemetry::threadTelemetry()) {
        t->metrics().counter("repart.vetoed").add(1);
      }
      noteFlight("repartition vetoed by sentinel at step " +
                 std::to_string(solver_->stepsDone()));
      overThresholdWindows_ = 0;
      return;
    }
  }
  const auto outcome = migrateNow(measuredSiteCosts());
  overThresholdWindows_ = 0;
  if (outcome.migrated) repartCooldown_ = rc.cooldownWindows;
}

MigrationOutcome SimulationDriver::migrateNow(
    const std::vector<double>& siteCost) {
  HEMO_TSPAN(kPartition, "driver.migrate");
  const auto& lat = domain_->lattice();
  HEMO_CHECK(siteCost.size() == lat.numFluidSites());
  MigrationOutcome out;

  if (!repartGraph_) {
    repartGraph_ = std::make_unique<partition::SiteGraph>(
        partition::buildSiteGraph(lat));
  }
  auto plan = partition::rebalance(*repartGraph_, domain_->partition(),
                                   siteCost, config_.repartition.options);
  out.sitesMoved = plan.sitesMoved;
  out.imbalanceBefore = plan.imbalanceBefore;
  out.imbalanceAfter = plan.imbalanceAfter;
  // The plan is a pure function of (graph, partition, siteCost), all
  // identical on every rank; a diverging plan would deadlock the transfer,
  // so verify cheaply before touching any state.
  HEMO_CHECK_MSG(comm_->allreduceMax(plan.sitesMoved) ==
                     comm_->allreduceMin(plan.sitesMoved),
                 "repartition plan diverged across ranks");
  if (auto* t = telemetry::threadTelemetry()) {
    auto& m = t->metrics();
    m.counter("repart.triggers").add(1);
    m.gauge("repart.imbalance_before").set(plan.imbalanceBefore);
    m.gauge("repart.imbalance_after").set(plan.imbalanceAfter);
  }
  if (plan.sitesMoved == 0) {
    if (auto* t = telemetry::threadTelemetry()) {
      t->metrics().counter("repart.skipped").add(1);
    }
    return out;
  }

  WallTimer migrateTimer;
  const std::uint64_t stepsDone = solver_->stepsDone();
  auto newPartition =
      std::make_unique<partition::Partition>(std::move(plan.partition));
  auto newDomain =
      std::make_unique<lb::DomainMap>(lat, *newPartition, comm_->rank());

  // Data plane: repack distributions onto the new ownership (collective,
  // layout-agnostic, traffic class kRepart).
  std::vector<std::vector<double>> columns;
  const auto stats =
      lb::migrateDistributions(*solver_, *newDomain, *comm_, columns);

  // Rebuild the solver over the new domain, carrying every piece of
  // steerable state: LbParams (tau/body force already reflect steering),
  // iolet overrides, the step counter, and finally the populations.
  auto newSolver = std::make_unique<lb::SolverD3Q19>(*newDomain, *comm_,
                                                     solver_->params());
  for (std::size_t io = 0; io < lat.iolets().size(); ++io) {
    newSolver->setIoletDensity(io, solver_->ioletDensity(io));
    if (solver_->ioletIsVelocityBc(io)) {
      newSolver->setIoletVelocity(io, solver_->ioletVelocity(io));
    }
  }
  newSolver->setDistributions(columns);
  newSolver->setStepsDone(stepsDone);

  solver_ = std::move(newSolver);
  domain_ = newDomain.get();
  // Vis plumbing follows ownership: halo ghosts and the multires octree
  // are domain-shaped, so rebuild both (collective); pipeline stages and
  // serve subscriptions are domain-stateless and carry over untouched.
  ghosts_ = std::make_unique<vis::GhostedField>(*newDomain, *comm_,
                                                /*rings=*/2);
  octree_ =
      std::make_unique<multires::FieldOctree>(*newDomain,
                                              config_.octreeLeafLog2);
  liveDomain_ = std::move(newDomain);
  livePartition_ = std::move(newPartition);
  ++migrationEpoch_;
  ++migrationsDone_;
  out.migrated = true;
  out.seconds = migrateTimer.seconds();

  // The rebuilt solver's timers restart at zero — rebase the telemetry
  // window baselines or the next StepReport window would go negative.
  windowStartStep_ = stepsDone;
  windowTimer_.reset();
  windowCollide_ = solver_->collideTimer().total();
  windowStream_ = solver_->streamTimer().total();
  windowComm_ = solver_->commTimer().total();
  windowRecvWait_ = solver_->recvWaitTimer().total();
  double visTotal = 0.0;
  for (std::size_t i = 0; i < pipeline_.numStages(); ++i) {
    visTotal += pipeline_.stageSeconds(i);
  }
  windowVis_ = visTotal;
  windowCounters_ = comm_->counters();

  if (auto* t = telemetry::threadTelemetry()) {
    auto& m = t->metrics();
    m.counter("repart.migrations").add(1);
    m.counter("repart.sites_moved").add(stats.sitesMoved);
    m.gauge("repart.migration_seconds").set(out.seconds);
    m.gauge("repart.epoch").set(static_cast<double>(migrationEpoch_));
  }
  noteFlight("live repartition at step " + std::to_string(stepsDone) +
             ": moved " + std::to_string(stats.sitesMoved) +
             " sites, imbalance " + std::to_string(out.imbalanceBefore) +
             " -> " + std::to_string(out.imbalanceAfter));
  if (comm_->rank() == 0) {
    HEMO_LOG_INFO() << "live repartition (epoch " << migrationEpoch_
                    << ") at step " << stepsDone << ": moved "
                    << stats.sitesMoved << " sites ("
                    << stats.bytesMoved / 1024 << " KiB), imbalance "
                    << out.imbalanceBefore << " -> " << out.imbalanceAfter
                    << " in " << out.seconds << " s";
  }
  return out;
}

}  // namespace hemo::core
