#pragma once
/// \file preprocess.hpp
/// \brief The pre-processing chain of §IV.B: build the site graph, weight
/// it (optionally folding visualisation cost into the balance equation —
/// the paper's central pre-processing argument), partition it with a chosen
/// algorithm, and report the decomposition quality.

#include <functional>
#include <memory>
#include <string>

#include "geometry/sparse_lattice.hpp"
#include "partition/metrics.hpp"
#include "partition/partitioners.hpp"

namespace hemo::core {

struct PreprocessConfig {
  /// One of: block | sfc | hilbert | rcb | greedy | kway.
  std::string partitioner = "kway";
  /// Fold per-site visualisation cost into the vertex weights before
  /// partitioning ("these costs ... must be involved in the balance
  /// equation", §IV.B).
  bool visAware = false;
  /// Relative extra cost of a vis-active site (measured or estimated).
  double visCostFactor = 3.0;
  /// Which sites carry visualisation work (e.g. the steered ROI). Called
  /// with the site's world position.
  std::function<bool(const Vec3d&)> visRegion;
};

struct PreprocessReport {
  partition::Partition partition;
  partition::PartitionMetrics metrics;
  double seconds = 0.0;  ///< partitioner wall time
  std::string partitionerName;
};

/// Instantiate a partitioner by name (throws on unknown names).
std::unique_ptr<partition::Partitioner> makePartitioner(
    const std::string& name, const geometry::SparseLattice& lattice);

/// Per-site cost vector for the current config: 1.0 everywhere, plus
/// visCostFactor for sites inside the vis region.
std::vector<double> makeSiteCosts(const geometry::SparseLattice& lattice,
                                  const PreprocessConfig& config);

/// Run the full pre-processing chain.
PreprocessReport preprocess(const geometry::SparseLattice& lattice,
                            int numParts, const PreprocessConfig& config);

}  // namespace hemo::core
