#include "core/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "lb/domain_map.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace hemo::core {

namespace {

/// User tag for the agreement round (9001/9002 checkpoint, 9851 buddy).
constexpr int kTagAgree = 9861;

void noteFlight(const std::string& what) {
  if (auto* t = telemetry::threadTelemetry()) {
    t->flightRecorder().note(what);
  }
}

void bumpCounter(const char* name, std::uint64_t n = 1) {
  if (auto* t = telemetry::threadTelemetry()) {
    t->metrics().counter(name).add(n);
  }
}

}  // namespace

std::vector<int> agreeOnDeadSet(comm::Communicator& comm,
                                comm::DeathBoard& board,
                                const comm::LivenessConfig& cfg) {
  const int me = comm.worldRank();
  if (board.dead(me)) {
    throw util::RankKilledError(
        "rank " + std::to_string(me) +
        " was declared dead by the group; committing suicide");
  }
  // Peers silent for the whole agreement deadline are accused here too —
  // detection must make progress even when the dead rank is one we never
  // blocked on directly. Wider than the steady-state timeout: agreement
  // runs while survivors are still unwinding deep call stacks.
  const std::int64_t deadlineNs =
      std::max<std::int64_t>(3 * cfg.timeoutMs, 1000) * 1'000'000;
  // Each restart consumes a strictly newer epoch, so non-convergence means
  // more deaths than ranks — impossible; the cap only guards a logic bug.
  const int maxAttempts = 64 + 8 * comm.size();
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    // Consistent snapshot: the epoch counts *completed* declarations, so a
    // dead set of exactly `epoch` ranks is uniquely determined by the
    // epoch value — every rank that acks this epoch has this exact set.
    const std::uint32_t epoch = board.epoch();
    std::vector<int> dead = board.deadSet();
    if (static_cast<std::uint32_t>(dead.size()) != epoch) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;  // a declareDead is mid-flight; re-snapshot
    }
    if (board.dead(me)) {
      throw util::RankKilledError(
          "rank " + std::to_string(me) +
          " was declared dead during agreement; committing suicide");
    }
    std::vector<int> peers;  // group ranks of the other survivors
    for (int r = 0; r < comm.size(); ++r) {
      const int w = comm.worldRankOf(r);
      if (w == me || board.dead(w)) continue;
      peers.push_back(r);
    }
    for (const int r : peers) {
      comm.send<std::uint32_t>(r, kTagAgree, epoch);
    }
    const std::int64_t waitStart = comm::DeathBoard::nowNs();
    std::vector<char> acked(peers.size(), 0);
    std::size_t ackedCount = 0;
    bool restart = false;
    while (ackedCount < peers.size() && !restart) {
      bool progress = false;
      for (std::size_t i = 0; i < peers.size() && !restart; ++i) {
        if (acked[i] != 0) continue;
        const int r = peers[i];
        const int w = comm.worldRankOf(r);
        std::vector<std::byte> payload;
        while (comm.tryRecvBytes(r, kTagAgree, payload)) {
          std::uint32_t got = 0;
          std::memcpy(&got, payload.data(),
                      std::min(sizeof got, payload.size()));
          if (got == epoch) {
            acked[i] = 1;
            ++ackedCount;
            progress = true;
            break;
          }
          if (got > epoch) {
            restart = true;  // the peer already sees a newer death
            break;
          }
          // got < epoch: stale ack from an abandoned attempt; drain it.
        }
        if (restart || acked[i] != 0) continue;
        if (board.epoch() != epoch) {
          restart = true;  // someone declared a new death mid-round
        } else if (board.dead(w)) {
          restart = true;
        } else if (board.exited(w)) {
          board.declareDead(w);
          restart = true;
        } else if (comm::DeathBoard::nowNs() -
                       std::max(board.lastSeenNs(w), waitStart) >
                   deadlineNs) {
          board.declareDead(w);
          restart = true;
        }
      }
      if (!restart && ackedCount < peers.size() && !progress) {
        board.noteAlive(me);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (restart) continue;
    // Everyone acked this epoch: unique dead set, every survivor returns
    // the identical vector. A death *after* this point surfaces as a new
    // PeerDeadError on the shrunken communicator's first bounded wait.
    return dead;
  }
  throw std::runtime_error("agreement failed to converge after " +
                           std::to_string(maxAttempts) + " attempts");
}

ResilientRunner::Result ResilientRunner::run(int ranks, int steps,
                                             const CompletionHook& onComplete,
                                             serve::SessionBroker* broker) {
  Result result;
  result.survivors = ranks;
  buddy_.clear();
  const auto graph = partition::buildSiteGraph(lattice_);

  comm::Runtime rt(ranks);
  rt.setLiveness(recovery_.liveness);
  comm::RunOptions options;
  options.tolerateRankDeath = true;
  options.joinTimeoutSeconds = recovery_.joinTimeoutSeconds;

  std::mutex resultMutex;

  const auto rankMain = [&](comm::Communicator& world) {
    comm::Communicator comm = world;
    auto& board = rt.deathBoard();
    bool resuming = false;
    std::vector<int> knownDead;
    std::vector<RecoveryEvent> localEvents;
    WallTimer eventTimer;  // reset at detection; read at resume-ready
    for (;;) {
      try {
        // (Re)build the full stack on the current survivor group: fresh
        // partition of the survivors, domain map, solver, pipeline.
        const auto part = partitioner_.partition(graph, comm.size());
        lb::DomainMap domain(lattice_, part, comm.rank());
        DriverConfig cfg = config_;
        if (recovery_.buddy) {
          cfg.buddy.store = &buddy_;
        }
        SimulationDriver driver(domain, comm, cfg);
        // Serving stays up while world rank 0 (the broker's home) lives;
        // after its death the run degrades to solver-only.
        if (broker != nullptr && comm.worldRankOf(0) == 0) {
          driver.attachBroker(comm.rank() == 0 ? broker : nullptr);
        }

        if (resuming) {
          RecoveryEvent& ev = localEvents.back();
          WallTimer restoreTimer;
          bool restored = false;
          if (recovery_.buddy) {
            const auto r =
                lb::restoreFromBuddy(buddy_, driver.solver(), comm);
            if (r.ok()) {
              restored = true;
              ev.usedBuddy = true;
              ev.restoredStep = r.step;
            } else {
              noteFlight("recover: buddy restore unavailable (" + r.detail +
                         "); falling back");
            }
          }
          if (!restored && cfg.checkpointEvery > 0 &&
              !cfg.checkpointDir.empty()) {
            const auto r = driver.restoreLatest();
            if (r.ok()) {
              restored = true;
              ev.restoredStep = r.step;
            }
          }
          if (!restored) {
            if (!recovery_.allowColdRestart) {
              throw std::runtime_error(
                  "recovery: no restorable snapshot (buddy or disk) and "
                  "cold restart is disabled");
            }
            // Cold restart: deterministic solver, so replaying from step 0
            // on the survivors still reproduces the reference fields. Old
            // buddy slots would alias the replayed steps — drop them.
            ev.coldRestart = true;
            ev.restoredStep = 0;
            buddy_.clear();
          }
          ev.restoreSeconds = restoreTimer.seconds();
          ev.totalSeconds = eventTimer.seconds();
          if (auto* t = telemetry::threadTelemetry()) {
            t->metrics().gauge("recover.last_mttr_seconds")
                .set(ev.totalSeconds);
            t->metrics().gauge("recover.last_restored_step")
                .set(static_cast<double>(ev.restoredStep));
          }
          noteFlight("recover: resumed from step " +
                     std::to_string(ev.restoredStep) + " on " +
                     std::to_string(comm.size()) + " survivors (" +
                     (ev.coldRestart
                          ? std::string("cold restart")
                          : std::string(ev.usedBuddy ? "buddy" : "disk")) +
                     ")");
        }

        const auto done = driver.solver().stepsDone();
        const int remaining =
            steps > static_cast<int>(done)
                ? steps - static_cast<int>(done)
                : 0;
        driver.run(remaining);
        if (onComplete) {
          onComplete(domain, driver, comm);
        }
        {
          std::lock_guard<std::mutex> lock(resultMutex);
          result.completed = true;
          result.survivors = comm.size();
          result.finalStep = driver.solver().stepsDone();
          if (comm.rank() == 0) {
            result.events = localEvents;
          }
        }
        return;
      } catch (const comm::PeerDeadError& e) {
        eventTimer.reset();
        bumpCounter("recover.detections");
        noteFlight(std::string("recover: peer death detected: ") + e.what());
        if (static_cast<int>(localEvents.size()) >= recovery_.maxRecoveries) {
          throw std::runtime_error(
              "recovery: exceeded maxRecoveries=" +
              std::to_string(recovery_.maxRecoveries) + ": " + e.what());
        }
        board.declareDead(e.deadWorldRank());
        WallTimer agreeTimer;
        const auto dead = agreeOnDeadSet(comm, board, recovery_.liveness);
        RecoveryEvent ev;
        ev.agreeSeconds = agreeTimer.seconds();
        for (const int w : dead) {
          if (std::find(knownDead.begin(), knownDead.end(), w) ==
              knownDead.end()) {
            ev.deadWorldRanks.push_back(w);
          }
          // A dead thread-rank's "node memory" is gone with it.
          buddy_.dropHolder(w);
        }
        knownDead = dead;
        comm = comm.shrink(dead);
        ev.survivors = comm.size();
        localEvents.push_back(ev);
        resuming = true;
        bumpCounter("recover.events");
        noteFlight("recover: agreed on " + std::to_string(dead.size()) +
                   " dead rank(s); shrunk to " + std::to_string(comm.size()) +
                   " survivors");
      }
    }
  };

  try {
    rt.run(rankMain, options);
    if (!result.completed && result.error.empty()) {
      result.error = "no surviving rank completed the run";
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(resultMutex);
    result.completed = false;
    result.error = e.what();
  }
  return result;
}

}  // namespace hemo::core
