#pragma once
/// \file sentinel.hpp
/// \brief Numerical-stability sentinel: a cheap per-window reduction over
/// the macroscopic fields that reaches cross-rank consensus on divergence.
///
/// Stage 2 of the robustness layer (stage 1 is steer::validateCommand): a
/// guard can only refuse *obviously* bad parameters; a plausible-looking
/// steered change can still push the run over the stability edge many
/// steps later. The sentinel scans the owned sites' density/velocity every
/// `checkEvery` steps — O(sites) with no transcendentals — and allgathers
/// one small POD per rank, so every rank holds the identical verdict (and
/// the per-rank extrema, which become the diagnostic dump for free). The
/// driver reacts to a failed verdict with checkpoint rollback + parameter
/// quarantine (see SimulationDriver).

#include <cstdint>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "lb/domain_map.hpp"

namespace hemo::core {

struct SentinelConfig {
  /// Steps between sentinel reductions. 0 disables the sentinel entirely
  /// (no scan, no collective — the legacy behaviour).
  int checkEvery = 0;
  /// Densities outside [minDensity, maxDensity] flag divergence. LB runs
  /// sit near rho = 1; these bounds only trip on genuine blow-up.
  double minDensity = 1e-3;
  double maxDensity = 1e3;
  /// Speed bound (lattice units). Above ~0.577 (= cs * sqrt(3)... in
  /// practice anything near 0.5) the D3Q19 expansion is meaningless.
  double maxSpeed = 0.5;
  /// Rollback attempts before the driver degrades to a diagnostic dump.
  int maxRollbacks = 3;
  /// Where the dump goes; empty = "<checkpointDir>/sentinel_dump.txt".
  std::string dumpPath;
};

/// One rank's extrema over its owned sites. Trivially copyable — the
/// consensus is a single allgather of these.
struct SentinelLocal {
  std::uint8_t finite = 1;
  double minRho = 0.0;
  double maxRho = 0.0;
  double maxSpeed = 0.0;
};

/// Global verdict, identical on every rank.
struct SentinelVerdict {
  bool ok = true;
  bool finite = true;
  double minRho = 0.0;
  double maxRho = 0.0;
  double maxSpeed = 0.0;
  std::uint64_t step = 0;
};

class StabilitySentinel {
 public:
  explicit StabilitySentinel(SentinelConfig config = {}) : config_(config) {}

  bool enabled() const { return config_.checkEvery > 0; }
  bool due(std::uint64_t step) const {
    return enabled() &&
           step % static_cast<std::uint64_t>(config_.checkEvery) == 0;
  }

  const SentinelConfig& config() const { return config_; }

  /// Collective: scan the owned sites, allgather per-rank extrema, reduce.
  /// Deterministic — every rank computes the identical verdict.
  SentinelVerdict check(comm::Communicator& comm, const lb::MacroFields& macro,
                        std::uint64_t step);

  /// Per-rank extrema of the most recent check (for the diagnostic dump).
  const std::vector<SentinelLocal>& lastPerRank() const { return lastPerRank_; }

  /// Stability margin of the most recent check: 1 = quiescent, 0 = at (or
  /// past) the speed bound. Feeds the sentinel.headroom gauge.
  double headroom(const SentinelVerdict& v) const;

 private:
  SentinelConfig config_;
  std::vector<SentinelLocal> lastPerRank_;
};

}  // namespace hemo::core
