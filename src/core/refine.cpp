#include "core/refine.hpp"

namespace hemo::core {

GlobalMacro gatherGlobalMacro(comm::Communicator& comm,
                              const lb::DomainMap& domain,
                              const lb::MacroFields& macro) {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kIo);
  // Pack (globalId, rho, ux, uy, uz) rows, allgather, scatter into the
  // globally-indexed arrays.
  std::vector<double> rows;
  rows.reserve(domain.numOwned() * 5);
  for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
    rows.push_back(static_cast<double>(domain.globalOf(l)));
    rows.push_back(macro.rho[static_cast<std::size_t>(l)]);
    rows.push_back(macro.u[static_cast<std::size_t>(l)].x);
    rows.push_back(macro.u[static_cast<std::size_t>(l)].y);
    rows.push_back(macro.u[static_cast<std::size_t>(l)].z);
  }
  const auto all = comm.allgatherVec(rows);
  GlobalMacro out;
  out.rho.assign(domain.lattice().numFluidSites(), 1.0);
  out.u.assign(domain.lattice().numFluidSites(), Vec3d{});
  for (const auto& blob : all) {
    for (std::size_t i = 0; i < blob.size(); i += 5) {
      const auto g = static_cast<std::size_t>(blob[i]);
      out.rho[g] = blob[i + 1];
      out.u[g] = {blob[i + 2], blob[i + 3], blob[i + 4]};
    }
  }
  return out;
}

}  // namespace hemo::core
