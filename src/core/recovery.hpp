#pragma once
/// \file recovery.hpp
/// \brief Shrink-and-continue rank-failure recovery (ULFM-style).
///
/// The driver stack below this file assumes a fixed healthy communicator;
/// this layer owns everything that changes when a rank dies:
///
///   DETECT   comm-layer liveness (comm/liveness.hpp) surfaces a typed
///            PeerDeadError out of any blocked receive or collective
///            instead of hanging — by exit evidence (the rank's thread is
///            gone), by staleness accusation (silent past the timeout,
///            which also catches kHang'd ranks), or by the recovery epoch
///            (someone else already declared a death).
///   AGREE    agreeOnDeadSet(): survivors exchange epoch-stamped acks
///            until every one of them has acknowledged the identical
///            monotone dead set. A rank that learns it was itself declared
///            dead commits suicide (throws RankKilledError) so the group
///            view stays consistent.
///   SHRINK   Communicator::shrink(): survivors re-rank stably onto a
///            fresh context; stale in-flight traffic is purged by epoch.
///   RESTORE  a fresh partition of the *survivors* is built through the
///            pluggable partitioner, the driver (solver/ghosts/octree)
///            rebuilt on it, and state restored — newest complete buddy
///            snapshot (lb/buddy.hpp) first, disk checkpoint fallback,
///            optional cold restart from step 0 when neither exists.
///   RESUME   the driver runs the remaining steps. Rank 0 re-attaches the
///            serving broker so client subscriptions survive the event;
///            if rank 0 itself died the run degrades to solver-only.
///
/// The whole timeline lands in the flight recorder and recover.* metrics.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "comm/liveness.hpp"
#include "comm/runtime.hpp"
#include "core/driver.hpp"
#include "geometry/sparse_lattice.hpp"
#include "lb/buddy.hpp"
#include "partition/graph.hpp"
#include "serve/broker.hpp"

namespace hemo::core {

/// Knobs for ResilientRunner (driver-level recovery policy).
struct RecoveryConfig {
  /// Liveness detection; enabled by default here (the whole point).
  /// timeoutMs trades detection latency against false-accusation margin.
  comm::LivenessConfig liveness{true, 1500, 5};
  /// Mirror diskless buddy checkpoints at the checkpoint cadence and
  /// prefer them for restore (fastest MTTR; falls back to disk).
  bool buddy = false;
  /// Give up after this many recovery events in one run.
  int maxRecoveries = 4;
  /// Teardown bound handed to comm::RunOptions.
  double joinTimeoutSeconds = 30.0;
  /// When no buddy snapshot or disk checkpoint is restorable, restart the
  /// survivors from step 0 (deterministic solver: the final fields still
  /// match the uninterrupted reference). Off = the run fails instead.
  bool allowColdRestart = true;
};

/// One recovery event's timeline (MTTR decomposition for bench_resilience).
struct RecoveryEvent {
  /// World ranks newly declared dead in this event.
  std::vector<int> deadWorldRanks;
  /// Group size after the shrink.
  int survivors = 0;
  /// Step the survivors resumed from (0 for a cold restart).
  std::uint64_t restoredStep = 0;
  bool usedBuddy = false;
  bool coldRestart = false;
  double agreeSeconds = 0.0;
  double restoreSeconds = 0.0;
  /// Detection (PeerDeadError) to resume-ready, wall seconds.
  double totalSeconds = 0.0;
};

/// Runs a simulation to completion across rank deaths. Owns the buddy
/// store and the recovery loop; everything else (lattice, partitioner,
/// driver config) is caller-provided, mirroring the plain driver setup.
class ResilientRunner {
 public:
  /// Called on every surviving rank after the final step (collect results
  /// exactly like a plain rt.run body would).
  using CompletionHook = std::function<void(
      const lb::DomainMap&, SimulationDriver&, comm::Communicator&)>;

  ResilientRunner(const geometry::SparseLattice& lattice,
                  const partition::Partitioner& partitioner,
                  DriverConfig config, RecoveryConfig recovery)
      : lattice_(lattice),
        partitioner_(partitioner),
        config_(std::move(config)),
        recovery_(recovery) {}

  struct Result {
    bool completed = false;
    /// Group size at completion (== ranks when nothing died).
    int survivors = 0;
    std::uint64_t finalStep = 0;
    std::vector<RecoveryEvent> events;
    /// Failure description when !completed.
    std::string error;
  };

  /// Run `steps` steps on `ranks` ranks, surviving rank deaths. `broker`
  /// non-null: rank 0 serves through it for as long as rank 0 lives.
  Result run(int ranks, int steps, const CompletionHook& onComplete = {},
             serve::SessionBroker* broker = nullptr);

  lb::BuddyStore& buddyStore() { return buddy_; }

 private:
  const geometry::SparseLattice& lattice_;
  const partition::Partitioner& partitioner_;
  DriverConfig config_;
  RecoveryConfig recovery_;
  lb::BuddyStore buddy_;
};

/// The AGREE round, exposed for direct testing: converge every survivor of
/// `comm`'s group on the identical sorted dead set (world ranks). Restarts
/// whenever the monotone DeathBoard grows mid-round; accuses peers that
/// fail to ack within the agreement deadline; throws util::RankKilledError
/// if this rank itself has been declared dead (suicide keeps the group
/// view consistent).
std::vector<int> agreeOnDeadSet(comm::Communicator& comm,
                                comm::DeathBoard& board,
                                const comm::LivenessConfig& cfg);

}  // namespace hemo::core
