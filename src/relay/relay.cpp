#include "relay/relay.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace hemo::relay {

RelayNode::RelayNode(comm::ChannelEnd upstream, RelayConfig config)
    : config_(config), client_(std::move(upstream)) {
  client_.setKeepRawFrames(true);
}

void RelayNode::enableUpstreamReconnect(
    std::function<comm::ChannelEnd()> connector,
    serve::ReconnectConfig config) {
  client_.enableReconnect(std::move(connector), config);
}

void RelayNode::start(const serve::CodecConfig& codec) {
  HEMO_CHECK_MSG(!started_, "relay already started");
  started_ = true;
  startTime_ = std::chrono::steady_clock::now();
  client_.announceRelay();
  client_.setCodec(codec);
  if (config_.creditWindow > 0) {
    client_.sendCredit(config_.creditWindow);
    stats_.creditsGranted += config_.creditWindow;
  }
}

int RelayNode::addDownstream(comm::ChannelEnd end) {
  HEMO_CHECK_MSG(end.valid(), "relay downstream end must be connected");
  end.setSendCapacity(config_.outboxCapacity);
  downstream_.push_back(Downstream{std::move(end)});
  return static_cast<int>(downstream_.size()) - 1;
}

comm::ChannelEnd RelayNode::connect() {
  auto [clientEnd, relayEnd] = comm::makeChannelPair();
  addDownstream(std::move(relayEnd));
  return clientEnd;
}

comm::ChannelEnd RelayNode::requestConnect() {
  auto [clientEnd, relayEnd] = comm::makeChannelPair();
  {
    std::lock_guard<std::mutex> lock(pendingMutex_);
    pendingConnects_.push_back(std::move(relayEnd));
  }
  return clientEnd;
}

void RelayNode::admitPending() {
  std::vector<comm::ChannelEnd> pending;
  {
    std::lock_guard<std::mutex> lock(pendingMutex_);
    pending.swap(pendingConnects_);
  }
  for (auto& end : pending) addDownstream(std::move(end));
}

int RelayNode::numAliveDownstream() const {
  int alive = 0;
  for (const auto& d : downstream_) {
    if (d.alive) ++alive;
  }
  return alive;
}

int RelayNode::upstreamSubscriptionCount() const {
  int active = 0;
  for (const auto& sub : upstream_) {
    if (sub.active) ++active;
  }
  return active;
}

std::uint64_t RelayNode::cacheBytes() const {
  std::uint64_t bytes = 0;
  for (const auto& level : imageBurst_) bytes += level.size();
  for (const auto* frame :
       {&lastStatus_, &lastTelemetry_, &lastObservable_, &lastRoi_}) {
    if (frame->has_value()) bytes += (*frame)->size();
  }
  return bytes;
}

void RelayNode::ensureUpstream(serve::StreamKind kind, std::int32_t cadence) {
  cadence = std::max<std::int32_t>(1, cadence);
  auto& sub = upstream_[static_cast<int>(kind)];
  // Subscribe-once: the upstream sees one subscription per stream kind,
  // re-issued only when a downstream needs a *faster* cadence than the
  // one already held.
  if (sub.active && sub.cadence <= cadence) return;
  sub.cadence = sub.active ? std::min(sub.cadence, cadence) : cadence;
  sub.active = true;
  client_.subscribe(kind, sub.cadence);
  ++stats_.upstreamSubscribes;
}

void RelayNode::handleCommand(Downstream& d, const steer::Command& cmd) {
  switch (cmd.type) {
    case steer::MsgType::kSubscribe: {
      if (static_cast<int>(cmd.stream) >= serve::kNumStreams) return;
      d.subs[cmd.stream] = true;
      d.cadence[cmd.stream] = std::max<std::int32_t>(1, cmd.cadence);
      d.end.send(steer::encodeAck(cmd.commandId));
      ensureUpstream(static_cast<serve::StreamKind>(cmd.stream),
                     d.cadence[cmd.stream]);
      // Replay the cache so a late joiner has a usable frame immediately
      // instead of waiting out the upstream cadence.
      sendCached(d, static_cast<serve::StreamKind>(cmd.stream));
      break;
    }
    case steer::MsgType::kUnsubscribe: {
      if (static_cast<int>(cmd.stream) >= serve::kNumStreams) return;
      d.subs[cmd.stream] = false;
      d.end.send(steer::encodeAck(cmd.commandId));
      break;
    }
    case steer::MsgType::kSetCodec: {
      // The relay forwards upstream-encoded frames verbatim; the wire
      // format is whatever the relay negotiated upstream. Acked so the
      // client's handshake completes.
      d.end.send(steer::encodeAck(cmd.commandId));
      break;
    }
    case steer::MsgType::kRelayHello: {
      d.relay = true;  // a child relay: this node is an interior node
      d.end.send(steer::encodeAck(cmd.commandId));
      break;
    }
    default: {
      // Steering commands pass through toward the simulation master;
      // their acks terminate at this relay (fire-and-forget on the
      // pass-through path — steering feedback wants a direct session).
      client_.send(cmd);
      break;
    }
  }
}

void RelayNode::drainDownstream() {
  for (auto& d : downstream_) {
    while (d.alive) {
      auto frame = d.end.tryRecv();
      if (!frame) {
        if (d.end.eof()) d.alive = false;  // downstream hung up
        break;
      }
      ++stats_.downstreamCommands;
      try {
        const auto type = steer::frameType(*frame);
        if (type == steer::MsgType::kHeartbeatAck) continue;
        if (type == steer::MsgType::kCredit) {
          const auto credit = steer::decodeCredit(*frame);
          if (!d.creditMetered) {
            d.creditMetered = true;
            d.end.setSendCredits(credit.credits);
          } else {
            d.end.addSendCredits(credit.credits);
          }
          continue;
        }
        handleCommand(d, steer::decodeCommand(*frame));
      } catch (const CheckError&) {
        // An undecodable frame condemns the downstream session, mirroring
        // the broker: close and release its outbox.
        d.end.close();
        d.end = comm::ChannelEnd{};
        d.alive = false;
        HEMO_LOG_WARN() << "relay dropped downstream: undecodable frame";
      }
    }
  }
}

void RelayNode::noteFirstFrame() {
  if (stats_.ttffSeconds >= 0.0) return;
  stats_.ttffSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    startTime_)
          .count();
}

bool RelayNode::trySendFine(Downstream& d, const std::vector<std::byte>& frame) {
  if (!d.alive) return false;
  if (d.creditMetered) return d.end.trySendCredited(frame);
  if (config_.outboxCapacity > 0 &&
      d.end.sendQueueDepth() + 1 >= config_.outboxCapacity) {
    return false;
  }
  return d.end.send(frame);
}

void RelayNode::forward(serve::StreamKind kind,
                        const std::vector<std::byte>& frame, bool refinement) {
  const int k = static_cast<int>(kind);
  for (auto& d : downstream_) {
    if (!d.alive || !d.subs[k]) continue;
    if (refinement) {
      if (trySendFine(d, frame)) {
        ++stats_.framesForwarded;
      } else {
        ++d.levelsShed;
        ++stats_.levelsShed;
      }
    } else {
      // Root / full frames are never shed: worst case the bounded outbox
      // applies latest-wins to a stale one.
      if (d.end.send(frame)) ++stats_.framesForwarded;
    }
  }
}

void RelayNode::sendCached(Downstream& d, serve::StreamKind kind) {
  const auto replay = [&](const std::vector<std::byte>& frame) {
    if (d.end.send(frame)) {
      ++stats_.framesForwarded;
      ++stats_.cacheReplays;
    }
  };
  switch (kind) {
    case serve::StreamKind::kImage:
      for (const auto& level : imageBurst_) replay(level);
      break;
    case serve::StreamKind::kStatus:
      if (lastStatus_) replay(*lastStatus_);
      break;
    case serve::StreamKind::kTelemetry:
      if (lastTelemetry_) replay(*lastTelemetry_);
      break;
    case serve::StreamKind::kObservable:
      if (lastObservable_) replay(*lastObservable_);
      break;
    case serve::StreamKind::kRoi:
      if (lastRoi_) replay(*lastRoi_);
      break;
    default:
      break;
  }
}

void RelayNode::handleUpstream(serve::ServeClient::Event& event) {
  ++stats_.framesFromUpstream;
  switch (event.type) {
    case steer::MsgType::kProgressiveImage: {
      if (event.progressiveLevel == 0) {
        // New step: the cache holds exactly one burst — relay memory is
        // bounded by frame size times level count, not by history or by
        // downstream population.
        imageBurst_.clear();
        imageBurst_.push_back(event.raw);
        forward(serve::StreamKind::kImage, event.raw, /*refinement=*/false);
        noteFirstFrame();
      } else if (event.progressiveReady) {
        // Chain-intact refinement: cache + forward under the shed policy.
        imageBurst_.push_back(event.raw);
        forward(serve::StreamKind::kImage, event.raw, /*refinement=*/true);
        ++consumedSinceGrant_;
      }
      // Replenish upstream credits once half the window is consumed,
      // acking the newest level applied.
      if (config_.creditWindow > 0 &&
          consumedSinceGrant_ >= std::max<std::uint32_t>(
                                     1, config_.creditWindow / 2)) {
        client_.sendCredit(consumedSinceGrant_, client_.progressive().step(),
                           client_.progressive().levelsApplied() - 1);
        stats_.creditsGranted += consumedSinceGrant_;
        consumedSinceGrant_ = 0;
      }
      break;
    }
    case steer::MsgType::kImageFrame:
    case steer::MsgType::kCodedImage: {
      imageBurst_.clear();
      imageBurst_.push_back(event.raw);
      forward(serve::StreamKind::kImage, event.raw, /*refinement=*/false);
      noteFirstFrame();
      break;
    }
    case steer::MsgType::kStatus:
      lastStatus_ = event.raw;
      forward(serve::StreamKind::kStatus, event.raw, false);
      break;
    case steer::MsgType::kTelemetry:
      lastTelemetry_ = event.raw;
      forward(serve::StreamKind::kTelemetry, event.raw, false);
      break;
    case steer::MsgType::kObservable:
      lastObservable_ = event.raw;
      forward(serve::StreamKind::kObservable, event.raw, false);
      break;
    case steer::MsgType::kRoiData:
    case steer::MsgType::kCodedRoi:
      lastRoi_ = event.raw;
      forward(serve::StreamKind::kRoi, event.raw, false);
      break;
    default:
      break;  // acks / rejects of the relay's own upstream commands
  }
}

int RelayNode::pump() {
  admitPending();
  drainDownstream();
  int processed = 0;
  while (auto event = client_.pollEvent()) {
    handleUpstream(*event);
    ++processed;
  }
  publishMetrics();
  return processed;
}

void RelayNode::shutdown(bool drain) {
  if (drain) pump();  // forward the queued tail
  for (auto& d : downstream_) {
    if (d.alive) d.end.close();
  }
  client_.close();  // hang up upstream; the broker evicts us eventually
}

void RelayNode::publishMetrics() {
  auto* t = telemetry::threadTelemetry();
  if (t == nullptr) return;
  auto& m = t->metrics();
  auto setTotal = [&m](const char* name, std::uint64_t value) {
    auto& c = m.counter(name);
    const std::uint64_t now = c.value();
    if (value > now) c.add(value - now);
  };
  setTotal("relay.frames_forwarded", stats_.framesForwarded);
  setTotal("relay.levels_shed", stats_.levelsShed);
  setTotal("relay.cache_replays", stats_.cacheReplays);
  setTotal("relay.upstream_subscribes", stats_.upstreamSubscribes);
  setTotal("relay.upstream_reconnects", client_.reconnects());
  m.gauge("relay.depth").set(static_cast<double>(config_.depth));
  m.gauge("relay.fanout").set(static_cast<double>(numAliveDownstream()));
  m.gauge("relay.cache_bytes").set(static_cast<double>(cacheBytes()));
  if (stats_.ttffSeconds >= 0.0) {
    m.gauge("relay.ttff_seconds").set(stats_.ttffSeconds);
  }
}

}  // namespace hemo::relay
