#pragma once
/// \file relay.hpp
/// \brief Edge-relay serving tier: fan-out nodes between the rank-0
/// broker and display clients.
///
/// The broker's egress is the in situ post-processing scaling wall the
/// paper co-designs around: N clients cost the solver rank N outboxes and
/// N encodes' worth of bandwidth. A RelayNode breaks that coupling. It
/// subscribes **once** upstream — to the broker or to another relay,
/// forming a tree — and re-serves K downstream sessions from a shared
/// per-relay frame cache, so the broker's fan-out is the number of direct
/// relays, independent of the client population.
///
/// Frames are forwarded *verbatim* (the upstream ServeClient runs in
/// keep-raw mode): no re-encode on the relay path. Progressive image
/// bursts (kProgressiveImage, coarse root first) get per-downstream
/// quality adaptation: the root is never shed, refinements go through the
/// same credit/backpressure shed policy the broker uses. The cached
/// current burst is replayed to late joiners, so a client's time to first
/// usable frame is one root frame, not one full-resolution push.
///
/// Lifecycle: construct with the upstream channel, start() announces the
/// relay role (kRelayHello) + codec + initial upstream credits; pump()
/// drains downstream commands and upstream frames (call it from the relay
/// thread's loop); upstream loss is healed transparently by the
/// ServeClient reconnect machinery (the session — hello, codec,
/// subscriptions — replays on redial); shutdown() drains queued upstream
/// frames once more, then closes every downstream outbox (drain-and-exit:
/// downstream clients see the tail of the stream, then EOF, then redial
/// through their own connectors).
///
/// Threading: pump()/shutdown() belong to one relay thread. Downstream
/// client threads may only call requestConnect() (mutex-guarded admission,
/// mirroring SessionBroker) and use their own ChannelEnd.

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "comm/channel.hpp"
#include "serve/client.hpp"
#include "serve/codec.hpp"
#include "serve/progressive.hpp"

namespace hemo::relay {

struct RelayConfig {
  /// Frames a downstream outbox holds before shed/eviction kicks in.
  std::size_t outboxCapacity = 16;
  /// Credits granted upstream (0 = rely on outbox backpressure only).
  /// Replenished when half the window has been consumed.
  std::uint32_t creditWindow = 32;
  /// Tree depth of this node (1 = child of the broker); relay.depth gauge.
  int depth = 1;
};

struct RelayStats {
  std::uint64_t framesFromUpstream = 0;
  std::uint64_t framesForwarded = 0;  ///< pushed into downstream outboxes
  std::uint64_t levelsShed = 0;       ///< refinements withheld downstream
  std::uint64_t upstreamSubscribes = 0;  ///< subscribe commands sent up
  std::uint64_t cacheReplays = 0;     ///< cached frames served to joiners
  std::uint64_t downstreamCommands = 0;
  std::uint64_t creditsGranted = 0;   ///< credits sent upstream
  /// Seconds from start() to the first usable (root or full) frame
  /// forwarded downstream; < 0 until it happens.
  double ttffSeconds = -1.0;
};

class RelayNode {
 public:
  /// `upstream` is a connected channel to the broker or a parent relay.
  explicit RelayNode(comm::ChannelEnd upstream, RelayConfig config = {});

  /// Arm upstream re-subscription on loss (typically
  /// [&broker] { return broker.requestConnect(true); } or the parent
  /// relay's requestConnect).
  void enableUpstreamReconnect(std::function<comm::ChannelEnd()> connector,
                               serve::ReconnectConfig config = {});

  /// Announce the relay session upstream: kRelayHello, codec negotiation,
  /// the initial credit grant. Call once before pumping.
  void start(const serve::CodecConfig& codec);

  // --- downstream admission ---------------------------------------------

  /// Register a connected downstream session (relay thread only).
  int addDownstream(comm::ChannelEnd end);

  /// Relay-thread convenience: pair + register, returns the client side.
  comm::ChannelEnd connect();

  /// Thread-safe admission from client threads; adopted at the next
  /// pump(). The downstream client's reconnect connector points here.
  comm::ChannelEnd requestConnect();

  // --- relay loop --------------------------------------------------------

  /// Drain downstream commands, forward upstream frames, replenish
  /// upstream credits. Returns the number of upstream frames processed.
  int pump();

  /// Drain once more, then close every downstream outbox (clients consume
  /// the queued tail, then see EOF). `drain = false` models a crash: close
  /// everything immediately without forwarding the queued tail, so
  /// downstream clients exercise their reconnect paths.
  void shutdown(bool drain = true);

  // --- observability -----------------------------------------------------

  const RelayStats& stats() const { return stats_; }
  int numDownstream() const { return static_cast<int>(downstream_.size()); }
  int numAliveDownstream() const;
  /// Subscriptions currently held upstream — the subscribe-once invariant:
  /// bounded by the number of stream kinds, never by downstream count.
  int upstreamSubscriptionCount() const;
  /// Bytes pinned by the shared frame cache (the relay's memory bound:
  /// grows with frame size and level count, not with client count).
  std::uint64_t cacheBytes() const;
  std::uint64_t upstreamReconnects() const { return client_.reconnects(); }

  /// Flush relay.* gauges to thread telemetry (no-op off rank threads).
  void publishMetrics();

 private:
  struct Downstream {
    comm::ChannelEnd end;
    bool alive = true;
    bool relay = false;          ///< a child relay (kRelayHello)
    bool creditMetered = false;  ///< granted credits at least once
    bool subs[serve::kNumStreams] = {};
    std::int32_t cadence[serve::kNumStreams] = {};
    std::uint64_t levelsShed = 0;
  };

  /// Upstream subscription state per stream kind (subscribe-once dedup).
  struct UpstreamSub {
    bool active = false;
    std::int32_t cadence = 0;
  };

  void admitPending();
  void drainDownstream();
  void handleCommand(Downstream& d, const steer::Command& cmd);
  /// Subscribe upstream for `kind` iff no subscription covers it yet (or
  /// a faster cadence is now required).
  void ensureUpstream(serve::StreamKind kind, std::int32_t cadence);
  void handleUpstream(serve::ServeClient::Event& event);
  /// Forward to every alive downstream subscribed to `kind`; root/full
  /// frames unconditionally, refinements via the shed policy.
  void forward(serve::StreamKind kind, const std::vector<std::byte>& frame,
               bool refinement);
  bool trySendFine(Downstream& d, const std::vector<std::byte>& frame);
  void sendCached(Downstream& d, serve::StreamKind kind);
  void noteFirstFrame();

  RelayConfig config_;
  serve::ServeClient client_;  ///< the single upstream session
  UpstreamSub upstream_[serve::kNumStreams];
  std::vector<Downstream> downstream_;

  std::mutex pendingMutex_;
  std::vector<comm::ChannelEnd> pendingConnects_;

  /// Shared frame cache, replayed to late joiners: the current step's
  /// progressive burst (coarse-to-fine, only chain-intact levels) plus
  /// the latest frame of each non-image stream.
  std::vector<std::vector<std::byte>> imageBurst_;
  std::optional<std::vector<std::byte>> lastStatus_;
  std::optional<std::vector<std::byte>> lastTelemetry_;
  std::optional<std::vector<std::byte>> lastObservable_;
  std::optional<std::vector<std::byte>> lastRoi_;

  std::uint32_t consumedSinceGrant_ = 0;
  std::chrono::steady_clock::time_point startTime_{};
  bool started_ = false;
  RelayStats stats_;
};

}  // namespace hemo::relay
