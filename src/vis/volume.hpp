#pragma once
/// \file volume.hpp
/// \brief Distributed ray-cast volume rendering (Fig 4a; Table I's
/// *low*-communication, *easy*-parallelisation technique).
///
/// Sort-last rendering: each rank ray-casts only its own sites — "volume
/// rendering can be performed on each subdomain without any data exchange
/// with the neighbours" (§IV.D) — producing one RGBA fragment with an entry
/// depth per pixel. Fragments are then composited by depth: either
/// direct-send (non-empty fragments to the master, which sorts per pixel)
/// or binary-swap (log₂P exchange rounds over halved image ranges).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "lb/domain_map.hpp"
#include "vis/camera.hpp"
#include "vis/image.hpp"
#include "vis/transfer.hpp"

namespace hemo::vis {

/// Which scalar field drives the transfer function.
enum class RenderField : std::uint8_t {
  kVelocityMagnitude = 0,
  kDensity = 1,
};

struct VolumeRenderOptions {
  Camera camera;
  TransferFunction transfer = TransferFunction::bloodFlow(0.f, 0.05f);
  RenderField field = RenderField::kVelocityMagnitude;
  int width = 256;
  int height = 256;
  /// Ray sampling distance in voxels.
  double stepVoxels = 0.5;
  /// Stop a ray when accumulated opacity exceeds this.
  float opacityCutoff = 0.98f;
  /// Optional world-space clip region: only sites inside it are rendered
  /// (the steered region-of-interest view).
  std::optional<BoxD> clipBox;
};

enum class CompositeMode { kDirectSend, kBinarySwap };

/// Dense brick of this rank's sites: scalar value + fluid mask over the
/// bounding box of the owned region. Rebuilt per frame from macro fields.
class LocalBrick {
 public:
  LocalBrick(const lb::DomainMap& domain, const lb::MacroFields& macro,
             RenderField field);

  /// Nearest-site scalar at a world position; false if outside the owned
  /// fluid.
  bool sampleScalar(const Vec3d& world, float& value) const;

  /// World bounds of the brick (empty if the rank owns nothing).
  const BoxD& worldBounds() const { return worldBounds_; }
  bool empty() const { return ext_.x == 0; }

 private:
  const lb::DomainMap* domain_;
  Vec3i lo_{0, 0, 0};
  Vec3i ext_{0, 0, 0};
  std::vector<float> scalar_;
  std::vector<std::uint8_t> mask_;
  BoxD worldBounds_ = BoxD::empty();
};

/// Render this rank's fragment image (RGBA + entry depth per pixel).
Image renderLocal(const lb::DomainMap& domain, const lb::MacroFields& macro,
                  const VolumeRenderOptions& options);

/// Collective: composite the ranks' fragments into the final image on
/// rank 0 (returned empty elsewhere). Traffic classified as kVis.
Image compositeDirectSend(comm::Communicator& comm, const Image& fragment);

/// Collective binary-swap compositing; requires a power-of-two rank count.
Image compositeBinarySwap(comm::Communicator& comm, const Image& fragment);

/// Convenience: renderLocal + composite.
Image renderVolume(comm::Communicator& comm, const lb::DomainMap& domain,
                   const lb::MacroFields& macro,
                   const VolumeRenderOptions& options,
                   CompositeMode mode = CompositeMode::kDirectSend);

}  // namespace hemo::vis
