#include "vis/particles.hpp"

#include "telemetry/telemetry.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hemo::vis {

void TracerSwarm::inject(comm::Communicator& comm,
                         const std::vector<Vec3d>& seeds,
                         std::uint32_t firstSeedId) {
  const auto& domain = field_->domain();
  VelocitySampler sampler(*field_);
  (void)comm;
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    const auto site = sampler.containingSite(seeds[s]);
    if (site < 0) continue;
    if (domain.ownerOf(static_cast<std::uint64_t>(site)) != domain.rank()) {
      continue;
    }
    Tracer t;
    // Deterministic id: (seed index, injection serial) — unique because a
    // seed is adopted by exactly one rank.
    t.seedId = firstSeedId + static_cast<std::uint32_t>(s);
    t.id = (static_cast<std::uint64_t>(t.seedId) << 32) | nextLocalSerial_;
    ++nextLocalSerial_;
    t.pos = seeds[s];
    tracers_.push_back(t);
  }
}

void TracerSwarm::advect(comm::Communicator& comm, double dtSteps) {
  HEMO_TSPAN(kVis, "vis.particles");
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kVis);
  const auto& domain = field_->domain();
  const double h = domain.lattice().voxelSize();
  VelocitySampler sampler(*field_);
  // Velocities are lattice units (voxels per step): world displacement per
  // simulation step is u * h.
  const double scale = h * dtSteps;

  std::vector<Tracer> kept;
  std::vector<std::vector<double>> emigrants(
      static_cast<std::size_t>(comm.size()));
  for (auto& t : tracers_) {
    const auto u1 = sampler.sample(t.pos);
    if (!u1) {
      ++stats_.killedAtWall;
      continue;
    }
    // RK2 midpoint; the midpoint stays well inside the 2-ring ghosts for
    // low-Mach flows (|u| << 1 voxel/step).
    const auto uMid = sampler.sample(t.pos + *u1 * (0.5 * scale));
    const Vec3d move = (uMid ? *uMid : *u1) * scale;
    const Vec3d next = t.pos + move;
    const auto nextSite = sampler.containingSite(next);
    ++stats_.advected;
    if (nextSite < 0) {
      ++stats_.killedAtWall;
      continue;
    }
    t.pos = next;
    t.age += 1;
    const int owner = domain.ownerOf(static_cast<std::uint64_t>(nextSite));
    if (owner == domain.rank()) {
      kept.push_back(t);
    } else {
      auto& out = emigrants[static_cast<std::size_t>(owner)];
      out.push_back(static_cast<double>(t.id >> 32));
      out.push_back(static_cast<double>(t.id & 0xffffffffULL));
      out.push_back(static_cast<double>(t.seedId));
      out.push_back(static_cast<double>(t.age));
      out.push_back(t.pos.x);
      out.push_back(t.pos.y);
      out.push_back(t.pos.z);
      ++stats_.migrations;
    }
  }
  tracers_ = std::move(kept);
  const auto arrived = comm.alltoallVec(emigrants);
  for (const auto& in : arrived) {
    for (std::size_t i = 0; i < in.size(); i += 7) {
      Tracer t;
      t.id = (static_cast<std::uint64_t>(in[i]) << 32) |
             static_cast<std::uint64_t>(in[i + 1]);
      t.seedId = static_cast<std::uint32_t>(in[i + 2]);
      t.age = static_cast<std::uint32_t>(in[i + 3]);
      t.pos = {in[i + 4], in[i + 5], in[i + 6]};
      tracers_.push_back(t);
    }
  }
}

std::uint64_t TracerSwarm::globalCount(comm::Communicator& comm) const {
  return comm.allreduceSum(static_cast<std::uint64_t>(tracers_.size()));
}

std::vector<Tracer> TracerSwarm::gather(comm::Communicator& comm) const {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kVis);
  std::vector<double> flat;
  flat.reserve(tracers_.size() * 7);
  for (const auto& t : tracers_) {
    flat.push_back(static_cast<double>(t.id >> 32));
    flat.push_back(static_cast<double>(t.id & 0xffffffffULL));
    flat.push_back(static_cast<double>(t.seedId));
    flat.push_back(static_cast<double>(t.age));
    flat.push_back(t.pos.x);
    flat.push_back(t.pos.y);
    flat.push_back(t.pos.z);
  }
  const auto all = comm.gatherVec(flat, 0);
  std::vector<Tracer> result;
  if (comm.rank() != 0) return result;
  for (const auto& blob : all) {
    for (std::size_t i = 0; i < blob.size(); i += 7) {
      Tracer t;
      t.id = (static_cast<std::uint64_t>(blob[i]) << 32) |
             static_cast<std::uint64_t>(blob[i + 1]);
      t.seedId = static_cast<std::uint32_t>(blob[i + 2]);
      t.age = static_cast<std::uint32_t>(blob[i + 3]);
      t.pos = {blob[i + 4], blob[i + 5], blob[i + 6]};
      result.push_back(t);
    }
  }
  return result;
}

std::vector<Polyline> assembleStreaklines(const std::vector<Tracer>& tracers) {
  auto sorted = tracers;
  std::sort(sorted.begin(), sorted.end(), [](const Tracer& a, const Tracer& b) {
    // Same seed grouped; oldest (earliest injected, furthest downstream)
    // first so the polyline runs from the streak head back to the nozzle.
    return a.seedId != b.seedId ? a.seedId < b.seedId : a.age > b.age;
  });
  std::vector<Polyline> streaks;
  for (const auto& t : sorted) {
    if (streaks.empty() || streaks.back().seedId != t.seedId) {
      streaks.push_back({t.seedId, {}});
    }
    streaks.back().vertices.push_back(t.pos.cast<float>());
  }
  return streaks;
}

void PathlineRecorder::record(const TracerSwarm& swarm) {
  for (const auto& t : swarm.localTracers()) {
    rows_.push_back({t.id, t.seedId, t.age, static_cast<float>(t.pos.x),
                     static_cast<float>(t.pos.y),
                     static_cast<float>(t.pos.z)});
  }
}

std::vector<PathlineRecorder::Pathline> PathlineRecorder::gather(
    comm::Communicator& comm) const {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kVis);
  std::vector<double> flat;
  flat.reserve(rows_.size() * 7);
  for (const auto& r : rows_) {
    flat.push_back(static_cast<double>(r.id >> 32));
    flat.push_back(static_cast<double>(r.id & 0xffffffffULL));
    flat.push_back(static_cast<double>(r.seedId));
    flat.push_back(static_cast<double>(r.age));
    flat.push_back(r.x);
    flat.push_back(r.y);
    flat.push_back(r.z);
  }
  const auto all = comm.gatherVec(flat, 0);
  std::vector<Pathline> lines;
  if (comm.rank() != 0) return lines;

  std::vector<Row> merged;
  for (const auto& blob : all) {
    for (std::size_t i = 0; i < blob.size(); i += 7) {
      merged.push_back({(static_cast<std::uint64_t>(blob[i]) << 32) |
                            static_cast<std::uint64_t>(blob[i + 1]),
                        static_cast<std::uint32_t>(blob[i + 2]),
                        static_cast<std::uint32_t>(blob[i + 3]),
                        static_cast<float>(blob[i + 4]),
                        static_cast<float>(blob[i + 5]),
                        static_cast<float>(blob[i + 6])});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Row& a, const Row& b) {
    return a.id != b.id ? a.id < b.id : a.age < b.age;
  });
  for (const auto& r : merged) {
    if (lines.empty() || lines.back().tracerId != r.id) {
      lines.push_back({r.id, r.seedId, {}});
    }
    lines.back().vertices.push_back({r.x, r.y, r.z});
  }
  return lines;
}

}  // namespace hemo::vis
