#include "vis/line_render.hpp"

#include <algorithm>
#include <cmath>

namespace hemo::vis {

Rgba seedColor(std::uint32_t seedId) {
  static constexpr float kPalette[8][3] = {
      {0.90f, 0.35f, 0.20f}, {0.25f, 0.60f, 0.90f}, {0.95f, 0.80f, 0.25f},
      {0.40f, 0.85f, 0.45f}, {0.80f, 0.40f, 0.85f}, {0.30f, 0.85f, 0.80f},
      {0.95f, 0.55f, 0.65f}, {0.70f, 0.70f, 0.70f}};
  const auto& c = kPalette[seedId % 8];
  return Rgba{c[0], c[1], c[2], 1.0f};
}

namespace {

/// Project a world point; false if behind the camera.
bool project(const Camera& cam, int width, int height, const Vec3d& world,
             double& px, double& py, double& depth) {
  const Vec3d forward = (cam.target - cam.position).normalized();
  const Vec3d right = forward.cross(cam.up).normalized();
  const Vec3d trueUp = right.cross(forward);
  const Vec3d rel = world - cam.position;
  const double z = rel.dot(forward);
  if (z <= 1e-9) return false;
  const double tanHalf = std::tan(cam.fovYDegrees * 3.14159265358979 / 360.0);
  const double aspect = static_cast<double>(width) / height;
  const double u = rel.dot(right) / (z * tanHalf * aspect);
  const double v = rel.dot(trueUp) / (z * tanHalf);
  px = (u + 1.0) * 0.5 * width - 0.5;
  py = (1.0 - v) * 0.5 * height - 0.5;
  depth = z;
  return true;
}

void plot(Image& img, int x, int y, float depth, const Rgba& color) {
  if (x < 0 || x >= img.width() || y < 0 || y >= img.height()) return;
  const std::size_t i = static_cast<std::size_t>(y) *
                            static_cast<std::size_t>(img.width()) +
                        static_cast<std::size_t>(x);
  Rgba& px = img.pixel(i);
  if (depth < img.depth(i)) {
    // Line in front of the volume's first hit: line over volume.
    Rgba merged = color;
    merged.accumulate(px);
    px = merged;
    img.depth(i) = depth;
  } else {
    // Line inside/behind a translucent volume: seen through it.
    px.accumulate(color);
  }
}

}  // namespace

void drawPolyline(Image& img, const Camera& camera,
                  const std::vector<Vec3f>& vertices, const Rgba& color) {
  for (std::size_t v = 1; v < vertices.size(); ++v) {
    double x0, y0, z0, x1, y1, z1;
    if (!project(camera, img.width(), img.height(),
                 vertices[v - 1].cast<double>(), x0, y0, z0) ||
        !project(camera, img.width(), img.height(),
                 vertices[v].cast<double>(), x1, y1, z1)) {
      continue;
    }
    // DDA over the longer axis.
    const double dx = x1 - x0, dy = y1 - y0;
    const int steps =
        std::max(1, static_cast<int>(std::ceil(std::max(std::abs(dx),
                                                        std::abs(dy)))));
    for (int s = 0; s <= steps; ++s) {
      const double t = static_cast<double>(s) / steps;
      plot(img, static_cast<int>(std::lround(x0 + t * dx)),
           static_cast<int>(std::lround(y0 + t * dy)),
           static_cast<float>(z0 + t * (z1 - z0)), color);
    }
  }
}

void drawPolylines(Image& img, const Camera& camera,
                   const std::vector<Polyline>& lines) {
  for (const auto& line : lines) {
    drawPolyline(img, camera, line.vertices, seedColor(line.seedId));
  }
}

}  // namespace hemo::vis
