#pragma once
/// \file line_render.hpp
/// \brief Polyline rasterisation for the streamline figures (Fig 4b): the
/// master projects traced lines through the camera and draws them with a
/// depth test over an optional volume-rendered context image.

#include <vector>

#include "vis/camera.hpp"
#include "vis/image.hpp"
#include "vis/streamlines.hpp"

namespace hemo::vis {

/// Distinct line colour per seed (cycling palette), premultiplied.
Rgba seedColor(std::uint32_t seedId);

/// Draw a polyline into `img` with depth testing (closer wins).
void drawPolyline(Image& img, const Camera& camera,
                  const std::vector<Vec3f>& vertices, const Rgba& color);

/// Draw many polylines coloured by seed.
void drawPolylines(Image& img, const Camera& camera,
                   const std::vector<Polyline>& lines);

}  // namespace hemo::vis
