#pragma once
/// \file camera.hpp
/// \brief Pinhole camera; the "view point" steering parameter of §IV.C.1.

#include <cmath>

#include "util/vec.hpp"

namespace hemo::vis {

struct Ray {
  Vec3d origin;
  Vec3d direction;  ///< unit length
};

/// Look-at perspective camera. Trivially copyable so it can ride inside
/// steering messages.
struct Camera {
  Vec3d position{0, 0, 10};
  Vec3d target{0, 0, 0};
  Vec3d up{0, 1, 0};
  double fovYDegrees = 40.0;

  /// Ray through pixel centre (px, py) of a width×height image.
  Ray rayThrough(int px, int py, int width, int height) const {
    const Vec3d forward = (target - position).normalized();
    const Vec3d right = forward.cross(up).normalized();
    const Vec3d trueUp = right.cross(forward);
    const double aspect = static_cast<double>(width) / height;
    const double tanHalf = std::tan(fovYDegrees * 3.14159265358979 / 360.0);
    const double u = ((px + 0.5) / width * 2.0 - 1.0) * tanHalf * aspect;
    const double v = (1.0 - (py + 0.5) / height * 2.0) * tanHalf;
    return {position, (forward + right * u + trueUp * v).normalized()};
  }
};

}  // namespace hemo::vis
