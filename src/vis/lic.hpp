#pragma once
/// \file lic.hpp
/// \brief Line integral convolution on a lattice-aligned slice (Table I
/// column 4 — *medium* communication cost, *moderate* parallelisation).
///
/// Each rank owns the slice pixels whose underlying lattice site it owns.
/// LIC needs velocities along whole streamline segments, so the slice's 2-D
/// velocity field is exchanged once (an allgather of one plane — far less
/// than the volume, far more than an image: the "medium" of Table I); each
/// rank then convolves deterministic white noise along the local pixels'
/// streamlines and the master collects the intensity image.

#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"
#include "lb/domain_map.hpp"

namespace hemo::vis {

struct LicOptions {
  /// Slice normal: 0=x, 1=y, 2=z.
  int axis = 2;
  /// Lattice index of the slice along the normal axis.
  int sliceIndex = 0;
  /// Convolution half-length in pixels (streamline steps each way).
  int kernelHalfLength = 10;
  /// Integration step in pixels.
  double stepPixels = 0.5;
  std::uint64_t noiseSeed = 42;
};

struct LicResult {
  int width = 0, height = 0;
  /// Intensity in [0,1]; 0 where the slice pixel is not fluid.
  std::vector<float> intensity;
  std::vector<std::uint8_t> fluidMask;

  std::vector<std::uint8_t> toGray8() const;
};

/// Collective. Returns the full slice on rank 0 (empty elsewhere).
LicResult computeLicSlice(comm::Communicator& comm,
                          const lb::DomainMap& domain,
                          const lb::MacroFields& macro,
                          const LicOptions& options);

}  // namespace hemo::vis
