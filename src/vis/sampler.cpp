#include "vis/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hemo::vis {

namespace {
constexpr int kGhostTag = 101;
}

GhostedField::GhostedField(const lb::DomainMap& domain,
                           comm::Communicator& comm, int rings)
    : domain_(&domain) {
  HEMO_CHECK(rings >= 1);
  const auto& lat = domain.lattice();
  // Ghosts: foreign fluid sites within `rings` 26-neighbourhood steps of an
  // owned site (BFS frontier expansion).
  std::vector<std::vector<std::uint64_t>> wanted(
      static_cast<std::size_t>(comm.size()));
  {
    std::unordered_map<std::uint64_t, bool> known;  // true = ghost
    std::vector<std::uint64_t> frontier;
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      known.emplace(domain.globalOf(l), false);
      frontier.push_back(domain.globalOf(l));
    }
    std::vector<std::uint64_t> all;
    for (int ring = 0; ring < rings; ++ring) {
      std::vector<std::uint64_t> next;
      for (const auto g : frontier) {
        for (int d = 0; d < geometry::kNumDirections; ++d) {
          const auto n = lat.neighborId(g, d);
          if (n < 0) continue;
          const auto ng = static_cast<std::uint64_t>(n);
          if (known.emplace(ng, true).second) {
            all.push_back(ng);
            next.push_back(ng);
          }
        }
      }
      frontier = std::move(next);
    }
    std::sort(all.begin(), all.end());
    ghostIds_ = std::move(all);
  }
  for (std::size_t i = 0; i < ghostIds_.size(); ++i) {
    ghostIndex_.emplace(ghostIds_[i], static_cast<std::uint32_t>(i));
    wanted[static_cast<std::size_t>(domain.ownerOf(ghostIds_[i]))].push_back(
        ghostIds_[i]);
  }
  ghostU_.assign(ghostIds_.size(), Vec3d{});
  ghostRho_.assign(ghostIds_.size(), 1.0);

  // Receive ranges: ghosts grouped by owner; within a group the order is
  // ascending global id — matching `wanted`, which the owner echoes back.
  recvOffset_.assign(static_cast<std::size_t>(comm.size()) + 1, 0);
  for (int r = 0; r < comm.size(); ++r) {
    recvOffset_[static_cast<std::size_t>(r) + 1] =
        recvOffset_[static_cast<std::size_t>(r)] +
        static_cast<std::uint32_t>(wanted[static_cast<std::size_t>(r)].size());
    if (!wanted[static_cast<std::size_t>(r)].empty()) {
      recvRanges_.push_back(
          {r, static_cast<std::uint32_t>(
                  wanted[static_cast<std::size_t>(r)].size())});
    }
  }
  // ghostIds_ is globally sorted; regroup it so lookups match the grouped
  // receive layout: index ghosts by (owner, id) order.
  {
    std::vector<std::uint64_t> grouped;
    grouped.reserve(ghostIds_.size());
    for (int r = 0; r < comm.size(); ++r) {
      for (const auto g : wanted[static_cast<std::size_t>(r)]) {
        grouped.push_back(g);
      }
    }
    ghostIds_ = std::move(grouped);
    ghostIndex_.clear();
    for (std::size_t i = 0; i < ghostIds_.size(); ++i) {
      ghostIndex_.emplace(ghostIds_[i], static_cast<std::uint32_t>(i));
    }
  }

  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kVis);
  const auto requests = comm.alltoallVec(wanted);
  for (int r = 0; r < comm.size(); ++r) {
    const auto& reqs = requests[static_cast<std::size_t>(r)];
    if (reqs.empty()) continue;
    SendPlan plan;
    plan.dest = r;
    plan.locals.reserve(reqs.size());
    for (const auto g : reqs) {
      const auto local = domain.localOf(g);
      HEMO_CHECK_MSG(local >= 0, "ghost request for non-owned site");
      plan.locals.push_back(static_cast<std::uint32_t>(local));
    }
    sendPlans_.push_back(std::move(plan));
  }
}

void GhostedField::refresh(const lb::MacroFields& macro,
                           comm::Communicator& comm) {
  macro_ = &macro;
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kVis);
  std::vector<double> buf;
  for (const auto& plan : sendPlans_) {
    buf.clear();
    buf.reserve(plan.locals.size() * 4);
    for (const auto l : plan.locals) {
      const Vec3d& u = macro.u[static_cast<std::size_t>(l)];
      buf.push_back(u.x);
      buf.push_back(u.y);
      buf.push_back(u.z);
      buf.push_back(macro.rho[static_cast<std::size_t>(l)]);
    }
    comm.sendVec(plan.dest, kGhostTag, buf);
  }
  for (const auto& [rank, count] : recvRanges_) {
    const auto incoming = comm.recvVec<double>(rank, kGhostTag);
    HEMO_CHECK(incoming.size() == static_cast<std::size_t>(count) * 4);
    const auto off = recvOffset_[static_cast<std::size_t>(rank)];
    for (std::uint32_t i = 0; i < count; ++i) {
      ghostU_[off + i] = {incoming[i * 4], incoming[i * 4 + 1],
                          incoming[i * 4 + 2]};
      ghostRho_[off + i] = incoming[i * 4 + 3];
    }
  }
}

std::optional<Vec3d> GhostedField::velocityAt(std::uint64_t global) const {
  HEMO_CHECK_MSG(macro_ != nullptr, "GhostedField::refresh not called");
  const auto local = domain_->localOf(global);
  if (local >= 0) return macro_->u[static_cast<std::size_t>(local)];
  const auto it = ghostIndex_.find(global);
  if (it == ghostIndex_.end()) return std::nullopt;
  return ghostU_[static_cast<std::size_t>(it->second)];
}

std::optional<double> GhostedField::densityAt(std::uint64_t global) const {
  HEMO_CHECK_MSG(macro_ != nullptr, "GhostedField::refresh not called");
  const auto local = domain_->localOf(global);
  if (local >= 0) return macro_->rho[static_cast<std::size_t>(local)];
  const auto it = ghostIndex_.find(global);
  if (it == ghostIndex_.end()) return std::nullopt;
  return ghostRho_[static_cast<std::size_t>(it->second)];
}

std::int64_t VelocitySampler::containingSite(const Vec3d& world) const {
  const auto& lat = field_->domain().lattice();
  const Vec3d rel = (world - lat.origin()) / lat.voxelSize();
  const Vec3i p{static_cast<int>(std::floor(rel.x)),
                static_cast<int>(std::floor(rel.y)),
                static_cast<int>(std::floor(rel.z))};
  return lat.siteId(p);
}

std::optional<Vec3d> VelocitySampler::sample(const Vec3d& world) const {
  const auto& lat = field_->domain().lattice();
  const auto base = containingSite(world);
  if (base < 0) return std::nullopt;

  // Trilinear over the 8 site centres surrounding the point.
  const double h = lat.voxelSize();
  const Vec3d rel = (world - lat.origin()) / h - Vec3d{0.5, 0.5, 0.5};
  const Vec3i c0{static_cast<int>(std::floor(rel.x)),
                 static_cast<int>(std::floor(rel.y)),
                 static_cast<int>(std::floor(rel.z))};
  const Vec3d frac = rel - c0.cast<double>();

  Vec3d acc{0, 0, 0};
  for (int dz = 0; dz < 2; ++dz) {
    for (int dy = 0; dy < 2; ++dy) {
      for (int dx = 0; dx < 2; ++dx) {
        const double wgt = (dx ? frac.x : 1.0 - frac.x) *
                           (dy ? frac.y : 1.0 - frac.y) *
                           (dz ? frac.z : 1.0 - frac.z);
        if (wgt <= 0.0) continue;
        const auto corner = lat.siteId(c0 + Vec3i{dx, dy, dz});
        if (corner < 0) continue;  // wall corner: no-slip, zero velocity
        const auto u =
            field_->velocityAt(static_cast<std::uint64_t>(corner));
        if (!u) return std::nullopt;  // base not available on this rank
        acc += *u * wgt;
      }
    }
  }
  return acc;
}

}  // namespace hemo::vis
