#include "vis/volume.hpp"

#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hemo::vis {

namespace {
constexpr int kCompositeTag = 103;
}

// --- Image -------------------------------------------------------------------

std::vector<std::uint8_t> Image::toRgb8(float background) const {
  std::vector<std::uint8_t> out;
  out.reserve(pixels_.size() * 3);
  auto to8 = [](float v) {
    const float c = std::clamp(v, 0.0f, 1.0f);
    return static_cast<std::uint8_t>(std::lround(c * 255.0f));
  };
  for (const auto& p : pixels_) {
    // Composite over the background (premultiplied colours).
    out.push_back(to8(p.r + (1.f - p.a) * background));
    out.push_back(to8(p.g + (1.f - p.a) * background));
    out.push_back(to8(p.b + (1.f - p.a) * background));
  }
  return out;
}

// --- LocalBrick -----------------------------------------------------------------

LocalBrick::LocalBrick(const lb::DomainMap& domain,
                       const lb::MacroFields& macro, RenderField field)
    : domain_(&domain) {
  const auto& lat = domain.lattice();
  BoxI box = BoxI::empty();
  for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
    box.expand(lat.sitePosition(domain.globalOf(l)));
  }
  if (box.isEmpty()) return;
  lo_ = box.lo;
  ext_ = box.extent();
  const std::size_t cells = static_cast<std::size_t>(ext_.x) *
                            static_cast<std::size_t>(ext_.y) *
                            static_cast<std::size_t>(ext_.z);
  scalar_.assign(cells, 0.f);
  mask_.assign(cells, 0);
  for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
    const Vec3i p = lat.sitePosition(domain.globalOf(l)) - lo_;
    const std::size_t idx =
        (static_cast<std::size_t>(p.z) * static_cast<std::size_t>(ext_.y) +
         static_cast<std::size_t>(p.y)) *
            static_cast<std::size_t>(ext_.x) +
        static_cast<std::size_t>(p.x);
    mask_[idx] = 1;
    scalar_[idx] = field == RenderField::kVelocityMagnitude
                       ? static_cast<float>(
                             macro.u[static_cast<std::size_t>(l)].norm())
                       : static_cast<float>(
                             macro.rho[static_cast<std::size_t>(l)]);
  }
  const double h = lat.voxelSize();
  worldBounds_.lo = lat.origin() + lo_.cast<double>() * h;
  worldBounds_.hi =
      lat.origin() + (lo_ + ext_).cast<double>() * h;
}

bool LocalBrick::sampleScalar(const Vec3d& world, float& value) const {
  if (empty()) return false;
  const auto& lat = domain_->lattice();
  const Vec3d rel = (world - lat.origin()) / lat.voxelSize();
  const Vec3i p{static_cast<int>(std::floor(rel.x)) - lo_.x,
                static_cast<int>(std::floor(rel.y)) - lo_.y,
                static_cast<int>(std::floor(rel.z)) - lo_.z};
  if (p.x < 0 || p.x >= ext_.x || p.y < 0 || p.y >= ext_.y || p.z < 0 ||
      p.z >= ext_.z) {
    return false;
  }
  const std::size_t idx =
      (static_cast<std::size_t>(p.z) * static_cast<std::size_t>(ext_.y) +
       static_cast<std::size_t>(p.y)) *
          static_cast<std::size_t>(ext_.x) +
      static_cast<std::size_t>(p.x);
  if (!mask_[idx]) return false;
  value = scalar_[idx];
  return true;
}

// --- local ray casting --------------------------------------------------------

Image renderLocal(const lb::DomainMap& domain, const lb::MacroFields& macro,
                  const VolumeRenderOptions& options) {
  const LocalBrick brick(domain, macro, options.field);
  Image img(options.width, options.height);
  if (brick.empty()) return img;
  const double h = domain.lattice().voxelSize();
  const double step = options.stepVoxels * h;
  // Opacity correction: the transfer function is defined per voxel of
  // optical depth; rescale alpha to the actual sampling distance.
  const float alphaScale = static_cast<float>(options.stepVoxels);

  for (int py = 0; py < options.height; ++py) {
    for (int px = 0; px < options.width; ++px) {
      const Ray ray =
          options.camera.rayThrough(px, py, options.width, options.height);
      double t0, t1;
      if (!brick.worldBounds().rayIntersect(ray.origin, ray.direction, t0,
                                            t1)) {
        continue;
      }
      if (options.clipBox) {
        double c0, c1;
        if (!options.clipBox->rayIntersect(ray.origin, ray.direction, c0,
                                           c1)) {
          continue;
        }
        t0 = std::max(t0, c0);
        t1 = std::min(t1, c1);
        if (t0 > t1) continue;
      }
      Rgba acc;
      float firstHit = Image::kFarDepth;
      // Global-phase sampling: sample points lie at multiples of `step`
      // along the ray regardless of the brick entry, so every rank samples
      // the same world positions and compositing matches a serial render.
      double t = (std::floor(t0 / step) + 1.0) * step;
      for (; t <= t1; t += step) {
        const Vec3d p = ray.origin + ray.direction * t;
        float value;
        if (!brick.sampleScalar(p, value)) continue;
        Rgba sample = options.transfer.sample(value);
        sample.r *= alphaScale;
        sample.g *= alphaScale;
        sample.b *= alphaScale;
        sample.a *= alphaScale;
        if (sample.a <= 0.f) continue;
        if (firstHit == Image::kFarDepth) {
          firstHit = static_cast<float>(t);
        }
        acc.accumulate(sample);
        if (acc.a >= options.opacityCutoff) break;
      }
      if (firstHit < Image::kFarDepth) {
        const std::size_t i = static_cast<std::size_t>(py) *
                                  static_cast<std::size_t>(options.width) +
                              static_cast<std::size_t>(px);
        img.pixel(i) = acc;
        img.depth(i) = firstHit;
      }
    }
  }
  return img;
}

// --- compositing -----------------------------------------------------------------

namespace {

/// Wire layout of one non-empty fragment pixel.
struct WirePixel {
  std::uint32_t index;
  float r, g, b, a, depth;
};

std::vector<WirePixel> packNonEmpty(const Image& img, std::size_t first,
                                    std::size_t last) {
  std::vector<WirePixel> out;
  for (std::size_t i = first; i < last; ++i) {
    const Rgba& p = img.pixel(i);
    if (p.a <= 0.f) continue;
    out.push_back({static_cast<std::uint32_t>(i), p.r, p.g, p.b, p.a,
                   img.depth(i)});
  }
  return out;
}

}  // namespace

Image compositeDirectSend(comm::Communicator& comm, const Image& fragment) {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kVis);
  const auto mine = packNonEmpty(fragment, 0, fragment.numPixels());
  const auto all = comm.gatherVec(mine, 0);
  if (comm.rank() != 0) return Image{};

  // Per pixel: collect fragments, sort by depth, compose front-to-back.
  Image result(fragment.width(), fragment.height());
  std::vector<std::vector<WirePixel>> perPixel(fragment.numPixels());
  for (const auto& rankPixels : all) {
    for (const auto& wp : rankPixels) {
      perPixel[wp.index].push_back(wp);
    }
  }
  for (std::size_t i = 0; i < perPixel.size(); ++i) {
    auto& frags = perPixel[i];
    if (frags.empty()) continue;
    std::sort(frags.begin(), frags.end(),
              [](const WirePixel& a, const WirePixel& b) {
                return a.depth < b.depth;
              });
    Rgba acc;
    for (const auto& wp : frags) {
      acc.accumulate(Rgba{wp.r, wp.g, wp.b, wp.a});
    }
    result.pixel(i) = acc;
    result.depth(i) = frags.front().depth;
  }
  return result;
}

Image compositeBinarySwap(comm::Communicator& comm, const Image& fragment) {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kVis);
  const int size = comm.size();
  HEMO_CHECK_MSG((size & (size - 1)) == 0,
                 "binary-swap needs a power-of-two rank count");
  const std::size_t numPixels = fragment.numPixels();
  Image work = fragment;

  // Each round: pair with rank^mask, split the current range in half, send
  // one half, composite the half we keep with the peer's fragment.
  std::size_t first = 0, last = numPixels;
  for (int mask = 1; mask < size; mask <<= 1) {
    const int peer = comm.rank() ^ mask;
    const std::size_t mid = first + (last - first) / 2;
    const bool keepLow = (comm.rank() & mask) == 0;
    const std::size_t sendFirst = keepLow ? mid : first;
    const std::size_t sendLast = keepLow ? last : mid;
    comm.sendVec(peer, kCompositeTag,
                 packNonEmpty(work, sendFirst, sendLast));
    const auto incoming = comm.recvVec<WirePixel>(peer, kCompositeTag);
    if (keepLow) {
      last = mid;
    } else {
      first = mid;
    }
    for (const auto& wp : incoming) {
      Rgba& ours = work.pixel(wp.index);
      const Rgba theirs{wp.r, wp.g, wp.b, wp.a};
      if (wp.depth < work.depth(wp.index)) {
        // Peer fragment is in front.
        Rgba merged = theirs;
        merged.accumulate(ours);
        ours = merged;
        work.depth(wp.index) = wp.depth;
      } else {
        ours.accumulate(theirs);
      }
    }
  }

  // Gather the disjoint final ranges to rank 0.
  const auto finals = comm.gatherVec(packNonEmpty(work, first, last), 0);
  if (comm.rank() != 0) return Image{};
  Image result(fragment.width(), fragment.height());
  for (const auto& rankPixels : finals) {
    for (const auto& wp : rankPixels) {
      result.pixel(wp.index) = Rgba{wp.r, wp.g, wp.b, wp.a};
      result.depth(wp.index) = wp.depth;
    }
  }
  return result;
}

Image renderVolume(comm::Communicator& comm, const lb::DomainMap& domain,
                   const lb::MacroFields& macro,
                   const VolumeRenderOptions& options, CompositeMode mode) {
  HEMO_TSPAN(kVis, "vis.volume");
  const Image fragment = renderLocal(domain, macro, options);
  return mode == CompositeMode::kDirectSend
             ? compositeDirectSend(comm, fragment)
             : compositeBinarySwap(comm, fragment);
}

}  // namespace hemo::vis
