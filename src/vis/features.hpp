#pragma once
/// \file features.hpp
/// \brief Distributed feature extraction (§I: "in situ visualisation and
/// feature extraction are promising approaches to reduce the amount of
/// data to handle").
///
/// A feature is a connected component of fluid sites whose scalar value
/// exceeds a threshold (e.g. high-speed jets, WSS hotspots). Components are
/// found without gathering the field: each rank labels its owned sites
/// (multi-source BFS, label = smallest global id in the component), then
/// boundary labels are exchanged and merged iteratively until no label
/// changes anywhere — the number of rounds is bounded by the number of
/// ranks a component spans. The result is a handful of feature descriptors
/// instead of the raw field.

#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"
#include "lb/domain_map.hpp"
#include "util/bbox.hpp"

namespace hemo::vis {

struct Feature {
  /// Stable id: the smallest global site id in the component.
  std::uint64_t id = 0;
  std::uint64_t sizeSites = 0;
  Vec3d centroid{};        ///< world space, site-count weighted
  double maxValue = 0.0;
  double meanValue = 0.0;
  BoxD bounds = BoxD::empty();
};

struct FeatureStats {
  std::uint64_t mergeRounds = 0;  ///< label-exchange iterations
};

/// Collective: extract all features of `scalar > threshold`. Returns the
/// complete list on rank 0 (sorted by descending size), empty elsewhere.
std::vector<Feature> extractFeatures(comm::Communicator& comm,
                                     const lb::DomainMap& domain,
                                     const std::vector<double>& scalar,
                                     double threshold,
                                     FeatureStats* stats = nullptr);

}  // namespace hemo::vis
