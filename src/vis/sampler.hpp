#pragma once
/// \file sampler.hpp
/// \brief Rank-local field sampling with a one-site ghost ring.
///
/// Particle-based visualisation (integral lines, tracers) samples velocity
/// at arbitrary positions. Each rank keeps, besides its owned sites, a
/// ghost copy of every foreign site adjacent (26-neighbourhood) to an owned
/// site, refreshed on demand. A particle whose containing site is owned can
/// then always sample trilinearly — all eight cell corners are within one
/// step of the base site — so integration is bitwise independent of the
/// decomposition, and a particle is handed to another rank exactly when its
/// base site changes owner.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "comm/communicator.hpp"
#include "lb/domain_map.hpp"
#include "util/vec.hpp"

namespace hemo::vis {

/// Owned + ghost velocity/density view of the distributed macro fields.
class GhostedField {
 public:
  /// Collective: builds the ghost exchange plan. `rings` is the ghost
  /// depth: 1 suffices for cell-corner sampling at owned sites; integral
  /// lines use 2 so that every RK4 substage of a step shorter than one
  /// voxel can be evaluated before the particle is handed off — which
  /// makes the traced lines bitwise independent of the decomposition.
  GhostedField(const lb::DomainMap& domain, comm::Communicator& comm,
               int rings = 1);

  /// Collective: refresh ghost values from the current macro fields.
  /// Classified as visualisation traffic.
  void refresh(const lb::MacroFields& macro, comm::Communicator& comm);

  const lb::DomainMap& domain() const { return *domain_; }

  /// Velocity at a global site available on this rank (owned or ghost);
  /// nullopt otherwise.
  std::optional<Vec3d> velocityAt(std::uint64_t global) const;
  std::optional<double> densityAt(std::uint64_t global) const;

  /// Bytes moved by the last refresh (whole communicator, local share).
  std::uint64_t ghostCount() const { return ghostIds_.size(); }

 private:
  const lb::DomainMap* domain_;
  const lb::MacroFields* macro_ = nullptr;
  std::vector<std::uint64_t> ghostIds_;               ///< sorted
  std::unordered_map<std::uint64_t, std::uint32_t> ghostIndex_;
  std::vector<Vec3d> ghostU_;
  std::vector<double> ghostRho_;
  /// Exchange plan: for each peer rank, the owned locals it wants.
  struct SendPlan {
    int dest;
    std::vector<std::uint32_t> locals;
  };
  std::vector<SendPlan> sendPlans_;
  std::vector<std::pair<int, std::uint32_t>> recvRanges_;  ///< (rank, count)
  std::vector<std::uint32_t> recvOffset_;
};

/// Samples the ghosted field at world positions.
class VelocitySampler {
 public:
  explicit VelocitySampler(const GhostedField& field) : field_(&field) {}

  /// Global id of the fluid site containing `world` (by voxel floor), or
  /// -1 if that voxel is not fluid.
  std::int64_t containingSite(const Vec3d& world) const;

  /// Trilinear velocity at `world`. Requires the base site to be available
  /// on this rank; corners that are not fluid contribute zero velocity
  /// (no-slip towards walls). Returns nullopt if the base voxel is not
  /// fluid or not available here.
  std::optional<Vec3d> sample(const Vec3d& world) const;

 private:
  const GhostedField* field_;
};

}  // namespace hemo::vis
