#pragma once
/// \file particles.hpp
/// \brief In situ particle tracing (Table I column 3) and streak-line
/// support: massless tracers advected with the *unsteady* flow, one advance
/// per simulation step, migrating between ranks as they cross the
/// decomposition. Continuous injection at fixed points yields streak-lines;
/// per-particle position histories yield path-lines.

#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"
#include "vis/sampler.hpp"
#include "vis/streamlines.hpp"

namespace hemo::vis {

struct Tracer {
  std::uint64_t id = 0;
  Vec3d pos{};
  std::uint32_t age = 0;   ///< advection steps since injection
  std::uint32_t seedId = 0;  ///< which injection point spawned it
};

struct TracerStats {
  std::uint64_t migrations = 0;
  std::uint64_t killedAtWall = 0;
  std::uint64_t advected = 0;
};

/// Distributed swarm of tracers. All methods are collective.
class TracerSwarm {
 public:
  /// `field` must be built with rings >= 2 and refreshed before advect().
  explicit TracerSwarm(const GhostedField& field) : field_(&field) {}

  /// Inject one tracer per seed position (owned-rank adoption; positions
  /// outside the fluid are ignored). Ids are assigned deterministically.
  void inject(comm::Communicator& comm, const std::vector<Vec3d>& seeds,
              std::uint32_t firstSeedId = 0);

  /// Advance every tracer by `dtSteps` simulation steps with RK2 (midpoint)
  /// using the current velocities, then migrate crossers. Tracers that
  /// leave the fluid are removed.
  void advect(comm::Communicator& comm, double dtSteps = 1.0);

  /// Number of live tracers on this rank.
  std::size_t localCount() const { return tracers_.size(); }

  /// Collective: total live tracers.
  std::uint64_t globalCount(comm::Communicator& comm) const;

  /// Collective: gather all tracers to rank 0 (empty elsewhere).
  std::vector<Tracer> gather(comm::Communicator& comm) const;

  const TracerStats& stats() const { return stats_; }

  /// All live tracers on this rank (for recording).
  const std::vector<Tracer>& localTracers() const { return tracers_; }

 private:
  const GhostedField* field_;
  std::vector<Tracer> tracers_;
  std::uint64_t nextLocalSerial_ = 0;
  TracerStats stats_;
};

/// Assemble streak-lines from a gathered tracer population: all tracers
/// injected at the same seed, ordered old-to-young, form the streak the
/// seed point draws through the unsteady flow.
std::vector<Polyline> assembleStreaklines(const std::vector<Tracer>& tracers);

/// Records tracer positions over time into per-tracer *path-lines* — the
/// unsteady-flow counterpart of streamlines (Fig 4b mentions "path-line
/// tubes"). A tracer's record is scattered over the ranks it visited; the
/// final gather stitches each line in age order.
class PathlineRecorder {
 public:
  /// Call after every TracerSwarm::advect: appends (id, age, pos) rows for
  /// the tracers currently owned by this rank.
  void record(const TracerSwarm& swarm);

  /// Collective: assemble the complete pathlines on rank 0 (sorted by
  /// tracer id, vertices in age order). Empty elsewhere.
  struct Pathline {
    std::uint64_t tracerId = 0;
    std::uint32_t seedId = 0;
    std::vector<Vec3f> vertices;
  };
  std::vector<Pathline> gather(comm::Communicator& comm) const;

  std::size_t localRows() const { return rows_.size(); }

 private:
  struct Row {
    std::uint64_t id;
    std::uint32_t seedId;
    std::uint32_t age;
    float x, y, z;
  };
  std::vector<Row> rows_;
};

}  // namespace hemo::vis
