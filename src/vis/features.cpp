#include "vis/features.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <unordered_map>

#include "util/check.hpp"

namespace hemo::vis {

namespace {
constexpr std::uint64_t kNoLabel = ~0ULL;
}  // namespace

std::vector<Feature> extractFeatures(comm::Communicator& comm,
                                     const lb::DomainMap& domain,
                                     const std::vector<double>& scalar,
                                     double threshold, FeatureStats* stats) {
  HEMO_CHECK(scalar.size() == domain.numOwned());
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kVis);
  const auto& lat = domain.lattice();
  const auto n = domain.numOwned();

  // --- 1. local labelling: multi-source BFS, label = min global id ----------
  std::vector<std::uint64_t> label(static_cast<std::size_t>(n), kNoLabel);
  auto marked = [&](std::uint32_t l) { return scalar[l] > threshold; };
  for (std::uint32_t seed = 0; seed < n; ++seed) {
    if (!marked(seed) || label[seed] != kNoLabel) continue;
    const std::uint64_t lbl = domain.globalOf(seed);
    std::queue<std::uint32_t> bfs;
    bfs.push(seed);
    label[seed] = lbl;
    while (!bfs.empty()) {
      const auto cur = bfs.front();
      bfs.pop();
      const auto g = domain.globalOf(cur);
      for (int d = 0; d < geometry::kNumDirections; ++d) {
        const auto nb = lat.neighborId(g, d);
        if (nb < 0) continue;
        const auto local = domain.localOf(static_cast<std::uint64_t>(nb));
        if (local < 0) continue;  // foreign; handled by the merge rounds
        const auto ln = static_cast<std::uint32_t>(local);
        if (marked(ln) && label[ln] == kNoLabel) {
          label[ln] = lbl;
          bfs.push(ln);
        }
      }
    }
  }

  // --- 2. boundary exchange plan (marked owned sites with foreign marked
  //        neighbours are unknown to us — send them our labels, adopt
  //        smaller incoming ones, and propagate locally again) -------------
  struct BoundaryLink {
    int peer;
    std::uint32_t local;       ///< our site
    std::uint64_t foreign;     ///< their site (global)
  };
  std::vector<BoundaryLink> links;
  for (std::uint32_t l = 0; l < n; ++l) {
    if (!marked(l)) continue;
    const auto g = domain.globalOf(l);
    for (int d = 0; d < geometry::kNumDirections; ++d) {
      const auto nb = lat.neighborId(g, d);
      if (nb < 0) continue;
      const auto ng = static_cast<std::uint64_t>(nb);
      const int owner = domain.ownerOf(ng);
      if (owner != domain.rank()) links.push_back({owner, l, ng});
    }
  }

  FeatureStats st;
  for (;;) {
    ++st.mergeRounds;
    // Send (foreignSite, ourLabel) for every cross link; the owner decides
    // whether our label lowers its component's.
    std::vector<std::vector<std::uint64_t>> outgoing(
        static_cast<std::size_t>(comm.size()));
    for (const auto& link : links) {
      outgoing[static_cast<std::size_t>(link.peer)].push_back(link.foreign);
      outgoing[static_cast<std::size_t>(link.peer)].push_back(
          label[link.local]);
    }
    const auto incoming = comm.alltoallVec(outgoing);

    // Adopt smaller labels; then re-propagate inside the rank.
    std::queue<std::uint32_t> bfs;
    for (const auto& blob : incoming) {
      for (std::size_t i = 0; i < blob.size(); i += 2) {
        const auto local = domain.localOf(blob[i]);
        if (local < 0) continue;
        const auto l = static_cast<std::uint32_t>(local);
        if (!marked(l)) continue;
        if (blob[i + 1] < label[l]) {
          label[l] = blob[i + 1];
          bfs.push(l);
        }
      }
    }
    bool changed = !bfs.empty();
    while (!bfs.empty()) {
      const auto cur = bfs.front();
      bfs.pop();
      const auto g = domain.globalOf(cur);
      for (int d = 0; d < geometry::kNumDirections; ++d) {
        const auto nb = lat.neighborId(g, d);
        if (nb < 0) continue;
        const auto local = domain.localOf(static_cast<std::uint64_t>(nb));
        if (local < 0) continue;
        const auto ln = static_cast<std::uint32_t>(local);
        if (marked(ln) && label[ln] > label[cur]) {
          label[ln] = label[cur];
          bfs.push(ln);
        }
      }
    }
    if (comm.allreduceSum<std::uint64_t>(changed ? 1 : 0) == 0) break;
  }
  if (stats != nullptr) *stats = st;

  // --- 3. per-label aggregation, then merge on the master -------------------
  struct Partial {
    std::uint64_t count = 0;
    Vec3d centroidSum{};
    double maxValue = -1e300;
    double valueSum = 0.0;
    BoxD bounds = BoxD::empty();
  };
  std::unordered_map<std::uint64_t, Partial> partials;
  for (std::uint32_t l = 0; l < n; ++l) {
    if (!marked(l)) continue;
    auto& p = partials[label[l]];
    const Vec3d w = lat.siteWorld(domain.globalOf(l));
    p.count += 1;
    p.centroidSum += w;
    p.maxValue = std::max(p.maxValue, scalar[l]);
    p.valueSum += scalar[l];
    p.bounds.expand(w);
  }
  std::vector<double> rows;
  for (const auto& [lbl, p] : partials) {
    rows.insert(rows.end(),
                {static_cast<double>(lbl), static_cast<double>(p.count),
                 p.centroidSum.x, p.centroidSum.y, p.centroidSum.z,
                 p.maxValue, p.valueSum, p.bounds.lo.x, p.bounds.lo.y,
                 p.bounds.lo.z, p.bounds.hi.x, p.bounds.hi.y, p.bounds.hi.z});
  }
  const auto all = comm.gatherVec(rows, 0);
  if (comm.rank() != 0) return {};

  std::map<std::uint64_t, Partial> merged;
  for (const auto& blob : all) {
    for (std::size_t i = 0; i < blob.size(); i += 13) {
      auto& p = merged[static_cast<std::uint64_t>(blob[i])];
      p.count += static_cast<std::uint64_t>(blob[i + 1]);
      p.centroidSum += Vec3d{blob[i + 2], blob[i + 3], blob[i + 4]};
      p.maxValue = std::max(p.maxValue, blob[i + 5]);
      p.valueSum += blob[i + 6];
      p.bounds.expand(Vec3d{blob[i + 7], blob[i + 8], blob[i + 9]});
      p.bounds.expand(Vec3d{blob[i + 10], blob[i + 11], blob[i + 12]});
    }
  }
  std::vector<Feature> features;
  for (const auto& [lbl, p] : merged) {
    Feature f;
    f.id = lbl;
    f.sizeSites = p.count;
    f.centroid = p.centroidSum / static_cast<double>(p.count);
    f.maxValue = p.maxValue;
    f.meanValue = p.valueSum / static_cast<double>(p.count);
    f.bounds = p.bounds;
    features.push_back(f);
  }
  std::sort(features.begin(), features.end(),
            [](const Feature& a, const Feature& b) {
              return a.sizeSites != b.sizeSites ? a.sizeSites > b.sizeSites
                                                : a.id < b.id;
            });
  return features;
}

}  // namespace hemo::vis
