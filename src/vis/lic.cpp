#include "vis/lic.hpp"

#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hemo::vis {

namespace {

/// Deterministic white noise in [0,1) from pixel coordinates and a seed.
float noiseAt(int x, int y, std::uint64_t seed) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) * 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(y)) * 0x94d049bb133111ebULL;
  h = (h ^ (h >> 27)) * 0x2545f4914f6cdd1dULL;
  h ^= h >> 31;
  return static_cast<float>(h >> 40) * 0x1.0p-24f;
}

struct SliceField {
  int width = 0, height = 0;
  std::vector<float> ux, uy;       ///< zero where not fluid
  std::vector<std::uint8_t> mask;

  bool inBounds(int x, int y) const {
    return x >= 0 && x < width && y >= 0 && y < height;
  }
  std::size_t idx(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
           static_cast<std::size_t>(x);
  }

  /// Bilinear velocity at continuous slice coordinates (pixel centres at
  /// integer+0.5). Non-fluid corners contribute zero (no-slip).
  bool sample(double x, double y, double& vx, double& vy) const {
    const double rx = x - 0.5, ry = y - 0.5;
    const int x0 = static_cast<int>(std::floor(rx));
    const int y0 = static_cast<int>(std::floor(ry));
    const double fx = rx - x0, fy = ry - y0;
    vx = 0.0;
    vy = 0.0;
    bool anyFluid = false;
    for (int dy = 0; dy < 2; ++dy) {
      for (int dx = 0; dx < 2; ++dx) {
        const int cx = x0 + dx, cy = y0 + dy;
        if (!inBounds(cx, cy)) continue;
        const std::size_t i = idx(cx, cy);
        if (!mask[i]) continue;
        anyFluid = true;
        const double w = (dx ? fx : 1.0 - fx) * (dy ? fy : 1.0 - fy);
        vx += w * ux[i];
        vy += w * uy[i];
      }
    }
    return anyFluid;
  }
};

}  // namespace

std::vector<std::uint8_t> LicResult::toGray8() const {
  std::vector<std::uint8_t> out;
  out.reserve(intensity.size());
  for (std::size_t i = 0; i < intensity.size(); ++i) {
    const float v = fluidMask[i] ? intensity[i] : 0.f;
    out.push_back(static_cast<std::uint8_t>(
        std::lround(std::clamp(v, 0.f, 1.f) * 255.f)));
  }
  return out;
}

LicResult computeLicSlice(comm::Communicator& comm,
                          const lb::DomainMap& domain,
                          const lb::MacroFields& macro,
                          const LicOptions& options) {
  HEMO_CHECK(options.axis >= 0 && options.axis < 3);
  HEMO_TSPAN(kVis, "vis.lic");
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kVis);
  const auto& lat = domain.lattice();
  const Vec3i dims = lat.dims();
  const int a0 = (options.axis + 1) % 3;  // slice "x"
  const int a1 = (options.axis + 2) % 3;  // slice "y"
  SliceField slice;
  slice.width = dims[a0];
  slice.height = dims[a1];
  const std::size_t pixels = static_cast<std::size_t>(slice.width) *
                             static_cast<std::size_t>(slice.height);
  slice.ux.assign(pixels, 0.f);
  slice.uy.assign(pixels, 0.f);
  slice.mask.assign(pixels, 0);

  // 1. Each rank contributes its owned sites lying in the slice.
  std::vector<float> contribution;  // (pixelIdx, ux, uy) triples
  for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
    const Vec3i p = lat.sitePosition(domain.globalOf(l));
    if (p[options.axis] != options.sliceIndex) continue;
    const std::size_t i = slice.idx(p[a0], p[a1]);
    contribution.push_back(static_cast<float>(i));
    contribution.push_back(
        static_cast<float>(macro.u[static_cast<std::size_t>(l)][a0]));
    contribution.push_back(
        static_cast<float>(macro.u[static_cast<std::size_t>(l)][a1]));
  }
  // 2. Everyone receives the full slice (the "medium" exchange).
  const auto allContrib = comm.allgatherVec(contribution);
  for (const auto& blob : allContrib) {
    for (std::size_t i = 0; i < blob.size(); i += 3) {
      const auto pix = static_cast<std::size_t>(blob[i]);
      slice.ux[pix] = blob[i + 1];
      slice.uy[pix] = blob[i + 2];
      slice.mask[pix] = 1;
    }
  }

  // 3. Convolve noise along streamlines for *owned* pixels only.
  auto convolveFrom = [&](int px, int py) {
    float sum = noiseAt(px, py, options.noiseSeed);
    int samples = 1;
    for (int dir = 0; dir < 2; ++dir) {
      double x = px + 0.5, y = py + 0.5;
      const double sign = dir == 0 ? 1.0 : -1.0;
      for (int k = 0; k < options.kernelHalfLength; ++k) {
        double vx, vy;
        if (!slice.sample(x, y, vx, vy)) break;
        const double speed = std::sqrt(vx * vx + vy * vy);
        if (speed < 1e-12) break;
        x += sign * options.stepPixels * vx / speed;
        y += sign * options.stepPixels * vy / speed;
        const int nx = static_cast<int>(std::floor(x));
        const int ny = static_cast<int>(std::floor(y));
        if (!slice.inBounds(nx, ny) || !slice.mask[slice.idx(nx, ny)]) break;
        sum += noiseAt(nx, ny, options.noiseSeed);
        ++samples;
      }
    }
    return sum / static_cast<float>(samples);
  };

  std::vector<float> mine;  // (pixelIdx, intensity) pairs
  for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
    const Vec3i p = lat.sitePosition(domain.globalOf(l));
    if (p[options.axis] != options.sliceIndex) continue;
    mine.push_back(static_cast<float>(slice.idx(p[a0], p[a1])));
    mine.push_back(convolveFrom(p[a0], p[a1]));
  }

  // 4. Master assembles the intensity image.
  const auto gathered = comm.gatherVec(mine, 0);
  LicResult result;
  if (comm.rank() != 0) return result;
  result.width = slice.width;
  result.height = slice.height;
  result.intensity.assign(pixels, 0.f);
  result.fluidMask = slice.mask;
  for (const auto& blob : gathered) {
    for (std::size_t i = 0; i < blob.size(); i += 2) {
      result.intensity[static_cast<std::size_t>(blob[i])] = blob[i + 1];
    }
  }
  return result;
}

}  // namespace hemo::vis
