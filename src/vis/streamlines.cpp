#include "vis/streamlines.hpp"

#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hemo::vis {

namespace {

struct Particle {
  std::uint32_t seedId = 0;
  std::uint32_t vertexCount = 0;
  Vec3d pos{};
};

/// A recorded vertex: (seed, index along the line, position).
struct VertexRecord {
  std::uint32_t seedId;
  std::uint32_t index;
  float x, y, z;
};

}  // namespace

std::vector<Vec3d> discSeeds(const Vec3d& center, const Vec3d& normal,
                             double radius, int count) {
  const Vec3d n = normal.normalized();
  // Build an orthonormal basis in the disc plane.
  const Vec3d helper = std::abs(n.x) < 0.9 ? Vec3d{1, 0, 0} : Vec3d{0, 1, 0};
  const Vec3d e1 = n.cross(helper).normalized();
  const Vec3d e2 = n.cross(e1);
  std::vector<Vec3d> seeds;
  seeds.reserve(static_cast<std::size_t>(count));
  // Sunflower (Vogel) spiral: uniform, deterministic.
  const double golden = 2.39996322972865332;
  for (int i = 0; i < count; ++i) {
    const double r = radius * std::sqrt((i + 0.5) / count);
    const double theta = golden * i;
    seeds.push_back(center + e1 * (r * std::cos(theta)) +
                    e2 * (r * std::sin(theta)));
  }
  return seeds;
}

std::vector<Polyline> traceStreamlines(comm::Communicator& comm,
                                       const GhostedField& field,
                                       const std::vector<Vec3d>& seeds,
                                       const StreamlineParams& params,
                                       TraceStats* statsOut) {
  HEMO_CHECK(params.stepVoxels > 0.0 && params.stepVoxels < 1.0);
  HEMO_TSPAN(kVis, "vis.streamlines");
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kVis);
  const auto& domain = field.domain();
  const double h = domain.lattice().voxelSize();
  const double step = params.stepVoxels * h;
  VelocitySampler sampler(field);
  TraceStats stats;

  // Each rank adopts the seeds whose containing site it owns; seeds outside
  // the fluid are dropped everywhere (count them once on rank 0).
  std::vector<Particle> active;
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    const auto site = sampler.containingSite(seeds[s]);
    if (site < 0) continue;
    if (domain.ownerOf(static_cast<std::uint64_t>(site)) != domain.rank()) {
      continue;
    }
    active.push_back(
        {static_cast<std::uint32_t>(s), 0, seeds[s]});
  }

  std::vector<VertexRecord> recorded;

  // Normalised velocity direction; nullopt if unavailable or too slow.
  auto direction = [&](const Vec3d& p) -> std::optional<Vec3d> {
    const auto u = sampler.sample(p);
    if (!u) return std::nullopt;
    const double speed = u->norm();
    if (speed < params.minSpeed) return std::nullopt;
    return *u / speed;
  };

  for (;;) {
    std::vector<std::vector<double>> emigrants(
        static_cast<std::size_t>(comm.size()));
    while (!active.empty()) {
      Particle p = active.back();
      active.pop_back();
      bool alive = true;
      while (alive) {
        // Record the current vertex.
        recorded.push_back({p.seedId, p.vertexCount,
                            static_cast<float>(p.pos.x),
                            static_cast<float>(p.pos.y),
                            static_cast<float>(p.pos.z)});
        ++p.vertexCount;
        if (p.vertexCount >= static_cast<std::uint32_t>(params.maxVertices)) {
          ++stats.terminatedLength;
          break;
        }
        // RK4 on the normalised field. All substages stay within one step
        // of p.pos, covered by the 2-ring ghosts when the base is owned.
        const auto k1 = direction(p.pos);
        if (!k1) {
          alive = false;
          ++stats.terminatedSlow;
          break;
        }
        const auto k2 = direction(p.pos + *k1 * (0.5 * step));
        const auto k3 =
            k2 ? direction(p.pos + *k2 * (0.5 * step)) : std::nullopt;
        const auto k4 = k3 ? direction(p.pos + *k3 * step) : std::nullopt;
        Vec3d move;
        if (k4) {
          move = (*k1 + *k2 * 2.0 + *k3 * 2.0 + *k4) * (step / 6.0);
        } else {
          // A substage left the fluid (walls have no ghost): fall back to
          // Euler on k1 — identical on every decomposition because k1 only
          // needs the owned base cell.
          move = *k1 * step;
        }
        const Vec3d next = p.pos + move;
        const auto nextSite = sampler.containingSite(next);
        ++stats.integrationSteps;
        if (nextSite < 0) {
          ++stats.terminatedWall;
          break;
        }
        p.pos = next;
        const int owner =
            domain.ownerOf(static_cast<std::uint64_t>(nextSite));
        if (owner != domain.rank()) {
          auto& out = emigrants[static_cast<std::size_t>(owner)];
          out.push_back(static_cast<double>(p.seedId));
          out.push_back(static_cast<double>(p.vertexCount));
          out.push_back(p.pos.x);
          out.push_back(p.pos.y);
          out.push_back(p.pos.z);
          ++stats.migrations;
          alive = false;
        }
      }
    }

    // Bulk-synchronous exchange; stop when no particle moved anywhere.
    std::uint64_t moving = 0;
    for (const auto& out : emigrants) moving += out.size();
    moving = comm.allreduceSum(moving);
    ++stats.rounds;
    if (moving == 0) break;
    const auto arrived = comm.alltoallVec(emigrants);
    for (const auto& in : arrived) {
      for (std::size_t i = 0; i < in.size(); i += 5) {
        Particle p;
        p.seedId = static_cast<std::uint32_t>(in[i]);
        p.vertexCount = static_cast<std::uint32_t>(in[i + 1]);
        p.pos = {in[i + 2], in[i + 3], in[i + 4]};
        active.push_back(p);
      }
    }
  }

  // Assemble on the master: gather all vertex records, sort, stitch.
  std::vector<double> flat;
  flat.reserve(recorded.size() * 5);
  for (const auto& r : recorded) {
    flat.push_back(r.seedId);
    flat.push_back(r.index);
    flat.push_back(r.x);
    flat.push_back(r.y);
    flat.push_back(r.z);
  }
  const auto all = comm.gatherVec(flat, 0);

  if (statsOut != nullptr) {
    statsOut->migrations = comm.allreduceSum(stats.migrations);
    statsOut->rounds = stats.rounds;
    statsOut->integrationSteps = comm.allreduceSum(stats.integrationSteps);
    statsOut->terminatedWall = comm.allreduceSum(stats.terminatedWall);
    statsOut->terminatedSlow = comm.allreduceSum(stats.terminatedSlow);
    statsOut->terminatedLength = comm.allreduceSum(stats.terminatedLength);
  }

  if (comm.rank() != 0) return {};
  std::vector<VertexRecord> merged;
  for (const auto& blob : all) {
    for (std::size_t i = 0; i < blob.size(); i += 5) {
      merged.push_back({static_cast<std::uint32_t>(blob[i]),
                        static_cast<std::uint32_t>(blob[i + 1]),
                        static_cast<float>(blob[i + 2]),
                        static_cast<float>(blob[i + 3]),
                        static_cast<float>(blob[i + 4])});
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const VertexRecord& a, const VertexRecord& b) {
              return a.seedId != b.seedId ? a.seedId < b.seedId
                                          : a.index < b.index;
            });
  std::vector<Polyline> lines;
  for (const auto& r : merged) {
    if (lines.empty() || lines.back().seedId != r.seedId) {
      lines.push_back({r.seedId, {}});
    }
    lines.back().vertices.push_back({r.x, r.y, r.z});
  }
  return lines;
}

}  // namespace hemo::vis
