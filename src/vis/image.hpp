#pragma once
/// \file image.hpp
/// \brief Off-screen RGBA+depth framebuffer and front-to-back compositing —
/// the image end of the paper's in situ visualisation loop (step 5-6 of
/// §IV.C.1: "the visualisation component ... constructs the image; the
/// image is returned to the simulation master node and thence to the
/// client").

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace hemo::vis {

/// One pixel's colour + coverage.
struct Rgba {
  float r = 0.f, g = 0.f, b = 0.f, a = 0.f;

  /// Porter-Duff "over": place `front` in front of this (both premultiplied).
  void under(const Rgba& front) {
    // this = front OVER this, i.e. front is closer to the eye.
    r = front.r + (1.f - front.a) * r;
    g = front.g + (1.f - front.a) * g;
    b = front.b + (1.f - front.a) * b;
    a = front.a + (1.f - front.a) * a;
  }

  /// Accumulate a sample behind the current accumulation (front-to-back).
  void accumulate(const Rgba& sample) {
    r += (1.f - a) * sample.r;
    g += (1.f - a) * sample.g;
    b += (1.f - a) * sample.b;
    a += (1.f - a) * sample.a;
  }
};

/// RGBA (premultiplied) + depth image.
class Image {
 public:
  Image() = default;
  Image(int width, int height)
      : width_(width), height_(height),
        pixels_(static_cast<std::size_t>(width) *
                static_cast<std::size_t>(height)),
        depth_(pixels_.size(), kFarDepth) {}

  static constexpr float kFarDepth = 1e30f;

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t numPixels() const { return pixels_.size(); }

  Rgba& at(int x, int y) {
    return pixels_[static_cast<std::size_t>(y) *
                       static_cast<std::size_t>(width_) +
                   static_cast<std::size_t>(x)];
  }
  const Rgba& at(int x, int y) const {
    return pixels_[static_cast<std::size_t>(y) *
                       static_cast<std::size_t>(width_) +
                   static_cast<std::size_t>(x)];
  }
  Rgba& pixel(std::size_t i) { return pixels_[i]; }
  const Rgba& pixel(std::size_t i) const { return pixels_[i]; }
  float& depth(std::size_t i) { return depth_[i]; }
  float depth(std::size_t i) const { return depth_[i]; }

  const std::vector<Rgba>& pixels() const { return pixels_; }

  /// Convert to 8-bit RGB over a background grey.
  std::vector<std::uint8_t> toRgb8(float background = 0.08f) const;

 private:
  int width_ = 0, height_ = 0;
  std::vector<Rgba> pixels_;
  std::vector<float> depth_;
};

}  // namespace hemo::vis
