#pragma once
/// \file streamlines.hpp
/// \brief Distributed integral lines (stream-lines) — the Table I technique
/// with *high* communication cost and *hard* parallelisation: a particle
/// follows the flow wherever it leads, so it must hop between ranks as it
/// crosses the decomposition, exactly the neighbourhood-search burden the
/// paper's §IV.D calls out for path-line type algorithms.

#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"
#include "vis/sampler.hpp"

namespace hemo::vis {

struct StreamlineParams {
  /// Arc-length integration step in voxels (must stay below 1 so a 2-ring
  /// ghost field covers every RK4 substage).
  double stepVoxels = 0.4;
  int maxVertices = 1500;
  /// Terminate when |u| falls below this (lattice units).
  double minSpeed = 1e-9;
};

struct Polyline {
  std::uint32_t seedId = 0;
  std::vector<Vec3f> vertices;  ///< world coordinates
};

/// Collective streamline tracing statistics.
struct TraceStats {
  std::uint64_t migrations = 0;    ///< particle handoffs between ranks
  std::uint64_t rounds = 0;        ///< bulk-synchronous exchange rounds
  std::uint64_t integrationSteps = 0;
  std::uint64_t terminatedWall = 0;
  std::uint64_t terminatedSlow = 0;
  std::uint64_t terminatedLength = 0;
};

/// Collective: trace one streamline per seed (seed list identical on all
/// ranks). Returns the assembled polylines on rank 0 (empty elsewhere).
/// Requires `field` built with rings >= 2 and refreshed.
std::vector<Polyline> traceStreamlines(comm::Communicator& comm,
                                       const GhostedField& field,
                                       const std::vector<Vec3d>& seeds,
                                       const StreamlineParams& params,
                                       TraceStats* stats = nullptr);

/// Seed helper: points on a disc perpendicular to `normal` centred at
/// `center` (e.g. across an inlet), deterministic layout.
std::vector<Vec3d> discSeeds(const Vec3d& center, const Vec3d& normal,
                             double radius, int count);

}  // namespace hemo::vis
