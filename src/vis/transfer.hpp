#pragma once
/// \file transfer.hpp
/// \brief Piecewise-linear transfer function mapping scalar field values to
/// premultiplied RGBA — a steering-adjustable vis parameter.

#include <algorithm>
#include <vector>

#include "util/check.hpp"
#include "vis/image.hpp"

namespace hemo::vis {

class TransferFunction {
 public:
  struct ControlPoint {
    float value;  ///< scalar field value
    float r, g, b, a;
  };

  TransferFunction() = default;
  explicit TransferFunction(std::vector<ControlPoint> points)
      : points_(std::move(points)) {
    HEMO_CHECK(points_.size() >= 2);
    for (std::size_t i = 1; i < points_.size(); ++i) {
      HEMO_CHECK_MSG(points_[i].value > points_[i - 1].value,
                     "control points must be strictly ascending");
    }
  }

  /// A blue→white→red "blood flow" ramp over [lo, hi] with opacity rising
  /// towards hi.
  static TransferFunction bloodFlow(float lo, float hi) {
    const float m = 0.5f * (lo + hi);
    return TransferFunction({{lo, 0.05f, 0.05f, 0.45f, 0.00f},
                             {m, 0.85f, 0.75f, 0.75f, 0.06f},
                             {hi, 0.90f, 0.10f, 0.10f, 0.45f}});
  }

  /// Premultiplied RGBA at a scalar value (clamped to the ramp ends).
  Rgba sample(float v) const {
    if (v <= points_.front().value) return toRgba(points_.front());
    if (v >= points_.back().value) return toRgba(points_.back());
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), v,
        [](float x, const ControlPoint& p) { return x < p.value; });
    const ControlPoint& hi = *it;
    const ControlPoint& lo = *(it - 1);
    const float t = (v - lo.value) / (hi.value - lo.value);
    const ControlPoint mixed{
        v, lo.r + t * (hi.r - lo.r), lo.g + t * (hi.g - lo.g),
        lo.b + t * (hi.b - lo.b), lo.a + t * (hi.a - lo.a)};
    return toRgba(mixed);
  }

  const std::vector<ControlPoint>& points() const { return points_; }

 private:
  static Rgba toRgba(const ControlPoint& p) {
    return Rgba{p.r * p.a, p.g * p.a, p.b * p.a, p.a};
  }

  std::vector<ControlPoint> points_;
};

}  // namespace hemo::vis
