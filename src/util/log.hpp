#pragma once
/// \file log.hpp
/// \brief Thread-safe levelled logger. Rank-aware once a rank is attached via
/// thread-local state; quiet by default so tests and benchmarks stay clean.

#include <sstream>
#include <string>

namespace hemo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped. Defaults to kWarn.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Tag the calling thread with a rank id shown in log lines (-1 = untagged).
void setThreadLogRank(int rank);

/// Emit one log line (thread-safe, single write to stderr).
void logMessage(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace hemo

#define HEMO_LOG_DEBUG() ::hemo::detail::LogLine(::hemo::LogLevel::kDebug)
#define HEMO_LOG_INFO() ::hemo::detail::LogLine(::hemo::LogLevel::kInfo)
#define HEMO_LOG_WARN() ::hemo::detail::LogLine(::hemo::LogLevel::kWarn)
#define HEMO_LOG_ERROR() ::hemo::detail::LogLine(::hemo::LogLevel::kError)
