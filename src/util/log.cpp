#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hemo {

namespace {
std::atomic<int> gLevel{static_cast<int>(LogLevel::kWarn)};
std::mutex gLogMutex;
thread_local int tRank = -1;

const char* levelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void setLogLevel(LogLevel level) { gLevel.store(static_cast<int>(level)); }

LogLevel logLevel() { return static_cast<LogLevel>(gLevel.load()); }

void setThreadLogRank(int rank) { tRank = rank; }

void logMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < gLevel.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(gLogMutex);
  if (tRank >= 0) {
    std::fprintf(stderr, "[%s][rank %d] %s\n", levelName(level), tRank,
                 msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
  }
}

}  // namespace hemo
