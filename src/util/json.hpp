#pragma once
/// \file json.hpp
/// \brief Minimal strict JSON DOM parser (header-only, no dependencies).
///
/// Used by the postmortem inspector to load flight-recorder bundles, and by
/// tests to validate the exporters. Strict on the failure modes that matter
/// for hand-rolled emitters: unbalanced braces, missing commas, unescaped
/// strings, bare NaN/inf, trailing garbage. Parse errors throw
/// std::runtime_error with a byte offset.

#include <cctype>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hemo::util {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Lookup helpers with defaults, for tolerant bundle readers: a missing
  /// or mistyped field degrades to the default instead of throwing.
  double numberOr(const std::string& key, double fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->type == Type::kNumber ? v->number : fallback;
  }
  std::string stringOr(const std::string& key,
                       const std::string& fallback) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->type == Type::kString ? v->string : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skipWs();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error(std::string("JSON error at ") +
                             std::to_string(pos_) + ": " + what);
  }

  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  JsonValue value() {
    skipWs();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return {};
      default:
        return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = string();
      skipWs();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (std::isxdigit(static_cast<unsigned char>(
                    s_[pos_ + static_cast<std::size_t>(i)])) == 0) {
              fail("bad \\u escape");
            }
          }
          pos_ += 4;
          out.push_back('?');  // exact code point irrelevant to consumers
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
      v.boolean = false;
    }
    return v;
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("bad number");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("bad number");
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline JsonValue parseJson(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace hemo::util
