#pragma once
/// \file bbox.hpp
/// \brief Axis-aligned bounding boxes over integer lattice coordinates and
/// real space. Used by the voxelizer, partitioners, octree and renderers.

#include <algorithm>
#include <limits>

#include "util/vec.hpp"

namespace hemo {

/// Half-open integer lattice box [lo, hi) — hi is exclusive.
struct BoxI {
  Vec3i lo{0, 0, 0};
  Vec3i hi{0, 0, 0};

  static BoxI empty() {
    constexpr int kMax = std::numeric_limits<int>::max();
    constexpr int kMin = std::numeric_limits<int>::min();
    return {{kMax, kMax, kMax}, {kMin, kMin, kMin}};
  }

  bool isEmpty() const { return hi.x <= lo.x || hi.y <= lo.y || hi.z <= lo.z; }

  Vec3i extent() const { return hi - lo; }

  long long volume() const {
    if (isEmpty()) return 0;
    const Vec3i e = extent();
    return 1LL * e.x * e.y * e.z;
  }

  bool contains(const Vec3i& p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y &&
           p.z >= lo.z && p.z < hi.z;
  }

  void expand(const Vec3i& p) {
    lo.x = std::min(lo.x, p.x); lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x + 1); hi.y = std::max(hi.y, p.y + 1);
    hi.z = std::max(hi.z, p.z + 1);
  }

  BoxI intersect(const BoxI& o) const {
    BoxI r;
    r.lo = {std::max(lo.x, o.lo.x), std::max(lo.y, o.lo.y),
            std::max(lo.z, o.lo.z)};
    r.hi = {std::min(hi.x, o.hi.x), std::min(hi.y, o.hi.y),
            std::min(hi.z, o.hi.z)};
    return r;
  }

  bool operator==(const BoxI& o) const { return lo == o.lo && hi == o.hi; }
};

/// Closed real-space box [lo, hi].
struct BoxD {
  Vec3d lo{0, 0, 0};
  Vec3d hi{0, 0, 0};

  static BoxD empty() {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    return {{kInf, kInf, kInf}, {-kInf, -kInf, -kInf}};
  }

  bool isEmpty() const { return hi.x < lo.x || hi.y < lo.y || hi.z < lo.z; }

  Vec3d extent() const { return hi - lo; }
  Vec3d center() const { return (lo + hi) * 0.5; }

  bool contains(const Vec3d& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  void expand(const Vec3d& p) {
    lo.x = std::min(lo.x, p.x); lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x); hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }

  void expand(const BoxD& b) {
    if (b.isEmpty()) return;
    expand(b.lo);
    expand(b.hi);
  }

  /// Ray/box slab intersection. Returns true and the entry/exit parameters
  /// when the ray origin+t*dir (t>=0) crosses the box.
  bool rayIntersect(const Vec3d& origin, const Vec3d& dir, double& tNear,
                    double& tFar) const {
    double t0 = 0.0;
    double t1 = std::numeric_limits<double>::infinity();
    for (int a = 0; a < 3; ++a) {
      const double o = origin[a], d = dir[a];
      if (std::abs(d) < 1e-300) {
        if (o < lo[a] || o > hi[a]) return false;
        continue;
      }
      double ta = (lo[a] - o) / d;
      double tb = (hi[a] - o) / d;
      if (ta > tb) std::swap(ta, tb);
      t0 = std::max(t0, ta);
      t1 = std::min(t1, tb);
      if (t0 > t1) return false;
    }
    tNear = t0;
    tFar = t1;
    return true;
  }
};

}  // namespace hemo
