#pragma once
/// \file timer.hpp
/// \brief Wall-clock and per-thread CPU timers.
///
/// On a time-shared host, wall clock measures contention, not work. The
/// co-design performance model (core/perf_model.hpp) therefore consumes
/// per-thread CPU time: each simulated rank's *busy* time, which is what the
/// paper's load-balance arguments are about.

#include <chrono>
#include <cstdint>

#include "util/check.hpp"

namespace hemo {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-thread CPU time in seconds (CLOCK_THREAD_CPUTIME_ID).
double threadCpuSeconds();

/// Accumulates named phase durations; used per rank to split compute /
/// communication / visualisation time for the balance-equation experiments.
class PhaseTimer {
 public:
  /// Begin timing; pair with stop(). Nesting is not supported, and a second
  /// start() while running would silently discard the open interval — so it
  /// is rejected.
  void start() {
    HEMO_CHECK_MSG(!running_, "PhaseTimer::start() while already running");
    running_ = true;
    t0_ = threadCpuSeconds();
  }

  /// End timing and add the elapsed CPU time to the accumulator.
  void stop() {
    HEMO_CHECK_MSG(running_, "PhaseTimer::stop() without start()");
    total_ += threadCpuSeconds() - t0_;
    running_ = false;
  }

  bool running() const { return running_; }
  double total() const { return total_; }
  void reset() {
    total_ = 0.0;
    running_ = false;
  }

 private:
  double t0_ = 0.0;
  double total_ = 0.0;
  bool running_ = false;
};

/// Accumulates named phase durations in *wall* time. CPU-time PhaseTimers
/// cannot see blocked time, so measuring how much halo latency is hidden
/// behind compute (overlap window vs residual receive wait) needs this.
class WallPhaseTimer {
 public:
  void start() {
    HEMO_CHECK_MSG(!running_, "WallPhaseTimer::start() while already running");
    running_ = true;
    t0_ = clock::now();
  }
  void stop() {
    HEMO_CHECK_MSG(running_, "WallPhaseTimer::stop() without start()");
    total_ += std::chrono::duration<double>(clock::now() - t0_).count();
    running_ = false;
  }

  bool running() const { return running_; }
  double total() const { return total_; }
  void reset() {
    total_ = 0.0;
    running_ = false;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point t0_{};
  double total_ = 0.0;
  bool running_ = false;
};

/// RAII wrapper around PhaseTimer.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer& t) : t_(t) { t_.start(); }
  ~ScopedPhase() { t_.stop(); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& t_;
};

/// RAII wrapper around WallPhaseTimer.
class ScopedWallPhase {
 public:
  explicit ScopedWallPhase(WallPhaseTimer& t) : t_(t) { t_.start(); }
  ~ScopedWallPhase() { t_.stop(); }
  ScopedWallPhase(const ScopedWallPhase&) = delete;
  ScopedWallPhase& operator=(const ScopedWallPhase&) = delete;

 private:
  WallPhaseTimer& t_;
};

}  // namespace hemo
