#pragma once
/// \file vec.hpp
/// \brief Small fixed-size vector types used across lattice, geometry and
/// visualisation code. Header-only; everything is constexpr-friendly.

#include <array>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace hemo {

/// A 3-component vector of arithmetic type T.
template <typename T>
struct Vec3 {
  T x{}, y{}, z{};

  constexpr Vec3() = default;
  constexpr Vec3(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}
  constexpr explicit Vec3(T s) : x(s), y(s), z(s) {}

  constexpr T& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr const T& operator[](int i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3 operator+(const Vec3& o) const {
    return {static_cast<T>(x + o.x), static_cast<T>(y + o.y),
            static_cast<T>(z + o.z)};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {static_cast<T>(x - o.x), static_cast<T>(y - o.y),
            static_cast<T>(z - o.z)};
  }
  constexpr Vec3 operator*(T s) const {
    return {static_cast<T>(x * s), static_cast<T>(y * s),
            static_cast<T>(z * s)};
  }
  constexpr Vec3 operator/(T s) const {
    return {static_cast<T>(x / s), static_cast<T>(y / s),
            static_cast<T>(z / s)};
  }
  constexpr Vec3 operator-() const {
    return {static_cast<T>(-x), static_cast<T>(-y), static_cast<T>(-z)};
  }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(T s) {
    x *= s; y *= s; z *= s;
    return *this;
  }
  constexpr bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
  constexpr bool operator!=(const Vec3& o) const { return !(*this == o); }

  /// Component-wise product.
  constexpr Vec3 cwiseMul(const Vec3& o) const {
    return {static_cast<T>(x * o.x), static_cast<T>(y * o.y),
            static_cast<T>(z * o.z)};
  }
  constexpr T dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {static_cast<T>(y * o.z - z * o.y),
            static_cast<T>(z * o.x - x * o.z),
            static_cast<T>(x * o.y - y * o.x)};
  }
  constexpr T norm2() const { return dot(*this); }
  T norm() const { return std::sqrt(static_cast<double>(norm2())); }

  /// Unit vector; returns zero vector if the norm is ~0.
  Vec3 normalized() const {
    const T n = static_cast<T>(norm());
    if (n == T{}) return Vec3{};
    return *this / n;
  }

  template <typename U>
  constexpr Vec3<U> cast() const {
    return {static_cast<U>(x), static_cast<U>(y), static_cast<U>(z)};
  }
};

template <typename T>
constexpr Vec3<T> operator*(T s, const Vec3<T>& v) {
  return v * s;
}

template <typename T>
std::ostream& operator<<(std::ostream& os, const Vec3<T>& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

using Vec3d = Vec3<double>;
using Vec3f = Vec3<float>;
using Vec3i = Vec3<int>;
using Vec3i64 = Vec3<std::int64_t>;

/// Linear interpolation between a and b.
template <typename T>
constexpr Vec3<T> lerp(const Vec3<T>& a, const Vec3<T>& b, T t) {
  return a + (b - a) * t;
}

/// Symmetric 3x3 tensor stored as (xx, yy, zz, xy, xz, yz).
/// Used for the deviatoric stress tensor in the LB shear-stress extraction.
struct SymTensor3 {
  std::array<double, 6> m{};  // xx yy zz xy xz yz

  double& xx() { return m[0]; }
  double& yy() { return m[1]; }
  double& zz() { return m[2]; }
  double& xy() { return m[3]; }
  double& xz() { return m[4]; }
  double& yz() { return m[5]; }
  double xx() const { return m[0]; }
  double yy() const { return m[1]; }
  double zz() const { return m[2]; }
  double xy() const { return m[3]; }
  double xz() const { return m[4]; }
  double yz() const { return m[5]; }

  SymTensor3& operator+=(const SymTensor3& o) {
    for (int i = 0; i < 6; ++i) m[i] += o.m[i];
    return *this;
  }
  SymTensor3 operator*(double s) const {
    SymTensor3 r;
    for (int i = 0; i < 6; ++i) r.m[i] = m[i] * s;
    return r;
  }

  /// t · v for the full symmetric tensor.
  Vec3d apply(const Vec3d& v) const {
    return {xx() * v.x + xy() * v.y + xz() * v.z,
            xy() * v.x + yy() * v.y + yz() * v.z,
            xz() * v.x + yz() * v.y + zz() * v.z};
  }

  /// Frobenius norm sqrt(sum t_ab^2) counting off-diagonals twice.
  double frobenius() const {
    return std::sqrt(m[0] * m[0] + m[1] * m[1] + m[2] * m[2] +
                     2.0 * (m[3] * m[3] + m[4] * m[4] + m[5] * m[5]));
  }
};

}  // namespace hemo
