#pragma once
/// \file rng.hpp
/// \brief Deterministic, seedable PRNG (xoshiro256**) for workload
/// generation, particle seeding and LIC noise textures.
///
/// std::mt19937 distributions are not bit-reproducible across standard
/// libraries; benchmarks and property tests need identical streams on every
/// platform, so we carry our own generator and distribution helpers.

#include <cstdint>

namespace hemo {

/// xoshiro256** by Blackman & Vigna — fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 to expand the seed into the full state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniformInt(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (haveSpare_) {
      haveSpare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = __builtin_sqrt(-2.0 * __builtin_log(s) / s);
    spare_ = v * f;
    haveSpare_ = true;
    return u * f;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool haveSpare_ = false;
  double spare_ = 0.0;
};

}  // namespace hemo
