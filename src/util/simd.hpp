#pragma once
/// \file simd.hpp
/// \brief Portable explicit-SIMD wrapper for the LB hot loops.
///
/// One vector-of-double type (`simd::VecD`, `simd::kWidth` lanes) with the
/// handful of operations the vectorised collide+stream kernel needs:
/// load/store (aligned, unaligned and non-temporal), broadcast, the usual
/// arithmetic, and fused multiply-add. Three backends, chosen at compile
/// time:
///
///   * **AVX-512** (`__AVX512F__`): 8 lanes, `_mm512_*`.
///   * **AVX2** (`__AVX2__`): 4 lanes, `_mm256_*` (FMA when `__FMA__`).
///   * **scalar fallback** (baseline ISA, or `-DHEMO_SIMD=OFF` which
///     defines HEMO_SIMD_DISABLED): a 4-lane struct of doubles with plain
///     loops — the compiler auto-vectorises what the ISA allows, and the
///     kernel code stays identical.
///
/// The wrapper is deliberately tiny (in the spirit of serenity's vec16.h):
/// free functions over a trivial struct, no expression templates, nothing
/// the optimiser has to see through. Non-temporal stores are exposed as
/// `stream()` plus `storeFence()`; `copyDoubles()` packages the
/// peel-to-alignment / stream / tail pattern the streaming store pass uses.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#if !defined(HEMO_SIMD_DISABLED) && (defined(__AVX512F__) || defined(__AVX2__))
#include <immintrin.h>
#define HEMO_SIMD_X86 1
#endif

namespace hemo::simd {

#if defined(HEMO_SIMD_X86) && defined(__AVX512F__)

inline constexpr int kWidth = 8;
struct VecD {
  __m512d v;
};
inline const char* backendName() { return "avx512"; }

inline VecD zero() { return {_mm512_setzero_pd()}; }
inline VecD broadcast(double x) { return {_mm512_set1_pd(x)}; }
inline VecD load(const double* p) { return {_mm512_load_pd(p)}; }
inline VecD loadu(const double* p) { return {_mm512_loadu_pd(p)}; }
inline void store(double* p, VecD a) { _mm512_store_pd(p, a.v); }
inline void storeu(double* p, VecD a) { _mm512_storeu_pd(p, a.v); }
inline void stream(double* p, VecD a) { _mm512_stream_pd(p, a.v); }
inline void storeFence() { _mm_sfence(); }
inline VecD operator+(VecD a, VecD b) { return {_mm512_add_pd(a.v, b.v)}; }
inline VecD operator-(VecD a, VecD b) { return {_mm512_sub_pd(a.v, b.v)}; }
inline VecD operator*(VecD a, VecD b) { return {_mm512_mul_pd(a.v, b.v)}; }
inline VecD operator/(VecD a, VecD b) { return {_mm512_div_pd(a.v, b.v)}; }
/// a*b + c in one rounding.
inline VecD fmadd(VecD a, VecD b, VecD c) {
  return {_mm512_fmadd_pd(a.v, b.v, c.v)};
}

#elif defined(HEMO_SIMD_X86) && defined(__AVX2__)

inline constexpr int kWidth = 4;
struct VecD {
  __m256d v;
};
inline const char* backendName() { return "avx2"; }

inline VecD zero() { return {_mm256_setzero_pd()}; }
inline VecD broadcast(double x) { return {_mm256_set1_pd(x)}; }
inline VecD load(const double* p) { return {_mm256_load_pd(p)}; }
inline VecD loadu(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void store(double* p, VecD a) { _mm256_store_pd(p, a.v); }
inline void storeu(double* p, VecD a) { _mm256_storeu_pd(p, a.v); }
inline void stream(double* p, VecD a) { _mm256_stream_pd(p, a.v); }
inline void storeFence() { _mm_sfence(); }
inline VecD operator+(VecD a, VecD b) { return {_mm256_add_pd(a.v, b.v)}; }
inline VecD operator-(VecD a, VecD b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline VecD operator*(VecD a, VecD b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline VecD operator/(VecD a, VecD b) { return {_mm256_div_pd(a.v, b.v)}; }
inline VecD fmadd(VecD a, VecD b, VecD c) {
#if defined(__FMA__)
  return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
  return {_mm256_add_pd(_mm256_mul_pd(a.v, b.v), c.v)};
#endif
}

#else  // scalar fallback

inline constexpr int kWidth = 4;
struct VecD {
  double v[kWidth];
};
inline const char* backendName() { return "scalar"; }

inline VecD zero() { return VecD{}; }
inline VecD broadcast(double x) {
  VecD r;
  for (int i = 0; i < kWidth; ++i) r.v[i] = x;
  return r;
}
inline VecD load(const double* p) {
  VecD r;
  for (int i = 0; i < kWidth; ++i) r.v[i] = p[i];
  return r;
}
inline VecD loadu(const double* p) { return load(p); }
inline void store(double* p, VecD a) {
  for (int i = 0; i < kWidth; ++i) p[i] = a.v[i];
}
inline void storeu(double* p, VecD a) { store(p, a); }
inline void stream(double* p, VecD a) { store(p, a); }
inline void storeFence() {}
inline VecD operator+(VecD a, VecD b) {
  VecD r;
  for (int i = 0; i < kWidth; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}
inline VecD operator-(VecD a, VecD b) {
  VecD r;
  for (int i = 0; i < kWidth; ++i) r.v[i] = a.v[i] - b.v[i];
  return r;
}
inline VecD operator*(VecD a, VecD b) {
  VecD r;
  for (int i = 0; i < kWidth; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}
inline VecD operator/(VecD a, VecD b) {
  VecD r;
  for (int i = 0; i < kWidth; ++i) r.v[i] = a.v[i] / b.v[i];
  return r;
}
inline VecD fmadd(VecD a, VecD b, VecD c) {
  VecD r;
  for (int i = 0; i < kWidth; ++i) r.v[i] = a.v[i] * b.v[i] + c.v[i];
  return r;
}

#endif

inline VecD operator+=(VecD& a, VecD b) { return a = a + b; }
inline VecD operator-=(VecD& a, VecD b) { return a = a - b; }

/// Copy `n` doubles (non-overlapping). With `nt` the bulk of the copy uses
/// non-temporal stores: scalar peel until `dst` is 64-byte aligned, full
/// vectors streamed past the cache, scalar tail. Callers that streamed must
/// issue storeFence() before the data is handed to another thread.
inline void copyDoubles(double* dst, const double* src, std::size_t n,
                        bool nt) {
  // Short copies (frontier runs average a handful of sites) stay inline:
  // a libc memcpy call costs more than the copy itself.
  if (n < 2 * static_cast<std::size_t>(kWidth)) {
    for (std::size_t k = 0; k < n; ++k) dst[k] = src[k];
    return;
  }
#if defined(HEMO_SIMD_X86)
  if (nt && n >= 2 * static_cast<std::size_t>(kWidth)) {
    while ((reinterpret_cast<std::uintptr_t>(dst) & 63u) != 0 && n > 0) {
      *dst++ = *src++;
      --n;
    }
    while (n >= static_cast<std::size_t>(kWidth)) {
      stream(dst, loadu(src));
      dst += kWidth;
      src += kWidth;
      n -= static_cast<std::size_t>(kWidth);
    }
  }
#else
  (void)nt;
#endif
  if (n > 0) std::memcpy(dst, src, n * sizeof(double));
}

/// Ask the kernel to back [p, p+bytes) with transparent huge pages. A
/// D3Q19 sweep keeps ~40 direction planes (two slabs) hot at once; on 4 KiB
/// pages that overflows the first-level DTLB every vector group, and the
/// walk cost dominates the streamed stores. Must be called before first
/// touch so the pages can be allocated huge rather than collapsed later.
inline void adviseHugePages(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t first = (addr + 4095u) & ~std::uintptr_t{4095};
  const std::uintptr_t last = (addr + bytes) & ~std::uintptr_t{4095};
  if (last > first) {
    ::madvise(reinterpret_cast<void*>(first), last - first, MADV_HUGEPAGE);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

/// 64-byte-aligned allocator so every SoA direction plane (and the SIMD
/// block buffers) can use aligned vector loads and whole-line NT stores.
/// Large blocks are madvise'd for huge pages before they are touched.
template <typename T>
struct AlignedAlloc64 {
  using value_type = T;
  AlignedAlloc64() = default;
  template <typename U>
  AlignedAlloc64(const AlignedAlloc64<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t{64});
    if (n * sizeof(T) >= (std::size_t{2} << 20)) {
      adviseHugePages(p, n * sizeof(T));
    }
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{64});
  }
  template <typename U>
  bool operator==(const AlignedAlloc64<U>&) const {
    return true;
  }
};

template <typename T>
using AVector = std::vector<T, AlignedAlloc64<T>>;

}  // namespace hemo::simd
