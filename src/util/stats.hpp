#pragma once
/// \file stats.hpp
/// \brief Streaming statistics and load-balance metrics.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace hemo {

/// Welford streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Load-imbalance factor: max(load) / mean(load). 1.0 is perfect balance.
/// This is the metric the paper's pre-processing section optimises.
inline double imbalanceFactor(const std::vector<double>& loads) {
  HEMO_CHECK(!loads.empty());
  double sum = 0.0, mx = 0.0;
  for (double l : loads) {
    sum += l;
    mx = std::max(mx, l);
  }
  const double mean = sum / static_cast<double>(loads.size());
  if (mean <= 0.0) return 1.0;
  return mx / mean;
}

/// Relative L2 error ||a - b|| / ||b||; returns absolute L2 if ||b|| ~ 0.
inline double relativeL2(const std::vector<double>& a,
                         const std::vector<double>& b) {
  HEMO_CHECK(a.size() == b.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    num += d * d;
    den += b[i] * b[i];
  }
  if (den < 1e-300) return std::sqrt(num);
  return std::sqrt(num / den);
}

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin. Used by benchmarks to report distribution shapes.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins)
      : lo_(lo), hi_(hi), bins_(static_cast<std::size_t>(bins), 0) {
    HEMO_CHECK(hi > lo && bins > 0);
  }

  void add(double x) {
    const double f = (x - lo_) / (hi_ - lo_);
    auto i = static_cast<long>(f * static_cast<double>(bins_.size()));
    i = std::clamp<long>(i, 0, static_cast<long>(bins_.size()) - 1);
    ++bins_[static_cast<std::size_t>(i)];
    ++total_;
  }

  std::uint64_t bin(int i) const { return bins_[static_cast<std::size_t>(i)]; }
  int numBins() const { return static_cast<int>(bins_.size()); }
  std::uint64_t total() const { return total_; }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace hemo
