#pragma once
/// \file hilbert.hpp
/// \brief 3-D Hilbert curve index.
///
/// The Hilbert curve preserves locality strictly better than the Z-order
/// curve (no long jumps between octants), which makes it the stronger
/// space-filling-curve partitioner; the partition benchmarks compare both.
/// Implementation: Skilling's transpose algorithm (axes-to-transpose),
/// operating on `bits` bits per axis.

#include <cstdint>

#include "util/vec.hpp"

namespace hemo {

/// Hilbert index of (x,y,z), each coordinate < 2^bits, bits <= 21.
/// The result interleaves to 3*bits significant bits.
inline std::uint64_t hilbert3(std::uint32_t x, std::uint32_t y,
                              std::uint32_t z, int bits) {
  std::uint32_t X[3] = {x, y, z};

  // --- axes to transpose (Skilling) ---
  std::uint32_t M = 1u << (bits - 1);
  // Inverse undo.
  for (std::uint32_t Q = M; Q > 1; Q >>= 1) {
    const std::uint32_t P = Q - 1;
    for (int i = 0; i < 3; ++i) {
      if (X[i] & Q) {
        X[0] ^= P;  // invert
      } else {
        const std::uint32_t t = (X[0] ^ X[i]) & P;
        X[0] ^= t;
        X[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < 3; ++i) X[i] ^= X[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t Q = M; Q > 1; Q >>= 1) {
    if (X[2] & Q) t ^= Q - 1;
  }
  for (int i = 0; i < 3; ++i) X[i] ^= t;

  // --- interleave the transpose into one index (X[0] highest) ---
  std::uint64_t index = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < 3; ++i) {
      index = (index << 1) | ((X[i] >> b) & 1u);
    }
  }
  return index;
}

inline std::uint64_t hilbert3(const Vec3i& p, int bits) {
  return hilbert3(static_cast<std::uint32_t>(p.x),
                  static_cast<std::uint32_t>(p.y),
                  static_cast<std::uint32_t>(p.z), bits);
}

}  // namespace hemo
