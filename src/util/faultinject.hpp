#pragma once
/// \file faultinject.hpp
/// \brief Deterministic fault-injection harness for resiliency testing.
///
/// The paper's §III names error resiliency at extreme core counts as a
/// co-design challenge; recovery paths that are never exercised rot. This
/// harness lets tests and benches *deterministically* provoke the faults
/// the recovery layer claims to survive: dropped/truncated/delayed frames
/// on serving channels, failed sends, a killed simulated rank, corrupted
/// checkpoint bytes on their way to disk.
///
/// Hooks live at named *sites* (see FaultSite); each hook costs one relaxed
/// atomic load when the injector is disarmed, and compiles down to a no-op
/// under -DHEMO_FAULTINJECT=OFF (HEMO_FAULTINJECT_DISABLED), the production
/// setting. Decisions are seeded (hemo::Rng) and rank-addressable, so a
/// failing run replays bit-identically.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#ifndef HEMO_FAULTINJECT_DISABLED
#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#endif

namespace hemo::util {

/// Where a fault can strike. Each value corresponds to one hook in the
/// runtime; new sites are cheap (the rule table is searched linearly).
enum class FaultSite : std::uint8_t {
  kChannelSend = 0,   ///< serving/steering frame pushed into a ChannelEnd
  kCommSend,          ///< comm::Communicator::sendBytes (rank p2p)
  kCheckpointCommit,  ///< checkpoint file bytes on their way to disk
  kDriverStep,        ///< once per rank per driver step (kill point)
  kBrokerPoll,        ///< SessionBroker::drainCommands entry
  kCount_
};

inline constexpr int kNumFaultSites = static_cast<int>(FaultSite::kCount_);

/// What happens when a rule fires. Sites honour the subset that makes
/// sense for them (a checkpoint commit cannot be delayed, only mangled).
enum class FaultAction : std::uint8_t {
  kNone = 0,
  kDrop,      ///< discard the frame; the sender believes it was delivered
  kTruncate,  ///< cut the frame/file to `truncateTo` bytes
  kDelay,     ///< sleep `delayMillis` before delivering
  kCorrupt,   ///< flip bits (`corruptXor`) at a seeded byte position
  kFail,      ///< make the operation fail (send returns false / throws)
  kKill,      ///< throw RankKilledError out of the calling rank thread
  kHang,      ///< block at the fault site until released, then die. A kKill
              ///< unwinds cleanly and is detected instantly (thread exit);
              ///< kHang keeps the thread alive but silent, forcing the
              ///< liveness timeout + agreement detection path. The comm
              ///< runtime installs the release predicate ("this rank was
              ///< declared dead"), at which point the hang turns into a
              ///< RankKilledError so the thread stays joinable.
};

/// One armed fault. Matches by (site, rank); `afterHits` matching hits
/// pass through untouched, then up to `maxFires` fires happen, each gated
/// by a seeded coin of `probability`.
struct FaultRule {
  FaultSite site = FaultSite::kChannelSend;
  FaultAction action = FaultAction::kNone;
  int rank = -1;                ///< world rank to target; -1 = any rank
  std::uint64_t afterHits = 0;  ///< skip this many matching hits first
  std::uint64_t maxFires = ~std::uint64_t{0};
  double probability = 1.0;
  std::size_t truncateTo = 0;   ///< kTruncate: bytes to keep
  std::uint8_t corruptXor = 0xa5;
  int delayMillis = 0;
};

/// Thrown by a kKill fault: simulates a dying rank. The comm runtime's
/// abort propagation then unwinds the rest of the group exactly as it
/// would for a real crash.
class RankKilledError : public std::runtime_error {
 public:
  explicit RankKilledError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by a kFail fault on sites whose operation has no boolean result
/// path (comm sends, broker poll).
class InjectedFaultError : public std::runtime_error {
 public:
  explicit InjectedFaultError(const std::string& what)
      : std::runtime_error(what) {}
};

#ifndef HEMO_FAULTINJECT_DISABLED

/// Process-wide injector. Tests arm() it with a seed, add rules, run the
/// scenario, then disarm(); production code never arms it, so every hook
/// is a single relaxed load.
class FaultInjector {
 public:
  static FaultInjector& instance() {
    static FaultInjector injector;
    return injector;
  }

  /// Enable injection with a deterministic decision stream. Clears any
  /// previous rules and counters.
  void arm(std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(mutex_);
    rules_.clear();
    rng_ = Rng(seed);
    totalFired_ = 0;
    for (auto& f : firedBySite_) f = 0;
    armed_.store(true, std::memory_order_relaxed);
  }

  /// Disable injection and drop all rules. Hooks revert to no-ops.
  void disarm() {
    std::lock_guard<std::mutex> lock(mutex_);
    armed_.store(false, std::memory_order_relaxed);
    rules_.clear();
  }

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  void addRule(const FaultRule& rule) {
    std::lock_guard<std::mutex> lock(mutex_);
    rules_.push_back(RuleState{rule, 0, 0});
  }

  /// The hook entry point: what should happen at `site` on `rank`?
  /// Returns kNone when disarmed or no rule matches; otherwise the fired
  /// action, with the matched rule (for its parameters) in `ruleOut`.
  FaultAction decide(FaultSite site, int rank,
                     FaultRule* ruleOut = nullptr) {
    if (!armed_.load(std::memory_order_relaxed)) return FaultAction::kNone;
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& state : rules_) {
      const FaultRule& r = state.rule;
      if (r.site != site) continue;
      if (r.rank >= 0 && r.rank != rank) continue;
      if (state.hits++ < r.afterHits) continue;
      if (state.fires >= r.maxFires) continue;
      if (r.probability < 1.0 && rng_.uniform() >= r.probability) continue;
      ++state.fires;
      ++totalFired_;
      ++firedBySite_[static_cast<std::size_t>(site)];
      if (ruleOut != nullptr) *ruleOut = r;
      return r.action;
    }
    return FaultAction::kNone;
  }

  /// Convenience for byte-buffer sites (checkpoint commit): applies a
  /// kCorrupt/kTruncate decision in place. Corruption xors a seeded byte
  /// so CRC validation sees exactly what a bad disk would leave.
  template <typename ByteVec>
  void applyBufferFault(FaultSite site, int rank, ByteVec& bytes) {
    FaultRule rule;
    switch (decide(site, rank, &rule)) {
      case FaultAction::kCorrupt:
        if (!bytes.empty()) {
          const std::size_t pos = corruptPosition(bytes.size());
          bytes[pos] = static_cast<typename ByteVec::value_type>(
              static_cast<std::uint8_t>(bytes[pos]) ^ rule.corruptXor);
        }
        break;
      case FaultAction::kTruncate:
        if (bytes.size() > rule.truncateTo) bytes.resize(rule.truncateTo);
        break;
      default:
        break;
    }
  }

  /// Honour a kDelay decision (frame sites).
  static void sleepFor(int millis) {
    if (millis > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(millis));
    }
  }

  /// Install the predicate that frees kHang'd ranks (called with the hung
  /// world rank; true = release). comm::Runtime::run installs "this rank
  /// was declared dead" for its lifetime. Process-global like the injector
  /// itself: with several concurrent Runtimes the last installer wins.
  void setHangRelease(std::function<bool(int)> release) {
    std::lock_guard<std::mutex> lock(mutex_);
    hangRelease_ = std::move(release);
  }

  void clearHangRelease() {
    std::lock_guard<std::mutex> lock(mutex_);
    hangRelease_ = nullptr;
  }

  /// A kHang fault site parks here: silent (no sends, no heartbeats) until
  /// the release predicate fires, then dies with RankKilledError so the
  /// thread unwinds and stays joinable.
  [[noreturn]] void hangUntilReleased(int rank) {
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::function<bool(int)> release;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        release = hangRelease_;
      }
      if (release && release(rank)) {
        throw RankKilledError("rank " + std::to_string(rank) +
                              " hung at fault site until declared dead");
      }
    }
  }

  std::uint64_t fired() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return totalFired_;
  }

  std::uint64_t fired(FaultSite site) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return firedBySite_[static_cast<std::size_t>(site)];
  }

 private:
  FaultInjector() = default;

  std::size_t corruptPosition(std::size_t size) {
    // Skip the first 16 bytes so magics stay intact and the failure is a
    // CRC mismatch, not a trivially-rejected bad header.
    const std::size_t lo = size > 32 ? 16 : 0;
    return lo + static_cast<std::size_t>(rng_.uniformInt(size - lo));
  }

  struct RuleState {
    FaultRule rule;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  std::function<bool(int)> hangRelease_;
  std::vector<RuleState> rules_;
  Rng rng_{0};
  std::uint64_t totalFired_ = 0;
  std::uint64_t firedBySite_[kNumFaultSites] = {};
};

/// RAII arm/disarm for tests: faults never leak across test cases.
class FaultScope {
 public:
  explicit FaultScope(std::uint64_t seed) {
    FaultInjector::instance().arm(seed);
  }
  ~FaultScope() { FaultInjector::instance().disarm(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  FaultScope& rule(const FaultRule& r) {
    FaultInjector::instance().addRule(r);
    return *this;
  }
};

#else  // HEMO_FAULTINJECT_DISABLED: hooks compile to nothing.

class FaultInjector {
 public:
  static FaultInjector& instance() {
    static FaultInjector injector;
    return injector;
  }
  void arm(std::uint64_t) {}
  void disarm() {}
  bool armed() const { return false; }
  void addRule(const FaultRule&) {}
  FaultAction decide(FaultSite, int, FaultRule* = nullptr) {
    return FaultAction::kNone;
  }
  template <typename ByteVec>
  void applyBufferFault(FaultSite, int, ByteVec&) {}
  static void sleepFor(int) {}
  template <typename F>
  void setHangRelease(F&&) {}
  void clearHangRelease() {}
  [[noreturn]] void hangUntilReleased(int rank) {
    // Unreachable (decide() never returns kHang when disabled); keep the
    // contract anyway.
    throw RankKilledError("rank " + std::to_string(rank) + " hang released");
  }
  std::uint64_t fired() const { return 0; }
  std::uint64_t fired(FaultSite) const { return 0; }
};

class FaultScope {
 public:
  explicit FaultScope(std::uint64_t) {}
  FaultScope& rule(const FaultRule&) { return *this; }
};

#endif  // HEMO_FAULTINJECT_DISABLED

}  // namespace hemo::util
