#pragma once
/// \file check.hpp
/// \brief Runtime invariant checking that stays on in release builds.
///
/// HPC codes frequently run with NDEBUG; silent invariant violations in a
/// message-passing runtime deadlock instead of crashing. HEMO_CHECK therefore
/// always evaluates and throws a descriptive std::logic_error on failure so
/// that the thread-rank runtime can propagate it to the caller.

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>

namespace hemo {

/// Thrown when a HEMO_CHECK invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
/// Observer invoked with the failure message before the CheckError is
/// thrown. The flight recorder installs one so postmortem bundles record
/// the first failed invariant even when the unwind loses it; the hook must
/// not throw. nullptr disables.
using CheckFailHook = void (*)(const char* what);

inline std::atomic<CheckFailHook>& checkFailHookRef() {
  static std::atomic<CheckFailHook> hook{nullptr};
  return hook;
}

inline void setCheckFailHook(CheckFailHook hook) {
  checkFailHookRef().store(hook, std::memory_order_release);
}

[[noreturn]] inline void checkFail(const char* expr, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << "HEMO_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  const std::string what = os.str();
  if (auto* hook = checkFailHookRef().load(std::memory_order_acquire)) {
    hook(what.c_str());
  }
  throw CheckError(what);
}
}  // namespace detail

}  // namespace hemo

/// Always-on invariant check. Throws hemo::CheckError on failure.
#define HEMO_CHECK(expr)                                               \
  do {                                                                 \
    if (!(expr)) ::hemo::detail::checkFail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Invariant check with a streamed message: HEMO_CHECK_MSG(x > 0, "x=" << x).
#define HEMO_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream hemo_check_os_;                               \
      hemo_check_os_ << msg;                                           \
      ::hemo::detail::checkFail(#expr, __FILE__, __LINE__,             \
                                hemo_check_os_.str());                 \
    }                                                                  \
  } while (0)
