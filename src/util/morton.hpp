#pragma once
/// \file morton.hpp
/// \brief 3-D Morton (Z-order) codes, 21 bits per axis packed into 64 bits.
///
/// The hierarchical indexing scheme of Pascucci & Frank (paper ref [10]) that
/// the multiresolution module uses is built on interleaved-bit keys: a node at
/// octree level L with lattice coordinates (x,y,z) is keyed by
/// (L, morton3(x,y,z)), and parent/child moves are shifts by 3 bits.

#include <cstdint>

#include "util/vec.hpp"

namespace hemo {

namespace detail {
/// Spread the low 21 bits of v so each lands every 3rd bit.
constexpr std::uint64_t spreadBits3(std::uint64_t v) {
  v &= 0x1fffff;  // 21 bits
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

/// Inverse of spreadBits3.
constexpr std::uint64_t compactBits3(std::uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v | (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v | (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v | (v >> 16)) & 0x1f00000000ffffULL;
  v = (v | (v >> 32)) & 0x1fffffULL;
  return v;
}
}  // namespace detail

/// Interleave (x,y,z) — each must fit in 21 bits — into a 63-bit Morton code.
constexpr std::uint64_t morton3(std::uint32_t x, std::uint32_t y,
                                std::uint32_t z) {
  return detail::spreadBits3(x) | (detail::spreadBits3(y) << 1) |
         (detail::spreadBits3(z) << 2);
}

constexpr std::uint64_t morton3(const Vec3i& p) {
  return morton3(static_cast<std::uint32_t>(p.x),
                 static_cast<std::uint32_t>(p.y),
                 static_cast<std::uint32_t>(p.z));
}

/// Inverse: recover (x,y,z) from a Morton code.
constexpr Vec3i mortonDecode3(std::uint64_t code) {
  return {static_cast<int>(detail::compactBits3(code)),
          static_cast<int>(detail::compactBits3(code >> 1)),
          static_cast<int>(detail::compactBits3(code >> 2))};
}

/// Key of the parent cell one octree level up.
constexpr std::uint64_t mortonParent(std::uint64_t code) { return code >> 3; }

/// Key of child `octant` (0..7) one octree level down.
constexpr std::uint64_t mortonChild(std::uint64_t code, int octant) {
  return (code << 3) | static_cast<std::uint64_t>(octant & 7);
}

/// Which octant (0..7) of its parent this cell occupies.
constexpr int mortonOctant(std::uint64_t code) {
  return static_cast<int>(code & 7);
}

}  // namespace hemo
