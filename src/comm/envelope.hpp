#pragma once
/// \file envelope.hpp
/// \brief The unit of transfer between ranks: a tagged byte payload.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hemo::comm {

/// Matching constants (MPI_ANY_SOURCE analogue). Tags must be explicit.
inline constexpr int kAnySource = -1;

/// User point-to-point tags must stay below this; higher tags are reserved
/// for internal collective sequencing.
inline constexpr int kMaxUserTag = 1 << 20;

/// A message in flight. `context` separates communicators (like an MPI
/// context id) so traffic on split communicators can never cross-match.
///
/// `postTsNs`/`epoch` are the wait-state piggyback header (telemetry
/// waitstate.hpp): the sender stamps its trace-clock post time and current
/// step epoch, so the receiver can classify its blocked time as
/// late-sender vs late-receiver without any extra messages. Zero when the
/// sender ran without an attached telemetry context.
///
/// `shrinkEpoch` is the liveness piggyback (comm/liveness.hpp): the
/// sender's communicator generation (number of declared rank deaths it was
/// born after). Receivers on a post-recovery communicator discard
/// envelopes from older generations, so in-flight traffic from before a
/// death can never match a post-shrink receive.
struct Envelope {
  std::uint64_t context = 0;
  int source = 0;
  int tag = 0;
  std::int64_t postTsNs = 0;
  std::uint64_t epoch = 0;
  std::uint32_t shrinkEpoch = 0;
  std::vector<std::byte> payload;
};

}  // namespace hemo::comm
