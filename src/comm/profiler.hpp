#pragma once
/// \file profiler.hpp
/// \brief Per-rank, per-traffic-class communication counters.
///
/// Table I of the paper ranks visualisation techniques by communication
/// cost. The runtime counts every byte and message a rank sends, classified
/// by what the code was doing (halo exchange, collective, visualisation,
/// steering, I/O redistribution, partitioning), so benchmarks can report
/// exact communication volumes rather than wall-clock proxies.

#include <array>
#include <cstdint>
#include <string>

namespace hemo::comm {

enum class Traffic {
  kOther = 0,
  kHalo,        ///< LB distribution halo exchange
  kCollective,  ///< internal collective traffic
  kVis,         ///< visualisation (compositing, particle migration, ...)
  kSteer,       ///< steering command/report fan-out
  kIo,          ///< geometry read + redistribution
  kPartition,   ///< partitioner traffic
  kRepart,      ///< live repartitioning site-block migration
  kCount_
};

inline const char* trafficName(Traffic t) {
  switch (t) {
    case Traffic::kOther: return "other";
    case Traffic::kHalo: return "halo";
    case Traffic::kCollective: return "collective";
    case Traffic::kVis: return "vis";
    case Traffic::kSteer: return "steer";
    case Traffic::kIo: return "io";
    case Traffic::kPartition: return "partition";
    case Traffic::kRepart: return "repart";
    default: return "?";
  }
}

inline constexpr int kNumTrafficClasses = static_cast<int>(Traffic::kCount_);

/// Counters for one rank. Only ever written by that rank's own thread while
/// it is running; read by others after Runtime::run() joins.
struct TrafficCounters {
  struct PerClass {
    std::uint64_t messagesSent = 0;
    std::uint64_t bytesSent = 0;
    std::uint64_t messagesReceived = 0;
    std::uint64_t bytesReceived = 0;

    PerClass& operator+=(const PerClass& o) {
      messagesSent += o.messagesSent;
      bytesSent += o.bytesSent;
      messagesReceived += o.messagesReceived;
      bytesReceived += o.bytesReceived;
      return *this;
    }
  };

  std::array<PerClass, kNumTrafficClasses> perClass{};

  PerClass& of(Traffic t) { return perClass[static_cast<int>(t)]; }
  const PerClass& of(Traffic t) const {
    return perClass[static_cast<int>(t)];
  }

  PerClass total() const {
    PerClass sum;
    for (const auto& c : perClass) sum += c;
    return sum;
  }

  TrafficCounters& operator+=(const TrafficCounters& o) {
    for (int i = 0; i < kNumTrafficClasses; ++i) perClass[i] += o.perClass[i];
    return *this;
  }

  void reset() { perClass.fill(PerClass{}); }
};

}  // namespace hemo::comm
