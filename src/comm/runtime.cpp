#include "comm/runtime.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <numeric>
#include <thread>

#include "telemetry/flightrec.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"

namespace hemo::comm {

namespace {

/// Flow-arrow id tying one halo send to its receive: both sides derive it
/// from (sender world rank, receiver world rank, step epoch). Collisions
/// only smudge a viewer arrow, so a 64-bit mix is plenty.
std::uint64_t haloFlowId(int srcWorld, int dstWorld, std::uint64_t epoch) {
  return detail::mix64(epoch + 1,
                       (static_cast<std::uint64_t>(srcWorld) << 20) |
                           static_cast<std::uint64_t>(dstWorld));
}

}  // namespace

// --- Communicator methods needing Runtime ---------------------------------

void Communicator::sendBytes(int dest, int tag, const void* data,
                             std::size_t n) {
  HEMO_CHECK_MSG(dest >= 0 && dest < size(), "bad dest rank " << dest);
  {
    // Fault hook: rank-addressable send failures and simulated rank death.
    // A thrown fault unwinds this rank's stack into Runtime::run, whose
    // abort propagation wakes every blocked peer — the same path a real
    // crash takes.
    auto& fi = util::FaultInjector::instance();
    if (fi.armed()) {
      util::FaultRule rule;
      switch (fi.decide(util::FaultSite::kCommSend, worldRank(), &rule)) {
        case util::FaultAction::kDrop:
          return;  // message lost in flight
        case util::FaultAction::kDelay:
          util::FaultInjector::sleepFor(rule.delayMillis);
          break;
        case util::FaultAction::kFail:
          throw util::InjectedFaultError("injected send failure on rank " +
                                         std::to_string(worldRank()));
        case util::FaultAction::kKill:
          throw util::RankKilledError("injected rank death on rank " +
                                      std::to_string(worldRank()));
        default:
          break;
      }
    }
  }
  Envelope env;
  env.context = context_;
  env.source = rank_;
  env.tag = tag;
  env.payload.resize(n);
  if (n > 0) std::memcpy(env.payload.data(), data, n);
#ifndef HEMO_TELEMETRY_DISABLED
  // Piggyback the wait-state header (post time + step epoch) so the
  // receiver can classify its blocked time; halo sends also drop the
  // sender half of a Chrome-trace flow arrow.
  if (auto* t = telemetry::threadTelemetry()) {
    env.epoch = t->waitState().epoch();
    env.postTsNs = telemetry::traceNowNs();
    if (traffic_ == Traffic::kHalo && t->tracer().enabled()) {
      t->tracer().flow(
          telemetry::Category::kHaloSend, "halo.flow",
          telemetry::SpanPhase::kFlowStart,
          haloFlowId(worldRank(), groupToWorld_[static_cast<std::size_t>(dest)],
                     env.epoch),
          env.postTsNs);
    }
  }
#endif
  auto& c = counters().of(traffic_);
  ++c.messagesSent;
  c.bytesSent += n;
  rt_->mailbox(groupToWorld_[static_cast<std::size_t>(dest)])
      .push(std::move(env));
}

Envelope Communicator::popClassified(int source, int tag) {
#ifndef HEMO_TELEMETRY_DISABLED
  auto* t = telemetry::threadTelemetry();
  if (t != nullptr && t->waitState().enabled()) {
    const std::int64_t waitBegin = telemetry::traceNowNs();
    Envelope env = rt_->mailbox(worldRank()).pop(context_, source, tag);
    const std::int64_t waitEnd = telemetry::traceNowNs();
    const int srcWorld =
        groupToWorld_[static_cast<std::size_t>(env.source)];
    t->waitState().recordRecv(static_cast<int>(traffic_),
                              traffic_ == Traffic::kCollective, srcWorld,
                              waitBegin, waitEnd, env.postTsNs);
    if (traffic_ == Traffic::kHalo && t->tracer().enabled()) {
      t->tracer().flow(telemetry::Category::kHaloRecvWait, "halo.flow",
                       telemetry::SpanPhase::kFlowEnd,
                       haloFlowId(srcWorld, worldRank(), env.epoch), waitEnd);
    }
    return env;
  }
#endif
  return rt_->mailbox(worldRank()).pop(context_, source, tag);
}

std::vector<std::byte> Communicator::recvBytes(int source, int tag,
                                               int* sourceOut) {
  Envelope env = popClassified(source, tag);
  auto& c = counters().of(traffic_);
  ++c.messagesReceived;
  c.bytesReceived += env.payload.size();
  if (sourceOut != nullptr) *sourceOut = env.source;
  return std::move(env.payload);
}

void Communicator::recvBytesInto(int source, int tag, void* dst,
                                 std::size_t n) {
  Envelope env = popClassified(source, tag);
  HEMO_CHECK_MSG(env.payload.size() == n,
                 "recvBytesInto size mismatch: got " << env.payload.size()
                                                     << " want " << n);
  auto& c = counters().of(traffic_);
  ++c.messagesReceived;
  c.bytesReceived += n;
  if (n > 0) std::memcpy(dst, env.payload.data(), n);
}

bool Communicator::tryRecvBytes(int source, int tag,
                                std::vector<std::byte>& payload,
                                int* sourceOut) {
  Envelope env;
  if (!rt_->mailbox(worldRank()).tryPop(context_, source, tag, env)) {
    return false;
  }
  auto& c = counters().of(traffic_);
  ++c.messagesReceived;
  c.bytesReceived += env.payload.size();
  if (sourceOut != nullptr) *sourceOut = env.source;
  payload = std::move(env.payload);
  return true;
}

bool Communicator::probe(int source, int tag) const {
  return rt_->mailbox(groupToWorld_[static_cast<std::size_t>(rank_)])
      .probe(context_, source, tag);
}

void Communicator::barrier() {
  // Internal collective traffic defaults to kCollective but inherits a more
  // specific class the caller set (e.g. steering fan-out counts as kSteer).
  TrafficScope scope(*this, traffic_ == Traffic::kOther
                                ? Traffic::kCollective
                                : traffic_);
  const int n = size();
  const int tag = nextCollectiveTag();
  const std::byte token{0};
  for (int k = 1; k < n; k <<= 1) {
    sendBytes((rank_ + k) % n, tag, &token, 1);
    recvBytes((rank_ - k + n) % n, tag);
  }
}

void Communicator::bcastBytes(std::vector<std::byte>& buffer, int root) {
  TrafficScope scope(*this, traffic_ == Traffic::kOther
                                ? Traffic::kCollective
                                : traffic_);
  const int n = size();
  HEMO_CHECK(root >= 0 && root < n);
  if (n == 1) return;
  const int tag = nextCollectiveTag();
  const int vrank = (rank_ - root + n) % n;
  // Receive from the parent (clear the vrank's lowest set bit).
  int highestMask = 1;
  while (highestMask < n) highestMask <<= 1;
  if (vrank != 0) {
    int mask = 1;
    while (!(vrank & mask)) mask <<= 1;
    const int parent = ((vrank & ~mask) + root) % n;
    buffer = recvBytes(parent, tag);
  }
  // Forward to children: vrank + m for each m below our lowest set bit
  // (root forwards for every m < n), highest first.
  int lowBit = highestMask;
  if (vrank != 0) {
    lowBit = 1;
    while (!(vrank & lowBit)) lowBit <<= 1;
  }
  for (int m = lowBit >> 1; m >= 1; m >>= 1) {
    const int childV = vrank + m;
    if (childV < n) {
      sendBytes((childV + root) % n, tag, buffer.data(), buffer.size());
    }
  }
}

Communicator Communicator::split(int color, int key) {
  struct Triple {
    int color, key, groupRank;
  };
  std::uint64_t seq;
  std::vector<Triple> all;
  {
    TrafficScope scope(*this, Traffic::kCollective);
    seq = collectiveSeq_;
    all = allgather(Triple{color, key, rank_});
  }
  std::vector<Triple> mine;
  for (const auto& t : all) {
    if (t.color == color) mine.push_back(t);
  }
  std::stable_sort(mine.begin(), mine.end(), [](const Triple& a,
                                                const Triple& b) {
    return a.key != b.key ? a.key < b.key : a.groupRank < b.groupRank;
  });
  std::vector<int> newGroupToWorld;
  int newRank = -1;
  for (const auto& t : mine) {
    if (t.groupRank == rank_) newRank = static_cast<int>(newGroupToWorld.size());
    newGroupToWorld.push_back(
        groupToWorld_[static_cast<std::size_t>(t.groupRank)]);
  }
  HEMO_CHECK(newRank >= 0);
  // All members derive the identical context id; disjoint colors (and
  // successive splits) get distinct ids.
  const std::uint64_t ctx = detail::mix64(
      detail::mix64(context_, seq), static_cast<std::uint64_t>(color) + 1);
  return Communicator(rt_, ctx, newRank, std::move(newGroupToWorld));
}

TrafficCounters& Communicator::counters() { return rt_->counters(worldRank()); }

const TrafficCounters& Communicator::counters() const {
  return rt_->counters(groupToWorld_[static_cast<std::size_t>(rank_)]);
}

// --- Runtime ----------------------------------------------------------------

Runtime::Runtime(int size) : size_(size) {
  HEMO_CHECK_MSG(size >= 1, "runtime needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  telemetry_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    telemetry_.push_back(std::make_unique<telemetry::RankTelemetry>(i));
    // Make every rank's flight recorder reachable from the crash paths
    // (signal/terminate handlers, flush-on-rank-exception). Flushing stays
    // a no-op until a driver arms the registry with a bundle directory.
    telemetry::FlightRegistry::instance().registerRank(
        &telemetry_.back()->flightRecorder(), &telemetry_.back()->tracer());
  }
  counters_.resize(static_cast<std::size_t>(size));
}

Runtime::~Runtime() {
  for (auto& t : telemetry_) {
    telemetry::FlightRegistry::instance().unregisterRank(&t->flightRecorder());
  }
}

void Runtime::run(const std::function<void(Communicator&)>& rankMain) {
  for (auto& mb : mailboxes_) mb->resetAbort();

  std::vector<int> worldGroup(static_cast<std::size_t>(size_));
  std::iota(worldGroup.begin(), worldGroup.end(), 0);

  std::mutex errMutex;
  std::exception_ptr firstError;

  auto threadMain = [&](int rank) {
    setThreadLogRank(rank);
    telemetry::ThreadTelemetryScope tscope(
        telemetry_[static_cast<std::size_t>(rank)].get());
    Communicator comm(this, /*context=*/1, rank, worldGroup);
    try {
      rankMain(comm);
    } catch (...) {
      bool isFirst = false;
      {
        std::lock_guard<std::mutex> lock(errMutex);
        if (!firstError) {
          firstError = std::current_exception();
          isFirst = true;
        }
      }
      // Wake every blocked receive so the group can unwind.
      for (auto& mb : mailboxes_) mb->abort();
      // The first failing rank writes the postmortem bundle (if a driver
      // armed the registry) while the rest of the group is still
      // unwinding — the recorders' mutexes keep that safe.
      if (isFirst) {
        std::string detail = "unknown exception";
        try {
          throw;
        } catch (const std::exception& e) {
          detail = e.what();
        } catch (...) {
        }
        auto& registry = telemetry::FlightRegistry::instance();
        if (registry.armed()) registry.flush("rank-exception", detail);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back(threadMain, r);
  }
  for (auto& t : threads) t.join();

  if (firstError) std::rethrow_exception(firstError);
}

const TrafficCounters& Runtime::counters(int worldRank) const {
  return counters_[static_cast<std::size_t>(worldRank)];
}

TrafficCounters& Runtime::counters(int worldRank) {
  return counters_[static_cast<std::size_t>(worldRank)];
}

TrafficCounters Runtime::totalCounters() const {
  TrafficCounters sum;
  for (const auto& c : counters_) sum += c;
  return sum;
}

void Runtime::resetCounters() {
  for (auto& c : counters_) c.reset();
}

std::vector<telemetry::RankTrace> Runtime::drainTraces() {
  std::vector<telemetry::RankTrace> out;
  out.reserve(telemetry_.size());
  for (auto& t : telemetry_) {
    telemetry::RankTrace rt;
    rt.rank = t->rank();
    // Retained flight-recorder tail first (older), then the pending ring
    // events — the recorder's mutex serialises all ring consumers.
    rt.events = t->flightRecorder().takeTrace(t->tracer());
    rt.dropped = t->tracer().dropped();
    out.push_back(std::move(rt));
  }
  return out;
}

bool Runtime::writeChromeTrace(const std::string& path) {
  return telemetry::writeChromeTrace(path, drainTraces());
}

void Runtime::resetTelemetry() {
  for (auto& t : telemetry_) {
    t->flightRecorder().takeTrace(t->tracer());
    t->metrics().reset();
    t->waitState().reset();
  }
}

}  // namespace hemo::comm
