#include "comm/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <numeric>
#include <thread>

#include "telemetry/flightrec.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"

namespace hemo::comm {

namespace {

/// Flow-arrow id tying one halo send to its receive: both sides derive it
/// from (sender world rank, receiver world rank, step epoch). Collisions
/// only smudge a viewer arrow, so a 64-bit mix is plenty.
std::uint64_t haloFlowId(int srcWorld, int dstWorld, std::uint64_t epoch) {
  return detail::mix64(epoch + 1,
                       (static_cast<std::uint64_t>(srcWorld) << 20) |
                           static_cast<std::uint64_t>(dstWorld));
}

}  // namespace

// --- Communicator methods needing Runtime ---------------------------------

void Communicator::sendBytes(int dest, int tag, const void* data,
                             std::size_t n) {
  HEMO_CHECK_MSG(dest >= 0 && dest < size(), "bad dest rank " << dest);
  {
    // Fault hook: rank-addressable send failures and simulated rank death.
    // A thrown fault unwinds this rank's stack into Runtime::run, whose
    // abort propagation wakes every blocked peer — the same path a real
    // crash takes.
    auto& fi = util::FaultInjector::instance();
    if (fi.armed()) {
      util::FaultRule rule;
      switch (fi.decide(util::FaultSite::kCommSend, worldRank(), &rule)) {
        case util::FaultAction::kDrop:
          return;  // message lost in flight
        case util::FaultAction::kDelay:
          util::FaultInjector::sleepFor(rule.delayMillis);
          break;
        case util::FaultAction::kFail:
          throw util::InjectedFaultError("injected send failure on rank " +
                                         std::to_string(worldRank()));
        case util::FaultAction::kKill:
          throw util::RankKilledError("injected rank death on rank " +
                                      std::to_string(worldRank()));
        case util::FaultAction::kHang:
          // Block at the fault site until the survivors declare this rank
          // dead (exercises the timeout/agreement detection path), then
          // die for real so the thread can be joined.
          fi.hangUntilReleased(worldRank());
        default:
          break;
      }
    }
  }
  noteAlive();
  Envelope env;
  env.context = context_;
  env.source = rank_;
  env.tag = tag;
  env.shrinkEpoch = bornEpoch_;
  env.payload.resize(n);
  if (n > 0) std::memcpy(env.payload.data(), data, n);
#ifndef HEMO_TELEMETRY_DISABLED
  // Piggyback the wait-state header (post time + step epoch) so the
  // receiver can classify its blocked time; halo sends also drop the
  // sender half of a Chrome-trace flow arrow.
  if (auto* t = telemetry::threadTelemetry()) {
    env.epoch = t->waitState().epoch();
    env.postTsNs = telemetry::traceNowNs();
    if (traffic_ == Traffic::kHalo && t->tracer().enabled()) {
      t->tracer().flow(
          telemetry::Category::kHaloSend, "halo.flow",
          telemetry::SpanPhase::kFlowStart,
          haloFlowId(worldRank(), groupToWorld_[static_cast<std::size_t>(dest)],
                     env.epoch),
          env.postTsNs);
    }
  }
#endif
  auto& c = counters().of(traffic_);
  ++c.messagesSent;
  c.bytesSent += n;
  rt_->mailbox(groupToWorld_[static_cast<std::size_t>(dest)])
      .push(std::move(env));
}

void Communicator::noteAlive() {
  if (rt_->liveness().enabled) rt_->deathBoard().noteAlive(worldRank());
}

Envelope Communicator::popBounded(int source, int tag) {
  Mailbox& mb = rt_->mailbox(worldRank());
  const LivenessConfig& cfg = rt_->liveness();
  if (!cfg.enabled) return mb.pop(context_, source, tag);

  DeathBoard& board = rt_->deathBoard();
  const int me = worldRank();
  const int srcWorld =
      source == kAnySource ? -1 : groupToWorld_[static_cast<std::size_t>(source)];
  const std::int64_t waitStartNs = DeathBoard::nowNs();
  const std::int64_t timeoutNs =
      static_cast<std::int64_t>(cfg.timeoutMs) * 1'000'000;
  const auto slice = std::chrono::milliseconds(cfg.pollMs > 0 ? cfg.pollMs : 1);
  Envelope env;
  for (;;) {
    if (mb.popFor(context_, source, tag, slice, env)) {
      // Discard stale pre-shrink traffic (context separation makes this a
      // belt-and-braces check; the purge at shrink() does the bulk).
      if (env.shrinkEpoch < bornEpoch_) continue;
      return env;
    }
    // Each empty slice doubles as this rank's own heartbeat: a rank
    // blocked on one peer must not look dead to a third.
    board.noteAlive(me);
    if (srcWorld >= 0 && board.dead(srcWorld)) {
      throw PeerDeadError(srcWorld, "rank " + std::to_string(me) +
                                        " blocked on declared-dead rank " +
                                        std::to_string(srcWorld) +
                                        " (tag=" + std::to_string(tag) + ")");
    }
    if (board.epoch() != bornEpoch_) {
      // A death anywhere invalidates this communicator generation: every
      // survivor must unwind to the recovery layer, not just the ranks
      // that were talking to the dead peer.
      int culprit = -1;
      for (const int w : groupToWorld_) {
        if (w != me && board.dead(w)) {
          culprit = w;
          break;
        }
      }
      const auto ds = board.deadSet();
      if (culprit < 0 && !ds.empty()) culprit = ds.front();
      throw PeerDeadError(
          culprit, "rank " + std::to_string(me) +
                       " abandoning communicator epoch " +
                       std::to_string(bornEpoch_) + ": " +
                       std::to_string(ds.size()) + " rank(s) declared dead");
    }
    if (srcWorld >= 0) {
      if (board.exited(srcWorld)) {
        board.declareDead(srcWorld);
        throw PeerDeadError(
            srcWorld,
            "rank " + std::to_string(me) + " waiting on rank " +
                std::to_string(srcWorld) +
                (board.finished(srcWorld) ? " which already finished"
                                          : " which crashed") +
                " (tag=" + std::to_string(tag) + ")");
      }
      const std::int64_t seen =
          std::max(board.lastSeenNs(srcWorld), waitStartNs);
      if (DeathBoard::nowNs() - seen > timeoutNs) {
        board.declareDead(srcWorld);
        throw PeerDeadError(srcWorld,
                            "rank " + std::to_string(me) + " accuses rank " +
                                std::to_string(srcWorld) + ": silent for " +
                                std::to_string(cfg.timeoutMs) +
                                " ms (tag=" + std::to_string(tag) + ")");
      }
    } else if (DeathBoard::nowNs() - waitStartNs >
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Mailbox::kDeadlockTimeout)
                   .count()) {
      // kAnySource: nobody specific to accuse; keep the legacy backstop.
      throw AbortError("receive timed out (likely deadlock): tag=" +
                       std::to_string(tag));
    }
  }
}

Envelope Communicator::popClassified(int source, int tag) {
#ifndef HEMO_TELEMETRY_DISABLED
  auto* t = telemetry::threadTelemetry();
  if (t != nullptr && t->waitState().enabled()) {
    const std::int64_t waitBegin = telemetry::traceNowNs();
    Envelope env = popBounded(source, tag);
    const std::int64_t waitEnd = telemetry::traceNowNs();
    const int srcWorld =
        groupToWorld_[static_cast<std::size_t>(env.source)];
    t->waitState().recordRecv(static_cast<int>(traffic_),
                              traffic_ == Traffic::kCollective, srcWorld,
                              waitBegin, waitEnd, env.postTsNs);
    if (traffic_ == Traffic::kHalo && t->tracer().enabled()) {
      t->tracer().flow(telemetry::Category::kHaloRecvWait, "halo.flow",
                       telemetry::SpanPhase::kFlowEnd,
                       haloFlowId(srcWorld, worldRank(), env.epoch), waitEnd);
    }
    return env;
  }
#endif
  return popBounded(source, tag);
}

std::vector<std::byte> Communicator::recvBytes(int source, int tag,
                                               int* sourceOut) {
  Envelope env = popClassified(source, tag);
  auto& c = counters().of(traffic_);
  ++c.messagesReceived;
  c.bytesReceived += env.payload.size();
  if (sourceOut != nullptr) *sourceOut = env.source;
  return std::move(env.payload);
}

void Communicator::recvBytesInto(int source, int tag, void* dst,
                                 std::size_t n) {
  Envelope env = popClassified(source, tag);
  HEMO_CHECK_MSG(env.payload.size() == n,
                 "recvBytesInto size mismatch: got " << env.payload.size()
                                                     << " want " << n);
  auto& c = counters().of(traffic_);
  ++c.messagesReceived;
  c.bytesReceived += n;
  if (n > 0) std::memcpy(dst, env.payload.data(), n);
}

bool Communicator::tryRecvBytes(int source, int tag,
                                std::vector<std::byte>& payload,
                                int* sourceOut) {
  Envelope env;
  if (!rt_->mailbox(worldRank()).tryPop(context_, source, tag, env)) {
    return false;
  }
  auto& c = counters().of(traffic_);
  ++c.messagesReceived;
  c.bytesReceived += env.payload.size();
  if (sourceOut != nullptr) *sourceOut = env.source;
  payload = std::move(env.payload);
  return true;
}

bool Communicator::probe(int source, int tag) const {
  return rt_->mailbox(groupToWorld_[static_cast<std::size_t>(rank_)])
      .probe(context_, source, tag);
}

void Communicator::barrier() {
  // Internal collective traffic defaults to kCollective but inherits a more
  // specific class the caller set (e.g. steering fan-out counts as kSteer).
  TrafficScope scope(*this, traffic_ == Traffic::kOther
                                ? Traffic::kCollective
                                : traffic_);
  const int n = size();
  const int tag = nextCollectiveTag();
  const std::byte token{0};
  for (int k = 1; k < n; k <<= 1) {
    sendBytes((rank_ + k) % n, tag, &token, 1);
    recvBytes((rank_ - k + n) % n, tag);
  }
}

void Communicator::bcastBytes(std::vector<std::byte>& buffer, int root) {
  TrafficScope scope(*this, traffic_ == Traffic::kOther
                                ? Traffic::kCollective
                                : traffic_);
  const int n = size();
  HEMO_CHECK(root >= 0 && root < n);
  if (n == 1) return;
  const int tag = nextCollectiveTag();
  const int vrank = (rank_ - root + n) % n;
  // Receive from the parent (clear the vrank's lowest set bit).
  int highestMask = 1;
  while (highestMask < n) highestMask <<= 1;
  if (vrank != 0) {
    int mask = 1;
    while (!(vrank & mask)) mask <<= 1;
    const int parent = ((vrank & ~mask) + root) % n;
    buffer = recvBytes(parent, tag);
  }
  // Forward to children: vrank + m for each m below our lowest set bit
  // (root forwards for every m < n), highest first.
  int lowBit = highestMask;
  if (vrank != 0) {
    lowBit = 1;
    while (!(vrank & lowBit)) lowBit <<= 1;
  }
  for (int m = lowBit >> 1; m >= 1; m >>= 1) {
    const int childV = vrank + m;
    if (childV < n) {
      sendBytes((childV + root) % n, tag, buffer.data(), buffer.size());
    }
  }
}

Communicator Communicator::split(int color, int key) {
  struct Triple {
    int color, key, groupRank;
  };
  std::uint64_t seq;
  std::vector<Triple> all;
  {
    TrafficScope scope(*this, Traffic::kCollective);
    seq = collectiveSeq_;
    all = allgather(Triple{color, key, rank_});
  }
  std::vector<Triple> mine;
  for (const auto& t : all) {
    if (t.color == color) mine.push_back(t);
  }
  std::stable_sort(mine.begin(), mine.end(), [](const Triple& a,
                                                const Triple& b) {
    return a.key != b.key ? a.key < b.key : a.groupRank < b.groupRank;
  });
  std::vector<int> newGroupToWorld;
  int newRank = -1;
  for (const auto& t : mine) {
    if (t.groupRank == rank_) newRank = static_cast<int>(newGroupToWorld.size());
    newGroupToWorld.push_back(
        groupToWorld_[static_cast<std::size_t>(t.groupRank)]);
  }
  HEMO_CHECK(newRank >= 0);
  // All members derive the identical context id; disjoint colors (and
  // successive splits) get distinct ids.
  const std::uint64_t ctx = detail::mix64(
      detail::mix64(context_, seq), static_cast<std::uint64_t>(color) + 1);
  return Communicator(rt_, ctx, newRank, std::move(newGroupToWorld));
}

Communicator Communicator::shrink(const std::vector<int>& deadWorldRanks) const {
  const auto isDead = [&](int w) {
    return std::find(deadWorldRanks.begin(), deadWorldRanks.end(), w) !=
           deadWorldRanks.end();
  };
  std::vector<int> survivors;
  survivors.reserve(groupToWorld_.size());
  int newRank = -1;
  for (int gr = 0; gr < size(); ++gr) {
    const int w = groupToWorld_[static_cast<std::size_t>(gr)];
    if (isDead(w)) continue;
    if (gr == rank_) newRank = static_cast<int>(survivors.size());
    survivors.push_back(w);
  }
  HEMO_CHECK_MSG(newRank >= 0, "shrink: calling rank is in the dead set");
  HEMO_CHECK_MSG(!survivors.empty(), "shrink: no survivors");
  // Context derived from (old context, dead set, recovery epoch). The epoch
  // is the dead-set size — identical to the board's epoch for a consistent
  // snapshot (it counts declared deaths), but, crucially, a pure function of
  // the agreed argument: reading the live board here would race with a
  // *concurrent* new death and let survivors derive different contexts. If
  // the board has already moved past this epoch, the first bounded wait on
  // the new communicator notices and triggers the next recovery round.
  const auto epoch = static_cast<std::uint32_t>(deadWorldRanks.size());
  std::uint64_t key = detail::mix64(0x73687269'6e6b0000ULL, epoch);
  for (const int w : deadWorldRanks) {
    key = detail::mix64(key, static_cast<std::uint64_t>(w) + 1);
  }
  Communicator out(rt_, detail::mix64(context_, key), newRank,
                   std::move(survivors));
  out.bornEpoch_ = epoch;
  out.traffic_ = traffic_;
  // Drop traffic queued for the abandoned generation: anything the dead
  // rank (or a pre-shrink survivor) sent on the old context must never
  // match a post-recovery receive.
  rt_->mailbox(worldRank()).purgeContext(context_);
  rt_->mailbox(worldRank()).purgeStaleEpochs(epoch);
  return out;
}

TrafficCounters& Communicator::counters() { return rt_->counters(worldRank()); }

const TrafficCounters& Communicator::counters() const {
  return rt_->counters(groupToWorld_[static_cast<std::size_t>(rank_)]);
}

// --- Runtime ----------------------------------------------------------------

Runtime::Runtime(int size) : size_(size), board_(size) {
  HEMO_CHECK_MSG(size >= 1, "runtime needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  telemetry_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    telemetry_.push_back(std::make_unique<telemetry::RankTelemetry>(i));
    // Make every rank's flight recorder reachable from the crash paths
    // (signal/terminate handlers, flush-on-rank-exception). Flushing stays
    // a no-op until a driver arms the registry with a bundle directory.
    telemetry::FlightRegistry::instance().registerRank(
        &telemetry_.back()->flightRecorder(), &telemetry_.back()->tracer());
  }
  counters_.resize(static_cast<std::size_t>(size));
}

Runtime::~Runtime() {
  for (auto& t : telemetry_) {
    telemetry::FlightRegistry::instance().unregisterRank(&t->flightRecorder());
  }
}

void Runtime::run(const std::function<void(Communicator&)>& rankMain,
                  const RunOptions& options) {
  for (auto& mb : mailboxes_) mb->resetAbort();
  board_.reset();
  tolerated_.clear();

  std::vector<int> worldGroup(static_cast<std::size_t>(size_));
  std::iota(worldGroup.begin(), worldGroup.end(), 0);

  // All teardown state shares one mutex: first error, per-rank done flags,
  // and the completion count the bounded join waits on.
  std::mutex doneMutex;
  std::condition_variable doneCv;
  std::exception_ptr firstError;
  std::vector<char> done(static_cast<std::size_t>(size_), 0);
  int doneCount = 0;

  // A rank hung at a kHang fault site is released (throws RankKilledError)
  // the moment the group declares it dead — by liveness accusation, or by
  // the bounded join below when recovery is off.
  util::FaultInjector::instance().setHangRelease(
      [this](int r) { return board_.dead(r); });

  auto threadMain = [&](int rank) {
    setThreadLogRank(rank);
    telemetry::ThreadTelemetryScope tscope(
        telemetry_[static_cast<std::size_t>(rank)].get());
    Communicator comm(this, /*context=*/1, rank, worldGroup);
    std::exception_ptr err;
    bool toleratedDeath = false;
    try {
      rankMain(comm);
      board_.markFinished(rank);
    } catch (const util::RankKilledError& e) {
      board_.markCrashed(rank);
      if (options.tolerateRankDeath) {
        // Tolerated death: mark the rank dead (waking every bounded wait
        // blocked on it) and let the survivors shrink and continue.
        toleratedDeath = true;
        board_.declareDead(rank);
        HEMO_LOG_WARN() << "rank " << rank
                        << " died (tolerated, survivors continue): "
                        << e.what();
      } else {
        err = std::current_exception();
      }
    } catch (...) {
      board_.markCrashed(rank);
      err = std::current_exception();
    }
    if (err) {
      bool isFirst = false;
      {
        std::lock_guard<std::mutex> lock(doneMutex);
        if (!firstError) {
          firstError = err;
          isFirst = true;
        }
      }
      // Wake every blocked receive so the group can unwind.
      for (auto& mb : mailboxes_) mb->abort();
      // The first failing rank writes the postmortem bundle (if a driver
      // armed the registry) while the rest of the group is still
      // unwinding — the recorders' mutexes keep that safe.
      if (isFirst) {
        std::string detail = "unknown exception";
        try {
          std::rethrow_exception(err);
        } catch (const std::exception& e) {
          detail = e.what();
        } catch (...) {
        }
        auto& registry = telemetry::FlightRegistry::instance();
        if (registry.armed()) registry.flush("rank-exception", detail);
      }
    }
    {
      std::lock_guard<std::mutex> lock(doneMutex);
      done[static_cast<std::size_t>(rank)] = 1;
      ++doneCount;
      if (toleratedDeath) tolerated_.push_back(rank);
    }
    doneCv.notify_all();
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back(threadMain, r);
  }

  // Bounded join. While the group is healthy there is no deadline — a
  // long simulation is not a hang. Once a rank has aborted the group
  // (firstError set), the rest must unwind within joinTimeout: blocked
  // receives were woken by abort(), so a straggler is either hung at a
  // fault site or spinning without communicating. First expiry: declare
  // the stragglers dead (releases kHang loops, surfaces PeerDeadError to
  // anything still waiting on them) and re-abort. Second expiry: flush the
  // flight recorder, log the stuck ranks and abort the process — an
  // unjoinable thread leaves no honest alternative.
  const auto joinTimeout = std::chrono::milliseconds(
      static_cast<std::int64_t>(options.joinTimeoutSeconds * 1000.0));
  {
    std::unique_lock<std::mutex> lock(doneMutex);
    bool armed = false;
    std::chrono::steady_clock::time_point deadline{};
    int escalation = 0;
    while (doneCount < size_) {
      if (!armed) {
        doneCv.wait_for(lock, std::chrono::milliseconds(50));
        if (firstError) {
          armed = true;
          deadline = std::chrono::steady_clock::now() + joinTimeout;
        }
        continue;
      }
      if (doneCv.wait_until(lock, deadline) != std::cv_status::timeout ||
          doneCount >= size_) {
        continue;
      }
      std::string stuck;
      for (int r = 0; r < size_; ++r) {
        if (done[static_cast<std::size_t>(r)] == 0) {
          stuck += (stuck.empty() ? "" : ", ") + std::to_string(r);
        }
      }
      ++escalation;
      if (escalation == 1) {
        HEMO_LOG_ERROR() << "teardown stuck: rank(s) " << stuck
                         << " did not exit within "
                         << options.joinTimeoutSeconds
                         << " s of group abort; declaring dead and "
                            "re-aborting";
        lock.unlock();
        for (int r = 0; r < size_; ++r) {
          bool wasDone;
          {
            std::lock_guard<std::mutex> relock(doneMutex);
            wasDone = done[static_cast<std::size_t>(r)] != 0;
          }
          if (!wasDone) board_.declareDead(r);
        }
        for (auto& mb : mailboxes_) mb->abort();
        lock.lock();
        deadline = std::chrono::steady_clock::now() + joinTimeout;
      } else {
        HEMO_LOG_ERROR() << "teardown still stuck: rank(s) " << stuck
                         << " are unjoinable (hung outside the comm layer); "
                            "flushing flight recorder and aborting process";
        auto& registry = telemetry::FlightRegistry::instance();
        if (registry.armed()) {
          registry.flush("teardown-stuck", "unjoinable rank(s) " + stuck);
        }
        std::abort();
      }
    }
  }
  for (auto& t : threads) t.join();
  util::FaultInjector::instance().clearHangRelease();

  if (firstError) std::rethrow_exception(firstError);
  if (options.tolerateRankDeath &&
      static_cast<int>(tolerated_.size()) == size_) {
    throw util::RankKilledError("all " + std::to_string(size_) +
                                " ranks died; nothing left to recover onto");
  }
}

const TrafficCounters& Runtime::counters(int worldRank) const {
  return counters_[static_cast<std::size_t>(worldRank)];
}

TrafficCounters& Runtime::counters(int worldRank) {
  return counters_[static_cast<std::size_t>(worldRank)];
}

TrafficCounters Runtime::totalCounters() const {
  TrafficCounters sum;
  for (const auto& c : counters_) sum += c;
  return sum;
}

void Runtime::resetCounters() {
  for (auto& c : counters_) c.reset();
}

std::vector<telemetry::RankTrace> Runtime::drainTraces() {
  std::vector<telemetry::RankTrace> out;
  out.reserve(telemetry_.size());
  for (auto& t : telemetry_) {
    telemetry::RankTrace rt;
    rt.rank = t->rank();
    // Retained flight-recorder tail first (older), then the pending ring
    // events — the recorder's mutex serialises all ring consumers.
    rt.events = t->flightRecorder().takeTrace(t->tracer());
    rt.dropped = t->tracer().dropped();
    out.push_back(std::move(rt));
  }
  return out;
}

bool Runtime::writeChromeTrace(const std::string& path) {
  return telemetry::writeChromeTrace(path, drainTraces());
}

void Runtime::resetTelemetry() {
  for (auto& t : telemetry_) {
    t->flightRecorder().takeTrace(t->tracer());
    t->metrics().reset();
    t->waitState().reset();
  }
}

}  // namespace hemo::comm
