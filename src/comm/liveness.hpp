#pragma once
/// \file liveness.hpp
/// \brief Rank-liveness tracking for shrink-and-continue failure recovery.
///
/// At exascale a rank death is a when, not an if; the failure mode that
/// actually kills jobs is not the crash itself but the *survivors hanging
/// forever* in blocked receives and collectives. This file holds the shared
/// state the runtime uses to turn "peer went silent" into a typed,
/// recoverable event (ULFM-style):
///
///   * `DeathBoard` — one per Runtime: per-world-rank last-seen
///     timestamps (heartbeats piggybacked on every send and on every
///     bounded-wait slice), exit state (finished cleanly vs crashed), and
///     the monotone declared-dead set. Declaring a rank dead bumps the
///     board's *recovery epoch*; communicators remember the epoch they
///     were born at, so every blocked receive on a pre-death communicator
///     surfaces `PeerDeadError` within one poll slice.
///   * `PeerDeadError` — thrown out of bounded waits instead of hanging;
///     carries the dead world rank so the recovery driver can seed the
///     agreement round.
///   * `LivenessConfig` — opt-in knobs (off by default: zero overhead for
///     runs that prefer the legacy abort-the-group semantics).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hemo::comm {

/// Opt-in liveness detection knobs (Runtime::setLiveness).
struct LivenessConfig {
  /// Off: blocked receives keep the legacy unbounded-with-deadlock-timeout
  /// semantics and no per-send heartbeat stores happen.
  bool enabled = false;
  /// A peer silent for longer than this while we block on it is accused
  /// and declared dead. Generous default: the thread-rank runtime
  /// timeshares many ranks on few cores.
  int timeoutMs = 2000;
  /// Bounded-wait slice: how often a blocked receive re-checks the board
  /// (and refreshes its own heartbeat).
  int pollMs = 10;
};

/// Thrown out of a bounded receive when the awaited peer (or any group
/// member, for post-death epochs) has been declared dead. The recovery
/// layer catches this, runs the agreement round, shrinks and resumes;
/// without a recovery layer it propagates like any rank failure.
class PeerDeadError : public std::runtime_error {
 public:
  PeerDeadError(int deadWorldRank, const std::string& what)
      : std::runtime_error(what), deadWorldRank_(deadWorldRank) {}
  /// World rank of the peer that triggered detection (one element of the
  /// dead set; agreement converges on the full set).
  int deadWorldRank() const { return deadWorldRank_; }

 private:
  int deadWorldRank_;
};

/// Shared per-Runtime liveness state. All mutators are thread-safe; the
/// hot paths (noteAlive, dead, epoch) are single relaxed atomics.
class DeathBoard {
 public:
  explicit DeathBoard(int size)
      : lastSeen_(static_cast<std::size_t>(size)),
        state_(static_cast<std::size_t>(size)) {
    reset();
  }

  static std::int64_t nowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Clear all state for a fresh run(): everyone alive, epoch 0.
  void reset() {
    const std::int64_t now = nowNs();
    for (auto& t : lastSeen_) t.store(now, std::memory_order_relaxed);
    for (auto& s : state_) s.store(0, std::memory_order_relaxed);
    epoch_.store(0, std::memory_order_release);
  }

  int size() const { return static_cast<int>(state_.size()); }

  /// Heartbeat: called on every send and every bounded-wait slice.
  void noteAlive(int worldRank) {
    lastSeen_[static_cast<std::size_t>(worldRank)].store(
        nowNs(), std::memory_order_relaxed);
  }

  std::int64_t lastSeenNs(int worldRank) const {
    return lastSeen_[static_cast<std::size_t>(worldRank)].load(
        std::memory_order_relaxed);
  }

  /// Rank's thread returned from rankMain normally.
  void markFinished(int worldRank) { orState(worldRank, kFinished); }

  /// Rank's thread exited via an exception (simulated crash).
  void markCrashed(int worldRank) { orState(worldRank, kCrashed); }

  /// Thread no longer executes rankMain (either way). Evidence for an
  /// immediate accusation — no need to wait out the staleness timeout.
  bool exited(int worldRank) const {
    return (load(worldRank) & (kFinished | kCrashed)) != 0;
  }

  bool finished(int worldRank) const {
    return (load(worldRank) & kFinished) != 0;
  }

  /// Declare a rank dead; idempotent. Returns true when newly declared
  /// (and then bumps the recovery epoch, waking every bounded wait).
  bool declareDead(int worldRank) {
    const auto prev = state_[static_cast<std::size_t>(worldRank)].fetch_or(
        kDead, std::memory_order_acq_rel);
    if ((prev & kDead) != 0) return false;
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }

  bool dead(int worldRank) const { return (load(worldRank) & kDead) != 0; }

  /// Recovery epoch: number of declared deaths so far. Communicators born
  /// at an older epoch surface PeerDeadError from their bounded waits.
  std::uint32_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Sorted world ranks currently declared dead.
  std::vector<int> deadSet() const {
    std::vector<int> out;
    for (int r = 0; r < size(); ++r) {
      if (dead(r)) out.push_back(r);
    }
    return out;
  }

 private:
  static constexpr std::uint8_t kFinished = 1;
  static constexpr std::uint8_t kCrashed = 2;
  static constexpr std::uint8_t kDead = 4;

  std::uint8_t load(int worldRank) const {
    return state_[static_cast<std::size_t>(worldRank)].load(
        std::memory_order_acquire);
  }
  void orState(int worldRank, std::uint8_t bits) {
    state_[static_cast<std::size_t>(worldRank)].fetch_or(
        bits, std::memory_order_acq_rel);
  }

  std::vector<std::atomic<std::int64_t>> lastSeen_;
  std::vector<std::atomic<std::uint8_t>> state_;
  std::atomic<std::uint32_t> epoch_{0};
};

}  // namespace hemo::comm
