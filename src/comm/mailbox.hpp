#pragma once
/// \file mailbox.hpp
/// \brief Per-rank buffered message queue with MPI-style (source, tag)
/// matching. Sends never block (buffered semantics); receives block until a
/// matching envelope arrives or the runtime aborts.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "comm/envelope.hpp"

namespace hemo::comm {

/// Thrown out of blocked receives when another rank failed and the runtime
/// is shutting the group down, or when a receive waits past the deadlock
/// timeout.
class AbortError : public std::runtime_error {
 public:
  explicit AbortError(const std::string& what) : std::runtime_error(what) {}
};

class Mailbox {
 public:
  /// Deliver an envelope (called from the sending rank's thread).
  void push(Envelope&& env) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(env));
    }
    cv_.notify_all();
  }

  /// Blocking matched receive. `source` may be kAnySource; tag and context
  /// must match exactly. FIFO order is preserved per (context, source, tag).
  Envelope pop(std::uint64_t context, int source, int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (aborted_.load(std::memory_order_relaxed)) {
        throw AbortError("receive aborted: runtime shutting down");
      }
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (matches(*it, context, source, tag)) {
          Envelope env = std::move(*it);
          queue_.erase(it);
          return env;
        }
      }
      if (cv_.wait_for(lock, kDeadlockTimeout) == std::cv_status::timeout) {
        throw AbortError("receive timed out (likely deadlock): tag=" +
                         std::to_string(tag));
      }
    }
  }

  /// Bounded matched receive: waits up to `wait` for a match. True and
  /// fills `out` on a match, false on timeout (the liveness layer's
  /// bounded-wait slice — the caller re-checks the death board and calls
  /// again). Throws AbortError if the runtime aborted.
  bool popFor(std::uint64_t context, int source, int tag,
              std::chrono::milliseconds wait, Envelope& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto deadline = std::chrono::steady_clock::now() + wait;
    for (;;) {
      if (aborted_.load(std::memory_order_relaxed)) {
        throw AbortError("receive aborted: runtime shutting down");
      }
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (matches(*it, context, source, tag)) {
          out = std::move(*it);
          queue_.erase(it);
          return true;
        }
      }
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        // Final scan: a push may have raced the timeout.
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if (matches(*it, context, source, tag)) {
            out = std::move(*it);
            queue_.erase(it);
            return true;
          }
        }
        return false;
      }
    }
  }

  /// Non-blocking matched receive.
  bool tryPop(std::uint64_t context, int source, int tag, Envelope& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, context, source, tag)) {
        out = std::move(*it);
        queue_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// True if a matching message is queued (MPI_Iprobe analogue).
  bool probe(std::uint64_t context, int source, int tag) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& env : queue_) {
      if (matches(env, context, source, tag)) return true;
    }
    return false;
  }

  /// Number of queued envelopes (any match). Diagnostic only.
  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Discard every queued envelope belonging to `context`. Called after a
  /// communicator shrink: in-flight traffic addressed to the abandoned
  /// pre-death communicator generation (including anything the dead rank
  /// sent before dying) must never match a post-recovery receive. Returns
  /// the number of envelopes dropped.
  std::size_t purgeContext(std::uint64_t context) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t dropped = 0;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->context == context) {
        it = queue_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  /// Discard every queued envelope stamped with a shrink epoch older than
  /// `minEpoch` (belt-and-braces against stale pre-death traffic).
  std::size_t purgeStaleEpochs(std::uint32_t minEpoch) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t dropped = 0;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->shrinkEpoch < minEpoch) {
        it = queue_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  /// Wake all blocked receivers with AbortError.
  void abort() {
    aborted_.store(true, std::memory_order_relaxed);
    cv_.notify_all();
  }

  void resetAbort() { aborted_.store(false, std::memory_order_relaxed); }

  // Generous: the in-process runtime timeshares many ranks on few cores.
  // Public so the liveness layer's kAnySource waits share the same bound.
  static constexpr std::chrono::seconds kDeadlockTimeout{120};

 private:
  static bool matches(const Envelope& env, std::uint64_t context, int source,
                      int tag) {
    return env.context == context && env.tag == tag &&
           (source == kAnySource || env.source == source);
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  std::atomic<bool> aborted_{false};
};

}  // namespace hemo::comm
