#pragma once
/// \file mailbox.hpp
/// \brief Per-rank buffered message queue with MPI-style (source, tag)
/// matching. Sends never block (buffered semantics); receives block until a
/// matching envelope arrives or the runtime aborts.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "comm/envelope.hpp"

namespace hemo::comm {

/// Thrown out of blocked receives when another rank failed and the runtime
/// is shutting the group down, or when a receive waits past the deadlock
/// timeout.
class AbortError : public std::runtime_error {
 public:
  explicit AbortError(const std::string& what) : std::runtime_error(what) {}
};

class Mailbox {
 public:
  /// Deliver an envelope (called from the sending rank's thread).
  void push(Envelope&& env) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(env));
    }
    cv_.notify_all();
  }

  /// Blocking matched receive. `source` may be kAnySource; tag and context
  /// must match exactly. FIFO order is preserved per (context, source, tag).
  Envelope pop(std::uint64_t context, int source, int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (aborted_.load(std::memory_order_relaxed)) {
        throw AbortError("receive aborted: runtime shutting down");
      }
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (matches(*it, context, source, tag)) {
          Envelope env = std::move(*it);
          queue_.erase(it);
          return env;
        }
      }
      if (cv_.wait_for(lock, kDeadlockTimeout) == std::cv_status::timeout) {
        throw AbortError("receive timed out (likely deadlock): tag=" +
                         std::to_string(tag));
      }
    }
  }

  /// Non-blocking matched receive.
  bool tryPop(std::uint64_t context, int source, int tag, Envelope& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, context, source, tag)) {
        out = std::move(*it);
        queue_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// True if a matching message is queued (MPI_Iprobe analogue).
  bool probe(std::uint64_t context, int source, int tag) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& env : queue_) {
      if (matches(env, context, source, tag)) return true;
    }
    return false;
  }

  /// Number of queued envelopes (any match). Diagnostic only.
  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Wake all blocked receivers with AbortError.
  void abort() {
    aborted_.store(true, std::memory_order_relaxed);
    cv_.notify_all();
  }

  void resetAbort() { aborted_.store(false, std::memory_order_relaxed); }

 private:
  static bool matches(const Envelope& env, std::uint64_t context, int source,
                      int tag) {
    return env.context == context && env.tag == tag &&
           (source == kAnySource || env.source == source);
  }

  // Generous: the in-process runtime timeshares many ranks on few cores.
  static constexpr std::chrono::seconds kDeadlockTimeout{120};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  std::atomic<bool> aborted_{false};
};

}  // namespace hemo::comm
