#pragma once
/// \file communicator.hpp
/// \brief MPI-style communicator over the in-process thread-rank runtime.
///
/// The paper's target is an MPI code on an exascale machine; this session has
/// neither MPI nor multiple nodes, so the runtime realises the same
/// programming model in one process: every rank is a thread, point-to-point
/// sends are buffered pushes into the destination's mailbox, and the full
/// collective set is implemented *on top of point-to-point* with the textbook
/// algorithms (dissemination barrier, binomial broadcast/reduce, pairwise
/// all-to-all). Building collectives from p2p means the traffic profiler sees
/// realistic message/byte counts for them too — which is exactly what the
/// Table I communication-cost comparison needs.

#include <cstring>
#include <functional>
#include <type_traits>
#include <vector>

#include "comm/envelope.hpp"
#include "comm/mailbox.hpp"
#include "comm/profiler.hpp"
#include "util/check.hpp"

namespace hemo::comm {

class Runtime;

namespace detail {
/// Mix for deriving split-communicator context ids deterministically.
inline std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace detail

/// Handle to a group of ranks. Cheap to copy. All collective members must
/// call collectives in the same order (standard MPI contract).
class Communicator {
 public:
  Communicator(Runtime* rt, std::uint64_t context, int groupRank,
               std::vector<int> groupToWorld)
      : rt_(rt),
        context_(context),
        rank_(groupRank),
        groupToWorld_(std::move(groupToWorld)) {}

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(groupToWorld_.size()); }
  int worldRank() const { return groupToWorld_[static_cast<std::size_t>(rank_)]; }
  std::uint64_t context() const { return context_; }

  /// Group-rank → world-rank map (stable, sorted for world/shrunken comms).
  const std::vector<int>& group() const { return groupToWorld_; }

  /// World rank of group rank `r`.
  int worldRankOf(int r) const {
    return groupToWorld_[static_cast<std::size_t>(r)];
  }

  /// The runtime recovery epoch this communicator was born at (0 for the
  /// world communicator; the board's epoch at shrink() time afterwards).
  /// Bounded waits on a communicator older than the board's current epoch
  /// surface PeerDeadError — a death anywhere invalidates the generation.
  std::uint32_t bornEpoch() const { return bornEpoch_; }

  /// Refresh this rank's liveness heartbeat (no-op when liveness is off).
  /// Sends and bounded-wait slices do this implicitly; compute-heavy loops
  /// that go long without communicating may call it explicitly.
  void noteAlive();

  /// Derive the survivor communicator after `deadWorldRanks` (sorted,
  /// agreement output — every survivor must pass the identical set) have
  /// been declared dead. Purely local: survivors keep their relative
  /// order, the context id is re-derived from the dead set + recovery
  /// epoch (identical on every survivor), and this rank's mailbox drops
  /// all traffic queued for the abandoned generation. The calling rank
  /// must not be in the dead set.
  Communicator shrink(const std::vector<int>& deadWorldRanks) const;

  /// Traffic class applied to subsequent sends/receives on this handle.
  void setTraffic(Traffic t) { traffic_ = t; }
  Traffic traffic() const { return traffic_; }

  /// RAII traffic-class scope.
  class TrafficScope {
   public:
    TrafficScope(Communicator& comm, Traffic t)
        : comm_(comm), saved_(comm.traffic_) {
      comm_.traffic_ = t;
    }
    ~TrafficScope() { comm_.traffic_ = saved_; }
    TrafficScope(const TrafficScope&) = delete;
    TrafficScope& operator=(const TrafficScope&) = delete;

   private:
    Communicator& comm_;
    Traffic saved_;
  };

  // --- point to point -------------------------------------------------

  /// Buffered send: copies `n` bytes into the destination mailbox. Never
  /// blocks. `dest` is a rank in this communicator's group.
  void sendBytes(int dest, int tag, const void* data, std::size_t n);

  /// Blocking matched receive; returns the payload. `source` may be
  /// kAnySource; `sourceOut` (optional) receives the actual sender.
  std::vector<std::byte> recvBytes(int source, int tag,
                                   int* sourceOut = nullptr);

  /// Non-blocking receive; true and fills `payload` if a match was queued.
  bool tryRecvBytes(int source, int tag, std::vector<std::byte>& payload,
                    int* sourceOut = nullptr);

  /// Blocking matched receive into caller-owned storage of exactly `n`
  /// bytes — no per-call allocation, for steady-state paths like the
  /// solver's halo exchange. Aborts if the payload size differs.
  void recvBytesInto(int source, int tag, void* dst, std::size_t n);

  /// True if a matching message is waiting (MPI_Iprobe analogue).
  bool probe(int source, int tag) const;

  /// Typed send/recv of trivially copyable values.
  template <typename T>
  void send(int dest, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    sendBytes(dest, tag, &value, sizeof(T));
  }

  template <typename T>
  T recv(int source, int tag, int* sourceOut = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto payload = recvBytes(source, tag, sourceOut);
    HEMO_CHECK_MSG(payload.size() == sizeof(T),
                   "typed recv size mismatch: got " << payload.size()
                                                    << " want " << sizeof(T));
    T value;
    std::memcpy(&value, payload.data(), sizeof(T));
    return value;
  }

  template <typename T>
  void sendVec(int dest, int tag, const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    sendBytes(dest, tag, values.data(), values.size() * sizeof(T));
  }

  /// Typed recvBytesInto: receive exactly `count` elements into `dst`.
  template <typename T>
  void recvInto(int source, int tag, T* dst, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    recvBytesInto(source, tag, dst, count * sizeof(T));
  }

  template <typename T>
  std::vector<T> recvVec(int source, int tag, int* sourceOut = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto payload = recvBytes(source, tag, sourceOut);
    HEMO_CHECK(payload.size() % sizeof(T) == 0);
    std::vector<T> values(payload.size() / sizeof(T));
    if (!values.empty()) {
      std::memcpy(values.data(), payload.data(), payload.size());
    }
    return values;
  }

  // --- collectives -----------------------------------------------------
  // All ranks of the group must participate, in the same call order.

  /// Dissemination barrier: ceil(log2 n) rounds.
  void barrier();

  /// Binomial-tree broadcast of a byte buffer (resized on non-roots).
  void bcastBytes(std::vector<std::byte>& buffer, int root);

  template <typename T>
  void bcast(T& value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf(sizeof(T));
    if (rank_ == root) std::memcpy(buf.data(), &value, sizeof(T));
    bcastBytes(buf, root);
    std::memcpy(&value, buf.data(), sizeof(T));
  }

  template <typename T>
  void bcastVec(std::vector<T>& values, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf;
    if (rank_ == root) {
      buf.resize(values.size() * sizeof(T));
      if (!values.empty()) std::memcpy(buf.data(), values.data(), buf.size());
    }
    bcastBytes(buf, root);
    values.resize(buf.size() / sizeof(T));
    if (!values.empty()) std::memcpy(values.data(), buf.data(), buf.size());
  }

  /// Binomial-tree reduction of an element-wise operation. On return the
  /// root's `values` holds the reduction; other ranks' buffers are
  /// unspecified. All ranks must pass equal-sized vectors.
  template <typename T, typename Op>
  void reduceVec(std::vector<T>& values, int root, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    TrafficScope scope(*this, traffic_ == Traffic::kOther
                                  ? Traffic::kCollective
                                  : traffic_);
    const int n = size();
    const int tag = nextCollectiveTag();
    const int vrank = (rank_ - root + n) % n;
    for (int mask = 1; mask < n; mask <<= 1) {
      if (vrank & mask) {
        const int parent = ((vrank - mask) + root) % n;
        sendVec(parent, tag, values);
        return;
      }
      const int childV = vrank + mask;
      if (childV < n) {
        const int child = (childV + root) % n;
        const auto incoming = recvVec<T>(child, tag);
        HEMO_CHECK(incoming.size() == values.size());
        for (std::size_t i = 0; i < values.size(); ++i) {
          values[i] = op(values[i], incoming[i]);
        }
      }
    }
  }

  template <typename T, typename Op>
  T allreduce(T value, Op op) {
    std::vector<T> v{value};
    reduceVec(v, 0, op);
    bcastVec(v, 0);
    return v[0];
  }

  template <typename T>
  T allreduceSum(T value) {
    return allreduce(value, [](T a, T b) { return a + b; });
  }
  template <typename T>
  T allreduceMax(T value) {
    return allreduce(value, [](T a, T b) { return a > b ? a : b; });
  }
  template <typename T>
  T allreduceMin(T value) {
    return allreduce(value, [](T a, T b) { return a < b ? a : b; });
  }

  template <typename T, typename Op>
  void allreduceVec(std::vector<T>& values, Op op) {
    reduceVec(values, 0, op);
    bcastVec(values, 0);
  }

  /// Gather one value per rank to root; returns size() values at root
  /// (ordered by rank), empty elsewhere.
  template <typename T>
  std::vector<T> gather(const T& value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    TrafficScope scope(*this, traffic_ == Traffic::kOther
                                  ? Traffic::kCollective
                                  : traffic_);
    const int tag = nextCollectiveTag();
    if (rank_ != root) {
      send(root, tag, value);
      return {};
    }
    std::vector<T> all(static_cast<std::size_t>(size()));
    all[static_cast<std::size_t>(rank_)] = value;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      all[static_cast<std::size_t>(r)] = recv<T>(r, tag);
    }
    return all;
  }

  /// Gather variable-length vectors to root; result[r] is rank r's vector.
  template <typename T>
  std::vector<std::vector<T>> gatherVec(const std::vector<T>& values,
                                        int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    TrafficScope scope(*this, traffic_ == Traffic::kOther
                                  ? Traffic::kCollective
                                  : traffic_);
    const int tag = nextCollectiveTag();
    if (rank_ != root) {
      sendVec(root, tag, values);
      return {};
    }
    std::vector<std::vector<T>> all(static_cast<std::size_t>(size()));
    all[static_cast<std::size_t>(rank_)] = values;
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      all[static_cast<std::size_t>(r)] = recvVec<T>(r, tag);
    }
    return all;
  }

  /// Allgather of one value per rank (gather to 0 + broadcast).
  template <typename T>
  std::vector<T> allgather(const T& value) {
    auto all = gather(value, 0);
    bcastVec(all, 0);
    return all;
  }

  /// Allgather of variable-length vectors; result[r] is rank r's vector.
  template <typename T>
  std::vector<std::vector<T>> allgatherVec(const std::vector<T>& values) {
    auto all = gatherVec(values, 0);
    // Flatten + counts for one broadcast instead of size() broadcasts.
    std::vector<std::uint64_t> counts;
    std::vector<T> flat;
    if (rank_ == 0) {
      counts.reserve(all.size());
      for (const auto& v : all) {
        counts.push_back(v.size());
        flat.insert(flat.end(), v.begin(), v.end());
      }
    }
    bcastVec(counts, 0);
    bcastVec(flat, 0);
    std::vector<std::vector<T>> result(static_cast<std::size_t>(size()));
    std::size_t off = 0;
    for (std::size_t r = 0; r < counts.size(); ++r) {
      result[r].assign(flat.begin() + static_cast<std::ptrdiff_t>(off),
                       flat.begin() + static_cast<std::ptrdiff_t>(off + counts[r]));
      off += counts[r];
    }
    return result;
  }

  /// Personalised all-to-all: `toSend[d]` goes to rank d; returns one vector
  /// received from each rank. Pairwise exchange pattern.
  template <typename T>
  std::vector<std::vector<T>> alltoallVec(
      const std::vector<std::vector<T>>& toSend) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int n = size();
    HEMO_CHECK(static_cast<int>(toSend.size()) == n);
    const int tag = nextCollectiveTag();
    std::vector<std::vector<T>> received(static_cast<std::size_t>(n));
    received[static_cast<std::size_t>(rank_)] =
        toSend[static_cast<std::size_t>(rank_)];
    for (int offset = 1; offset < n; ++offset) {
      const int dest = (rank_ + offset) % n;
      const int src = (rank_ - offset + n) % n;
      sendVec(dest, tag, toSend[static_cast<std::size_t>(dest)]);
      received[static_cast<std::size_t>(src)] = recvVec<T>(src, tag);
    }
    return received;
  }

  /// Inclusive prefix sum over ranks (linear chain).
  template <typename T>
  T scanSum(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = nextCollectiveTag();
    T acc = value;
    if (rank_ > 0) acc = static_cast<T>(recv<T>(rank_ - 1, tag) + value);
    if (rank_ + 1 < size()) send(rank_ + 1, tag, acc);
    return acc;
  }

  /// Split into sub-communicators by color; ranks ordered by (key, rank).
  Communicator split(int color, int key);

  // --- profiling --------------------------------------------------------

  /// This rank's world-level traffic counters (shared across split comms).
  TrafficCounters& counters();
  const TrafficCounters& counters() const;

 private:
  int nextCollectiveTag() {
    // Distinct tag per collective instance; FIFO matching per (ctx,src,tag)
    // makes wrap-around safe.
    return kMaxUserTag + static_cast<int>(collectiveSeq_++ % 4096);
  }

  /// Blocking mailbox pop with wait-state classification: measures the
  /// blocked interval, classifies it against the envelope's piggybacked
  /// post time (telemetry::WaitStateRecorder) and records the halo flow
  /// arrow. Falls through to a plain pop when no telemetry is attached.
  Envelope popClassified(int source, int tag);

  /// The blocking pop primitive. With liveness off this is the legacy
  /// unbounded pop (120 s deadlock backstop). With liveness on it waits in
  /// pollMs slices, refreshing this rank's heartbeat each slice, and
  /// throws PeerDeadError when (a) the awaited peer is declared dead or
  /// went silent past the staleness timeout, or (b) any death bumped the
  /// recovery epoch past this communicator's birth epoch.
  Envelope popBounded(int source, int tag);

  Runtime* rt_;
  std::uint64_t context_;
  int rank_;
  std::vector<int> groupToWorld_;
  std::uint64_t collectiveSeq_ = 0;
  Traffic traffic_ = Traffic::kOther;
  std::uint32_t bornEpoch_ = 0;
};

}  // namespace hemo::comm
