#pragma once
/// \file channel.hpp
/// \brief In-memory duplex framed byte channel.
///
/// The paper's steering client talks to the simulation master over a socket.
/// We reproduce the framing and flow (client ⇄ master) over an in-process
/// channel with identical semantics: ordered, reliable, message-framed,
/// usable from different threads. The transport is swappable — everything
/// above (the steer protocol) only sees ChannelEnd.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace hemo::comm {

namespace detail {
/// One direction of the duplex pipe.
struct FrameQueue {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::vector<std::byte>> frames;
  bool closed = false;
  std::uint64_t framesPushed = 0;
  std::uint64_t bytesPushed = 0;
};
}  // namespace detail

/// One endpoint of a duplex channel. Copyable handle (shared pipe state).
class ChannelEnd {
 public:
  ChannelEnd() = default;
  ChannelEnd(std::shared_ptr<detail::FrameQueue> out,
             std::shared_ptr<detail::FrameQueue> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  bool valid() const { return out_ && in_; }

  /// Send one frame. Returns false if the peer closed.
  bool send(std::vector<std::byte> frame);

  /// Blocking receive; nullopt when the peer closed and the queue drained.
  std::optional<std::vector<std::byte>> recv();

  /// Non-blocking receive.
  std::optional<std::vector<std::byte>> tryRecv();

  /// Close the outgoing direction; peer receives drain then see EOF.
  void close();

  /// Frames/bytes ever sent from this end (steering traffic accounting).
  std::uint64_t framesSent() const;
  std::uint64_t bytesSent() const;

 private:
  std::shared_ptr<detail::FrameQueue> out_;
  std::shared_ptr<detail::FrameQueue> in_;
};

/// Create a connected pair of endpoints.
std::pair<ChannelEnd, ChannelEnd> makeChannelPair();

}  // namespace hemo::comm
