#pragma once
/// \file channel.hpp
/// \brief In-memory duplex framed byte channel.
///
/// The paper's steering client talks to the simulation master over a socket.
/// We reproduce the framing and flow (client ⇄ master) over an in-process
/// channel with identical semantics: ordered, reliable, message-framed,
/// usable from different threads. The transport is swappable — everything
/// above (the steer protocol) only sees ChannelEnd.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace hemo::comm {

namespace detail {
/// One direction of the duplex pipe. `capacity == 0` means unbounded; a
/// bounded queue drops its *oldest* queued frame to admit a new one
/// (latest-wins), counting every eviction — the backpressure primitive the
/// serving broker builds per-client outboxes from.
struct FrameQueue {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::vector<std::byte>> frames;
  bool closed = false;
  std::size_t capacity = 0;  ///< max queued frames; 0 = unbounded
  std::uint64_t framesPushed = 0;
  std::uint64_t bytesPushed = 0;
  std::uint64_t framesDropped = 0;  ///< evicted by the bound, never delivered
};
}  // namespace detail

/// One endpoint of a duplex channel. Copyable handle (shared pipe state).
class ChannelEnd {
 public:
  ChannelEnd() = default;
  ChannelEnd(std::shared_ptr<detail::FrameQueue> out,
             std::shared_ptr<detail::FrameQueue> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  bool valid() const { return out_ && in_; }

  /// Send one frame. Returns false if the peer closed.
  bool send(std::vector<std::byte> frame);

  /// Blocking receive; nullopt when the peer closed and the queue drained.
  std::optional<std::vector<std::byte>> recv();

  /// Non-blocking receive.
  std::optional<std::vector<std::byte>> tryRecv();

  /// Close the outgoing direction; peer receives drain then see EOF.
  void close();

  /// True when the peer closed its side and the incoming queue drained —
  /// a subsequent recv() would return nullopt. Lets pollers distinguish
  /// "nothing yet" from "connection gone" (the reconnect trigger).
  bool eof() const;

  /// Bound the outgoing queue to `capacity` frames (0 restores unbounded).
  /// When full, send() evicts the oldest queued frame instead of blocking
  /// or failing — a stalled reader costs dropped frames, never a stalled
  /// writer.
  void setSendCapacity(std::size_t capacity);

  /// Frames/bytes ever sent from this end (steering traffic accounting).
  std::uint64_t framesSent() const;
  std::uint64_t bytesSent() const;

  /// Frames this end pushed that were later evicted by the send bound.
  std::uint64_t framesDropped() const;

 private:
  std::shared_ptr<detail::FrameQueue> out_;
  std::shared_ptr<detail::FrameQueue> in_;
};

/// Create a connected pair of endpoints.
std::pair<ChannelEnd, ChannelEnd> makeChannelPair();

}  // namespace hemo::comm
