#pragma once
/// \file channel.hpp
/// \brief In-memory duplex framed byte channel.
///
/// The paper's steering client talks to the simulation master over a socket.
/// We reproduce the framing and flow (client ⇄ master) over an in-process
/// channel with identical semantics: ordered, reliable, message-framed,
/// usable from different threads. The transport is swappable — everything
/// above (the steer protocol) only sees ChannelEnd.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace hemo::comm {

namespace detail {
/// One direction of the duplex pipe. `capacity == 0` means unbounded; a
/// bounded queue drops its *oldest* queued frame to admit a new one
/// (latest-wins), counting every eviction — the backpressure primitive the
/// serving broker builds per-client outboxes from.
struct FrameQueue {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::vector<std::byte>> frames;
  bool closed = false;
  std::size_t capacity = 0;  ///< max queued frames; 0 = unbounded
  std::uint64_t framesPushed = 0;
  std::uint64_t bytesPushed = 0;
  std::uint64_t framesDropped = 0;  ///< evicted by the bound, never delivered
  /// Credit-based flow control (relay tier). The receiver grants credits;
  /// each trySendCredited() spends one. `creditsEnabled == false` keeps the
  /// legacy unmetered behaviour for plain steering channels.
  bool creditsEnabled = false;
  std::uint64_t credits = 0;
};
}  // namespace detail

/// One endpoint of a duplex channel. Copyable handle (shared pipe state).
class ChannelEnd {
 public:
  ChannelEnd() = default;
  ChannelEnd(std::shared_ptr<detail::FrameQueue> out,
             std::shared_ptr<detail::FrameQueue> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  bool valid() const { return out_ && in_; }

  /// Send one frame. Returns false if the peer closed.
  bool send(std::vector<std::byte> frame);

  /// Blocking receive; nullopt when the peer closed and the queue drained.
  std::optional<std::vector<std::byte>> recv();

  /// Non-blocking receive.
  std::optional<std::vector<std::byte>> tryRecv();

  /// Close the outgoing direction; peer receives drain then see EOF.
  void close();

  /// True when the peer closed its side and the incoming queue drained —
  /// a subsequent recv() would return nullopt. Lets pollers distinguish
  /// "nothing yet" from "connection gone" (the reconnect trigger).
  bool eof() const;

  /// Bound the outgoing queue to `capacity` frames (0 restores unbounded).
  /// When full, send() evicts the oldest queued frame instead of blocking
  /// or failing — a stalled reader costs dropped frames, never a stalled
  /// writer. A shrink takes effect on the next push: send() trims the
  /// backlog down to the new bound before admitting the frame.
  void setSendCapacity(std::size_t capacity);

  /// Frames currently queued on the outgoing side, i.e. pushed but not yet
  /// received by the peer. The relay shed policy reads this as its
  /// backpressure signal.
  std::size_t sendQueueDepth() const;

  /// Switch the outgoing direction to credit-metered sends and set the
  /// balance. trySendCredited() spends one credit per frame; send() stays
  /// unmetered (control traffic). Initially disabled.
  void setSendCredits(std::uint64_t credits);

  /// Add credits granted by the receiver (no-op until setSendCredits).
  void addSendCredits(std::uint64_t credits);

  /// Remaining credit balance (0 when metering is disabled).
  std::uint64_t sendCredits() const;

  /// Send one frame iff a credit is available, spending it. Returns false
  /// — without queueing or spending — when the balance is 0 or metering is
  /// off; the caller decides what to shed. Returns false on a closed peer.
  bool trySendCredited(std::vector<std::byte> frame);

  /// Frames/bytes ever sent from this end (steering traffic accounting).
  std::uint64_t framesSent() const;
  std::uint64_t bytesSent() const;

  /// Frames this end pushed that were later evicted by the send bound.
  std::uint64_t framesDropped() const;

 private:
  std::shared_ptr<detail::FrameQueue> out_;
  std::shared_ptr<detail::FrameQueue> in_;
};

/// Create a connected pair of endpoints.
std::pair<ChannelEnd, ChannelEnd> makeChannelPair();

}  // namespace hemo::comm
