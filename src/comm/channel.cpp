#include "comm/channel.hpp"

#include "util/faultinject.hpp"

namespace hemo::comm {

bool ChannelEnd::send(std::vector<std::byte> frame) {
  {
    // Fault hook: a channel is the in-process stand-in for a socket, so
    // this is where wire-level faults (loss, truncation, latency, a dead
    // peer) are injected for the resilience tests.
    auto& fi = util::FaultInjector::instance();
    if (fi.armed()) {
      util::FaultRule rule;
      switch (fi.decide(util::FaultSite::kChannelSend, -1, &rule)) {
        case util::FaultAction::kDrop:
          return true;  // sender believes the frame was delivered
        case util::FaultAction::kTruncate:
          if (frame.size() > rule.truncateTo) frame.resize(rule.truncateTo);
          break;
        case util::FaultAction::kDelay:
          util::FaultInjector::sleepFor(rule.delayMillis);
          break;
        case util::FaultAction::kFail:
          return false;
        default:
          break;
      }
    }
  }
  std::lock_guard<std::mutex> lock(out_->mutex);
  if (out_->closed) return false;
  out_->bytesPushed += frame.size();
  ++out_->framesPushed;
  // Latest-wins: evict oldest undelivered frames to admit this one. A loop,
  // not a single pop — a capacity shrunk below the current backlog must trim
  // the whole excess on the next push, not one frame per push.
  while (out_->capacity > 0 && out_->frames.size() >= out_->capacity) {
    out_->frames.pop_front();
    ++out_->framesDropped;
  }
  out_->frames.push_back(std::move(frame));
  out_->cv.notify_all();
  return true;
}

bool ChannelEnd::trySendCredited(std::vector<std::byte> frame) {
  std::lock_guard<std::mutex> lock(out_->mutex);
  if (out_->closed) return false;
  if (!out_->creditsEnabled || out_->credits == 0) return false;
  --out_->credits;
  out_->bytesPushed += frame.size();
  ++out_->framesPushed;
  while (out_->capacity > 0 && out_->frames.size() >= out_->capacity) {
    out_->frames.pop_front();
    ++out_->framesDropped;
  }
  out_->frames.push_back(std::move(frame));
  out_->cv.notify_all();
  return true;
}

std::optional<std::vector<std::byte>> ChannelEnd::recv() {
  std::unique_lock<std::mutex> lock(in_->mutex);
  in_->cv.wait(lock, [this] { return !in_->frames.empty() || in_->closed; });
  if (in_->frames.empty()) return std::nullopt;
  auto frame = std::move(in_->frames.front());
  in_->frames.pop_front();
  return frame;
}

std::optional<std::vector<std::byte>> ChannelEnd::tryRecv() {
  std::lock_guard<std::mutex> lock(in_->mutex);
  if (in_->frames.empty()) return std::nullopt;
  auto frame = std::move(in_->frames.front());
  in_->frames.pop_front();
  return frame;
}

void ChannelEnd::close() {
  {
    std::lock_guard<std::mutex> lock(out_->mutex);
    out_->closed = true;
  }
  out_->cv.notify_all();
}

bool ChannelEnd::eof() const {
  std::lock_guard<std::mutex> lock(in_->mutex);
  return in_->closed && in_->frames.empty();
}

void ChannelEnd::setSendCapacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(out_->mutex);
  out_->capacity = capacity;
}

std::size_t ChannelEnd::sendQueueDepth() const {
  std::lock_guard<std::mutex> lock(out_->mutex);
  return out_->frames.size();
}

void ChannelEnd::setSendCredits(std::uint64_t credits) {
  std::lock_guard<std::mutex> lock(out_->mutex);
  out_->creditsEnabled = true;
  out_->credits = credits;
}

void ChannelEnd::addSendCredits(std::uint64_t credits) {
  std::lock_guard<std::mutex> lock(out_->mutex);
  if (!out_->creditsEnabled) return;
  out_->credits += credits;
}

std::uint64_t ChannelEnd::sendCredits() const {
  std::lock_guard<std::mutex> lock(out_->mutex);
  return out_->creditsEnabled ? out_->credits : 0;
}

std::uint64_t ChannelEnd::framesSent() const {
  std::lock_guard<std::mutex> lock(out_->mutex);
  return out_->framesPushed;
}

std::uint64_t ChannelEnd::bytesSent() const {
  std::lock_guard<std::mutex> lock(out_->mutex);
  return out_->bytesPushed;
}

std::uint64_t ChannelEnd::framesDropped() const {
  std::lock_guard<std::mutex> lock(out_->mutex);
  return out_->framesDropped;
}

std::pair<ChannelEnd, ChannelEnd> makeChannelPair() {
  auto a2b = std::make_shared<detail::FrameQueue>();
  auto b2a = std::make_shared<detail::FrameQueue>();
  return {ChannelEnd(a2b, b2a), ChannelEnd(b2a, a2b)};
}

}  // namespace hemo::comm
