#pragma once
/// \file runtime.hpp
/// \brief Thread-rank runtime: spawns N ranks as threads, gives each a world
/// communicator, joins them, and propagates the first rank failure.

#include <functional>
#include <memory>
#include <vector>

#include <string>

#include "comm/communicator.hpp"
#include "comm/liveness.hpp"
#include "comm/mailbox.hpp"
#include "comm/profiler.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/telemetry.hpp"

namespace hemo::comm {

/// Per-run() policy knobs.
struct RunOptions {
  /// When true, a rank thread dying with util::RankKilledError is a
  /// *tolerated* death: the rank is marked dead on the DeathBoard and the
  /// group keeps running (shrink-and-continue recovery). When false
  /// (legacy), any rank exception aborts every mailbox and is rethrown
  /// from run(). Non-kill exceptions always keep the legacy semantics.
  bool tolerateRankDeath = false;
  /// Teardown bound: once any rank has aborted the group, the remaining
  /// threads must exit within this window. Stragglers (e.g. a rank hung at
  /// a kHang fault site, or spinning without communicating) are declared
  /// dead — which releases hang loops and wakes their waiters — and given
  /// one more window; a second expiry logs a diagnostic naming the stuck
  /// ranks, flushes the flight recorder and aborts the process (the only
  /// honest option for an unjoinable thread).
  double joinTimeoutSeconds = 120.0;
};

/// Owns the mailboxes, traffic counters and telemetry contexts for a group
/// of thread-ranks. A Runtime may execute several run() "jobs" sequentially;
/// counters and telemetry accumulate until resetCounters() /
/// resetTelemetry().
class Runtime {
 public:
  explicit Runtime(int size);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int size() const { return size_; }

  /// Run `rankMain(comm)` on every rank concurrently and join. If any rank
  /// throws, all blocked receives are aborted and the first exception is
  /// rethrown here after all threads have joined. The join is bounded (see
  /// RunOptions::joinTimeoutSeconds) so one dead rank can never leave the
  /// caller blocked forever.
  void run(const std::function<void(Communicator&)>& rankMain) {
    run(rankMain, RunOptions{});
  }

  /// run() with explicit policy (rank-death tolerance, teardown bound).
  void run(const std::function<void(Communicator&)>& rankMain,
           const RunOptions& options);

  /// Liveness detection config. Set before run(); applies to every
  /// communicator of that run. Off by default (legacy semantics).
  void setLiveness(const LivenessConfig& cfg) { liveness_ = cfg; }
  const LivenessConfig& liveness() const { return liveness_; }

  /// Per-run liveness state: heartbeats, exit flags, declared-dead set.
  DeathBoard& deathBoard() { return board_; }
  const DeathBoard& deathBoard() const { return board_; }

  /// World ranks whose RankKilledError was tolerated during the last
  /// run(..., {tolerateRankDeath=true}); empty after a clean run.
  const std::vector<int>& toleratedDeaths() const { return tolerated_; }

  /// Convenience: one-shot runtime.
  static void runOnce(int size,
                      const std::function<void(Communicator&)>& rankMain) {
    Runtime rt(size);
    rt.run(rankMain);
  }

  /// Per-world-rank counters (valid to read once run() returned).
  const TrafficCounters& counters(int worldRank) const;
  TrafficCounters& counters(int worldRank);

  /// Sum over all ranks.
  TrafficCounters totalCounters() const;

  void resetCounters();

  /// Per-world-rank telemetry (metrics registry + trace ring). Attached to
  /// the rank's thread for the duration of run(), so HEMO_TSPAN and
  /// threadTelemetry()->metrics() record here.
  telemetry::RankTelemetry& telemetry(int worldRank) {
    return *telemetry_[static_cast<std::size_t>(worldRank)];
  }
  const telemetry::RankTelemetry& telemetry(int worldRank) const {
    return *telemetry_[static_cast<std::size_t>(worldRank)];
  }

  /// Drain every rank's trace ring (events recorded since the last drain).
  std::vector<telemetry::RankTrace> drainTraces();

  /// Drain all rings and write the merged Chrome-trace JSON (one tid per
  /// rank) to `path`; false on I/O failure.
  bool writeChromeTrace(const std::string& path);

  void resetTelemetry();

  Mailbox& mailbox(int worldRank) {
    return *mailboxes_[static_cast<std::size_t>(worldRank)];
  }

 private:
  int size_;
  LivenessConfig liveness_;
  DeathBoard board_;
  std::vector<int> tolerated_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<TrafficCounters> counters_;
  // unique_ptr: RankTelemetry holds atomics, so it is neither movable nor
  // resizable in-place.
  std::vector<std::unique_ptr<telemetry::RankTelemetry>> telemetry_;
};

}  // namespace hemo::comm
