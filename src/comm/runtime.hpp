#pragma once
/// \file runtime.hpp
/// \brief Thread-rank runtime: spawns N ranks as threads, gives each a world
/// communicator, joins them, and propagates the first rank failure.

#include <functional>
#include <memory>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/mailbox.hpp"
#include "comm/profiler.hpp"

namespace hemo::comm {

/// Owns the mailboxes and traffic counters for a group of thread-ranks.
/// A Runtime may execute several run() "jobs" sequentially; counters
/// accumulate until resetCounters().
class Runtime {
 public:
  explicit Runtime(int size);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int size() const { return size_; }

  /// Run `rankMain(comm)` on every rank concurrently and join. If any rank
  /// throws, all blocked receives are aborted and the first exception is
  /// rethrown here after all threads have joined.
  void run(const std::function<void(Communicator&)>& rankMain);

  /// Convenience: one-shot runtime.
  static void runOnce(int size,
                      const std::function<void(Communicator&)>& rankMain) {
    Runtime rt(size);
    rt.run(rankMain);
  }

  /// Per-world-rank counters (valid to read once run() returned).
  const TrafficCounters& counters(int worldRank) const;
  TrafficCounters& counters(int worldRank);

  /// Sum over all ranks.
  TrafficCounters totalCounters() const;

  void resetCounters();

  Mailbox& mailbox(int worldRank) {
    return *mailboxes_[static_cast<std::size_t>(worldRank)];
  }

 private:
  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<TrafficCounters> counters_;
};

}  // namespace hemo::comm
