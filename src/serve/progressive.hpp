#pragma once
/// \file progressive.hpp
/// \brief Wire framing for progressive (coarse-to-fine) image streams.
///
/// An image frame negotiated with the progressive codec bit leaves the
/// broker as a burst of kProgressiveImage wire frames, one per pyramid
/// level: the root first (small, always deliverable), then residual
/// refinements. Each wire frame is self-describing — step, level index,
/// total level count, full frame size — so a relay can forward levels
/// verbatim, shed fine levels under backpressure, and a consumer can
/// display after the first frame of a step. Residual payloads are RLE
/// coded when the session also negotiated rleImage (residuals are mostly
/// zero over flat regions).

#include <cstdint>
#include <optional>
#include <vector>

#include "multires/progressive.hpp"
#include "serve/codec.hpp"
#include "steer/protocol.hpp"

namespace hemo::serve {

/// One decoded kProgressiveImage wire frame.
struct ProgressiveFrame {
  std::uint64_t step = 0;
  std::int32_t level = 0;      ///< 0 = coarse root
  std::int32_t numLevels = 0;  ///< levels this step's burst contains
  std::int32_t fullWidth = 0;  ///< resolution the finest level reaches
  std::int32_t fullHeight = 0;
  multires::ImageLevel image;  ///< root pixels or mod-256 residuals
};

/// Decompose `frame` and encode every level as its own wire frame, coarse
/// first. `rawBytesOut`, if given, accumulates the plain kImageFrame
/// encoding size (the broker's raw-vs-wire accounting, same convention as
/// encodeImagePayload).
std::vector<std::vector<std::byte>> encodeProgressiveImage(
    const steer::ImageFrame& frame, const CodecConfig& codec,
    int rootMaxDim = 8, std::uint64_t* rawBytesOut = nullptr);

std::vector<std::byte> encodeProgressiveFrame(const ProgressiveFrame& frame,
                                              bool rlePayload);

ProgressiveFrame decodeProgressiveFrame(const std::vector<std::byte>& bytes);

/// Non-throwing decode for untrusted input.
std::optional<ProgressiveFrame> tryDecodeProgressiveFrame(
    const std::vector<std::byte>& bytes);

/// Client-side reassembly of a progressive stream. Levels chain (each
/// residual refines the previous reconstruction), so a frame is applied
/// only if it is the root of a newer step or the exact next level of the
/// current step; anything else — a stale step, a gap left by an upstream
/// shed — is counted and ignored. After any accepted root the assembler
/// always has a displayable image.
class ProgressiveAssembler {
 public:
  /// Returns true when the frame improved the current image.
  bool accept(const ProgressiveFrame& frame);

  bool hasImage() const { return state_.levelsApplied > 0; }
  std::uint64_t step() const { return step_; }
  int levelsApplied() const { return state_.levelsApplied; }
  int numLevels() const { return numLevels_; }
  bool complete() const {
    return hasImage() && state_.levelsApplied == numLevels_;
  }

  /// Frames ignored because a shed level broke the residual chain.
  std::uint64_t framesSkipped() const { return framesSkipped_; }

  /// Current picture upsampled to the stream's full resolution, tagged
  /// with the step it shows. Requires hasImage().
  steer::ImageFrame current() const;

 private:
  multires::ImageReassembly state_;
  std::uint64_t step_ = 0;
  std::int32_t numLevels_ = 0;
  std::int32_t fullWidth_ = 0;
  std::int32_t fullHeight_ = 0;
  std::uint64_t framesSkipped_ = 0;
};

}  // namespace hemo::serve
