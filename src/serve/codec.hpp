#pragma once
/// \file codec.hpp
/// \brief Wire codecs for the in situ serving plane.
///
/// The paper's Table I argument is that *communication bytes* decide which
/// in situ algorithms survive at scale; the serving layer therefore
/// compresses every stream before it crosses the wire. Three pluggable
/// lossless/bounded-loss primitives cover the steer payload types:
///   * run-length coding for rendered images (flat background dominates),
///   * delta+varint for site-index / Morton-key sequences (sorted, dense),
///   * optional quantised floats with a *stated* max absolute error for
///     ROI field payloads.
/// A client negotiates its codec set with a kSetCodec command; the broker
/// encodes each frame once per negotiated configuration and counts raw vs
/// wire bytes so Table I–style measurements report compressed volumes.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "steer/protocol.hpp"

namespace hemo::serve {

/// Per-client codec negotiation, packed into steer::Command::codec as a
/// feature mask (quantised-float max error travels in Command::value).
struct CodecConfig {
  bool rleImage = false;      ///< run-length-code image streams
  bool deltaIndices = false;  ///< delta+varint ROI keys/counts
  double quantError = 0.0;    ///< > 0: quantise ROI floats, |err| <= this
  bool progressive = false;   ///< image streams as coarse-to-fine level deltas

  std::uint8_t mask() const {
    return static_cast<std::uint8_t>((rleImage ? 1 : 0) |
                                     (deltaIndices ? 2 : 0) |
                                     (quantError > 0.0 ? 4 : 0) |
                                     (progressive ? 8 : 0));
  }

  static CodecConfig fromCommand(const steer::Command& cmd) {
    CodecConfig c;
    c.rleImage = (cmd.codec & 1) != 0;
    c.deltaIndices = (cmd.codec & 2) != 0;
    c.quantError = (cmd.codec & 4) != 0 ? cmd.value : 0.0;
    c.progressive = (cmd.codec & 8) != 0;
    return c;
  }

  bool anyEnabled() const {
    return rleImage || deltaIndices || quantError > 0.0 || progressive;
  }
};

// --- primitives ------------------------------------------------------------

/// Byte-oriented run-length coding: (run-1, value) pairs, runs up to 256.
/// Exact round trip; worst case doubles the size, flat images shrink ~128x.
std::vector<std::byte> rleEncode(const std::uint8_t* data, std::size_t n);
std::vector<std::uint8_t> rleDecode(const std::vector<std::byte>& coded);

/// Delta + zigzag + LEB128 varint for integer sequences. Exact round trip;
/// sorted site indices / Morton keys code to ~1 byte per element.
std::vector<std::byte> deltaVarintEncode(
    const std::vector<std::uint64_t>& values);
std::vector<std::uint64_t> deltaVarintDecode(const std::vector<std::byte>& c);

/// Quantised floats: values snap to a uniform grid of pitch 2*maxError
/// (round-to-nearest => absolute error <= maxError), then the grid indices
/// are delta+varint coded. maxError must be > 0.
std::vector<std::byte> quantFloatEncode(const std::vector<float>& values,
                                        double maxError);
std::vector<float> quantFloatDecode(const std::vector<std::byte>& coded);

// --- framed payloads -------------------------------------------------------

/// Encode an image frame under `codec` as a kCodedImage wire frame (falls
/// back to the plain kImageFrame encoding when nothing is enabled).
/// `rawBytesOut`, if given, receives the uncompressed encoding size the
/// frame *would* have had — the broker's raw-vs-wire accounting.
std::vector<std::byte> encodeImagePayload(const steer::ImageFrame& frame,
                                          const CodecConfig& codec,
                                          std::uint64_t* rawBytesOut = nullptr);

/// Decode either a kImageFrame or a kCodedImage wire frame.
steer::ImageFrame decodeImagePayload(const std::vector<std::byte>& bytes);

/// Encode ROI node data under `codec` as a kCodedRoi wire frame (plain
/// kRoiData encoding when nothing is enabled). Keys/counts are exact;
/// float columns are exact unless quantError > 0, then within quantError.
std::vector<std::byte> encodeRoiPayload(const steer::RoiData& roi,
                                        const CodecConfig& codec,
                                        std::uint64_t* rawBytesOut = nullptr);

/// Decode either a kRoiData or a kCodedRoi wire frame.
steer::RoiData decodeRoiPayload(const std::vector<std::byte>& bytes);

/// Non-throwing decode variants for untrusted input: nullopt instead of
/// CheckError on truncated / oversized / malformed frames.
std::optional<steer::ImageFrame> tryDecodeImagePayload(
    const std::vector<std::byte>& bytes);
std::optional<steer::RoiData> tryDecodeRoiPayload(
    const std::vector<std::byte>& bytes);

}  // namespace hemo::serve
