#include "serve/codec.hpp"

#include <cmath>

#include "io/serial.hpp"
#include "multires/octree.hpp"
#include "util/check.hpp"

namespace hemo::serve {

namespace {

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void putVarint(io::Writer& w, std::uint64_t v) {
  while (v >= 0x80) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w.put<std::uint8_t>(static_cast<std::uint8_t>(v));
}

std::uint64_t getVarint(io::Reader& r) {
  // A u64 varint is at most 10 bytes, and the 10th byte carries only the
  // top bit of the value: its payload must be 0 or 1 and it must be the
  // final byte. Anything else either drops overflow bits silently or is a
  // non-canonical overlong encoding — both rejected.
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const auto byte = r.get<std::uint8_t>();
    const auto payload = static_cast<std::uint64_t>(byte & 0x7f);
    if (shift == 63) {
      HEMO_CHECK_MSG(payload <= 1, "varint overflows 64 bits");
      HEMO_CHECK_MSG((byte & 0x80) == 0, "varint overlong");
    }
    v |= payload << shift;
    if ((byte & 0x80) == 0) return v;
  }
  HEMO_CHECK_MSG(false, "varint overlong");
  return 0;
}

void putDeltaVarint(io::Writer& w, const std::vector<std::uint64_t>& values) {
  putVarint(w, values.size());
  std::uint64_t prev = 0;
  for (const std::uint64_t v : values) {
    putVarint(w, zigzag(static_cast<std::int64_t>(v - prev)));
    prev = v;
  }
}

std::vector<std::uint64_t> getDeltaVarint(io::Reader& r) {
  const std::uint64_t n = getVarint(r);
  // Each encoded value is at least one byte, so an adversarial count must
  // be rejected *before* the reserve allocates it.
  HEMO_CHECK_MSG(n <= r.remaining(), "delta-varint count exceeds payload");
  std::vector<std::uint64_t> values;
  values.reserve(static_cast<std::size_t>(n));
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    prev += static_cast<std::uint64_t>(unzigzag(getVarint(r)));
    values.push_back(prev);
  }
  return values;
}

/// Float column: u8 mode (0 raw, 1 quantised) then the payload.
void putFloatColumn(io::Writer& w, const std::vector<float>& values,
                    double maxError) {
  if (maxError > 0.0) {
    w.put<std::uint8_t>(1);
    const auto coded = quantFloatEncode(values, maxError);
    putVarint(w, coded.size());
    w.putRaw(coded.data(), coded.size());
  } else {
    w.put<std::uint8_t>(0);
    putVarint(w, values.size());
    w.putRaw(values.data(), values.size() * sizeof(float));
  }
}

std::vector<float> getFloatColumn(io::Reader& r) {
  const auto mode = r.get<std::uint8_t>();
  const std::uint64_t n = getVarint(r);
  if (mode == 1) {
    HEMO_CHECK_MSG(n <= r.remaining(), "float column exceeds payload");
    std::vector<std::byte> coded(static_cast<std::size_t>(n));
    r.getRaw(coded.data(), coded.size());
    return quantFloatDecode(coded);
  }
  HEMO_CHECK_MSG(n <= r.remaining() / sizeof(float),
                 "float column exceeds payload");
  std::vector<float> values(static_cast<std::size_t>(n));
  r.getRaw(values.data(), values.size() * sizeof(float));
  return values;
}

}  // namespace

std::vector<std::byte> rleEncode(const std::uint8_t* data, std::size_t n) {
  io::Writer w;
  putVarint(w, n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t run = 1;
    while (run < 256 && i + run < n && data[i + run] == data[i]) ++run;
    w.put<std::uint8_t>(static_cast<std::uint8_t>(run - 1));
    w.put<std::uint8_t>(data[i]);
    i += run;
  }
  return w.take();
}

std::vector<std::uint8_t> rleDecode(const std::vector<std::byte>& coded) {
  io::Reader r(coded);
  const std::uint64_t n = getVarint(r);
  // Every 2-byte (run, value) pair expands to at most 256 output bytes;
  // division form avoids overflow on adversarial counts, and bounds the
  // reserve before it allocates.
  HEMO_CHECK_MSG(n / 256 <= coded.size(), "rle count exceeds payload");
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(n));
  while (out.size() < n) {
    const std::size_t run = static_cast<std::size_t>(r.get<std::uint8_t>()) + 1;
    const auto value = r.get<std::uint8_t>();
    out.insert(out.end(), run, value);
  }
  HEMO_CHECK_MSG(out.size() == n && r.atEnd(), "rle stream corrupt");
  return out;
}

std::vector<std::byte> deltaVarintEncode(
    const std::vector<std::uint64_t>& values) {
  io::Writer w;
  putDeltaVarint(w, values);
  return w.take();
}

std::vector<std::uint64_t> deltaVarintDecode(const std::vector<std::byte>& c) {
  io::Reader r(c);
  auto values = getDeltaVarint(r);
  HEMO_CHECK_MSG(r.atEnd(), "delta-varint stream corrupt");
  return values;
}

std::vector<std::byte> quantFloatEncode(const std::vector<float>& values,
                                        double maxError) {
  HEMO_CHECK_MSG(maxError > 0.0, "quantFloatEncode needs maxError > 0");
  const double pitch = 2.0 * maxError;
  io::Writer w;
  w.put<double>(pitch);
  putVarint(w, values.size());
  std::int64_t prev = 0;
  for (const float v : values) {
    const std::int64_t q =
        static_cast<std::int64_t>(std::llround(static_cast<double>(v) / pitch));
    putVarint(w, zigzag(q - prev));
    prev = q;
  }
  return w.take();
}

std::vector<float> quantFloatDecode(const std::vector<std::byte>& coded) {
  io::Reader r(coded);
  const double pitch = r.get<double>();
  const std::uint64_t n = getVarint(r);
  HEMO_CHECK_MSG(n <= r.remaining(), "quant-float count exceeds payload");
  std::vector<float> values;
  values.reserve(static_cast<std::size_t>(n));
  std::int64_t q = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    q += unzigzag(getVarint(r));
    values.push_back(static_cast<float>(static_cast<double>(q) * pitch));
  }
  HEMO_CHECK_MSG(r.atEnd(), "quant-float stream corrupt");
  return values;
}

std::vector<std::byte> encodeImagePayload(const steer::ImageFrame& frame,
                                          const CodecConfig& codec,
                                          std::uint64_t* rawBytesOut) {
  // Raw encoding size: the plain kImageFrame wire frame.
  const std::uint64_t rawSize =
      1 + 8 + 4 + 4 + 8 + static_cast<std::uint64_t>(frame.rgb.size());
  if (rawBytesOut != nullptr) *rawBytesOut = rawSize;
  if (!codec.rleImage) return steer::encodeImage(frame);
  io::Writer w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(steer::MsgType::kCodedImage));
  w.put<std::uint64_t>(frame.step);
  w.put<std::int32_t>(frame.width);
  w.put<std::int32_t>(frame.height);
  const auto coded = rleEncode(frame.rgb.data(), frame.rgb.size());
  w.put<std::uint64_t>(coded.size());
  w.putRaw(coded.data(), coded.size());
  return w.take();
}

steer::ImageFrame decodeImagePayload(const std::vector<std::byte>& bytes) {
  if (steer::frameType(bytes) == steer::MsgType::kImageFrame) {
    return steer::decodeImage(bytes);
  }
  io::Reader r(bytes);
  HEMO_CHECK(static_cast<steer::MsgType>(r.get<std::uint8_t>()) ==
             steer::MsgType::kCodedImage);
  steer::ImageFrame frame;
  frame.step = r.get<std::uint64_t>();
  frame.width = r.get<std::int32_t>();
  frame.height = r.get<std::int32_t>();
  const auto codedSize = r.get<std::uint64_t>();
  HEMO_CHECK_MSG(codedSize <= r.remaining(), "coded image exceeds payload");
  std::vector<std::byte> coded(static_cast<std::size_t>(codedSize));
  r.getRaw(coded.data(), coded.size());
  HEMO_CHECK(r.atEnd());
  frame.rgb = rleDecode(coded);
  return frame;
}

std::vector<std::byte> encodeRoiPayload(const steer::RoiData& roi,
                                        const CodecConfig& codec,
                                        std::uint64_t* rawBytesOut) {
  const std::uint64_t rawSize =
      1 + 8 + 4 + 8 +
      static_cast<std::uint64_t>(roi.nodes.size() *
                                 sizeof(multires::OctreeNode));
  if (rawBytesOut != nullptr) *rawBytesOut = rawSize;
  if (!codec.deltaIndices && codec.quantError <= 0.0) {
    return steer::encodeRoi(roi);
  }
  const auto cols = multires::splitColumns(roi.nodes);
  io::Writer w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(steer::MsgType::kCodedRoi));
  w.put<std::uint64_t>(roi.step);
  w.put<std::int32_t>(roi.level);
  // Keys/counts: exact. Level keys arrive sorted from gatherRoi, so the
  // delta stream is short; raw fallback keeps the frame self-describing.
  w.put<std::uint8_t>(codec.deltaIndices ? 1 : 0);
  if (codec.deltaIndices) {
    putDeltaVarint(w, cols.keys);
    putDeltaVarint(w, cols.counts);
  } else {
    w.putVec(cols.keys);
    w.putVec(cols.counts);
  }
  putFloatColumn(w, cols.meanScalar, codec.quantError);
  putFloatColumn(w, cols.minScalar, codec.quantError);
  putFloatColumn(w, cols.maxScalar, codec.quantError);
  putFloatColumn(w, cols.velocity, codec.quantError);
  return w.take();
}

steer::RoiData decodeRoiPayload(const std::vector<std::byte>& bytes) {
  if (steer::frameType(bytes) == steer::MsgType::kRoiData) {
    return steer::decodeRoi(bytes);
  }
  io::Reader r(bytes);
  HEMO_CHECK(static_cast<steer::MsgType>(r.get<std::uint8_t>()) ==
             steer::MsgType::kCodedRoi);
  steer::RoiData roi;
  roi.step = r.get<std::uint64_t>();
  roi.level = r.get<std::int32_t>();
  multires::NodeColumns cols;
  const bool delta = r.get<std::uint8_t>() != 0;
  if (delta) {
    cols.keys = getDeltaVarint(r);
    cols.counts = getDeltaVarint(r);
  } else {
    cols.keys = r.getVec<std::uint64_t>();
    cols.counts = r.getVec<std::uint64_t>();
  }
  cols.meanScalar = getFloatColumn(r);
  cols.minScalar = getFloatColumn(r);
  cols.maxScalar = getFloatColumn(r);
  cols.velocity = getFloatColumn(r);
  HEMO_CHECK(r.atEnd());
  roi.nodes = multires::mergeColumns(cols);
  return roi;
}

std::optional<steer::ImageFrame> tryDecodeImagePayload(
    const std::vector<std::byte>& bytes) {
  try {
    return decodeImagePayload(bytes);
  } catch (const CheckError&) {
    return std::nullopt;
  }
}

std::optional<steer::RoiData> tryDecodeRoiPayload(
    const std::vector<std::byte>& bytes) {
  try {
    return decodeRoiPayload(bytes);
  } catch (const CheckError&) {
    return std::nullopt;
  }
}

}  // namespace hemo::serve
