#pragma once
/// \file client.hpp
/// \brief Client-side session wrapper for the serving plane: typed
/// subscribe/unsubscribe/codec commands plus blocking and non-blocking
/// receives that transparently decode coded wire frames.
///
/// Unlike steer::SteeringClient (one stream, blocking typed awaits), a
/// ServeClient consumes an *event stream*: whatever the broker pushed —
/// images, status, telemetry, observables, ROI data, acks — arrives in
/// order through pollEvent()/nextEvent(), already decoded from whichever
/// codec this client negotiated.

#include <optional>

#include "comm/channel.hpp"
#include "serve/broker.hpp"
#include "serve/codec.hpp"
#include "steer/protocol.hpp"

namespace hemo::serve {

class ServeClient {
 public:
  explicit ServeClient(comm::ChannelEnd end) : end_(std::move(end)) {}

  // --- commands (return the client-side command id) ----------------------

  /// Subscribe to image/status/telemetry frames every `cadence` steps.
  std::uint32_t subscribe(StreamKind stream, std::int32_t cadence);

  /// Subscribe to an observable over a lattice-box subset (empty = whole
  /// domain).
  std::uint32_t subscribeObservable(std::int32_t cadence,
                                    steer::ObservableKind kind,
                                    const BoxI& roi = {});

  /// Subscribe to ROI octree data at `level` every `cadence` steps.
  std::uint32_t subscribeRoi(std::int32_t cadence, const BoxI& roi,
                             std::int32_t level);

  std::uint32_t unsubscribe(StreamKind stream);

  /// Negotiate this client's wire codecs.
  std::uint32_t setCodec(const CodecConfig& codec);

  /// Send an arbitrary steering command (camera, tau, pause, ...).
  std::uint32_t send(steer::Command cmd);

  // --- event stream -------------------------------------------------------

  struct Event {
    steer::MsgType type{};
    steer::ImageFrame image;              ///< kImageFrame / kCodedImage
    steer::RoiData roi;                   ///< kRoiData / kCodedRoi
    steer::StatusReport status;           ///< kStatus
    steer::ObservableReport observable;   ///< kObservable
    telemetry::StepReport telemetry;      ///< kTelemetry
    std::uint32_t ackId = 0;              ///< kAck
    std::uint64_t wireBytes = 0;          ///< frame size on the wire
  };

  /// Non-blocking: the next queued event, or nullopt when none is waiting.
  std::optional<Event> pollEvent();

  /// Blocking: the next event; nullopt once the broker closed (EOF).
  std::optional<Event> nextEvent();

  /// Blocking convenience: skip to the next image (other events are
  /// discarded); nullopt at EOF.
  std::optional<steer::ImageFrame> awaitImage();

  void close() { end_.close(); }

 private:
  Event decode(const std::vector<std::byte>& frame) const;

  comm::ChannelEnd end_;
  std::uint32_t nextCommandId_ = 1;
};

}  // namespace hemo::serve
