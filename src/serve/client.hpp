#pragma once
/// \file client.hpp
/// \brief Client-side session wrapper for the serving plane: typed
/// subscribe/unsubscribe/codec commands plus blocking and non-blocking
/// receives that transparently decode coded wire frames.
///
/// Unlike steer::SteeringClient (one stream, blocking typed awaits), a
/// ServeClient consumes an *event stream*: whatever the broker pushed —
/// images, status, telemetry, observables, ROI data, acks — arrives in
/// order through pollEvent()/nextEvent(), already decoded from whichever
/// codec this client negotiated.
///
/// Session recovery (enableReconnect): when the broker end closes — e.g.
/// this client was evicted after a frame was truncated in flight — the
/// client redials through the supplied connector with exponential backoff
/// plus seeded jitter, then replays its negotiated codec and every active
/// subscription, so streams resume at the simulation's current step.
/// Broker heartbeats are acked internally (never surfaced as events), and
/// a frame that fails to decode is counted and skipped, not fatal.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "comm/channel.hpp"
#include "serve/broker.hpp"
#include "serve/codec.hpp"
#include "serve/progressive.hpp"
#include "steer/protocol.hpp"
#include "util/rng.hpp"

namespace hemo::serve {

/// Backoff policy for enableReconnect(): attempt k sleeps a uniformly
/// jittered U(0, min(maxDelayMillis, baseDelayMillis * 2^k)) milliseconds
/// (full jitter, so reconnect storms decorrelate), from a seeded Rng for
/// reproducible tests.
struct ReconnectConfig {
  int maxAttempts = 8;
  int baseDelayMillis = 1;
  int maxDelayMillis = 250;
  std::uint64_t jitterSeed = 0x5eed;
};

class ServeClient {
 public:
  explicit ServeClient(comm::ChannelEnd end) : end_(std::move(end)) {}

  // --- commands (return the client-side command id) ----------------------

  /// Subscribe to image/status/telemetry frames every `cadence` steps.
  std::uint32_t subscribe(StreamKind stream, std::int32_t cadence);

  /// Subscribe to an observable over a lattice-box subset (empty = whole
  /// domain).
  std::uint32_t subscribeObservable(std::int32_t cadence,
                                    steer::ObservableKind kind,
                                    const BoxI& roi = {});

  /// Subscribe to ROI octree data at `level` every `cadence` steps.
  std::uint32_t subscribeRoi(std::int32_t cadence, const BoxI& roi,
                             std::int32_t level);

  std::uint32_t unsubscribe(StreamKind stream);

  /// Negotiate this client's wire codecs.
  std::uint32_t setCodec(const CodecConfig& codec);

  /// Send an arbitrary steering command (camera, tau, pause, ...).
  std::uint32_t send(steer::Command cmd);

  /// Announce this session as a relay (kRelayHello). Replayed on
  /// reconnect before codec/subscriptions, so the upstream re-learns the
  /// session's role.
  std::uint32_t announceRelay();

  /// Grant the upstream `credits` more fine-level frames, acking the
  /// newest progressive level consumed. Sent as a compact kCredit frame
  /// (not a Command); the first grant switches the upstream's outbox to
  /// credit-metered refinements.
  void sendCredit(std::uint32_t credits, std::uint64_t ackStep = 0,
                  std::int32_t ackLevel = -1);

  // --- event stream -------------------------------------------------------

  struct Event {
    steer::MsgType type{};
    steer::ImageFrame image;              ///< kImageFrame / kCodedImage
    steer::RoiData roi;                   ///< kRoiData / kCodedRoi
    steer::StatusReport status;           ///< kStatus
    steer::ObservableReport observable;   ///< kObservable
    telemetry::StepReport telemetry;      ///< kTelemetry
    std::uint32_t ackId = 0;              ///< kAck
    /// kReject / kRejectedAfterRollback: the refused command's id (as the
    /// client issued it) and the reason.
    std::uint32_t rejectId = 0;
    steer::RejectReason rejectReason = steer::RejectReason::kNone;
    std::uint64_t wireBytes = 0;          ///< frame size on the wire
    /// kProgressiveImage: the level index this frame carried, and whether
    /// it advanced the reassembly (then `image` holds the current
    /// reconstruction at full resolution).
    std::int32_t progressiveLevel = -1;
    bool progressiveReady = false;
    /// Raw wire bytes (keepRawFrames mode only) — what a relay forwards
    /// verbatim downstream without re-encoding.
    std::vector<std::byte> raw;
  };

  /// Relay mode: payload frames (images, ROI, status, telemetry,
  /// observables, progressive levels) are returned with `raw` filled and
  /// payload decoding skipped — forwarding stays re-encoding-free.
  /// Progressive frames still get their level header parsed (the shed /
  /// credit logic needs it); acks and rejects are always decoded.
  void setKeepRawFrames(bool keep) { keepRaw_ = keep; }

  /// Non-blocking: the next queued event, or nullopt when none is waiting.
  std::optional<Event> pollEvent();

  /// Blocking: the next event; nullopt once the broker closed (EOF).
  std::optional<Event> nextEvent();

  /// Blocking convenience: skip to the next image (other events are
  /// discarded); nullopt at EOF.
  std::optional<steer::ImageFrame> awaitImage();

  void close() { end_.close(); }

  // --- session recovery ---------------------------------------------------

  /// Arm automatic reconnection. `connector` dials a fresh connection
  /// (typically [&broker] { return broker.requestConnect(true); }) and
  /// may return an invalid ChannelEnd to signal "try again later".
  void enableReconnect(std::function<comm::ChannelEnd()> connector,
                       ReconnectConfig config = {});

  /// Successful redials so far.
  std::uint64_t reconnects() const { return reconnects_; }

  /// Frames dropped client-side because they failed to decode.
  std::uint64_t corruptFramesSkipped() const { return corruptFrames_; }

  /// Progressive reassembly state (levels applied, frames skipped because
  /// an upstream shed broke the residual chain, current image).
  const ProgressiveAssembler& progressive() const { return assembler_; }

 private:
  Event decode(const std::vector<std::byte>& frame);

  /// Track subscriptions/codec so a reconnect can replay them.
  void recordSessionState(const steer::Command& cmd);

  /// Heartbeats are acked here and never surfaced. Returns true when the
  /// frame was consumed internally.
  bool handleInternal(const std::vector<std::byte>& frame);

  /// Redial + replay session state. False when no connector is armed or
  /// every attempt failed.
  bool tryReconnect();

  comm::ChannelEnd end_;
  std::uint32_t nextCommandId_ = 1;

  std::function<comm::ChannelEnd()> connector_;
  ReconnectConfig reconnectConfig_;
  Rng jitterRng_{0};
  std::uint64_t reconnects_ = 0;
  std::uint64_t corruptFrames_ = 0;
  std::optional<steer::Command> codecCommand_;
  std::optional<steer::Command> helloCommand_;
  std::vector<steer::Command> activeSubscriptions_;
  bool keepRaw_ = false;
  ProgressiveAssembler assembler_;
};

}  // namespace hemo::serve
