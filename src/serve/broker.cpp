#include "serve/broker.hpp"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "serve/progressive.hpp"

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"

namespace hemo::serve {

namespace {

inline std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

inline std::uint64_t mixInto(std::uint64_t h, std::uint64_t v) {
  return comm::detail::mix64(h, v);
}

/// Codec discriminator inside the frame cache key: only features that
/// change the encoded image bytes participate.
inline std::uint8_t imageCodecKey(const CodecConfig& codec) {
  return static_cast<std::uint8_t>((codec.rleImage ? 1 : 0) |
                                   (codec.progressive ? 2 : 0));
}

}  // namespace

std::uint64_t viewKey(const vis::VolumeRenderOptions& options) {
  std::uint64_t h = 0x5e55e11e;
  const auto& cam = options.camera;
  for (const double v :
       {cam.position.x, cam.position.y, cam.position.z, cam.target.x,
        cam.target.y, cam.target.z, cam.up.x, cam.up.y, cam.up.z,
        cam.fovYDegrees}) {
    h = mixInto(h, bits(v));
  }
  h = mixInto(h, static_cast<std::uint64_t>(options.field));
  h = mixInto(h, static_cast<std::uint64_t>(options.width));
  h = mixInto(h, static_cast<std::uint64_t>(options.height));
  if (options.clipBox) {
    for (const double v :
         {options.clipBox->lo.x, options.clipBox->lo.y, options.clipBox->lo.z,
          options.clipBox->hi.x, options.clipBox->hi.y,
          options.clipBox->hi.z}) {
      h = mixInto(h, bits(v));
    }
  }
  return h;
}

int SessionBroker::addClient(comm::ChannelEnd end) {
  HEMO_CHECK_MSG(end.valid(), "broker client end must be connected");
  end.setSendCapacity(config_.outboxCapacity);
  clients_.push_back(Client{std::move(end), CodecConfig{}, {}});
  return static_cast<int>(clients_.size()) - 1;
}

comm::ChannelEnd SessionBroker::connect() {
  auto [clientEnd, brokerEnd] = comm::makeChannelPair();
  addClient(std::move(brokerEnd));
  return clientEnd;
}

comm::ChannelEnd SessionBroker::requestConnect(bool isReconnect) {
  auto [clientEnd, brokerEnd] = comm::makeChannelPair();
  {
    std::lock_guard<std::mutex> lock(pendingMutex_);
    pendingConnects_.push_back(
        PendingConnect{std::move(brokerEnd), isReconnect});
  }
  return clientEnd;
}

void SessionBroker::admitPending() {
  std::vector<PendingConnect> pending;
  {
    std::lock_guard<std::mutex> lock(pendingMutex_);
    pending.swap(pendingConnects_);
  }
  for (auto& pc : pending) {
    addClient(std::move(pc.end));
    if (pc.isReconnect) ++stats_.reconnects;
  }
}

int SessionBroker::numRelaySessions() const {
  int n = 0;
  for (const auto& client : clients_) {
    if (client.alive && client.relay) ++n;
  }
  return n;
}

int SessionBroker::numAliveClients() const {
  int alive = 0;
  for (const auto& client : clients_) {
    if (client.alive) ++alive;
  }
  return alive;
}

void SessionBroker::evict(int client, const char* reason) {
  Client& c = clients_[static_cast<std::size_t>(client)];
  if (!c.alive) return;
  c.sentSnapshot = c.end.framesSent();
  c.droppedSnapshot = c.end.framesDropped();
  c.end.close();            // client drains queued frames, then sees EOF
  c.end = comm::ChannelEnd{};  // release the outbox
  c.alive = false;
  for (auto& s : c.subs) s.active = false;
  ++stats_.evictions;
  HEMO_LOG_WARN() << "broker evicted client " << client << ": " << reason;
}

void SessionBroker::heartbeat(comm::Communicator& comm, std::uint64_t step) {
  if (config_.heartbeatEvery <= 0 ||
      step % static_cast<std::uint64_t>(config_.heartbeatEvery) != 0 ||
      step == lastHeartbeatStep_) {
    return;
  }
  lastHeartbeatStep_ = step;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    Client& c = clients_[i];
    if (!c.alive) continue;
    if (c.hbSent - c.hbAcked >=
        static_cast<std::uint64_t>(config_.missedHeartbeatLimit)) {
      evict(static_cast<int>(i), "missed heartbeats");
      continue;
    }
    ++c.hbSent;
    ++stats_.heartbeats;
    sendTo(comm, c, steer::encodeHeartbeat(c.hbSent), 9);
  }
}

void SessionBroker::sendTo(comm::Communicator& comm, Client& client,
                           std::vector<std::byte> frame,
                           std::uint64_t rawBytes) {
  if (!client.alive) return;  // evicted while its request was in flight
  auto& counters = comm.counters().of(comm::Traffic::kSteer);
  ++counters.messagesSent;
  counters.bytesSent += frame.size();
  ++stats_.framesSent;
  stats_.wireBytes += frame.size();
  stats_.rawBytes += rawBytes;
  client.end.send(std::move(frame));
}

std::vector<steer::Command> SessionBroker::drainCommands(
    comm::Communicator& comm, std::uint64_t step) {
  {
    // Fault hook: a thrown fault here models the serving plane itself
    // dying; the driver catches it and degrades to solver-only.
    auto& fi = util::FaultInjector::instance();
    if (fi.armed() && fi.decide(util::FaultSite::kBrokerPoll, 0) ==
                          util::FaultAction::kFail) {
      throw util::InjectedFaultError("injected broker poll failure");
    }
  }
  admitPending();
  std::vector<steer::Command> out;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    Client& client = clients_[i];
    while (client.alive) {
      auto frame = client.end.tryRecv();
      if (!frame) break;
      // Client→master traffic enters through the channel, not the mailbox;
      // count it here to keep the kSteer class symmetric.
      auto& counters = comm.counters().of(comm::Traffic::kSteer);
      ++counters.messagesReceived;
      counters.bytesReceived += frame->size();
      ++stats_.commandsReceived;
      // A frame that does not decode (truncated or corrupted in flight)
      // condemns the *client*, never the broker: evict and move on.
      try {
        if (steer::frameType(*frame) == steer::MsgType::kHeartbeatAck) {
          client.hbAcked =
              std::max(client.hbAcked, steer::decodeHeartbeatSeq(*frame));
          continue;
        }
        if (steer::frameType(*frame) == steer::MsgType::kCredit) {
          // Credit grant: switch the outbox to metered fine-level sends on
          // the first grant, then top the balance up.
          const auto credit = steer::decodeCredit(*frame);
          if (!client.creditMetered) {
            client.creditMetered = true;
            client.end.setSendCredits(credit.credits);
          } else {
            client.end.addSendCredits(credit.credits);
          }
          continue;
        }
        auto cmd = steer::decodeCommand(*frame);
        switch (cmd.type) {
          case steer::MsgType::kRelayHello: {
            client.relay = true;
            sendTo(comm, client, steer::encodeAck(cmd.commandId), 5);
            break;
          }
          case steer::MsgType::kSubscribe: {
            HEMO_CHECK_MSG(static_cast<int>(cmd.stream) < kNumStreams,
                           "bad stream kind");
            auto& s = client.subs[cmd.stream];
            s.active = true;
            s.cadence = std::max<std::int32_t>(1, cmd.cadence);
            s.params = cmd;
            s.lastFiredStep = ~std::uint64_t{0};
            sendTo(comm, client, steer::encodeAck(cmd.commandId), 5);
            break;
          }
          case steer::MsgType::kUnsubscribe: {
            HEMO_CHECK_MSG(static_cast<int>(cmd.stream) < kNumStreams,
                           "bad stream kind");
            client.subs[cmd.stream].active = false;
            sendTo(comm, client, steer::encodeAck(cmd.commandId), 5);
            break;
          }
          case steer::MsgType::kSetCodec: {
            client.codec = CodecConfig::fromCommand(cmd);
            sendTo(comm, client, steer::encodeAck(cmd.commandId), 5);
            break;
          }
          default: {
            // Forward to the simulation under a broker-unique id so
            // replies route back to this client even when ids collide
            // across clients.
            const std::uint32_t brokerId = nextBrokerId_++;
            const Pending route{{static_cast<int>(i)}, {cmd.commandId}, true};
            pending_[brokerId] = route;
            routes_[brokerId] = route;
            routeOrder_.push_back(brokerId);
            if (routeOrder_.size() > kRouteHistory) {
              routes_.erase(routeOrder_.front());
              routeOrder_.erase(routeOrder_.begin());
            }
            cmd.commandId = brokerId;
            out.push_back(cmd);
            break;
          }
        }
      } catch (const CheckError&) {
        evict(static_cast<int>(i), "undecodable frame");
      }
    }
  }
  heartbeat(comm, step);

  // Synthesize one tick command per *distinct* due request, shared by all
  // clients whose subscription matches — N status subscribers cost one
  // collective status computation, not N.
  struct TickKey {
    steer::MsgType type;
    BoxI roi;
    std::int32_t level = 0;
    std::uint8_t observable = 0;

    bool operator<(const TickKey& o) const {
      const auto tup = [](const TickKey& k) {
        return std::tuple(static_cast<int>(k.type), k.roi.lo.x, k.roi.lo.y,
                          k.roi.lo.z, k.roi.hi.x, k.roi.hi.y, k.roi.hi.z,
                          k.level, static_cast<int>(k.observable));
      };
      return tup(*this) < tup(o);
    }
  };
  std::map<TickKey, std::uint32_t> ticks;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    Client& client = clients_[i];
    if (!client.alive) continue;
    for (int k = 0; k < kNumStreams; ++k) {
      const auto kind = static_cast<StreamKind>(k);
      if (kind == StreamKind::kImage) continue;  // served via publishImage
      auto& s = client.subs[k];
      if (!due(s, step) || s.lastFiredStep == step) continue;
      s.lastFiredStep = step;
      steer::Command cmd = s.params;
      switch (kind) {
        case StreamKind::kStatus:
          cmd.type = steer::MsgType::kRequestStatus;
          break;
        case StreamKind::kTelemetry:
          cmd.type = steer::MsgType::kRequestTelemetry;
          break;
        case StreamKind::kObservable:
          cmd.type = steer::MsgType::kRequestObservable;
          break;
        case StreamKind::kRoi:
          cmd.type = steer::MsgType::kSetRoi;
          break;
        default:
          continue;
      }
      TickKey key{cmd.type, cmd.roi, cmd.roiLevel, cmd.observable};
      auto [it, inserted] = ticks.try_emplace(key, 0);
      if (inserted) {
        const std::uint32_t brokerId = nextBrokerId_++;
        it->second = brokerId;
        pending_[brokerId] = Pending{{static_cast<int>(i)}, {}, false};
        cmd.commandId = brokerId;
        out.push_back(cmd);
      } else {
        pending_[it->second].clients.push_back(static_cast<int>(i));
      }
    }
  }
  return out;
}

bool SessionBroker::imageDue(std::uint64_t step) const {
  for (const auto& client : clients_) {
    if (due(client.subs[static_cast<int>(StreamKind::kImage)], step)) {
      return true;
    }
  }
  return false;
}

const std::vector<std::byte>& SessionBroker::cachedImage(
    std::uint64_t view, const steer::ImageFrame& frame,
    const CodecConfig& codec, std::uint64_t* rawBytesOut) {
  if (frame.step != cacheStep_) {
    cache_.clear();
    cacheStep_ = frame.step;
  }
  const auto key = std::make_pair(view, imageCodecKey(codec));
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++stats_.cacheMisses;
    CacheEntry entry;
    entry.bytes = encodeImagePayload(frame, codec, &entry.rawBytes);
    it = cache_.emplace(key, std::move(entry)).first;
  } else {
    ++stats_.cacheHits;
  }
  if (rawBytesOut != nullptr) *rawBytesOut = it->second.rawBytes;
  return it->second.bytes;
}

const std::vector<std::vector<std::byte>>& SessionBroker::cachedProgressive(
    std::uint64_t view, const steer::ImageFrame& frame,
    const CodecConfig& codec, std::uint64_t* rawBytesOut) {
  if (frame.step != cacheStep_) {
    cache_.clear();
    cacheStep_ = frame.step;
  }
  const auto key = std::make_pair(view, imageCodecKey(codec));
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++stats_.cacheMisses;
    CacheEntry entry;
    entry.levels = encodeProgressiveImage(frame, codec, 8, &entry.rawBytes);
    it = cache_.emplace(key, std::move(entry)).first;
  } else {
    ++stats_.cacheHits;
  }
  if (rawBytesOut != nullptr) *rawBytesOut = it->second.rawBytes;
  return it->second.levels;
}

bool SessionBroker::trySendFine(comm::Communicator& comm, Client& client,
                                const std::vector<std::byte>& frame) {
  if (!client.alive) return false;
  if (client.creditMetered) {
    if (!client.end.trySendCredited(frame)) return false;  // copy on success
  } else {
    // Outbox headroom check: a push that would evict an older frame means
    // the consumer is behind — shed the refinement rather than churn.
    if (config_.outboxCapacity > 0 &&
        client.end.sendQueueDepth() + 1 >= config_.outboxCapacity) {
      return false;
    }
    client.end.send(frame);
  }
  auto& counters = comm.counters().of(comm::Traffic::kSteer);
  ++counters.messagesSent;
  counters.bytesSent += frame.size();
  ++stats_.framesSent;
  stats_.wireBytes += frame.size();
  return true;
}

void SessionBroker::publishImage(comm::Communicator& comm, std::uint64_t view,
                                 const steer::ImageFrame& frame) {
  for (auto& client : clients_) {
    if (!due(client.subs[static_cast<int>(StreamKind::kImage)], frame.step)) {
      continue;
    }
    if (client.codec.progressive) {
      std::uint64_t raw = 0;
      const auto& levels = cachedProgressive(view, frame, client.codec, &raw);
      // The coarse root is never shed — worst case the bounded outbox
      // applies latest-wins to a stale root. Refinements go through the
      // shed policy; once one level is shed the rest of the burst is
      // useless downstream (residuals chain), so stop there.
      sendTo(comm, client, levels.front(), raw);
      for (std::size_t l = 1; l < levels.size(); ++l) {
        if (!trySendFine(comm, client, levels[l])) {
          const auto shed = static_cast<std::uint64_t>(levels.size() - l);
          client.levelsShed += shed;
          stats_.levelsShed += shed;
          break;
        }
      }
      continue;
    }
    std::uint64_t raw = 0;
    const auto& bytes = cachedImage(view, frame, client.codec, &raw);
    sendTo(comm, client, bytes, raw);  // copy: each outbox owns its frame
  }
  publishMetrics();
}

void SessionBroker::respondAck(comm::Communicator& comm,
                               std::uint32_t commandId) {
  const auto it = pending_.find(commandId);
  if (it == pending_.end()) return;
  if (it->second.sendAck) {
    for (std::size_t i = 0; i < it->second.clients.size(); ++i) {
      sendTo(comm, clients_[static_cast<std::size_t>(it->second.clients[i])],
             steer::encodeAck(it->second.originalIds[i]), 5);
    }
  }
  pending_.erase(it);
  publishMetrics();
}

void SessionBroker::respondReject(comm::Communicator& comm,
                                  std::uint32_t commandId,
                                  steer::RejectReason reason,
                                  steer::MsgType type) {
  // Prefer the live pending entry; fall back to the bounded route history
  // for retroactive NACKs of commands respondAck already retired.
  auto it = pending_.find(commandId);
  const bool live = it != pending_.end();
  if (!live) {
    it = routes_.find(commandId);
    if (it == routes_.end()) return;
  }
  const Pending& route = it->second;
  for (std::size_t i = 0; i < route.originalIds.size(); ++i) {
    steer::Reject reject;
    reject.type = type;
    reject.commandId = route.originalIds[i];
    reject.reason = reason;
    sendTo(comm, clients_[static_cast<std::size_t>(route.clients[i])],
           steer::encodeReject(reject), 6);
  }
  if (live) pending_.erase(it);
  publishMetrics();
}

void SessionBroker::respondStatus(comm::Communicator& comm,
                                  std::uint32_t commandId,
                                  const steer::StatusReport& status) {
  const auto it = pending_.find(commandId);
  if (it == pending_.end()) return;
  const auto frame = steer::encodeStatus(status);
  for (const int c : it->second.clients) {
    sendTo(comm, clients_[static_cast<std::size_t>(c)], frame, frame.size());
  }
}

void SessionBroker::respondImage(comm::Communicator& comm,
                                 std::uint32_t commandId, std::uint64_t view,
                                 const steer::ImageFrame& frame) {
  const auto it = pending_.find(commandId);
  if (it == pending_.end()) return;
  for (const int c : it->second.clients) {
    auto& client = clients_[static_cast<std::size_t>(c)];
    std::uint64_t raw = 0;
    const auto& bytes = cachedImage(view, frame, client.codec, &raw);
    sendTo(comm, client, bytes, raw);
  }
}

void SessionBroker::respondRoi(comm::Communicator& comm,
                               std::uint32_t commandId,
                               const steer::RoiData& roi) {
  const auto it = pending_.find(commandId);
  if (it == pending_.end()) return;
  // Encode once per distinct codec config among the recipients.
  std::map<std::uint8_t, std::pair<std::vector<std::byte>, std::uint64_t>>
      byCodec;
  for (const int c : it->second.clients) {
    auto& client = clients_[static_cast<std::size_t>(c)];
    const std::uint8_t key = client.codec.mask();
    auto found = byCodec.find(key);
    if (found == byCodec.end()) {
      std::uint64_t raw = 0;
      auto bytes = encodeRoiPayload(roi, client.codec, &raw);
      found = byCodec.emplace(key, std::make_pair(std::move(bytes), raw)).first;
    }
    sendTo(comm, client, found->second.first, found->second.second);
  }
}

void SessionBroker::respondObservable(comm::Communicator& comm,
                                      std::uint32_t commandId,
                                      const steer::ObservableReport& report) {
  const auto it = pending_.find(commandId);
  if (it == pending_.end()) return;
  const auto frame = steer::encodeObservable(report);
  for (const int c : it->second.clients) {
    sendTo(comm, clients_[static_cast<std::size_t>(c)], frame, frame.size());
  }
}

void SessionBroker::respondTelemetry(comm::Communicator& comm,
                                     std::uint32_t commandId,
                                     const telemetry::StepReport& report) {
  const auto it = pending_.find(commandId);
  if (it == pending_.end()) return;
  const auto frame = steer::encodeTelemetry(report);
  for (const int c : it->second.clients) {
    sendTo(comm, clients_[static_cast<std::size_t>(c)], frame, frame.size());
  }
}

void SessionBroker::closeAll() {
  for (auto& client : clients_) {
    if (client.alive) client.end.close();
  }
}

std::uint64_t SessionBroker::framesDropped(int client) const {
  const Client& c = clients_[static_cast<std::size_t>(client)];
  return c.alive ? c.end.framesDropped() : c.droppedSnapshot;
}

std::uint64_t SessionBroker::framesSentTo(int client) const {
  const Client& c = clients_[static_cast<std::size_t>(client)];
  return c.alive ? c.end.framesSent() : c.sentSnapshot;
}

std::uint64_t SessionBroker::totalFramesDropped() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    total += framesDropped(static_cast<int>(i));
  }
  return total;
}

void SessionBroker::publishMetrics() {
  auto* t = telemetry::threadTelemetry();
  if (t == nullptr) return;
  auto& m = t->metrics();
  auto setTotal = [&m](const char* name, std::uint64_t value) {
    auto& c = m.counter(name);
    const std::uint64_t now = c.value();
    if (value > now) c.add(value - now);
  };
  setTotal("serve.cache_hits", stats_.cacheHits);
  setTotal("serve.cache_misses", stats_.cacheMisses);
  setTotal("serve.frames_sent", stats_.framesSent);
  setTotal("serve.wire_bytes", stats_.wireBytes);
  setTotal("serve.raw_bytes", stats_.rawBytes);
  setTotal("serve.frames_dropped", totalFramesDropped());
  setTotal("serve.heartbeats", stats_.heartbeats);
  setTotal("serve.evictions", stats_.evictions);
  setTotal("serve.reconnects", stats_.reconnects);
  setTotal("serve.levels_shed", stats_.levelsShed);
  setTotal("fault.injected", util::FaultInjector::instance().fired());
  m.gauge("serve.clients").set(static_cast<double>(numAliveClients()));
  m.gauge("serve.relay_sessions").set(static_cast<double>(numRelaySessions()));
}

}  // namespace hemo::serve
