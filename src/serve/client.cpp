#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "io/serial.hpp"
#include "util/check.hpp"

namespace hemo::serve {

std::uint32_t ServeClient::subscribe(StreamKind stream, std::int32_t cadence) {
  steer::Command cmd;
  cmd.type = steer::MsgType::kSubscribe;
  cmd.stream = static_cast<std::uint8_t>(stream);
  cmd.cadence = cadence;
  return send(cmd);
}

std::uint32_t ServeClient::subscribeObservable(std::int32_t cadence,
                                               steer::ObservableKind kind,
                                               const BoxI& roi) {
  steer::Command cmd;
  cmd.type = steer::MsgType::kSubscribe;
  cmd.stream = static_cast<std::uint8_t>(StreamKind::kObservable);
  cmd.cadence = cadence;
  cmd.observable = static_cast<std::uint8_t>(kind);
  cmd.roi = roi;
  return send(cmd);
}

std::uint32_t ServeClient::subscribeRoi(std::int32_t cadence, const BoxI& roi,
                                        std::int32_t level) {
  steer::Command cmd;
  cmd.type = steer::MsgType::kSubscribe;
  cmd.stream = static_cast<std::uint8_t>(StreamKind::kRoi);
  cmd.cadence = cadence;
  cmd.roi = roi;
  cmd.roiLevel = level;
  return send(cmd);
}

std::uint32_t ServeClient::unsubscribe(StreamKind stream) {
  steer::Command cmd;
  cmd.type = steer::MsgType::kUnsubscribe;
  cmd.stream = static_cast<std::uint8_t>(stream);
  return send(cmd);
}

std::uint32_t ServeClient::announceRelay() {
  steer::Command cmd;
  cmd.type = steer::MsgType::kRelayHello;
  return send(cmd);
}

void ServeClient::sendCredit(std::uint32_t credits, std::uint64_t ackStep,
                             std::int32_t ackLevel) {
  steer::Credit credit;
  credit.credits = credits;
  credit.ackStep = ackStep;
  credit.ackLevel = ackLevel;
  // Best-effort: a closed upstream is detected by the event loop's EOF
  // handling, not here — credits are advisory flow control.
  end_.send(steer::encodeCredit(credit));
}

std::uint32_t ServeClient::setCodec(const CodecConfig& codec) {
  steer::Command cmd;
  cmd.type = steer::MsgType::kSetCodec;
  cmd.codec = codec.mask();
  cmd.value = codec.quantError;
  return send(cmd);
}

std::uint32_t ServeClient::send(steer::Command cmd) {
  cmd.commandId = nextCommandId_++;
  recordSessionState(cmd);
  if (!end_.send(steer::encodeCommand(cmd))) {
    // Broker side gone (eviction or shutdown): redial once, then resend.
    // The replay inside tryReconnect() already re-established the session
    // state, so only this command needs repeating.
    HEMO_CHECK_MSG(tryReconnect(), "serving channel closed");
    HEMO_CHECK_MSG(end_.send(steer::encodeCommand(cmd)),
                   "serving channel closed after reconnect");
  }
  return cmd.commandId;
}

void ServeClient::recordSessionState(const steer::Command& cmd) {
  switch (cmd.type) {
    case steer::MsgType::kSetCodec:
      codecCommand_ = cmd;
      break;
    case steer::MsgType::kRelayHello:
      helloCommand_ = cmd;
      break;
    case steer::MsgType::kSubscribe: {
      for (auto& sub : activeSubscriptions_) {
        if (sub.stream == cmd.stream) {
          sub = cmd;
          return;
        }
      }
      activeSubscriptions_.push_back(cmd);
      break;
    }
    case steer::MsgType::kUnsubscribe: {
      activeSubscriptions_.erase(
          std::remove_if(activeSubscriptions_.begin(),
                         activeSubscriptions_.end(),
                         [&](const steer::Command& sub) {
                           return sub.stream == cmd.stream;
                         }),
          activeSubscriptions_.end());
      break;
    }
    default:
      break;
  }
}

void ServeClient::enableReconnect(
    std::function<comm::ChannelEnd()> connector, ReconnectConfig config) {
  connector_ = std::move(connector);
  reconnectConfig_ = config;
  jitterRng_ = Rng(config.jitterSeed);
}

bool ServeClient::tryReconnect() {
  if (!connector_) return false;
  for (int attempt = 0; attempt < reconnectConfig_.maxAttempts; ++attempt) {
    // Full-jitter exponential backoff: U(0, min(cap, base * 2^attempt)).
    std::int64_t window = reconnectConfig_.baseDelayMillis;
    window <<= std::min(attempt, 20);
    window = std::min<std::int64_t>(window, reconnectConfig_.maxDelayMillis);
    if (window > 0) {
      const auto jitter =
          jitterRng_.uniformInt(static_cast<std::uint64_t>(window) + 1);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<std::int64_t>(jitter)));
    }
    auto fresh = connector_();
    if (!fresh.valid()) continue;
    end_ = std::move(fresh);
    ++reconnects_;
    // Replay the session (fresh command ids) so the broker restores this
    // client's codec and subscriptions and streams resume at the current
    // step. Sent directly — ServeClient::send would recurse on failure.
    // The relay hello goes first: role before configuration.
    if (helloCommand_) {
      auto cmd = *helloCommand_;
      cmd.commandId = nextCommandId_++;
      end_.send(steer::encodeCommand(cmd));
    }
    if (codecCommand_) {
      auto cmd = *codecCommand_;
      cmd.commandId = nextCommandId_++;
      end_.send(steer::encodeCommand(cmd));
    }
    for (auto cmd : activeSubscriptions_) {
      cmd.commandId = nextCommandId_++;
      end_.send(steer::encodeCommand(cmd));
    }
    return true;
  }
  return false;
}

bool ServeClient::handleInternal(const std::vector<std::byte>& frame) {
  if (steer::frameType(frame) == steer::MsgType::kHeartbeat) {
    end_.send(steer::encodeHeartbeatAck(steer::decodeHeartbeatSeq(frame)));
    return true;
  }
  return false;
}

ServeClient::Event ServeClient::decode(const std::vector<std::byte>& frame) {
  Event event;
  event.type = steer::frameType(frame);
  event.wireBytes = frame.size();
  if (event.type == steer::MsgType::kProgressiveImage) {
    // Level header always parsed — the caller (relay shed loop or display
    // client) needs step/level even in raw mode. Reassembly only advances
    // when the frame extends the chain; shed-broken refinements are
    // skipped inside the assembler.
    const auto pf = decodeProgressiveFrame(frame);
    event.progressiveLevel = pf.level;
    event.progressiveReady = assembler_.accept(pf);
    if (keepRaw_) {
      event.raw = frame;
    } else if (event.progressiveReady) {
      event.image = assembler_.current();
    }
    return event;
  }
  if (keepRaw_) {
    switch (event.type) {
      case steer::MsgType::kImageFrame:
      case steer::MsgType::kCodedImage:
      case steer::MsgType::kRoiData:
      case steer::MsgType::kCodedRoi:
      case steer::MsgType::kStatus:
      case steer::MsgType::kObservable:
      case steer::MsgType::kTelemetry:
        event.raw = frame;  // forwarded verbatim; payload decode skipped
        return event;
      default:
        break;  // acks/rejects fall through to the typed decode
    }
  }
  switch (event.type) {
    case steer::MsgType::kImageFrame:
    case steer::MsgType::kCodedImage:
      event.image = decodeImagePayload(frame);
      break;
    case steer::MsgType::kRoiData:
    case steer::MsgType::kCodedRoi:
      event.roi = decodeRoiPayload(frame);
      break;
    case steer::MsgType::kStatus:
      event.status = steer::decodeStatus(frame);
      break;
    case steer::MsgType::kObservable:
      event.observable = steer::decodeObservable(frame);
      break;
    case steer::MsgType::kTelemetry:
      event.telemetry = steer::decodeTelemetry(frame);
      break;
    case steer::MsgType::kAck: {
      io::Reader r(frame);
      r.get<std::uint8_t>();
      event.ackId = r.get<std::uint32_t>();
      break;
    }
    case steer::MsgType::kReject:
    case steer::MsgType::kRejectedAfterRollback: {
      const auto reject = steer::decodeReject(frame);
      event.rejectId = reject.commandId;
      event.rejectReason = reject.reason;
      break;
    }
    default:
      HEMO_CHECK_MSG(false, "unexpected serve frame type");
  }
  return event;
}

std::optional<ServeClient::Event> ServeClient::pollEvent() {
  for (;;) {
    auto frame = end_.tryRecv();
    if (!frame) {
      // Distinguish "nothing queued" from "broker closed this end": only
      // the latter triggers a redial. After a successful reconnect the
      // fresh channel is polled once more (usually still empty).
      if (end_.eof() && tryReconnect()) continue;
      return std::nullopt;
    }
    try {
      if (handleInternal(*frame)) continue;
      return decode(*frame);
    } catch (const CheckError&) {
      ++corruptFrames_;  // mangled frame: skip it, the stream continues
    }
  }
}

std::optional<ServeClient::Event> ServeClient::nextEvent() {
  for (;;) {
    auto frame = end_.recv();
    if (!frame) {
      // EOF: redial if armed, else surface end-of-stream.
      if (!tryReconnect()) return std::nullopt;
      continue;
    }
    try {
      if (handleInternal(*frame)) continue;
      return decode(*frame);
    } catch (const CheckError&) {
      ++corruptFrames_;
    }
  }
}

std::optional<steer::ImageFrame> ServeClient::awaitImage() {
  for (;;) {
    auto event = nextEvent();
    if (!event) return std::nullopt;
    if (event->type == steer::MsgType::kImageFrame ||
        event->type == steer::MsgType::kCodedImage) {
      return std::move(event->image);
    }
    if (event->type == steer::MsgType::kProgressiveImage &&
        event->progressiveReady && !keepRaw_) {
      return std::move(event->image);
    }
  }
}

}  // namespace hemo::serve
