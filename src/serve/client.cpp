#include "serve/client.hpp"

#include "io/serial.hpp"
#include "util/check.hpp"

namespace hemo::serve {

std::uint32_t ServeClient::subscribe(StreamKind stream, std::int32_t cadence) {
  steer::Command cmd;
  cmd.type = steer::MsgType::kSubscribe;
  cmd.stream = static_cast<std::uint8_t>(stream);
  cmd.cadence = cadence;
  return send(cmd);
}

std::uint32_t ServeClient::subscribeObservable(std::int32_t cadence,
                                               steer::ObservableKind kind,
                                               const BoxI& roi) {
  steer::Command cmd;
  cmd.type = steer::MsgType::kSubscribe;
  cmd.stream = static_cast<std::uint8_t>(StreamKind::kObservable);
  cmd.cadence = cadence;
  cmd.observable = static_cast<std::uint8_t>(kind);
  cmd.roi = roi;
  return send(cmd);
}

std::uint32_t ServeClient::subscribeRoi(std::int32_t cadence, const BoxI& roi,
                                        std::int32_t level) {
  steer::Command cmd;
  cmd.type = steer::MsgType::kSubscribe;
  cmd.stream = static_cast<std::uint8_t>(StreamKind::kRoi);
  cmd.cadence = cadence;
  cmd.roi = roi;
  cmd.roiLevel = level;
  return send(cmd);
}

std::uint32_t ServeClient::unsubscribe(StreamKind stream) {
  steer::Command cmd;
  cmd.type = steer::MsgType::kUnsubscribe;
  cmd.stream = static_cast<std::uint8_t>(stream);
  return send(cmd);
}

std::uint32_t ServeClient::setCodec(const CodecConfig& codec) {
  steer::Command cmd;
  cmd.type = steer::MsgType::kSetCodec;
  cmd.codec = codec.mask();
  cmd.value = codec.quantError;
  return send(cmd);
}

std::uint32_t ServeClient::send(steer::Command cmd) {
  cmd.commandId = nextCommandId_++;
  HEMO_CHECK_MSG(end_.send(steer::encodeCommand(cmd)),
                 "serving channel closed");
  return cmd.commandId;
}

ServeClient::Event ServeClient::decode(
    const std::vector<std::byte>& frame) const {
  Event event;
  event.type = steer::frameType(frame);
  event.wireBytes = frame.size();
  switch (event.type) {
    case steer::MsgType::kImageFrame:
    case steer::MsgType::kCodedImage:
      event.image = decodeImagePayload(frame);
      break;
    case steer::MsgType::kRoiData:
    case steer::MsgType::kCodedRoi:
      event.roi = decodeRoiPayload(frame);
      break;
    case steer::MsgType::kStatus:
      event.status = steer::decodeStatus(frame);
      break;
    case steer::MsgType::kObservable:
      event.observable = steer::decodeObservable(frame);
      break;
    case steer::MsgType::kTelemetry:
      event.telemetry = steer::decodeTelemetry(frame);
      break;
    case steer::MsgType::kAck: {
      io::Reader r(frame);
      r.get<std::uint8_t>();
      event.ackId = r.get<std::uint32_t>();
      break;
    }
    default:
      HEMO_CHECK_MSG(false, "unexpected serve frame type");
  }
  return event;
}

std::optional<ServeClient::Event> ServeClient::pollEvent() {
  auto frame = end_.tryRecv();
  if (!frame) return std::nullopt;
  return decode(*frame);
}

std::optional<ServeClient::Event> ServeClient::nextEvent() {
  auto frame = end_.recv();
  if (!frame) return std::nullopt;  // EOF
  return decode(*frame);
}

std::optional<steer::ImageFrame> ServeClient::awaitImage() {
  for (;;) {
    auto event = nextEvent();
    if (!event) return std::nullopt;
    if (event->type == steer::MsgType::kImageFrame ||
        event->type == steer::MsgType::kCodedImage) {
      return std::move(event->image);
    }
  }
}

}  // namespace hemo::serve
