#include "serve/progressive.hpp"

#include "io/serial.hpp"
#include "util/check.hpp"

namespace hemo::serve {

namespace {

/// Plain encoding size an ImageFrame would have on the wire (header +
/// pixels), without materialising it — the raw-bytes baseline.
std::uint64_t plainImageBytes(const steer::ImageFrame& frame) {
  return 1 /*type*/ + 8 /*step*/ + 4 + 4 /*dims*/ + 8 /*vec len*/ +
         frame.rgb.size();
}

}  // namespace

std::vector<std::byte> encodeProgressiveFrame(const ProgressiveFrame& frame,
                                              bool rlePayload) {
  io::Writer w;
  w.put<std::uint8_t>(
      static_cast<std::uint8_t>(steer::MsgType::kProgressiveImage));
  w.put<std::uint64_t>(frame.step);
  w.put<std::int32_t>(frame.level);
  w.put<std::int32_t>(frame.numLevels);
  w.put<std::int32_t>(frame.fullWidth);
  w.put<std::int32_t>(frame.fullHeight);
  w.put<std::int32_t>(frame.image.width);
  w.put<std::int32_t>(frame.image.height);
  w.put<std::uint8_t>(rlePayload ? 1 : 0);
  if (rlePayload) {
    w.putVec(rleEncode(frame.image.data.data(), frame.image.data.size()));
  } else {
    w.putVec(frame.image.data);
  }
  return w.take();
}

ProgressiveFrame decodeProgressiveFrame(const std::vector<std::byte>& bytes) {
  io::Reader r(bytes);
  HEMO_CHECK_MSG(static_cast<steer::MsgType>(r.get<std::uint8_t>()) ==
                     steer::MsgType::kProgressiveImage,
                 "not a progressive image frame");
  ProgressiveFrame f;
  f.step = r.get<std::uint64_t>();
  f.level = r.get<std::int32_t>();
  f.numLevels = r.get<std::int32_t>();
  f.fullWidth = r.get<std::int32_t>();
  f.fullHeight = r.get<std::int32_t>();
  f.image.width = r.get<std::int32_t>();
  f.image.height = r.get<std::int32_t>();
  const bool rle = r.get<std::uint8_t>() != 0;
  if (rle) {
    f.image.data = rleDecode(r.getVec<std::byte>());
  } else {
    const auto raw = r.getVec<std::uint8_t>();
    f.image.data = raw;
  }
  HEMO_CHECK(r.atEnd());
  HEMO_CHECK_MSG(f.level >= 0 && f.level < f.numLevels, "bad level index");
  HEMO_CHECK_MSG(f.image.width > 0 && f.image.height > 0, "bad level dims");
  HEMO_CHECK_MSG(f.image.data.size() ==
                     static_cast<std::size_t>(f.image.width) *
                         static_cast<std::size_t>(f.image.height) * 3,
                 "level payload size mismatch");
  return f;
}

std::optional<ProgressiveFrame> tryDecodeProgressiveFrame(
    const std::vector<std::byte>& bytes) {
  try {
    return decodeProgressiveFrame(bytes);
  } catch (const CheckError&) {
    return std::nullopt;
  }
}

std::vector<std::vector<std::byte>> encodeProgressiveImage(
    const steer::ImageFrame& frame, const CodecConfig& codec, int rootMaxDim,
    std::uint64_t* rawBytesOut) {
  const auto pyramid = multires::buildImagePyramid(frame.width, frame.height,
                                                   frame.rgb, rootMaxDim);
  if (rawBytesOut != nullptr) *rawBytesOut += plainImageBytes(frame);
  std::vector<std::vector<std::byte>> wire;
  wire.reserve(pyramid.levels.size());
  for (std::size_t l = 0; l < pyramid.levels.size(); ++l) {
    ProgressiveFrame pf;
    pf.step = frame.step;
    pf.level = static_cast<std::int32_t>(l);
    pf.numLevels = static_cast<std::int32_t>(pyramid.levels.size());
    pf.fullWidth = frame.width;
    pf.fullHeight = frame.height;
    pf.image = pyramid.levels[l];
    wire.push_back(encodeProgressiveFrame(pf, codec.rleImage));
  }
  return wire;
}

bool ProgressiveAssembler::accept(const ProgressiveFrame& frame) {
  if (frame.level == 0) {
    // Root of a step: adopt unless it is older than what we already show.
    if (hasImage() && frame.step < step_) {
      ++framesSkipped_;
      return false;
    }
    step_ = frame.step;
    numLevels_ = frame.numLevels;
    fullWidth_ = frame.fullWidth;
    fullHeight_ = frame.fullHeight;
    state_.apply(frame.image, /*isRoot=*/true);
    return true;
  }
  // Refinement: must extend the current step's chain exactly, otherwise a
  // shed level upstream broke the residual chain and the frame is useless.
  if (!hasImage() || frame.step != step_ ||
      frame.level != state_.levelsApplied) {
    ++framesSkipped_;
    return false;
  }
  state_.apply(frame.image, /*isRoot=*/false);
  return true;
}

steer::ImageFrame ProgressiveAssembler::current() const {
  HEMO_CHECK_MSG(hasImage(), "no progressive root received yet");
  steer::ImageFrame frame;
  frame.step = step_;
  frame.width = fullWidth_;
  frame.height = fullHeight_;
  frame.rgb = state_.renderAt(fullWidth_, fullHeight_);
  return frame;
}

}  // namespace hemo::serve
