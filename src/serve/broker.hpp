#pragma once
/// \file broker.hpp
/// \brief Multi-client session broker for the in situ serving plane.
///
/// The paper's §IV.C.1 steering loop assumes one client attached to the
/// simulation master. The broker generalises that to N concurrent clients
/// on rank 0: it tracks per-client subscriptions (image / status /
/// telemetry / observable / ROI streams, each with its own cadence),
/// fans frames out, and isolates slow consumers — every client has a
/// bounded outbox with a latest-wins drop policy, so a stalled client
/// costs dropped frames, never a stalled solver or starved peers.
///
/// A shared frame cache sits between the vis pipeline and the outboxes:
/// when M clients subscribe to the same view/field/cadence the pipeline
/// renders once and the broker serves the cached encoded frame M times
/// (cache key = view + field + step + codec; hit/miss counters feed the
/// serve.* telemetry metrics). Wire codecs are negotiated per client
/// (kSetCodec) and applied at frame encode; raw vs wire byte counters
/// feed the kSteer traffic class, so Table I–style measurements report
/// compressed wire bytes.
///
/// Session recovery: the broker probes clients with heartbeats every
/// `heartbeatEvery` steps; a client that leaves `missedHeartbeatLimit`
/// probes unanswered is *evicted* — its outbox is closed and released, so
/// a wedged consumer stops costing memory and fan-out work. Clients that
/// come back call requestConnect(), the one thread-safe admission path: it
/// queues a fresh channel that the serving thread adopts at the next
/// drainCommands(), counting a reconnect.
///
/// Threading: all broker methods are called from the serving (rank 0)
/// thread; client threads only touch their own ChannelEnd, which is
/// thread-safe, and requestConnect(), which is explicitly thread-safe.
/// addClient()/connect() must happen before serving starts or from the
/// serving thread.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "comm/channel.hpp"
#include "comm/communicator.hpp"
#include "serve/codec.hpp"
#include "steer/protocol.hpp"
#include "telemetry/step_report.hpp"
#include "vis/volume.hpp"

namespace hemo::serve {

/// Streams a client can subscribe to, each at its own cadence.
enum class StreamKind : std::uint8_t {
  kImage = 0,
  kStatus,
  kTelemetry,
  kObservable,
  kRoi,
  kCount_
};

inline constexpr int kNumStreams = static_cast<int>(StreamKind::kCount_);

struct BrokerConfig {
  /// Frames a client outbox holds before latest-wins eviction kicks in.
  /// 0 = unbounded (a stalled client then grows without limit — only for
  /// tests that want the legacy behaviour).
  std::size_t outboxCapacity = 16;
  /// Steps between liveness probes to every client (0 disables
  /// heartbeats, the legacy behaviour).
  int heartbeatEvery = 0;
  /// Unanswered probes before a client is declared wedged and evicted.
  int missedHeartbeatLimit = 3;
};

struct BrokerStats {
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t framesSent = 0;
  std::uint64_t wireBytes = 0;  ///< encoded bytes pushed to outboxes
  std::uint64_t rawBytes = 0;   ///< what the same frames cost uncompressed
  std::uint64_t commandsReceived = 0;
  std::uint64_t heartbeats = 0;   ///< probes sent
  std::uint64_t evictions = 0;    ///< clients dropped (wedged or corrupt)
  std::uint64_t reconnects = 0;   ///< clients re-admitted via requestConnect
  /// Progressive refinement levels withheld by the shed policy (credits
  /// exhausted or outbox backpressure). The coarse root is never shed.
  std::uint64_t levelsShed = 0;
};

/// Deterministic key identifying a rendered view (camera + field + size):
/// the view component of the frame-cache key.
std::uint64_t viewKey(const vis::VolumeRenderOptions& options);

class SessionBroker {
 public:
  explicit SessionBroker(BrokerConfig config = {}) : config_(config) {}

  /// Register a connected client; the broker keeps `end` as its outbox
  /// (bounded per BrokerConfig). Returns the client id.
  int addClient(comm::ChannelEnd end);

  /// Convenience: create a channel pair, register the broker side, return
  /// the client side.
  comm::ChannelEnd connect();

  /// Thread-safe admission: queue a fresh connection that the serving
  /// thread adopts at the next drainCommands(). The only broker method a
  /// client thread may call — (re)connecting clients use this while the
  /// run is live. `isReconnect` counts toward BrokerStats::reconnects.
  comm::ChannelEnd requestConnect(bool isReconnect = false);

  int numClients() const { return static_cast<int>(clients_.size()); }

  /// Clients currently admitted and not evicted.
  int numAliveClients() const;

  bool clientAlive(int client) const {
    return clients_[static_cast<std::size_t>(client)].alive;
  }

  // --- serving surface (rank-0 thread; the driver calls these) ----------

  /// Drain every client channel. Subscription and codec commands are
  /// handled (and acked) in place; remaining steering commands are
  /// returned with broker-unique command ids, followed by synthesized
  /// tick commands for every subscription due at `step`. The caller
  /// routes responses back through the respond* methods using the
  /// (rewritten) Command::commandId.
  std::vector<steer::Command> drainCommands(comm::Communicator& comm,
                                            std::uint64_t step);

  /// True when any client's image subscription is due at `step`.
  bool imageDue(std::uint64_t step) const;

  /// Fan `frame` out to every image subscriber due at frame.step. The
  /// frame is encoded once per distinct codec config through the shared
  /// cache; `view` is the viewKey() of the rendered options.
  void publishImage(comm::Communicator& comm, std::uint64_t view,
                    const steer::ImageFrame& frame);

  // Routed responses for commands returned by drainCommands(). Acks are
  /// suppressed for synthesized subscription ticks.
  void respondAck(comm::Communicator& comm, std::uint32_t commandId);
  void respondStatus(comm::Communicator& comm, std::uint32_t commandId,
                     const steer::StatusReport& status);
  void respondImage(comm::Communicator& comm, std::uint32_t commandId,
                    std::uint64_t view, const steer::ImageFrame& frame);
  void respondRoi(comm::Communicator& comm, std::uint32_t commandId,
                  const steer::RoiData& roi);
  void respondObservable(comm::Communicator& comm, std::uint32_t commandId,
                         const steer::ObservableReport& report);
  void respondTelemetry(comm::Communicator& comm, std::uint32_t commandId,
                        const telemetry::StepReport& report);
  /// Typed NACK routed to the *issuing* client only. With the default
  /// kReject type it consumes the pending entry (the command will not be
  /// acked); with kRejectedAfterRollback it also reaches commands already
  /// acked and erased, via a bounded forwarding-route history.
  void respondReject(comm::Communicator& comm, std::uint32_t commandId,
                     steer::RejectReason reason,
                     steer::MsgType type = steer::MsgType::kReject);

  /// Close every client outbox (clients drain queued frames, then EOF).
  void closeAll();

  // --- observability -----------------------------------------------------

  const BrokerStats& stats() const { return stats_; }

  /// Flush the serve.* counters/gauges to thread telemetry. Called
  /// internally after every publish/respond, and by the driver once per
  /// telemetry window so live counters (frames_dropped foremost — it grows
  /// inside the channels, not through broker calls) surface even when no
  /// frame happens to be published in the window.
  void publishMetrics();

  /// Sessions that announced themselves as relays (kRelayHello).
  int numRelaySessions() const;

  /// Progressive refinement levels shed toward one client / overall.
  std::uint64_t levelsShed(int client) const {
    return clients_[static_cast<std::size_t>(client)].levelsShed;
  }

  /// Frames evicted from one client's bounded outbox so far (frozen at
  /// the eviction snapshot for evicted clients).
  std::uint64_t framesDropped(int client) const;

  /// Frames pushed toward one client (before any eviction).
  std::uint64_t framesSentTo(int client) const;

  std::uint64_t totalFramesDropped() const;

 private:
  struct Subscription {
    bool active = false;
    std::int32_t cadence = 1;
    steer::Command params;  ///< roi / level / observable of the subscribe
    std::uint64_t lastFiredStep = ~std::uint64_t{0};
  };

  struct Client {
    comm::ChannelEnd end;
    CodecConfig codec;
    Subscription subs[kNumStreams];
    bool alive = true;
    bool relay = false;          ///< announced with kRelayHello
    bool creditMetered = false;  ///< has granted credits at least once
    std::uint64_t levelsShed = 0;
    std::uint64_t hbSent = 0;   ///< heartbeat probes pushed to this client
    std::uint64_t hbAcked = 0;  ///< highest sequence the client echoed
    // Counter snapshots taken at eviction (the ChannelEnd is released).
    std::uint64_t sentSnapshot = 0;
    std::uint64_t droppedSnapshot = 0;
  };

  /// One routed command: which clients asked, their original command ids
  /// (empty for synthesized ticks, which also suppress the ack).
  struct Pending {
    std::vector<int> clients;
    std::vector<std::uint32_t> originalIds;
    bool sendAck = false;
  };

  Subscription& sub(Client& c, StreamKind k) {
    return c.subs[static_cast<int>(k)];
  }
  static bool due(const Subscription& s, std::uint64_t step) {
    return s.active && s.cadence > 0 &&
           step % static_cast<std::uint64_t>(s.cadence) == 0;
  }

  /// Push one wire frame into a client outbox, charging the kSteer class
  /// and the serve.* counters.
  void sendTo(comm::Communicator& comm, Client& client,
              std::vector<std::byte> frame, std::uint64_t rawBytes);

  /// Conditional push of a progressive refinement level: spends a credit
  /// (metered sessions) or checks outbox headroom (unmetered). Returns
  /// false — nothing queued, nothing charged — when the level must be
  /// shed; the caller sheds the rest of the burst (residuals chain).
  bool trySendFine(comm::Communicator& comm, Client& client,
                   const std::vector<std::byte>& frame);

  /// Encoded image for a codec config via the shared per-step cache.
  const std::vector<std::byte>& cachedImage(std::uint64_t view,
                                            const steer::ImageFrame& frame,
                                            const CodecConfig& codec,
                                            std::uint64_t* rawBytesOut);

  /// Progressive level burst via the same cache (coarse-first wire frames).
  const std::vector<std::vector<std::byte>>& cachedProgressive(
      std::uint64_t view, const steer::ImageFrame& frame,
      const CodecConfig& codec, std::uint64_t* rawBytesOut);

  /// Drop a wedged or misbehaving client: close + release its outbox
  /// (freeing queued frames once the client drains), deactivate its
  /// subscriptions, freeze its counters.
  void evict(int client, const char* reason);

  /// Adopt connections queued by requestConnect() (serving thread only).
  void admitPending();

  /// Send due heartbeats and evict clients past the missed-probe limit.
  void heartbeat(comm::Communicator& comm, std::uint64_t step);

  BrokerConfig config_;
  std::vector<Client> clients_;
  std::map<std::uint32_t, Pending> pending_;
  /// Forwarding routes of recently relayed (non-tick) commands, kept after
  /// respondAck erases the pending entry so a sentinel rollback can NACK a
  /// command retroactively (kRejectedAfterRollback). Bounded FIFO.
  std::map<std::uint32_t, Pending> routes_;
  std::vector<std::uint32_t> routeOrder_;
  static constexpr std::size_t kRouteHistory = 128;
  std::uint32_t nextBrokerId_ = 1u << 20;  ///< clear of client-issued ids
  std::uint64_t lastHeartbeatStep_ = ~std::uint64_t{0};

  // Connections queued by requestConnect() until the serving thread
  // admits them — the only broker state touched by client threads.
  struct PendingConnect {
    comm::ChannelEnd end;
    bool isReconnect = false;
  };
  std::mutex pendingMutex_;
  std::vector<PendingConnect> pendingConnects_;

  // Shared frame cache: one step's encodings, keyed by (view, codec mask).
  // A progressive entry holds the per-level wire frames instead of one
  // monolithic frame; either way the cache is bounded by distinct
  // (view, codec) pairs per step — independent of the client count.
  struct CacheEntry {
    std::vector<std::byte> bytes;
    std::vector<std::vector<std::byte>> levels;
    std::uint64_t rawBytes = 0;
  };
  std::map<std::pair<std::uint64_t, std::uint8_t>, CacheEntry> cache_;
  std::uint64_t cacheStep_ = ~std::uint64_t{0};

  BrokerStats stats_;
};

}  // namespace hemo::serve
