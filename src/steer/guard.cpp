#include "steer/guard.hpp"

#include <cmath>

namespace hemo::steer {

namespace {

bool finite(double v) { return std::isfinite(v); }
bool finite(const Vec3d& v) {
  return finite(v.x) && finite(v.y) && finite(v.z);
}

/// Empty boxes are always allowed: they mean "clear the clip" (kSetRenderClip)
/// or "whole domain" (kRequestObservable). A deliberately non-empty box that
/// misses the lattice entirely is a client bug worth refusing loudly.
RejectReason validateRoi(const BoxI& roi, const GuardContext& ctx) {
  if (roi.isEmpty()) return RejectReason::kNone;
  if (roi.intersect(ctx.lattice).isEmpty()) {
    return RejectReason::kRoiOutsideLattice;
  }
  return RejectReason::kNone;
}

}  // namespace

double minStableTau(double machCeiling) {
  return 0.5 + 1.5 * machCeiling * machCeiling;
}

RejectReason validateCommand(const Command& cmd, const GuardConfig& cfg,
                             const GuardContext& ctx) {
  if (!cfg.enabled) return RejectReason::kNone;
  switch (cmd.type) {
    case MsgType::kSetTau:
      if (!finite(cmd.value)) return RejectReason::kNonFinite;
      if (cmd.value < minStableTau(cfg.machCeiling) || cmd.value > cfg.maxTau) {
        return RejectReason::kTauUnstable;
      }
      return RejectReason::kNone;
    case MsgType::kSetBodyForce:
      if (!finite(cmd.force)) return RejectReason::kNonFinite;
      if (std::abs(cmd.force.x) > cfg.maxBodyForce ||
          std::abs(cmd.force.y) > cfg.maxBodyForce ||
          std::abs(cmd.force.z) > cfg.maxBodyForce) {
        return RejectReason::kValueOutOfRange;
      }
      return RejectReason::kNone;
    case MsgType::kSetIoletDensity:
      if (cmd.ioletId < 0 ||
          static_cast<std::size_t>(cmd.ioletId) >= ctx.numIolets) {
        return RejectReason::kIoletOutOfRange;
      }
      if (!finite(cmd.value)) return RejectReason::kNonFinite;
      if (cmd.value < cfg.minIoletDensity || cmd.value > cfg.maxIoletDensity) {
        return RejectReason::kValueOutOfRange;
      }
      return RejectReason::kNone;
    case MsgType::kSetIoletVelocity:
      if (cmd.ioletId < 0 ||
          static_cast<std::size_t>(cmd.ioletId) >= ctx.numIolets) {
        return RejectReason::kIoletOutOfRange;
      }
      if (!finite(cmd.force)) return RejectReason::kNonFinite;
      if (cmd.force.norm() > cfg.maxIoletSpeed) {
        return RejectReason::kValueOutOfRange;
      }
      return RejectReason::kNone;
    case MsgType::kSetRoi:
    case MsgType::kSetRenderClip:
    case MsgType::kRequestObservable:
      return validateRoi(cmd.roi, ctx);
    default:
      return RejectReason::kNone;
  }
}

}  // namespace hemo::steer
