#include "steer/protocol.hpp"

#include "io/serial.hpp"
#include "util/check.hpp"

namespace hemo::steer {

namespace {

void putVec3d(io::Writer& w, const Vec3d& v) {
  w.put<double>(v.x);
  w.put<double>(v.y);
  w.put<double>(v.z);
}

Vec3d getVec3d(io::Reader& r) {
  const double x = r.get<double>();
  const double y = r.get<double>();
  const double z = r.get<double>();
  return {x, y, z};
}

void putBoxI(io::Writer& w, const BoxI& b) {
  w.put<std::int32_t>(b.lo.x);
  w.put<std::int32_t>(b.lo.y);
  w.put<std::int32_t>(b.lo.z);
  w.put<std::int32_t>(b.hi.x);
  w.put<std::int32_t>(b.hi.y);
  w.put<std::int32_t>(b.hi.z);
}

BoxI getBoxI(io::Reader& r) {
  BoxI b;
  b.lo.x = r.get<std::int32_t>();
  b.lo.y = r.get<std::int32_t>();
  b.lo.z = r.get<std::int32_t>();
  b.hi.x = r.get<std::int32_t>();
  b.hi.y = r.get<std::int32_t>();
  b.hi.z = r.get<std::int32_t>();
  return b;
}

}  // namespace

MsgType frameType(const std::vector<std::byte>& frame) {
  HEMO_CHECK(!frame.empty());
  return static_cast<MsgType>(frame[0]);
}

std::vector<std::byte> encodeCommand(const Command& cmd) {
  io::Writer w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(cmd.type));
  w.put<std::uint32_t>(cmd.commandId);
  putVec3d(w, cmd.camera.position);
  putVec3d(w, cmd.camera.target);
  putVec3d(w, cmd.camera.up);
  w.put<double>(cmd.camera.fovYDegrees);
  w.put<std::uint8_t>(cmd.renderField);
  w.put<std::int32_t>(cmd.visRate);
  putBoxI(w, cmd.roi);
  w.put<std::int32_t>(cmd.roiLevel);
  w.put<double>(cmd.value);
  w.put<std::int32_t>(cmd.ioletId);
  putVec3d(w, cmd.force);
  w.put<std::uint8_t>(cmd.observable);
  w.put<std::uint8_t>(cmd.stream);
  w.put<std::int32_t>(cmd.cadence);
  w.put<std::uint8_t>(cmd.codec);
  return w.take();
}

Command decodeCommand(const std::vector<std::byte>& frame) {
  io::Reader r(frame);
  Command cmd;
  cmd.type = static_cast<MsgType>(r.get<std::uint8_t>());
  cmd.commandId = r.get<std::uint32_t>();
  cmd.camera.position = getVec3d(r);
  cmd.camera.target = getVec3d(r);
  cmd.camera.up = getVec3d(r);
  cmd.camera.fovYDegrees = r.get<double>();
  cmd.renderField = r.get<std::uint8_t>();
  cmd.visRate = r.get<std::int32_t>();
  cmd.roi = getBoxI(r);
  cmd.roiLevel = r.get<std::int32_t>();
  cmd.value = r.get<double>();
  cmd.ioletId = r.get<std::int32_t>();
  cmd.force = getVec3d(r);
  cmd.observable = r.get<std::uint8_t>();
  cmd.stream = r.get<std::uint8_t>();
  cmd.cadence = r.get<std::int32_t>();
  cmd.codec = r.get<std::uint8_t>();
  HEMO_CHECK(r.atEnd());
  return cmd;
}

std::vector<std::byte> encodeStatus(const StatusReport& s) {
  io::Writer w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(MsgType::kStatus));
  w.put<std::uint64_t>(s.step);
  w.put<std::uint64_t>(s.totalSites);
  w.put<double>(s.totalMass);
  w.put<double>(s.maxSpeed);
  w.put<double>(s.loadImbalance);
  w.put<double>(s.stepsPerSecond);
  w.put<double>(s.etaSeconds);
  w.put<std::uint8_t>(s.consistencyOk);
  w.put<std::uint8_t>(s.paused);
  w.put<std::uint64_t>(s.consistencyStep);
  w.put<std::int32_t>(s.waitStragglerRank);
  w.put<std::uint8_t>(s.waitDominantCause);
  w.put<double>(s.waitSeconds);
  return w.take();
}

StatusReport decodeStatus(const std::vector<std::byte>& frame) {
  io::Reader r(frame);
  HEMO_CHECK(static_cast<MsgType>(r.get<std::uint8_t>()) == MsgType::kStatus);
  StatusReport s;
  s.step = r.get<std::uint64_t>();
  s.totalSites = r.get<std::uint64_t>();
  s.totalMass = r.get<double>();
  s.maxSpeed = r.get<double>();
  s.loadImbalance = r.get<double>();
  s.stepsPerSecond = r.get<double>();
  s.etaSeconds = r.get<double>();
  s.consistencyOk = r.get<std::uint8_t>();
  s.paused = r.get<std::uint8_t>();
  // Wire back-compat: pre-consistencyStep frames end here; treat the
  // verdict as fresh (computed at the reported step).
  s.consistencyStep =
      r.remaining() >= sizeof(std::uint64_t) ? r.get<std::uint64_t>() : s.step;
  // Wait-state gauges arrived later still; the block is all-or-nothing so
  // a frame can only ever end on a field boundary.
  constexpr std::size_t kWaitBlock =
      sizeof(std::int32_t) + sizeof(std::uint8_t) + sizeof(double);
  if (r.remaining() >= kWaitBlock) {
    s.waitStragglerRank = r.get<std::int32_t>();
    s.waitDominantCause = r.get<std::uint8_t>();
    s.waitSeconds = r.get<double>();
  }
  HEMO_CHECK(r.atEnd());
  return s;
}

std::optional<Command> tryDecodeCommand(const std::vector<std::byte>& frame) {
  try {
    return decodeCommand(frame);
  } catch (const CheckError&) {
    return std::nullopt;
  }
}

std::optional<StatusReport> tryDecodeStatus(const std::vector<std::byte>& frame) {
  try {
    return decodeStatus(frame);
  } catch (const CheckError&) {
    return std::nullopt;
  }
}

std::vector<std::byte> encodeImage(const ImageFrame& f) {
  io::Writer w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(MsgType::kImageFrame));
  w.put<std::uint64_t>(f.step);
  w.put<std::int32_t>(f.width);
  w.put<std::int32_t>(f.height);
  w.putVec(f.rgb);
  return w.take();
}

ImageFrame decodeImage(const std::vector<std::byte>& bytes) {
  io::Reader r(bytes);
  HEMO_CHECK(static_cast<MsgType>(r.get<std::uint8_t>()) ==
             MsgType::kImageFrame);
  ImageFrame f;
  f.step = r.get<std::uint64_t>();
  f.width = r.get<std::int32_t>();
  f.height = r.get<std::int32_t>();
  f.rgb = r.getVec<std::uint8_t>();
  HEMO_CHECK(r.atEnd());
  return f;
}

std::vector<std::byte> encodeRoi(const RoiData& roi) {
  io::Writer w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(MsgType::kRoiData));
  w.put<std::uint64_t>(roi.step);
  w.put<std::int32_t>(roi.level);
  w.putVec(roi.nodes);
  return w.take();
}

RoiData decodeRoi(const std::vector<std::byte>& bytes) {
  io::Reader r(bytes);
  HEMO_CHECK(static_cast<MsgType>(r.get<std::uint8_t>()) ==
             MsgType::kRoiData);
  RoiData roi;
  roi.step = r.get<std::uint64_t>();
  roi.level = r.get<std::int32_t>();
  roi.nodes = r.getVec<multires::OctreeNode>();
  HEMO_CHECK(r.atEnd());
  return roi;
}

std::vector<std::byte> encodeObservable(const ObservableReport& report) {
  io::Writer w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(MsgType::kObservable));
  w.put<std::uint64_t>(report.step);
  w.put<std::uint8_t>(report.kind);
  w.put<double>(report.value);
  w.put<std::uint64_t>(report.siteCount);
  return w.take();
}

ObservableReport decodeObservable(const std::vector<std::byte>& frame) {
  io::Reader r(frame);
  HEMO_CHECK(static_cast<MsgType>(r.get<std::uint8_t>()) ==
             MsgType::kObservable);
  ObservableReport report;
  report.step = r.get<std::uint64_t>();
  report.kind = r.get<std::uint8_t>();
  report.value = r.get<double>();
  report.siteCount = r.get<std::uint64_t>();
  HEMO_CHECK(r.atEnd());
  return report;
}

std::vector<std::byte> encodeTelemetry(const telemetry::StepReport& s) {
  io::Writer w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(MsgType::kTelemetry));
  w.put<std::uint64_t>(s.step);
  w.put<std::uint32_t>(s.ranks);
  w.put<std::uint64_t>(s.sites);
  w.put<std::uint64_t>(s.stepsCovered);
  w.put<double>(s.wallSeconds);
  w.put<double>(s.mlups);
  w.put<double>(s.collideSeconds);
  w.put<double>(s.streamSeconds);
  w.put<double>(s.commSeconds);
  w.put<double>(s.visSeconds);
  w.put<double>(s.loadImbalance);
  w.put<double>(s.commHiddenFraction);
  for (int c = 0; c < telemetry::kReportTrafficClasses; ++c) {
    w.put<std::uint64_t>(s.bytesSent[c]);
  }
  for (int c = 0; c < telemetry::kReportTrafficClasses; ++c) {
    w.put<std::uint64_t>(s.msgsSent[c]);
  }
  // Wait-state attribution block (appended after the original layout so
  // old decoders still read their prefix).
  w.put<double>(s.waitLateSenderSeconds);
  w.put<double>(s.waitLateReceiverSeconds);
  w.put<double>(s.waitCollectiveSeconds);
  w.put<double>(s.waitLateReceiverSlackSeconds);
  w.put<double>(s.waitMeasuredSeconds);
  w.put<std::int32_t>(s.waitBlamedRank);
  w.put<double>(s.waitBlamedSeconds);
  w.put<std::int32_t>(s.waitStragglerRank);
  w.put<std::uint8_t>(s.waitDominantCause);
  w.put<double>(s.waitAttributedFraction);
  return w.take();
}

telemetry::StepReport decodeTelemetry(const std::vector<std::byte>& frame) {
  io::Reader r(frame);
  HEMO_CHECK(static_cast<MsgType>(r.get<std::uint8_t>()) ==
             MsgType::kTelemetry);
  telemetry::StepReport s;
  s.step = r.get<std::uint64_t>();
  s.ranks = r.get<std::uint32_t>();
  s.sites = r.get<std::uint64_t>();
  s.stepsCovered = r.get<std::uint64_t>();
  s.wallSeconds = r.get<double>();
  s.mlups = r.get<double>();
  s.collideSeconds = r.get<double>();
  s.streamSeconds = r.get<double>();
  s.commSeconds = r.get<double>();
  s.visSeconds = r.get<double>();
  s.loadImbalance = r.get<double>();
  s.commHiddenFraction = r.get<double>();
  for (int c = 0; c < telemetry::kReportTrafficClasses; ++c) {
    s.bytesSent[c] = r.get<std::uint64_t>();
  }
  for (int c = 0; c < telemetry::kReportTrafficClasses; ++c) {
    s.msgsSent[c] = r.get<std::uint64_t>();
  }
  // Wait-state block (all-or-nothing; pre-field frames end above and the
  // defaults — zero wait, no straggler — stand in).
  constexpr std::size_t kWaitBlock = 7 * sizeof(double) +
                                     2 * sizeof(std::int32_t) +
                                     sizeof(std::uint8_t);
  if (r.remaining() >= kWaitBlock) {
    s.waitLateSenderSeconds = r.get<double>();
    s.waitLateReceiverSeconds = r.get<double>();
    s.waitCollectiveSeconds = r.get<double>();
    s.waitLateReceiverSlackSeconds = r.get<double>();
    s.waitMeasuredSeconds = r.get<double>();
    s.waitBlamedRank = r.get<std::int32_t>();
    s.waitBlamedSeconds = r.get<double>();
    s.waitStragglerRank = r.get<std::int32_t>();
    s.waitDominantCause = r.get<std::uint8_t>();
    s.waitAttributedFraction = r.get<double>();
  }
  HEMO_CHECK(r.atEnd());
  return s;
}

std::vector<std::byte> encodeAck(std::uint32_t commandId) {
  io::Writer w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(MsgType::kAck));
  w.put<std::uint32_t>(commandId);
  return w.take();
}

namespace {
std::vector<std::byte> encodeSeqFrame(MsgType type, std::uint64_t seq) {
  io::Writer w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(type));
  w.put<std::uint64_t>(seq);
  return w.take();
}
}  // namespace

const char* rejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kTauUnstable: return "tau-unstable";
    case RejectReason::kNonFinite: return "non-finite";
    case RejectReason::kValueOutOfRange: return "value-out-of-range";
    case RejectReason::kIoletOutOfRange: return "iolet-out-of-range";
    case RejectReason::kRoiOutsideLattice: return "roi-outside-lattice";
    case RejectReason::kDivergence: return "divergence";
  }
  return "unknown";
}

std::vector<std::byte> encodeReject(const Reject& reject) {
  io::Writer w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(reject.type));
  w.put<std::uint32_t>(reject.commandId);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(reject.reason));
  return w.take();
}

Reject decodeReject(const std::vector<std::byte>& frame) {
  io::Reader r(frame);
  Reject reject;
  reject.type = static_cast<MsgType>(r.get<std::uint8_t>());
  HEMO_CHECK_MSG(reject.type == MsgType::kReject ||
                     reject.type == MsgType::kRejectedAfterRollback,
                 "not a reject frame");
  reject.commandId = r.get<std::uint32_t>();
  reject.reason = static_cast<RejectReason>(r.get<std::uint8_t>());
  HEMO_CHECK(r.atEnd());
  return reject;
}

std::vector<std::byte> encodeHeartbeat(std::uint64_t seq) {
  return encodeSeqFrame(MsgType::kHeartbeat, seq);
}

std::vector<std::byte> encodeHeartbeatAck(std::uint64_t seq) {
  return encodeSeqFrame(MsgType::kHeartbeatAck, seq);
}

std::uint64_t decodeHeartbeatSeq(const std::vector<std::byte>& frame) {
  io::Reader r(frame);
  const auto type = static_cast<MsgType>(r.get<std::uint8_t>());
  HEMO_CHECK_MSG(type == MsgType::kHeartbeat || type == MsgType::kHeartbeatAck,
                 "not a heartbeat frame");
  return r.get<std::uint64_t>();
}

std::vector<std::byte> encodeCredit(const Credit& credit) {
  io::Writer w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(MsgType::kCredit));
  w.put<std::uint32_t>(credit.credits);
  w.put<std::uint64_t>(credit.ackStep);
  w.put<std::int32_t>(credit.ackLevel);
  return w.take();
}

Credit decodeCredit(const std::vector<std::byte>& frame) {
  io::Reader r(frame);
  HEMO_CHECK_MSG(static_cast<MsgType>(r.get<std::uint8_t>()) ==
                     MsgType::kCredit,
                 "not a credit frame");
  Credit credit;
  credit.credits = r.get<std::uint32_t>();
  credit.ackStep = r.get<std::uint64_t>();
  credit.ackLevel = r.get<std::int32_t>();
  HEMO_CHECK(r.atEnd());
  return credit;
}

}  // namespace hemo::steer
