#pragma once
/// \file server.hpp
/// \brief Simulation-side steering endpoint.
///
/// §IV.C.1 step 2-4: "A steering client is connected to the simulation
/// master node. The client sends visualisation parameters ... The
/// simulation master propagates this to the visualisation component." The
/// server lives on rank 0, drains the client channel without blocking the
/// solver, and broadcasts each command so all ranks apply it in the same
/// step — command propagation is collective and counted as steering
/// traffic.

#include <chrono>
#include <map>
#include <optional>
#include <vector>

#include "comm/channel.hpp"
#include "comm/communicator.hpp"
#include "steer/protocol.hpp"
#include "telemetry/metrics.hpp"

namespace hemo::steer {

/// Collective: rank 0 packs `rank0Commands` (ignored elsewhere) and
/// broadcasts; every rank returns the identical decoded list. The shared
/// command-propagation step of SteeringServer::poll and the serving-plane
/// broker, counted as kSteer traffic.
std::vector<Command> broadcastCommands(comm::Communicator& comm,
                                       const std::vector<Command>& rank0Commands);

class SteeringServer {
 public:
  /// `clientEnd` is only used on rank 0 (others may pass a default).
  explicit SteeringServer(comm::ChannelEnd clientEnd)
      : channel_(std::move(clientEnd)) {}

  /// Collective: rank 0 drains pending frames; every rank receives the
  /// identical command list (possibly empty). Call once per step.
  std::vector<Command> poll(comm::Communicator& comm);

  /// Rank 0 only: push a response frame to the client. No-ops elsewhere.
  void sendStatus(comm::Communicator& comm, const StatusReport& status);
  void sendImage(comm::Communicator& comm, const ImageFrame& frame);
  void sendRoi(comm::Communicator& comm, const RoiData& roi);
  void sendObservable(comm::Communicator& comm,
                      const ObservableReport& report);
  void sendTelemetry(comm::Communicator& comm,
                     const telemetry::StepReport& report);
  void sendAck(comm::Communicator& comm, std::uint32_t commandId);
  void sendReject(comm::Communicator& comm, const Reject& reject);

  /// Rank 0 only: frames/bytes pushed to the client so far.
  std::uint64_t framesSent() const {
    return channel_.valid() ? channel_.framesSent() : 0;
  }

 private:
  comm::ChannelEnd channel_;
};

/// Client-side convenience wrapper: typed sends, typed blocking receives.
class SteeringClient {
 public:
  explicit SteeringClient(comm::ChannelEnd serverEnd)
      : channel_(std::move(serverEnd)) {}

  /// Send a command; returns its command id (auto-assigned).
  std::uint32_t send(Command cmd);

  /// Block until the next frame of the given type arrives (frames of other
  /// types are queued for later typed receives). nullopt on channel EOF.
  std::optional<StatusReport> awaitStatus();
  std::optional<ImageFrame> awaitImage();
  std::optional<RoiData> awaitRoi();
  std::optional<ObservableReport> awaitObservable();
  std::optional<telemetry::StepReport> awaitTelemetry();
  std::optional<std::uint32_t> awaitAck();
  /// Next kReject or kRejectedAfterRollback frame (either type).
  std::optional<Reject> awaitReject();

  /// Command → ack round-trip latency (seconds) of every awaitAck() whose
  /// command id was issued by this client.
  const telemetry::LogHistogram& roundTripHistogram() const {
    return roundTrip_;
  }

  void close() { channel_.close(); }

 private:
  using clock = std::chrono::steady_clock;

  std::optional<std::vector<std::byte>> nextOfType(MsgType type);
  std::optional<std::vector<std::byte>> nextOfAny(
      std::initializer_list<MsgType> types);

  comm::ChannelEnd channel_;
  std::vector<std::vector<std::byte>> stash_;
  std::uint32_t nextCommandId_ = 1;
  std::map<std::uint32_t, clock::time_point> inFlight_;
  telemetry::LogHistogram roundTrip_;
};

}  // namespace hemo::steer
