#pragma once
/// \file guard.hpp
/// \brief Validation gate for state-mutating steering commands (§IV.C.3).
///
/// The paper requires the master to run "consistency and validity checks"
/// before client-supplied parameters reach the solver. This is the validity
/// half: a pure, deterministic predicate over a Command that every rank can
/// evaluate identically after the broadcast, so either all ranks apply a
/// command or none do. Rejected commands never touch solver state; the
/// issuing client gets a typed kReject with the reason.

#include <cstddef>

#include "steer/protocol.hpp"
#include "util/bbox.hpp"

namespace hemo::steer {

/// Bounds the guard enforces. Defaults are permissive enough for every
/// documented workload (tau 0.8/0.9, iolet density ~1.0, forces ~1e-3)
/// while refusing the classic run-killers (tau <= stability bound, NaN
/// anything, out-of-domain ROI).
struct GuardConfig {
  bool enabled = true;
  /// Mach ceiling the run is expected to respect (lattice speed over cs).
  /// Sets the minimum stable tau via minStableTau().
  double machCeiling = 0.3;
  double maxTau = 10.0;
  double maxBodyForce = 0.1;      ///< per-component magnitude bound
  double minIoletDensity = 0.5;
  double maxIoletDensity = 2.0;
  double maxIoletSpeed = 0.3;     ///< lattice units
};

/// Minimum relaxation time considered stable at a given Mach ceiling.
///
/// BGK stability heuristic: the scheme needs viscosity nu = cs^2 (tau - 1/2)
/// of at least u_max^2 / 2 to damp grid-scale modes at velocity u_max
/// (= machCeiling * cs, cs^2 = 1/3). Substituting gives
///   tau_min = 1/2 + 3/2 * mach^2
/// e.g. 0.635 at the default 0.3 ceiling — comfortably below the tau 0.8
/// used throughout the examples.
double minStableTau(double machCeiling);

/// Lattice facts the ROI / iolet checks need; cheap to rebuild per command.
struct GuardContext {
  std::size_t numIolets = 0;
  BoxI lattice;  ///< [0, dims) in voxel coordinates (ROI boxes use the same
                 ///< frame at every octree level; the driver clamps roiLevel)
};

/// Validate a decoded command. kNone means "apply it"; anything else names
/// the first violated bound. Pure function of its arguments — safe to call
/// on every rank with the broadcast command.
RejectReason validateCommand(const Command& cmd, const GuardConfig& cfg,
                             const GuardContext& ctx);

}  // namespace hemo::steer
