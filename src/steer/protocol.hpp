#pragma once
/// \file protocol.hpp
/// \brief Wire protocol between the steering client and the simulation
/// master (paper §IV.C.1/§IV.C.3).
///
/// Commands flow client → master and cover everything the paper lists:
/// visualisation parameters (view point, field, visualisation rate, region
/// of interest) and simulation parameters (relaxation time, body force,
/// iolet pressure), plus pause/resume/terminate. Responses flow master →
/// client: acknowledgements, status reports ("consistency and validity
/// checks, or estimates on the remaining runtime"), rendered image frames
/// and multiresolution ROI node data.

#include <cstdint>
#include <optional>
#include <vector>

#include "multires/octree.hpp"
#include "telemetry/step_report.hpp"
#include "util/bbox.hpp"
#include "vis/camera.hpp"
#include "vis/volume.hpp"

namespace hemo::steer {

enum class MsgType : std::uint8_t {
  // client -> master
  kSetCamera = 1,
  kSetField,
  kSetVisRate,
  kSetRoi,
  kSetRenderClip,
  kSetTau,
  kSetBodyForce,
  kSetIoletDensity,
  kSetIoletVelocity,
  kPause,
  kResume,
  kRequestStatus,
  kRequestFrame,
  kRequestObservable,
  kTerminate,
  kRequestTelemetry,  ///< one aggregated StepReport, on demand
  // client -> master, serving layer (handled by serve::SessionBroker)
  kSubscribe,    ///< stream (serve::StreamKind) + cadence + params
  kUnsubscribe,  ///< stream
  kSetCodec,     ///< codec mask + quantised-float max error (in `value`)
  kHeartbeatAck, ///< echoes a broker heartbeat's sequence number
  kRelayHello,   ///< marks this session as a relay (edge-relay serving tier)
  kCredit,       ///< downstream grants the upstream N more frames (flow ctl)
  // master -> client
  kAck = 64,
  kStatus,
  kImageFrame,
  kRoiData,
  kObservable,
  kTelemetry,  ///< aggregated telemetry::StepReport of the last window
  kCodedImage,  ///< codec-compressed ImageFrame (serve wire layer)
  kCodedRoi,    ///< codec-compressed RoiData (serve wire layer)
  kHeartbeat,   ///< broker liveness probe; clients must echo the sequence
  kReject,      ///< typed NACK: command failed validation, state untouched
  kRejectedAfterRollback,  ///< retroactive NACK: command quarantined after a
                           ///< sentinel-triggered checkpoint rollback
  kProgressiveImage,  ///< one octree-level delta of a progressive image
                      ///< stream (coarse root first, refinements after)
};

/// Why a steering command was refused (carried in a kReject /
/// kRejectedAfterRollback frame).
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kTauUnstable,       ///< tau below the stability bound or above the ceiling
  kNonFinite,         ///< NaN / inf in a value, force or velocity
  kValueOutOfRange,   ///< finite but outside the configured safe range
  kIoletOutOfRange,   ///< iolet id does not exist in the lattice
  kRoiOutsideLattice, ///< non-empty ROI with no overlap with the domain
  kDivergence,        ///< quarantined after a sentinel rollback
};

const char* rejectReasonName(RejectReason reason);

/// Typed NACK answering a refused command.
struct Reject {
  MsgType type = MsgType::kReject;  ///< kReject or kRejectedAfterRollback
  std::uint32_t commandId = 0;
  RejectReason reason = RejectReason::kNone;
};

/// Hydrodynamic observables computable over a user-defined subset of the
/// simulation volume (§I).
enum class ObservableKind : std::uint8_t {
  kMeanSpeed = 0,
  kMaxSpeed = 1,
  kMassFluxX = 2,  ///< sum of rho*u_x over the subset
  kMass = 3,
  kMeanWss = 4,
};

/// A steering command. One struct covers all command types; only the
/// fields relevant to `type` are meaningful.
struct Command {
  MsgType type = MsgType::kRequestStatus;
  std::uint32_t commandId = 0;   ///< echoed in the Ack
  vis::Camera camera{};
  std::uint8_t renderField = 0;  ///< vis::RenderField
  std::int32_t visRate = 10;
  BoxI roi{};
  std::int32_t roiLevel = 0;
  double value = 0.0;            ///< tau / iolet density / quant max error
  std::int32_t ioletId = 0;
  Vec3d force{};
  std::uint8_t observable = 0;   ///< ObservableKind for kRequestObservable
  // Serving-layer fields (kSubscribe/kUnsubscribe/kSetCodec).
  std::uint8_t stream = 0;       ///< serve::StreamKind
  std::int32_t cadence = 0;      ///< steps between stream frames
  std::uint8_t codec = 0;        ///< serve::CodecConfig feature mask
};

/// Reply to kRequestObservable.
struct ObservableReport {
  std::uint64_t step = 0;
  std::uint8_t kind = 0;
  double value = 0.0;
  std::uint64_t siteCount = 0;  ///< sites inside the requested subset
};

/// Periodic health report of the running simulation.
struct StatusReport {
  std::uint64_t step = 0;
  std::uint64_t totalSites = 0;
  double totalMass = 0.0;
  double maxSpeed = 0.0;        ///< lattice units; Mach check
  double loadImbalance = 1.0;   ///< measured busy-time max/mean
  double stepsPerSecond = 0.0;
  double etaSeconds = 0.0;      ///< estimate to finish the requested steps
  std::uint8_t consistencyOk = 1;  ///< mass drift + stability checks
  std::uint8_t paused = 0;
  /// Step at which `consistencyOk` was actually computed. Status windows
  /// can lag the consistency window, so a verdict without its provenance
  /// step is ambiguous. Decoders of pre-field frames default this to
  /// `step` (wire back-compat).
  std::uint64_t consistencyStep = 0;
  /// Critical-path gauges from the last telemetry window (wait-state
  /// attribution, telemetry/waitstate.hpp). Decoders of pre-field frames
  /// keep the defaults: no straggler, kNone, zero wait.
  std::int32_t waitStragglerRank = -1;
  std::uint8_t waitDominantCause = 0;  ///< telemetry::WaitCause value
  double waitSeconds = 0.0;            ///< classified wait in the window
};

struct ImageFrame {
  std::uint64_t step = 0;
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::vector<std::uint8_t> rgb;
};

struct RoiData {
  std::uint64_t step = 0;
  std::int32_t level = 0;
  std::vector<multires::OctreeNode> nodes;
};

// --- framing -----------------------------------------------------------------

std::vector<std::byte> encodeCommand(const Command& cmd);
Command decodeCommand(const std::vector<std::byte>& frame);

std::vector<std::byte> encodeStatus(const StatusReport& status);
StatusReport decodeStatus(const std::vector<std::byte>& frame);

/// Non-throwing decode variants for untrusted input: nullopt instead of
/// CheckError on truncated / oversized / malformed frames.
std::optional<Command> tryDecodeCommand(const std::vector<std::byte>& frame);
std::optional<StatusReport> tryDecodeStatus(const std::vector<std::byte>& frame);

std::vector<std::byte> encodeReject(const Reject& reject);
Reject decodeReject(const std::vector<std::byte>& frame);

std::vector<std::byte> encodeImage(const ImageFrame& frame);
ImageFrame decodeImage(const std::vector<std::byte>& bytes);

std::vector<std::byte> encodeRoi(const RoiData& roi);
RoiData decodeRoi(const std::vector<std::byte>& bytes);

std::vector<std::byte> encodeAck(std::uint32_t commandId);

/// Heartbeat probe (master -> client) / its echo (client -> master). Both
/// carry just the sequence number; decodeHeartbeatSeq reads either.
std::vector<std::byte> encodeHeartbeat(std::uint64_t seq);
std::vector<std::byte> encodeHeartbeatAck(std::uint64_t seq);
std::uint64_t decodeHeartbeatSeq(const std::vector<std::byte>& frame);

/// Credit grant (downstream -> upstream): the receiver is ready for
/// `credits` more frames. `ackStep`/`ackLevel` report the newest
/// progressive level fully consumed, closing the quality-adaptation loop
/// (an upstream that sees stale acks sheds fine levels first).
struct Credit {
  std::uint32_t credits = 0;
  std::uint64_t ackStep = 0;
  std::int32_t ackLevel = -1;  ///< -1: no progressive frame consumed yet
};

std::vector<std::byte> encodeCredit(const Credit& credit);
Credit decodeCredit(const std::vector<std::byte>& frame);

std::vector<std::byte> encodeObservable(const ObservableReport& report);
ObservableReport decodeObservable(const std::vector<std::byte>& frame);

std::vector<std::byte> encodeTelemetry(const telemetry::StepReport& report);
telemetry::StepReport decodeTelemetry(const std::vector<std::byte>& frame);

/// Type tag of a frame (first byte).
MsgType frameType(const std::vector<std::byte>& frame);

}  // namespace hemo::steer
