#include "steer/server.hpp"

#include <cstring>

#include "io/serial.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace hemo::steer {

std::vector<Command> broadcastCommands(
    comm::Communicator& comm, const std::vector<Command>& rank0Commands) {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kSteer);
  // Rank 0 concatenates length-prefixed frames, then broadcasts the blob.
  std::vector<std::byte> packed;
  if (comm.rank() == 0) {
    for (const Command& cmd : rank0Commands) {
      const auto frame = encodeCommand(cmd);
      const auto n = static_cast<std::uint32_t>(frame.size());
      const auto* np = reinterpret_cast<const std::byte*>(&n);
      packed.insert(packed.end(), np, np + sizeof(n));
      packed.insert(packed.end(), frame.begin(), frame.end());
    }
  }
  comm.bcastBytes(packed, 0);

  std::vector<Command> commands;
  std::size_t pos = 0;
  while (pos < packed.size()) {
    std::uint32_t n;
    std::memcpy(&n, packed.data() + pos, sizeof(n));
    pos += sizeof(n);
    HEMO_CHECK(pos + n <= packed.size());
    commands.push_back(decodeCommand(std::vector<std::byte>(
        packed.begin() + static_cast<std::ptrdiff_t>(pos),
        packed.begin() + static_cast<std::ptrdiff_t>(pos + n))));
    pos += n;
  }
  return commands;
}

std::vector<Command> SteeringServer::poll(comm::Communicator& comm) {
  HEMO_TSPAN(kSteer, "steer.poll");
  // Rank 0 drains the channel into decoded commands, then the collective
  // broadcast distributes them so all ranks apply the same list.
  std::vector<Command> drained;
  if (comm.rank() == 0 && channel_.valid()) {
    while (auto frame = channel_.tryRecv()) {
      // Client→master traffic enters the rank through the channel, not the
      // mailbox, so it must be counted here to keep the steering class
      // symmetric with the master→client sends.
      auto& c = comm.counters().of(comm::Traffic::kSteer);
      ++c.messagesReceived;
      c.bytesReceived += frame->size();
      drained.push_back(decodeCommand(*frame));
    }
  }
  return broadcastCommands(comm, drained);
}

void SteeringServer::sendStatus(comm::Communicator& comm,
                                const StatusReport& status) {
  if (comm.rank() == 0 && channel_.valid()) {
    channel_.send(encodeStatus(status));
  }
}

void SteeringServer::sendImage(comm::Communicator& comm,
                               const ImageFrame& frame) {
  if (comm.rank() == 0 && channel_.valid()) {
    channel_.send(encodeImage(frame));
  }
}

void SteeringServer::sendRoi(comm::Communicator& comm, const RoiData& roi) {
  if (comm.rank() == 0 && channel_.valid()) {
    channel_.send(encodeRoi(roi));
  }
}

void SteeringServer::sendObservable(comm::Communicator& comm,
                                    const ObservableReport& report) {
  if (comm.rank() == 0 && channel_.valid()) {
    channel_.send(encodeObservable(report));
  }
}

void SteeringServer::sendTelemetry(comm::Communicator& comm,
                                   const telemetry::StepReport& report) {
  if (comm.rank() == 0 && channel_.valid()) {
    channel_.send(encodeTelemetry(report));
  }
}

void SteeringServer::sendAck(comm::Communicator& comm,
                             std::uint32_t commandId) {
  if (comm.rank() == 0 && channel_.valid()) {
    channel_.send(encodeAck(commandId));
  }
}

void SteeringServer::sendReject(comm::Communicator& comm,
                                const Reject& reject) {
  if (comm.rank() == 0 && channel_.valid()) {
    channel_.send(encodeReject(reject));
  }
}

// --- SteeringClient -------------------------------------------------------------

std::uint32_t SteeringClient::send(Command cmd) {
  cmd.commandId = nextCommandId_++;
  inFlight_[cmd.commandId] = clock::now();
  HEMO_CHECK_MSG(channel_.send(encodeCommand(cmd)),
                 "steering channel closed");
  return cmd.commandId;
}

std::optional<std::vector<std::byte>> SteeringClient::nextOfAny(
    std::initializer_list<MsgType> types) {
  const auto wanted = [&](const std::vector<std::byte>& frame) {
    const MsgType t = frameType(frame);
    for (const MsgType w : types) {
      if (t == w) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < stash_.size(); ++i) {
    if (wanted(stash_[i])) {
      auto frame = std::move(stash_[i]);
      stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
      return frame;
    }
  }
  for (;;) {
    auto frame = channel_.recv();
    if (!frame) return std::nullopt;  // EOF
    if (wanted(*frame)) return frame;
    stash_.push_back(std::move(*frame));
  }
}

std::optional<std::vector<std::byte>> SteeringClient::nextOfType(
    MsgType type) {
  return nextOfAny({type});
}

std::optional<StatusReport> SteeringClient::awaitStatus() {
  const auto frame = nextOfType(MsgType::kStatus);
  if (!frame) return std::nullopt;
  return decodeStatus(*frame);
}

std::optional<ImageFrame> SteeringClient::awaitImage() {
  const auto frame = nextOfType(MsgType::kImageFrame);
  if (!frame) return std::nullopt;
  return decodeImage(*frame);
}

std::optional<RoiData> SteeringClient::awaitRoi() {
  const auto frame = nextOfType(MsgType::kRoiData);
  if (!frame) return std::nullopt;
  return decodeRoi(*frame);
}

std::optional<ObservableReport> SteeringClient::awaitObservable() {
  const auto frame = nextOfType(MsgType::kObservable);
  if (!frame) return std::nullopt;
  return decodeObservable(*frame);
}

std::optional<telemetry::StepReport> SteeringClient::awaitTelemetry() {
  const auto frame = nextOfType(MsgType::kTelemetry);
  if (!frame) return std::nullopt;
  return decodeTelemetry(*frame);
}

std::optional<std::uint32_t> SteeringClient::awaitAck() {
  const auto frame = nextOfType(MsgType::kAck);
  if (!frame) return std::nullopt;
  io::Reader r(*frame);
  r.get<std::uint8_t>();
  const std::uint32_t commandId = r.get<std::uint32_t>();
  const auto it = inFlight_.find(commandId);
  if (it != inFlight_.end()) {
    roundTrip_.add(
        std::chrono::duration<double>(clock::now() - it->second).count());
    inFlight_.erase(it);
  }
  return commandId;
}

std::optional<Reject> SteeringClient::awaitReject() {
  const auto frame =
      nextOfAny({MsgType::kReject, MsgType::kRejectedAfterRollback});
  if (!frame) return std::nullopt;
  const Reject reject = decodeReject(*frame);
  inFlight_.erase(reject.commandId);
  return reject;
}

}  // namespace hemo::steer
