#include "partition/metrics.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace hemo::partition {

PartitionMetrics evaluatePartition(const SiteGraph& graph,
                                   const Partition& partition) {
  HEMO_CHECK(partition.partOfSite.size() == graph.numVertices);
  PartitionMetrics m;

  const auto loads = partition.partLoads(graph);
  m.imbalance = imbalanceFactor(loads);
  m.maxLoad = *std::max_element(loads.begin(), loads.end());

  std::vector<std::set<int>> partNeighbors(
      static_cast<std::size_t>(partition.numParts));
  std::vector<int> seenParts;
  for (std::uint64_t v = 0; v < graph.numVertices; ++v) {
    const int own = partition.partOfSite[static_cast<std::size_t>(v)];
    seenParts.clear();
    for (std::uint64_t e = graph.xadj[static_cast<std::size_t>(v)];
         e < graph.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const auto u = graph.adjncy[static_cast<std::size_t>(e)];
      const int up = partition.partOfSite[static_cast<std::size_t>(u)];
      if (up == own) continue;
      if (u > v) ++m.edgeCut;  // count each undirected edge once
      if (std::find(seenParts.begin(), seenParts.end(), up) ==
          seenParts.end()) {
        seenParts.push_back(up);
        partNeighbors[static_cast<std::size_t>(own)].insert(up);
      }
    }
    if (!seenParts.empty()) {
      ++m.boundaryVertices;
      m.commVolume += seenParts.size();
    }
  }
  double neighborSum = 0.0;
  for (const auto& s : partNeighbors) {
    neighborSum += static_cast<double>(s.size());
  }
  m.avgNeighborParts = partition.numParts > 0
                           ? neighborSum / partition.numParts
                           : 0.0;
  return m;
}

}  // namespace hemo::partition
