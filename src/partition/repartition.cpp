#include "partition/repartition.hpp"

#include <algorithm>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace hemo::partition {

RepartitionResult rebalance(const SiteGraph& graph, const Partition& start,
                            const std::vector<double>& siteCost,
                            const RepartitionOptions& options) {
  HEMO_TSPAN(kPartition, "partition.rebalance");
  HEMO_CHECK(siteCost.size() == graph.numVertices);
  HEMO_CHECK(start.partOfSite.size() == graph.numVertices);

  RepartitionResult result;
  result.partition = start;
  auto& partOf = result.partition.partOfSite;
  const int numParts = start.numParts;

  std::vector<double> loads(static_cast<std::size_t>(numParts), 0.0);
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(numParts), 0);
  double total = 0.0;
  for (std::uint64_t v = 0; v < graph.numVertices; ++v) {
    const auto p = static_cast<std::size_t>(partOf[static_cast<std::size_t>(v)]);
    loads[p] += siteCost[static_cast<std::size_t>(v)];
    counts[p] += 1;
    total += siteCost[static_cast<std::size_t>(v)];
  }
  // `mean` is invariant across passes: every move subtracts the same weight
  // from one part that it adds to another, so `total` (and `numParts`) never
  // change. Recomputing it inside the loop would yield the same value;
  // repeated rebalance calls with *updated* costs each recompute it from
  // their own inputs, so nothing here can stall on stale data.
  const double mean = total / numParts;
  result.imbalanceBefore = imbalanceFactor(loads);

  std::vector<double> connect(static_cast<std::size_t>(numParts), 0.0);
  for (int pass = 0; pass < options.maxPasses; ++pass) {
    if (imbalanceFactor(loads) <= options.targetImbalance) break;
    ++result.passesUsed;
    bool moved = false;
    for (std::uint64_t v = 0; v < graph.numVertices; ++v) {
      const int own = partOf[static_cast<std::size_t>(v)];
      if (loads[static_cast<std::size_t>(own)] <= mean) continue;
      if (counts[static_cast<std::size_t>(own)] <= 1) continue;
      std::fill(connect.begin(), connect.end(), 0.0);
      for (std::uint64_t e = graph.xadj[static_cast<std::size_t>(v)];
           e < graph.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
        const int np = partOf[static_cast<std::size_t>(
            graph.adjncy[static_cast<std::size_t>(e)])];
        connect[static_cast<std::size_t>(np)] += 1.0;
      }
      // Boundary-shred guard: only the foreign part(s) touching this site
      // with the most links may receive it. Handing a site to a part it
      // barely touches (e.g. one diagonal link) grows thin fingers that a
      // later pass can sever into single-site islands. Among the
      // maximally-connected foreign parts, pick the least loaded.
      double maxForeign = 0.0;
      for (int p = 0; p < numParts; ++p) {
        if (p != own) {
          maxForeign = std::max(maxForeign, connect[static_cast<std::size_t>(p)]);
        }
      }
      if (maxForeign <= 0.0) continue;  // interior site
      int best = own;
      for (int p = 0; p < numParts; ++p) {
        if (p == own || connect[static_cast<std::size_t>(p)] < maxForeign) {
          continue;
        }
        if (best == own || loads[static_cast<std::size_t>(p)] <
                               loads[static_cast<std::size_t>(best)]) {
          best = p;
        }
      }
      const double w = siteCost[static_cast<std::size_t>(v)];
      // Move only if it genuinely shifts load downhill (keeps the
      // diffusion monotone and prevents oscillation).
      if (loads[static_cast<std::size_t>(own)] - w <
          loads[static_cast<std::size_t>(best)] + w) {
        continue;
      }
      partOf[static_cast<std::size_t>(v)] = best;
      loads[static_cast<std::size_t>(own)] -= w;
      loads[static_cast<std::size_t>(best)] += w;
      counts[static_cast<std::size_t>(own)] -= 1;
      counts[static_cast<std::size_t>(best)] += 1;
      moved = true;
    }
    result.passImbalance.push_back(imbalanceFactor(loads));
    if (!moved) break;
  }
  for (std::uint64_t v = 0; v < graph.numVertices; ++v) {
    if (partOf[static_cast<std::size_t>(v)] !=
        start.partOfSite[static_cast<std::size_t>(v)]) {
      ++result.sitesMoved;
    }
  }
  result.imbalanceAfter = imbalanceFactor(loads);
  return result;
}

}  // namespace hemo::partition
