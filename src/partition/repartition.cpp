#include "partition/repartition.hpp"

#include <algorithm>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace hemo::partition {

RepartitionResult rebalance(const SiteGraph& graph, const Partition& start,
                            const std::vector<double>& siteCost,
                            const RepartitionOptions& options) {
  HEMO_TSPAN(kPartition, "partition.rebalance");
  HEMO_CHECK(siteCost.size() == graph.numVertices);
  HEMO_CHECK(start.partOfSite.size() == graph.numVertices);

  RepartitionResult result;
  result.partition = start;
  auto& partOf = result.partition.partOfSite;
  const int numParts = start.numParts;

  std::vector<double> loads(static_cast<std::size_t>(numParts), 0.0);
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(numParts), 0);
  double total = 0.0;
  for (std::uint64_t v = 0; v < graph.numVertices; ++v) {
    const auto p = static_cast<std::size_t>(partOf[static_cast<std::size_t>(v)]);
    loads[p] += siteCost[static_cast<std::size_t>(v)];
    counts[p] += 1;
    total += siteCost[static_cast<std::size_t>(v)];
  }
  const double mean = total / numParts;
  result.imbalanceBefore = imbalanceFactor(loads);

  std::vector<double> connect(static_cast<std::size_t>(numParts), 0.0);
  for (int pass = 0; pass < options.maxPasses; ++pass) {
    if (imbalanceFactor(loads) <= options.targetImbalance) break;
    ++result.passesUsed;
    bool moved = false;
    for (std::uint64_t v = 0; v < graph.numVertices; ++v) {
      const int own = partOf[static_cast<std::size_t>(v)];
      if (loads[static_cast<std::size_t>(own)] <= mean) continue;
      if (counts[static_cast<std::size_t>(own)] <= 1) continue;
      // Candidate target: the least-loaded adjacent part.
      std::fill(connect.begin(), connect.end(), 0.0);
      int best = own;
      for (std::uint64_t e = graph.xadj[static_cast<std::size_t>(v)];
           e < graph.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
        const int np = partOf[static_cast<std::size_t>(
            graph.adjncy[static_cast<std::size_t>(e)])];
        connect[static_cast<std::size_t>(np)] += 1.0;
        if (np != own && (best == own ||
                          loads[static_cast<std::size_t>(np)] <
                              loads[static_cast<std::size_t>(best)])) {
          best = np;
        }
      }
      if (best == own) continue;
      const double w = siteCost[static_cast<std::size_t>(v)];
      // Move only if it genuinely shifts load downhill (keeps the
      // diffusion monotone and prevents oscillation).
      if (loads[static_cast<std::size_t>(own)] - w <
          loads[static_cast<std::size_t>(best)] + w) {
        continue;
      }
      // Prefer not to shred the boundary: require the receiving part to
      // already touch this site with at least as many links as any other
      // foreign part does.
      partOf[static_cast<std::size_t>(v)] = best;
      loads[static_cast<std::size_t>(own)] -= w;
      loads[static_cast<std::size_t>(best)] += w;
      counts[static_cast<std::size_t>(own)] -= 1;
      counts[static_cast<std::size_t>(best)] += 1;
      ++result.sitesMoved;
      moved = true;
    }
    if (!moved) break;
  }
  result.imbalanceAfter = imbalanceFactor(loads);
  return result;
}

}  // namespace hemo::partition
