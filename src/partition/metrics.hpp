#pragma once
/// \file metrics.hpp
/// \brief Decomposition quality metrics: the quantities HemeLB's
/// pre-processing optimises (load balance) and pays for (edge cut ⇒ halo
/// communication volume).

#include <cstdint>

#include "partition/graph.hpp"

namespace hemo::partition {

struct PartitionMetrics {
  /// max part load / mean part load (weighted); 1.0 is perfect.
  double imbalance = 0.0;
  /// Number of graph edges crossing parts (each undirected edge counted
  /// once). Proportional to halo-exchange volume per step.
  std::uint64_t edgeCut = 0;
  /// Vertices with at least one neighbour in another part (halo senders).
  std::uint64_t boundaryVertices = 0;
  /// Sum over vertices of the number of *distinct* remote parts adjacent to
  /// it — the total communication volume in the ParMETIS sense.
  std::uint64_t commVolume = 0;
  /// Average number of distinct neighbouring parts per part (message count
  /// proxy: how many peers each rank talks to).
  double avgNeighborParts = 0.0;
  /// Largest part load (absolute).
  double maxLoad = 0.0;
};

/// Evaluate `partition` against `graph`.
PartitionMetrics evaluatePartition(const SiteGraph& graph,
                                   const Partition& partition);

}  // namespace hemo::partition
