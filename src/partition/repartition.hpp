#pragma once
/// \file repartition.hpp
/// \brief Mid-run diffusive rebalancing.
///
/// The paper's pre-processing section argues that (a) visualisation costs
/// must enter the balance equation and (b) interactive runs introduce "the
/// opportunity to adjust the partitioning mid-term". This module implements
/// that: given a partition and *measured* per-site costs (compute + in situ
/// visualisation), overloaded parts diffuse boundary sites towards
/// underloaded neighbouring parts until the imbalance drops below a
/// tolerance. Sites only move across existing part boundaries, so the
/// migration volume stays proportional to the imbalance being repaired.

#include "partition/graph.hpp"

namespace hemo::partition {

struct RepartitionOptions {
  /// Stop when imbalance (max/mean) is at or below this.
  double targetImbalance = 1.05;
  int maxPasses = 50;
};

struct RepartitionResult {
  Partition partition;
  /// Number of *distinct* sites whose final part differs from their part in
  /// `start` — the data-migration volume. A site that bounces through an
  /// intermediate part (or returns home) across passes is counted at most
  /// once, and not at all if it ends up where it started.
  std::uint64_t sitesMoved = 0;
  double imbalanceBefore = 0.0;
  double imbalanceAfter = 0.0;
  int passesUsed = 0;
  /// Imbalance (max/mean) measured at the end of each executed pass.
  /// Every accepted move is strictly downhill, so this sequence is
  /// non-increasing; tests assert the property.
  std::vector<double> passImbalance;
};

/// Diffusively rebalance `start` under per-site weights `siteCost` (size =
/// graph.numVertices; typically measured compute + vis cost). The graph's
/// own vertexWeight is ignored in favour of siteCost.
RepartitionResult rebalance(const SiteGraph& graph, const Partition& start,
                            const std::vector<double>& siteCost,
                            const RepartitionOptions& options = {});

}  // namespace hemo::partition
