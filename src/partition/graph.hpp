#pragma once
/// \file graph.hpp
/// \brief CSR site graph built from the sparse lattice — the input to every
/// partitioner (the role ParMETIS's distributed graph plays for HemeLB).

#include <cstdint>
#include <vector>

#include "geometry/sparse_lattice.hpp"
#include "util/vec.hpp"

namespace hemo::partition {

/// Undirected graph over fluid sites; edges join lattice-adjacent sites
/// (26-neighbourhood — every pair that exchanges halo data in the solver).
struct SiteGraph {
  std::uint64_t numVertices = 0;
  /// CSR offsets, size numVertices+1.
  std::vector<std::uint64_t> xadj;
  /// Neighbour vertex ids, size xadj.back(). Both directions stored.
  std::vector<std::uint64_t> adjncy;
  /// Per-vertex workload weight. Defaults to 1 (pure fluid-solver cost);
  /// the vis-aware balance experiments add visualisation cost here.
  std::vector<double> vertexWeight;
  /// Lattice coordinates (for geometric partitioners).
  std::vector<Vec3i> coords;

  double totalWeight() const {
    double s = 0.0;
    for (double w : vertexWeight) s += w;
    return s;
  }

  std::uint64_t degree(std::uint64_t v) const {
    return xadj[static_cast<std::size_t>(v) + 1] -
           xadj[static_cast<std::size_t>(v)];
  }
};

/// Build the site graph of a finalized lattice. All vertex weights are 1.
SiteGraph buildSiteGraph(const geometry::SparseLattice& lattice);

/// A k-way assignment of graph vertices (sites) to parts (ranks).
struct Partition {
  int numParts = 0;
  std::vector<int> partOfSite;

  std::vector<double> partLoads(const SiteGraph& graph) const;
};

/// Interface implemented by all decomposition algorithms.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual const char* name() const = 0;
  virtual Partition partition(const SiteGraph& graph, int numParts) const = 0;
};

}  // namespace hemo::partition
