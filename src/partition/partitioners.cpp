#include "partition/partitioners.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "util/bbox.hpp"
#include "util/check.hpp"
#include "util/hilbert.hpp"
#include "util/morton.hpp"
#include "util/rng.hpp"

namespace hemo::partition {

namespace {

/// Split the ordered index sequence into numParts weight-balanced contiguous
/// runs; the target for each part is recomputed on the remaining weight so
/// rounding error does not starve the last parts.
void assignContiguousByWeight(const std::vector<std::uint64_t>& order,
                              const SiteGraph& graph, int numParts,
                              std::vector<int>& partOf) {
  double remaining = 0.0;
  for (const auto v : order) {
    remaining += graph.vertexWeight[static_cast<std::size_t>(v)];
  }
  int part = 0;
  double inPart = 0.0;
  double target = remaining / numParts;
  for (const auto v : order) {
    partOf[static_cast<std::size_t>(v)] = part;
    const double w = graph.vertexWeight[static_cast<std::size_t>(v)];
    inPart += w;
    remaining -= w;
    if (inPart >= target && part + 1 < numParts) {
      ++part;
      inPart = 0.0;
      target = remaining / (numParts - part);
    }
  }
}

}  // namespace

// --- BlockPartitioner -------------------------------------------------------

Partition BlockPartitioner::partition(const SiteGraph& graph,
                                      int numParts) const {
  HEMO_CHECK(graph.numVertices == lattice_.numFluidSites());
  Partition p;
  p.numParts = numParts;
  p.partOfSite.assign(static_cast<std::size_t>(graph.numVertices), 0);

  // Greedy contiguous scan over the coarse block table, by fluid volume —
  // identical logic to the parallel reader's initial distribution.
  const auto& blocks = lattice_.blocks();
  HEMO_CHECK_MSG(blocks.size() >= static_cast<std::size_t>(numParts),
                 "fewer non-empty blocks than parts");
  std::uint64_t remaining = graph.numVertices;
  int part = 0;
  std::uint64_t inPart = 0;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const auto& b = blocks[bi];
    const int partsLeft = numParts - part;
    const std::uint64_t target =
        (remaining + static_cast<std::uint64_t>(partsLeft) - 1) /
        static_cast<std::uint64_t>(partsLeft);
    for (std::uint64_t id = b.firstSiteId; id < b.firstSiteId + b.fluidCount;
         ++id) {
      p.partOfSite[static_cast<std::size_t>(id)] = part;
    }
    inPart += b.fluidCount;
    remaining -= b.fluidCount;
    const std::size_t blocksLeft = blocks.size() - bi - 1;
    // Close the part when it reached its share — or when the remaining
    // blocks are only just enough to keep every later part non-empty.
    if (part + 1 < numParts &&
        (inPart >= target ||
         blocksLeft <= static_cast<std::size_t>(numParts - part - 1))) {
      ++part;
      inPart = 0;
    }
  }
  return p;
}

// --- SfcPartitioner ----------------------------------------------------------

Partition SfcPartitioner::partition(const SiteGraph& graph,
                                    int numParts) const {
  Partition p;
  p.numParts = numParts;
  p.partOfSite.assign(static_cast<std::size_t>(graph.numVertices), 0);
  std::vector<std::uint64_t> order(static_cast<std::size_t>(graph.numVertices));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::uint64_t a, std::uint64_t b) {
              return morton3(graph.coords[static_cast<std::size_t>(a)]) <
                     morton3(graph.coords[static_cast<std::size_t>(b)]);
            });
  assignContiguousByWeight(order, graph, numParts, p.partOfSite);
  return p;
}

// --- HilbertPartitioner -------------------------------------------------------

Partition HilbertPartitioner::partition(const SiteGraph& graph,
                                        int numParts) const {
  Partition p;
  p.numParts = numParts;
  p.partOfSite.assign(static_cast<std::size_t>(graph.numVertices), 0);
  // Enough bits to cover the largest coordinate.
  int maxCoord = 1;
  for (const auto& c : graph.coords) {
    maxCoord = std::max({maxCoord, c.x, c.y, c.z});
  }
  int bits = 1;
  while ((1 << bits) <= maxCoord) ++bits;
  std::vector<std::uint64_t> order(static_cast<std::size_t>(graph.numVertices));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::uint64_t a, std::uint64_t b) {
              return hilbert3(graph.coords[static_cast<std::size_t>(a)], bits) <
                     hilbert3(graph.coords[static_cast<std::size_t>(b)], bits);
            });
  assignContiguousByWeight(order, graph, numParts, p.partOfSite);
  return p;
}

// --- RcbPartitioner ----------------------------------------------------------

namespace {

void rcbRecurse(std::vector<std::uint64_t>& idx, std::size_t lo,
                std::size_t hi, int firstPart, int numParts,
                const SiteGraph& graph, std::vector<int>& partOf) {
  if (numParts == 1) {
    for (std::size_t i = lo; i < hi; ++i) {
      partOf[static_cast<std::size_t>(idx[i])] = firstPart;
    }
    return;
  }
  // Widest axis of the enclosed coordinates.
  BoxI box = BoxI::empty();
  for (std::size_t i = lo; i < hi; ++i) {
    box.expand(graph.coords[static_cast<std::size_t>(idx[i])]);
  }
  const Vec3i ext = box.extent();
  const int axis = (ext.x >= ext.y && ext.x >= ext.z) ? 0
                   : (ext.y >= ext.z)                 ? 1
                                                      : 2;
  std::sort(idx.begin() + static_cast<std::ptrdiff_t>(lo),
            idx.begin() + static_cast<std::ptrdiff_t>(hi),
            [&](std::uint64_t a, std::uint64_t b) {
              return graph.coords[static_cast<std::size_t>(a)][axis] <
                     graph.coords[static_cast<std::size_t>(b)][axis];
            });
  // Weighted split proportional to the sub-part counts.
  const int leftParts = numParts / 2;
  double total = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    total += graph.vertexWeight[static_cast<std::size_t>(idx[i])];
  }
  const double want = total * leftParts / numParts;
  double acc = 0.0;
  std::size_t cut = lo;
  while (cut < hi && acc < want) {
    acc += graph.vertexWeight[static_cast<std::size_t>(idx[cut])];
    ++cut;
  }
  // Keep both halves non-empty.
  cut = std::clamp(cut, lo + 1, hi - 1);
  rcbRecurse(idx, lo, cut, firstPart, leftParts, graph, partOf);
  rcbRecurse(idx, cut, hi, firstPart + leftParts, numParts - leftParts, graph,
             partOf);
}

}  // namespace

Partition RcbPartitioner::partition(const SiteGraph& graph,
                                    int numParts) const {
  Partition p;
  p.numParts = numParts;
  p.partOfSite.assign(static_cast<std::size_t>(graph.numVertices), 0);
  std::vector<std::uint64_t> idx(static_cast<std::size_t>(graph.numVertices));
  std::iota(idx.begin(), idx.end(), 0);
  HEMO_CHECK(graph.numVertices >= static_cast<std::uint64_t>(numParts));
  rcbRecurse(idx, 0, idx.size(), 0, numParts, graph, p.partOfSite);
  return p;
}

// --- GreedyGrowingPartitioner ------------------------------------------------

Partition GreedyGrowingPartitioner::partition(const SiteGraph& graph,
                                              int numParts) const {
  Partition p;
  p.numParts = numParts;
  p.partOfSite.assign(static_cast<std::size_t>(graph.numVertices), -1);

  double remaining = graph.totalWeight();
  int part = 0;
  double inPart = 0.0;
  double target = remaining / numParts;
  std::queue<std::uint64_t> frontier;
  std::uint64_t nextSeedScan = 0;

  auto assign = [&](std::uint64_t v) {
    p.partOfSite[static_cast<std::size_t>(v)] = part;
    const double w = graph.vertexWeight[static_cast<std::size_t>(v)];
    inPart += w;
    remaining -= w;
    for (std::uint64_t e = graph.xadj[static_cast<std::size_t>(v)];
         e < graph.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const auto n = graph.adjncy[static_cast<std::size_t>(e)];
      if (p.partOfSite[static_cast<std::size_t>(n)] < 0) frontier.push(n);
    }
    if (inPart >= target && part + 1 < numParts) {
      ++part;
      inPart = 0.0;
      target = remaining / (numParts - part);
    }
  };

  std::uint64_t assigned = 0;
  while (assigned < graph.numVertices) {
    if (frontier.empty()) {
      // Seed (or re-seed after a disconnected component) from the lowest
      // unassigned id, as HemeLB's basic growing decomposition does.
      while (p.partOfSite[static_cast<std::size_t>(nextSeedScan)] >= 0) {
        ++nextSeedScan;
      }
      assign(nextSeedScan);
      ++assigned;
      continue;
    }
    const auto v = frontier.front();
    frontier.pop();
    if (p.partOfSite[static_cast<std::size_t>(v)] >= 0) continue;
    assign(v);
    ++assigned;
  }
  return p;
}

// --- MultilevelKWayPartitioner ----------------------------------------------

namespace {

/// Internal weighted graph used across coarsening levels.
struct WGraph {
  std::vector<std::uint64_t> xadj;
  std::vector<std::uint64_t> adjncy;
  std::vector<double> edgeWeight;
  std::vector<double> vertexWeight;

  std::uint64_t numVertices() const { return xadj.size() - 1; }
};

WGraph toWGraph(const SiteGraph& g) {
  WGraph w;
  w.xadj = g.xadj;
  w.adjncy = g.adjncy;
  w.edgeWeight.assign(g.adjncy.size(), 1.0);
  w.vertexWeight = g.vertexWeight;
  return w;
}

/// Heavy-edge matching; returns fine->coarse map and the coarse count.
std::pair<std::vector<std::uint64_t>, std::uint64_t> heavyEdgeMatch(
    const WGraph& g, Rng& rng) {
  const auto n = g.numVertices();
  std::vector<std::uint64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniformInt(i)]);
  }
  constexpr std::uint64_t kUnmatched = ~0ULL;
  std::vector<std::uint64_t> match(static_cast<std::size_t>(n), kUnmatched);
  std::vector<std::uint64_t> coarseOf(static_cast<std::size_t>(n));
  std::uint64_t coarseCount = 0;
  for (const auto v : order) {
    if (match[static_cast<std::size_t>(v)] != kUnmatched) continue;
    std::uint64_t best = v;
    double bestW = -1.0;
    for (std::uint64_t e = g.xadj[static_cast<std::size_t>(v)];
         e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const auto u = g.adjncy[static_cast<std::size_t>(e)];
      if (u != v && match[static_cast<std::size_t>(u)] == kUnmatched &&
          g.edgeWeight[static_cast<std::size_t>(e)] > bestW) {
        bestW = g.edgeWeight[static_cast<std::size_t>(e)];
        best = u;
      }
    }
    match[static_cast<std::size_t>(v)] = best;
    match[static_cast<std::size_t>(best)] = v;
    coarseOf[static_cast<std::size_t>(v)] = coarseCount;
    coarseOf[static_cast<std::size_t>(best)] = coarseCount;
    ++coarseCount;
  }
  return {std::move(coarseOf), coarseCount};
}

WGraph buildCoarse(const WGraph& fine, const std::vector<std::uint64_t>& coarseOf,
                   std::uint64_t coarseCount) {
  WGraph c;
  c.vertexWeight.assign(static_cast<std::size_t>(coarseCount), 0.0);
  std::vector<std::vector<std::pair<std::uint64_t, double>>> adj(
      static_cast<std::size_t>(coarseCount));
  for (std::uint64_t v = 0; v < fine.numVertices(); ++v) {
    const auto cv = coarseOf[static_cast<std::size_t>(v)];
    c.vertexWeight[static_cast<std::size_t>(cv)] +=
        fine.vertexWeight[static_cast<std::size_t>(v)];
    for (std::uint64_t e = fine.xadj[static_cast<std::size_t>(v)];
         e < fine.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const auto cu = coarseOf[static_cast<std::size_t>(
          fine.adjncy[static_cast<std::size_t>(e)])];
      if (cu == cv) continue;
      adj[static_cast<std::size_t>(cv)].push_back(
          {cu, fine.edgeWeight[static_cast<std::size_t>(e)]});
    }
  }
  c.xadj.push_back(0);
  for (auto& edges : adj) {
    std::sort(edges.begin(), edges.end());
    // Merge parallel edges (weights add).
    std::size_t i = 0;
    while (i < edges.size()) {
      std::uint64_t u = edges[i].first;
      double w = 0.0;
      while (i < edges.size() && edges[i].first == u) {
        w += edges[i].second;
        ++i;
      }
      c.adjncy.push_back(u);
      c.edgeWeight.push_back(w);
    }
    c.xadj.push_back(c.adjncy.size());
  }
  return c;
}

/// Greedy growing on a weighted internal graph (initial coarse partition).
std::vector<int> greedyGrowWGraph(const WGraph& g, int numParts) {
  const auto n = g.numVertices();
  std::vector<int> partOf(static_cast<std::size_t>(n), -1);
  double remaining = 0.0;
  for (double w : g.vertexWeight) remaining += w;
  int part = 0;
  double inPart = 0.0;
  double target = remaining / numParts;
  std::queue<std::uint64_t> frontier;
  std::uint64_t seedScan = 0;
  std::uint64_t assigned = 0;
  auto assign = [&](std::uint64_t v) {
    partOf[static_cast<std::size_t>(v)] = part;
    const double w = g.vertexWeight[static_cast<std::size_t>(v)];
    inPart += w;
    remaining -= w;
    for (std::uint64_t e = g.xadj[static_cast<std::size_t>(v)];
         e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const auto u = g.adjncy[static_cast<std::size_t>(e)];
      if (partOf[static_cast<std::size_t>(u)] < 0) frontier.push(u);
    }
    if (inPart >= target && part + 1 < numParts) {
      ++part;
      inPart = 0.0;
      target = remaining / (numParts - part);
    }
  };
  while (assigned < n) {
    if (frontier.empty()) {
      while (partOf[static_cast<std::size_t>(seedScan)] >= 0) ++seedScan;
      assign(seedScan);
      ++assigned;
      continue;
    }
    const auto v = frontier.front();
    frontier.pop();
    if (partOf[static_cast<std::size_t>(v)] >= 0) continue;
    assign(v);
    ++assigned;
  }
  return partOf;
}

/// Boundary KL/FM-style refinement sweeps; improves edge cut under a
/// balance constraint and never empties a part.
void refine(const WGraph& g, std::vector<int>& partOf, int numParts,
            double tolerance, int passes) {
  std::vector<double> loads(static_cast<std::size_t>(numParts), 0.0);
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(numParts), 0);
  double total = 0.0;
  for (std::uint64_t v = 0; v < g.numVertices(); ++v) {
    const auto p = static_cast<std::size_t>(partOf[static_cast<std::size_t>(v)]);
    loads[p] += g.vertexWeight[static_cast<std::size_t>(v)];
    counts[p] += 1;
    total += g.vertexWeight[static_cast<std::size_t>(v)];
  }
  const double maxLoad = tolerance * total / numParts;

  std::vector<double> connect(static_cast<std::size_t>(numParts), 0.0);
  for (int pass = 0; pass < passes; ++pass) {
    bool moved = false;
    for (std::uint64_t v = 0; v < g.numVertices(); ++v) {
      const int own = partOf[static_cast<std::size_t>(v)];
      if (counts[static_cast<std::size_t>(own)] <= 1) continue;
      std::fill(connect.begin(), connect.end(), 0.0);
      bool boundary = false;
      for (std::uint64_t e = g.xadj[static_cast<std::size_t>(v)];
           e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
        const int np = partOf[static_cast<std::size_t>(
            g.adjncy[static_cast<std::size_t>(e)])];
        connect[static_cast<std::size_t>(np)] +=
            g.edgeWeight[static_cast<std::size_t>(e)];
        if (np != own) boundary = true;
      }
      if (!boundary) continue;
      const double w = g.vertexWeight[static_cast<std::size_t>(v)];
      int bestPart = own;
      double bestGain = 0.0;
      for (int q = 0; q < numParts; ++q) {
        if (q == own || connect[static_cast<std::size_t>(q)] <= 0.0) continue;
        if (loads[static_cast<std::size_t>(q)] + w > maxLoad) continue;
        const double gain = connect[static_cast<std::size_t>(q)] -
                            connect[static_cast<std::size_t>(own)];
        const bool balanceWin = loads[static_cast<std::size_t>(own)] -
                                    loads[static_cast<std::size_t>(q)] >
                                w;
        if (gain > bestGain ||
            (gain == bestGain && bestPart == own && gain >= 0.0 &&
             balanceWin)) {
          bestGain = gain;
          bestPart = q;
        }
      }
      if (bestPart != own) {
        partOf[static_cast<std::size_t>(v)] = bestPart;
        loads[static_cast<std::size_t>(own)] -= w;
        loads[static_cast<std::size_t>(bestPart)] += w;
        counts[static_cast<std::size_t>(own)] -= 1;
        counts[static_cast<std::size_t>(bestPart)] += 1;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

Partition MultilevelKWayPartitioner::partition(const SiteGraph& graph,
                                               int numParts) const {
  HEMO_CHECK(graph.numVertices >= static_cast<std::uint64_t>(numParts));
  Partition result;
  result.numParts = numParts;

  // Coarsening chain.
  std::vector<WGraph> levels;
  std::vector<std::vector<std::uint64_t>> coarseMaps;
  levels.push_back(toWGraph(graph));
  Rng rng(options_.seed);
  const std::uint64_t coarseTarget =
      options_.coarsestVerticesPerPart * static_cast<std::uint64_t>(numParts);
  while (levels.back().numVertices() > coarseTarget) {
    auto [coarseOf, count] = heavyEdgeMatch(levels.back(), rng);
    // Matching stalled (e.g. star graphs): stop coarsening.
    if (count > levels.back().numVertices() * 9 / 10) break;
    WGraph coarse = buildCoarse(levels.back(), coarseOf, count);
    coarseMaps.push_back(std::move(coarseOf));
    levels.push_back(std::move(coarse));
  }

  // Initial partition on the coarsest graph, then uncoarsen + refine.
  std::vector<int> partOf = greedyGrowWGraph(levels.back(), numParts);
  refine(levels.back(), partOf, numParts, options_.imbalanceTolerance,
         options_.refinementPasses);
  for (std::size_t level = coarseMaps.size(); level-- > 0;) {
    const auto& map = coarseMaps[level];
    std::vector<int> finer(map.size());
    for (std::size_t v = 0; v < map.size(); ++v) {
      finer[v] = partOf[static_cast<std::size_t>(map[v])];
    }
    partOf = std::move(finer);
    refine(levels[level], partOf, numParts, options_.imbalanceTolerance,
           options_.refinementPasses);
  }
  result.partOfSite = std::move(partOf);
  return result;
}

std::vector<std::unique_ptr<Partitioner>> makeAllPartitioners(
    const geometry::SparseLattice& lattice) {
  std::vector<std::unique_ptr<Partitioner>> all;
  all.push_back(std::make_unique<BlockPartitioner>(lattice));
  all.push_back(std::make_unique<SfcPartitioner>());
  all.push_back(std::make_unique<HilbertPartitioner>());
  all.push_back(std::make_unique<RcbPartitioner>());
  all.push_back(std::make_unique<GreedyGrowingPartitioner>());
  all.push_back(std::make_unique<MultilevelKWayPartitioner>());
  return all;
}

}  // namespace hemo::partition
