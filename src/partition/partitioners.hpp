#pragma once
/// \file partitioners.hpp
/// \brief The decomposition algorithms compared in the pre-processing
/// experiments (bench P2): block-volume, space-filling curve, recursive
/// coordinate bisection, greedy graph growing (HemeLB's basic scheme) and a
/// multilevel k-way partitioner standing in for ParMETIS.

#include <memory>
#include <vector>

#include "geometry/sparse_lattice.hpp"
#include "partition/graph.hpp"

namespace hemo::partition {

/// Coarse block-granularity balance: whole 8³ blocks assigned by scanning
/// the block table and splitting by fluid volume — the paper's "initial
/// approximate load balance" readable from the file header alone.
class BlockPartitioner final : public Partitioner {
 public:
  explicit BlockPartitioner(const geometry::SparseLattice& lattice)
      : lattice_(lattice) {}
  const char* name() const override { return "block"; }
  Partition partition(const SiteGraph& graph, int numParts) const override;

 private:
  const geometry::SparseLattice& lattice_;
};

/// Space-filling-curve partitioner: sites sorted by Morton code, split into
/// weight-balanced contiguous runs.
class SfcPartitioner final : public Partitioner {
 public:
  const char* name() const override { return "sfc"; }
  Partition partition(const SiteGraph& graph, int numParts) const override;
};

/// Hilbert-curve partitioner: like SfcPartitioner but ordered along the
/// Hilbert curve, whose stronger locality typically lowers the edge cut.
class HilbertPartitioner final : public Partitioner {
 public:
  const char* name() const override { return "hilbert"; }
  Partition partition(const SiteGraph& graph, int numParts) const override;
};

/// Recursive coordinate bisection on site coordinates with weight-median
/// splits along the widest axis.
class RcbPartitioner final : public Partitioner {
 public:
  const char* name() const override { return "rcb"; }
  Partition partition(const SiteGraph& graph, int numParts) const override;
};

/// Greedy graph growing: parts are grown one at a time by BFS from the
/// lowest-id unassigned site until each reaches its weight target. This is
/// the simple decomposition HemeLB used before delegating to ParMETIS.
class GreedyGrowingPartitioner final : public Partitioner {
 public:
  const char* name() const override { return "greedy"; }
  Partition partition(const SiteGraph& graph, int numParts) const override;
};

/// Multilevel k-way: heavy-edge-matching coarsening, greedy initial
/// partition on the coarsest graph, then boundary Kernighan–Lin-style
/// refinement during uncoarsening. The same algorithm family as ParMETIS
/// (paper ref [5]).
class MultilevelKWayPartitioner final : public Partitioner {
 public:
  struct Options {
    /// Stop coarsening when the graph is this small (times numParts).
    std::uint64_t coarsestVerticesPerPart = 30;
    /// Balance slack: parts may exceed the ideal load by this factor.
    double imbalanceTolerance = 1.05;
    /// Refinement sweeps per uncoarsening level.
    int refinementPasses = 4;
    /// Deterministic seed for matching order.
    std::uint64_t seed = 12345;
  };

  MultilevelKWayPartitioner() = default;
  explicit MultilevelKWayPartitioner(const Options& options)
      : options_(options) {}
  const char* name() const override { return "kway"; }
  Partition partition(const SiteGraph& graph, int numParts) const override;

 private:
  Options options_;
};

/// All partitioners applicable to a lattice, for comparison sweeps.
std::vector<std::unique_ptr<Partitioner>> makeAllPartitioners(
    const geometry::SparseLattice& lattice);

}  // namespace hemo::partition
