#include "partition/graph.hpp"

#include "util/check.hpp"

namespace hemo::partition {

SiteGraph buildSiteGraph(const geometry::SparseLattice& lattice) {
  HEMO_CHECK(lattice.finalized());
  SiteGraph g;
  g.numVertices = lattice.numFluidSites();
  g.xadj.reserve(static_cast<std::size_t>(g.numVertices) + 1);
  g.xadj.push_back(0);
  g.vertexWeight.assign(static_cast<std::size_t>(g.numVertices), 1.0);
  g.coords.reserve(static_cast<std::size_t>(g.numVertices));

  for (std::uint64_t v = 0; v < g.numVertices; ++v) {
    g.coords.push_back(lattice.sitePosition(v));
    for (int d = 0; d < geometry::kNumDirections; ++d) {
      const auto n = lattice.neighborId(v, d);
      if (n >= 0) g.adjncy.push_back(static_cast<std::uint64_t>(n));
    }
    g.xadj.push_back(g.adjncy.size());
  }
  return g;
}

std::vector<double> Partition::partLoads(const SiteGraph& graph) const {
  HEMO_CHECK(partOfSite.size() == graph.numVertices);
  std::vector<double> loads(static_cast<std::size_t>(numParts), 0.0);
  for (std::size_t v = 0; v < partOfSite.size(); ++v) {
    HEMO_CHECK(partOfSite[v] >= 0 && partOfSite[v] < numParts);
    loads[static_cast<std::size_t>(partOfSite[v])] += graph.vertexWeight[v];
  }
  return loads;
}

}  // namespace hemo::partition
