#pragma once
/// \file wss.hpp
/// \brief Wall shear stress extraction — the physiologically relevant
/// observable the paper names first among the data sets in situ
/// post-processing must deliver ("wall stress distributions").

#include <cstdint>
#include <vector>

#include "lb/domain_map.hpp"
#include "util/vec.hpp"

namespace hemo::lb {

struct WssSample {
  std::uint64_t siteId = 0;
  Vec3d worldPos{};
  Vec3d normal{};       ///< outward wall normal
  Vec3d traction{};     ///< tangential traction vector (lattice units)
  double wss = 0.0;     ///< |tangential traction|
};

/// Compute WSS at every owned wall-adjacent site. Requires the solver to
/// run with LbParams::computeStress = true (macro.stress filled).
inline std::vector<WssSample> computeWallShearStress(
    const DomainMap& domain, const MacroFields& macro) {
  std::vector<WssSample> samples;
  if (macro.stress.empty()) return samples;
  const auto& lat = domain.lattice();
  for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
    const std::uint64_t g = domain.globalOf(l);
    const auto& rec = lat.site(g);
    if (!rec.hasWallNormal || !rec.touchesWall()) continue;
    const Vec3d n = rec.wallNormal.cast<double>().normalized();
    const Vec3d t = macro.stress[static_cast<std::size_t>(l)].apply(n);
    const Vec3d tangential = t - n * n.dot(t);
    WssSample s;
    s.siteId = g;
    s.worldPos = lat.siteWorld(g);
    s.normal = n;
    s.traction = tangential;
    s.wss = tangential.norm();
    samples.push_back(s);
  }
  return samples;
}

}  // namespace hemo::lb
