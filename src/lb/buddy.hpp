#pragma once
/// \file buddy.hpp
/// \brief Diskless buddy checkpoints: RAM-mirrored distribution blobs.
///
/// Disk checkpoints (checkpoint.hpp) survive anything but cost a parallel
/// filesystem round-trip; at exascale cadence that is often the limiting
/// term. The buddy scheme trades durability for speed: every
/// `checkpointEvery` steps each rank keeps its own distribution blob in
/// memory *and* mirrors it to a buddy (the next rank on a ring), RAID-1
/// style. Any single rank death then leaves every rank's newest blob held
/// by at least one survivor — its own copy if it lives, the buddy copy if
/// it died — so shrink-and-continue recovery needs no filesystem at all.
/// Two *adjacent* deaths can lose a blob; restoreFromBuddy detects the
/// gap and returns a typed failure so the recovery ladder falls back to
/// disk (or a cold restart).
///
/// The blob payload and validation reuse the checkpoint v2 machinery
/// (ckptdetail::encodeBlob / parseCheckpointBlob), and restore routes
/// sites by *current* ownership exactly like readCheckpoint — so a buddy
/// snapshot taken on N ranks restores onto any survivor decomposition.

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "lb/checkpoint.hpp"
#include "lb/solver.hpp"

namespace hemo::lb {

/// In-memory blob store standing in for node-local RAM. One instance is
/// shared by every thread-rank (the in-process analogue of "each node
/// keeps its own buffers"); slots are keyed by the *holder* world rank so
/// recovery only ever consults memory owned by survivors.
class BuddyStore {
 public:
  struct Slot {
    std::uint64_t step = 0;
    std::uint64_t siteCount = 0;
    std::uint32_t crc = 0;
    std::vector<std::byte> blob;
  };

  /// Holder-visible metadata of one slot (what restore's allgather ships).
  struct SlotMeta {
    std::uint64_t owner = 0;
    std::uint64_t step = 0;
    std::uint64_t siteCount = 0;
  };

  /// Store/overwrite the blob of `ownerWorld`'s sites at `step`, held in
  /// `holderWorld`'s memory.
  void put(int holderWorld, int ownerWorld, std::uint64_t step,
           std::uint64_t siteCount, std::vector<std::byte> blob) {
    const std::uint32_t crc = crc32(blob);
    put(holderWorld, ownerWorld, step, siteCount, crc, std::move(blob));
  }

  /// As put(), but with the CRC already computed — the mirror exchange
  /// ships the owner's CRC alongside the blob so the holder skips a full
  /// pass over the bytes (fetch() re-verifies before any restore uses it).
  void put(int holderWorld, int ownerWorld, std::uint64_t step,
           std::uint64_t siteCount, std::uint32_t crc,
           std::vector<std::byte> blob) {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[holderWorld][ownerWorld] = Slot{step, siteCount, crc, std::move(blob)};
  }

  /// Metadata of every slot held by `holderWorld`.
  std::vector<SlotMeta> heldBy(int holderWorld) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SlotMeta> out;
    const auto it = slots_.find(holderWorld);
    if (it == slots_.end()) return out;
    for (const auto& [owner, slot] : it->second) {
      out.push_back(SlotMeta{static_cast<std::uint64_t>(owner), slot.step,
                             slot.siteCount});
    }
    return out;
  }

  /// Copy of the blob `holderWorld` holds for (`ownerWorld`, `step`);
  /// false when absent or when the stored CRC no longer matches (memory
  /// corruption — treated like a missing slot).
  bool fetch(int holderWorld, int ownerWorld, std::uint64_t step,
             std::vector<std::byte>& out) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto hit = slots_.find(holderWorld);
    if (hit == slots_.end()) return false;
    const auto oit = hit->second.find(ownerWorld);
    if (oit == hit->second.end() || oit->second.step != step) return false;
    if (crc32(oit->second.blob) != oit->second.crc) return false;
    out = oit->second.blob;
    return true;
  }

  /// Simulate the death of a rank's node: its memory is gone. Tests use
  /// this to prove restore works from the surviving buddy copies alone
  /// (the recovery path itself never consults dead holders anyway).
  void dropHolder(int holderWorld) {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_.erase(holderWorld);
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_.clear();
  }

  std::uint64_t bytesHeld() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto& [holder, byOwner] : slots_) {
      for (const auto& [owner, slot] : byOwner) total += slot.blob.size();
    }
    return total;
  }

 private:
  mutable std::mutex mutex_;
  // holder world rank -> owner world rank -> newest slot.
  std::map<int, std::map<int, Slot>> slots_;
};

namespace buddydetail {
/// User tags for the ring mirror exchange (checkpoint scatter uses
/// 9001/9002; stay clear of those and of kMaxUserTag collectives). The
/// header and the blob travel as separate messages so the blob vector is
/// handed to the mailbox whole — no pack/unpack copy on either side.
inline constexpr int kTagMirror = 9851;
inline constexpr int kTagMirrorBlob = 9852;
}  // namespace buddydetail

/// Collective: snapshot this rank's distributions into the store — its own
/// slot plus a ring copy in the next live rank's memory. Returns the bytes
/// mirrored by this rank (blob size, counted once for the remote copy).
template <typename Lattice>
std::uint64_t mirrorBuddy(const Solver<Lattice>& solver,
                          comm::Communicator& comm, BuddyStore& store) {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kIo);
  constexpr int kQ = Lattice::kQ;
  const int n = comm.size();
  const int me = comm.worldRank();
  const std::uint64_t step = solver.stepsDone();

  std::vector<std::vector<double>> f(static_cast<std::size_t>(kQ));
  for (int i = 0; i < kQ; ++i) {
    solver.gatherDistribution(i, f[static_cast<std::size_t>(i)]);
  }
  auto blob = ckptdetail::encodeBlob(solver.domain().ownedIds(), f);
  const std::uint64_t owned = solver.domain().numOwned();
  const std::uint64_t blobBytes = blob.size();
  // One CRC pass at the owner covers both copies: the header ships it to
  // the buddy, and fetch() re-verifies before a restore ever trusts it.
  const std::uint32_t crc = crc32(blob);

  if (n > 1) {
    const int next = (comm.rank() + 1) % n;
    const int prev = (comm.rank() - 1 + n) % n;
    io::Writer w;
    w.put<std::uint64_t>(step);
    w.put<std::int32_t>(me);
    w.put<std::uint64_t>(owned);
    w.put<std::uint32_t>(crc);
    const auto header = w.take();
    comm.sendBytes(next, buddydetail::kTagMirror, header.data(),
                   header.size());
    comm.sendBytes(next, buddydetail::kTagMirrorBlob, blob.data(),
                   blob.size());
    // Self copy: a rank that survives always restores from its own memory,
    // buddy traffic only matters for the dead. Deferred past the sends so
    // the blob moves into the store instead of being copied.
    store.put(me, me, step, owned, crc, std::move(blob));
    const auto incoming = comm.recvBytes(prev, buddydetail::kTagMirror);
    io::Reader r(incoming.data(), incoming.size());
    const std::uint64_t peerStep = r.get<std::uint64_t>();
    const std::int32_t peerOwner = r.get<std::int32_t>();
    const std::uint64_t peerOwned = r.get<std::uint64_t>();
    const std::uint32_t peerCrc = r.get<std::uint32_t>();
    auto peerBlob = comm.recvBytes(prev, buddydetail::kTagMirrorBlob);
    store.put(me, peerOwner, peerStep, peerOwned, peerCrc,
              std::move(peerBlob));
  } else {
    store.put(me, me, step, owned, crc, std::move(blob));
  }
  if (auto* t = telemetry::threadTelemetry()) {
    t->metrics().counter("buddy.mirrors").add(1);
    t->metrics().counter("buddy.bytes_mirrored").add(blobBytes);
  }
  return blobBytes;
}

/// Collective: restore the solver from the newest buddy snapshot whose
/// blobs — drawn only from memory held by the ranks of `comm` — cover the
/// whole lattice. Routes sites by current ownership (any survivor
/// decomposition works) and validates coverage before applying, exactly
/// like readCheckpoint. Typed failure when no complete snapshot exists
/// (e.g. adjacent buddies died): the caller falls back to disk.
template <typename Lattice>
RestoreResult restoreFromBuddy(BuddyStore& store, Solver<Lattice>& solver,
                               comm::Communicator& comm) {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kIo);
  constexpr int kQ = Lattice::kQ;
  const auto& domain = solver.domain();
  const std::uint64_t expectSites =
      comm.allreduceSum<std::uint64_t>(domain.numOwned());
  const std::uint64_t numGlobalSites = domain.lattice().numFluidSites();
  const int n = comm.size();

  // Ship every live holder's slot metadata everywhere; each rank then
  // derives the same restore plan with no further coordination.
  std::vector<std::uint64_t> metaFlat;
  for (const auto& m : store.heldBy(comm.worldRank())) {
    metaFlat.push_back(m.owner);
    metaFlat.push_back(m.step);
    metaFlat.push_back(m.siteCount);
  }
  const auto allMeta = comm.allgatherVec(metaFlat);

  // Candidate steps, newest first. A step qualifies when the distinct
  // owners present sum to the full lattice (owners partition the sites,
  // so coverage == site-count sum).
  std::vector<std::uint64_t> steps;
  for (const auto& flat : allMeta) {
    for (std::size_t i = 0; i + 3 <= flat.size(); i += 3) {
      steps.push_back(flat[i + 1]);
    }
  }
  std::sort(steps.begin(), steps.end(), std::greater<>());
  steps.erase(std::unique(steps.begin(), steps.end()), steps.end());

  std::uint64_t bestStep = 0;
  // owner world rank -> chosen holder group rank (lowest wins: ties are
  // broken identically on every rank).
  std::map<int, int> holderOf;
  bool found = false;
  for (const std::uint64_t cand : steps) {
    std::map<int, int> holders;
    std::uint64_t covered = 0;
    for (int holderGroup = 0; holderGroup < n; ++holderGroup) {
      const auto& flat = allMeta[static_cast<std::size_t>(holderGroup)];
      for (std::size_t i = 0; i + 3 <= flat.size(); i += 3) {
        if (flat[i + 1] != cand) continue;
        const int owner = static_cast<int>(flat[i]);
        if (holders.emplace(owner, holderGroup).second) {
          covered += flat[i + 2];
        }
      }
    }
    if (covered == expectSites) {
      bestStep = cand;
      holderOf = std::move(holders);
      found = true;
      break;
    }
  }
  if (!found) {
    if (auto* t = telemetry::threadTelemetry()) {
      t->metrics().counter("buddy.restore_miss").add(1);
    }
    return RestoreResult{CkptStatus::kOpenFailed, 0,
                         "no complete buddy snapshot among survivors"};
  }

  // Contributing holders decode their blobs and bucket sites by current
  // owner; one all-to-all routes everything.
  std::vector<std::vector<std::uint64_t>> idsToSend(
      static_cast<std::size_t>(n));
  std::vector<std::vector<double>> valsToSend(static_cast<std::size_t>(n));
  bool decodeOk = true;
  for (const auto& [owner, holderGroup] : holderOf) {
    if (holderGroup != comm.rank()) continue;
    std::vector<std::byte> blob;
    if (!store.fetch(comm.worldRank(), owner, bestStep, blob)) {
      decodeOk = false;
      break;
    }
    CheckpointBlob parsed;
    if (parseCheckpointBlob(blob, kQ, parsed, nullptr) != CkptStatus::kOk) {
      decodeOk = false;
      break;
    }
    for (std::size_t s = 0; s < parsed.ids.size(); ++s) {
      const std::uint64_t id = parsed.ids[s];
      if (id >= numGlobalSites) {
        decodeOk = false;
        break;
      }
      const auto dest = static_cast<std::size_t>(domain.ownerOf(id));
      idsToSend[dest].push_back(id);
      auto& vals = valsToSend[dest];
      for (int i = 0; i < kQ; ++i) {
        vals.push_back(parsed.f[static_cast<std::size_t>(i)][s]);
      }
    }
    if (!decodeOk) break;
  }
  if (comm.allreduceMin(decodeOk ? 1 : 0) != 1) {
    return RestoreResult{CkptStatus::kCrcMismatch, bestStep,
                         "buddy blob failed validation on a holder"};
  }
  const auto idsRecv = comm.alltoallVec(idsToSend);
  const auto valsRecv = comm.alltoallVec(valsToSend);

  // Validate-then-apply, exactly like readCheckpoint: a failed restore
  // leaves the solver untouched on every rank.
  std::vector<std::vector<double>> f(
      static_cast<std::size_t>(kQ),
      std::vector<double>(domain.numOwned(), 0.0));
  std::vector<char> seen(domain.numOwned(), 0);
  bool localOk = true;
  std::uint64_t applied = 0;
  for (int src = 0; src < n && localOk; ++src) {
    const auto& ids = idsRecv[static_cast<std::size_t>(src)];
    const auto& vals = valsRecv[static_cast<std::size_t>(src)];
    if (vals.size() != ids.size() * static_cast<std::size_t>(kQ)) {
      localOk = false;
      break;
    }
    for (std::size_t s = 0; s < ids.size(); ++s) {
      const auto local = domain.localOf(ids[s]);
      if (local < 0 || seen[static_cast<std::size_t>(local)] != 0) {
        localOk = false;
        break;
      }
      seen[static_cast<std::size_t>(local)] = 1;
      for (int i = 0; i < kQ; ++i) {
        f[static_cast<std::size_t>(i)][static_cast<std::size_t>(local)] =
            vals[s * static_cast<std::size_t>(kQ) + static_cast<std::size_t>(i)];
      }
      ++applied;
    }
  }
  localOk = localOk && applied == domain.numOwned();
  if (comm.allreduceMin(localOk ? 1 : 0) != 1) {
    return RestoreResult{CkptStatus::kGeometryMismatch, bestStep,
                         "buddy sites do not cover the partition"};
  }
  for (int i = 0; i < kQ; ++i) {
    solver.setDistribution(i, f[static_cast<std::size_t>(i)]);
  }
  solver.setStepsDone(bestStep);
  if (auto* t = telemetry::threadTelemetry()) {
    t->metrics().counter("buddy.restores").add(1);
  }
  return RestoreResult{CkptStatus::kOk, bestStep, {}};
}

}  // namespace hemo::lb
