#pragma once
/// \file migration.hpp
/// \brief Live cross-rank site migration for mid-run repartitioning.
///
/// The paper argues interactive runs create "the opportunity to adjust the
/// partitioning mid-term"; this module is the data-plane half of that loop.
/// Given a solver running on one DomainMap and a freshly built DomainMap for
/// the rebalanced partition, `migrateDistributions` repacks every owned
/// site's kQ populations onto the new ownership with a single bulk
/// alltoall exchange (traffic class `kRepart`). Distributions are gathered
/// and scattered in *external* (DomainMap) order through the solver's
/// layout-agnostic accessors, so the transfer is byte-identical under the
/// SoA and AoS layouts. The control-plane half (when to migrate, rebuilding
/// solver/ghosts/octree) lives in core::SimulationDriver.

#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"
#include "lb/domain_map.hpp"
#include "lb/solver.hpp"
#include "util/check.hpp"

namespace hemo::lb {

struct MigrationStats {
  /// Global number of sites that changed owner (summed over ranks).
  std::uint64_t sitesMoved = 0;
  /// Global payload bytes shipped between ranks (ids + populations).
  std::uint64_t bytesMoved = 0;
  /// Sites this rank received from elsewhere.
  std::uint64_t sitesReceivedLocal = 0;
};

/// Collective. Repack `solver`'s distributions from its current domain onto
/// `newDomain`'s ownership. On return `columns[i]` holds distribution i over
/// the *new* domain's owned sites in external order (ready for
/// Solver::setDistributions on a solver built over `newDomain`). Every rank
/// must pass DomainMaps built from the same old/new partitions.
template <typename Lattice>
MigrationStats migrateDistributions(const Solver<Lattice>& solver,
                                    const DomainMap& newDomain,
                                    comm::Communicator& comm,
                                    std::vector<std::vector<double>>& columns) {
  constexpr int kQ = Lattice::kQ;
  const DomainMap& oldDomain = solver.domain();
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kRepart);

  std::vector<std::vector<double>> oldColumns(kQ);
  for (int i = 0; i < kQ; ++i) {
    solver.gatherDistribution(i, oldColumns[static_cast<std::size_t>(i)]);
  }

  columns.assign(kQ, std::vector<double>(newDomain.numOwned(), 0.0));
  std::vector<std::uint8_t> filled(newDomain.numOwned(), 0);

  // Split owned sites into kept (copied locally) and shipped (packed per
  // destination as [id] + [kQ populations], site-major).
  const int numRanks = comm.size();
  std::vector<std::vector<std::uint64_t>> sendIds(
      static_cast<std::size_t>(numRanks));
  std::vector<std::vector<double>> sendVals(static_cast<std::size_t>(numRanks));
  std::uint64_t movedLocal = 0;
  for (std::uint32_t l = 0; l < oldDomain.numOwned(); ++l) {
    const std::uint64_t g = oldDomain.globalOf(l);
    const int owner = newDomain.ownerOf(g);
    if (owner == comm.rank()) {
      const std::int64_t nl = newDomain.localOf(g);
      HEMO_CHECK(nl >= 0);
      for (int i = 0; i < kQ; ++i) {
        columns[static_cast<std::size_t>(i)][static_cast<std::size_t>(nl)] =
            oldColumns[static_cast<std::size_t>(i)][l];
      }
      filled[static_cast<std::size_t>(nl)] = 1;
    } else {
      ++movedLocal;
      auto& ids = sendIds[static_cast<std::size_t>(owner)];
      auto& vals = sendVals[static_cast<std::size_t>(owner)];
      ids.push_back(g);
      for (int i = 0; i < kQ; ++i) {
        vals.push_back(oldColumns[static_cast<std::size_t>(i)][l]);
      }
    }
  }

  std::uint64_t bytesLocal = 0;
  for (int r = 0; r < numRanks; ++r) {
    bytesLocal += sendIds[static_cast<std::size_t>(r)].size() *
                  (sizeof(std::uint64_t) +
                   static_cast<std::uint64_t>(kQ) * sizeof(double));
  }

  const auto recvIds = comm.alltoallVec(sendIds);
  const auto recvVals = comm.alltoallVec(sendVals);

  MigrationStats stats;
  for (int r = 0; r < numRanks; ++r) {
    const auto& ids = recvIds[static_cast<std::size_t>(r)];
    const auto& vals = recvVals[static_cast<std::size_t>(r)];
    HEMO_CHECK(vals.size() == ids.size() * static_cast<std::size_t>(kQ));
    for (std::size_t s = 0; s < ids.size(); ++s) {
      const std::int64_t nl = newDomain.localOf(ids[s]);
      HEMO_CHECK(nl >= 0);
      HEMO_CHECK(!filled[static_cast<std::size_t>(nl)]);
      for (int i = 0; i < kQ; ++i) {
        columns[static_cast<std::size_t>(i)][static_cast<std::size_t>(nl)] =
            vals[s * static_cast<std::size_t>(kQ) +
                 static_cast<std::size_t>(i)];
      }
      filled[static_cast<std::size_t>(nl)] = 1;
      ++stats.sitesReceivedLocal;
    }
  }
  // Every new-owned slot must have been covered exactly once (the old
  // partition covers all sites, so each site arrives from its unique old
  // owner or the local copy).
  for (std::uint32_t nl = 0; nl < newDomain.numOwned(); ++nl) {
    HEMO_CHECK(filled[nl]);
  }

  stats.sitesMoved = comm.allreduceSum(movedLocal);
  stats.bytesMoved = comm.allreduceSum(bytesLocal);
  return stats;
}

}  // namespace hemo::lb
