#pragma once
/// \file checkpoint.hpp
/// \brief Scalable, validated checkpoint/restart for the distributions.
///
/// The resiliency challenge of §III (error resiliency at extreme core
/// counts) is conventionally met by checkpoint/restart. Format v2 makes
/// that path trustworthy at scale:
///
///   * **Striped writes.** Ranks are split into `stripes` contiguous
///     groups; each group gathers to its leader, which writes one stripe
///     file (`<path>.s<k>`) concurrently with the others. Rank 0 writes a
///     small manifest at `<path>`. v1 funnelled every blob through rank 0.
///   * **Validation.** The manifest carries a trailing CRC32 over its
///     header; every per-rank blob inside a stripe carries its own CRC32.
///     readCheckpoint() validates magics, versions, CRCs and geometry and
///     returns a typed RestoreResult instead of HEMO_CHECK-aborting, so a
///     caller can fall back to an older checkpoint (restoreLatest()).
///   * **Atomic commit.** Every file is written to `<file>.tmp` and
///     renamed into place, so a crash mid-write never leaves a
///     valid-looking truncated checkpoint at the final path.
///   * **Bit-exact ids.** Site ids travel as uint64 end to end; v1 routed
///     them through `double` during the scatter, silently corrupting ids
///     above 2^53.
///
/// v1 files ("HEMOCKPT") remain readable. The fault-injection site
/// FaultSite::kCheckpointCommit mangles the byte buffer *before* it
/// reaches disk, so the resilience tests exercise exactly the code path a
/// bad disk or a killed writer would.

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "io/serial.hpp"
#include "lb/solver.hpp"
#include "telemetry/telemetry.hpp"
#include "util/faultinject.hpp"

namespace hemo::lb {

// --- CRC32 (IEEE 802.3, slicing-by-8) ---------------------------------------

inline std::uint32_t crc32(const std::byte* data, std::size_t n) {
  // Eight derived tables let the hot loop fold 8 bytes per iteration
  // (Intel's "slicing-by-8"), ~6x the byte-at-a-time loop. Checkpoints and
  // buddy mirrors CRC multi-MB distribution blobs on the solver's critical
  // path, so this is bandwidth that comes straight out of step time.
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t s = 1; s < 8; ++s) {
        c = t[0][c & 0xffu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  std::size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
    for (; i + 8 <= n; i += 8) {
      std::uint32_t lo = 0;
      std::uint32_t hi = 0;
      std::memcpy(&lo, data + i, 4);
      std::memcpy(&hi, data + i + 4, 4);
      lo ^= crc;
      crc = tables[7][lo & 0xffu] ^ tables[6][(lo >> 8) & 0xffu] ^
            tables[5][(lo >> 16) & 0xffu] ^ tables[4][lo >> 24] ^
            tables[3][hi & 0xffu] ^ tables[2][(hi >> 8) & 0xffu] ^
            tables[1][(hi >> 16) & 0xffu] ^ tables[0][hi >> 24];
    }
  }
  for (; i < n; ++i) {
    crc = tables[0][(crc ^ static_cast<std::uint32_t>(
                               static_cast<std::uint8_t>(data[i]))) &
                    0xffu] ^
          (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

inline std::uint32_t crc32(const std::vector<std::byte>& bytes) {
  return crc32(bytes.data(), bytes.size());
}

// --- typed restore outcome --------------------------------------------------

enum class CkptStatus : std::uint8_t {
  kOk = 0,
  kOpenFailed,         ///< file missing or unreadable
  kBadMagic,           ///< not a checkpoint file
  kFormatMismatch,     ///< version or kQ differs from this build
  kTruncated,          ///< file ends mid-structure
  kCrcMismatch,        ///< stored CRC32 does not match the bytes
  kGeometryMismatch,   ///< site set does not cover the current lattice
};

inline const char* ckptStatusName(CkptStatus s) {
  switch (s) {
    case CkptStatus::kOk: return "ok";
    case CkptStatus::kOpenFailed: return "open-failed";
    case CkptStatus::kBadMagic: return "bad-magic";
    case CkptStatus::kFormatMismatch: return "format-mismatch";
    case CkptStatus::kTruncated: return "truncated";
    case CkptStatus::kCrcMismatch: return "crc-mismatch";
    case CkptStatus::kGeometryMismatch: return "geometry-mismatch";
  }
  return "unknown";
}

/// Outcome of readCheckpoint()/restoreLatest(). On failure the solver is
/// left untouched (validation happens before any state is applied).
struct RestoreResult {
  CkptStatus status = CkptStatus::kOk;
  std::uint64_t step = 0;     ///< step the checkpoint was taken at (kOk)
  std::string detail;         ///< human-readable failure note (rank 0)
  bool ok() const { return status == CkptStatus::kOk; }
};

struct CheckpointOptions {
  /// Stripe files written concurrently by per-rank-group leaders.
  /// Clamped to [1, comm.size()].
  int stripes = 1;
};

// --- on-disk format ---------------------------------------------------------

namespace ckptdetail {

inline constexpr const char* kManifestMagic = "HEMOCKP2";
inline constexpr const char* kStripeMagic = "HEMOSTRP";
inline constexpr const char* kV1Magic = "HEMOCKPT";
inline constexpr std::uint32_t kVersion = 2;

inline std::string stripePath(const std::string& path, int stripe) {
  return path + ".s" + std::to_string(stripe);
}

/// One writer-rank's payload: ids then the Q distribution columns, all in
/// external (DomainMap) order. Identical to the v1 blob layout.
inline std::vector<std::byte> encodeBlob(
    const std::vector<std::uint64_t>& ids,
    const std::vector<std::vector<double>>& f) {
  io::Writer w;
  w.putVec(ids);
  for (const auto& fi : f) w.putVec(fi);
  return w.take();
}

/// Stripe file: header + per-blob CRC32s. `blobs` in any rank order.
inline std::vector<std::byte> encodeStripeFile(
    std::uint64_t step, int stripe,
    const std::vector<std::vector<std::byte>>& blobs) {
  io::Writer w;
  w.putString(kStripeMagic);
  w.put<std::uint32_t>(kVersion);
  w.put<std::uint64_t>(step);
  w.put<std::int32_t>(stripe);
  w.put<std::int32_t>(static_cast<std::int32_t>(blobs.size()));
  for (const auto& blob : blobs) {
    w.put<std::uint32_t>(crc32(blob));
    w.putVec(blob);
  }
  return w.take();
}

/// Manifest: header + trailing CRC32 over everything before it.
inline std::vector<std::byte> encodeManifest(std::uint64_t step, int kQ,
                                             int stripes,
                                             std::uint64_t totalSites) {
  io::Writer w;
  w.putString(kManifestMagic);
  w.put<std::uint32_t>(kVersion);
  w.put<std::uint64_t>(step);
  w.put<std::int32_t>(kQ);
  w.put<std::int32_t>(stripes);
  w.put<std::uint64_t>(totalSites);
  auto bytes = w.take();
  const std::uint32_t crc = crc32(bytes);
  io::Writer tail;
  tail.put<std::uint32_t>(crc);
  const auto& t = tail.bytes();
  bytes.insert(bytes.end(), t.begin(), t.end());
  return bytes;
}

/// Commit `bytes` to `path` atomically: write `<path>.tmp`, fsync-free
/// rename into place, clean up on any failure. Adds the bytes actually
/// written to `*bytesWritten`. The fault hook mangles the buffer first,
/// standing in for a bad disk or a writer killed mid-commit.
inline bool atomicWriteFile(const std::string& path, int rank,
                            std::vector<std::byte> bytes,
                            std::uint64_t* bytesWritten) {
  util::FaultInjector::instance().applyBufferFault(
      util::FaultSite::kCheckpointCommit, rank, bytes);
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t wrote =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (wrote != bytes.size() || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  if (bytesWritten != nullptr) *bytesWritten += wrote;
  return true;
}

inline bool readFileBytes(const std::string& path,
                          std::vector<std::byte>& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return false;
  const std::string raw((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
  out.resize(raw.size());
  if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
  return true;
}

inline void countCrcFail() {
  if (auto* t = telemetry::threadTelemetry()) {
    t->metrics().counter("ckpt.crc_fail").add(1);
  }
}

}  // namespace ckptdetail

// --- parsing (rank 0; unit-testable without a communicator) ----------------

struct CheckpointBlob {
  std::vector<std::uint64_t> ids;
  std::vector<std::vector<double>> f;  ///< [q][site]
};

struct ParsedCheckpoint {
  std::uint64_t step = 0;
  std::uint64_t totalSites = 0;
  std::vector<CheckpointBlob> blobs;
};

inline CkptStatus parseCheckpointBlob(const std::vector<std::byte>& blob,
                                      int expectQ, CheckpointBlob& out,
                                      std::string* detailOut) {
  try {
    io::Reader br(blob);
    out.ids = br.getVec<std::uint64_t>();
    out.f.clear();
    out.f.reserve(static_cast<std::size_t>(expectQ));
    for (int i = 0; i < expectQ; ++i) {
      out.f.push_back(br.getVec<double>());
      if (out.f.back().size() != out.ids.size()) {
        if (detailOut != nullptr) *detailOut = "blob column size mismatch";
        return CkptStatus::kTruncated;
      }
    }
  } catch (const CheckError&) {
    if (detailOut != nullptr) *detailOut = "blob ends mid-structure";
    return CkptStatus::kTruncated;
  }
  return CkptStatus::kOk;
}

/// Parse and validate a checkpoint (v2 manifest + stripes, or a v1 single
/// file). Never throws on bad input — every malformation maps to a typed
/// status, so restore policy can fall back instead of aborting.
inline CkptStatus parseCheckpoint(const std::string& path, int expectQ,
                                  ParsedCheckpoint& out,
                                  std::string* detailOut = nullptr) {
  const auto fail = [&](CkptStatus st, const std::string& msg) {
    if (detailOut != nullptr) *detailOut = msg;
    return st;
  };
  std::vector<std::byte> bytes;
  if (!ckptdetail::readFileBytes(path, bytes)) {
    return fail(CkptStatus::kOpenFailed, "cannot open " + path);
  }
  try {
    io::Reader r(bytes.data(), bytes.size());
    const std::string magic = r.getString();
    if (magic == ckptdetail::kV1Magic) {
      // v1: one rank-0 file, no CRCs; blob layout matches v2.
      out.step = r.get<std::uint64_t>();
      if (r.get<std::int32_t>() != expectQ) {
        return fail(CkptStatus::kFormatMismatch, "kQ mismatch in " + path);
      }
      const std::int32_t writers = r.get<std::int32_t>();
      if (writers < 0) return fail(CkptStatus::kTruncated, "bad v1 header");
      out.totalSites = 0;
      for (std::int32_t wr = 0; wr < writers; ++wr) {
        const auto blob = r.getVec<std::byte>();
        CheckpointBlob& parsed = out.blobs.emplace_back();
        const auto st = parseCheckpointBlob(blob, expectQ, parsed, detailOut);
        if (st != CkptStatus::kOk) return st;
        out.totalSites += parsed.ids.size();
      }
      return CkptStatus::kOk;
    }
    if (magic != ckptdetail::kManifestMagic) {
      return fail(CkptStatus::kBadMagic, "bad magic in " + path);
    }
    if (bytes.size() < sizeof(std::uint32_t)) {
      return fail(CkptStatus::kTruncated, "manifest too small");
    }
    std::uint32_t storedCrc = 0;
    std::memcpy(&storedCrc, bytes.data() + bytes.size() - sizeof(storedCrc),
                sizeof(storedCrc));
    if (crc32(bytes.data(), bytes.size() - sizeof(storedCrc)) != storedCrc) {
      ckptdetail::countCrcFail();
      return fail(CkptStatus::kCrcMismatch, "manifest CRC mismatch: " + path);
    }
    if (r.get<std::uint32_t>() != ckptdetail::kVersion) {
      return fail(CkptStatus::kFormatMismatch, "unknown version in " + path);
    }
    out.step = r.get<std::uint64_t>();
    if (r.get<std::int32_t>() != expectQ) {
      return fail(CkptStatus::kFormatMismatch, "kQ mismatch in " + path);
    }
    const std::int32_t stripes = r.get<std::int32_t>();
    out.totalSites = r.get<std::uint64_t>();
    if (stripes <= 0) return fail(CkptStatus::kTruncated, "bad stripe count");

    std::uint64_t parsedSites = 0;
    for (std::int32_t s = 0; s < stripes; ++s) {
      const std::string sp = ckptdetail::stripePath(path, s);
      std::vector<std::byte> sbytes;
      if (!ckptdetail::readFileBytes(sp, sbytes)) {
        return fail(CkptStatus::kOpenFailed, "missing stripe " + sp);
      }
      io::Reader sr(sbytes.data(), sbytes.size());
      if (sr.getString() != ckptdetail::kStripeMagic) {
        return fail(CkptStatus::kBadMagic, "bad stripe magic in " + sp);
      }
      if (sr.get<std::uint32_t>() != ckptdetail::kVersion) {
        return fail(CkptStatus::kFormatMismatch, "stripe version in " + sp);
      }
      if (sr.get<std::uint64_t>() != out.step) {
        return fail(CkptStatus::kFormatMismatch,
                    "stripe/manifest step mismatch in " + sp);
      }
      if (sr.get<std::int32_t>() != s) {
        return fail(CkptStatus::kFormatMismatch, "stripe index in " + sp);
      }
      const std::int32_t blobCount = sr.get<std::int32_t>();
      if (blobCount < 0) return fail(CkptStatus::kTruncated, "bad " + sp);
      for (std::int32_t b = 0; b < blobCount; ++b) {
        const std::uint32_t blobCrc = sr.get<std::uint32_t>();
        const auto blob = sr.getVec<std::byte>();
        if (crc32(blob) != blobCrc) {
          ckptdetail::countCrcFail();
          return fail(CkptStatus::kCrcMismatch, "blob CRC mismatch in " + sp);
        }
        CheckpointBlob& parsed = out.blobs.emplace_back();
        const auto st = parseCheckpointBlob(blob, expectQ, parsed, detailOut);
        if (st != CkptStatus::kOk) return st;
        parsedSites += parsed.ids.size();
      }
    }
    if (parsedSites != out.totalSites) {
      return fail(CkptStatus::kTruncated, "site count mismatch vs manifest");
    }
    return CkptStatus::kOk;
  } catch (const CheckError&) {
    return fail(CkptStatus::kTruncated, "checkpoint ends mid-structure");
  }
}

// --- collective write/read --------------------------------------------------

/// Collective: write one checkpoint (manifest at `path`, stripe files
/// beside it). Returns the total bytes actually committed to disk across
/// all writers (identical on every rank). Throws CheckError only when a
/// *write* fails (disk full, unwritable directory) — readers get typed
/// errors instead.
template <typename Lattice>
std::uint64_t writeCheckpoint(const std::string& path,
                              const Solver<Lattice>& solver,
                              comm::Communicator& comm,
                              const CheckpointOptions& options = {}) {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kIo);
  constexpr int kQ = Lattice::kQ;
  const int stripes = std::clamp(options.stripes, 1, comm.size());
  // Contiguous rank groups; each group's lowest rank leads its stripe.
  const int group = comm.rank() * stripes / comm.size();
  auto sub = comm.split(group, comm.rank());

  std::vector<std::vector<double>> f(static_cast<std::size_t>(kQ));
  for (int i = 0; i < kQ; ++i) {
    solver.gatherDistribution(i, f[static_cast<std::size_t>(i)]);
  }
  const auto blobs =
      sub.gatherVec(ckptdetail::encodeBlob(solver.domain().ownedIds(), f), 0);
  const std::uint64_t totalSites = comm.allreduceSum<std::uint64_t>(
      solver.domain().numOwned());

  std::uint64_t written = 0;
  bool ok = true;
  if (sub.rank() == 0) {
    ok = ckptdetail::atomicWriteFile(
        ckptdetail::stripePath(path, group), comm.rank(),
        ckptdetail::encodeStripeFile(solver.stepsDone(), group, blobs),
        &written);
  }
  if (comm.rank() == 0) {
    ok = ckptdetail::atomicWriteFile(
             path, comm.rank(),
             ckptdetail::encodeManifest(solver.stepsDone(), kQ, stripes,
                                        totalSites),
             &written) &&
         ok;
  }
  const std::uint64_t total = comm.allreduceSum(written);
  const int allOk = comm.allreduceMin(ok ? 1 : 0);
  HEMO_CHECK_MSG(allOk == 1, "checkpoint write failed: " << path);
  if (auto* t = telemetry::threadTelemetry()) {
    t->metrics().counter("ckpt.writes").add(1);
    if (comm.rank() == 0) {
      t->metrics().counter("ckpt.bytes_written").add(total);
    }
  }
  return total;
}

/// Collective: restore distributions from a checkpoint written by any rank
/// layout (sites are routed to their current owners, so the partition may
/// differ from the writing run — repartition-restart). Rank 0 parses and
/// validates; the outcome is broadcast before any state is applied, so on
/// failure every rank returns the same typed error and the solver is
/// untouched. On success the solver's step counter is rebased.
template <typename Lattice>
RestoreResult readCheckpoint(const std::string& path, Solver<Lattice>& solver,
                             comm::Communicator& comm) {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kIo);
  constexpr int kQ = Lattice::kQ;
  const auto& domain = solver.domain();
  const std::uint64_t expectSites =
      comm.allreduceSum<std::uint64_t>(domain.numOwned());
  const std::uint64_t numGlobalSites = domain.lattice().numFluidSites();

  // Rank 0 parses, validates, and buckets each site's id + Q values by
  // its current owner. Ids stay uint64 end to end (the v1 bug routed them
  // through double, corrupting ids above 2^53).
  std::vector<std::vector<std::uint64_t>> idsToSend(
      static_cast<std::size_t>(comm.size()));
  std::vector<std::vector<double>> valsToSend(
      static_cast<std::size_t>(comm.size()));
  std::uint8_t status8 = static_cast<std::uint8_t>(CkptStatus::kOk);
  std::uint64_t step = 0;
  std::string detailMsg;
  if (comm.rank() == 0) {
    ParsedCheckpoint parsed;
    CkptStatus st = parseCheckpoint(path, kQ, parsed, &detailMsg);
    if (st == CkptStatus::kOk && parsed.totalSites != expectSites) {
      st = CkptStatus::kGeometryMismatch;
      detailMsg = "checkpoint holds " + std::to_string(parsed.totalSites) +
                  " sites, lattice owns " + std::to_string(expectSites);
    }
    if (st == CkptStatus::kOk) {
      for (const auto& blob : parsed.blobs) {
        for (const std::uint64_t id : blob.ids) {
          if (id >= numGlobalSites) {
            st = CkptStatus::kGeometryMismatch;
            detailMsg = "site id " + std::to_string(id) + " out of range";
            break;
          }
        }
        if (st != CkptStatus::kOk) break;
      }
    }
    if (st == CkptStatus::kOk) {
      step = parsed.step;
      for (auto& blob : parsed.blobs) {
        for (std::size_t s = 0; s < blob.ids.size(); ++s) {
          const auto owner =
              static_cast<std::size_t>(domain.ownerOf(blob.ids[s]));
          idsToSend[owner].push_back(blob.ids[s]);
          auto& vals = valsToSend[owner];
          for (int i = 0; i < kQ; ++i) {
            vals.push_back(blob.f[static_cast<std::size_t>(i)][s]);
          }
        }
      }
    }
    status8 = static_cast<std::uint8_t>(st);
  }
  comm.bcast(status8, 0);
  comm.bcast(step, 0);
  const auto status = static_cast<CkptStatus>(status8);
  if (status != CkptStatus::kOk) {
    return RestoreResult{status, step, detailMsg};
  }

  // Scatter: rank 0 sends each rank its slice (ids and values separately).
  std::vector<std::uint64_t> ids;
  std::vector<double> vals;
  if (comm.rank() == 0) {
    for (int r = 1; r < comm.size(); ++r) {
      comm.sendVec(r, 9001, idsToSend[static_cast<std::size_t>(r)]);
      comm.sendVec(r, 9002, valsToSend[static_cast<std::size_t>(r)]);
    }
    ids = std::move(idsToSend[0]);
    vals = std::move(valsToSend[0]);
  } else {
    ids = comm.recvVec<std::uint64_t>(0, 9001);
    vals = comm.recvVec<double>(0, 9002);
  }

  // Validate-then-apply: a failed restore leaves the solver untouched.
  bool localOk = ids.size() == domain.numOwned() &&
                 vals.size() == ids.size() * static_cast<std::size_t>(kQ);
  std::vector<std::vector<double>> f(
      static_cast<std::size_t>(kQ),
      std::vector<double>(domain.numOwned(), 0.0));
  std::vector<char> seen(domain.numOwned(), 0);
  if (localOk) {
    for (std::size_t s = 0; s < ids.size(); ++s) {
      const auto local = domain.localOf(ids[s]);
      if (local < 0 || seen[static_cast<std::size_t>(local)] != 0) {
        localOk = false;
        break;
      }
      seen[static_cast<std::size_t>(local)] = 1;
      for (int i = 0; i < kQ; ++i) {
        f[static_cast<std::size_t>(i)][static_cast<std::size_t>(local)] =
            vals[s * static_cast<std::size_t>(kQ) +
                 static_cast<std::size_t>(i)];
      }
    }
  }
  if (comm.allreduceMin(localOk ? 1 : 0) != 1) {
    return RestoreResult{CkptStatus::kGeometryMismatch, step,
                         "restored sites do not cover the partition"};
  }
  for (int i = 0; i < kQ; ++i) {
    solver.setDistribution(i, f[static_cast<std::size_t>(i)]);
  }
  solver.setStepsDone(step);
  return RestoreResult{CkptStatus::kOk, step, {}};
}

// --- directory policy: checkpointEvery / restoreLatest / prune --------------

/// Canonical file name for the checkpoint taken at `step`.
inline std::string checkpointFileName(std::uint64_t step) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "ckpt_%012llu.hemockpt",
                static_cast<unsigned long long>(step));
  return buf;
}

/// Manifests under `dir` matching checkpointFileName(), newest step first.
/// Local filesystem scan — call on one rank and broadcast, or let
/// restoreLatest() do it.
inline std::vector<std::pair<std::uint64_t, std::string>> listCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long step = 0;
    char tail = 0;
    if (std::sscanf(name.c_str(), "ckpt_%12llu.hemockpt%c", &step, &tail) ==
        1) {
      found.emplace_back(step, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

/// Collective: restore from the newest checkpoint in `dir` that validates,
/// falling back past corrupt/truncated ones. Returns the last attempt's
/// result (kOpenFailed with "no checkpoint found" when the directory holds
/// none).
template <typename Lattice>
RestoreResult restoreLatest(const std::string& dir, Solver<Lattice>& solver,
                            comm::Communicator& comm) {
  std::vector<std::pair<std::uint64_t, std::string>> candidates;
  if (comm.rank() == 0) candidates = listCheckpoints(dir);
  std::uint64_t n = candidates.size();
  comm.bcast(n, 0);
  RestoreResult last{CkptStatus::kOpenFailed, 0,
                     "no checkpoint found in " + dir};
  for (std::uint64_t i = 0; i < n; ++i) {
    std::vector<char> pathChars;
    if (comm.rank() == 0) {
      const auto& p = candidates[static_cast<std::size_t>(i)].second;
      pathChars.assign(p.begin(), p.end());
    }
    comm.bcastVec(pathChars, 0);
    last = readCheckpoint(std::string(pathChars.begin(), pathChars.end()),
                          solver, comm);
    if (last.ok()) {
      if (i > 0) {
        if (auto* t = telemetry::threadTelemetry()) {
          t->metrics().counter("ckpt.restore_fallbacks").add(i);
        }
      }
      return last;
    }
  }
  return last;
}

/// Keep the newest `keep` checkpoints in `dir`; delete older manifests
/// with their stripe files and any stale ".tmp" leftovers. Call from one
/// rank (the driver calls it on rank 0 after each write).
inline void pruneCheckpoints(const std::string& dir, int keep) {
  const auto all = listCheckpoints(dir);
  if (static_cast<int>(all.size()) <= keep) return;
  std::error_code ec;
  for (std::size_t i = static_cast<std::size_t>(keep); i < all.size(); ++i) {
    const std::string& manifest = all[i].second;
    const std::string prefix =
        std::filesystem::path(manifest).filename().string();
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name == prefix || name.rfind(prefix + ".", 0) == 0) {
        std::filesystem::remove(entry.path(), ec);
      }
    }
  }
}

}  // namespace hemo::lb
