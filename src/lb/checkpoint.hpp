#pragma once
/// \file checkpoint.hpp
/// \brief Distribution-function checkpointing.
///
/// The resiliency challenge of §III (error resiliency at extreme core
/// counts) is conventionally met by checkpoint/restart; the in situ vs
/// full-dump benchmark also uses this path to measure what "writing the
/// full-sized data set" costs compared to in situ reduction.

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "io/serial.hpp"
#include "lb/solver.hpp"

namespace hemo::lb {

/// Collective: gather all ranks' distributions to rank 0 and write one
/// checkpoint file. Returns the total bytes written (valid on rank 0).
template <typename Lattice>
std::uint64_t writeCheckpoint(const std::string& path,
                              const Solver<Lattice>& solver,
                              comm::Communicator& comm) {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kIo);
  constexpr int kQ = Lattice::kQ;
  // Every rank serialises (ids, f_0..f_{Q-1}) for its owned sites.
  io::Writer w;
  w.putVec(solver.domain().ownedIds());
  std::vector<double> fi;
  for (int i = 0; i < kQ; ++i) {
    solver.gatherDistribution(i, fi);
    w.putVec(fi);
  }
  const auto all = comm.gatherVec(w.take(), 0);

  std::uint64_t written = 0;
  if (comm.rank() == 0) {
    io::Writer file;
    file.putString("HEMOCKPT");
    file.put<std::uint64_t>(solver.stepsDone());
    file.put<std::int32_t>(kQ);
    file.put<std::int32_t>(comm.size());
    for (const auto& blob : all) file.putVec(blob);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    HEMO_CHECK_MSG(f != nullptr, "cannot write checkpoint " << path);
    written = file.size();
    const bool ok =
        std::fwrite(file.bytes().data(), 1, file.size(), f) == file.size();
    HEMO_CHECK(std::fclose(f) == 0 && ok);
  }
  std::uint64_t total = written;
  comm.bcast(total, 0);
  return total;
}

/// Collective: restore distributions from a checkpoint written by any rank
/// layout. Rank 0 reads; sites are routed to their current owners, so the
/// partition may differ from the writing run (repartition-restart).
template <typename Lattice>
std::uint64_t readCheckpoint(const std::string& path, Solver<Lattice>& solver,
                             comm::Communicator& comm) {
  comm::Communicator::TrafficScope scope(comm, comm::Traffic::kIo);
  constexpr int kQ = Lattice::kQ;
  const auto& domain = solver.domain();

  // Rank 0 parses the file and routes each site's Q values to its owner.
  std::vector<std::vector<double>> toSend(
      static_cast<std::size_t>(comm.size()));
  std::uint64_t step = 0;
  if (comm.rank() == 0) {
    std::ifstream f(path, std::ios::binary);
    HEMO_CHECK_MSG(f.good(), "cannot open checkpoint " << path);
    const std::string raw((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
    io::Reader r(reinterpret_cast<const std::byte*>(raw.data()), raw.size());
    HEMO_CHECK(r.getString() == "HEMOCKPT");
    step = r.get<std::uint64_t>();
    HEMO_CHECK(r.get<std::int32_t>() == kQ);
    const int writerRanks = r.get<std::int32_t>();
    for (int wr = 0; wr < writerRanks; ++wr) {
      const auto blob = r.getVec<std::byte>();
      io::Reader br(blob);
      const auto ids = br.getVec<std::uint64_t>();
      std::vector<std::vector<double>> fs;
      fs.reserve(kQ);
      for (int i = 0; i < kQ; ++i) fs.push_back(br.getVec<double>());
      for (std::size_t s = 0; s < ids.size(); ++s) {
        const int owner = domain.ownerOf(ids[s]);
        auto& out = toSend[static_cast<std::size_t>(owner)];
        out.push_back(static_cast<double>(ids[s]));
        for (int i = 0; i < kQ; ++i) out.push_back(fs[static_cast<std::size_t>(i)][s]);
      }
    }
  }
  comm.bcast(step, 0);

  // Scatter: rank 0 sends each rank its slice (rank 0 keeps its own).
  std::vector<double> mine;
  if (comm.rank() == 0) {
    for (int r = 1; r < comm.size(); ++r) {
      comm.sendVec(r, 9001, toSend[static_cast<std::size_t>(r)]);
    }
    mine = std::move(toSend[0]);
  } else {
    mine = comm.recvVec<double>(0, 9001);
  }

  // Apply: build per-velocity arrays in local order.
  std::vector<std::vector<double>> f(
      static_cast<std::size_t>(kQ),
      std::vector<double>(domain.numOwned(), 0.0));
  const std::size_t stride = 1 + static_cast<std::size_t>(kQ);
  HEMO_CHECK(mine.size() == stride * domain.numOwned());
  for (std::size_t s = 0; s < mine.size(); s += stride) {
    const auto g = static_cast<std::uint64_t>(mine[s]);
    const auto local = domain.localOf(g);
    HEMO_CHECK(local >= 0);
    for (int i = 0; i < kQ; ++i) {
      f[static_cast<std::size_t>(i)][static_cast<std::size_t>(local)] =
          mine[s + 1 + static_cast<std::size_t>(i)];
    }
  }
  for (int i = 0; i < kQ; ++i) {
    solver.setDistribution(i, std::move(f[static_cast<std::size_t>(i)]));
  }
  return step;
}

}  // namespace hemo::lb
