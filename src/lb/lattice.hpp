#pragma once
/// \file lattice.hpp
/// \brief Lattice-Boltzmann velocity sets (D3Q15, D3Q19) after Qian,
/// d'Humières & Lallemand (the paper's ref [11]).
///
/// Each descriptor exposes the discrete velocities, quadrature weights,
/// opposite-direction table and the mapping of each non-rest velocity onto
/// the 26-direction geometry link set, generated at compile time from the
/// same direction ordering the geometry module uses.

#include <array>
#include <cstddef>

#include "geometry/directions.hpp"
#include "util/vec.hpp"

namespace hemo::lb {

namespace detail {

/// The member tables are 64-byte aligned so both the scalar and the SIMD
/// kernels read them with whole-cache-line (and, for the vector code,
/// aligned broadcast) accesses; the sets themselves are constexpr, so the
/// tables live in .rodata.
template <int Q>
struct VelocitySet {
  alignas(64) std::array<Vec3i, Q> c{};
  alignas(64) std::array<double, Q> w{};
  alignas(64) std::array<int, Q> opposite{};
  /// geometry-direction index of each velocity (-1 for the rest velocity).
  alignas(64) std::array<int, Q> geoDir{};
};

/// Build a velocity set that keeps the rest velocity plus all geometry
/// directions whose squared norms appear in `keepNorms` with the matching
/// weights: weightByNorm[|c|²].
template <int Q>
constexpr VelocitySet<Q> makeSet(double restWeight,
                                 const std::array<double, 4>& weightByNorm) {
  VelocitySet<Q> set{};
  set.c[0] = Vec3i{0, 0, 0};
  set.w[0] = restWeight;
  set.geoDir[0] = -1;
  int k = 1;
  for (int d = 0; d < geometry::kNumDirections; ++d) {
    const Vec3i& v = geometry::kDirections[static_cast<std::size_t>(d)];
    const int n2 = v.dot(v);
    if (weightByNorm[static_cast<std::size_t>(n2)] == 0.0) continue;
    set.c[static_cast<std::size_t>(k)] = v;
    set.w[static_cast<std::size_t>(k)] =
        weightByNorm[static_cast<std::size_t>(n2)];
    set.geoDir[static_cast<std::size_t>(k)] = d;
    ++k;
  }
  // Opposite table by vector negation.
  for (int i = 0; i < Q; ++i) {
    for (int j = 0; j < Q; ++j) {
      if (set.c[static_cast<std::size_t>(j)] ==
          -set.c[static_cast<std::size_t>(i)]) {
        set.opposite[static_cast<std::size_t>(i)] = j;
      }
    }
  }
  return set;
}

}  // namespace detail

/// Speed of sound squared (lattice units) for all DdQq BGK sets used here.
inline constexpr double kCs2 = 1.0 / 3.0;

struct D3Q19 {
  static constexpr int kQ = 19;
  static constexpr detail::VelocitySet<19> kSet =
      detail::makeSet<19>(1.0 / 3.0, {0.0, 1.0 / 18.0, 1.0 / 36.0, 0.0});
  static constexpr const char* kName = "D3Q19";
};

struct D3Q15 {
  static constexpr int kQ = 15;
  static constexpr detail::VelocitySet<15> kSet =
      detail::makeSet<15>(2.0 / 9.0, {0.0, 1.0 / 9.0, 0.0, 1.0 / 72.0});
  static constexpr const char* kName = "D3Q15";
};

struct D3Q27 {
  static constexpr int kQ = 27;
  static constexpr detail::VelocitySet<27> kSet = detail::makeSet<27>(
      8.0 / 27.0, {0.0, 2.0 / 27.0, 1.0 / 54.0, 1.0 / 216.0});
  static constexpr const char* kName = "D3Q27";
};

/// Second-order Maxwell-Boltzmann equilibrium (Qian et al. 1992).
template <typename Lattice>
constexpr double equilibrium(int i, double rho, const Vec3d& u) {
  const auto& set = Lattice::kSet;
  const Vec3d ci = set.c[static_cast<std::size_t>(i)].template cast<double>();
  const double cu = ci.dot(u);
  const double u2 = u.dot(u);
  return set.w[static_cast<std::size_t>(i)] * rho *
         (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * u2);
}

}  // namespace hemo::lb
