#pragma once
/// \file solver.hpp
/// \brief Distributed sparse-geometry lattice-Boltzmann solver.
///
/// The method matches HemeLB's core: indirect addressing over fluid sites
/// only, BGK or TRT collision, halfway bounce-back walls, anti-bounce-back
/// pressure inlets/outlets, Guo forcing, and per-step halo exchange of the
/// distribution values that stream across rank boundaries. Streaming uses
/// the pull scheme: f_i(x, t+1) = f*_i(x − c_i, t); values whose upstream
/// site lives on another rank arrive through the exchange, values whose
/// upstream crosses a wall/iolet are reconstructed by the boundary rule.

#include <cstdint>
#include <vector>

#include "comm/communicator.hpp"
#include "lb/domain_map.hpp"
#include "lb/lattice.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace hemo::lb {

/// Fixed point-to-point tag for halo traffic (below comm::kMaxUserTag).
inline constexpr int kHaloTag = 100;

struct LbParams {
  double tau = 0.8;
  enum class Collision { kBgk, kTrt } collision = Collision::kBgk;
  /// TRT "magic" parameter Λ; 3/16 gives exact mid-link bounce-back walls.
  double trtMagic = 3.0 / 16.0;
  /// Uniform body force (lattice units), applied with Guo forcing.
  Vec3d bodyForce{0, 0, 0};
  /// Also accumulate the deviatoric stress tensor during collision.
  bool computeStress = false;

  /// Kinematic viscosity implied by tau (lattice units).
  double viscosity() const { return kCs2 * (tau - 0.5); }
};

template <typename Lattice>
class Solver {
 public:
  static constexpr int kQ = Lattice::kQ;

  Solver(const DomainMap& domain, comm::Communicator& comm,
         const LbParams& params)
      : domain_(&domain), comm_(&comm), params_(params) {
    HEMO_CHECK_MSG(params.tau > 0.5, "tau must exceed 0.5 for stability");
    for (const auto& io : domain.lattice().iolets()) {
      ioletDensity_.push_back(io.density);
      ioletVelocity_.push_back(io.normal.normalized() * io.speed);
      ioletIsVelocityBc_.push_back(io.bc == geometry::Iolet::Bc::kVelocity);
    }
    buildPullTable();
    initEquilibrium(1.0, Vec3d{0, 0, 0});
  }

  const DomainMap& domain() const { return *domain_; }
  const LbParams& params() const { return params_; }
  std::uint64_t stepsDone() const { return stepsDone_; }

  /// Override an iolet's target density mid-run (computational steering).
  void setIoletDensity(std::size_t ioletId, double density) {
    HEMO_CHECK(ioletId < ioletDensity_.size());
    ioletDensity_[ioletId] = density;
  }
  double ioletDensity(std::size_t ioletId) const {
    return ioletDensity_[ioletId];
  }

  /// Override a velocity iolet's target velocity (steering). Also switches
  /// the iolet to the velocity boundary condition.
  void setIoletVelocity(std::size_t ioletId, const Vec3d& velocity) {
    HEMO_CHECK(ioletId < ioletVelocity_.size());
    ioletVelocity_[ioletId] = velocity;
    ioletIsVelocityBc_[ioletId] = true;
  }
  Vec3d ioletVelocity(std::size_t ioletId) const {
    return ioletVelocity_[ioletId];
  }

  /// Change relaxation time mid-run (steering). Keeps tau > 0.5.
  void setTau(double tau) {
    HEMO_CHECK(tau > 0.5);
    params_.tau = tau;
  }

  void setBodyForce(const Vec3d& f) { params_.bodyForce = f; }

  /// Reset all distributions to equilibrium at (rho, u).
  void initEquilibrium(double rho, const Vec3d& u) {
    const std::size_t n = domain_->numOwned();
    for (int i = 0; i < kQ; ++i) {
      f_[static_cast<std::size_t>(i)].assign(n, 0.0);
      fNext_[static_cast<std::size_t>(i)].assign(n, 0.0);
      for (std::size_t l = 0; l < n; ++l) {
        f_[static_cast<std::size_t>(i)][l] = equilibrium<Lattice>(i, rho, u);
      }
    }
    macro_.rho.assign(n, rho);
    macro_.u.assign(n, u);
    if (params_.computeStress) macro_.stress.assign(n, SymTensor3{});
  }

  /// Initialise every owned site to the equilibrium of (rho, u) returned by
  /// `fn(worldPos)` — used to seed perturbed or analytic initial states.
  template <typename F>
  void initWith(F&& fn) {
    const std::size_t n = domain_->numOwned();
    for (std::size_t l = 0; l < n; ++l) {
      const Vec3d w = domain_->lattice().siteWorld(
          domain_->globalOf(static_cast<std::uint32_t>(l)));
      const auto [rho, u] = fn(w);
      for (int i = 0; i < kQ; ++i) {
        f_[static_cast<std::size_t>(i)][l] = equilibrium<Lattice>(i, rho, u);
      }
      macro_.rho[l] = rho;
      macro_.u[l] = u;
    }
  }

  /// One full LB update: collide, exchange halos, stream.
  void step() {
    collide();
    exchange();
    stream();
    for (int i = 0; i < kQ; ++i) {
      f_[static_cast<std::size_t>(i)].swap(fNext_[static_cast<std::size_t>(i)]);
    }
    ++stepsDone_;
  }

  void run(int steps) {
    for (int s = 0; s < steps; ++s) step();
  }

  /// Macroscopic moments at time of the last collide (pre-collision).
  const MacroFields& macro() const { return macro_; }

  /// Mass on this rank (sum of cached densities).
  double localMass() const {
    double m = 0.0;
    for (const double r : macro_.rho) m += r;
    return m;
  }

  /// Momentum on this rank.
  Vec3d localMomentum() const {
    Vec3d p{0, 0, 0};
    for (std::size_t l = 0; l < macro_.u.size(); ++l) {
      p += macro_.u[l] * macro_.rho[l];
    }
    return p;
  }

  /// Per-phase CPU time accumulated on this rank.
  const PhaseTimer& collideTimer() const { return collideTimer_; }
  const PhaseTimer& streamTimer() const { return streamTimer_; }
  const PhaseTimer& commTimer() const { return commTimer_; }
  void resetTimers() {
    collideTimer_.reset();
    streamTimer_.reset();
    commTimer_.reset();
  }

  /// Raw distribution access (checkpointing, tests).
  const std::vector<double>& distribution(int i) const {
    return f_[static_cast<std::size_t>(i)];
  }
  void setDistribution(int i, std::vector<double> values) {
    HEMO_CHECK(values.size() == domain_->numOwned());
    f_[static_cast<std::size_t>(i)] = std::move(values);
    refreshMacros();
  }

 private:
  enum class PullKind : std::uint8_t { kLocal, kRecv, kWall, kIolet };
  struct PullSrc {
    PullKind kind = PullKind::kWall;
    std::uint32_t index = 0;  ///< local idx / flat recv slot / iolet id
  };

  void buildPullTable() {
    const auto& lat = domain_->lattice();
    const auto& set = Lattice::kSet;
    const std::size_t n = domain_->numOwned();
    for (int i = 1; i < kQ; ++i) {
      pull_[static_cast<std::size_t>(i)].assign(n, PullSrc{});
    }

    // needs[r] = packed (globalUpstream * 32 + i) values this rank pulls
    // from rank r, in deterministic (site, velocity) order.
    std::vector<std::vector<std::uint64_t>> needs(
        static_cast<std::size_t>(comm_->size()));
    for (std::size_t l = 0; l < n; ++l) {
      const std::uint64_t g = domain_->globalOf(static_cast<std::uint32_t>(l));
      for (int i = 1; i < kQ; ++i) {
        const int gd = set.geoDir[static_cast<std::size_t>(i)];
        const int upDir = geometry::oppositeDirection(gd);
        const auto upstream = lat.neighborId(g, upDir);
        auto& src = pull_[static_cast<std::size_t>(i)][l];
        if (upstream >= 0) {
          const int owner = domain_->ownerOf(static_cast<std::uint64_t>(upstream));
          if (owner == domain_->rank()) {
            src.kind = PullKind::kLocal;
            src.index = static_cast<std::uint32_t>(
                domain_->localOf(static_cast<std::uint64_t>(upstream)));
          } else {
            src.kind = PullKind::kRecv;
            // Flat slot assigned below once per-rank counts are known;
            // remember the position within this rank's need list.
            src.index = static_cast<std::uint32_t>(
                needs[static_cast<std::size_t>(owner)].size());
            needs[static_cast<std::size_t>(owner)].push_back(
                static_cast<std::uint64_t>(upstream) * 32 +
                static_cast<std::uint64_t>(i));
          }
        } else {
          const auto& link =
              lat.site(g).links[static_cast<std::size_t>(upDir)];
          HEMO_CHECK_MSG(link.kind != geometry::LinkKind::kBulk,
                         "voxelizer/link inconsistency at site " << g);
          if (link.kind == geometry::LinkKind::kWall) {
            src.kind = PullKind::kWall;
          } else {
            src.kind = PullKind::kIolet;
            src.index = link.ioletId;
          }
        }
      }
    }

    // Flat receive offsets per source rank.
    recvOffset_.assign(static_cast<std::size_t>(comm_->size()) + 1, 0);
    for (int r = 0; r < comm_->size(); ++r) {
      recvOffset_[static_cast<std::size_t>(r) + 1] =
          recvOffset_[static_cast<std::size_t>(r)] +
          static_cast<std::uint32_t>(needs[static_cast<std::size_t>(r)].size());
    }
    for (int i = 1; i < kQ; ++i) {
      for (std::size_t l = 0; l < n; ++l) {
        // Fix up flat indices now that offsets exist.
        auto& src = pull_[static_cast<std::size_t>(i)][l];
        if (src.kind != PullKind::kRecv) continue;
        const std::uint64_t g =
            domain_->globalOf(static_cast<std::uint32_t>(l));
        const int gd = set.geoDir[static_cast<std::size_t>(i)];
        const auto upstream = lat.neighborId(g, geometry::oppositeDirection(gd));
        const int owner = domain_->ownerOf(static_cast<std::uint64_t>(upstream));
        src.index += recvOffset_[static_cast<std::size_t>(owner)];
      }
    }
    recvFlat_.assign(recvOffset_.back(), 0.0);
    for (int r = 0; r < comm_->size(); ++r) {
      if (!needs[static_cast<std::size_t>(r)].empty()) {
        recvRanks_.push_back(r);
      }
    }

    // Tell the owners what to send: they answer my needs in my order.
    {
      comm::Communicator::TrafficScope scope(*comm_, comm::Traffic::kHalo);
      const auto requests = comm_->alltoallVec(needs);
      for (int r = 0; r < comm_->size(); ++r) {
        const auto& reqs = requests[static_cast<std::size_t>(r)];
        if (reqs.empty()) continue;
        SendPlan plan;
        plan.dest = r;
        plan.entries.reserve(reqs.size());
        for (const auto packed : reqs) {
          const std::uint64_t g = packed / 32;
          const int i = static_cast<int>(packed % 32);
          const auto local = domain_->localOf(g);
          HEMO_CHECK_MSG(local >= 0, "halo request for non-owned site " << g);
          plan.entries.push_back({static_cast<std::uint32_t>(local),
                                  static_cast<std::uint16_t>(i)});
        }
        sendPlans_.push_back(std::move(plan));
      }
    }
  }

  void collide() {
    ScopedPhase phase(collideTimer_);
    const std::size_t n = domain_->numOwned();
    const double tau = params_.tau;
    const double omega = 1.0 / tau;
    const bool trt = params_.collision == LbParams::Collision::kTrt;
    const double tauMinus = params_.trtMagic / (tau - 0.5) + 0.5;
    const double omegaMinus = 1.0 / tauMinus;
    const Vec3d F = params_.bodyForce;
    const bool forced = F.norm2() > 0.0;
    const bool stress = params_.computeStress;
    const double stressPrefactor = -(1.0 - 0.5 * omega);
    const auto& set = Lattice::kSet;

    for (std::size_t l = 0; l < n; ++l) {
      double rho = 0.0;
      Vec3d mom{0, 0, 0};
      double fl[kQ];
      for (int i = 0; i < kQ; ++i) {
        fl[i] = f_[static_cast<std::size_t>(i)][l];
        rho += fl[i];
        mom += set.c[static_cast<std::size_t>(i)].template cast<double>() *
               fl[i];
      }
      // Guo: physical velocity includes half the force impulse.
      Vec3d u = mom / rho;
      if (forced) u += F * (0.5 / rho);
      macro_.rho[l] = rho;
      macro_.u[l] = u;

      double feq[kQ];
      for (int i = 0; i < kQ; ++i) feq[i] = equilibrium<Lattice>(i, rho, u);

      if (stress) {
        SymTensor3 pi{};
        for (int i = 0; i < kQ; ++i) {
          const double fneq = fl[i] - feq[i];
          const Vec3d c =
              set.c[static_cast<std::size_t>(i)].template cast<double>();
          pi.xx() += fneq * c.x * c.x;
          pi.yy() += fneq * c.y * c.y;
          pi.zz() += fneq * c.z * c.z;
          pi.xy() += fneq * c.x * c.y;
          pi.xz() += fneq * c.x * c.z;
          pi.yz() += fneq * c.y * c.z;
        }
        // Deviatoric part of the relaxed non-equilibrium momentum flux.
        SymTensor3 sigma = pi * stressPrefactor;
        const double trace3 = (sigma.xx() + sigma.yy() + sigma.zz()) / 3.0;
        sigma.xx() -= trace3;
        sigma.yy() -= trace3;
        sigma.zz() -= trace3;
        macro_.stress[l] = sigma;
      }

      if (!trt) {
        for (int i = 0; i < kQ; ++i) {
          fl[i] += omega * (feq[i] - fl[i]);
        }
      } else {
        for (int i = 0; i < kQ; ++i) {
          const int j = set.opposite[static_cast<std::size_t>(i)];
          if (j < i) continue;
          const double fPlus = 0.5 * (fl[i] + fl[j]);
          const double fMinus = 0.5 * (fl[i] - fl[j]);
          const double eqPlus = 0.5 * (feq[i] + feq[j]);
          const double eqMinus = 0.5 * (feq[i] - feq[j]);
          const double dPlus = omega * (eqPlus - fPlus);
          const double dMinus = omegaMinus * (eqMinus - fMinus);
          fl[i] += dPlus + dMinus;
          if (j != i) fl[j] += dPlus - dMinus;
        }
      }

      if (forced) {
        const double pref = 1.0 - 0.5 * omega;
        for (int i = 0; i < kQ; ++i) {
          const Vec3d c =
              set.c[static_cast<std::size_t>(i)].template cast<double>();
          const double cu = c.dot(u);
          const Vec3d term = (c - u) * 3.0 + c * (9.0 * cu);
          fl[i] += pref * set.w[static_cast<std::size_t>(i)] * term.dot(F);
        }
      }

      for (int i = 0; i < kQ; ++i) {
        f_[static_cast<std::size_t>(i)][l] = fl[i];
      }
    }
  }

  void exchange() {
    ScopedPhase phase(commTimer_);
    comm::Communicator::TrafficScope scope(*comm_, comm::Traffic::kHalo);
    std::vector<double> buf;
    for (const auto& plan : sendPlans_) {
      buf.clear();
      buf.reserve(plan.entries.size());
      for (const auto& e : plan.entries) {
        buf.push_back(f_[static_cast<std::size_t>(e.velocity)]
                        [static_cast<std::size_t>(e.local)]);
      }
      comm_->sendVec(plan.dest, kHaloTag, buf);
    }
    for (const int r : recvRanks_) {
      const auto incoming = comm_->recvVec<double>(r, kHaloTag);
      const auto off = recvOffset_[static_cast<std::size_t>(r)];
      HEMO_CHECK(incoming.size() ==
                 recvOffset_[static_cast<std::size_t>(r) + 1] - off);
      std::copy(incoming.begin(), incoming.end(),
                recvFlat_.begin() + static_cast<std::ptrdiff_t>(off));
    }
  }

  void stream() {
    ScopedPhase phase(streamTimer_);
    const std::size_t n = domain_->numOwned();
    const auto& set = Lattice::kSet;
    // Rest population never moves.
    fNext_[0] = f_[0];
    for (int i = 1; i < kQ; ++i) {
      const int opp = set.opposite[static_cast<std::size_t>(i)];
      const auto& srcs = pull_[static_cast<std::size_t>(i)];
      auto& out = fNext_[static_cast<std::size_t>(i)];
      const auto& bounce = f_[static_cast<std::size_t>(opp)];
      const auto& local = f_[static_cast<std::size_t>(i)];
      for (std::size_t l = 0; l < n; ++l) {
        const PullSrc s = srcs[l];
        switch (s.kind) {
          case PullKind::kLocal:
            out[l] = local[static_cast<std::size_t>(s.index)];
            break;
          case PullKind::kRecv:
            out[l] = recvFlat_[static_cast<std::size_t>(s.index)];
            break;
          case PullKind::kWall:
            // Halfway bounce-back off the vessel wall.
            out[l] = bounce[l];
            break;
          case PullKind::kIolet: {
            const auto id = static_cast<std::size_t>(s.index);
            const Vec3d c =
                set.c[static_cast<std::size_t>(i)].template cast<double>();
            const double w = set.w[static_cast<std::size_t>(i)];
            if (ioletIsVelocityBc_[id]) {
              // Ladd bounce-back off a "wall" moving at the prescribed
              // iolet velocity: injects the target momentum flux.
              const double rho = macro_.rho[l];
              out[l] = bounce[l] +
                       6.0 * w * rho * c.dot(ioletVelocity_[id]);
            } else {
              // Anti-bounce-back pressure boundary at the prescribed
              // density, using the site's own velocity as the boundary
              // value.
              const double rhoIo = ioletDensity_[id];
              const Vec3d u = macro_.u[l];
              const double cu = c.dot(u);
              out[l] = -bounce[l] +
                       2.0 * w * rhoIo *
                           (1.0 + 4.5 * cu * cu - 1.5 * u.dot(u));
            }
            break;
          }
        }
      }
    }
  }

  /// Recompute cached moments from the current distributions (used after
  /// external writes such as checkpoint restore).
  void refreshMacros() {
    const std::size_t n = domain_->numOwned();
    const auto& set = Lattice::kSet;
    for (std::size_t l = 0; l < n; ++l) {
      double rho = 0.0;
      Vec3d mom{0, 0, 0};
      for (int i = 0; i < kQ; ++i) {
        const double fi = f_[static_cast<std::size_t>(i)][l];
        rho += fi;
        mom += set.c[static_cast<std::size_t>(i)].template cast<double>() * fi;
      }
      macro_.rho[l] = rho;
      macro_.u[l] = mom / rho;
    }
  }

  struct SendEntry {
    std::uint32_t local;
    std::uint16_t velocity;
  };
  struct SendPlan {
    int dest = 0;
    std::vector<SendEntry> entries;
  };

  const DomainMap* domain_;
  comm::Communicator* comm_;
  LbParams params_;
  std::vector<double> ioletDensity_;
  std::vector<Vec3d> ioletVelocity_;
  std::vector<std::uint8_t> ioletIsVelocityBc_;

  std::array<std::vector<double>, kQ> f_;
  std::array<std::vector<double>, kQ> fNext_;
  std::array<std::vector<PullSrc>, kQ> pull_;

  std::vector<SendPlan> sendPlans_;
  std::vector<int> recvRanks_;
  std::vector<std::uint32_t> recvOffset_;
  std::vector<double> recvFlat_;

  MacroFields macro_;
  std::uint64_t stepsDone_ = 0;
  PhaseTimer collideTimer_, streamTimer_, commTimer_;
};

using SolverD3Q19 = Solver<D3Q19>;
using SolverD3Q15 = Solver<D3Q15>;
using SolverD3Q27 = Solver<D3Q27>;

}  // namespace hemo::lb
