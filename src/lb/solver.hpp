#pragma once
/// \file solver.hpp
/// \brief Distributed sparse-geometry lattice-Boltzmann solver.
///
/// The method matches HemeLB's core: indirect addressing over fluid sites
/// only, BGK or TRT collision, halfway bounce-back walls, anti-bounce-back
/// pressure inlets/outlets, Guo forcing, and per-step halo exchange of the
/// distribution values that stream across rank boundaries.
///
/// Distributions live behind a layout-agnostic storage class
/// (lb/layout.hpp): **kSoA** keeps one aligned, padded plane per velocity
/// direction (what the vectorised kernel requires), **kAoS** the textbook
/// site-major record layout kept as the layout-equivalence reference. Every
/// public surface (checkpointing, observables, vis extraction) goes through
/// the same gather/scatter accessors, so the external format is identical
/// under either layout.
///
/// Three kernels drive the hot path (LbParams::kernel):
///
/// * **kSimd**: the fused push sweep with the bulk pass rewritten as
///   cache-blocked, branch-free SIMD strips over the SoA planes
///   (util/simd.hpp: AVX-512/AVX2 intrinsics with a scalar fallback). Bulk
///   sites are sorted row-major (x fastest) instead of by Morton code, so
///   the per-direction push destinations decompose into long unit-stride
///   runs (the propagation-optimised layout of Wittmann et al.); the
///   streamed writes then retire through non-temporal stores once the
///   working set outgrows the last-level cache. Frontier sites vectorise
///   the same way — their local pushes and wall folds also decompose into
///   unit-stride runs — leaving only iolet rules and halo sends on the
///   per-op scalar path.
/// * **kFused** (default): one pass per site fuses collision and streaming.
///   Owned sites are internally reordered frontier-first (see
///   SiteReordering): the frontier pass collides every site whose update
///   touches a rank boundary, wall or iolet, applies the local boundary
///   rules, and drops the outgoing halo populations straight into
///   persistent send buffers; the halo messages are then posted and the
///   bulk sites — all-local, Morton-sorted, branch-free push loop — are
///   processed *while the messages are in flight*; finally the receives
///   are drained directly into the frontier sites' fNext slots. This
///   eliminates the intermediate full-lattice read/write round trip of the
///   three-phase path and hides communication behind the bulk sweep.
/// * **kReference**: the textbook three-phase collide → blocking exchange →
///   pull-stream, kept for paired equivalence testing and benchmarking.
///
/// Both kernels perform the identical floating-point update per site (the
/// collision is shared), so their trajectories agree bitwise. Streaming
/// uses f_i(x, t+1) = f*_i(x − c_i, t); the fused kernel realises it as a
/// push from the collided site, the reference kernel as a pull at the
/// destination — same values, different sweep structure.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "comm/communicator.hpp"
#include "lb/domain_map.hpp"
#include "lb/lattice.hpp"
#include "lb/layout.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/morton.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

namespace hemo::lb {

/// Fixed point-to-point tag for halo traffic (below comm::kMaxUserTag).
inline constexpr int kHaloTag = 100;

struct LbParams {
  double tau = 0.8;
  enum class Collision { kBgk, kTrt } collision = Collision::kBgk;
  /// TRT "magic" parameter Λ; 3/16 gives exact mid-link bounce-back walls.
  double trtMagic = 3.0 / 16.0;
  /// Uniform body force (lattice units), applied with Guo forcing.
  Vec3d bodyForce{0, 0, 0};
  /// Also accumulate the deviatoric stress tensor during collision.
  bool computeStress = false;
  /// Hot-path kernel; kSimd is the vectorised fused sweep (requires the
  /// SoA layout), kReference the three-phase collide/exchange/stream sweep
  /// kept for equivalence testing and benchmarking.
  enum class Kernel { kFused, kReference, kSimd } kernel = Kernel::kFused;
  /// Distribution storage layout (lb/layout.hpp). kAoS is the site-major
  /// reference layout for layout-equivalence tests.
  Layout layout = Layout::kSoA;
  /// Non-temporal store policy for the SIMD kernel's streamed writes.
  /// kAuto streams only once the distribution working set clearly exceeds
  /// cache capacity (NT stores evict lines the next step would rehit).
  enum class NtStores { kAuto, kOn, kOff } ntStores = NtStores::kAuto;

  /// Kinematic viscosity implied by tau (lattice units).
  double viscosity() const { return kCs2 * (tau - 0.5); }

  const char* kernelName() const {
    switch (kernel) {
      case Kernel::kFused: return "fused";
      case Kernel::kReference: return "reference";
      case Kernel::kSimd: return "simd";
    }
    return "?";
  }
};

template <typename Lattice>
class Solver {
 public:
  static constexpr int kQ = Lattice::kQ;
  /// Bulk sites collided per block in the fused kernel; the block buffer
  /// (kBulkBlock * kQ doubles) must stay L1-resident.
  static constexpr std::uint32_t kBulkBlock = 64;
  /// Sites per SIMD store strip (frontier and bulk passes share the one
  /// strip buffer). Sized so the per-direction drain writes long
  /// sequential bursts (the buffer, ~150 KB for D3Q19, spills to L2 —
  /// collision is compute-bound enough that the extra L1 misses are
  /// noise, while short write bursts measurably defeat the core's
  /// write-combining).
  static constexpr std::uint32_t kBulkStrip = 1024;
  static_assert(kBulkStrip % simd::kWidth == 0);
  /// kAuto NT-store fallback threshold when the LLC size is unknown:
  /// stream past the cache only when f + fNext exceed this (smaller
  /// lattices rehit the lines next step).
  static constexpr std::size_t kNtAutoBytes = std::size_t{16} << 20;

  /// kAuto NT-store threshold: the last-level cache size when the OS
  /// reports it, else kNtAutoBytes. Non-temporal stores only pay once
  /// the slabs cannot stay LLC-resident between steps — streaming an
  /// LLC-resident working set to DRAM was measured ~20% slower.
  static std::size_t ntAutoThresholdBytes() {
#if defined(__linux__) && defined(_SC_LEVEL3_CACHE_SIZE)
    const long l3 = ::sysconf(_SC_LEVEL3_CACHE_SIZE);
    if (l3 > 0) return static_cast<std::size_t>(l3);
#endif
    return kNtAutoBytes;
  }

  Solver(const DomainMap& domain, comm::Communicator& comm,
         const LbParams& params)
      : domain_(&domain), comm_(&comm), params_(params) {
    HEMO_CHECK_MSG(params.tau > 0.5, "tau must exceed 0.5 for stability");
    HEMO_CHECK_MSG(
        params.kernel != LbParams::Kernel::kSimd ||
            params.layout == Layout::kSoA,
        "the SIMD kernel requires the SoA layout (LbParams::layout)");
    f_.init(params.layout, domain.numOwned());
    fNext_.init(params.layout, domain.numOwned());
    const std::size_t distBytes =
        2 * domain.numOwned() * static_cast<std::size_t>(kQ) * sizeof(double);
    useNt_ = params.ntStores == LbParams::NtStores::kOn ||
             (params.ntStores == LbParams::NtStores::kAuto &&
              distBytes > ntAutoThresholdBytes());
    for (const auto& io : domain.lattice().iolets()) {
      ioletDensity_.push_back(io.density);
      ioletVelocity_.push_back(io.normal.normalized() * io.speed);
      ioletIsVelocityBc_.push_back(io.bc == geometry::Iolet::Bc::kVelocity);
    }
    buildPullTable();
    initEquilibrium(1.0, Vec3d{0, 0, 0});
  }

  const DomainMap& domain() const { return *domain_; }
  const LbParams& params() const { return params_; }
  std::uint64_t stepsDone() const { return stepsDone_; }

  /// Vector lanes of the SIMD backend this binary was built with (the
  /// kernels see it via util/simd.hpp; reported in benches/telemetry).
  static constexpr int simdWidth() { return simd::kWidth; }
  /// Whether the SIMD kernel retires streamed writes via NT stores here.
  bool usesNtStores() const { return useNt_; }

  /// Rebase the step counter (checkpoint restore): the restored run then
  /// reports the same stepsDone() as the writing run did.
  void setStepsDone(std::uint64_t steps) { stepsDone_ = steps; }

  /// The frontier/bulk internal permutation (external indexing unchanged).
  const SiteReordering& reordering() const { return reorder_; }

  /// Override an iolet's target density mid-run (computational steering).
  void setIoletDensity(std::size_t ioletId, double density) {
    HEMO_CHECK(ioletId < ioletDensity_.size());
    ioletDensity_[ioletId] = density;
  }
  double ioletDensity(std::size_t ioletId) const {
    return ioletDensity_[ioletId];
  }

  /// Override a velocity iolet's target velocity (steering). Also switches
  /// the iolet to the velocity boundary condition.
  void setIoletVelocity(std::size_t ioletId, const Vec3d& velocity) {
    HEMO_CHECK(ioletId < ioletVelocity_.size());
    ioletVelocity_[ioletId] = velocity;
    ioletIsVelocityBc_[ioletId] = true;
  }
  Vec3d ioletVelocity(std::size_t ioletId) const {
    return ioletVelocity_[ioletId];
  }

  /// Change relaxation time mid-run (steering). Keeps tau > 0.5.
  void setTau(double tau) {
    HEMO_CHECK(tau > 0.5);
    params_.tau = tau;
  }

  void setBodyForce(const Vec3d& f) { params_.bodyForce = f; }

  /// Reset all distributions to equilibrium at (rho, u).
  void initEquilibrium(double rho, const Vec3d& u) {
    const std::size_t n = domain_->numOwned();
    for (int i = 0; i < kQ; ++i) {
      f_.fill(i, equilibrium<Lattice>(i, rho, u));
      fNext_.fill(i, 0.0);
    }
    macro_.rho.assign(n, rho);
    macro_.u.assign(n, u);
    if (params_.computeStress) macro_.stress.assign(n, SymTensor3{});
  }

  /// Initialise every owned site to the equilibrium of (rho, u) returned by
  /// `fn(worldPos)` — used to seed perturbed or analytic initial states.
  template <typename F>
  void initWith(F&& fn) {
    const std::size_t n = domain_->numOwned();
    for (std::size_t e = 0; e < n; ++e) {
      const Vec3d w = domain_->lattice().siteWorld(
          domain_->globalOf(static_cast<std::uint32_t>(e)));
      const auto [rho, u] = fn(w);
      const auto l = static_cast<std::size_t>(reorder_.internalOf[e]);
      for (int i = 0; i < kQ; ++i) {
        f_.at(i, l) = equilibrium<Lattice>(i, rho, u);
      }
      macro_.rho[e] = rho;
      macro_.u[e] = u;
    }
  }

  /// One full LB update. The scalar kernels are instantiated per layout
  /// (site stride 1 for SoA planes, kQ for AoS records); the SIMD kernel
  /// is SoA-only by construction.
  void step() {
#ifndef HEMO_TELEMETRY_DISABLED
    // Phase-tag the step for wait-state attribution: every envelope this
    // step posts (halo, step collectives) carries the epoch, so receivers
    // can pin blocked time to a specific step on a specific sender.
    if (auto* t = telemetry::threadTelemetry()) {
      t->waitState().setEpoch(stepsDone_ + 1);
    }
#endif
    const bool soa = params_.layout == Layout::kSoA;
    switch (params_.kernel) {
      case LbParams::Kernel::kReference:
        if (soa) {
          collide<1>();
          exchange<1>();
          stream<1>();
        } else {
          collide<kQ>();
          exchange<kQ>();
          stream<kQ>();
        }
        break;
      case LbParams::Kernel::kFused:
        if (soa) {
          stepFused<1>();
        } else {
          stepFused<kQ>();
        }
        break;
      case LbParams::Kernel::kSimd:
        stepSimd();
        break;
    }
    f_.swapWith(fNext_);
    ++stepsDone_;
  }

  void run(int steps) {
    for (int s = 0; s < steps; ++s) step();
  }

  /// Macroscopic moments at time of the last collide (pre-collision),
  /// in external (DomainMap) site order.
  const MacroFields& macro() const { return macro_; }

  /// Mass on this rank (sum of cached densities).
  double localMass() const {
    double m = 0.0;
    for (const double r : macro_.rho) m += r;
    return m;
  }

  /// Momentum on this rank.
  Vec3d localMomentum() const {
    Vec3d p{0, 0, 0};
    for (std::size_t l = 0; l < macro_.u.size(); ++l) {
      p += macro_.u[l] * macro_.rho[l];
    }
    return p;
  }

  /// Per-phase CPU time accumulated on this rank. In the fused kernel
  /// collide covers both fused passes and stream the receive scatter.
  const PhaseTimer& collideTimer() const { return collideTimer_; }
  const PhaseTimer& streamTimer() const { return streamTimer_; }
  const PhaseTimer& commTimer() const { return commTimer_; }
  /// Wall time of the bulk sweep while halo messages were in flight.
  const WallPhaseTimer& overlapTimer() const { return overlapTimer_; }
  /// Wall time blocked waiting for halo receives after the bulk sweep.
  const WallPhaseTimer& recvWaitTimer() const { return recvWaitTimer_; }

  /// Fraction of the halo-exchange window hidden behind bulk compute:
  /// overlap / (overlap + residual receive wait). Zero on the reference
  /// kernel (nothing is overlapped) and on a rank with no halo.
  double commHiddenFraction() const {
    const double denom = overlapTimer_.total() + recvWaitTimer_.total();
    return denom > 0.0 ? overlapTimer_.total() / denom : 0.0;
  }

  void resetTimers() {
    collideTimer_.reset();
    streamTimer_.reset();
    commTimer_.reset();
    overlapTimer_.reset();
    recvWaitTimer_.reset();
  }

  /// Distribution i over the owned sites in external (DomainMap) order.
  std::vector<double> distribution(int i) const {
    std::vector<double> out(domain_->numOwned());
    gatherDistribution(i, out);
    return out;
  }

  /// As distribution(), but into caller-owned storage (checkpointing).
  /// Layout-agnostic: identical external-order bytes under kSoA and kAoS.
  void gatherDistribution(int i, std::vector<double>& out) const {
    const std::size_t n = domain_->numOwned();
    out.resize(n);
    const double* fi = f_.dirBase(i);
    const std::size_t s = f_.siteStride();
    for (std::size_t l = 0; l < n; ++l) {
      out[static_cast<std::size_t>(reorder_.externalOf[l])] = fi[l * s];
    }
  }

  /// Overwrite distribution i from external-order values (restore, tests).
  void setDistribution(int i, const std::vector<double>& values) {
    HEMO_CHECK(values.size() == domain_->numOwned());
    double* fi = f_.dirBase(i);
    const std::size_t s = f_.siteStride();
    for (std::size_t e = 0; e < values.size(); ++e) {
      fi[static_cast<std::size_t>(reorder_.internalOf[e]) * s] = values[e];
    }
    refreshMacros();
  }

  /// Overwrite all kQ distributions at once from external-order columns,
  /// refreshing the cached macro fields a single time (bulk restore path
  /// used by live migration).
  void setDistributions(const std::vector<std::vector<double>>& columns) {
    HEMO_CHECK(columns.size() == static_cast<std::size_t>(kQ));
    const std::size_t s = f_.siteStride();
    for (int i = 0; i < kQ; ++i) {
      const auto& values = columns[static_cast<std::size_t>(i)];
      HEMO_CHECK(values.size() == domain_->numOwned());
      double* fi = f_.dirBase(i);
      for (std::size_t e = 0; e < values.size(); ++e) {
        fi[static_cast<std::size_t>(reorder_.internalOf[e]) * s] = values[e];
      }
    }
    refreshMacros();
  }

  /// Whether iolet `ioletId` currently imposes a velocity (true) or density
  /// (false) boundary condition — including steered overrides; migration
  /// carries this over to the rebuilt solver.
  bool ioletIsVelocityBc(std::size_t ioletId) const {
    HEMO_CHECK(ioletId < ioletIsVelocityBc_.size());
    return ioletIsVelocityBc_[ioletId] != 0;
  }

 private:
  enum class PullKind : std::uint8_t { kLocal, kRecv, kWall, kIolet };
  struct PullSrc {
    PullKind kind = PullKind::kWall;
    std::uint32_t index = 0;  ///< internal idx / flat recv slot / iolet id
  };

  /// One boundary/halo action of a frontier site's fused update.
  enum class OpKind : std::uint8_t {
    kPushLocal,  ///< fNext[dir][index] = f*[dir]
    kSend,       ///< sendFlat_[index] = f*[dir]
    kWall,       ///< fNext[dir][self] = f*[opposite(dir)] (bounce-back)
    kIolet       ///< fNext[dir][self] = iolet rule (index = iolet id)
  };
  struct FrontierOp {
    std::uint32_t index = 0;
    std::uint8_t kind = 0;
    std::uint8_t dir = 0;
  };
  struct RecvDst {
    std::uint32_t dest = 0;  ///< internal site index
    std::uint16_t dir = 0;
  };

  void buildPullTable() {
    const auto& lat = domain_->lattice();
    const auto& set = Lattice::kSet;
    const std::size_t n = domain_->numOwned();

    // --- classify owned sites: bulk (every pull is local) vs frontier ----
    std::vector<std::uint8_t> isFrontier(n, 0);
    for (std::size_t e = 0; e < n; ++e) {
      const std::uint64_t g = domain_->globalOf(static_cast<std::uint32_t>(e));
      for (int i = 1; i < kQ; ++i) {
        const int gd = set.geoDir[static_cast<std::size_t>(i)];
        const auto upstream = lat.neighborId(g, geometry::oppositeDirection(gd));
        if (upstream < 0 ||
            domain_->ownerOf(static_cast<std::uint64_t>(upstream)) !=
                domain_->rank()) {
          isFrontier[e] = 1;
          break;
        }
      }
    }

    // --- internal ordering: frontier first (stable), bulk Morton-sorted --
    reorder_.externalOf.clear();
    reorder_.externalOf.reserve(n);
    for (std::size_t e = 0; e < n; ++e) {
      if (isFrontier[e]) {
        reorder_.externalOf.push_back(static_cast<std::uint32_t>(e));
      }
    }
    reorder_.numFrontier = static_cast<std::uint32_t>(reorder_.externalOf.size());
    // Bulk ordering: Morton for the scalar kernels (neighbour locality),
    // row-major (x fastest) for the SIMD kernel — consecutive internal
    // indices are then x-consecutive sites, so the per-direction push
    // destinations decompose into long unit-stride runs the store pass can
    // retire as whole vectors (the propagation-optimised layout).
    const bool rowMajor = params_.kernel == LbParams::Kernel::kSimd;
    const auto sortKey = [&](const Vec3i& p) -> std::uint64_t {
      if (!rowMajor) return morton3(p);
      return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.z))
              << 42) |
             (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.y))
              << 21) |
             static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x));
    };
    std::vector<std::pair<std::uint64_t, std::uint32_t>> bulk;
    bulk.reserve(n - reorder_.numFrontier);
    for (std::size_t e = 0; e < n; ++e) {
      if (!isFrontier[e]) {
        bulk.emplace_back(
            sortKey(lat.sitePosition(
                domain_->globalOf(static_cast<std::uint32_t>(e)))),
            static_cast<std::uint32_t>(e));
      }
    }
    std::sort(bulk.begin(), bulk.end());
    for (const auto& [key, e] : bulk) reorder_.externalOf.push_back(e);
    reorder_.internalOf.assign(n, 0);
    for (std::size_t l = 0; l < n; ++l) {
      reorder_.internalOf[reorder_.externalOf[l]] =
          static_cast<std::uint32_t>(l);
    }

    // --- pull table (reference kernel) + halo needs, internal order ------
    for (int i = 1; i < kQ; ++i) {
      pull_[static_cast<std::size_t>(i)].assign(n, PullSrc{});
    }
    // needs[r] = packed (globalUpstream * 32 + i) values this rank pulls
    // from rank r, in deterministic internal (site, velocity) order.
    std::vector<std::vector<std::uint64_t>> needs(
        static_cast<std::size_t>(comm_->size()));
    struct RecvRef {
      std::uint32_t site;  ///< internal index
      std::uint16_t dir;
      std::uint16_t owner;
      std::uint32_t pos;  ///< position within needs[owner]
    };
    std::vector<RecvRef> recvRefs;
    for (std::size_t l = 0; l < n; ++l) {
      const std::uint64_t g =
          domain_->globalOf(reorder_.externalOf[l]);
      for (int i = 1; i < kQ; ++i) {
        const int gd = set.geoDir[static_cast<std::size_t>(i)];
        const int upDir = geometry::oppositeDirection(gd);
        const auto upstream = lat.neighborId(g, upDir);
        auto& src = pull_[static_cast<std::size_t>(i)][l];
        if (upstream >= 0) {
          const int owner =
              domain_->ownerOf(static_cast<std::uint64_t>(upstream));
          if (owner == domain_->rank()) {
            src.kind = PullKind::kLocal;
            src.index = reorder_.internalOf[static_cast<std::size_t>(
                domain_->localOf(static_cast<std::uint64_t>(upstream)))];
          } else {
            src.kind = PullKind::kRecv;
            auto& need = needs[static_cast<std::size_t>(owner)];
            recvRefs.push_back({static_cast<std::uint32_t>(l),
                                static_cast<std::uint16_t>(i),
                                static_cast<std::uint16_t>(owner),
                                static_cast<std::uint32_t>(need.size())});
            need.push_back(static_cast<std::uint64_t>(upstream) * 32 +
                           static_cast<std::uint64_t>(i));
          }
        } else {
          const auto& link =
              lat.site(g).links[static_cast<std::size_t>(upDir)];
          HEMO_CHECK_MSG(link.kind != geometry::LinkKind::kBulk,
                         "voxelizer/link inconsistency at site " << g);
          if (link.kind == geometry::LinkKind::kWall) {
            src.kind = PullKind::kWall;
          } else {
            src.kind = PullKind::kIolet;
            src.index = link.ioletId;
          }
        }
      }
    }

    // Flat receive offsets per source rank; fix up slots; scatter targets.
    recvOffset_.assign(static_cast<std::size_t>(comm_->size()) + 1, 0);
    for (int r = 0; r < comm_->size(); ++r) {
      recvOffset_[static_cast<std::size_t>(r) + 1] =
          recvOffset_[static_cast<std::size_t>(r)] +
          static_cast<std::uint32_t>(needs[static_cast<std::size_t>(r)].size());
    }
    recvFlat_.assign(recvOffset_.back(), 0.0);
    recvDst_.assign(recvOffset_.back(), RecvDst{});
    for (const auto& ref : recvRefs) {
      const std::uint32_t slot =
          recvOffset_[static_cast<std::size_t>(ref.owner)] + ref.pos;
      pull_[static_cast<std::size_t>(ref.dir)][ref.site].index = slot;
      recvDst_[slot] = {ref.site, ref.dir};
    }
    for (int r = 0; r < comm_->size(); ++r) {
      if (!needs[static_cast<std::size_t>(r)].empty()) {
        recvRanks_.push_back(r);
      }
    }

    // Tell the owners what to send: they answer my needs in my order.
    {
      comm::Communicator::TrafficScope scope(*comm_, comm::Traffic::kHalo);
      const auto requests = comm_->alltoallVec(needs);
      for (int r = 0; r < comm_->size(); ++r) {
        const auto& reqs = requests[static_cast<std::size_t>(r)];
        if (reqs.empty()) continue;
        SendPlan plan;
        plan.dest = r;
        plan.entries.reserve(reqs.size());
        for (const auto packed : reqs) {
          const std::uint64_t g = packed / 32;
          const int i = static_cast<int>(packed % 32);
          const auto local = domain_->localOf(g);
          HEMO_CHECK_MSG(local >= 0, "halo request for non-owned site " << g);
          plan.entries.push_back(
              {reorder_.internalOf[static_cast<std::size_t>(local)],
               static_cast<std::uint16_t>(i)});
        }
        sendPlans_.push_back(std::move(plan));
      }
    }
    // Persistent flat send storage: per-plan contiguous slices, so a slice
    // can be handed to sendBytes directly (no per-step heap churn).
    sendFlatOffset_.clear();
    std::size_t sendTotal = 0;
    for (const auto& plan : sendPlans_) {
      sendFlatOffset_.push_back(sendTotal);
      sendTotal += plan.entries.size();
    }
    sendFlat_.assign(sendTotal, 0.0);

    buildFusedTables();
    if (params_.kernel == LbParams::Kernel::kSimd) buildSimdRuns();
  }

  /// Decompose the bulk push targets into unit-stride runs. For row-major
  /// bulk ordering almost every destination advances in lockstep with the
  /// source (dst[k+1] == dst[k]+1 whenever two x-consecutive sites stream
  /// to two x-consecutive sites), so the streamed writes of the SIMD store
  /// pass become a handful of contiguous vector copies per strip instead
  /// of kQ scatter loops. Runs never cross strip boundaries — the store
  /// pass drains them strip by strip with one cursor per direction.
  void buildSimdRuns() {
    const std::uint32_t nf = reorder_.numFrontier;
    const auto n = static_cast<std::uint32_t>(domain_->numOwned());
    constexpr auto kW = static_cast<std::uint32_t>(simd::kWidth);
    // Start the vector groups at the first kW-aligned bulk site: the SoA
    // planes are 64-byte aligned with a pitch that is a multiple of kW
    // doubles, so an aligned group index makes every per-plane group load
    // a full aligned vector (an odd frontier count would otherwise split
    // all 19 loads of every group across two cache lines). The few bulk
    // sites before the aligned start take the scalar path.
    simdVecStart_ = nf;
    if (simdVecStart_ % kW != 0) simdVecStart_ += kW - simdVecStart_ % kW;
    if (simdVecStart_ > n) simdVecStart_ = n;
    const std::uint32_t nb = n - simdVecStart_;
    simdVecSites_ = nb - nb % kW;
    for (int i = 1; i < kQ; ++i) {
      auto& runs = simdRuns_[static_cast<std::size_t>(i)];
      runs.clear();
      const std::uint32_t* dst =
          push_[static_cast<std::size_t>(i)].data() + simdVecStart_;
      for (std::uint32_t k = 0; k < simdVecSites_; ++k) {
        if (k % kBulkStrip == 0 || dst[k] != dst[k - 1] + 1) {
          runs.push_back({k, dst[k], 1});
        } else {
          ++runs.back().len;
        }
      }
    }
    bulkStrip_.assign(
        static_cast<std::size_t>(kStripPlanes) * kBulkStrip, 0.0);

    // Unit-stride runs over the external indices of the two vectorised
    // ranges: the reorder preserves relative order, so extOf is strictly
    // increasing with gaps where the other class' sites sit — the macro
    // fields (external order) drain from the strip's moment planes as
    // sequential bursts instead of a per-lane scatter.
    const auto buildExtRuns = [&](std::vector<StreamRun>& runs,
                                  std::uint32_t first, std::uint32_t count) {
      runs.clear();
      const std::uint32_t* ext = reorder_.externalOf.data() + first;
      for (std::uint32_t k = 0; k < count; ++k) {
        if (!runs.empty() && runs.back().srcK + runs.back().len == k &&
            runs.back().dst + runs.back().len == ext[k] &&
            k % kBulkStrip != 0) {
          ++runs.back().len;
        } else {
          runs.push_back({k, ext[k], 1});
        }
      }
    };
    buildExtRuns(macroRunsBulk_, simdVecStart_, simdVecSites_);

    // Frontier split for the SIMD path: local pushes become per-direction
    // destination tables so the strips retire them without per-op
    // dispatch, halfway-bounce-back wall folds (dst plane = op.dir, dst
    // index = the site itself, src plane = the opposite direction — unit
    // stride on both sides) become per-direction wall tables, and only
    // the iolet/halo-send actions stay in a (much shorter) boundary-only
    // CSR. The full CSR remains the scalar kernels' path. The vector
    // tail [nfVec, nf) keeps everything in the CSR: it runs through the
    // scalar processFrontierSite, which the strips never touch.
    const std::uint32_t nfVec = nf - nf % kW;
    buildExtRuns(macroRunsFrontier_, 0, nfVec);
    std::array<std::vector<std::uint8_t>, kQ> wallAt;
    for (int i = 1; i < kQ; ++i) {
      frontierLocalDst_[static_cast<std::size_t>(i)].assign(nf, kNoDst);
      wallAt[static_cast<std::size_t>(i)].assign(nf, 0);
    }
    frontierBoundaryStart_.assign(static_cast<std::size_t>(nf) + 1, 0);
    frontierBoundaryOps_.clear();
    for (std::uint32_t l = 0; l < nf; ++l) {
      for (std::uint32_t k = frontierOpStart_[l]; k < frontierOpStart_[l + 1];
           ++k) {
        const FrontierOp op = frontierOps_[k];
        if (static_cast<OpKind>(op.kind) == OpKind::kPushLocal) {
          frontierLocalDst_[static_cast<std::size_t>(op.dir)][l] = op.index;
        } else if (static_cast<OpKind>(op.kind) == OpKind::kWall &&
                   l < nfVec) {
          wallAt[static_cast<std::size_t>(op.dir)][l] = 1;
        } else {
          frontierBoundaryOps_.push_back(op);
        }
      }
      frontierBoundaryStart_[l + 1] =
          static_cast<std::uint32_t>(frontierBoundaryOps_.size());
    }
    for (int i = 1; i < kQ; ++i) {
      auto& runs = frontierWallRuns_[static_cast<std::size_t>(i)];
      runs.clear();
      const std::uint8_t* at = wallAt[static_cast<std::size_t>(i)].data();
      for (std::uint32_t k = 0; k < nfVec; ++k) {
        if (!at[k]) continue;
        if (!runs.empty() && runs.back().srcK + runs.back().len == k &&
            k % kBulkStrip != 0) {
          ++runs.back().len;
        } else {
          runs.push_back({k, k, 1});
        }
      }
    }

    // Unit-stride runs over the frontier dst tables, exactly like the
    // bulk runs: consecutive frontier sites usually push to consecutive
    // slots of the same plane, so the strips can retire them as
    // sequential bursts instead of 18 interleaved element stores per
    // site. kNoDst lanes (boundary ops) break runs, as do strip edges.
    for (int i = 1; i < kQ; ++i) {
      auto& runs = frontierRuns_[static_cast<std::size_t>(i)];
      runs.clear();
      const std::uint32_t* dst =
          frontierLocalDst_[static_cast<std::size_t>(i)].data();
      for (std::uint32_t k = 0; k < nfVec; ++k) {
        if (dst[k] == kNoDst) continue;
        if (!runs.empty() && runs.back().srcK + runs.back().len == k &&
            runs.back().dst + runs.back().len == dst[k] &&
            k % kBulkStrip != 0) {
          ++runs.back().len;
        } else {
          runs.push_back({k, dst[k], 1});
        }
      }
    }
  }

  /// Push tables for the fused kernel, derived from the same geometry/
  /// ownership facts as the pull table: every (site, direction) value
  /// either pushes to a local downstream slot, fills a send slot, or folds
  /// back into the site itself through a wall/iolet rule.
  void buildFusedTables() {
    const auto& lat = domain_->lattice();
    const auto& set = Lattice::kSet;
    const std::size_t n = domain_->numOwned();
    const std::uint32_t nf = reorder_.numFrontier;

    // (internal site * 32 + dir) -> flat send slot.
    std::unordered_map<std::uint64_t, std::uint32_t> sendSlotOf;
    for (std::size_t p = 0; p < sendPlans_.size(); ++p) {
      const auto& plan = sendPlans_[p];
      for (std::size_t k = 0; k < plan.entries.size(); ++k) {
        const auto& e = plan.entries[k];
        sendSlotOf.emplace(
            static_cast<std::uint64_t>(e.local) * 32 + e.velocity,
            static_cast<std::uint32_t>(sendFlatOffset_[p] + k));
      }
    }

    frontierOpStart_.assign(static_cast<std::size_t>(nf) + 1, 0);
    frontierOps_.clear();
    frontierOps_.reserve(static_cast<std::size_t>(nf) *
                         static_cast<std::size_t>(kQ - 1));
    for (int i = 1; i < kQ; ++i) {
      push_[static_cast<std::size_t>(i)].assign(n, 0);
    }

    for (std::size_t l = 0; l < n; ++l) {
      const std::uint64_t g = domain_->globalOf(reorder_.externalOf[l]);
      for (int i = 1; i < kQ; ++i) {
        const int gd = set.geoDir[static_cast<std::size_t>(i)];
        const auto down = lat.neighborId(g, gd);
        if (down >= 0 &&
            domain_->ownerOf(static_cast<std::uint64_t>(down)) ==
                domain_->rank()) {
          const std::uint32_t dest =
              reorder_.internalOf[static_cast<std::size_t>(
                  domain_->localOf(static_cast<std::uint64_t>(down)))];
          if (l < nf) {
            frontierOps_.push_back({dest,
                                    static_cast<std::uint8_t>(OpKind::kPushLocal),
                                    static_cast<std::uint8_t>(i)});
          } else {
            push_[static_cast<std::size_t>(i)][l] = dest;
          }
          continue;
        }
        HEMO_CHECK_MSG(l < nf, "bulk site with non-local downstream " << g);
        if (down >= 0) {
          const auto it = sendSlotOf.find(static_cast<std::uint64_t>(l) * 32 +
                                          static_cast<std::uint64_t>(i));
          HEMO_CHECK_MSG(it != sendSlotOf.end(),
                         "missing halo send slot for site " << g);
          frontierOps_.push_back({it->second,
                                  static_cast<std::uint8_t>(OpKind::kSend),
                                  static_cast<std::uint8_t>(i)});
        } else {
          // The outgoing population hits a wall/iolet and folds back into
          // this site along the opposite (incoming) direction — the push
          // form of the pull table's kWall/kIolet rules.
          const auto& link = lat.site(g).links[static_cast<std::size_t>(gd)];
          const auto in = static_cast<std::uint8_t>(
              set.opposite[static_cast<std::size_t>(i)]);
          if (link.kind == geometry::LinkKind::kWall) {
            frontierOps_.push_back(
                {0, static_cast<std::uint8_t>(OpKind::kWall), in});
          } else {
            frontierOps_.push_back({link.ioletId,
                                    static_cast<std::uint8_t>(OpKind::kIolet),
                                    in});
          }
        }
      }
      if (l + 1 <= nf) {
        frontierOpStart_[l + 1] =
            static_cast<std::uint32_t>(frontierOps_.size());
      }
    }
  }

  /// Loop-invariant collision constants plus raw output pointers, hoisted
  /// once per sweep so the hot loops never re-load vector data pointers
  /// the compiler cannot prove alias-free.
  struct CollisionCtx {
    double omega = 0.0;
    double omegaMinus = 0.0;
    bool trt = false;
    Vec3d F{0, 0, 0};
    bool forced = false;
    bool stress = false;
    double stressPrefactor = 0.0;
    double* rhoOut = nullptr;
    Vec3d* uOut = nullptr;
    SymTensor3* stressOut = nullptr;
  };

  CollisionCtx collisionCtx() {
    CollisionCtx ctx;
    const double tau = params_.tau;
    ctx.omega = 1.0 / tau;
    ctx.trt = params_.collision == LbParams::Collision::kTrt;
    const double tauMinus = params_.trtMagic / (tau - 0.5) + 0.5;
    ctx.omegaMinus = 1.0 / tauMinus;
    ctx.F = params_.bodyForce;
    ctx.forced = ctx.F.norm2() > 0.0;
    ctx.stress = params_.computeStress;
    ctx.stressPrefactor = -(1.0 - 0.5 * ctx.omega);
    ctx.rhoOut = macro_.rho.data();
    ctx.uOut = macro_.u.data();
    ctx.stressOut = ctx.stress ? macro_.stress.data() : nullptr;
    return ctx;
  }

  /// Per-direction constants as flat doubles: keeps the hot loops free of
  /// the int->double casts and Vec3 temporaries the generic VelocitySet
  /// accessors would cost per site.
  struct DirConsts {
    alignas(64) std::array<double, kQ> cx{};
    alignas(64) std::array<double, kQ> cy{};
    alignas(64) std::array<double, kQ> cz{};
    alignas(64) std::array<double, kQ> w{};
  };

  static DirConsts makeDirConsts() {
    DirConsts d;
    for (int i = 0; i < kQ; ++i) {
      const auto& c = Lattice::kSet.c[static_cast<std::size_t>(i)];
      d.cx[static_cast<std::size_t>(i)] = static_cast<double>(c.x);
      d.cy[static_cast<std::size_t>(i)] = static_cast<double>(c.y);
      d.cz[static_cast<std::size_t>(i)] = static_cast<double>(c.z);
      d.w[static_cast<std::size_t>(i)] = Lattice::kSet.w[static_cast<std::size_t>(i)];
    }
    return d;
  }

  /// Moments + collision (+ forcing/stress) of one site, in place: `fl`
  /// holds the pre-collision populations on entry, post-collision on
  /// return. `ext` is the external index the macroscopic fields are
  /// written to. This is the optimised form (flat direction constants, one
  /// reciprocal, fused equilibrium polynomial); relaxSiteReference() keeps
  /// the pre-fusion arithmetic — same update to round-off, so the paired
  /// kernels agree to ~1e-12 over hundreds of steps.
  void relaxSite(const CollisionCtx& ctx, double* fl, std::size_t ext) {
    const auto& d = dir_;
    double rho = 0.0, mx = 0.0, my = 0.0, mz = 0.0;
    for (int i = 0; i < kQ; ++i) {
      const double fi = fl[i];
      rho += fi;
      mx += d.cx[static_cast<std::size_t>(i)] * fi;
      my += d.cy[static_cast<std::size_t>(i)] * fi;
      mz += d.cz[static_cast<std::size_t>(i)] * fi;
    }
    const double invRho = 1.0 / rho;
    // Guo: physical velocity includes half the force impulse.
    double ux = mx * invRho, uy = my * invRho, uz = mz * invRho;
    if (ctx.forced) {
      const double h = 0.5 * invRho;
      ux += ctx.F.x * h;
      uy += ctx.F.y * h;
      uz += ctx.F.z * h;
    }
    ctx.rhoOut[ext] = rho;
    ctx.uOut[ext] = Vec3d{ux, uy, uz};

    const double base = 1.0 - 1.5 * (ux * ux + uy * uy + uz * uz);
    double feq[kQ], cus[kQ];
    for (int i = 0; i < kQ; ++i) {
      const double cu = d.cx[static_cast<std::size_t>(i)] * ux +
                        d.cy[static_cast<std::size_t>(i)] * uy +
                        d.cz[static_cast<std::size_t>(i)] * uz;
      cus[i] = cu;
      feq[i] = d.w[static_cast<std::size_t>(i)] * rho *
               (base + cu * (3.0 + 4.5 * cu));
    }

    if (ctx.stress) {
      SymTensor3 pi{};
      for (int i = 0; i < kQ; ++i) {
        const double fneq = fl[i] - feq[i];
        const double cx = d.cx[static_cast<std::size_t>(i)];
        const double cy = d.cy[static_cast<std::size_t>(i)];
        const double cz = d.cz[static_cast<std::size_t>(i)];
        pi.xx() += fneq * cx * cx;
        pi.yy() += fneq * cy * cy;
        pi.zz() += fneq * cz * cz;
        pi.xy() += fneq * cx * cy;
        pi.xz() += fneq * cx * cz;
        pi.yz() += fneq * cy * cz;
      }
      // Deviatoric part of the relaxed non-equilibrium momentum flux.
      SymTensor3 sigma = pi * ctx.stressPrefactor;
      const double trace3 = (sigma.xx() + sigma.yy() + sigma.zz()) / 3.0;
      sigma.xx() -= trace3;
      sigma.yy() -= trace3;
      sigma.zz() -= trace3;
      ctx.stressOut[ext] = sigma;
    }

    if (!ctx.trt) {
      for (int i = 0; i < kQ; ++i) {
        fl[i] += ctx.omega * (feq[i] - fl[i]);
      }
    } else {
      const auto& set = Lattice::kSet;
      for (int i = 0; i < kQ; ++i) {
        const int j = set.opposite[static_cast<std::size_t>(i)];
        if (j < i) continue;
        const double fPlus = 0.5 * (fl[i] + fl[j]);
        const double fMinus = 0.5 * (fl[i] - fl[j]);
        const double eqPlus = 0.5 * (feq[i] + feq[j]);
        const double eqMinus = 0.5 * (feq[i] - feq[j]);
        const double dPlus = ctx.omega * (eqPlus - fPlus);
        const double dMinus = ctx.omegaMinus * (eqMinus - fMinus);
        fl[i] += dPlus + dMinus;
        if (j != i) fl[j] += dPlus - dMinus;
      }
    }

    if (ctx.forced) {
      const double pref = 1.0 - 0.5 * ctx.omega;
      for (int i = 0; i < kQ; ++i) {
        const double cx = d.cx[static_cast<std::size_t>(i)];
        const double cy = d.cy[static_cast<std::size_t>(i)];
        const double cz = d.cz[static_cast<std::size_t>(i)];
        const double nineCu = 9.0 * cus[i];
        const double termF = (3.0 * (cx - ux) + cx * nineCu) * ctx.F.x +
                             (3.0 * (cy - uy) + cy * nineCu) * ctx.F.y +
                             (3.0 * (cz - uz) + cz * nineCu) * ctx.F.z;
        fl[i] += pref * d.w[static_cast<std::size_t>(i)] * termF;
      }
    }
  }

  // --- fused kernel ------------------------------------------------------

  /// Raw hot-loop pointers, hoisted once per step. Direction i of site l
  /// is fsrc[i][l * S] where S is the layout's site stride (1 for SoA, kQ
  /// for AoS) — the kernels carry S as a template parameter so the common
  /// SoA case compiles to plain unit-stride pointers.
  struct SweepPtrs {
    const double* fsrc[kQ];
    double* fdst[kQ];
    const std::uint32_t* pdst[kQ];
    const std::uint32_t* extOf;
    double* sendFlat;
  };

  SweepPtrs sweepPtrs() {
    SweepPtrs p;
    for (int i = 0; i < kQ; ++i) {
      p.fsrc[i] = f_.dirBase(i);
      p.fdst[i] = fNext_.dirBase(i);
      p.pdst[i] = push_[static_cast<std::size_t>(i)].data();
    }
    p.extOf = reorder_.externalOf.data();
    p.sendFlat = sendFlat_.data();
    return p;
  }

  template <int S>
  void stepFused() {
    const CollisionCtx ctx = collisionCtx();
    const SweepPtrs ptrs = sweepPtrs();
    const auto n = static_cast<std::uint32_t>(domain_->numOwned());
    const std::uint32_t nf = reorder_.numFrontier;

    // Frontier pass: collide every boundary-coupled site, apply its wall/
    // iolet rules, push its local-destination populations, and drop its
    // outgoing halo populations into the persistent send buffers.
    {
      ScopedPhase phase(collideTimer_);
      HEMO_TSPAN(kCollide, "collide.frontier");
      for (std::uint32_t l = 0; l < nf; ++l) {
        processFrontierSite<S>(ctx, ptrs, l);
      }
    }
    // Post all halo sends (buffered, never block).
    {
      ScopedPhase phase(commTimer_);
      HEMO_TSPAN(kHaloSend, "halo.send");
      comm::Communicator::TrafficScope scope(*comm_, comm::Traffic::kHalo);
      for (std::size_t p = 0; p < sendPlans_.size(); ++p) {
        comm_->sendBytes(sendPlans_[p].dest, kHaloTag,
                         sendFlat_.data() + sendFlatOffset_[p],
                         sendPlans_[p].entries.size() * sizeof(double));
      }
    }
    // Bulk pass while the messages are in flight: branch-free fused
    // collide+push over the Morton-sorted all-local sites. Sites are
    // processed in blocks: each block is collided into an L1-resident
    // buffer, then pushed direction-major so each fNext array is written
    // in one near-sequential burst instead of kQ-way interleaved streams.
    {
      ScopedPhase phase(collideTimer_);
      ScopedWallPhase overlap(overlapTimer_);
      HEMO_TSPAN(kCollide, "collide.bulk");
      double block[kBulkBlock * kQ];
      for (std::uint32_t base = nf; base < n; base += kBulkBlock) {
        const std::uint32_t count = std::min(kBulkBlock, n - base);
        for (std::uint32_t k = 0; k < count; ++k) {
          double* fl = block + k * kQ;
          for (int i = 0; i < kQ; ++i) {
            fl[i] = ptrs.fsrc[i][static_cast<std::size_t>(base + k) * S];
          }
          relaxSite(ctx, fl, static_cast<std::size_t>(ptrs.extOf[base + k]));
        }
        {
          double* out0 = ptrs.fdst[0];
          for (std::uint32_t k = 0; k < count; ++k) {
            out0[static_cast<std::size_t>(base + k) * S] = block[k * kQ];
          }
        }
        for (int i = 1; i < kQ; ++i) {
          const std::uint32_t* dst = ptrs.pdst[i] + base;
          double* out = ptrs.fdst[i];
          for (std::uint32_t k = 0; k < count; ++k) {
            out[static_cast<std::size_t>(dst[k]) * S] =
                block[k * kQ + static_cast<std::uint32_t>(i)];
          }
        }
      }
    }
    // Receive and finish the frontier sites' incoming halo populations.
    {
      comm::Communicator::TrafficScope scope(*comm_, comm::Traffic::kHalo);
      for (const int r : recvRanks_) {
        const auto off = recvOffset_[static_cast<std::size_t>(r)];
        const auto count =
            recvOffset_[static_cast<std::size_t>(r) + 1] - off;
        {
          ScopedPhase cphase(commTimer_);
          ScopedWallPhase wait(recvWaitTimer_);
          HEMO_TSPAN(kHaloRecvWait, "halo.recv");
          comm_->recvInto(r, kHaloTag, recvFlat_.data() + off, count);
        }
        ScopedPhase sphase(streamTimer_);
        HEMO_TSPAN(kStream, "stream.scatter");
        for (std::uint32_t k = off; k < off + count; ++k) {
          const RecvDst d = recvDst_[k];
          ptrs.fdst[d.dir][static_cast<std::size_t>(d.dest) * S] =
              recvFlat_[k];
        }
      }
    }
  }

  template <int S>
  void processFrontierSite(const CollisionCtx& ctx, const SweepPtrs& ptrs,
                           std::uint32_t l) {
    double fl[kQ];
    for (int i = 0; i < kQ; ++i) {
      fl[i] = ptrs.fsrc[i][static_cast<std::size_t>(l) * S];
    }
    const auto ext = static_cast<std::size_t>(ptrs.extOf[l]);
    relaxSite(ctx, fl, ext);
    scatterFrontierOps<S>(ctx, ptrs, l, fl, 1);
  }

  /// Apply the CSR boundary/halo actions of frontier site l to its
  /// post-collision populations fl[i * flStride] (flStride lets the SIMD
  /// path scatter straight out of a direction-major strip buffer).
  template <int S>
  void scatterFrontierOps(const CollisionCtx& ctx, const SweepPtrs& ptrs,
                          std::uint32_t l, const double* fl,
                          std::size_t flStride) {
    const auto& set = Lattice::kSet;
    const auto ext = static_cast<std::size_t>(ptrs.extOf[l]);
    ptrs.fdst[0][static_cast<std::size_t>(l) * S] = fl[0];
    const std::uint32_t begin = frontierOpStart_[l];
    const std::uint32_t end = frontierOpStart_[l + 1];
    for (std::uint32_t k = begin; k < end; ++k) {
      const FrontierOp op = frontierOps_[k];
      const auto dir = static_cast<std::size_t>(op.dir);
      switch (static_cast<OpKind>(op.kind)) {
        case OpKind::kPushLocal:
          ptrs.fdst[dir][static_cast<std::size_t>(op.index) * S] =
              fl[dir * flStride];
          break;
        case OpKind::kSend:
          ptrs.sendFlat[static_cast<std::size_t>(op.index)] =
              fl[dir * flStride];
          break;
        case OpKind::kWall:
          // Halfway bounce-back off the vessel wall.
          ptrs.fdst[dir][static_cast<std::size_t>(l) * S] =
              fl[static_cast<std::size_t>(set.opposite[dir]) * flStride];
          break;
        case OpKind::kIolet: {
          const auto id = static_cast<std::size_t>(op.index);
          const Vec3d c = set.c[dir].template cast<double>();
          const double w = set.w[dir];
          const double bounce =
              fl[static_cast<std::size_t>(set.opposite[dir]) * flStride];
          if (ioletIsVelocityBc_[id]) {
            // Ladd bounce-back off a "wall" moving at the prescribed
            // iolet velocity: injects the target momentum flux.
            const double rho = ctx.rhoOut[ext];
            ptrs.fdst[dir][static_cast<std::size_t>(l) * S] =
                bounce + 6.0 * w * rho * c.dot(ioletVelocity_[id]);
          } else {
            // Anti-bounce-back pressure boundary at the prescribed
            // density, using the site's own velocity as the boundary
            // value.
            const double rhoIo = ioletDensity_[id];
            const Vec3d u = ctx.uOut[ext];
            const double cu = c.dot(u);
            ptrs.fdst[dir][static_cast<std::size_t>(l) * S] =
                -bounce + 2.0 * w * rhoIo *
                              (1.0 + 4.5 * cu * cu - 1.5 * u.dot(u));
          }
          break;
        }
      }
    }
  }

  /// Boundary actions (wall/iolet/halo-send) of frontier site l in the
  /// SIMD path — the local pushes were already retired direction-major
  /// from the strip, so this walks the short boundary-only CSR. `fl`
  /// holds the post-collision populations at stride flStride (the
  /// direction-major strip buffer).
  void scatterBoundaryOps(const CollisionCtx& ctx, const SweepPtrs& ptrs,
                          std::uint32_t l, const double* fl,
                          std::size_t flStride) {
    const std::uint32_t begin = frontierBoundaryStart_[l];
    const std::uint32_t end = frontierBoundaryStart_[l + 1];
    if (begin == end) return;
    const auto& set = Lattice::kSet;
    const auto ext = static_cast<std::size_t>(ptrs.extOf[l]);
    for (std::uint32_t k = begin; k < end; ++k) {
      const FrontierOp op = frontierBoundaryOps_[k];
      const auto dir = static_cast<std::size_t>(op.dir);
      switch (static_cast<OpKind>(op.kind)) {
        case OpKind::kPushLocal:
          break;  // never present in the boundary-only CSR
        case OpKind::kSend:
          ptrs.sendFlat[static_cast<std::size_t>(op.index)] =
              fl[dir * flStride];
          break;
        case OpKind::kWall:
          ptrs.fdst[dir][static_cast<std::size_t>(l)] =
              fl[static_cast<std::size_t>(set.opposite[dir]) * flStride];
          break;
        case OpKind::kIolet: {
          const auto id = static_cast<std::size_t>(op.index);
          const Vec3d c = set.c[dir].template cast<double>();
          const double w = set.w[dir];
          const double bounce =
              fl[static_cast<std::size_t>(set.opposite[dir]) * flStride];
          if (ioletIsVelocityBc_[id]) {
            const double rho = ctx.rhoOut[ext];
            ptrs.fdst[dir][static_cast<std::size_t>(l)] =
                bounce + 6.0 * w * rho * c.dot(ioletVelocity_[id]);
          } else {
            const double rhoIo = ioletDensity_[id];
            const Vec3d u = ctx.uOut[ext];
            const double cu = c.dot(u);
            ptrs.fdst[dir][static_cast<std::size_t>(l)] =
                -bounce + 2.0 * w * rhoIo *
                              (1.0 + 4.5 * cu * cu - 1.5 * u.dot(u));
          }
          break;
        }
      }
    }
  }

  // --- vectorised fused kernel (SoA layout only) -------------------------

  /// A maximal unit-stride stretch of strip writes: `len` consecutive
  /// source slots landing in `len` consecutive destination slots.
  struct StreamRun {
    std::uint32_t srcK;  ///< first vector-relative source index of the run
    std::uint32_t dst;   ///< destination index of that first site
    std::uint32_t len;
  };

  /// Retire this strip's share of the macro-field runs: rho as straight
  /// copies, u re-interleaved to Vec3d — per run a single sequential
  /// destination stream each.
  void drainMacroRuns(const CollisionCtx& ctx,
                      const std::vector<StreamRun>& runs, std::size_t& cur,
                      const double* strip, std::uint32_t base,
                      std::uint32_t stripEnd) {
    const double* rhoS =
        strip + static_cast<std::size_t>(kQ) * kBulkStrip - base;
    const double* uxS =
        strip + static_cast<std::size_t>(kQ + 1) * kBulkStrip - base;
    const double* uyS =
        strip + static_cast<std::size_t>(kQ + 2) * kBulkStrip - base;
    const double* uzS =
        strip + static_cast<std::size_t>(kQ + 3) * kBulkStrip - base;
    while (cur < runs.size() && runs[cur].srcK < stripEnd) {
      const StreamRun r = runs[cur];
      simd::copyDoubles(ctx.rhoOut + r.dst, rhoS + r.srcK, r.len, false);
      Vec3d* u = ctx.uOut + r.dst;
      for (std::uint32_t k = 0; k < r.len; ++k) {
        u[k] = Vec3d{uxS[r.srcK + k], uyS[r.srcK + k], uzS[r.srcK + k]};
      }
      ++cur;
    }
  }

  /// stepFused with both sweeps rewritten as SIMD strips: collision runs
  /// kBulkStrip sites at a time into a direction-major L2 buffer and the
  /// streamed writes retire as unit-stride runs, one direction at a time.
  /// Frontier boundary actions (walls/iolets/halo sends) and the
  /// sub-group tails keep the scalar path (branchy minority).
  void stepSimd() {
    const CollisionCtx ctx = collisionCtx();
    const SweepPtrs ptrs = sweepPtrs();
    const auto n = static_cast<std::uint32_t>(domain_->numOwned());
    const std::uint32_t nf = reorder_.numFrontier;

    constexpr auto kW = static_cast<std::uint32_t>(simd::kWidth);
    // Frontier pass: collision is uniform, so it vectorises exactly like
    // the bulk (frontier sites are contiguous at the front of every
    // plane). Local pushes retire direction-major through the dst tables;
    // only the boundary-only CSR (walls/iolets/halo sends) needs per-op
    // dispatch.
    {
      ScopedPhase phase(collideTimer_);
      HEMO_TSPAN(kCollide, "collide.frontier");
      const std::uint32_t nfVec = nf - nf % kW;
      double* strip = bulkStrip_.data();
      runCursor_.fill(0);
      wallCursor_.fill(0);
      macroCursor_ = 0;
      for (std::uint32_t base = 0; base < nfVec; base += kBulkStrip) {
        const std::uint32_t cnt = std::min(kBulkStrip, nfVec - base);
        collideStripSimd(ctx, ptrs, base, cnt, strip, kBulkStrip);
        // Macro fields first: the iolet boundary ops below read them.
        drainMacroRuns(ctx, macroRunsFrontier_, macroCursor_, strip, base,
                       base + cnt);
        // Rest population: destination is the site itself.
        simd::copyDoubles(ptrs.fdst[0] + base, strip, cnt, false);
        // Local pushes: drain each direction's unit-stride runs (kNoDst
        // lanes — the boundary ops — sit in the gaps between runs).
        const std::uint32_t stripEnd = base + cnt;
        for (int i = 1; i < kQ; ++i) {
          const auto& runs = frontierRuns_[static_cast<std::size_t>(i)];
          std::size_t& cur = runCursor_[static_cast<std::size_t>(i)];
          const double* src =
              strip + static_cast<std::size_t>(i) * kBulkStrip - base;
          while (cur < runs.size() && runs[cur].srcK < stripEnd) {
            const StreamRun r = runs[cur];
            simd::copyDoubles(ptrs.fdst[i] + r.dst, src + r.srcK, r.len,
                              false);
            ++cur;
          }
        }
        // Wall folds: fdst[i][l] = post-collision opposite(i) population
        // of site l — unit stride on both sides, drained the same way.
        for (int i = 1; i < kQ; ++i) {
          const auto& runs = frontierWallRuns_[static_cast<std::size_t>(i)];
          std::size_t& cur = wallCursor_[static_cast<std::size_t>(i)];
          const double* src =
              strip +
              static_cast<std::size_t>(
                  Lattice::kSet.opposite[static_cast<std::size_t>(i)]) *
                  kBulkStrip -
              base;
          while (cur < runs.size() && runs[cur].srcK < stripEnd) {
            const StreamRun r = runs[cur];
            simd::copyDoubles(ptrs.fdst[i] + r.dst, src + r.srcK, r.len,
                              false);
            ++cur;
          }
        }
        // Boundary CSR (iolets/halo sends only): most strips of a large
        // domain have an empty range — the offsets are monotone, so one
        // compare skips the whole per-site walk.
        if (frontierBoundaryStart_[base] != frontierBoundaryStart_[stripEnd]) {
          for (std::uint32_t k = 0; k < cnt; ++k) {
            scatterBoundaryOps(ctx, ptrs, base + k, strip + k, kBulkStrip);
          }
        }
      }
      for (std::uint32_t l = nfVec; l < nf; ++l) {
        processFrontierSite<1>(ctx, ptrs, l);
      }
    }
    {
      ScopedPhase phase(commTimer_);
      HEMO_TSPAN(kHaloSend, "halo.send");
      comm::Communicator::TrafficScope scope(*comm_, comm::Traffic::kHalo);
      for (std::size_t p = 0; p < sendPlans_.size(); ++p) {
        comm_->sendBytes(sendPlans_[p].dest, kHaloTag,
                         sendFlat_.data() + sendFlatOffset_[p],
                         sendPlans_[p].entries.size() * sizeof(double));
      }
    }
    {
      ScopedPhase phase(collideTimer_);
      ScopedWallPhase overlap(overlapTimer_);
      HEMO_TSPAN(kCollide, "collide.simd");
      // Head: bulk sites before the aligned vector start (scalar push).
      for (std::uint32_t l = nf; l < simdVecStart_; ++l) {
        double fl[kQ];
        for (int i = 0; i < kQ; ++i) fl[i] = ptrs.fsrc[i][l];
        relaxSite(ctx, fl, static_cast<std::size_t>(ptrs.extOf[l]));
        ptrs.fdst[0][l] = fl[0];
        for (int i = 1; i < kQ; ++i) {
          ptrs.fdst[i][ptrs.pdst[i][l]] = fl[i];
        }
      }
      // Aligned bulk: collide whole strips into the direction-major
      // buffer, then retire each direction's unit-stride runs one stream
      // at a time. Interleaving the 19 write streams store-by-store
      // defeats the core's full-line write combining (measured ~9x lower
      // write bandwidth), so the drain keeps exactly one destination
      // stream hot; with useNt_ the copies stream past the cache instead.
      runCursor_.fill(0);
      macroCursor_ = 0;
      double* strip = bulkStrip_.data();
      for (std::uint32_t base = 0; base < simdVecSites_; base += kBulkStrip) {
        const std::uint32_t cnt = std::min(kBulkStrip, simdVecSites_ - base);
        collideStripSimd(ctx, ptrs, simdVecStart_ + base, cnt, strip,
                         kBulkStrip);
        drainMacroRuns(ctx, macroRunsBulk_, macroCursor_, strip, base,
                       base + cnt);
        // Rest population: destination is the site itself — one
        // contiguous copy per strip.
        simd::copyDoubles(ptrs.fdst[0] + simdVecStart_ + base, strip, cnt,
                          useNt_);
        // Moving populations: drain this strip's unit-stride runs.
        const std::uint32_t stripEnd = base + cnt;
        for (int i = 1; i < kQ; ++i) {
          const auto& runs = simdRuns_[static_cast<std::size_t>(i)];
          std::size_t& cur = runCursor_[static_cast<std::size_t>(i)];
          const double* src =
              strip + static_cast<std::size_t>(i) * kBulkStrip - base;
          while (cur < runs.size() && runs[cur].srcK < stripEnd) {
            const StreamRun r = runs[cur];
            simd::copyDoubles(ptrs.fdst[i] + r.dst, src + r.srcK, r.len,
                              useNt_ && r.len >= 2 * simd::kWidth);
            ++cur;
          }
        }
      }
      // Sub-group tail: scalar fused push (bulk sites are all-local).
      for (std::uint32_t l = simdVecStart_ + simdVecSites_; l < n; ++l) {
        double fl[kQ];
        for (int i = 0; i < kQ; ++i) fl[i] = ptrs.fsrc[i][l];
        relaxSite(ctx, fl, static_cast<std::size_t>(ptrs.extOf[l]));
        ptrs.fdst[0][l] = fl[0];
        for (int i = 1; i < kQ; ++i) {
          ptrs.fdst[i][ptrs.pdst[i][l]] = fl[i];
        }
      }
      if (useNt_) simd::storeFence();
    }
    {
      comm::Communicator::TrafficScope scope(*comm_, comm::Traffic::kHalo);
      for (const int r : recvRanks_) {
        const auto off = recvOffset_[static_cast<std::size_t>(r)];
        const auto count =
            recvOffset_[static_cast<std::size_t>(r) + 1] - off;
        {
          ScopedPhase cphase(commTimer_);
          ScopedWallPhase wait(recvWaitTimer_);
          HEMO_TSPAN(kHaloRecvWait, "halo.recv");
          comm_->recvInto(r, kHaloTag, recvFlat_.data() + off, count);
        }
        ScopedPhase sphase(streamTimer_);
        HEMO_TSPAN(kStream, "stream.scatter");
        for (std::uint32_t k = off; k < off + count; ++k) {
          const RecvDst d = recvDst_[k];
          ptrs.fdst[d.dir][static_cast<std::size_t>(d.dest)] = recvFlat_[k];
        }
      }
    }
  }

  /// One vector group of post-collision populations (lane w = site s0+w).
  struct VecGroup {
    simd::VecD f[kQ];
    /// Macroscopic moments of the group, staged for the strip's run
    /// drain instead of lane-scattered through extOf.
    simd::VecD rho, ux, uy, uz;
  };
  /// Strip planes: kQ post-collision populations, then rho/ux/uy/uz.
  static constexpr int kStripPlanes = kQ + 4;

  /// Collide simd::kWidth consecutive sites starting at s0 (SoA planes,
  /// unit stride, s0 a multiple of simd::kWidth so every plane load is an
  /// aligned full vector) into g. Per lane the arithmetic replicates
  /// relaxSite() operation for operation, so the trajectories of kSimd
  /// and kFused agree to round-off (the paired equivalence tests hold
  /// 1e-12 over 100 steps). Stress/forcing are hoisted to template
  /// parameters — with 19 live population vectors the register file is
  /// full, and per-direction runtime branches are measurable.
  void collideGroupSimd(const CollisionCtx& ctx, const SweepPtrs& ptrs,
                        std::size_t s0, VecGroup& g) {
    if (ctx.stress) {
      if (ctx.forced) {
        collideGroupSimdImpl<true, true>(ctx, ptrs, s0, g);
      } else {
        collideGroupSimdImpl<true, false>(ctx, ptrs, s0, g);
      }
    } else {
      if (ctx.forced) {
        collideGroupSimdImpl<false, true>(ctx, ptrs, s0, g);
      } else {
        collideGroupSimdImpl<false, false>(ctx, ptrs, s0, g);
      }
    }
  }

  template <bool Stress, bool Forced>
  void collideGroupSimdImpl(const CollisionCtx& ctx, const SweepPtrs& ptrs,
                            std::size_t s0, VecGroup& g) {
    using simd::VecD;
    using simd::broadcast;
    using simd::fmadd;
    constexpr int W = simd::kWidth;
    const auto& d = dir_;
    const auto& set = Lattice::kSet;
    const VecD one = broadcast(1.0);
    const VecD half = broadcast(0.5);
    const VecD three = broadcast(3.0);
    const VecD fourHalf = broadcast(4.5);
    const VecD mThreeHalf = broadcast(-1.5);
    const VecD omega = broadcast(ctx.omega);

    VecD* fv = g.f;
    VecD rho = simd::zero();
    VecD mx = simd::zero(), my = simd::zero(), mz = simd::zero();
    for (int i = 0; i < kQ; ++i) {
      fv[i] = simd::load(ptrs.fsrc[i] + s0);
      rho += fv[i];
      // c components are -1/0/1; zero terms change no bit of the sums.
      const double cx = d.cx[static_cast<std::size_t>(i)];
      const double cy = d.cy[static_cast<std::size_t>(i)];
      const double cz = d.cz[static_cast<std::size_t>(i)];
      if (cx != 0.0) mx = fmadd(broadcast(cx), fv[i], mx);
      if (cy != 0.0) my = fmadd(broadcast(cy), fv[i], my);
      if (cz != 0.0) mz = fmadd(broadcast(cz), fv[i], mz);
    }
    const VecD invRho = one / rho;
    VecD ux = mx * invRho, uy = my * invRho, uz = mz * invRho;
    if constexpr (Forced) {
      const VecD h = half * invRho;
      ux = fmadd(broadcast(ctx.F.x), h, ux);
      uy = fmadd(broadcast(ctx.F.y), h, uy);
      uz = fmadd(broadcast(ctx.F.z), h, uz);
    }
    // Macroscopic moments are not scattered here: they ride along in the
    // group and the strip drains them as unit-stride external-index runs
    // (the per-lane extOf scatter was a measured ~10% of the step).
    g.rho = rho;
    g.ux = ux;
    g.uy = uy;
    g.uz = uz;

    VecD u2 = ux * ux;
    u2 = fmadd(uy, uy, u2);
    u2 = fmadd(uz, uz, u2);
    const VecD eqBase = fmadd(mThreeHalf, u2, one);

    [[maybe_unused]] VecD pxx, pyy, pzz, pxy, pxz, pyz;
    if constexpr (Stress) {
      pxx = pyy = pzz = pxy = pxz = pyz = simd::zero();
    }

    // Split loops with per-direction spill arrays on purpose: a single
    // fused pass was measured ~45% slower here — with 19 live population
    // vectors the register allocator handles several small loops better
    // than one big body.
    VecD feq[kQ], cus[kQ];
    for (int i = 0; i < kQ; ++i) {
      const double cx = d.cx[static_cast<std::size_t>(i)];
      const double cy = d.cy[static_cast<std::size_t>(i)];
      const double cz = d.cz[static_cast<std::size_t>(i)];
      VecD cu = simd::zero();
      if (cx != 0.0) cu = fmadd(broadcast(cx), ux, cu);
      if (cy != 0.0) cu = fmadd(broadcast(cy), uy, cu);
      if (cz != 0.0) cu = fmadd(broadcast(cz), uz, cu);
      cus[i] = cu;
      const VecD poly = fmadd(cu, fmadd(fourHalf, cu, three), eqBase);
      feq[i] = broadcast(d.w[static_cast<std::size_t>(i)]) * rho * poly;
    }

    if constexpr (Stress) {
      for (int i = 0; i < kQ; ++i) {
        const VecD fneq = fv[i] - feq[i];
        const double cx = d.cx[static_cast<std::size_t>(i)];
        const double cy = d.cy[static_cast<std::size_t>(i)];
        const double cz = d.cz[static_cast<std::size_t>(i)];
        if (cx != 0.0) pxx += fneq;
        if (cy != 0.0) pyy += fneq;
        if (cz != 0.0) pzz += fneq;
        if (cx * cy != 0.0) pxy = fmadd(broadcast(cx * cy), fneq, pxy);
        if (cx * cz != 0.0) pxz = fmadd(broadcast(cx * cz), fneq, pxz);
        if (cy * cz != 0.0) pyz = fmadd(broadcast(cy * cz), fneq, pyz);
      }
    }

    if (!ctx.trt) {
      for (int i = 0; i < kQ; ++i) {
        fv[i] = fmadd(omega, feq[i] - fv[i], fv[i]);
      }
    } else {
      const VecD omegaMinus = broadcast(ctx.omegaMinus);
      for (int i = 0; i < kQ; ++i) {
        const int j = set.opposite[static_cast<std::size_t>(i)];
        if (j < i) continue;
        const VecD fPlus = half * (fv[i] + fv[j]);
        const VecD fMinus = half * (fv[i] - fv[j]);
        const VecD eqPlus = half * (feq[i] + feq[j]);
        const VecD eqMinus = half * (feq[i] - feq[j]);
        const VecD dPlus = omega * (eqPlus - fPlus);
        const VecD dMinus = omegaMinus * (eqMinus - fMinus);
        fv[i] += dPlus + dMinus;
        if (j != i) fv[j] += dPlus - dMinus;
      }
    }

    if constexpr (Forced) {
      const VecD fPref = broadcast(1.0 - 0.5 * ctx.omega);
      const VecD nine = broadcast(9.0);
      // A zero force component contributes only a ±0 addend to termF, so
      // its whole chain is skipped: a third of the force math per absent
      // axis (body forces are typically single-axis), with a result that
      // can differ from the full sum in at most the sign of an exact
      // zero.
      const bool hasFx = ctx.F.x != 0.0;
      const bool hasFy = ctx.F.y != 0.0;
      const bool hasFz = ctx.F.z != 0.0;
      for (int i = 0; i < kQ; ++i) {
        const VecD nineCu = nine * cus[i];
        VecD termF = simd::zero();
        bool first = true;
        if (hasFx) {
          const VecD vcx = broadcast(d.cx[static_cast<std::size_t>(i)]);
          const VecD t = three * (vcx - ux) + vcx * nineCu;
          termF = t * broadcast(ctx.F.x);
          first = false;
        }
        if (hasFy) {
          const VecD vcy = broadcast(d.cy[static_cast<std::size_t>(i)]);
          const VecD t = three * (vcy - uy) + vcy * nineCu;
          const VecD vF = broadcast(ctx.F.y);
          termF = first ? t * vF : fmadd(t, vF, termF);
          first = false;
        }
        if (hasFz) {
          const VecD vcz = broadcast(d.cz[static_cast<std::size_t>(i)]);
          const VecD t = three * (vcz - uz) + vcz * nineCu;
          const VecD vF = broadcast(ctx.F.z);
          termF = first ? t * vF : fmadd(t, vF, termF);
        }
        fv[i] = fmadd(
            fPref * broadcast(d.w[static_cast<std::size_t>(i)]), termF,
            fv[i]);
      }
    }

    if constexpr (Stress) {
      const VecD pref = broadcast(ctx.stressPrefactor);
      VecD sxx = pxx * pref, syy = pyy * pref, szz = pzz * pref;
      const VecD sxy = pxy * pref, sxz = pxz * pref, syz = pyz * pref;
      const VecD trace3 = (sxx + syy + szz) / three;
      sxx = sxx - trace3;
      syy = syy - trace3;
      szz = szz - trace3;
      alignas(64) double t[6][W];
      simd::store(t[0], sxx);
      simd::store(t[1], syy);
      simd::store(t[2], szz);
      simd::store(t[3], sxy);
      simd::store(t[4], sxz);
      simd::store(t[5], syz);
      for (int w = 0; w < W; ++w) {
        const auto ext = static_cast<std::size_t>(
            ptrs.extOf[s0 + static_cast<std::size_t>(w)]);
        ctx.stressOut[ext].m = {t[0][w], t[1][w], t[2][w],
                                t[3][w], t[4][w], t[5][w]};
      }
    }
  }

  /// Collide `count` sites (a multiple of simd::kWidth, at most `stride`;
  /// site0 itself a multiple of simd::kWidth) from site0 into the
  /// direction-major buffer strip[i*stride + k].
  void collideStripSimd(const CollisionCtx& ctx, const SweepPtrs& ptrs,
                        std::uint32_t site0, std::uint32_t count,
                        double* strip, std::uint32_t stride) {
    VecGroup g;
    for (std::uint32_t k = 0; k < count;
         k += static_cast<std::uint32_t>(simd::kWidth)) {
      collideGroupSimd(ctx, ptrs, site0 + k, g);
      for (int i = 0; i < kQ; ++i) {
        simd::store(strip + static_cast<std::size_t>(i) * stride + k,
                    g.f[i]);
      }
      simd::store(strip + static_cast<std::size_t>(kQ) * stride + k, g.rho);
      simd::store(strip + static_cast<std::size_t>(kQ + 1) * stride + k,
                  g.ux);
      simd::store(strip + static_cast<std::size_t>(kQ + 2) * stride + k,
                  g.uy);
      simd::store(strip + static_cast<std::size_t>(kQ + 3) * stride + k,
                  g.uz);
    }
  }

  // --- reference three-phase kernel --------------------------------------
  // The pre-fusion hot path, preserved as the performance and correctness
  // baseline: Vec3-based collision arithmetic exactly as the original
  // collide() computed it, blocking halo exchange, then a pull-stream.

  void relaxSiteReference(const CollisionCtx& ctx, double* fl,
                          std::size_t ext) {
    const auto& set = Lattice::kSet;
    double rho = 0.0;
    Vec3d mom{0, 0, 0};
    for (int i = 0; i < kQ; ++i) {
      rho += fl[i];
      mom += set.c[static_cast<std::size_t>(i)].template cast<double>() *
             fl[i];
    }
    // Guo: physical velocity includes half the force impulse.
    Vec3d u = mom / rho;
    if (ctx.forced) u += ctx.F * (0.5 / rho);
    macro_.rho[ext] = rho;
    macro_.u[ext] = u;

    double feq[kQ];
    for (int i = 0; i < kQ; ++i) feq[i] = equilibrium<Lattice>(i, rho, u);

    if (ctx.stress) {
      SymTensor3 pi{};
      for (int i = 0; i < kQ; ++i) {
        const double fneq = fl[i] - feq[i];
        const Vec3d c =
            set.c[static_cast<std::size_t>(i)].template cast<double>();
        pi.xx() += fneq * c.x * c.x;
        pi.yy() += fneq * c.y * c.y;
        pi.zz() += fneq * c.z * c.z;
        pi.xy() += fneq * c.x * c.y;
        pi.xz() += fneq * c.x * c.z;
        pi.yz() += fneq * c.y * c.z;
      }
      // Deviatoric part of the relaxed non-equilibrium momentum flux.
      SymTensor3 sigma = pi * ctx.stressPrefactor;
      const double trace3 = (sigma.xx() + sigma.yy() + sigma.zz()) / 3.0;
      sigma.xx() -= trace3;
      sigma.yy() -= trace3;
      sigma.zz() -= trace3;
      macro_.stress[ext] = sigma;
    }

    if (!ctx.trt) {
      for (int i = 0; i < kQ; ++i) {
        fl[i] += ctx.omega * (feq[i] - fl[i]);
      }
    } else {
      for (int i = 0; i < kQ; ++i) {
        const int j = set.opposite[static_cast<std::size_t>(i)];
        if (j < i) continue;
        const double fPlus = 0.5 * (fl[i] + fl[j]);
        const double fMinus = 0.5 * (fl[i] - fl[j]);
        const double eqPlus = 0.5 * (feq[i] + feq[j]);
        const double eqMinus = 0.5 * (feq[i] - feq[j]);
        const double dPlus = ctx.omega * (eqPlus - fPlus);
        const double dMinus = ctx.omegaMinus * (eqMinus - fMinus);
        fl[i] += dPlus + dMinus;
        if (j != i) fl[j] += dPlus - dMinus;
      }
    }

    if (ctx.forced) {
      const double pref = 1.0 - 0.5 * ctx.omega;
      for (int i = 0; i < kQ; ++i) {
        const Vec3d c =
            set.c[static_cast<std::size_t>(i)].template cast<double>();
        const double cu = c.dot(u);
        const Vec3d term = (c - u) * 3.0 + c * (9.0 * cu);
        fl[i] += pref * set.w[static_cast<std::size_t>(i)] * term.dot(ctx.F);
      }
    }
  }

  template <int S>
  void collide() {
    ScopedPhase phase(collideTimer_);
    HEMO_TSPAN(kCollide, "collide");
    const CollisionCtx ctx = collisionCtx();
    const std::size_t n = domain_->numOwned();
    double* base[kQ];
    for (int i = 0; i < kQ; ++i) base[i] = f_.dirBase(i);
    for (std::size_t l = 0; l < n; ++l) {
      double fl[kQ];
      for (int i = 0; i < kQ; ++i) fl[i] = base[i][l * S];
      relaxSiteReference(ctx, fl,
                         static_cast<std::size_t>(reorder_.externalOf[l]));
      for (int i = 0; i < kQ; ++i) base[i][l * S] = fl[i];
    }
  }

  template <int S>
  void exchange() {
    ScopedPhase phase(commTimer_);
    HEMO_TSPAN(kHaloSend, "halo.exchange");
    comm::Communicator::TrafficScope scope(*comm_, comm::Traffic::kHalo);
    for (std::size_t p = 0; p < sendPlans_.size(); ++p) {
      const auto& plan = sendPlans_[p];
      double* buf = sendFlat_.data() + sendFlatOffset_[p];
      for (std::size_t k = 0; k < plan.entries.size(); ++k) {
        const auto& e = plan.entries[k];
        buf[k] =
            f_.dirBase(e.velocity)[static_cast<std::size_t>(e.local) * S];
      }
      comm_->sendBytes(plan.dest, kHaloTag, buf,
                       plan.entries.size() * sizeof(double));
    }
    for (const int r : recvRanks_) {
      const auto off = recvOffset_[static_cast<std::size_t>(r)];
      const auto count = recvOffset_[static_cast<std::size_t>(r) + 1] - off;
      comm_->recvInto(r, kHaloTag, recvFlat_.data() + off, count);
    }
  }

  template <int S>
  void stream() {
    ScopedPhase phase(streamTimer_);
    HEMO_TSPAN(kStream, "stream");
    const std::size_t n = domain_->numOwned();
    const auto& set = Lattice::kSet;
    // Rest population never moves.
    {
      const double* src = f_.dirBase(0);
      double* out = fNext_.dirBase(0);
      for (std::size_t l = 0; l < n; ++l) out[l * S] = src[l * S];
    }
    for (int i = 1; i < kQ; ++i) {
      const int opp = set.opposite[static_cast<std::size_t>(i)];
      const auto& srcs = pull_[static_cast<std::size_t>(i)];
      double* out = fNext_.dirBase(i);
      const double* bounce = f_.dirBase(opp);
      const double* local = f_.dirBase(i);
      for (std::size_t l = 0; l < n; ++l) {
        const PullSrc s = srcs[l];
        switch (s.kind) {
          case PullKind::kLocal:
            out[l * S] = local[static_cast<std::size_t>(s.index) * S];
            break;
          case PullKind::kRecv:
            out[l * S] = recvFlat_[static_cast<std::size_t>(s.index)];
            break;
          case PullKind::kWall:
            // Halfway bounce-back off the vessel wall.
            out[l * S] = bounce[l * S];
            break;
          case PullKind::kIolet: {
            const auto id = static_cast<std::size_t>(s.index);
            const auto ext = static_cast<std::size_t>(reorder_.externalOf[l]);
            const Vec3d c =
                set.c[static_cast<std::size_t>(i)].template cast<double>();
            const double w = set.w[static_cast<std::size_t>(i)];
            if (ioletIsVelocityBc_[id]) {
              // Ladd bounce-back off a "wall" moving at the prescribed
              // iolet velocity: injects the target momentum flux.
              const double rho = macro_.rho[ext];
              out[l * S] = bounce[l * S] +
                           6.0 * w * rho * c.dot(ioletVelocity_[id]);
            } else {
              // Anti-bounce-back pressure boundary at the prescribed
              // density, using the site's own velocity as the boundary
              // value.
              const double rhoIo = ioletDensity_[id];
              const Vec3d u = macro_.u[ext];
              const double cu = c.dot(u);
              out[l * S] = -bounce[l * S] +
                           2.0 * w * rhoIo *
                               (1.0 + 4.5 * cu * cu - 1.5 * u.dot(u));
            }
            break;
          }
        }
      }
    }
  }

  /// Recompute cached moments from the current distributions (used after
  /// external writes such as checkpoint restore).
  void refreshMacros() {
    const std::size_t n = domain_->numOwned();
    const auto& set = Lattice::kSet;
    for (std::size_t l = 0; l < n; ++l) {
      double rho = 0.0;
      Vec3d mom{0, 0, 0};
      for (int i = 0; i < kQ; ++i) {
        const double fi = f_.at(i, l);
        rho += fi;
        mom += set.c[static_cast<std::size_t>(i)].template cast<double>() * fi;
      }
      const auto ext = static_cast<std::size_t>(reorder_.externalOf[l]);
      macro_.rho[ext] = rho;
      macro_.u[ext] = mom / rho;
    }
  }

  struct SendEntry {
    std::uint32_t local;  ///< internal site index
    std::uint16_t velocity;
  };
  struct SendPlan {
    int dest = 0;
    std::vector<SendEntry> entries;
  };

  const DomainMap* domain_;
  comm::Communicator* comm_;
  LbParams params_;
  DirConsts dir_ = makeDirConsts();
  std::vector<double> ioletDensity_;
  std::vector<Vec3d> ioletVelocity_;
  std::vector<std::uint8_t> ioletIsVelocityBc_;

  SiteReordering reorder_;

  /// Distributions in internal (frontier-first) site order, behind the
  /// layout-agnostic DistField (SoA planes or AoS records).
  DistField<kQ> f_;
  DistField<kQ> fNext_;
  /// Unit-stride push-destination runs of the SIMD bulk sweep: within each
  /// kBulkStrip strip, consecutive bulk sites of direction i stream to
  /// consecutive fNext slots (row-major bulk order makes these runs long).
  std::array<std::vector<StreamRun>, kQ> simdRuns_;
  std::array<std::size_t, kQ> runCursor_{};
  std::uint32_t simdVecStart_ = 0;  ///< first (kWidth-aligned) vector site
  std::uint32_t simdVecSites_ = 0;  ///< bulk sites covered by vector groups
  simd::AVector<double> bulkStrip_;  ///< direction-major bulk store strip
  bool useNt_ = false;               ///< resolved NtStores policy
  /// SIMD frontier split: per direction, the local push destination of
  /// each frontier site (kNoDst when that lane is a boundary op), plus
  /// the boundary-only CSR the per-op dispatch shrinks to.
  static constexpr std::uint32_t kNoDst = 0xFFFFFFFFu;
  std::array<std::vector<std::uint32_t>, kQ> frontierLocalDst_;
  std::vector<std::uint32_t> frontierBoundaryStart_;
  std::vector<FrontierOp> frontierBoundaryOps_;
  /// Unit-stride runs over frontierLocalDst_ (same shape as simdRuns_),
  /// plus the wall-fold runs (srcK == dst: the site folds into itself)
  /// and their per-direction drain cursors.
  std::array<std::vector<StreamRun>, kQ> frontierRuns_;
  std::array<std::vector<StreamRun>, kQ> frontierWallRuns_;
  std::array<std::size_t, kQ> wallCursor_{};
  /// Unit-stride macro-field runs (srcK internal-relative, dst external).
  std::vector<StreamRun> macroRunsFrontier_;
  std::vector<StreamRun> macroRunsBulk_;
  std::size_t macroCursor_ = 0;
  /// Pull table (reference kernel), internal order.
  std::array<std::vector<PullSrc>, kQ> pull_;
  /// Local push targets per direction (fused kernel, bulk range only).
  std::array<std::vector<std::uint32_t>, kQ> push_;
  /// Fused boundary/halo actions of the frontier sites (CSR).
  std::vector<std::uint32_t> frontierOpStart_;
  std::vector<FrontierOp> frontierOps_;

  std::vector<SendPlan> sendPlans_;
  /// Persistent flat send storage; plan p owns [sendFlatOffset_[p], ...).
  std::vector<double> sendFlat_;
  std::vector<std::size_t> sendFlatOffset_;
  std::vector<int> recvRanks_;
  std::vector<std::uint32_t> recvOffset_;
  std::vector<double> recvFlat_;
  /// fNext destination of each flat receive slot (fused kernel scatter).
  std::vector<RecvDst> recvDst_;

  /// Macroscopic fields in external (DomainMap) site order.
  MacroFields macro_;
  std::uint64_t stepsDone_ = 0;
  PhaseTimer collideTimer_, streamTimer_, commTimer_;
  WallPhaseTimer overlapTimer_, recvWaitTimer_;
};

using SolverD3Q19 = Solver<D3Q19>;
using SolverD3Q15 = Solver<D3Q15>;
using SolverD3Q27 = Solver<D3Q27>;

}  // namespace hemo::lb
