#pragma once
/// \file solver.hpp
/// \brief Distributed sparse-geometry lattice-Boltzmann solver.
///
/// The method matches HemeLB's core: indirect addressing over fluid sites
/// only, BGK or TRT collision, halfway bounce-back walls, anti-bounce-back
/// pressure inlets/outlets, Guo forcing, and per-step halo exchange of the
/// distribution values that stream across rank boundaries.
///
/// Two kernels drive the hot path (LbParams::kernel):
///
/// * **kFused** (default): one pass per site fuses collision and streaming.
///   Owned sites are internally reordered frontier-first (see
///   SiteReordering): the frontier pass collides every site whose update
///   touches a rank boundary, wall or iolet, applies the local boundary
///   rules, and drops the outgoing halo populations straight into
///   persistent send buffers; the halo messages are then posted and the
///   bulk sites — all-local, Morton-sorted, branch-free push loop — are
///   processed *while the messages are in flight*; finally the receives
///   are drained directly into the frontier sites' fNext slots. This
///   eliminates the intermediate full-lattice read/write round trip of the
///   three-phase path and hides communication behind the bulk sweep.
/// * **kReference**: the textbook three-phase collide → blocking exchange →
///   pull-stream, kept for paired equivalence testing and benchmarking.
///
/// Both kernels perform the identical floating-point update per site (the
/// collision is shared), so their trajectories agree bitwise. Streaming
/// uses f_i(x, t+1) = f*_i(x − c_i, t); the fused kernel realises it as a
/// push from the collided site, the reference kernel as a pull at the
/// destination — same values, different sweep structure.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "comm/communicator.hpp"
#include "lb/domain_map.hpp"
#include "lb/lattice.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/morton.hpp"
#include "util/timer.hpp"

namespace hemo::lb {

/// Fixed point-to-point tag for halo traffic (below comm::kMaxUserTag).
inline constexpr int kHaloTag = 100;

struct LbParams {
  double tau = 0.8;
  enum class Collision { kBgk, kTrt } collision = Collision::kBgk;
  /// TRT "magic" parameter Λ; 3/16 gives exact mid-link bounce-back walls.
  double trtMagic = 3.0 / 16.0;
  /// Uniform body force (lattice units), applied with Guo forcing.
  Vec3d bodyForce{0, 0, 0};
  /// Also accumulate the deviatoric stress tensor during collision.
  bool computeStress = false;
  /// Hot-path kernel; kReference is the three-phase collide/exchange/stream
  /// sweep kept for equivalence testing and benchmarking.
  enum class Kernel { kFused, kReference } kernel = Kernel::kFused;

  /// Kinematic viscosity implied by tau (lattice units).
  double viscosity() const { return kCs2 * (tau - 0.5); }
};

template <typename Lattice>
class Solver {
 public:
  static constexpr int kQ = Lattice::kQ;
  /// Bulk sites collided per block in the fused kernel; the block buffer
  /// (kBulkBlock * kQ doubles) must stay L1-resident.
  static constexpr std::uint32_t kBulkBlock = 64;

  Solver(const DomainMap& domain, comm::Communicator& comm,
         const LbParams& params)
      : domain_(&domain), comm_(&comm), params_(params) {
    HEMO_CHECK_MSG(params.tau > 0.5, "tau must exceed 0.5 for stability");
    for (const auto& io : domain.lattice().iolets()) {
      ioletDensity_.push_back(io.density);
      ioletVelocity_.push_back(io.normal.normalized() * io.speed);
      ioletIsVelocityBc_.push_back(io.bc == geometry::Iolet::Bc::kVelocity);
    }
    buildPullTable();
    initEquilibrium(1.0, Vec3d{0, 0, 0});
  }

  const DomainMap& domain() const { return *domain_; }
  const LbParams& params() const { return params_; }
  std::uint64_t stepsDone() const { return stepsDone_; }

  /// Rebase the step counter (checkpoint restore): the restored run then
  /// reports the same stepsDone() as the writing run did.
  void setStepsDone(std::uint64_t steps) { stepsDone_ = steps; }

  /// The frontier/bulk internal permutation (external indexing unchanged).
  const SiteReordering& reordering() const { return reorder_; }

  /// Override an iolet's target density mid-run (computational steering).
  void setIoletDensity(std::size_t ioletId, double density) {
    HEMO_CHECK(ioletId < ioletDensity_.size());
    ioletDensity_[ioletId] = density;
  }
  double ioletDensity(std::size_t ioletId) const {
    return ioletDensity_[ioletId];
  }

  /// Override a velocity iolet's target velocity (steering). Also switches
  /// the iolet to the velocity boundary condition.
  void setIoletVelocity(std::size_t ioletId, const Vec3d& velocity) {
    HEMO_CHECK(ioletId < ioletVelocity_.size());
    ioletVelocity_[ioletId] = velocity;
    ioletIsVelocityBc_[ioletId] = true;
  }
  Vec3d ioletVelocity(std::size_t ioletId) const {
    return ioletVelocity_[ioletId];
  }

  /// Change relaxation time mid-run (steering). Keeps tau > 0.5.
  void setTau(double tau) {
    HEMO_CHECK(tau > 0.5);
    params_.tau = tau;
  }

  void setBodyForce(const Vec3d& f) { params_.bodyForce = f; }

  /// Reset all distributions to equilibrium at (rho, u).
  void initEquilibrium(double rho, const Vec3d& u) {
    const std::size_t n = domain_->numOwned();
    double feq[kQ];
    for (int i = 0; i < kQ; ++i) feq[i] = equilibrium<Lattice>(i, rho, u);
    for (int i = 0; i < kQ; ++i) {
      f_[static_cast<std::size_t>(i)].assign(n, feq[i]);
      fNext_[static_cast<std::size_t>(i)].assign(n, 0.0);
    }
    macro_.rho.assign(n, rho);
    macro_.u.assign(n, u);
    if (params_.computeStress) macro_.stress.assign(n, SymTensor3{});
  }

  /// Initialise every owned site to the equilibrium of (rho, u) returned by
  /// `fn(worldPos)` — used to seed perturbed or analytic initial states.
  template <typename F>
  void initWith(F&& fn) {
    const std::size_t n = domain_->numOwned();
    for (std::size_t e = 0; e < n; ++e) {
      const Vec3d w = domain_->lattice().siteWorld(
          domain_->globalOf(static_cast<std::uint32_t>(e)));
      const auto [rho, u] = fn(w);
      const auto l = static_cast<std::size_t>(reorder_.internalOf[e]);
      for (int i = 0; i < kQ; ++i) {
        f_[static_cast<std::size_t>(i)][l] = equilibrium<Lattice>(i, rho, u);
      }
      macro_.rho[e] = rho;
      macro_.u[e] = u;
    }
  }

  /// One full LB update.
  void step() {
    if (params_.kernel == LbParams::Kernel::kReference) {
      collide();
      exchange();
      stream();
    } else {
      stepFused();
    }
    for (int i = 0; i < kQ; ++i) {
      f_[static_cast<std::size_t>(i)].swap(fNext_[static_cast<std::size_t>(i)]);
    }
    ++stepsDone_;
  }

  void run(int steps) {
    for (int s = 0; s < steps; ++s) step();
  }

  /// Macroscopic moments at time of the last collide (pre-collision),
  /// in external (DomainMap) site order.
  const MacroFields& macro() const { return macro_; }

  /// Mass on this rank (sum of cached densities).
  double localMass() const {
    double m = 0.0;
    for (const double r : macro_.rho) m += r;
    return m;
  }

  /// Momentum on this rank.
  Vec3d localMomentum() const {
    Vec3d p{0, 0, 0};
    for (std::size_t l = 0; l < macro_.u.size(); ++l) {
      p += macro_.u[l] * macro_.rho[l];
    }
    return p;
  }

  /// Per-phase CPU time accumulated on this rank. In the fused kernel
  /// collide covers both fused passes and stream the receive scatter.
  const PhaseTimer& collideTimer() const { return collideTimer_; }
  const PhaseTimer& streamTimer() const { return streamTimer_; }
  const PhaseTimer& commTimer() const { return commTimer_; }
  /// Wall time of the bulk sweep while halo messages were in flight.
  const WallPhaseTimer& overlapTimer() const { return overlapTimer_; }
  /// Wall time blocked waiting for halo receives after the bulk sweep.
  const WallPhaseTimer& recvWaitTimer() const { return recvWaitTimer_; }

  /// Fraction of the halo-exchange window hidden behind bulk compute:
  /// overlap / (overlap + residual receive wait). Zero on the reference
  /// kernel (nothing is overlapped) and on a rank with no halo.
  double commHiddenFraction() const {
    const double denom = overlapTimer_.total() + recvWaitTimer_.total();
    return denom > 0.0 ? overlapTimer_.total() / denom : 0.0;
  }

  void resetTimers() {
    collideTimer_.reset();
    streamTimer_.reset();
    commTimer_.reset();
    overlapTimer_.reset();
    recvWaitTimer_.reset();
  }

  /// Distribution i over the owned sites in external (DomainMap) order.
  std::vector<double> distribution(int i) const {
    std::vector<double> out(domain_->numOwned());
    gatherDistribution(i, out);
    return out;
  }

  /// As distribution(), but into caller-owned storage (checkpointing).
  void gatherDistribution(int i, std::vector<double>& out) const {
    const std::size_t n = domain_->numOwned();
    out.resize(n);
    const auto& fi = f_[static_cast<std::size_t>(i)];
    for (std::size_t l = 0; l < n; ++l) {
      out[static_cast<std::size_t>(reorder_.externalOf[l])] = fi[l];
    }
  }

  /// Overwrite distribution i from external-order values (restore, tests).
  void setDistribution(int i, const std::vector<double>& values) {
    HEMO_CHECK(values.size() == domain_->numOwned());
    auto& fi = f_[static_cast<std::size_t>(i)];
    for (std::size_t e = 0; e < values.size(); ++e) {
      fi[static_cast<std::size_t>(reorder_.internalOf[e])] = values[e];
    }
    refreshMacros();
  }

 private:
  enum class PullKind : std::uint8_t { kLocal, kRecv, kWall, kIolet };
  struct PullSrc {
    PullKind kind = PullKind::kWall;
    std::uint32_t index = 0;  ///< internal idx / flat recv slot / iolet id
  };

  /// One boundary/halo action of a frontier site's fused update.
  enum class OpKind : std::uint8_t {
    kPushLocal,  ///< fNext[dir][index] = f*[dir]
    kSend,       ///< sendFlat_[index] = f*[dir]
    kWall,       ///< fNext[dir][self] = f*[opposite(dir)] (bounce-back)
    kIolet       ///< fNext[dir][self] = iolet rule (index = iolet id)
  };
  struct FrontierOp {
    std::uint32_t index = 0;
    std::uint8_t kind = 0;
    std::uint8_t dir = 0;
  };
  struct RecvDst {
    std::uint32_t dest = 0;  ///< internal site index
    std::uint16_t dir = 0;
  };

  void buildPullTable() {
    const auto& lat = domain_->lattice();
    const auto& set = Lattice::kSet;
    const std::size_t n = domain_->numOwned();

    // --- classify owned sites: bulk (every pull is local) vs frontier ----
    std::vector<std::uint8_t> isFrontier(n, 0);
    for (std::size_t e = 0; e < n; ++e) {
      const std::uint64_t g = domain_->globalOf(static_cast<std::uint32_t>(e));
      for (int i = 1; i < kQ; ++i) {
        const int gd = set.geoDir[static_cast<std::size_t>(i)];
        const auto upstream = lat.neighborId(g, geometry::oppositeDirection(gd));
        if (upstream < 0 ||
            domain_->ownerOf(static_cast<std::uint64_t>(upstream)) !=
                domain_->rank()) {
          isFrontier[e] = 1;
          break;
        }
      }
    }

    // --- internal ordering: frontier first (stable), bulk Morton-sorted --
    reorder_.externalOf.clear();
    reorder_.externalOf.reserve(n);
    for (std::size_t e = 0; e < n; ++e) {
      if (isFrontier[e]) {
        reorder_.externalOf.push_back(static_cast<std::uint32_t>(e));
      }
    }
    reorder_.numFrontier = static_cast<std::uint32_t>(reorder_.externalOf.size());
    std::vector<std::pair<std::uint64_t, std::uint32_t>> bulk;
    bulk.reserve(n - reorder_.numFrontier);
    for (std::size_t e = 0; e < n; ++e) {
      if (!isFrontier[e]) {
        bulk.emplace_back(
            morton3(lat.sitePosition(
                domain_->globalOf(static_cast<std::uint32_t>(e)))),
            static_cast<std::uint32_t>(e));
      }
    }
    std::sort(bulk.begin(), bulk.end());
    for (const auto& [key, e] : bulk) reorder_.externalOf.push_back(e);
    reorder_.internalOf.assign(n, 0);
    for (std::size_t l = 0; l < n; ++l) {
      reorder_.internalOf[reorder_.externalOf[l]] =
          static_cast<std::uint32_t>(l);
    }

    // --- pull table (reference kernel) + halo needs, internal order ------
    for (int i = 1; i < kQ; ++i) {
      pull_[static_cast<std::size_t>(i)].assign(n, PullSrc{});
    }
    // needs[r] = packed (globalUpstream * 32 + i) values this rank pulls
    // from rank r, in deterministic internal (site, velocity) order.
    std::vector<std::vector<std::uint64_t>> needs(
        static_cast<std::size_t>(comm_->size()));
    struct RecvRef {
      std::uint32_t site;  ///< internal index
      std::uint16_t dir;
      std::uint16_t owner;
      std::uint32_t pos;  ///< position within needs[owner]
    };
    std::vector<RecvRef> recvRefs;
    for (std::size_t l = 0; l < n; ++l) {
      const std::uint64_t g =
          domain_->globalOf(reorder_.externalOf[l]);
      for (int i = 1; i < kQ; ++i) {
        const int gd = set.geoDir[static_cast<std::size_t>(i)];
        const int upDir = geometry::oppositeDirection(gd);
        const auto upstream = lat.neighborId(g, upDir);
        auto& src = pull_[static_cast<std::size_t>(i)][l];
        if (upstream >= 0) {
          const int owner =
              domain_->ownerOf(static_cast<std::uint64_t>(upstream));
          if (owner == domain_->rank()) {
            src.kind = PullKind::kLocal;
            src.index = reorder_.internalOf[static_cast<std::size_t>(
                domain_->localOf(static_cast<std::uint64_t>(upstream)))];
          } else {
            src.kind = PullKind::kRecv;
            auto& need = needs[static_cast<std::size_t>(owner)];
            recvRefs.push_back({static_cast<std::uint32_t>(l),
                                static_cast<std::uint16_t>(i),
                                static_cast<std::uint16_t>(owner),
                                static_cast<std::uint32_t>(need.size())});
            need.push_back(static_cast<std::uint64_t>(upstream) * 32 +
                           static_cast<std::uint64_t>(i));
          }
        } else {
          const auto& link =
              lat.site(g).links[static_cast<std::size_t>(upDir)];
          HEMO_CHECK_MSG(link.kind != geometry::LinkKind::kBulk,
                         "voxelizer/link inconsistency at site " << g);
          if (link.kind == geometry::LinkKind::kWall) {
            src.kind = PullKind::kWall;
          } else {
            src.kind = PullKind::kIolet;
            src.index = link.ioletId;
          }
        }
      }
    }

    // Flat receive offsets per source rank; fix up slots; scatter targets.
    recvOffset_.assign(static_cast<std::size_t>(comm_->size()) + 1, 0);
    for (int r = 0; r < comm_->size(); ++r) {
      recvOffset_[static_cast<std::size_t>(r) + 1] =
          recvOffset_[static_cast<std::size_t>(r)] +
          static_cast<std::uint32_t>(needs[static_cast<std::size_t>(r)].size());
    }
    recvFlat_.assign(recvOffset_.back(), 0.0);
    recvDst_.assign(recvOffset_.back(), RecvDst{});
    for (const auto& ref : recvRefs) {
      const std::uint32_t slot =
          recvOffset_[static_cast<std::size_t>(ref.owner)] + ref.pos;
      pull_[static_cast<std::size_t>(ref.dir)][ref.site].index = slot;
      recvDst_[slot] = {ref.site, ref.dir};
    }
    for (int r = 0; r < comm_->size(); ++r) {
      if (!needs[static_cast<std::size_t>(r)].empty()) {
        recvRanks_.push_back(r);
      }
    }

    // Tell the owners what to send: they answer my needs in my order.
    {
      comm::Communicator::TrafficScope scope(*comm_, comm::Traffic::kHalo);
      const auto requests = comm_->alltoallVec(needs);
      for (int r = 0; r < comm_->size(); ++r) {
        const auto& reqs = requests[static_cast<std::size_t>(r)];
        if (reqs.empty()) continue;
        SendPlan plan;
        plan.dest = r;
        plan.entries.reserve(reqs.size());
        for (const auto packed : reqs) {
          const std::uint64_t g = packed / 32;
          const int i = static_cast<int>(packed % 32);
          const auto local = domain_->localOf(g);
          HEMO_CHECK_MSG(local >= 0, "halo request for non-owned site " << g);
          plan.entries.push_back(
              {reorder_.internalOf[static_cast<std::size_t>(local)],
               static_cast<std::uint16_t>(i)});
        }
        sendPlans_.push_back(std::move(plan));
      }
    }
    // Persistent flat send storage: per-plan contiguous slices, so a slice
    // can be handed to sendBytes directly (no per-step heap churn).
    sendFlatOffset_.clear();
    std::size_t sendTotal = 0;
    for (const auto& plan : sendPlans_) {
      sendFlatOffset_.push_back(sendTotal);
      sendTotal += plan.entries.size();
    }
    sendFlat_.assign(sendTotal, 0.0);

    buildFusedTables();
  }

  /// Push tables for the fused kernel, derived from the same geometry/
  /// ownership facts as the pull table: every (site, direction) value
  /// either pushes to a local downstream slot, fills a send slot, or folds
  /// back into the site itself through a wall/iolet rule.
  void buildFusedTables() {
    const auto& lat = domain_->lattice();
    const auto& set = Lattice::kSet;
    const std::size_t n = domain_->numOwned();
    const std::uint32_t nf = reorder_.numFrontier;

    // (internal site * 32 + dir) -> flat send slot.
    std::unordered_map<std::uint64_t, std::uint32_t> sendSlotOf;
    for (std::size_t p = 0; p < sendPlans_.size(); ++p) {
      const auto& plan = sendPlans_[p];
      for (std::size_t k = 0; k < plan.entries.size(); ++k) {
        const auto& e = plan.entries[k];
        sendSlotOf.emplace(
            static_cast<std::uint64_t>(e.local) * 32 + e.velocity,
            static_cast<std::uint32_t>(sendFlatOffset_[p] + k));
      }
    }

    frontierOpStart_.assign(static_cast<std::size_t>(nf) + 1, 0);
    frontierOps_.clear();
    frontierOps_.reserve(static_cast<std::size_t>(nf) *
                         static_cast<std::size_t>(kQ - 1));
    for (int i = 1; i < kQ; ++i) {
      push_[static_cast<std::size_t>(i)].assign(n, 0);
    }

    for (std::size_t l = 0; l < n; ++l) {
      const std::uint64_t g = domain_->globalOf(reorder_.externalOf[l]);
      for (int i = 1; i < kQ; ++i) {
        const int gd = set.geoDir[static_cast<std::size_t>(i)];
        const auto down = lat.neighborId(g, gd);
        if (down >= 0 &&
            domain_->ownerOf(static_cast<std::uint64_t>(down)) ==
                domain_->rank()) {
          const std::uint32_t dest =
              reorder_.internalOf[static_cast<std::size_t>(
                  domain_->localOf(static_cast<std::uint64_t>(down)))];
          if (l < nf) {
            frontierOps_.push_back({dest,
                                    static_cast<std::uint8_t>(OpKind::kPushLocal),
                                    static_cast<std::uint8_t>(i)});
          } else {
            push_[static_cast<std::size_t>(i)][l] = dest;
          }
          continue;
        }
        HEMO_CHECK_MSG(l < nf, "bulk site with non-local downstream " << g);
        if (down >= 0) {
          const auto it = sendSlotOf.find(static_cast<std::uint64_t>(l) * 32 +
                                          static_cast<std::uint64_t>(i));
          HEMO_CHECK_MSG(it != sendSlotOf.end(),
                         "missing halo send slot for site " << g);
          frontierOps_.push_back({it->second,
                                  static_cast<std::uint8_t>(OpKind::kSend),
                                  static_cast<std::uint8_t>(i)});
        } else {
          // The outgoing population hits a wall/iolet and folds back into
          // this site along the opposite (incoming) direction — the push
          // form of the pull table's kWall/kIolet rules.
          const auto& link = lat.site(g).links[static_cast<std::size_t>(gd)];
          const auto in = static_cast<std::uint8_t>(
              set.opposite[static_cast<std::size_t>(i)]);
          if (link.kind == geometry::LinkKind::kWall) {
            frontierOps_.push_back(
                {0, static_cast<std::uint8_t>(OpKind::kWall), in});
          } else {
            frontierOps_.push_back({link.ioletId,
                                    static_cast<std::uint8_t>(OpKind::kIolet),
                                    in});
          }
        }
      }
      if (l + 1 <= nf) {
        frontierOpStart_[l + 1] =
            static_cast<std::uint32_t>(frontierOps_.size());
      }
    }
  }

  /// Loop-invariant collision constants plus raw output pointers, hoisted
  /// once per sweep so the hot loops never re-load vector data pointers
  /// the compiler cannot prove alias-free.
  struct CollisionCtx {
    double omega = 0.0;
    double omegaMinus = 0.0;
    bool trt = false;
    Vec3d F{0, 0, 0};
    bool forced = false;
    bool stress = false;
    double stressPrefactor = 0.0;
    double* rhoOut = nullptr;
    Vec3d* uOut = nullptr;
    SymTensor3* stressOut = nullptr;
  };

  CollisionCtx collisionCtx() {
    CollisionCtx ctx;
    const double tau = params_.tau;
    ctx.omega = 1.0 / tau;
    ctx.trt = params_.collision == LbParams::Collision::kTrt;
    const double tauMinus = params_.trtMagic / (tau - 0.5) + 0.5;
    ctx.omegaMinus = 1.0 / tauMinus;
    ctx.F = params_.bodyForce;
    ctx.forced = ctx.F.norm2() > 0.0;
    ctx.stress = params_.computeStress;
    ctx.stressPrefactor = -(1.0 - 0.5 * ctx.omega);
    ctx.rhoOut = macro_.rho.data();
    ctx.uOut = macro_.u.data();
    ctx.stressOut = ctx.stress ? macro_.stress.data() : nullptr;
    return ctx;
  }

  /// Per-direction constants as flat doubles: keeps the hot loops free of
  /// the int->double casts and Vec3 temporaries the generic VelocitySet
  /// accessors would cost per site.
  struct DirConsts {
    std::array<double, kQ> cx{}, cy{}, cz{}, w{};
  };

  static DirConsts makeDirConsts() {
    DirConsts d;
    for (int i = 0; i < kQ; ++i) {
      const auto& c = Lattice::kSet.c[static_cast<std::size_t>(i)];
      d.cx[static_cast<std::size_t>(i)] = static_cast<double>(c.x);
      d.cy[static_cast<std::size_t>(i)] = static_cast<double>(c.y);
      d.cz[static_cast<std::size_t>(i)] = static_cast<double>(c.z);
      d.w[static_cast<std::size_t>(i)] = Lattice::kSet.w[static_cast<std::size_t>(i)];
    }
    return d;
  }

  /// Moments + collision (+ forcing/stress) of one site, in place: `fl`
  /// holds the pre-collision populations on entry, post-collision on
  /// return. `ext` is the external index the macroscopic fields are
  /// written to. This is the optimised form (flat direction constants, one
  /// reciprocal, fused equilibrium polynomial); relaxSiteReference() keeps
  /// the pre-fusion arithmetic — same update to round-off, so the paired
  /// kernels agree to ~1e-12 over hundreds of steps.
  void relaxSite(const CollisionCtx& ctx, double* fl, std::size_t ext) {
    const auto& d = dir_;
    double rho = 0.0, mx = 0.0, my = 0.0, mz = 0.0;
    for (int i = 0; i < kQ; ++i) {
      const double fi = fl[i];
      rho += fi;
      mx += d.cx[static_cast<std::size_t>(i)] * fi;
      my += d.cy[static_cast<std::size_t>(i)] * fi;
      mz += d.cz[static_cast<std::size_t>(i)] * fi;
    }
    const double invRho = 1.0 / rho;
    // Guo: physical velocity includes half the force impulse.
    double ux = mx * invRho, uy = my * invRho, uz = mz * invRho;
    if (ctx.forced) {
      const double h = 0.5 * invRho;
      ux += ctx.F.x * h;
      uy += ctx.F.y * h;
      uz += ctx.F.z * h;
    }
    ctx.rhoOut[ext] = rho;
    ctx.uOut[ext] = Vec3d{ux, uy, uz};

    const double base = 1.0 - 1.5 * (ux * ux + uy * uy + uz * uz);
    double feq[kQ], cus[kQ];
    for (int i = 0; i < kQ; ++i) {
      const double cu = d.cx[static_cast<std::size_t>(i)] * ux +
                        d.cy[static_cast<std::size_t>(i)] * uy +
                        d.cz[static_cast<std::size_t>(i)] * uz;
      cus[i] = cu;
      feq[i] = d.w[static_cast<std::size_t>(i)] * rho *
               (base + cu * (3.0 + 4.5 * cu));
    }

    if (ctx.stress) {
      SymTensor3 pi{};
      for (int i = 0; i < kQ; ++i) {
        const double fneq = fl[i] - feq[i];
        const double cx = d.cx[static_cast<std::size_t>(i)];
        const double cy = d.cy[static_cast<std::size_t>(i)];
        const double cz = d.cz[static_cast<std::size_t>(i)];
        pi.xx() += fneq * cx * cx;
        pi.yy() += fneq * cy * cy;
        pi.zz() += fneq * cz * cz;
        pi.xy() += fneq * cx * cy;
        pi.xz() += fneq * cx * cz;
        pi.yz() += fneq * cy * cz;
      }
      // Deviatoric part of the relaxed non-equilibrium momentum flux.
      SymTensor3 sigma = pi * ctx.stressPrefactor;
      const double trace3 = (sigma.xx() + sigma.yy() + sigma.zz()) / 3.0;
      sigma.xx() -= trace3;
      sigma.yy() -= trace3;
      sigma.zz() -= trace3;
      ctx.stressOut[ext] = sigma;
    }

    if (!ctx.trt) {
      for (int i = 0; i < kQ; ++i) {
        fl[i] += ctx.omega * (feq[i] - fl[i]);
      }
    } else {
      const auto& set = Lattice::kSet;
      for (int i = 0; i < kQ; ++i) {
        const int j = set.opposite[static_cast<std::size_t>(i)];
        if (j < i) continue;
        const double fPlus = 0.5 * (fl[i] + fl[j]);
        const double fMinus = 0.5 * (fl[i] - fl[j]);
        const double eqPlus = 0.5 * (feq[i] + feq[j]);
        const double eqMinus = 0.5 * (feq[i] - feq[j]);
        const double dPlus = ctx.omega * (eqPlus - fPlus);
        const double dMinus = ctx.omegaMinus * (eqMinus - fMinus);
        fl[i] += dPlus + dMinus;
        if (j != i) fl[j] += dPlus - dMinus;
      }
    }

    if (ctx.forced) {
      const double pref = 1.0 - 0.5 * ctx.omega;
      for (int i = 0; i < kQ; ++i) {
        const double cx = d.cx[static_cast<std::size_t>(i)];
        const double cy = d.cy[static_cast<std::size_t>(i)];
        const double cz = d.cz[static_cast<std::size_t>(i)];
        const double nineCu = 9.0 * cus[i];
        const double termF = (3.0 * (cx - ux) + cx * nineCu) * ctx.F.x +
                             (3.0 * (cy - uy) + cy * nineCu) * ctx.F.y +
                             (3.0 * (cz - uz) + cz * nineCu) * ctx.F.z;
        fl[i] += pref * d.w[static_cast<std::size_t>(i)] * termF;
      }
    }
  }

  // --- fused kernel ------------------------------------------------------

  /// Raw hot-loop pointers, hoisted once per step.
  struct SweepPtrs {
    const double* fsrc[kQ];
    double* fdst[kQ];
    const std::uint32_t* pdst[kQ];
    const std::uint32_t* extOf;
    double* sendFlat;
  };

  SweepPtrs sweepPtrs() {
    SweepPtrs p;
    for (int i = 0; i < kQ; ++i) {
      p.fsrc[i] = f_[static_cast<std::size_t>(i)].data();
      p.fdst[i] = fNext_[static_cast<std::size_t>(i)].data();
      p.pdst[i] = push_[static_cast<std::size_t>(i)].data();
    }
    p.extOf = reorder_.externalOf.data();
    p.sendFlat = sendFlat_.data();
    return p;
  }

  void stepFused() {
    const CollisionCtx ctx = collisionCtx();
    const SweepPtrs ptrs = sweepPtrs();
    const auto n = static_cast<std::uint32_t>(domain_->numOwned());
    const std::uint32_t nf = reorder_.numFrontier;

    // Frontier pass: collide every boundary-coupled site, apply its wall/
    // iolet rules, push its local-destination populations, and drop its
    // outgoing halo populations into the persistent send buffers.
    {
      ScopedPhase phase(collideTimer_);
      HEMO_TSPAN(kCollide, "collide.frontier");
      for (std::uint32_t l = 0; l < nf; ++l) {
        processFrontierSite(ctx, ptrs, l);
      }
    }
    // Post all halo sends (buffered, never block).
    {
      ScopedPhase phase(commTimer_);
      HEMO_TSPAN(kHaloSend, "halo.send");
      comm::Communicator::TrafficScope scope(*comm_, comm::Traffic::kHalo);
      for (std::size_t p = 0; p < sendPlans_.size(); ++p) {
        comm_->sendBytes(sendPlans_[p].dest, kHaloTag,
                         sendFlat_.data() + sendFlatOffset_[p],
                         sendPlans_[p].entries.size() * sizeof(double));
      }
    }
    // Bulk pass while the messages are in flight: branch-free fused
    // collide+push over the Morton-sorted all-local sites. Sites are
    // processed in blocks: each block is collided into an L1-resident
    // buffer, then pushed direction-major so each fNext array is written
    // in one near-sequential burst instead of kQ-way interleaved streams.
    {
      ScopedPhase phase(collideTimer_);
      ScopedWallPhase overlap(overlapTimer_);
      HEMO_TSPAN(kCollide, "collide.bulk");
      double block[kBulkBlock * kQ];
      for (std::uint32_t base = nf; base < n; base += kBulkBlock) {
        const std::uint32_t count = std::min(kBulkBlock, n - base);
        for (std::uint32_t k = 0; k < count; ++k) {
          double* fl = block + k * kQ;
          for (int i = 0; i < kQ; ++i) fl[i] = ptrs.fsrc[i][base + k];
          relaxSite(ctx, fl, static_cast<std::size_t>(ptrs.extOf[base + k]));
        }
        {
          double* out0 = ptrs.fdst[0] + base;
          for (std::uint32_t k = 0; k < count; ++k) out0[k] = block[k * kQ];
        }
        for (int i = 1; i < kQ; ++i) {
          const std::uint32_t* dst = ptrs.pdst[i] + base;
          double* out = ptrs.fdst[i];
          for (std::uint32_t k = 0; k < count; ++k) {
            out[dst[k]] = block[k * kQ + static_cast<std::uint32_t>(i)];
          }
        }
      }
    }
    // Receive and finish the frontier sites' incoming halo populations.
    {
      comm::Communicator::TrafficScope scope(*comm_, comm::Traffic::kHalo);
      for (const int r : recvRanks_) {
        const auto off = recvOffset_[static_cast<std::size_t>(r)];
        const auto count =
            recvOffset_[static_cast<std::size_t>(r) + 1] - off;
        {
          ScopedPhase cphase(commTimer_);
          ScopedWallPhase wait(recvWaitTimer_);
          HEMO_TSPAN(kHaloRecvWait, "halo.recv");
          comm_->recvInto(r, kHaloTag, recvFlat_.data() + off, count);
        }
        ScopedPhase sphase(streamTimer_);
        HEMO_TSPAN(kStream, "stream.scatter");
        for (std::uint32_t k = off; k < off + count; ++k) {
          const RecvDst d = recvDst_[k];
          fNext_[static_cast<std::size_t>(d.dir)]
                [static_cast<std::size_t>(d.dest)] = recvFlat_[k];
        }
      }
    }
  }

  void processFrontierSite(const CollisionCtx& ctx, const SweepPtrs& ptrs,
                           std::uint32_t l) {
    const auto& set = Lattice::kSet;
    double fl[kQ];
    for (int i = 0; i < kQ; ++i) fl[i] = ptrs.fsrc[i][l];
    const auto ext = static_cast<std::size_t>(ptrs.extOf[l]);
    relaxSite(ctx, fl, ext);
    ptrs.fdst[0][l] = fl[0];
    const std::uint32_t begin = frontierOpStart_[l];
    const std::uint32_t end = frontierOpStart_[l + 1];
    for (std::uint32_t k = begin; k < end; ++k) {
      const FrontierOp op = frontierOps_[k];
      const auto dir = static_cast<std::size_t>(op.dir);
      switch (static_cast<OpKind>(op.kind)) {
        case OpKind::kPushLocal:
          ptrs.fdst[dir][static_cast<std::size_t>(op.index)] = fl[dir];
          break;
        case OpKind::kSend:
          ptrs.sendFlat[static_cast<std::size_t>(op.index)] = fl[dir];
          break;
        case OpKind::kWall:
          // Halfway bounce-back off the vessel wall.
          ptrs.fdst[dir][l] = fl[set.opposite[dir]];
          break;
        case OpKind::kIolet: {
          const auto id = static_cast<std::size_t>(op.index);
          const Vec3d c = set.c[dir].template cast<double>();
          const double w = set.w[dir];
          const double bounce = fl[set.opposite[dir]];
          if (ioletIsVelocityBc_[id]) {
            // Ladd bounce-back off a "wall" moving at the prescribed
            // iolet velocity: injects the target momentum flux.
            const double rho = ctx.rhoOut[ext];
            ptrs.fdst[dir][l] =
                bounce + 6.0 * w * rho * c.dot(ioletVelocity_[id]);
          } else {
            // Anti-bounce-back pressure boundary at the prescribed
            // density, using the site's own velocity as the boundary
            // value.
            const double rhoIo = ioletDensity_[id];
            const Vec3d u = ctx.uOut[ext];
            const double cu = c.dot(u);
            ptrs.fdst[dir][l] =
                -bounce + 2.0 * w * rhoIo *
                              (1.0 + 4.5 * cu * cu - 1.5 * u.dot(u));
          }
          break;
        }
      }
    }
  }

  // --- reference three-phase kernel --------------------------------------
  // The pre-fusion hot path, preserved as the performance and correctness
  // baseline: Vec3-based collision arithmetic exactly as the original
  // collide() computed it, blocking halo exchange, then a pull-stream.

  void relaxSiteReference(const CollisionCtx& ctx, double* fl,
                          std::size_t ext) {
    const auto& set = Lattice::kSet;
    double rho = 0.0;
    Vec3d mom{0, 0, 0};
    for (int i = 0; i < kQ; ++i) {
      rho += fl[i];
      mom += set.c[static_cast<std::size_t>(i)].template cast<double>() *
             fl[i];
    }
    // Guo: physical velocity includes half the force impulse.
    Vec3d u = mom / rho;
    if (ctx.forced) u += ctx.F * (0.5 / rho);
    macro_.rho[ext] = rho;
    macro_.u[ext] = u;

    double feq[kQ];
    for (int i = 0; i < kQ; ++i) feq[i] = equilibrium<Lattice>(i, rho, u);

    if (ctx.stress) {
      SymTensor3 pi{};
      for (int i = 0; i < kQ; ++i) {
        const double fneq = fl[i] - feq[i];
        const Vec3d c =
            set.c[static_cast<std::size_t>(i)].template cast<double>();
        pi.xx() += fneq * c.x * c.x;
        pi.yy() += fneq * c.y * c.y;
        pi.zz() += fneq * c.z * c.z;
        pi.xy() += fneq * c.x * c.y;
        pi.xz() += fneq * c.x * c.z;
        pi.yz() += fneq * c.y * c.z;
      }
      // Deviatoric part of the relaxed non-equilibrium momentum flux.
      SymTensor3 sigma = pi * ctx.stressPrefactor;
      const double trace3 = (sigma.xx() + sigma.yy() + sigma.zz()) / 3.0;
      sigma.xx() -= trace3;
      sigma.yy() -= trace3;
      sigma.zz() -= trace3;
      macro_.stress[ext] = sigma;
    }

    if (!ctx.trt) {
      for (int i = 0; i < kQ; ++i) {
        fl[i] += ctx.omega * (feq[i] - fl[i]);
      }
    } else {
      for (int i = 0; i < kQ; ++i) {
        const int j = set.opposite[static_cast<std::size_t>(i)];
        if (j < i) continue;
        const double fPlus = 0.5 * (fl[i] + fl[j]);
        const double fMinus = 0.5 * (fl[i] - fl[j]);
        const double eqPlus = 0.5 * (feq[i] + feq[j]);
        const double eqMinus = 0.5 * (feq[i] - feq[j]);
        const double dPlus = ctx.omega * (eqPlus - fPlus);
        const double dMinus = ctx.omegaMinus * (eqMinus - fMinus);
        fl[i] += dPlus + dMinus;
        if (j != i) fl[j] += dPlus - dMinus;
      }
    }

    if (ctx.forced) {
      const double pref = 1.0 - 0.5 * ctx.omega;
      for (int i = 0; i < kQ; ++i) {
        const Vec3d c =
            set.c[static_cast<std::size_t>(i)].template cast<double>();
        const double cu = c.dot(u);
        const Vec3d term = (c - u) * 3.0 + c * (9.0 * cu);
        fl[i] += pref * set.w[static_cast<std::size_t>(i)] * term.dot(ctx.F);
      }
    }
  }

  void collide() {
    ScopedPhase phase(collideTimer_);
    HEMO_TSPAN(kCollide, "collide");
    const CollisionCtx ctx = collisionCtx();
    const std::size_t n = domain_->numOwned();
    for (std::size_t l = 0; l < n; ++l) {
      double fl[kQ];
      for (int i = 0; i < kQ; ++i) fl[i] = f_[static_cast<std::size_t>(i)][l];
      relaxSiteReference(ctx, fl,
                         static_cast<std::size_t>(reorder_.externalOf[l]));
      for (int i = 0; i < kQ; ++i) f_[static_cast<std::size_t>(i)][l] = fl[i];
    }
  }

  void exchange() {
    ScopedPhase phase(commTimer_);
    HEMO_TSPAN(kHaloSend, "halo.exchange");
    comm::Communicator::TrafficScope scope(*comm_, comm::Traffic::kHalo);
    for (std::size_t p = 0; p < sendPlans_.size(); ++p) {
      const auto& plan = sendPlans_[p];
      double* buf = sendFlat_.data() + sendFlatOffset_[p];
      for (std::size_t k = 0; k < plan.entries.size(); ++k) {
        const auto& e = plan.entries[k];
        buf[k] = f_[static_cast<std::size_t>(e.velocity)]
                   [static_cast<std::size_t>(e.local)];
      }
      comm_->sendBytes(plan.dest, kHaloTag, buf,
                       plan.entries.size() * sizeof(double));
    }
    for (const int r : recvRanks_) {
      const auto off = recvOffset_[static_cast<std::size_t>(r)];
      const auto count = recvOffset_[static_cast<std::size_t>(r) + 1] - off;
      comm_->recvInto(r, kHaloTag, recvFlat_.data() + off, count);
    }
  }

  void stream() {
    ScopedPhase phase(streamTimer_);
    HEMO_TSPAN(kStream, "stream");
    const std::size_t n = domain_->numOwned();
    const auto& set = Lattice::kSet;
    // Rest population never moves.
    fNext_[0] = f_[0];
    for (int i = 1; i < kQ; ++i) {
      const int opp = set.opposite[static_cast<std::size_t>(i)];
      const auto& srcs = pull_[static_cast<std::size_t>(i)];
      auto& out = fNext_[static_cast<std::size_t>(i)];
      const auto& bounce = f_[static_cast<std::size_t>(opp)];
      const auto& local = f_[static_cast<std::size_t>(i)];
      for (std::size_t l = 0; l < n; ++l) {
        const PullSrc s = srcs[l];
        switch (s.kind) {
          case PullKind::kLocal:
            out[l] = local[static_cast<std::size_t>(s.index)];
            break;
          case PullKind::kRecv:
            out[l] = recvFlat_[static_cast<std::size_t>(s.index)];
            break;
          case PullKind::kWall:
            // Halfway bounce-back off the vessel wall.
            out[l] = bounce[l];
            break;
          case PullKind::kIolet: {
            const auto id = static_cast<std::size_t>(s.index);
            const auto ext = static_cast<std::size_t>(reorder_.externalOf[l]);
            const Vec3d c =
                set.c[static_cast<std::size_t>(i)].template cast<double>();
            const double w = set.w[static_cast<std::size_t>(i)];
            if (ioletIsVelocityBc_[id]) {
              // Ladd bounce-back off a "wall" moving at the prescribed
              // iolet velocity: injects the target momentum flux.
              const double rho = macro_.rho[ext];
              out[l] = bounce[l] +
                       6.0 * w * rho * c.dot(ioletVelocity_[id]);
            } else {
              // Anti-bounce-back pressure boundary at the prescribed
              // density, using the site's own velocity as the boundary
              // value.
              const double rhoIo = ioletDensity_[id];
              const Vec3d u = macro_.u[ext];
              const double cu = c.dot(u);
              out[l] = -bounce[l] +
                       2.0 * w * rhoIo *
                           (1.0 + 4.5 * cu * cu - 1.5 * u.dot(u));
            }
            break;
          }
        }
      }
    }
  }

  /// Recompute cached moments from the current distributions (used after
  /// external writes such as checkpoint restore).
  void refreshMacros() {
    const std::size_t n = domain_->numOwned();
    const auto& set = Lattice::kSet;
    for (std::size_t l = 0; l < n; ++l) {
      double rho = 0.0;
      Vec3d mom{0, 0, 0};
      for (int i = 0; i < kQ; ++i) {
        const double fi = f_[static_cast<std::size_t>(i)][l];
        rho += fi;
        mom += set.c[static_cast<std::size_t>(i)].template cast<double>() * fi;
      }
      const auto ext = static_cast<std::size_t>(reorder_.externalOf[l]);
      macro_.rho[ext] = rho;
      macro_.u[ext] = mom / rho;
    }
  }

  struct SendEntry {
    std::uint32_t local;  ///< internal site index
    std::uint16_t velocity;
  };
  struct SendPlan {
    int dest = 0;
    std::vector<SendEntry> entries;
  };

  const DomainMap* domain_;
  comm::Communicator* comm_;
  LbParams params_;
  DirConsts dir_ = makeDirConsts();
  std::vector<double> ioletDensity_;
  std::vector<Vec3d> ioletVelocity_;
  std::vector<std::uint8_t> ioletIsVelocityBc_;

  SiteReordering reorder_;

  /// Distributions in internal (frontier-first) site order.
  std::array<std::vector<double>, kQ> f_;
  std::array<std::vector<double>, kQ> fNext_;
  /// Pull table (reference kernel), internal order.
  std::array<std::vector<PullSrc>, kQ> pull_;
  /// Local push targets per direction (fused kernel, bulk range only).
  std::array<std::vector<std::uint32_t>, kQ> push_;
  /// Fused boundary/halo actions of the frontier sites (CSR).
  std::vector<std::uint32_t> frontierOpStart_;
  std::vector<FrontierOp> frontierOps_;

  std::vector<SendPlan> sendPlans_;
  /// Persistent flat send storage; plan p owns [sendFlatOffset_[p], ...).
  std::vector<double> sendFlat_;
  std::vector<std::size_t> sendFlatOffset_;
  std::vector<int> recvRanks_;
  std::vector<std::uint32_t> recvOffset_;
  std::vector<double> recvFlat_;
  /// fNext destination of each flat receive slot (fused kernel scatter).
  std::vector<RecvDst> recvDst_;

  /// Macroscopic fields in external (DomainMap) site order.
  MacroFields macro_;
  std::uint64_t stepsDone_ = 0;
  PhaseTimer collideTimer_, streamTimer_, commTimer_;
  WallPhaseTimer overlapTimer_, recvWaitTimer_;
};

using SolverD3Q19 = Solver<D3Q19>;
using SolverD3Q15 = Solver<D3Q15>;
using SolverD3Q27 = Solver<D3Q27>;

}  // namespace hemo::lb
