#pragma once
/// \file domain_map.hpp
/// \brief Rank-local view of a partitioned sparse lattice: which global
/// sites this rank owns and how to find the owner of any site. Shared by
/// the solver and every in situ visualisation algorithm.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geometry/sparse_lattice.hpp"
#include "partition/graph.hpp"

namespace hemo::lb {

class DomainMap {
 public:
  DomainMap(const geometry::SparseLattice& lattice,
            const partition::Partition& partition, int myRank)
      : lattice_(&lattice), partition_(&partition), rank_(myRank) {
    for (std::uint64_t g = 0; g < lattice.numFluidSites(); ++g) {
      if (partition.partOfSite[static_cast<std::size_t>(g)] == myRank) {
        localOf_.emplace(g, static_cast<std::uint32_t>(ownedIds_.size()));
        ownedIds_.push_back(g);
      }
    }
  }

  const geometry::SparseLattice& lattice() const { return *lattice_; }
  const partition::Partition& partition() const { return *partition_; }
  int rank() const { return rank_; }

  std::uint32_t numOwned() const {
    return static_cast<std::uint32_t>(ownedIds_.size());
  }
  const std::vector<std::uint64_t>& ownedIds() const { return ownedIds_; }
  std::uint64_t globalOf(std::uint32_t local) const {
    return ownedIds_[static_cast<std::size_t>(local)];
  }

  /// Local index of a global site, or -1 if not owned by this rank.
  std::int64_t localOf(std::uint64_t global) const {
    const auto it = localOf_.find(global);
    return it == localOf_.end() ? -1 : static_cast<std::int64_t>(it->second);
  }

  /// Which rank owns a global site.
  int ownerOf(std::uint64_t global) const {
    return partition_->partOfSite[static_cast<std::size_t>(global)];
  }

 private:
  const geometry::SparseLattice* lattice_;
  const partition::Partition* partition_;
  int rank_;
  std::vector<std::uint64_t> ownedIds_;
  std::unordered_map<std::uint64_t, std::uint32_t> localOf_;
};

/// Hot-path site permutation built by the solver over a rank's owned sites.
///
/// The solver stores distributions in an *internal* order chosen for the
/// fused collide–stream kernel: frontier sites (any streaming pull that
/// crosses a rank boundary, a wall, or an iolet) come first so their
/// outgoing halo populations can be computed and posted before the bulk
/// sweep; bulk sites follow, sub-sorted by Morton key for cache locality.
///
/// Contract: *external* local indices — the DomainMap order used by
/// checkpointing, visualisation sampling, WSS extraction and every test —
/// are unchanged. The solver translates at its boundary through these maps;
/// nothing outside the solver ever sees internal indices.
struct SiteReordering {
  std::vector<std::uint32_t> internalOf;  ///< external local -> internal
  std::vector<std::uint32_t> externalOf;  ///< internal -> external local
  std::uint32_t numFrontier = 0;  ///< internal [0, numFrontier) are frontier

  std::uint32_t numSites() const {
    return static_cast<std::uint32_t>(externalOf.size());
  }
  std::uint32_t numBulk() const { return numSites() - numFrontier; }
};

/// Macroscopic moments of the owned sites, refreshed every collision.
struct MacroFields {
  std::vector<double> rho;
  std::vector<Vec3d> u;
  /// Deviatoric stress tensors (filled only when the solver's
  /// computeStress option is on).
  std::vector<SymTensor3> stress;
};

}  // namespace hemo::lb
