#pragma once
/// \file layout.hpp
/// \brief Distribution-storage layouts for the LB solver.
///
/// `DistField` owns the per-rank distribution values in one slab and hides
/// the memory layout behind a (direction, internal site) addressing scheme:
///
///   * **kSoA** — one contiguous plane of doubles per velocity direction.
///     Planes are 64-byte aligned and padded to an *odd* multiple of eight
///     doubles, so (a) a SIMD sweep can load full vectors off either end of
///     a plane without faulting, and (b) the 19 planes of a D3Q19 field do
///     not collide in the same cache sets when the site count happens to be
///     a large power of two. This is the layout the vectorised kernel
///     requires: lane w of a vector is site l+w of the same direction.
///   * **kAoS** — the textbook site-major `f[l*Q + i]` record layout, kept
///     as the layout-equivalence reference: everything that goes through
///     the gather/scatter accessors (checkpointing, the wire observables,
///     vis extraction, tests) must produce bit-identical bytes under both.
///
/// Hot kernels never call `at()`; they hoist `dirBase()`/`siteStride()`
/// once per sweep (stride 1 for SoA planes, Q for AoS records) so the
/// compiler sees plain strided pointers.

#include <cstddef>
#include <cstdint>
#include <utility>

#include "util/check.hpp"
#include "util/simd.hpp"

namespace hemo::lb {

enum class Layout : std::uint8_t { kAoS, kSoA };

inline const char* layoutName(Layout l) {
  return l == Layout::kAoS ? "aos" : "soa";
}

template <int Q>
class DistField {
 public:
  void init(Layout layout, std::size_t n) {
    layout_ = layout;
    n_ = n;
    if (layout == Layout::kSoA) {
      // Pad each plane to an odd multiple of 8 doubles (one cache line):
      // aligned plane starts, and consecutive planes staggered across sets.
      pitch_ = (n + 7) / 8 * 8;
      if ((pitch_ / 8) % 2 == 0) pitch_ += 8;
      data_.assign(pitch_ * static_cast<std::size_t>(Q), 0.0);
    } else {
      pitch_ = 0;
      data_.assign(n * static_cast<std::size_t>(Q), 0.0);
    }
  }

  Layout layout() const { return layout_; }
  std::size_t numSites() const { return n_; }

  /// Distance in doubles between the same direction of sites l and l+1.
  std::size_t siteStride() const { return layout_ == Layout::kSoA ? 1 : Q; }

  /// Base pointer such that direction q of site l is dirBase(q)[l *
  /// siteStride()]. For SoA this is the (64-byte aligned) plane of q.
  double* dirBase(int q) {
    return layout_ == Layout::kSoA
               ? data_.data() + static_cast<std::size_t>(q) * pitch_
               : data_.data() + static_cast<std::size_t>(q);
  }
  const double* dirBase(int q) const {
    return const_cast<DistField*>(this)->dirBase(q);
  }

  double& at(int q, std::size_t l) { return dirBase(q)[l * siteStride()]; }
  double at(int q, std::size_t l) const {
    return dirBase(q)[l * siteStride()];
  }

  /// Set direction q of every site to v (equilibrium init).
  void fill(int q, double v) {
    double* base = dirBase(q);
    const std::size_t s = siteStride();
    for (std::size_t l = 0; l < n_; ++l) base[l * s] = v;
  }

  /// O(1): swap the slabs (the per-step f/fNext flip).
  void swapWith(DistField& o) {
    HEMO_CHECK(layout_ == o.layout_ && n_ == o.n_);
    std::swap(pitch_, o.pitch_);
    data_.swap(o.data_);
  }

 private:
  Layout layout_ = Layout::kSoA;
  std::size_t n_ = 0;
  std::size_t pitch_ = 0;  ///< SoA plane pitch in doubles (0 under AoS)
  simd::AVector<double> data_;
};

}  // namespace hemo::lb
