file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_lb.dir/bench_scaling_lb.cpp.o"
  "CMakeFiles/bench_scaling_lb.dir/bench_scaling_lb.cpp.o.d"
  "bench_scaling_lb"
  "bench_scaling_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
