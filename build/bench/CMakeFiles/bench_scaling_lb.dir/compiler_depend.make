# Empty compiler generated dependencies file for bench_scaling_lb.
# This may be replaced when dependencies are built.
