# Empty dependencies file for bench_vis_aware_balance.
# This may be replaced when dependencies are built.
