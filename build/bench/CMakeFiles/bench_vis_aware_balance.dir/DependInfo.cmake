
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_vis_aware_balance.cpp" "bench/CMakeFiles/bench_vis_aware_balance.dir/bench_vis_aware_balance.cpp.o" "gcc" "bench/CMakeFiles/bench_vis_aware_balance.dir/bench_vis_aware_balance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hemo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/steer/CMakeFiles/hemo_steer.dir/DependInfo.cmake"
  "/root/repo/build/src/multires/CMakeFiles/hemo_multires.dir/DependInfo.cmake"
  "/root/repo/build/src/vis/CMakeFiles/hemo_vis.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/hemo_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hemo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/hemo_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/hemo_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hemo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
