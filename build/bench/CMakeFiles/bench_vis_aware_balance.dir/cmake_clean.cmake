file(REMOVE_RECURSE
  "CMakeFiles/bench_vis_aware_balance.dir/bench_vis_aware_balance.cpp.o"
  "CMakeFiles/bench_vis_aware_balance.dir/bench_vis_aware_balance.cpp.o.d"
  "bench_vis_aware_balance"
  "bench_vis_aware_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vis_aware_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
