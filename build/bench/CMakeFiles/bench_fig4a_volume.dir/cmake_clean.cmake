file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a_volume.dir/bench_fig4a_volume.cpp.o"
  "CMakeFiles/bench_fig4a_volume.dir/bench_fig4a_volume.cpp.o.d"
  "bench_fig4a_volume"
  "bench_fig4a_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
