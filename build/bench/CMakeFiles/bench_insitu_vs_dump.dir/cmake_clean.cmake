file(REMOVE_RECURSE
  "CMakeFiles/bench_insitu_vs_dump.dir/bench_insitu_vs_dump.cpp.o"
  "CMakeFiles/bench_insitu_vs_dump.dir/bench_insitu_vs_dump.cpp.o.d"
  "bench_insitu_vs_dump"
  "bench_insitu_vs_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_insitu_vs_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
