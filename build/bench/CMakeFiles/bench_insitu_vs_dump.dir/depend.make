# Empty dependencies file for bench_insitu_vs_dump.
# This may be replaced when dependencies are built.
