# Empty dependencies file for bench_preproc_read.
# This may be replaced when dependencies are built.
