file(REMOVE_RECURSE
  "CMakeFiles/bench_preproc_read.dir/bench_preproc_read.cpp.o"
  "CMakeFiles/bench_preproc_read.dir/bench_preproc_read.cpp.o.d"
  "bench_preproc_read"
  "bench_preproc_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_preproc_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
