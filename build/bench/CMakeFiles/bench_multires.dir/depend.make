# Empty dependencies file for bench_multires.
# This may be replaced when dependencies are built.
