file(REMOVE_RECURSE
  "CMakeFiles/bench_multires.dir/bench_multires.cpp.o"
  "CMakeFiles/bench_multires.dir/bench_multires.cpp.o.d"
  "bench_multires"
  "bench_multires.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multires.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
