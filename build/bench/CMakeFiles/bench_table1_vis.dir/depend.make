# Empty dependencies file for bench_table1_vis.
# This may be replaced when dependencies are built.
