file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_vis.dir/bench_table1_vis.cpp.o"
  "CMakeFiles/bench_table1_vis.dir/bench_table1_vis.cpp.o.d"
  "bench_table1_vis"
  "bench_table1_vis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_vis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
