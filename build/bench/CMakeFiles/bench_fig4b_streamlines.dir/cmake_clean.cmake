file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_streamlines.dir/bench_fig4b_streamlines.cpp.o"
  "CMakeFiles/bench_fig4b_streamlines.dir/bench_fig4b_streamlines.cpp.o.d"
  "bench_fig4b_streamlines"
  "bench_fig4b_streamlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_streamlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
