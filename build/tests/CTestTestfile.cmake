# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_lb[1]_include.cmake")
include("/root/repo/build/tests/test_multires[1]_include.cmake")
include("/root/repo/build/tests/test_vis[1]_include.cmake")
include("/root/repo/build/tests/test_steer[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
