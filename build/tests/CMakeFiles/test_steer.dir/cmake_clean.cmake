file(REMOVE_RECURSE
  "CMakeFiles/test_steer.dir/test_steer.cpp.o"
  "CMakeFiles/test_steer.dir/test_steer.cpp.o.d"
  "test_steer"
  "test_steer.pdb"
  "test_steer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_steer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
