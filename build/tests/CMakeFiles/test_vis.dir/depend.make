# Empty dependencies file for test_vis.
# This may be replaced when dependencies are built.
