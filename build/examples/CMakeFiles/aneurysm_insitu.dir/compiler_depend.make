# Empty compiler generated dependencies file for aneurysm_insitu.
# This may be replaced when dependencies are built.
