file(REMOVE_RECURSE
  "CMakeFiles/aneurysm_insitu.dir/aneurysm_insitu.cpp.o"
  "CMakeFiles/aneurysm_insitu.dir/aneurysm_insitu.cpp.o.d"
  "aneurysm_insitu"
  "aneurysm_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aneurysm_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
