file(REMOVE_RECURSE
  "CMakeFiles/preprocess_tool.dir/preprocess_tool.cpp.o"
  "CMakeFiles/preprocess_tool.dir/preprocess_tool.cpp.o.d"
  "preprocess_tool"
  "preprocess_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preprocess_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
