# Empty dependencies file for preprocess_tool.
# This may be replaced when dependencies are built.
