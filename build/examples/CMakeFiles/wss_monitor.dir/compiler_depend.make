# Empty compiler generated dependencies file for wss_monitor.
# This may be replaced when dependencies are built.
