file(REMOVE_RECURSE
  "CMakeFiles/wss_monitor.dir/wss_monitor.cpp.o"
  "CMakeFiles/wss_monitor.dir/wss_monitor.cpp.o.d"
  "wss_monitor"
  "wss_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wss_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
