file(REMOVE_RECURSE
  "libhemo_partition.a"
)
