file(REMOVE_RECURSE
  "CMakeFiles/hemo_partition.dir/graph.cpp.o"
  "CMakeFiles/hemo_partition.dir/graph.cpp.o.d"
  "CMakeFiles/hemo_partition.dir/metrics.cpp.o"
  "CMakeFiles/hemo_partition.dir/metrics.cpp.o.d"
  "CMakeFiles/hemo_partition.dir/partitioners.cpp.o"
  "CMakeFiles/hemo_partition.dir/partitioners.cpp.o.d"
  "CMakeFiles/hemo_partition.dir/repartition.cpp.o"
  "CMakeFiles/hemo_partition.dir/repartition.cpp.o.d"
  "libhemo_partition.a"
  "libhemo_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
