
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/graph.cpp" "src/partition/CMakeFiles/hemo_partition.dir/graph.cpp.o" "gcc" "src/partition/CMakeFiles/hemo_partition.dir/graph.cpp.o.d"
  "/root/repo/src/partition/metrics.cpp" "src/partition/CMakeFiles/hemo_partition.dir/metrics.cpp.o" "gcc" "src/partition/CMakeFiles/hemo_partition.dir/metrics.cpp.o.d"
  "/root/repo/src/partition/partitioners.cpp" "src/partition/CMakeFiles/hemo_partition.dir/partitioners.cpp.o" "gcc" "src/partition/CMakeFiles/hemo_partition.dir/partitioners.cpp.o.d"
  "/root/repo/src/partition/repartition.cpp" "src/partition/CMakeFiles/hemo_partition.dir/repartition.cpp.o" "gcc" "src/partition/CMakeFiles/hemo_partition.dir/repartition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hemo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hemo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/hemo_io.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/hemo_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
