# Empty dependencies file for hemo_partition.
# This may be replaced when dependencies are built.
