file(REMOVE_RECURSE
  "libhemo_io.a"
)
