# Empty compiler generated dependencies file for hemo_io.
# This may be replaced when dependencies are built.
