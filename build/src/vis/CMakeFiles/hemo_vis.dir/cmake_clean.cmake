file(REMOVE_RECURSE
  "CMakeFiles/hemo_vis.dir/features.cpp.o"
  "CMakeFiles/hemo_vis.dir/features.cpp.o.d"
  "CMakeFiles/hemo_vis.dir/lic.cpp.o"
  "CMakeFiles/hemo_vis.dir/lic.cpp.o.d"
  "CMakeFiles/hemo_vis.dir/line_render.cpp.o"
  "CMakeFiles/hemo_vis.dir/line_render.cpp.o.d"
  "CMakeFiles/hemo_vis.dir/particles.cpp.o"
  "CMakeFiles/hemo_vis.dir/particles.cpp.o.d"
  "CMakeFiles/hemo_vis.dir/sampler.cpp.o"
  "CMakeFiles/hemo_vis.dir/sampler.cpp.o.d"
  "CMakeFiles/hemo_vis.dir/streamlines.cpp.o"
  "CMakeFiles/hemo_vis.dir/streamlines.cpp.o.d"
  "CMakeFiles/hemo_vis.dir/volume.cpp.o"
  "CMakeFiles/hemo_vis.dir/volume.cpp.o.d"
  "libhemo_vis.a"
  "libhemo_vis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_vis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
