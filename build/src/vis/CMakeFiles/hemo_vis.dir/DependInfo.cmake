
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vis/features.cpp" "src/vis/CMakeFiles/hemo_vis.dir/features.cpp.o" "gcc" "src/vis/CMakeFiles/hemo_vis.dir/features.cpp.o.d"
  "/root/repo/src/vis/lic.cpp" "src/vis/CMakeFiles/hemo_vis.dir/lic.cpp.o" "gcc" "src/vis/CMakeFiles/hemo_vis.dir/lic.cpp.o.d"
  "/root/repo/src/vis/line_render.cpp" "src/vis/CMakeFiles/hemo_vis.dir/line_render.cpp.o" "gcc" "src/vis/CMakeFiles/hemo_vis.dir/line_render.cpp.o.d"
  "/root/repo/src/vis/particles.cpp" "src/vis/CMakeFiles/hemo_vis.dir/particles.cpp.o" "gcc" "src/vis/CMakeFiles/hemo_vis.dir/particles.cpp.o.d"
  "/root/repo/src/vis/sampler.cpp" "src/vis/CMakeFiles/hemo_vis.dir/sampler.cpp.o" "gcc" "src/vis/CMakeFiles/hemo_vis.dir/sampler.cpp.o.d"
  "/root/repo/src/vis/streamlines.cpp" "src/vis/CMakeFiles/hemo_vis.dir/streamlines.cpp.o" "gcc" "src/vis/CMakeFiles/hemo_vis.dir/streamlines.cpp.o.d"
  "/root/repo/src/vis/volume.cpp" "src/vis/CMakeFiles/hemo_vis.dir/volume.cpp.o" "gcc" "src/vis/CMakeFiles/hemo_vis.dir/volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hemo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/hemo_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/hemo_io.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/hemo_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/hemo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
