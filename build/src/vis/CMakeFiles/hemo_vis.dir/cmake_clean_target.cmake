file(REMOVE_RECURSE
  "libhemo_vis.a"
)
