# Empty compiler generated dependencies file for hemo_vis.
# This may be replaced when dependencies are built.
