file(REMOVE_RECURSE
  "libhemo_core.a"
)
