file(REMOVE_RECURSE
  "CMakeFiles/hemo_core.dir/driver.cpp.o"
  "CMakeFiles/hemo_core.dir/driver.cpp.o.d"
  "CMakeFiles/hemo_core.dir/pipeline.cpp.o"
  "CMakeFiles/hemo_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/hemo_core.dir/preprocess.cpp.o"
  "CMakeFiles/hemo_core.dir/preprocess.cpp.o.d"
  "CMakeFiles/hemo_core.dir/refine.cpp.o"
  "CMakeFiles/hemo_core.dir/refine.cpp.o.d"
  "libhemo_core.a"
  "libhemo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
