file(REMOVE_RECURSE
  "CMakeFiles/hemo_util.dir/log.cpp.o"
  "CMakeFiles/hemo_util.dir/log.cpp.o.d"
  "CMakeFiles/hemo_util.dir/timer.cpp.o"
  "CMakeFiles/hemo_util.dir/timer.cpp.o.d"
  "libhemo_util.a"
  "libhemo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
