file(REMOVE_RECURSE
  "libhemo_comm.a"
)
