# Empty dependencies file for hemo_comm.
# This may be replaced when dependencies are built.
