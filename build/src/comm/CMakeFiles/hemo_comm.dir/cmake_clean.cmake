file(REMOVE_RECURSE
  "CMakeFiles/hemo_comm.dir/channel.cpp.o"
  "CMakeFiles/hemo_comm.dir/channel.cpp.o.d"
  "CMakeFiles/hemo_comm.dir/runtime.cpp.o"
  "CMakeFiles/hemo_comm.dir/runtime.cpp.o.d"
  "libhemo_comm.a"
  "libhemo_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
