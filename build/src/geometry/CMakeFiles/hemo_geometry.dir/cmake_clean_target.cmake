file(REMOVE_RECURSE
  "libhemo_geometry.a"
)
