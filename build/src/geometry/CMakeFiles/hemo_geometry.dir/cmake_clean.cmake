file(REMOVE_RECURSE
  "CMakeFiles/hemo_geometry.dir/parallel_reader.cpp.o"
  "CMakeFiles/hemo_geometry.dir/parallel_reader.cpp.o.d"
  "CMakeFiles/hemo_geometry.dir/sgmy.cpp.o"
  "CMakeFiles/hemo_geometry.dir/sgmy.cpp.o.d"
  "CMakeFiles/hemo_geometry.dir/shapes.cpp.o"
  "CMakeFiles/hemo_geometry.dir/shapes.cpp.o.d"
  "CMakeFiles/hemo_geometry.dir/sparse_lattice.cpp.o"
  "CMakeFiles/hemo_geometry.dir/sparse_lattice.cpp.o.d"
  "CMakeFiles/hemo_geometry.dir/voxelizer.cpp.o"
  "CMakeFiles/hemo_geometry.dir/voxelizer.cpp.o.d"
  "libhemo_geometry.a"
  "libhemo_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
