
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/parallel_reader.cpp" "src/geometry/CMakeFiles/hemo_geometry.dir/parallel_reader.cpp.o" "gcc" "src/geometry/CMakeFiles/hemo_geometry.dir/parallel_reader.cpp.o.d"
  "/root/repo/src/geometry/sgmy.cpp" "src/geometry/CMakeFiles/hemo_geometry.dir/sgmy.cpp.o" "gcc" "src/geometry/CMakeFiles/hemo_geometry.dir/sgmy.cpp.o.d"
  "/root/repo/src/geometry/shapes.cpp" "src/geometry/CMakeFiles/hemo_geometry.dir/shapes.cpp.o" "gcc" "src/geometry/CMakeFiles/hemo_geometry.dir/shapes.cpp.o.d"
  "/root/repo/src/geometry/sparse_lattice.cpp" "src/geometry/CMakeFiles/hemo_geometry.dir/sparse_lattice.cpp.o" "gcc" "src/geometry/CMakeFiles/hemo_geometry.dir/sparse_lattice.cpp.o.d"
  "/root/repo/src/geometry/voxelizer.cpp" "src/geometry/CMakeFiles/hemo_geometry.dir/voxelizer.cpp.o" "gcc" "src/geometry/CMakeFiles/hemo_geometry.dir/voxelizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hemo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/hemo_io.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/hemo_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
