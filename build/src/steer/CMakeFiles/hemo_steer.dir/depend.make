# Empty dependencies file for hemo_steer.
# This may be replaced when dependencies are built.
