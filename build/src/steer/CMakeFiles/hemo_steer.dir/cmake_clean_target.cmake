file(REMOVE_RECURSE
  "libhemo_steer.a"
)
