file(REMOVE_RECURSE
  "CMakeFiles/hemo_steer.dir/protocol.cpp.o"
  "CMakeFiles/hemo_steer.dir/protocol.cpp.o.d"
  "CMakeFiles/hemo_steer.dir/server.cpp.o"
  "CMakeFiles/hemo_steer.dir/server.cpp.o.d"
  "libhemo_steer.a"
  "libhemo_steer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_steer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
