file(REMOVE_RECURSE
  "libhemo_multires.a"
)
