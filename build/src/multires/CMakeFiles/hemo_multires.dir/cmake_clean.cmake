file(REMOVE_RECURSE
  "CMakeFiles/hemo_multires.dir/octree.cpp.o"
  "CMakeFiles/hemo_multires.dir/octree.cpp.o.d"
  "CMakeFiles/hemo_multires.dir/roi.cpp.o"
  "CMakeFiles/hemo_multires.dir/roi.cpp.o.d"
  "libhemo_multires.a"
  "libhemo_multires.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hemo_multires.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
