# Empty dependencies file for hemo_multires.
# This may be replaced when dependencies are built.
