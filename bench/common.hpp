#pragma once
/// \file common.hpp
/// \brief Shared helpers for the paper-reproduction benchmarks: standard
/// workload geometries, a developed-flow setup, busy-time collection and
/// table printing. Every bench prints the measured table for its paper
/// anchor (see DESIGN.md §4) and exits; absolute numbers are machine
/// dependent, shapes are the reproduction target.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "core/perf_model.hpp"
#include "core/preprocess.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "lb/solver.hpp"
#include "partition/partitioners.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace hemobench {

using namespace hemo;

inline geometry::SparseLattice makeAneurysm(double voxel = 0.2) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = voxel;
  return geometry::voxelize(geometry::makeAneurysmVessel(5.0, 1.0, 1.2), opt);
}

inline geometry::SparseLattice makeTube(double voxel = 0.2,
                                        double length = 6.0) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = voxel;
  return geometry::voxelize(geometry::makeStraightTube(length, 1.0), opt);
}

inline geometry::SparseLattice makeBifurc(double voxel = 0.2) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = voxel;
  return geometry::voxelize(
      geometry::makeBifurcation(4.0, 1.0, 4.0, 0.75, 0.5), opt);
}

inline partition::Partition kwayPartition(
    const geometry::SparseLattice& lattice, int parts) {
  const auto graph = partition::buildSiteGraph(lattice);
  partition::MultilevelKWayPartitioner kway;
  return kway.partition(graph, parts);
}

/// Default solver parameters producing a developed low-Mach flow.
inline lb::LbParams flowParams(bool stress = false) {
  lb::LbParams p;
  p.tau = 0.8;
  p.bodyForce = {1e-5, 0, 0};
  p.computeStress = stress;
  return p;
}

/// Per-rank cost sample of one measured phase.
struct PhaseSample {
  double busySeconds = 0.0;
  std::uint64_t bytes = 0;      ///< sent, all classes, during the phase
  std::uint64_t messages = 0;   ///< sent, all classes, during the phase
  std::uint64_t recvBytes = 0;  ///< received during the phase
};

/// Aggregate of a phase across ranks.
struct PhaseSummary {
  int ranks = 0;
  double maxBusy = 0.0;
  double sumBusy = 0.0;
  double imbalance = 1.0;  ///< busy-time max/mean
  std::uint64_t totalBytes = 0;
  std::uint64_t totalMessages = 0;
  std::uint64_t maxRankBytes = 0;
  std::uint64_t maxRankMessages = 0;
  std::uint64_t maxRankRecvBytes = 0;

  core::RankCost maxRankCost() const {
    return {maxBusy, maxRankMessages, maxRankBytes};
  }

  /// Modeled parallel seconds under the postal model.
  double modeledSeconds(const core::CostModel& model = {}) const {
    return core::modeledParallelSeconds(
        {core::RankCost{maxBusy, maxRankMessages, maxRankBytes}}, model);
  }
};

/// Collective: merge every rank's PhaseSample. Identical result everywhere.
inline PhaseSummary summarizePhase(comm::Communicator& comm,
                                   const PhaseSample& mine) {
  PhaseSummary s;
  s.ranks = comm.size();
  const auto busies = comm.allgather(mine.busySeconds);
  for (const double b : busies) {
    s.maxBusy = std::max(s.maxBusy, b);
    s.sumBusy += b;
  }
  s.imbalance = s.sumBusy > 0.0
                    ? s.maxBusy * static_cast<double>(s.ranks) / s.sumBusy
                    : 1.0;
  s.totalBytes = comm.allreduceSum(mine.bytes);
  s.totalMessages = comm.allreduceSum(mine.messages);
  s.maxRankBytes = comm.allreduceMax(mine.bytes);
  s.maxRankMessages = comm.allreduceMax(mine.messages);
  s.maxRankRecvBytes = comm.allreduceMax(mine.recvBytes);
  return s;
}

/// Measure `phase` on this rank: busy CPU seconds + traffic delta.
inline PhaseSample measurePhase(comm::Communicator& comm,
                                const std::function<void()>& phase) {
  const auto before = comm.counters().total();
  const double cpu0 = threadCpuSeconds();
  phase();
  const double cpu1 = threadCpuSeconds();
  const auto after = comm.counters().total();
  return {cpu1 - cpu0, after.bytesSent - before.bytesSent,
          after.messagesSent - before.messagesSent,
          after.bytesReceived - before.bytesReceived};
}

inline void printHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace hemobench
