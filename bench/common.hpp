#pragma once
/// \file common.hpp
/// \brief Shared helpers for the paper-reproduction benchmarks: standard
/// workload geometries, a developed-flow setup, busy-time collection and
/// table printing. Every bench prints the measured table for its paper
/// anchor (see DESIGN.md §4) and exits; absolute numbers are machine
/// dependent, shapes are the reproduction target.

#include <unistd.h>

#include <cstdio>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "comm/runtime.hpp"
#include "core/perf_model.hpp"
#include "core/preprocess.hpp"
#include "geometry/shapes.hpp"
#include "geometry/voxelizer.hpp"
#include "lb/solver.hpp"
#include "partition/partitioners.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace hemobench {

using namespace hemo;

inline geometry::SparseLattice makeAneurysm(double voxel = 0.2) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = voxel;
  return geometry::voxelize(geometry::makeAneurysmVessel(5.0, 1.0, 1.2), opt);
}

inline geometry::SparseLattice makeTube(double voxel = 0.2,
                                        double length = 6.0) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = voxel;
  return geometry::voxelize(geometry::makeStraightTube(length, 1.0), opt);
}

inline geometry::SparseLattice makeBifurc(double voxel = 0.2) {
  geometry::VoxelizeOptions opt;
  opt.voxelSize = voxel;
  return geometry::voxelize(
      geometry::makeBifurcation(4.0, 1.0, 4.0, 0.75, 0.5), opt);
}

inline partition::Partition kwayPartition(
    const geometry::SparseLattice& lattice, int parts) {
  const auto graph = partition::buildSiteGraph(lattice);
  partition::MultilevelKWayPartitioner kway;
  return kway.partition(graph, parts);
}

/// Default solver parameters producing a developed low-Mach flow.
inline lb::LbParams flowParams(bool stress = false) {
  lb::LbParams p;
  p.tau = 0.8;
  p.bodyForce = {1e-5, 0, 0};
  p.computeStress = stress;
  return p;
}

/// Per-rank cost sample of one measured phase.
struct PhaseSample {
  double busySeconds = 0.0;
  std::uint64_t bytes = 0;      ///< sent, all classes, during the phase
  std::uint64_t messages = 0;   ///< sent, all classes, during the phase
  std::uint64_t recvBytes = 0;  ///< received during the phase
};

/// Aggregate of a phase across ranks.
struct PhaseSummary {
  int ranks = 0;
  double maxBusy = 0.0;
  double sumBusy = 0.0;
  double imbalance = 1.0;  ///< busy-time max/mean
  std::uint64_t totalBytes = 0;
  std::uint64_t totalMessages = 0;
  std::uint64_t maxRankBytes = 0;
  std::uint64_t maxRankMessages = 0;
  std::uint64_t maxRankRecvBytes = 0;

  core::RankCost maxRankCost() const {
    return {maxBusy, maxRankMessages, maxRankBytes};
  }

  /// Modeled parallel seconds under the postal model.
  double modeledSeconds(const core::CostModel& model = {}) const {
    return core::modeledParallelSeconds(
        {core::RankCost{maxBusy, maxRankMessages, maxRankBytes}}, model);
  }
};

/// Collective: merge every rank's PhaseSample. Identical result everywhere.
inline PhaseSummary summarizePhase(comm::Communicator& comm,
                                   const PhaseSample& mine) {
  PhaseSummary s;
  s.ranks = comm.size();
  const auto busies = comm.allgather(mine.busySeconds);
  for (const double b : busies) {
    s.maxBusy = std::max(s.maxBusy, b);
    s.sumBusy += b;
  }
  s.imbalance = s.sumBusy > 0.0
                    ? s.maxBusy * static_cast<double>(s.ranks) / s.sumBusy
                    : 1.0;
  s.totalBytes = comm.allreduceSum(mine.bytes);
  s.totalMessages = comm.allreduceSum(mine.messages);
  s.maxRankBytes = comm.allreduceMax(mine.bytes);
  s.maxRankMessages = comm.allreduceMax(mine.messages);
  s.maxRankRecvBytes = comm.allreduceMax(mine.recvBytes);
  return s;
}

/// Measure `phase` on this rank: busy CPU seconds + traffic delta.
inline PhaseSample measurePhase(comm::Communicator& comm,
                                const std::function<void()>& phase) {
  const auto before = comm.counters().total();
  const double cpu0 = threadCpuSeconds();
  phase();
  const double cpu1 = threadCpuSeconds();
  const auto after = comm.counters().total();
  return {cpu1 - cpu0, after.bytesSent - before.bytesSent,
          after.messagesSent - before.messagesSent,
          after.bytesReceived - before.bytesReceived};
}

inline void printHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

// --- machine-readable bench output ------------------------------------------

/// Shared JSON emitter: every bench serialises the same envelope
/// (machine name, git revision, run parameters, scalar metrics, labelled
/// result rows) to BENCH_<name>.json, so runs on different machines or
/// commits diff cleanly. All values are stored as rendered JSON literals;
/// the set*/add* helpers do the quoting.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void setParam(const std::string& key, const std::string& v) {
    params_.emplace_back(key, quote(v));
  }
  void setParam(const std::string& key, double v) {
    params_.emplace_back(key, num(v));
  }
  void setParam(const std::string& key, std::int64_t v) {
    params_.emplace_back(key, std::to_string(v));
  }

  void setMetric(const std::string& key, double v) {
    metrics_.emplace_back(key, num(v));
  }
  void setMetric(const std::string& key, std::uint64_t v) {
    metrics_.emplace_back(key, std::to_string(v));
  }

  /// One labelled result row (a table line: a scale point, a technique...).
  class Row {
   public:
    explicit Row(std::string label) : label_(std::move(label)) {}
    void set(const std::string& key, double v) {
      fields_.emplace_back(key, num(v));
    }
    void set(const std::string& key, std::uint64_t v) {
      fields_.emplace_back(key, std::to_string(v));
    }
    void set(const std::string& key, const std::string& v) {
      fields_.emplace_back(key, quote(v));
    }

   private:
    friend class BenchReport;
    std::string label_;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Row& addRow(const std::string& label) {
    rows_.emplace_back(label);
    return rows_.back();
  }

  /// Write BENCH_<name>.json into the working directory; false on failure.
  bool write() const { return writeTo("BENCH_" + name_ + ".json"); }

  bool writeTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string json = toJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    const bool closed = std::fclose(f) == 0;
    if (ok && closed) std::printf("wrote %s\n", path.c_str());
    return ok && closed;
  }

  std::string toJson() const {
    std::string out = "{\n  \"bench\": " + quote(name_) +
                      ",\n  \"machine\": " + quote(machineName()) +
                      ",\n  \"gitRev\": " + quote(gitRevision()) +
                      ",\n  \"params\": " + object(params_) +
                      ",\n  \"metrics\": " + object(metrics_) +
                      ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      auto fields = rows_[i].fields_;
      fields.insert(fields.begin(), {"label", quote(rows_[i].label_)});
      out += (i == 0 ? "\n    " : ",\n    ") + object(fields);
    }
    out += "\n  ]\n}\n";
    return out;
  }

  static std::string machineName() {
    char host[256] = {};
    if (gethostname(host, sizeof host - 1) != 0) return "unknown";
    return host[0] != '\0' ? host : "unknown";
  }

  static std::string gitRevision() {
    std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
    if (p == nullptr) return "unknown";
    char buf[64] = {};
    const bool got = std::fgets(buf, sizeof buf, p) != nullptr;
    ::pclose(p);
    if (!got) return "unknown";
    std::string rev(buf);
    while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
      rev.pop_back();
    }
    return rev.empty() ? "unknown" : rev;
  }

 private:
  static std::string num(double v) {
    if (v != v || v - v != 0.0) return "0";  // NaN / inf are not JSON
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out.push_back(c);
      }
    }
    out.push_back('"');
    return out;
  }

  static std::string object(
      const std::vector<std::pair<std::string, std::string>>& kv) {
    std::string out = "{";
    for (std::size_t i = 0; i < kv.size(); ++i) {
      out += (i == 0 ? "" : ", ") + quote(kv[i].first) + ": " + kv[i].second;
    }
    out += "}";
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<std::pair<std::string, std::string>> metrics_;
  std::deque<Row> rows_;  // stable references across addRow() calls
};

}  // namespace hemobench
