// Reproduces **Fig 2** — the closed-loop system architecture — as a
// latency experiment: the six-step steering/visualisation loop of §IV.C.1
//
//   1. simulation runs on the "cluster"      4. master propagates to vis
//   2. steering client connects to master    5. vis renders from live data
//   3. client sends vis parameters           6. image returns to the client
//
// is exercised end to end many times, measuring the client-observed
// round-trip latency per request kind (frame / status / ROI) and the
// steering fan-out traffic — while the simulation keeps stepping.

#include <cstdio>
#include <thread>

#include "common.hpp"
#include "core/driver.hpp"
#include "steer/server.hpp"

int main() {
  using namespace hemobench;
  const auto lattice = makeAneurysm(0.15);
  const int ranks = 4;
  const auto part = kwayPartition(lattice, ranks);
  std::printf("workload: aneurysm vessel, %llu sites, %d ranks; live "
              "simulation under steering\n",
              static_cast<unsigned long long>(lattice.numFluidSites()),
              ranks);

  auto [clientEnd, serverEnd] = comm::makeChannelPair();
  constexpr int kRequests = 20;

  struct Latency {
    RunningStats frame, status, roi;
    std::uint64_t stepAtStart = 0, stepAtEnd = 0;
  } latency;

  std::thread user([clientEnd = clientEnd, &latency]() mutable {
    steer::SteeringClient client(clientEnd);
    steer::Command c;

    c.type = steer::MsgType::kRequestStatus;
    client.send(c);
    const auto s0 = client.awaitStatus();
    latency.stepAtStart = s0 ? s0->step : 0;

    for (int i = 0; i < kRequests; ++i) {
      // Frame round trip (steps 3-6 of the loop).
      WallTimer t1;
      c = {};
      c.type = steer::MsgType::kRequestFrame;
      client.send(c);
      if (!client.awaitImage()) break;
      latency.frame.add(t1.seconds() * 1e3);

      // Status round trip.
      WallTimer t2;
      c = {};
      c.type = steer::MsgType::kRequestStatus;
      client.send(c);
      if (!client.awaitStatus()) break;
      latency.status.add(t2.seconds() * 1e3);

      // ROI round trip (multires detail request).
      WallTimer t3;
      c = {};
      c.type = steer::MsgType::kSetRoi;
      c.roi = {{10, 10, 10}, {30, 30, 30}};
      c.roiLevel = 4;
      client.send(c);
      if (!client.awaitRoi()) break;
      latency.roi.add(t3.seconds() * 1e3);
    }

    c = {};
    c.type = steer::MsgType::kRequestStatus;
    client.send(c);
    if (const auto s1 = client.awaitStatus()) latency.stepAtEnd = s1->step;
    c = {};
    c.type = steer::MsgType::kTerminate;
    client.send(c);
  });

  comm::Runtime rt(ranks);
  rt.run([&, serverEnd = serverEnd](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    core::DriverConfig cfg;
    cfg.lb = flowParams(true);
    cfg.visEvery = 0;  // only client-requested frames
    cfg.statusEvery = 0;
    cfg.render.width = 192;
    cfg.render.height = 192;
    cfg.render.camera.position = {2.5, 1.0, 8.0};
    cfg.render.camera.target = {2.5, 0.5, 0.0};
    cfg.plannedSteps = 1 << 28;
    core::SimulationDriver driver(
        domain, comm, cfg,
        comm.rank() == 0 ? serverEnd : comm::ChannelEnd{});
    driver.run(1 << 28);
  });
  user.join();

  printHeader("Fig 2: closed-loop round-trip latency (client-observed)");
  std::printf("%-22s %10s %10s %10s %8s\n", "request", "mean ms", "min ms",
              "max ms", "count");
  auto row = [](const char* name, const RunningStats& s) {
    std::printf("%-22s %10.2f %10.2f %10.2f %8llu\n", name, s.mean(),
                s.min(), s.max(),
                static_cast<unsigned long long>(s.count()));
  };
  row("frame (loop 3-6)", latency.frame);
  row("status report", latency.status);
  row("ROI drill-down", latency.roi);
  std::printf("\nsimulation advanced from step %llu to %llu while being "
              "steered\n",
              static_cast<unsigned long long>(latency.stepAtStart),
              static_cast<unsigned long long>(latency.stepAtEnd));

  const auto steerT = rt.totalCounters().of(comm::Traffic::kSteer);
  const auto visT = rt.totalCounters().of(comm::Traffic::kVis);
  std::printf("steering fan-out: %llu msgs, %.1f KB; vis gather: %llu msgs, "
              "%.1f KB\n",
              static_cast<unsigned long long>(steerT.messagesSent),
              static_cast<double>(steerT.bytesSent) / 1e3,
              static_cast<unsigned long long>(visT.messagesSent),
              static_cast<double>(visT.bytesSent) / 1e3);
  std::printf("\nexpected shape: every loop completes in interactive time "
              "(milliseconds\nhere; dominated by the render), the simulation "
              "never stalls, and\nsteering traffic is a trickle next to "
              "vis/halo traffic.\n");
  return 0;
}
