// Reproduces the **§V multi-resolution claims** (M1): "Multi-resolution
// data analysis will be our only way to largely reduce the data size, to
// provide insight and to navigate through the whole data set."
//
// Measures, on a developed aneurysm flow field:
//   * per-level data size and reconstruction error (reduction vs fidelity),
//   * octree build and in situ update cost,
//   * ROI query latency by level (hierarchical-index traversal),
//   * the progressive context+detail drill-down's data movement vs
//     shipping the full-resolution field.

#include "common.hpp"
#include "multires/octree.hpp"
#include "multires/roi.hpp"

int main() {
  using namespace hemobench;
  const auto lattice = makeAneurysm(0.1);
  std::printf("workload: aneurysm vessel, %llu fluid sites\n",
              static_cast<unsigned long long>(lattice.numFluidSites()));

  // Serial tree over a developed flow field for the level metrics.
  partition::Partition serialPart;
  serialPart.numParts = 1;
  serialPart.partOfSite.assign(lattice.numFluidSites(), 0);

  comm::Runtime rt1(1);
  rt1.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, serialPart, 0);
    lb::SolverD3Q19 solver(domain, comm, flowParams());
    solver.run(200);

    WallTimer buildTimer;
    multires::FieldOctree tree(domain, 0);
    const double buildMs = buildTimer.seconds() * 1e3;

    std::vector<double> speed(domain.numOwned());
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      speed[l] = solver.macro().u[l].norm();
    }
    WallTimer updateTimer;
    tree.update(speed, solver.macro().u);
    const double updateMs = updateTimer.seconds() * 1e3;

    printHeader("M1: level size vs reconstruction error (velocity "
                "magnitude)");
    std::printf("structure build %.2f ms, in situ update %.2f ms\n\n",
                buildMs, updateMs);
    std::printf("%-7s %10s %12s %12s %14s\n", "level", "nodes", "KB",
                "reduction", "rel. L2 err");
    const std::uint64_t fullBytes = tree.levelBytes(tree.leafLevel());
    for (int l = 0; l < tree.numLevels(); ++l) {
      const double err = multires::levelError(tree, l, speed);
      std::printf("%-7d %10zu %12.1f %11.0fx %14.4f\n", l,
                  tree.level(l).size(),
                  static_cast<double>(tree.levelBytes(l)) / 1e3,
                  static_cast<double>(fullBytes) /
                      static_cast<double>(tree.levelBytes(l)),
                  err);
    }

    printHeader("M1: ROI query latency by level (hierarchical Z-order "
                "index)");
    const Vec3i c{lattice.dims().x / 2, lattice.dims().y / 2,
                  lattice.dims().z / 2};
    const BoxI roi{{c.x - 8, c.y - 8, c.z - 8}, {c.x + 8, c.y + 8, c.z + 8}};
    std::printf("%-7s %10s %14s\n", "level", "hits", "query us");
    for (int l = 0; l < tree.numLevels(); ++l) {
      WallTimer qt;
      std::size_t hits = 0;
      for (int rep = 0; rep < 50; ++rep) {
        hits = tree.query(l, roi).size();
      }
      std::printf("%-7d %10zu %14.1f\n", l, hits, qt.seconds() * 1e6 / 50);
    }
  });

  // Distributed drill-down: context + progressive ROI refinement.
  printHeader("M1: progressive context+detail drill-down (8 ranks)");
  const auto part = kwayPartition(lattice, 8);
  comm::Runtime rt(8);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    lb::SolverD3Q19 solver(domain, comm, flowParams());
    solver.run(100);
    multires::FieldOctree tree(domain, 0);
    std::vector<double> speed(domain.numOwned());
    for (std::uint32_t l = 0; l < domain.numOwned(); ++l) {
      speed[l] = solver.macro().u[l].norm();
    }
    tree.update(speed, solver.macro().u);
    const Vec3i c{lattice.dims().x / 2, lattice.dims().y * 2 / 3,
                  lattice.dims().z / 2};
    const BoxI roi{{c.x - 5, c.y - 5, c.z - 5}, {c.x + 5, c.y + 5, c.z + 5}};
    const auto drill = multires::progressiveDrilldown(
        comm, tree, 2, tree.leafLevel(), roi);
    if (comm.rank() == 0) {
      std::printf("%-8s %10s %14s\n", "stage", "nodes", "KB moved");
      std::uint64_t cumulative = 0;
      for (std::size_t s = 0; s < drill.nodesPerStage.size(); ++s) {
        cumulative += drill.bytesPerStage[s];
        std::printf("%-8zu %10zu %14.1f\n", s, drill.nodesPerStage[s],
                    static_cast<double>(drill.bytesPerStage[s]) / 1e3);
      }
      const double fullKb =
          static_cast<double>(lattice.numFluidSites()) *
          sizeof(multires::OctreeNode) / 1e3;
      std::printf("\ndrill-down total: %.1f KB vs %.1f KB for the full "
                  "field (%.0fx less)\n",
                  static_cast<double>(cumulative) / 1e3, fullKb,
                  fullKb * 1e3 / static_cast<double>(cumulative));
    }
  });
  std::printf("\nexpected shape: ~8x size reduction per level with smoothly "
              "growing\nerror; ROI stages move a tiny fraction of the full "
              "field — the §V\npath to interactive exploration at scale.\n");
  return 0;
}
