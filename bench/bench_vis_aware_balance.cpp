// Reproduces the **§IV.B balance-equation argument** (P3): "These costs of
// other simulation parts, like visualisation, must be involved in the
// balance equation", and "The opportunity to adjust the partitioning
// mid-term is introduced. This repartitioning helps to improve load
// balance greatly."
//
// Scenario: in situ visualisation work is concentrated in a steered region
// of interest (the aneurysm dome). Three strategies are compared under the
// *true* per-site cost (compute + vis):
//   1. vis-blind partition (balance compute only — today's default),
//   2. vis-aware partition (fold vis cost into the weights up front),
//   3. vis-blind + mid-run diffusive repartition from measured costs.
// A final section runs strategy 3 *live*: a real 8-rank driver with the
// skewed render load emulated per step, migrating sites mid-run via
// SimulationDriver::migrateNow and measuring the wall-clock MLUPS delta.

#include <numeric>
#include <thread>

#include "common.hpp"
#include "core/driver.hpp"
#include "partition/repartition.hpp"

namespace {

/// Emulated per-site render cost: spin for a fixed amount of floating-point
/// work per ROI site so the skew shows up in wall clock, not just the model.
void spinVisWork(std::uint64_t roiSites) {
  volatile double sink = 0.0;
  for (std::uint64_t s = 0; s < roiSites; ++s) {
    double x = 1.0 + static_cast<double>(s % 7);
    for (int i = 0; i < 600; ++i) x = x * 1.0000001 + 1e-9;
    sink += x;
  }
  (void)sink;
}

}  // namespace

int main() {
  using namespace hemobench;
  const auto lattice = makeAneurysm(0.12);
  std::printf("workload: aneurysm vessel, %llu sites; vis cost concentrated "
              "in the dome ROI\n",
              static_cast<unsigned long long>(lattice.numFluidSites()));

  // Vis-heavy region: the dome half-space above the parent vessel.
  auto inRoi = [](const Vec3d& w) { return w.y > 0.9; };
  const double visFactor = 4.0;

  auto graph = partition::buildSiteGraph(lattice);
  std::vector<double> trueCost(graph.numVertices, 1.0);
  std::uint64_t roiSites = 0;
  for (std::uint64_t v = 0; v < graph.numVertices; ++v) {
    if (inRoi(lattice.siteWorld(v))) {
      trueCost[static_cast<std::size_t>(v)] += visFactor;
      ++roiSites;
    }
  }
  std::printf("ROI: %llu of %llu sites carry %.0fx extra vis cost\n",
              static_cast<unsigned long long>(roiSites),
              static_cast<unsigned long long>(graph.numVertices), visFactor);

  auto trueImbalance = [&](const partition::Partition& p) {
    std::vector<double> loads(static_cast<std::size_t>(p.numParts), 0.0);
    for (std::size_t v = 0; v < trueCost.size(); ++v) {
      loads[static_cast<std::size_t>(p.partOfSite[v])] += trueCost[v];
    }
    return imbalanceFactor(loads);
  };

  BenchReport report("vis_aware_balance");
  report.setParam("workload", "aneurysm");
  report.setParam("voxelSize", 0.12);
  report.setParam("sites", static_cast<std::int64_t>(graph.numVertices));
  report.setParam("roiSites", static_cast<std::int64_t>(roiSites));
  report.setParam("visFactor", visFactor);

  printHeader("P3: the balance equation with visualisation cost");
  std::printf("%-7s %16s %16s %18s %14s\n", "parts", "vis-blind",
              "vis-aware", "blind+repartition", "sites moved");
  for (const int parts : {4, 8, 16}) {
    // 1. vis-blind: unit weights.
    partition::MultilevelKWayPartitioner kway;
    auto blindGraph = graph;
    blindGraph.vertexWeight.assign(graph.numVertices, 1.0);
    const auto blind = kway.partition(blindGraph, parts);

    // 2. vis-aware: true weights at partition time.
    auto awareGraph = graph;
    awareGraph.vertexWeight = trueCost;
    const auto aware = kway.partition(awareGraph, parts);

    // 3. mid-run repartition from measured per-site cost.
    const auto repart = partition::rebalance(graph, blind, trueCost);

    std::printf("%-7d %16.3f %16.3f %18.3f %14llu\n", parts,
                trueImbalance(blind), trueImbalance(aware),
                trueImbalance(repart.partition),
                static_cast<unsigned long long>(repart.sitesMoved));
    auto& row = report.addRow("modeled_parts_" + std::to_string(parts));
    row.set("parts", static_cast<std::uint64_t>(parts));
    row.set("imbalanceVisBlind", trueImbalance(blind));
    row.set("imbalanceVisAware", trueImbalance(aware));
    row.set("imbalanceRepartitioned", trueImbalance(repart.partition));
    row.set("sitesMoved", repart.sitesMoved);
  }

  // End-to-end effect on a full in situ step: model the per-step time as
  // max over ranks of (compute + vis) site cost.
  printHeader("P3: modeled in situ step time (true cost, 8 parts)");
  {
    const int parts = 8;
    partition::MultilevelKWayPartitioner kway;
    auto blindGraph = graph;
    blindGraph.vertexWeight.assign(graph.numVertices, 1.0);
    const auto blind = kway.partition(blindGraph, parts);
    auto awareGraph = graph;
    awareGraph.vertexWeight = trueCost;
    const auto aware = kway.partition(awareGraph, parts);
    const auto repart = partition::rebalance(graph, blind, trueCost);

    auto stepTime = [&](const partition::Partition& p) {
      std::vector<double> loads(static_cast<std::size_t>(p.numParts), 0.0);
      for (std::size_t v = 0; v < trueCost.size(); ++v) {
        loads[static_cast<std::size_t>(p.partOfSite[v])] += trueCost[v];
      }
      double mx = 0.0;
      for (const double l : loads) mx = std::max(mx, l);
      return mx;  // cost units; proportional to the parallel step time
    };
    const double ideal =
        std::accumulate(trueCost.begin(), trueCost.end(), 0.0) / parts;
    std::printf("%-22s %14s %12s\n", "strategy", "step cost", "vs ideal");
    std::printf("%-22s %14.0f %11.0f%%\n", "vis-blind", stepTime(blind),
                100.0 * stepTime(blind) / ideal);
    std::printf("%-22s %14.0f %11.0f%%\n", "vis-aware", stepTime(aware),
                100.0 * stepTime(aware) / ideal);
    std::printf("%-22s %14.0f %11.0f%%\n", "blind+repartition",
                stepTime(repart.partition),
                100.0 * stepTime(repart.partition) / ideal);
  }
  // Live migration on a real 8-rank driver. The skewed ROI render load is
  // emulated per step (spin work per owned ROI site); mid-run the driver
  // migrates sites onto the measured-cost partition and the wall clock shows
  // the recovered throughput.
  printHeader("P3: live mid-run migration, 8 ranks, skewed ROI render load");
  {
    const int parts = 8;
    const int kSteps = 40;  // per measured phase (before / after migration)
    auto blindGraph = graph;
    blindGraph.vertexWeight.assign(graph.numVertices, 1.0);
    partition::MultilevelKWayPartitioner kway;
    const auto blind = kway.partition(blindGraph, parts);

    double mlupsBefore = 0.0, mlupsAfter = 0.0;
    core::MigrationOutcome outcome;
    comm::Runtime rt(parts);
    rt.run([&](comm::Communicator& comm) {
      lb::DomainMap domain(lattice, blind, comm.rank());
      core::DriverConfig cfg;
      cfg.lb = flowParams();
      cfg.computeWss = false;
      cfg.visEvery = 0;
      cfg.statusEvery = 0;
      core::SimulationDriver driver(domain, comm, cfg);

      auto ownedRoi = [&]() {
        std::uint64_t n = 0;
        const auto& d = driver.domain();
        for (std::uint32_t e = 0; e < d.numOwned(); ++e) {
          if (inRoi(lattice.siteWorld(d.globalOf(e)))) ++n;
        }
        return n;
      };
      auto timedPhase = [&](int steps) {
        const std::uint64_t roi = ownedRoi();
        comm.barrier();
        WallTimer wall;
        for (int s = 0; s < steps; ++s) {
          driver.run(1);
          spinVisWork(roi);
          comm.barrier();  // a step completes when the slowest rank does
        }
        return wall.seconds();
      };

      const double secondsBefore = timedPhase(kSteps);
      const auto out = driver.migrateNow(trueCost);
      const double secondsAfter = timedPhase(kSteps);
      if (comm.rank() == 0) {
        outcome = out;
        mlupsBefore = static_cast<double>(lattice.numFluidSites()) * kSteps /
                      secondsBefore / 1e6;
        mlupsAfter = static_cast<double>(lattice.numFluidSites()) * kSteps /
                     secondsAfter / 1e6;
      }
    });

    const double deltaPct =
        mlupsBefore > 0.0 ? (mlupsAfter / mlupsBefore - 1.0) * 100.0 : 0.0;
    // On a machine with fewer cores than ranks the rank threads timeshare,
    // so wall clock tracks *total* work and balancing cannot move it; the
    // modeled delta from the measured imbalance is the hardware-independent
    // number (exact when each rank has its own core).
    const double modeledDeltaPct =
        outcome.imbalanceAfter > 0.0
            ? (outcome.imbalanceBefore / outcome.imbalanceAfter - 1.0) * 100.0
            : 0.0;
    std::printf("%-22s %12s %12s %12s %12s %10s\n", "phase", "imbalance",
                "MLUPS", "dMLUPS%", "sites moved", "mig sec");
    std::printf("%-22s %12.3f %12.2f %12s %12s %10s\n", "before migration",
                outcome.imbalanceBefore, mlupsBefore, "-", "-", "-");
    std::printf("%-22s %12.3f %12.2f %+11.1f%% %12llu %10.4f\n",
                "after migration", outcome.imbalanceAfter, mlupsAfter,
                deltaPct, static_cast<unsigned long long>(outcome.sitesMoved),
                outcome.seconds);
    std::printf("modeled dMLUPS (one core per rank): %+.1f%%\n",
                modeledDeltaPct);
    if (std::thread::hardware_concurrency() < static_cast<unsigned>(parts)) {
      std::printf("note: %u hardware threads < %d ranks — ranks timeshare, "
                  "so the wall-clock\ndelta is muted; the modeled delta is "
                  "the meaningful number here.\n",
                  std::thread::hardware_concurrency(), parts);
    }

    auto& before = report.addRow("live_before_migration");
    before.set("ranks", static_cast<std::uint64_t>(parts));
    before.set("imbalance", outcome.imbalanceBefore);
    before.set("mlups", mlupsBefore);
    auto& after = report.addRow("live_after_migration");
    after.set("ranks", static_cast<std::uint64_t>(parts));
    after.set("imbalance", outcome.imbalanceAfter);
    after.set("mlups", mlupsAfter);
    after.set("mlupsDeltaPct", deltaPct);
    after.set("modeledMlupsDeltaPct", modeledDeltaPct);
    after.set("sitesMoved", outcome.sitesMoved);
    after.set("migrationSeconds", outcome.seconds);
    report.setMetric("liveImbalanceBefore", outcome.imbalanceBefore);
    report.setMetric("liveImbalanceAfter", outcome.imbalanceAfter);
    report.setMetric("liveMlupsDeltaPct", deltaPct);
    report.setMetric("liveModeledMlupsDeltaPct", modeledDeltaPct);
  }

  report.write();
  std::printf("\nexpected shape: vis-blind imbalance grows with the vis "
              "share; folding\nvis cost into the balance equation (or "
              "repartitioning mid-run from\nmeasured costs) restores "
              "near-ideal step time — the paper's argument. The live\n"
              "section shows the same recovery in wall clock: imbalance "
              ">=1.10 before\nmigration drops to <=1.05 after, and MLUPS "
              "under the skewed render load rises.\n");
  return 0;
}
