// Reproduces the **§IV.B balance-equation argument** (P3): "These costs of
// other simulation parts, like visualisation, must be involved in the
// balance equation", and "The opportunity to adjust the partitioning
// mid-term is introduced. This repartitioning helps to improve load
// balance greatly."
//
// Scenario: in situ visualisation work is concentrated in a steered region
// of interest (the aneurysm dome). Three strategies are compared under the
// *true* per-site cost (compute + vis):
//   1. vis-blind partition (balance compute only — today's default),
//   2. vis-aware partition (fold vis cost into the weights up front),
//   3. vis-blind + mid-run diffusive repartition from measured costs.

#include <numeric>

#include "common.hpp"
#include "partition/repartition.hpp"

int main() {
  using namespace hemobench;
  const auto lattice = makeAneurysm(0.12);
  std::printf("workload: aneurysm vessel, %llu sites; vis cost concentrated "
              "in the dome ROI\n",
              static_cast<unsigned long long>(lattice.numFluidSites()));

  // Vis-heavy region: the dome half-space above the parent vessel.
  auto inRoi = [](const Vec3d& w) { return w.y > 0.9; };
  const double visFactor = 4.0;

  auto graph = partition::buildSiteGraph(lattice);
  std::vector<double> trueCost(graph.numVertices, 1.0);
  std::uint64_t roiSites = 0;
  for (std::uint64_t v = 0; v < graph.numVertices; ++v) {
    if (inRoi(lattice.siteWorld(v))) {
      trueCost[static_cast<std::size_t>(v)] += visFactor;
      ++roiSites;
    }
  }
  std::printf("ROI: %llu of %llu sites carry %.0fx extra vis cost\n",
              static_cast<unsigned long long>(roiSites),
              static_cast<unsigned long long>(graph.numVertices), visFactor);

  auto trueImbalance = [&](const partition::Partition& p) {
    std::vector<double> loads(static_cast<std::size_t>(p.numParts), 0.0);
    for (std::size_t v = 0; v < trueCost.size(); ++v) {
      loads[static_cast<std::size_t>(p.partOfSite[v])] += trueCost[v];
    }
    return imbalanceFactor(loads);
  };

  printHeader("P3: the balance equation with visualisation cost");
  std::printf("%-7s %16s %16s %18s %14s\n", "parts", "vis-blind",
              "vis-aware", "blind+repartition", "sites moved");
  for (const int parts : {4, 8, 16}) {
    // 1. vis-blind: unit weights.
    partition::MultilevelKWayPartitioner kway;
    auto blindGraph = graph;
    blindGraph.vertexWeight.assign(graph.numVertices, 1.0);
    const auto blind = kway.partition(blindGraph, parts);

    // 2. vis-aware: true weights at partition time.
    auto awareGraph = graph;
    awareGraph.vertexWeight = trueCost;
    const auto aware = kway.partition(awareGraph, parts);

    // 3. mid-run repartition from measured per-site cost.
    const auto repart = partition::rebalance(graph, blind, trueCost);

    std::printf("%-7d %16.3f %16.3f %18.3f %14llu\n", parts,
                trueImbalance(blind), trueImbalance(aware),
                trueImbalance(repart.partition),
                static_cast<unsigned long long>(repart.sitesMoved));
  }

  // End-to-end effect on a full in situ step: model the per-step time as
  // max over ranks of (compute + vis) site cost.
  printHeader("P3: modeled in situ step time (true cost, 8 parts)");
  {
    const int parts = 8;
    partition::MultilevelKWayPartitioner kway;
    auto blindGraph = graph;
    blindGraph.vertexWeight.assign(graph.numVertices, 1.0);
    const auto blind = kway.partition(blindGraph, parts);
    auto awareGraph = graph;
    awareGraph.vertexWeight = trueCost;
    const auto aware = kway.partition(awareGraph, parts);
    const auto repart = partition::rebalance(graph, blind, trueCost);

    auto stepTime = [&](const partition::Partition& p) {
      std::vector<double> loads(static_cast<std::size_t>(p.numParts), 0.0);
      for (std::size_t v = 0; v < trueCost.size(); ++v) {
        loads[static_cast<std::size_t>(p.partOfSite[v])] += trueCost[v];
      }
      double mx = 0.0;
      for (const double l : loads) mx = std::max(mx, l);
      return mx;  // cost units; proportional to the parallel step time
    };
    const double ideal =
        std::accumulate(trueCost.begin(), trueCost.end(), 0.0) / parts;
    std::printf("%-22s %14s %12s\n", "strategy", "step cost", "vs ideal");
    std::printf("%-22s %14.0f %11.0f%%\n", "vis-blind", stepTime(blind),
                100.0 * stepTime(blind) / ideal);
    std::printf("%-22s %14.0f %11.0f%%\n", "vis-aware", stepTime(aware),
                100.0 * stepTime(aware) / ideal);
    std::printf("%-22s %14.0f %11.0f%%\n", "blind+repartition",
                stepTime(repart.partition),
                100.0 * stepTime(repart.partition) / ideal);
  }
  std::printf("\nexpected shape: vis-blind imbalance grows with the vis "
              "share; folding\nvis cost into the balance equation (or "
              "repartitioning mid-run from\nmeasured costs) restores "
              "near-ideal step time — the paper's argument.\n");
  return 0;
}
