// Kernel microbenchmarks (google-benchmark): the per-operation costs that
// anchor the co-design performance model — LB step throughput (MLUPS),
// collision-operator and velocity-set variants, octree update, partitioner
// cost and voxelisation. These are the "busy seconds" inputs the postal
// model combines with the measured traffic.

#include <benchmark/benchmark.h>

#include "common.hpp"
#include "multires/octree.hpp"
#include "vis/volume.hpp"

namespace {

using namespace hemobench;

struct SerialSetup {
  geometry::SparseLattice lattice;
  partition::Partition part;

  explicit SerialSetup(double voxel) : lattice(makeTube(voxel, 6.0)) {
    part.numParts = 1;
    part.partOfSite.assign(lattice.numFluidSites(), 0);
  }
};

template <typename Lattice>
void stepBench(benchmark::State& state, lb::LbParams params) {
  static SerialSetup setup(0.08);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(setup.lattice, setup.part, 0);
    lb::Solver<Lattice> solver(domain, comm, params);
    for (auto _ : state) {
      solver.step();
      benchmark::DoNotOptimize(solver.macro().rho.data());
    }
    state.counters["MLUPS"] = benchmark::Counter(
        static_cast<double>(setup.lattice.numFluidSites()) *
            static_cast<double>(state.iterations()) / 1e6,
        benchmark::Counter::kIsRate);
    state.counters["sites"] =
        static_cast<double>(setup.lattice.numFluidSites());
    state.counters["frontier"] =
        static_cast<double>(solver.reordering().numFrontier);
    state.counters["bulk"] = static_cast<double>(solver.reordering().numBulk());
  });
}

// Fused (default) vs reference three-phase kernel on the same geometry:
// compare the MLUPS counters to read the fusion speedup.
void BM_StepD3Q19Bgk(benchmark::State& state) {
  stepBench<lb::D3Q19>(state, flowParams());
}
BENCHMARK(BM_StepD3Q19Bgk)->Unit(benchmark::kMillisecond);

void BM_StepD3Q19BgkReference(benchmark::State& state) {
  auto p = flowParams();
  p.kernel = lb::LbParams::Kernel::kReference;
  stepBench<lb::D3Q19>(state, p);
}
BENCHMARK(BM_StepD3Q19BgkReference)->Unit(benchmark::kMillisecond);

void BM_StepD3Q19Trt(benchmark::State& state) {
  auto p = flowParams();
  p.collision = lb::LbParams::Collision::kTrt;
  stepBench<lb::D3Q19>(state, p);
}
BENCHMARK(BM_StepD3Q19Trt)->Unit(benchmark::kMillisecond);

void BM_StepD3Q19TrtReference(benchmark::State& state) {
  auto p = flowParams();
  p.collision = lb::LbParams::Collision::kTrt;
  p.kernel = lb::LbParams::Kernel::kReference;
  stepBench<lb::D3Q19>(state, p);
}
BENCHMARK(BM_StepD3Q19TrtReference)->Unit(benchmark::kMillisecond);

void BM_StepD3Q15Bgk(benchmark::State& state) {
  stepBench<lb::D3Q15>(state, flowParams());
}
BENCHMARK(BM_StepD3Q15Bgk)->Unit(benchmark::kMillisecond);

void BM_StepD3Q27Bgk(benchmark::State& state) {
  stepBench<lb::D3Q27>(state, flowParams());
}
BENCHMARK(BM_StepD3Q27Bgk)->Unit(benchmark::kMillisecond);

void BM_StepD3Q19WithStress(benchmark::State& state) {
  stepBench<lb::D3Q19>(state, flowParams(true));
}
BENCHMARK(BM_StepD3Q19WithStress)->Unit(benchmark::kMillisecond);

void BM_OctreeUpdate(benchmark::State& state) {
  static SerialSetup setup(0.15);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    (void)comm;
    lb::DomainMap domain(setup.lattice, setup.part, 0);
    multires::FieldOctree tree(domain, static_cast<int>(state.range(0)));
    std::vector<double> scalar(domain.numOwned(), 1.0);
    std::vector<Vec3d> u(domain.numOwned(), Vec3d{0.01, 0, 0});
    for (auto _ : state) {
      tree.update(scalar, u);
      benchmark::DoNotOptimize(tree.level(0).data());
    }
    state.counters["sites/s"] = benchmark::Counter(
        static_cast<double>(domain.numOwned()) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
  });
}
BENCHMARK(BM_OctreeUpdate)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_PartitionKway(benchmark::State& state) {
  static SerialSetup setup(0.15);
  const auto graph = partition::buildSiteGraph(setup.lattice);
  partition::MultilevelKWayPartitioner kway;
  for (auto _ : state) {
    auto p = kway.partition(graph, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(p.partOfSite.data());
  }
}
BENCHMARK(BM_PartitionKway)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_PartitionHilbert(benchmark::State& state) {
  static SerialSetup setup(0.15);
  const auto graph = partition::buildSiteGraph(setup.lattice);
  partition::HilbertPartitioner hilbert;
  for (auto _ : state) {
    auto p = hilbert.partition(graph, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(p.partOfSite.data());
  }
}
BENCHMARK(BM_PartitionHilbert)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_Voxelize(benchmark::State& state) {
  const auto scene = geometry::makeAneurysmVessel(5.0, 1.0, 1.2);
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  for (auto _ : state) {
    auto lat = geometry::voxelize(scene, opt);
    benchmark::DoNotOptimize(lat.numFluidSites());
  }
}
BENCHMARK(BM_Voxelize)->Unit(benchmark::kMillisecond);

void BM_RenderLocal(benchmark::State& state) {
  static SerialSetup setup(0.15);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(setup.lattice, setup.part, 0);
    lb::SolverD3Q19 solver(domain, comm, flowParams());
    solver.run(20);
    vis::VolumeRenderOptions vro;
    vro.width = static_cast<int>(state.range(0));
    vro.height = vro.width;
    vro.camera.position = {3.0, 0.5, 7.0};
    vro.camera.target = {3.0, 0, 0};
    for (auto _ : state) {
      auto img = vis::renderLocal(domain, solver.macro(), vro);
      benchmark::DoNotOptimize(img.pixels().data());
    }
    state.counters["rays/s"] = benchmark::Counter(
        static_cast<double>(vro.width) * vro.height *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
  });
}
BENCHMARK(BM_RenderLocal)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

// Direct MLUPS measurement of one kernel variant (independent of the
// google-benchmark timing machinery) for the machine-readable summary.
double directMlups(const SerialSetup& setup, const lb::LbParams& params,
                   int steps) {
  double mlups = 0.0;
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(setup.lattice, setup.part, 0);
    lb::SolverD3Q19 solver(domain, comm, params);
    solver.run(5);  // warm up
    const double t0 = threadCpuSeconds();
    solver.run(steps);
    const double busy = threadCpuSeconds() - t0;
    mlups = busy > 0.0
                ? static_cast<double>(setup.lattice.numFluidSites()) *
                      static_cast<double>(steps) / busy / 1e6
                : 0.0;
  });
  return mlups;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Machine-readable summary in the shared bench JSON schema.
  using namespace hemobench;
  SerialSetup setup(0.08);
  const int steps = 30;
  BenchReport report("kernels");
  report.setParam("geometry", "tube(voxel=0.08, length=6)");
  report.setParam("sites",
                  static_cast<std::int64_t>(setup.lattice.numFluidSites()));
  report.setParam("steps", static_cast<std::int64_t>(steps));

  struct Variant {
    const char* label;
    lb::LbParams params;
  };
  auto reference = [](lb::LbParams p) {
    p.kernel = lb::LbParams::Kernel::kReference;
    return p;
  };
  auto trt = [](lb::LbParams p) {
    p.collision = lb::LbParams::Collision::kTrt;
    return p;
  };
  const Variant variants[] = {
      {"d3q19-bgk-fused", flowParams()},
      {"d3q19-bgk-reference", reference(flowParams())},
      {"d3q19-trt-fused", trt(flowParams())},
      {"d3q19-trt-reference", reference(trt(flowParams()))},
      {"d3q19-bgk-stress", flowParams(true)},
  };
  for (const auto& v : variants) {
    const double mlups = directMlups(setup, v.params, steps);
    auto& row = report.addRow(v.label);
    row.set("mlups", mlups);
    std::printf("%-22s %8.2f MLUPS\n", v.label, mlups);
  }
  report.write();
  return 0;
}
