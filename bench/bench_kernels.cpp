// Kernel microbenchmarks (google-benchmark): the per-operation costs that
// anchor the co-design performance model — LB step throughput (MLUPS),
// collision-operator and velocity-set variants, octree update, partitioner
// cost and voxelisation. These are the "busy seconds" inputs the postal
// model combines with the measured traffic.

#include <benchmark/benchmark.h>

#include "common.hpp"
#include "multires/octree.hpp"
#include "vis/volume.hpp"

namespace {

using namespace hemobench;

struct SerialSetup {
  geometry::SparseLattice lattice;
  partition::Partition part;

  explicit SerialSetup(double voxel) : lattice(makeTube(voxel, 6.0)) {
    part.numParts = 1;
    part.partOfSite.assign(lattice.numFluidSites(), 0);
  }
  explicit SerialSetup(geometry::SparseLattice lat) : lattice(std::move(lat)) {
    part.numParts = 1;
    part.partOfSite.assign(lattice.numFluidSites(), 0);
  }
};

template <typename Lattice>
void stepBench(benchmark::State& state, lb::LbParams params) {
  static SerialSetup setup(0.08);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(setup.lattice, setup.part, 0);
    lb::Solver<Lattice> solver(domain, comm, params);
    for (auto _ : state) {
      solver.step();
      benchmark::DoNotOptimize(solver.macro().rho.data());
    }
    state.counters["MLUPS"] = benchmark::Counter(
        static_cast<double>(setup.lattice.numFluidSites()) *
            static_cast<double>(state.iterations()) / 1e6,
        benchmark::Counter::kIsRate);
    state.counters["sites"] =
        static_cast<double>(setup.lattice.numFluidSites());
    state.counters["frontier"] =
        static_cast<double>(solver.reordering().numFrontier);
    state.counters["bulk"] = static_cast<double>(solver.reordering().numBulk());
  });
}

// Fused (default) vs reference three-phase kernel on the same geometry:
// compare the MLUPS counters to read the fusion speedup.
void BM_StepD3Q19Bgk(benchmark::State& state) {
  stepBench<lb::D3Q19>(state, flowParams());
}
BENCHMARK(BM_StepD3Q19Bgk)->Unit(benchmark::kMillisecond);

void BM_StepD3Q19BgkReference(benchmark::State& state) {
  auto p = flowParams();
  p.kernel = lb::LbParams::Kernel::kReference;
  stepBench<lb::D3Q19>(state, p);
}
BENCHMARK(BM_StepD3Q19BgkReference)->Unit(benchmark::kMillisecond);

void BM_StepD3Q19BgkSimd(benchmark::State& state) {
  auto p = flowParams();
  p.kernel = lb::LbParams::Kernel::kSimd;
  stepBench<lb::D3Q19>(state, p);
}
BENCHMARK(BM_StepD3Q19BgkSimd)->Unit(benchmark::kMillisecond);

void BM_StepD3Q19Trt(benchmark::State& state) {
  auto p = flowParams();
  p.collision = lb::LbParams::Collision::kTrt;
  stepBench<lb::D3Q19>(state, p);
}
BENCHMARK(BM_StepD3Q19Trt)->Unit(benchmark::kMillisecond);

void BM_StepD3Q19TrtReference(benchmark::State& state) {
  auto p = flowParams();
  p.collision = lb::LbParams::Collision::kTrt;
  p.kernel = lb::LbParams::Kernel::kReference;
  stepBench<lb::D3Q19>(state, p);
}
BENCHMARK(BM_StepD3Q19TrtReference)->Unit(benchmark::kMillisecond);

void BM_StepD3Q15Bgk(benchmark::State& state) {
  stepBench<lb::D3Q15>(state, flowParams());
}
BENCHMARK(BM_StepD3Q15Bgk)->Unit(benchmark::kMillisecond);

void BM_StepD3Q27Bgk(benchmark::State& state) {
  stepBench<lb::D3Q27>(state, flowParams());
}
BENCHMARK(BM_StepD3Q27Bgk)->Unit(benchmark::kMillisecond);

void BM_StepD3Q19WithStress(benchmark::State& state) {
  stepBench<lb::D3Q19>(state, flowParams(true));
}
BENCHMARK(BM_StepD3Q19WithStress)->Unit(benchmark::kMillisecond);

void BM_OctreeUpdate(benchmark::State& state) {
  static SerialSetup setup(0.15);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    (void)comm;
    lb::DomainMap domain(setup.lattice, setup.part, 0);
    multires::FieldOctree tree(domain, static_cast<int>(state.range(0)));
    std::vector<double> scalar(domain.numOwned(), 1.0);
    std::vector<Vec3d> u(domain.numOwned(), Vec3d{0.01, 0, 0});
    for (auto _ : state) {
      tree.update(scalar, u);
      benchmark::DoNotOptimize(tree.level(0).data());
    }
    state.counters["sites/s"] = benchmark::Counter(
        static_cast<double>(domain.numOwned()) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
  });
}
BENCHMARK(BM_OctreeUpdate)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_PartitionKway(benchmark::State& state) {
  static SerialSetup setup(0.15);
  const auto graph = partition::buildSiteGraph(setup.lattice);
  partition::MultilevelKWayPartitioner kway;
  for (auto _ : state) {
    auto p = kway.partition(graph, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(p.partOfSite.data());
  }
}
BENCHMARK(BM_PartitionKway)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_PartitionHilbert(benchmark::State& state) {
  static SerialSetup setup(0.15);
  const auto graph = partition::buildSiteGraph(setup.lattice);
  partition::HilbertPartitioner hilbert;
  for (auto _ : state) {
    auto p = hilbert.partition(graph, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(p.partOfSite.data());
  }
}
BENCHMARK(BM_PartitionHilbert)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_Voxelize(benchmark::State& state) {
  const auto scene = geometry::makeAneurysmVessel(5.0, 1.0, 1.2);
  geometry::VoxelizeOptions opt;
  opt.voxelSize = 0.25;
  for (auto _ : state) {
    auto lat = geometry::voxelize(scene, opt);
    benchmark::DoNotOptimize(lat.numFluidSites());
  }
}
BENCHMARK(BM_Voxelize)->Unit(benchmark::kMillisecond);

void BM_RenderLocal(benchmark::State& state) {
  static SerialSetup setup(0.15);
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(setup.lattice, setup.part, 0);
    lb::SolverD3Q19 solver(domain, comm, flowParams());
    solver.run(20);
    vis::VolumeRenderOptions vro;
    vro.width = static_cast<int>(state.range(0));
    vro.height = vro.width;
    vro.camera.position = {3.0, 0.5, 7.0};
    vro.camera.target = {3.0, 0, 0};
    for (auto _ : state) {
      auto img = vis::renderLocal(domain, solver.macro(), vro);
      benchmark::DoNotOptimize(img.pixels().data());
    }
    state.counters["rays/s"] = benchmark::Counter(
        static_cast<double>(vro.width) * vro.height *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
  });
}
BENCHMARK(BM_RenderLocal)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

// Direct MLUPS measurement of one kernel variant (independent of the
// google-benchmark timing machinery) for the machine-readable summary.
// `warmupSteps` run untimed first so the distribution slabs are paged in,
// the reorder tables are cache-warm and the core is out of any low-power
// state before the clock starts — without it the first variant measured
// paid the cold-start cost and the rows were not comparable.
double directMlups(const SerialSetup& setup, const lb::LbParams& params,
                   int steps, int warmupSteps) {
  double mlups = 0.0;
  comm::Runtime rt(1);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(setup.lattice, setup.part, 0);
    lb::SolverD3Q19 solver(domain, comm, params);
    solver.run(warmupSteps);
    // Best of three timed passes: the rows report kernel capability, and
    // a single pass is at the mercy of transient co-tenant interference
    // on shared machines (memory-bandwidth steals skew the slower passes
    // far more than the CPU-time clock can correct for).
    double best = 0.0;
    for (int pass = 0; pass < 3; ++pass) {
      const double t0 = threadCpuSeconds();
      solver.run(steps);
      const double busy = threadCpuSeconds() - t0;
      const double passMlups =
          busy > 0.0 ? static_cast<double>(setup.lattice.numFluidSites()) *
                           static_cast<double>(steps) / busy / 1e6
                     : 0.0;
      best = std::max(best, passMlups);
    }
    mlups = best;
  });
  return mlups;
}

// STREAM-style roofline: time a pure copy over two slabs the size of the
// distribution field (f → fNext, the minimum memory traffic of one LB
// step). The measured bandwidth bounds what any layout/kernel can reach,
// so the report can state achieved-vs-attainable instead of a bare MLUPS.
double streamCopyGBps(std::size_t nDoubles, int reps) {
  simd::AVector<double> a(nDoubles, 1.0);
  simd::AVector<double> b(nDoubles, 0.0);
  simd::copyDoubles(b.data(), a.data(), nDoubles, true);  // warm up
  simd::storeFence();
  const double t0 = threadCpuSeconds();
  for (int r = 0; r < reps; ++r) {
    simd::copyDoubles(b.data(), a.data(), nDoubles, true);
    simd::storeFence();
    benchmark::DoNotOptimize(b.data());
  }
  const double busy = threadCpuSeconds() - t0;
  // Read + write: 2 bytes moved per byte of slab.
  return busy > 0.0 ? 2.0 * static_cast<double>(nDoubles) * 8.0 *
                          static_cast<double>(reps) / busy / 1e9
                    : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Machine-readable summary in the shared bench JSON schema.
  using namespace hemobench;
  SerialSetup setup(0.08);
  const int steps = 30;
  BenchReport report("kernels");
  report.setParam("geometry", "tube(voxel=0.08, length=6)");
  report.setParam("sites",
                  static_cast<std::int64_t>(setup.lattice.numFluidSites()));
  report.setParam("steps", static_cast<std::int64_t>(steps));

  report.setParam("simdBackend", simd::backendName());
  report.setParam("simdWidth", static_cast<std::int64_t>(simd::kWidth));

  struct Variant {
    const char* label;
    lb::LbParams params;
  };
  auto reference = [](lb::LbParams p) {
    p.kernel = lb::LbParams::Kernel::kReference;
    return p;
  };
  auto simdK = [](lb::LbParams p) {
    p.kernel = lb::LbParams::Kernel::kSimd;
    return p;
  };
  auto aos = [](lb::LbParams p) {
    p.layout = lb::Layout::kAoS;
    return p;
  };
  auto trt = [](lb::LbParams p) {
    p.collision = lb::LbParams::Collision::kTrt;
    return p;
  };
  const Variant variants[] = {
      {"d3q19-bgk-fused", flowParams()},
      {"d3q19-bgk-fused-aos", aos(flowParams())},
      {"d3q19-bgk-reference", reference(flowParams())},
      {"d3q19-bgk-simd", simdK(flowParams())},
      {"d3q19-trt-fused", trt(flowParams())},
      {"d3q19-trt-reference", reference(trt(flowParams()))},
      {"d3q19-trt-simd", simdK(trt(flowParams()))},
      {"d3q19-bgk-stress", flowParams(true)},
      {"d3q19-bgk-stress-simd", simdK(flowParams(true))},
  };

  // Roofline: copy bandwidth over the same footprint as the distribution
  // slabs, and the MLUPS that bandwidth could sustain if the step moved
  // only its compulsory traffic (f read + fNext write + macro write).
  const std::size_t slabDoubles =
      setup.lattice.numFluidSites() * static_cast<std::size_t>(lb::D3Q19::kQ);
  const double gbps = streamCopyGBps(slabDoubles, 50);
  const double bytesPerSite =
      2.0 * lb::D3Q19::kQ * 8.0 + 4.0 * 8.0;  // f + fNext + rho,u
  const double attainable = gbps * 1e9 / bytesPerSite / 1e6;
  {
    auto& row = report.addRow("stream-copy-roofline");
    row.set("copyGBps", gbps);
    row.set("bytesPerSite", bytesPerSite);
    row.set("mlupsAttainable", attainable);
    std::printf("%-22s %8.2f GB/s (attainable %.2f MLUPS at %.0f B/site)\n",
                "stream-copy-roofline", gbps, attainable, bytesPerSite);
  }

  for (const auto& v : variants) {
    const double mlups = directMlups(setup, v.params, steps, 10);
    auto& row = report.addRow(v.label);
    row.set("mlups", mlups);
    row.set("kernel", v.params.kernelName());
    row.set("layout", lb::layoutName(v.params.layout));
    row.set("simdWidth",
            static_cast<std::uint64_t>(
                v.params.kernel == lb::LbParams::Kernel::kSimd ? simd::kWidth
                                                               : 1));
    if (attainable > 0.0) row.set("fractionOfRoofline", mlups / attainable);
    std::printf("%-22s %8.2f MLUPS (%.0f%% of roofline)\n", v.label, mlups,
                100.0 * mlups / attainable);
  }

  // The same fused/SIMD pair on a diameter-2 vessel: the thin tube above
  // is ~22% frontier sites, which over-weights boundary handling relative
  // to the production domains the layout targets — the wider vessel
  // (~12% frontier) is the bulk-dominated regime where the strip kernel's
  // advantage is representative.
  {
    geometry::VoxelizeOptions opt;
    opt.voxelSize = 0.08;
    SerialSetup thick(
        geometry::voxelize(geometry::makeStraightTube(6.0, 2.0), opt));
    const std::int64_t sites =
        static_cast<std::int64_t>(thick.lattice.numFluidSites());
    const double fusedMlups = directMlups(thick, flowParams(), steps, 5);
    const double simdMlups =
        directMlups(thick, simdK(flowParams()), steps, 5);
    const struct {
      const char* label;
      double mlups;
      const char* kernel;
      int width;
    } rows[] = {
        {"d3q19-bgk-fused-d2", fusedMlups, "fused", 1},
        {"d3q19-bgk-simd-d2", simdMlups, "simd", simd::kWidth},
    };
    for (const auto& r : rows) {
      auto& row = report.addRow(r.label);
      row.set("mlups", r.mlups);
      row.set("kernel", r.kernel);
      row.set("layout", lb::layoutName(lb::Layout::kSoA));
      row.set("simdWidth", static_cast<std::uint64_t>(r.width));
      row.set("sites", static_cast<std::uint64_t>(sites));
      if (fusedMlups > 0.0) row.set("vsFused", r.mlups / fusedMlups);
      std::printf("%-22s %8.2f MLUPS (%.2fx fused, %lld sites)\n", r.label,
                  r.mlups, r.mlups / fusedMlups,
                  static_cast<long long>(sites));
    }
  }
  report.write();
  return 0;
}
