// Reproduces the **§II scaling claim** (paper ref [1]): "HemeLB ... can
// scale well to at least 32 thousand cores with more than 81 million
// lattice sites".
//
// At laptop scale the same experiment is: strong scaling (fixed lattice,
// growing rank count) and weak scaling (fixed sites/rank) of the sparse LB
// solver, with the parallel time reconstructed by the postal model from
// per-rank busy time and exact halo traffic (see core/perf_model.hpp —
// wall clock on a time-shared host measures contention, not scaling).

#include "common.hpp"
#include "telemetry/step_report.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace hemobench;

struct ScalePoint {
  int ranks = 0;
  std::uint64_t sites = 0;
  double maxBusy = 0.0;
  double imbalance = 1.0;
  std::uint64_t haloBytesPerStep = 0;
  std::uint64_t haloMsgsPerStep = 0;
  double modeledSeconds = 0.0;
  /// Fraction of the halo window hidden behind the fused bulk sweep,
  /// averaged over ranks (overlap wall time vs residual receive wait).
  double commHidden = 0.0;
  /// Million site updates per modeled second.
  double mlups = 0.0;
  /// Total bytes sent during the measured phase, by comm::Traffic class.
  std::uint64_t classBytes[comm::kNumTrafficClasses] = {};
  /// Wait-state attribution of the measured phase (telemetry/waitstate.hpp):
  /// per-cause share of the classified blocked time, the cross-rank
  /// straggler vote and the classified/measured coverage fraction.
  double waitLateSenderPct = 0.0;
  double waitLateReceiverPct = 0.0;
  double waitCollectivePct = 0.0;
  std::int32_t waitStragglerRank = -1;
  double waitAttributed = 0.0;
};

ScalePoint measure(const geometry::SparseLattice& lattice, int ranks,
                   int steps, const lb::LbParams& params) {
  const auto part = kwayPartition(lattice, ranks);
  ScalePoint point;
  point.ranks = ranks;
  point.sites = lattice.numFluidSites();
  comm::Runtime rt(ranks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    lb::SolverD3Q19 solver(domain, comm, params);
    solver.run(10);  // warm up (plans, caches)
    solver.resetTimers();
    comm.barrier();
    // Measure wait attribution over the timed phase only: drop the warmup
    // and barrier waits by snapping the recorder's window baseline here.
    auto* rankTel = telemetry::threadTelemetry();
    if (rankTel != nullptr) rankTel->waitState().window();
    const comm::TrafficCounters before = comm.counters();
    const auto sample =
        measurePhase(comm, [&] { solver.run(steps); });
    const comm::TrafficCounters after = comm.counters();
    std::uint64_t classDelta[comm::kNumTrafficClasses];
    for (int c = 0; c < comm::kNumTrafficClasses; ++c) {
      classDelta[c] =
          after.perClass[static_cast<std::size_t>(c)].bytesSent -
          before.perClass[static_cast<std::size_t>(c)].bytesSent;
    }
    const auto s = summarizePhase(comm, sample);
    const double overlap = comm.allreduceSum(solver.overlapTimer().total());
    const double wait = comm.allreduceSum(solver.recvWaitTimer().total());
    // Cross-rank wait attribution: every rank votes with its window delta
    // (one StepReport each), rank 0 aggregates via the same reduction the
    // driver uses for live telemetry.
    telemetry::StepReport waitLocal;
    waitLocal.collideSeconds = sample.busySeconds;  // busiest-rank fallback
    if (rankTel != nullptr) {
      const auto w = rankTel->waitState().window();
      waitLocal.waitLateSenderSeconds = w.lateSenderSeconds;
      waitLocal.waitLateReceiverSeconds = w.lateReceiverSeconds;
      waitLocal.waitCollectiveSeconds = w.collectiveSeconds;
      waitLocal.waitLateReceiverSlackSeconds = w.lateReceiverSlackSeconds;
      waitLocal.waitBlamedRank = w.topBlamedRank;
      waitLocal.waitBlamedSeconds = w.topBlamedSeconds;
      waitLocal.waitMeasuredSeconds = solver.recvWaitTimer().total();
    }
    const auto waitReports = comm.gather(waitLocal, 0);
    std::uint64_t classTotal[comm::kNumTrafficClasses];
    for (int c = 0; c < comm::kNumTrafficClasses; ++c) {
      classTotal[c] = comm.allreduceSum(classDelta[c]);
    }
    if (comm.rank() == 0) {
      point.maxBusy = s.maxBusy;
      point.imbalance = s.imbalance;
      point.haloBytesPerStep = s.totalBytes / static_cast<std::uint64_t>(steps);
      point.haloMsgsPerStep =
          s.totalMessages / static_cast<std::uint64_t>(steps);
      point.modeledSeconds = core::modeledParallelSeconds(
          {core::RankCost{s.maxBusy, s.maxRankMessages, s.maxRankBytes}});
      point.commHidden = overlap + wait > 0.0 ? overlap / (overlap + wait) : 0.0;
      point.mlups = point.modeledSeconds > 0.0
                        ? static_cast<double>(point.sites) *
                              static_cast<double>(steps) /
                              point.modeledSeconds / 1e6
                        : 0.0;
      for (int c = 0; c < comm::kNumTrafficClasses; ++c) {
        point.classBytes[c] = classTotal[c];
      }
      const auto agg = telemetry::aggregateStepReports(waitReports);
      const double classified = agg.waitClassifiedSeconds();
      if (classified > 0.0) {
        point.waitLateSenderPct =
            100.0 * agg.waitLateSenderSeconds / classified;
        point.waitLateReceiverPct =
            100.0 * agg.waitLateReceiverSeconds / classified;
        point.waitCollectivePct =
            100.0 * agg.waitCollectiveSeconds / classified;
      }
      point.waitStragglerRank = agg.waitStragglerRank;
      point.waitAttributed = agg.waitAttributedFraction;
    }
  });
  return point;
}

/// One JSON row per scale point, same fields for strong and weak scaling.
void addScaleRow(BenchReport& report, const char* series,
                 const ScalePoint& p, double speedup,
                 const char* kernel = "fused") {
  auto& row = report.addRow(std::string(series) + "/ranks=" +
                            std::to_string(p.ranks));
  row.set("series", std::string(series));
  row.set("kernel", std::string(kernel));
  row.set("ranks", static_cast<std::uint64_t>(p.ranks));
  row.set("sites", p.sites);
  row.set("mlups", p.mlups);
  row.set("modeledSeconds", p.modeledSeconds);
  row.set("speedup", speedup);
  row.set("imbalance", p.imbalance);
  row.set("commHiddenFraction", p.commHidden);
  row.set("haloBytesPerStep", p.haloBytesPerStep);
  row.set("haloMsgsPerStep", p.haloMsgsPerStep);
  for (int c = 0; c < comm::kNumTrafficClasses; ++c) {
    row.set(std::string("bytes.") +
                comm::trafficName(static_cast<comm::Traffic>(c)),
            p.classBytes[c]);
  }
  row.set("wait.late_sender_pct", p.waitLateSenderPct);
  row.set("wait.late_receiver_pct", p.waitLateReceiverPct);
  row.set("wait.collective_pct", p.waitCollectivePct);
  row.set("wait.straggler_rank", static_cast<double>(p.waitStragglerRank));
  row.set("wait.attributed", p.waitAttributed);
}

}  // namespace

int main() {
  using namespace hemobench;
  const int steps = 40;
  BenchReport report("scaling_lb");
  report.setParam("steps", static_cast<std::int64_t>(steps));
  report.setParam("strongGeometry", "aneurysm(voxel=0.1)");
  report.setParam("weakGeometry", "tube(voxel=0.12, length=3*ranks)");

  // --- strong scaling -----------------------------------------------------------
  const auto lattice = makeAneurysm(0.1);
  std::printf("strong-scaling workload: aneurysm vessel, %llu fluid sites, "
              "%d steps\n",
              static_cast<unsigned long long>(lattice.numFluidSites()),
              steps);
  printHeader("Strong scaling of the sparse LB solver (S2)");
  std::printf("%-7s %12s %12s %14s %14s %10s %10s %10s %9s %9s %7s %6s\n",
              "ranks", "mod.time s", "speedup", "halo KB/step", "msgs/step",
              "imbal", "eff", "hidden%", "late-snd%", "late-rcv%", "coll%",
              "strag");
  ScalePoint base;
  for (const int ranks : {1, 2, 4, 8, 16, 32}) {
    const auto p = measure(lattice, ranks, steps, flowParams());
    if (ranks == 1) base = p;
    const double speedup =
        p.modeledSeconds > 0.0 ? base.modeledSeconds / p.modeledSeconds : 0.0;
    std::printf("%-7d %12.4f %12.2f %14.1f %14llu %10.3f %9.0f%% %9.0f%% "
                "%8.0f%% %8.0f%% %6.0f%% %6d\n",
                ranks, p.modeledSeconds, speedup,
                static_cast<double>(p.haloBytesPerStep) / 1e3,
                static_cast<unsigned long long>(p.haloMsgsPerStep),
                p.imbalance, 100.0 * speedup / ranks, 100.0 * p.commHidden,
                p.waitLateSenderPct, p.waitLateReceiverPct,
                p.waitCollectivePct, p.waitStragglerRank);
    addScaleRow(report, "strong", p, speedup);
  }

  // Same strong-scaling sweep with the vectorised SoA kernel: the busy
  // time per rank drops, so the halo window is a larger fraction of the
  // step — the series shows whether the overlap still hides it.
  printHeader("Strong scaling, SIMD kernel (S2)");
  std::printf("%-7s %12s %12s %10s %10s %9s %9s %7s %6s\n", "ranks",
              "mod.time s", "speedup", "eff", "hidden%", "late-snd%",
              "late-rcv%", "coll%", "strag");
  ScalePoint simdBase;
  for (const int ranks : {1, 2, 4, 8, 16, 32}) {
    auto params = flowParams();
    params.kernel = lb::LbParams::Kernel::kSimd;
    const auto p = measure(lattice, ranks, steps, params);
    if (ranks == 1) simdBase = p;
    const double speedup =
        p.modeledSeconds > 0.0 ? simdBase.modeledSeconds / p.modeledSeconds
                               : 0.0;
    std::printf("%-7d %12.4f %12.2f %9.0f%% %9.0f%% %8.0f%% %8.0f%% %6.0f%% "
                "%6d\n",
                ranks, p.modeledSeconds, speedup, 100.0 * speedup / ranks,
                100.0 * p.commHidden, p.waitLateSenderPct,
                p.waitLateReceiverPct, p.waitCollectivePct,
                p.waitStragglerRank);
    addScaleRow(report, "strong-simd", p, speedup, "simd");
  }

  // --- weak scaling --------------------------------------------------------------
  // Hold sites/rank roughly constant by lengthening the tube with the rank
  // count.
  printHeader("Weak scaling of the sparse LB solver (S2)");
  std::printf("%-7s %12s %14s %14s %12s %10s\n", "ranks", "sites",
              "sites/rank", "mod.time s", "efficiency", "hidden%");
  double weakBase = 0.0;
  for (const int ranks : {1, 2, 4, 8}) {
    const auto tube = makeTube(0.12, 3.0 * ranks);
    const auto p = measure(tube, ranks, steps, flowParams());
    if (ranks == 1) weakBase = p.modeledSeconds;
    const double eff =
        p.modeledSeconds > 0.0 ? weakBase / p.modeledSeconds : 0.0;
    std::printf("%-7d %12llu %14llu %14.4f %11.0f%% %9.0f%%\n", ranks,
                static_cast<unsigned long long>(p.sites),
                static_cast<unsigned long long>(p.sites) /
                    static_cast<unsigned long long>(ranks),
                p.modeledSeconds, 100.0 * eff, 100.0 * p.commHidden);
    addScaleRow(report, "weak", p, eff);
  }
  std::printf("\nexpected shape: near-linear strong scaling while sites/rank "
              "stays large\n(halo surface << owned volume); weak efficiency "
              "stays high because halo\nbytes per rank are constant.\n");
  report.write();
  return 0;
}
