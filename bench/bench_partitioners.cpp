// Reproduces the **§IV.B decomposition study** (P2): HemeLB's block-level
// initial balance vs a real partitioner (ParMETIS in the paper, the
// multilevel k-way stand-in here), plus the geometric alternatives the
// related work lists (SFC, RCB, greedy growing), on three vessel
// geometries. Also probes §I's "open question" of partitioner scaling by
// sweeping the part count.

#include "common.hpp"
#include "partition/metrics.hpp"

int main() {
  using namespace hemobench;

  struct Workload {
    const char* name;
    geometry::SparseLattice lattice;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"tube", makeTube(0.12)});
  workloads.push_back({"bifurcation", makeBifurc(0.12)});
  workloads.push_back({"aneurysm", makeAneurysm(0.12)});

  for (const auto& w : workloads) {
    char title[96];
    std::snprintf(title, sizeof title,
                  "P2: partitioner quality on '%s' (%llu sites, 8 parts)",
                  w.name,
                  static_cast<unsigned long long>(w.lattice.numFluidSites()));
    printHeader(title);
    std::printf("%-8s %10s %10s %12s %12s %12s %10s\n", "name", "imbalance",
                "edge cut", "boundary", "comm vol", "nbr parts", "time ms");
    const auto graph = partition::buildSiteGraph(w.lattice);
    for (const auto& partitioner :
         partition::makeAllPartitioners(w.lattice)) {
      WallTimer timer;
      const auto p = partitioner->partition(graph, 8);
      const double seconds = timer.seconds();
      const auto m = partition::evaluatePartition(graph, p);
      std::printf("%-8s %10.3f %10llu %12llu %12llu %12.2f %10.2f\n",
                  partitioner->name(), m.imbalance,
                  static_cast<unsigned long long>(m.edgeCut),
                  static_cast<unsigned long long>(m.boundaryVertices),
                  static_cast<unsigned long long>(m.commVolume),
                  m.avgNeighborParts, seconds * 1e3);
    }
  }

  // Part-count sweep on the aneurysm: edge cut growth + partitioner cost.
  printHeader("P2 series: k-way vs block scan as the part count grows "
              "(aneurysm)");
  std::printf("%-7s %14s %14s %14s %14s\n", "parts", "kway cut",
              "block cut", "kway imbal", "kway ms");
  const auto graph = partition::buildSiteGraph(workloads[2].lattice);
  partition::MultilevelKWayPartitioner kway;
  partition::BlockPartitioner block(workloads[2].lattice);
  for (const int parts : {2, 4, 8, 16, 32, 64}) {
    WallTimer timer;
    const auto pk = kway.partition(graph, parts);
    const double ms = timer.seconds() * 1e3;
    const auto mk = partition::evaluatePartition(graph, pk);
    const auto mb =
        partition::evaluatePartition(graph, block.partition(graph, parts));
    std::printf("%-7d %14llu %14llu %14.3f %14.2f\n", parts,
                static_cast<unsigned long long>(mk.edgeCut),
                static_cast<unsigned long long>(mb.edgeCut), mk.imbalance,
                ms);
  }
  std::printf("\nexpected shape: the multilevel partitioner cuts "
              "substantially fewer\nedges than the coarse block scan at "
              "every part count — why HemeLB\ncalls ParMETIS — while its "
              "cost grows with the part count (§I's\nscalability question).\n");
  return 0;
}
