// Serving-plane scaling bench: what does adding in situ *clients* cost the
// simulation? Sweeps client count {1, 4, 16, 64} x wire codec {off, on} on
// the aneurysm workload with every client subscribed to the image stream,
// and reports per config:
//   * solver MLUPS (degradation vs the 1-client baseline is the paper's
//     "post-processing must not perturb the simulation" requirement),
//   * frames/s pushed by the broker and wire bytes per client per step,
//   * shared-frame-cache hit rate and the render count — which must stay
//     *independent of client count* (render once, serve M times),
//   * raw/wire byte reduction once codecs are negotiated.
// A second sweep measures the relay tier: clients {64, 256, 1024} x relay
// tree depth {0 = direct, 1, 2 levels}, progressive codec on, and reports
// broker session count (must track direct relays, not the client
// population), solver MLUPS delta vs direct serving, the largest relay
// frame cache (bounded by one burst, not by fan-out), refinement levels
// shed under backpressure, and time-to-first-frame: bytes to the first
// *usable* image for progressive (the coarse root) vs full-push delivery,
// with seconds derived at a reference last-mile bandwidth.
// Emits BENCH_serving.json.

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>

#include "io/serial.hpp"

#include "common.hpp"
#include "core/driver.hpp"
#include "relay/relay.hpp"
#include "serve/broker.hpp"
#include "serve/client.hpp"
#include "serve/progressive.hpp"

namespace {

using namespace hemobench;

constexpr int kRanks = 4;
constexpr int kSteps = 60;
constexpr int kCadence = 5;  // image stream: every 5th step
constexpr int kImageSize = 64;

struct RunResult {
  double wallSeconds = 0.0;
  double mlups = 0.0;
  std::uint64_t wireBytes = 0;
  std::uint64_t rawBytes = 0;
  std::uint64_t framesSent = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t renders = 0;
  std::uint64_t framesDropped = 0;
};

RunResult runConfig(const geometry::SparseLattice& lattice,
                    const partition::Partition& part, int numClients,
                    bool codecOn) {
  serve::BrokerConfig bcfg;
  bcfg.outboxCapacity = 0;  // unbounded: measure bytes, not drop policy
  serve::SessionBroker broker(bcfg);
  std::vector<serve::ServeClient> clients;
  for (int i = 0; i < numClients; ++i) {
    clients.emplace_back(broker.connect());
    if (codecOn) {
      serve::CodecConfig codec;
      codec.rleImage = true;
      codec.deltaIndices = true;
      clients.back().setCodec(codec);
    }
    clients.back().subscribe(serve::StreamKind::kImage, kCadence);
  }

  RunResult r;
  comm::Runtime rt(kRanks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    core::DriverConfig cfg;
    cfg.lb = flowParams(true);
    cfg.visEvery = 0;  // the subscription cadence drives all rendering
    cfg.statusEvery = 0;
    cfg.render.width = kImageSize;
    cfg.render.height = kImageSize;
    cfg.render.camera.position = {2.5, 1.0, 8.0};
    cfg.render.camera.target = {2.5, 0.5, 0.0};
    core::SimulationDriver driver(domain, comm, cfg);
    driver.attachBroker(comm.rank() == 0 ? &broker : nullptr);

    comm.barrier();
    WallTimer wall;
    driver.run(kSteps);
    const double seconds = wall.seconds();
    if (comm.rank() == 0) {
      r.wallSeconds = seconds;
      r.mlups = static_cast<double>(lattice.numFluidSites()) *
                static_cast<double>(kSteps) / seconds / 1e6;
      r.renders = driver.renderStage().rendersDone();
      broker.closeAll();
    }
  });

  const auto& stats = broker.stats();
  r.wireBytes = stats.wireBytes;
  r.rawBytes = stats.rawBytes;
  r.framesSent = stats.framesSent;
  r.cacheHits = stats.cacheHits;
  r.cacheMisses = stats.cacheMisses;
  r.framesDropped = broker.totalFramesDropped();
  return r;
}

// --- relay-tier sweep -------------------------------------------------------

constexpr int kClientsPerLeaf = 64;   // leaf relays = ceil(clients / 64)
constexpr int kLeavesPerMid = 4;      // depth-2 interior fan-out
constexpr double kRefBandwidth = 1 << 20;  // 1 MiB/s reference last mile

struct RelayRunResult {
  double wallSeconds = 0.0;
  double mlups = 0.0;
  int brokerSessions = 0;
  std::uint64_t brokerFramesSent = 0;
  int numRelays = 0;
  std::uint64_t maxCacheBytes = 0;
  std::uint64_t framesForwarded = 0;
  std::uint64_t levelsShed = 0;
  std::uint64_t usableFrames = 0;
  std::uint64_t clientsWithFrames = 0;
  double ttffSeconds = -1.0;  // relay-side wall clock to first forwarded frame
};

RelayRunResult runRelayConfig(const geometry::SparseLattice& lattice,
                              const partition::Partition& part,
                              int numClients, int depth) {
  serve::BrokerConfig bcfg;
  bcfg.outboxCapacity = 16;  // bounded: the shed policy is part of the test
  serve::SessionBroker broker(bcfg);
  serve::CodecConfig codec;
  codec.progressive = true;
  codec.rleImage = true;

  // Build the tree: depth 1 = leaves on the broker; depth 2 = interior
  // relays on the broker, leaves spread across them round-robin.
  std::vector<std::unique_ptr<relay::RelayNode>> relays;
  std::vector<relay::RelayNode*> leaves;
  if (depth >= 1) {
    const int numLeaves =
        (numClients + kClientsPerLeaf - 1) / kClientsPerLeaf;
    std::vector<relay::RelayNode*> mids;
    if (depth >= 2) {
      const int numMids = (numLeaves + kLeavesPerMid - 1) / kLeavesPerMid;
      for (int i = 0; i < numMids; ++i) {
        relay::RelayConfig rcfg;
        rcfg.depth = 1;
        auto node =
            std::make_unique<relay::RelayNode>(broker.connect(), rcfg);
        node->start(codec);
        mids.push_back(node.get());
        relays.push_back(std::move(node));
      }
    }
    for (int i = 0; i < numLeaves; ++i) {
      relay::RelayConfig rcfg;
      rcfg.depth = depth;
      auto upstream = depth >= 2
                          ? mids[static_cast<std::size_t>(i) % mids.size()]
                                ->connect()
                          : broker.connect();
      auto node =
          std::make_unique<relay::RelayNode>(std::move(upstream), rcfg);
      node->start(codec);
      leaves.push_back(node.get());
      relays.push_back(std::move(node));
    }
  }

  // Clients are raw channel sinks: subscribe, then count frames without
  // decoding them. Real viewers decode on *their* machines; decoding 1024
  // pyramids inside this process would charge remote work to the solver's
  // box and drown the serving-plane cost the sweep is after.
  std::vector<comm::ChannelEnd> sinks;
  std::uint32_t cmdId = 1;
  for (int c = 0; c < numClients; ++c) {
    auto end = depth >= 1
                   ? leaves[static_cast<std::size_t>(c) % leaves.size()]
                         ->connect()
                   : broker.connect();
    if (depth == 0) {  // relays negotiate the codec upstream themselves
      steer::Command sc;
      sc.type = steer::MsgType::kSetCodec;
      sc.commandId = cmdId++;
      sc.codec = codec.mask();
      end.send(steer::encodeCommand(sc));
    }
    steer::Command sub;
    sub.type = steer::MsgType::kSubscribe;
    sub.commandId = cmdId++;
    sub.stream = static_cast<std::uint8_t>(serve::StreamKind::kImage);
    sub.cadence = kCadence;
    end.send(steer::encodeCommand(sub));
    sinks.push_back(std::move(end));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> relayThreads;
  for (auto& node : relays) {
    relay::RelayNode* n = node.get();
    relayThreads.emplace_back([n, &stop] {
      while (!stop.load()) {
        if (n->pump() == 0) {
          // Image cadence is many solver steps; a coarse idle sleep keeps
          // 16+ relay threads from stealing cycles from the rank threads.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      n->shutdown();  // drain the tail before hanging up
    });
  }
  // Drain sinks from a small pool (a thread per client would swamp the
  // box at 1024); each drainer owns a disjoint slice, so counts race-free.
  // "Usable" counts delivered roots — the frame a viewer can display.
  std::vector<std::uint64_t> usable(static_cast<std::size_t>(numClients), 0);
  const auto drainSink = [&](int c) {
    bool got = false;
    while (auto frame = sinks[static_cast<std::size_t>(c)].tryRecv()) {
      got = true;
      if (steer::frameType(*frame) == steer::MsgType::kProgressiveImage) {
        io::Reader r(*frame);
        r.get<std::uint8_t>();
        r.get<std::uint64_t>();  // step
        if (r.get<std::int32_t>() == 0) ++usable[static_cast<std::size_t>(c)];
      }
    }
    return got;
  };
  const int numDrainers = std::min(8, numClients);
  std::vector<std::thread> drainers;
  for (int d = 0; d < numDrainers; ++d) {
    drainers.emplace_back([&, d] {
      while (!stop.load()) {
        bool idle = true;
        for (int c = d; c < numClients; c += numDrainers) {
          idle &= !drainSink(c);
        }
        if (idle) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  RelayRunResult r;
  comm::Runtime rt(kRanks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    core::DriverConfig cfg;
    cfg.lb = flowParams(true);
    cfg.visEvery = 0;
    cfg.statusEvery = 0;
    cfg.render.width = kImageSize;
    cfg.render.height = kImageSize;
    cfg.render.camera.position = {2.5, 1.0, 8.0};
    cfg.render.camera.target = {2.5, 0.5, 0.0};
    core::SimulationDriver driver(domain, comm, cfg);
    driver.attachBroker(comm.rank() == 0 ? &broker : nullptr);
    comm.barrier();
    WallTimer wall;
    driver.run(kSteps);
    if (comm.rank() == 0) {
      r.wallSeconds = wall.seconds();
      r.mlups = static_cast<double>(lattice.numFluidSites()) *
                static_cast<double>(kSteps) / r.wallSeconds / 1e6;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : relayThreads) t.join();
  for (auto& t : drainers) t.join();
  broker.closeAll();

  r.brokerSessions = broker.numClients();
  r.brokerFramesSent = broker.stats().framesSent;
  r.numRelays = static_cast<int>(relays.size());
  for (int c = 0; c < numClients; ++c) {  // tail left after the drainers quit
    drainSink(c);
  }
  for (const auto n : usable) {
    r.usableFrames += n;
    r.clientsWithFrames += n > 0 ? 1 : 0;
  }
  for (const auto& node : relays) {
    r.maxCacheBytes = std::max(r.maxCacheBytes, node->cacheBytes());
    r.framesForwarded += node->stats().framesForwarded;
    r.levelsShed += node->stats().levelsShed;
    if (node->stats().ttffSeconds >= 0.0 &&
        (r.ttffSeconds < 0.0 || node->stats().ttffSeconds < r.ttffSeconds)) {
      r.ttffSeconds = node->stats().ttffSeconds;
    }
  }
  return r;
}

/// Bytes on the wire before the viewer has a *usable* image: the full
/// RLE-coded frame for classic push, the coarse root for progressive.
struct TtffBytes {
  std::uint64_t fullPush = 0;
  std::uint64_t progressive = 0;
};

TtffBytes measureTtffBytes() {
  steer::ImageFrame frame;
  frame.step = 1;
  frame.width = kImageSize;
  frame.height = kImageSize;
  frame.rgb.resize(static_cast<std::size_t>(kImageSize) * kImageSize * 3);
  for (int y = 0; y < kImageSize; ++y) {  // gradient + disc: codec-hostile
    for (int x = 0; x < kImageSize; ++x) {
      const std::size_t i = (static_cast<std::size_t>(y) * kImageSize + x) * 3;
      const int dx = x - kImageSize / 2, dy = y - kImageSize / 2;
      const bool disc = dx * dx + dy * dy < kImageSize * kImageSize / 16;
      frame.rgb[i + 0] = static_cast<std::uint8_t>((x * 4) & 0xff);
      frame.rgb[i + 1] = static_cast<std::uint8_t>((y * 4) & 0xff);
      frame.rgb[i + 2] = disc ? 200 : 30;
    }
  }
  serve::CodecConfig rleOnly;
  rleOnly.rleImage = true;
  serve::CodecConfig prog = rleOnly;
  prog.progressive = true;
  TtffBytes t;
  t.fullPush = encodeImagePayload(frame, rleOnly).size();
  t.progressive = serve::encodeProgressiveImage(frame, prog).front().size();
  return t;
}

}  // namespace

int main() {
  using namespace hemobench;
  const auto lattice = makeAneurysm(0.15);
  const auto part = kwayPartition(lattice, kRanks);
  std::printf("workload: aneurysm vessel, %llu sites, %d ranks, %d steps, "
              "image %dx%d every %d steps\n",
              static_cast<unsigned long long>(lattice.numFluidSites()),
              kRanks, kSteps, kImageSize, kImageSize, kCadence);

  BenchReport report("serving");
  report.setParam("workload", std::string("aneurysm"));
  report.setParam("sites", static_cast<std::int64_t>(lattice.numFluidSites()));
  report.setParam("ranks", static_cast<std::int64_t>(kRanks));
  report.setParam("steps", static_cast<std::int64_t>(kSteps));
  report.setParam("imageCadence", static_cast<std::int64_t>(kCadence));
  report.setParam("imageSize", static_cast<std::int64_t>(kImageSize));

  printHeader("serving: clients x codec sweep");
  std::printf("%-8s %-6s %9s %10s %12s %14s %10s %8s\n", "clients", "codec",
              "MLUPS", "frames/s", "B/client/st", "reduction", "hit rate",
              "renders");

  double mlups1[2] = {0.0, 0.0};  // codec off/on baselines
  double mlups16[2] = {0.0, 0.0};
  std::uint64_t renders1[2] = {0, 0};
  bool renderCountStable = true;
  for (const bool codecOn : {false, true}) {
    for (const int numClients : {1, 4, 16, 64}) {
      const auto r = runConfig(lattice, part, numClients, codecOn);
      const double bytesPerClientStep =
          static_cast<double>(r.wireBytes) /
          static_cast<double>(numClients) / static_cast<double>(kSteps);
      const double reduction =
          r.wireBytes > 0 ? static_cast<double>(r.rawBytes) /
                                static_cast<double>(r.wireBytes)
                          : 1.0;
      const double hitRate =
          r.cacheHits + r.cacheMisses > 0
              ? static_cast<double>(r.cacheHits) /
                    static_cast<double>(r.cacheHits + r.cacheMisses)
              : 0.0;
      const double framesPerSecond =
          r.wallSeconds > 0.0
              ? static_cast<double>(r.framesSent) / r.wallSeconds
              : 0.0;
      if (numClients == 1) {
        mlups1[codecOn ? 1 : 0] = r.mlups;
        renders1[codecOn ? 1 : 0] = r.renders;
      }
      if (numClients == 16) mlups16[codecOn ? 1 : 0] = r.mlups;
      renderCountStable &= r.renders == renders1[codecOn ? 1 : 0];

      std::printf("%-8d %-6s %9.1f %10.1f %12.0f %13.2fx %9.2f%% %8llu\n",
                  numClients, codecOn ? "on" : "off", r.mlups,
                  framesPerSecond, bytesPerClientStep, reduction,
                  hitRate * 100.0, static_cast<unsigned long long>(r.renders));

      auto& row = report.addRow(
          (codecOn ? "codec_on_c" : "codec_off_c") + std::to_string(numClients));
      row.set("clients", static_cast<std::uint64_t>(numClients));
      row.set("codec", std::string(codecOn ? "rle+delta" : "none"));
      row.set("mlups", r.mlups);
      row.set("framesPerSecond", framesPerSecond);
      row.set("bytesPerClientStep", bytesPerClientStep);
      row.set("wireBytes", r.wireBytes);
      row.set("rawBytes", r.rawBytes);
      row.set("byteReduction", reduction);
      row.set("cacheHitRate", hitRate);
      row.set("renders", r.renders);
      row.set("framesSent", r.framesSent);
      row.set("framesDropped", r.framesDropped);
    }
  }

  // --- relay tier: clients x tree depth ---------------------------------
  printHeader("serving: relay tier, clients x tree depth (progressive)");
  std::printf("%-8s %-6s %-7s %9s %9s %10s %10s %8s %10s %9s\n", "clients",
              "depth", "relays", "MLUPS", "dMLUPS%", "broker", "bk frames",
              "shed", "cache KB", "ttff ms");
  // dMLUPS compares every row against a *no-client* run: the acceptance
  // question is whether serving an audience perturbs the solver at all.
  const auto baseline = runRelayConfig(lattice, part, 0, 0);
  std::printf("%-8d %-6s %-7d %9.1f %9s %10d %10s %8s %10s %9s\n", 0, "-", 0,
              baseline.mlups, "-", 0, "-", "-", "-", "-");
  report.addRow("relay_baseline_noclients").set("mlups", baseline.mlups);
  double worstRelayDelta = 0.0;
  std::uint64_t maxRelayCache = 0;
  bool fanoutBounded = true;
  for (const int depth : {0, 1, 2}) {
    for (const int numClients : {64, 256, 1024}) {
      const auto r = runRelayConfig(lattice, part, numClients, depth);
      const double deltaPct =
          baseline.mlups > 0.0 ? (r.mlups / baseline.mlups - 1.0) * 100.0
                               : 0.0;
      if (depth > 0) {
        worstRelayDelta = std::min(worstRelayDelta, deltaPct);
        maxRelayCache = std::max(maxRelayCache, r.maxCacheBytes);
        // Fan-out isolation: the broker serves its direct children only.
        const int direct = depth >= 2
                               ? (((numClients + kClientsPerLeaf - 1) /
                                   kClientsPerLeaf) + kLeavesPerMid - 1) /
                                     kLeavesPerMid
                               : (numClients + kClientsPerLeaf - 1) /
                                     kClientsPerLeaf;
        fanoutBounded &= r.brokerSessions <= direct;
      }
      std::printf(
          "%-8d %-6d %-7d %9.1f %+8.1f%% %10d %10llu %8llu %10.1f %9.2f\n",
          numClients, depth, r.numRelays, r.mlups, deltaPct, r.brokerSessions,
          static_cast<unsigned long long>(r.brokerFramesSent),
          static_cast<unsigned long long>(r.levelsShed),
          static_cast<double>(r.maxCacheBytes) / 1024.0,
          r.ttffSeconds >= 0.0 ? r.ttffSeconds * 1e3 : -1.0);

      auto& row = report.addRow("relay_d" + std::to_string(depth) + "_c" +
                                std::to_string(numClients));
      row.set("clients", static_cast<std::uint64_t>(numClients));
      row.set("relayDepth", static_cast<std::uint64_t>(depth));
      row.set("relays", static_cast<std::uint64_t>(r.numRelays));
      row.set("mlups", r.mlups);
      row.set("mlupsDeltaPct", deltaPct);
      row.set("brokerSessions", static_cast<std::uint64_t>(r.brokerSessions));
      row.set("brokerFramesSent", r.brokerFramesSent);
      row.set("maxRelayCacheBytes", r.maxCacheBytes);
      row.set("framesForwarded", r.framesForwarded);
      row.set("levelsShed", r.levelsShed);
      row.set("usableFrames", r.usableFrames);
      row.set("clientsWithFrames", r.clientsWithFrames);
      row.set("relayTtffSeconds", r.ttffSeconds);
    }
  }

  const auto ttff = measureTtffBytes();
  const double ttffRatio =
      ttff.fullPush > 0
          ? static_cast<double>(ttff.progressive) /
                static_cast<double>(ttff.fullPush)
          : 1.0;
  std::printf("\nttff (bytes to first usable frame, %dx%d): full push %llu B "
              "(%.1f ms at 1 MiB/s),\nprogressive root %llu B (%.2f ms) — "
              "%.2fx of full push\n",
              kImageSize, kImageSize,
              static_cast<unsigned long long>(ttff.fullPush),
              static_cast<double>(ttff.fullPush) / kRefBandwidth * 1e3,
              static_cast<unsigned long long>(ttff.progressive),
              static_cast<double>(ttff.progressive) / kRefBandwidth * 1e3,
              ttffRatio);

  const double degradationPct =
      mlups1[0] > 0.0 ? (1.0 - mlups16[0] / mlups1[0]) * 100.0 : 0.0;
  report.setMetric("mlupsDegradation16ClientsPct", degradationPct);
  report.setMetric("renderCountIndependentOfClients",
                   static_cast<std::uint64_t>(renderCountStable ? 1 : 0));
  report.setMetric("ttffFullPushBytes", ttff.fullPush);
  report.setMetric("ttffProgressiveBytes", ttff.progressive);
  report.setMetric("ttffProgressiveVsFullPush", ttffRatio);
  report.setMetric("relayWorstMlupsDeltaPct", worstRelayDelta);
  report.setMetric("relayMaxCacheBytes", maxRelayCache);
  report.setMetric("relayBrokerFanoutBounded",
                   static_cast<std::uint64_t>(fanoutBounded ? 1 : 0));
  report.write();

  std::printf("\nexpected shape: renders stay constant across client counts "
              "(render once,\nserve M times), codecs cut image bytes >= 2x, "
              "and MLUPS at 16 clients stays\nwithin a few %% of the 1-client "
              "baseline (measured degradation: %.1f%%).\nrelay tier: broker "
              "sessions AND broker frames sent track the direct relays,\nnot "
              "the client count — rank-0 serving work is independent of "
              "audience size —\nthe per-relay cache stays one burst deep, and "
              "the progressive root reaches\nthe viewer in <= 0.5x the "
              "full-push bytes. The MLUPS column is wall clock:\non a "
              "many-core host the relay rows sit within ~5%% of the "
              "no-client baseline;\non a box with fewer cores than ranks + "
              "relays it shows timesharing, not\nserving cost (the broker "
              "frame counts are the scheduler-independent signal).\n",
              degradationPct);
  return 0;
}
