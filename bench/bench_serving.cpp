// Serving-plane scaling bench: what does adding in situ *clients* cost the
// simulation? Sweeps client count {1, 4, 16, 64} x wire codec {off, on} on
// the aneurysm workload with every client subscribed to the image stream,
// and reports per config:
//   * solver MLUPS (degradation vs the 1-client baseline is the paper's
//     "post-processing must not perturb the simulation" requirement),
//   * frames/s pushed by the broker and wire bytes per client per step,
//   * shared-frame-cache hit rate and the render count — which must stay
//     *independent of client count* (render once, serve M times),
//   * raw/wire byte reduction once codecs are negotiated.
// Emits BENCH_serving.json.

#include <cstdio>

#include "common.hpp"
#include "core/driver.hpp"
#include "serve/broker.hpp"
#include "serve/client.hpp"

namespace {

using namespace hemobench;

constexpr int kRanks = 4;
constexpr int kSteps = 60;
constexpr int kCadence = 5;  // image stream: every 5th step
constexpr int kImageSize = 64;

struct RunResult {
  double wallSeconds = 0.0;
  double mlups = 0.0;
  std::uint64_t wireBytes = 0;
  std::uint64_t rawBytes = 0;
  std::uint64_t framesSent = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t renders = 0;
  std::uint64_t framesDropped = 0;
};

RunResult runConfig(const geometry::SparseLattice& lattice,
                    const partition::Partition& part, int numClients,
                    bool codecOn) {
  serve::BrokerConfig bcfg;
  bcfg.outboxCapacity = 0;  // unbounded: measure bytes, not drop policy
  serve::SessionBroker broker(bcfg);
  std::vector<serve::ServeClient> clients;
  for (int i = 0; i < numClients; ++i) {
    clients.emplace_back(broker.connect());
    if (codecOn) {
      serve::CodecConfig codec;
      codec.rleImage = true;
      codec.deltaIndices = true;
      clients.back().setCodec(codec);
    }
    clients.back().subscribe(serve::StreamKind::kImage, kCadence);
  }

  RunResult r;
  comm::Runtime rt(kRanks);
  rt.run([&](comm::Communicator& comm) {
    lb::DomainMap domain(lattice, part, comm.rank());
    core::DriverConfig cfg;
    cfg.lb = flowParams(true);
    cfg.visEvery = 0;  // the subscription cadence drives all rendering
    cfg.statusEvery = 0;
    cfg.render.width = kImageSize;
    cfg.render.height = kImageSize;
    cfg.render.camera.position = {2.5, 1.0, 8.0};
    cfg.render.camera.target = {2.5, 0.5, 0.0};
    core::SimulationDriver driver(domain, comm, cfg);
    driver.attachBroker(comm.rank() == 0 ? &broker : nullptr);

    comm.barrier();
    WallTimer wall;
    driver.run(kSteps);
    const double seconds = wall.seconds();
    if (comm.rank() == 0) {
      r.wallSeconds = seconds;
      r.mlups = static_cast<double>(lattice.numFluidSites()) *
                static_cast<double>(kSteps) / seconds / 1e6;
      r.renders = driver.renderStage().rendersDone();
      broker.closeAll();
    }
  });

  const auto& stats = broker.stats();
  r.wireBytes = stats.wireBytes;
  r.rawBytes = stats.rawBytes;
  r.framesSent = stats.framesSent;
  r.cacheHits = stats.cacheHits;
  r.cacheMisses = stats.cacheMisses;
  r.framesDropped = broker.totalFramesDropped();
  return r;
}

}  // namespace

int main() {
  using namespace hemobench;
  const auto lattice = makeAneurysm(0.15);
  const auto part = kwayPartition(lattice, kRanks);
  std::printf("workload: aneurysm vessel, %llu sites, %d ranks, %d steps, "
              "image %dx%d every %d steps\n",
              static_cast<unsigned long long>(lattice.numFluidSites()),
              kRanks, kSteps, kImageSize, kImageSize, kCadence);

  BenchReport report("serving");
  report.setParam("workload", std::string("aneurysm"));
  report.setParam("sites", static_cast<std::int64_t>(lattice.numFluidSites()));
  report.setParam("ranks", static_cast<std::int64_t>(kRanks));
  report.setParam("steps", static_cast<std::int64_t>(kSteps));
  report.setParam("imageCadence", static_cast<std::int64_t>(kCadence));
  report.setParam("imageSize", static_cast<std::int64_t>(kImageSize));

  printHeader("serving: clients x codec sweep");
  std::printf("%-8s %-6s %9s %10s %12s %14s %10s %8s\n", "clients", "codec",
              "MLUPS", "frames/s", "B/client/st", "reduction", "hit rate",
              "renders");

  double mlups1[2] = {0.0, 0.0};  // codec off/on baselines
  double mlups16[2] = {0.0, 0.0};
  std::uint64_t renders1[2] = {0, 0};
  bool renderCountStable = true;
  for (const bool codecOn : {false, true}) {
    for (const int numClients : {1, 4, 16, 64}) {
      const auto r = runConfig(lattice, part, numClients, codecOn);
      const double bytesPerClientStep =
          static_cast<double>(r.wireBytes) /
          static_cast<double>(numClients) / static_cast<double>(kSteps);
      const double reduction =
          r.wireBytes > 0 ? static_cast<double>(r.rawBytes) /
                                static_cast<double>(r.wireBytes)
                          : 1.0;
      const double hitRate =
          r.cacheHits + r.cacheMisses > 0
              ? static_cast<double>(r.cacheHits) /
                    static_cast<double>(r.cacheHits + r.cacheMisses)
              : 0.0;
      const double framesPerSecond =
          r.wallSeconds > 0.0
              ? static_cast<double>(r.framesSent) / r.wallSeconds
              : 0.0;
      if (numClients == 1) {
        mlups1[codecOn ? 1 : 0] = r.mlups;
        renders1[codecOn ? 1 : 0] = r.renders;
      }
      if (numClients == 16) mlups16[codecOn ? 1 : 0] = r.mlups;
      renderCountStable &= r.renders == renders1[codecOn ? 1 : 0];

      std::printf("%-8d %-6s %9.1f %10.1f %12.0f %13.2fx %9.2f%% %8llu\n",
                  numClients, codecOn ? "on" : "off", r.mlups,
                  framesPerSecond, bytesPerClientStep, reduction,
                  hitRate * 100.0, static_cast<unsigned long long>(r.renders));

      auto& row = report.addRow(
          (codecOn ? "codec_on_c" : "codec_off_c") + std::to_string(numClients));
      row.set("clients", static_cast<std::uint64_t>(numClients));
      row.set("codec", std::string(codecOn ? "rle+delta" : "none"));
      row.set("mlups", r.mlups);
      row.set("framesPerSecond", framesPerSecond);
      row.set("bytesPerClientStep", bytesPerClientStep);
      row.set("wireBytes", r.wireBytes);
      row.set("rawBytes", r.rawBytes);
      row.set("byteReduction", reduction);
      row.set("cacheHitRate", hitRate);
      row.set("renders", r.renders);
      row.set("framesSent", r.framesSent);
      row.set("framesDropped", r.framesDropped);
    }
  }

  const double degradationPct =
      mlups1[0] > 0.0 ? (1.0 - mlups16[0] / mlups1[0]) * 100.0 : 0.0;
  report.setMetric("mlupsDegradation16ClientsPct", degradationPct);
  report.setMetric("renderCountIndependentOfClients",
                   static_cast<std::uint64_t>(renderCountStable ? 1 : 0));
  report.write();

  std::printf("\nexpected shape: renders stay constant across client counts "
              "(render once,\nserve M times), codecs cut image bytes >= 2x, "
              "and MLUPS at 16 clients stays\nwithin a few %% of the 1-client "
              "baseline (measured degradation: %.1f%%).\n", degradationPct);
  return 0;
}
